// Ablation: closed-form vs mechanistic communication simulation.
//
// The tuner interpolates the analytic cost model; the engine can charge
// either that model or a per-step ring transport. If the two disagreed,
// the predictor would be validated against the wrong machine. This bench
// quantifies the agreement across primitives, cluster sizes and payloads,
// and shows the end-to-end overlap result is invariant to the choice.
#include <cmath>
#include <cstdio>

#include "src/comm/ring_transport.h"
#include "src/core/overlap_engine.h"
#include "src/util/table.h"

namespace flo {
namespace {

void CollectiveAgreement() {
  std::printf("collective latency: analytic vs stepwise ring (4x A800)\n");
  const InterconnectSpec link = MakeNvlinkA800();
  CommCostModel model(link, 4);
  Table table({"primitive", "payload", "analytic_us", "stepwise_us", "delta"});
  for (CommPrimitive primitive :
       {CommPrimitive::kAllReduce, CommPrimitive::kReduceScatter, CommPrimitive::kAllGather,
        CommPrimitive::kAllToAll}) {
    for (double mib : {4.0, 64.0, 512.0}) {
      const double bytes = mib * 1024 * 1024;
      Simulator sim;
      std::vector<std::unique_ptr<Device>> devices;
      std::vector<std::unique_ptr<Stream>> streams;
      std::vector<Device*> device_ptrs;
      for (int r = 0; r < 4; ++r) {
        devices.push_back(std::make_unique<Device>(r, 108));
        streams.push_back(std::make_unique<Stream>(&sim, devices[r].get(),
                                                   "c" + std::to_string(r)));
        device_ptrs.push_back(devices[r].get());
      }
      RingCollectiveOp op("op", device_ptrs, link, primitive, bytes, nullptr);
      for (int r = 0; r < 4; ++r) {
        op.EnqueueOn(*streams[r], r);
      }
      sim.Run();
      const double stepwise = op.end_time() - op.start_time();
      const double analytic = model.LatencyUs(primitive, bytes);
      table.AddRow({CommPrimitiveName(primitive), FormatBytes(bytes),
                    FormatDouble(analytic, 1), FormatDouble(stepwise, 1),
                    FormatDouble(100.0 * std::abs(stepwise - analytic) / analytic, 2) + "%"});
    }
  }
  std::printf("%s\n", table.Render().c_str());
}

void EndToEndInvariance() {
  std::printf("end-to-end overlap: closed-form vs mechanistic transport\n");
  Table table({"cluster", "shape", "closed_us", "mechanistic_us", "delta"});
  for (auto make_cluster : {Make4090Cluster, MakeA800Cluster}) {
    EngineOptions closed;
    closed.jitter = false;
    EngineOptions detailed = closed;
    detailed.detailed_comm = true;
    OverlapEngine closed_engine(make_cluster(4), {}, closed);
    OverlapEngine detailed_engine(make_cluster(4), {}, detailed);
    for (const GemmShape& shape : {GemmShape{4096, 8192, 8192}, GemmShape{8192, 8192, 2048}}) {
      const double a = closed_engine.Execute(ScenarioSpec::Overlap(shape, CommPrimitive::kAllReduce)).total_us;
      const double b = detailed_engine.Execute(ScenarioSpec::Overlap(shape, CommPrimitive::kAllReduce)).total_us;
      table.AddRow({closed_engine.cluster().Describe(), shape.ToString(), FormatDouble(a, 1),
                    FormatDouble(b, 1),
                    FormatDouble(100.0 * std::abs(a - b) / a, 2) + "%"});
    }
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace
}  // namespace flo

int main() {
  std::printf("Ablation — communication model fidelity\n\n");
  flo::CollectiveAgreement();
  flo::EndToEndInvariance();
  return 0;
}
