// Ablation: the design-space pruning bounds S1 (first group) and SP (last
// group) from Sec. 4.1.4. Sweeps both bounds and reports candidate count,
// search cost proxy, and achieved latency — showing that the paper's
// (S1=2, SP=4) keeps nearly all of the quality at a fraction of the space.
#include <cstdio>

#include "src/core/overlap_engine.h"
#include "src/util/table.h"

namespace flo {
namespace {

void RunPanel(const char* title, const ClusterSpec& cluster, const GemmShape& shape,
              CommPrimitive primitive) {
  std::printf("%s: GEMM %s + %s\n", title, shape.ToString().c_str(),
              CommPrimitiveName(primitive));
  Table table({"S1", "SP", "candidates", "predicted_us", "simulated_us", "vs exhaustive"});
  // Exhaustive reference.
  TunerConfig exhaustive_config;
  exhaustive_config.exhaustive = true;
  OverlapEngine exhaustive_engine(cluster, exhaustive_config, EngineOptions{.jitter = false});
  const double exhaustive_us = exhaustive_engine.Execute(ScenarioSpec::Overlap(shape, primitive)).total_us;
  for (int s1 : {1, 2, 4}) {
    for (int sp : {1, 2, 4, 8}) {
      TunerConfig config;
      config.s1 = s1;
      config.sp = sp;
      OverlapEngine engine(cluster, config, EngineOptions{.jitter = false});
      const TunedPlan& plan = engine.tuner().Tune(shape, primitive);
      const OverlapRun run = engine.Execute(ScenarioSpec::Overlap(shape, primitive));
      table.AddRow({std::to_string(s1), std::to_string(sp),
                    std::to_string(plan.candidates_evaluated),
                    FormatDouble(plan.predicted_us, 1), FormatDouble(run.total_us, 1),
                    FormatDouble(exhaustive_us / run.total_us, 4)});
    }
  }
  std::printf("%sexhaustive-search simulated latency: %.1f us\n\n", table.Render().c_str(),
              exhaustive_us);
}

void Run() {
  std::printf("Ablation — design-space pruning bounds (paper Sec. 4.1.4 uses S1=2, SP=4)\n\n");
  RunPanel("4x RTX 4090", Make4090Cluster(4), GemmShape{2048, 8192, 8192},
           CommPrimitive::kAllReduce);
  RunPanel("4x A800", MakeA800Cluster(4), GemmShape{4096, 8192, 4096},
           CommPrimitive::kReduceScatter);
}

}  // namespace
}  // namespace flo

int main() {
  flo::Run();
  return 0;
}
