// Multi-replica serving benchmark: throughput-latency curves vs replica
// count and placement policy, on a mixed-tenant trace.
//
// Tenants: "llm" replays Llama3-70B inference ops under Poisson arrivals;
// "moe" replays Mixtral imbalanced All-to-All ops under bursty arrivals.
// The offered load is fixed above one executor's capacity, so a single
// replica saturates and the fleet has to absorb the rest — the regime
// where placement policy and plan shipping matter.
//
// Gates (nonzero exit for CI):
//  - plan-affinity beats round-robin on global warm-hit rate AND total
//    tuner searches (shipping off, 4 replicas);
//  - with plan shipping, a 4-replica fleet performs <= N_keys searches
//    (each distinct scenario tuned once fleet-wide);
//  - bit-determinism: reruns identical; published plans identical at any
//    replica count; reports identical at any host thread count.
//
//  - chaos: under the default fault dose (1 crash + 1 straggler per 64
//    replicas, seeded via --faults), every request still completes, the
//    chaos p99 stays within 3x the fault-free p99, and the faulted run
//    is itself bit-deterministic.
//
//  - sched (--sched 0 skips): on a bursty multi-tenant trace with a cold
//    key mid-run, the fleet scheduler's fair share + backfill cut the
//    victim tenant's p99 by >= 10% vs FIFO with zero head delays and
//    at least one backfill; sched-off configs are bit-identical to the
//    FIFO run, and sched-on runs are bit-identical across reruns, tune
//    thread counts, and event backends.
//
//  - prespawn (--prespawn 0 skips): on a scripted ramp burst, the
//    predictive autoscaler absorbs the burst strictly faster than the
//    reactive-only autoscaler (>= 1 pre-spawn fired, zero drains during
//    the burst); predictive-off configs with every predictive knob
//    tweaked are bit-identical to the reactive run, and predictive-on
//    runs are bit-identical across reruns, tune thread counts, and
//    event backends.
//
// Usage: bench_cluster_bench [--smoke] [--history <file>] [--requests N]
//                            [--faults <seed>] [--sched 0|1]
//                            [--prespawn 0|1] [--trace <file>] [--quiet]
// Writes cluster_bench.csv and BENCH_cluster.json to the cwd; --history
// appends the JSON as one compact line to the given trajectory file;
// --requests overrides the total request count (split across tenants);
// --faults reseeds the chaos schedule (default 1);
// --trace exports the sched section's run as a Chrome trace (the input
// tools/attribute_slo.py consumes) and the prespawn section's burst run
// to the same path with `_prespawn` inserted before the extension;
// --quiet drops the progress narration (gate verdicts still print).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/trajectory.h"
#include "src/core/flashoverlap.h"
#include "src/models/workloads.h"
#include "src/obs/obs_plane.h"
#include "src/util/csv.h"
#include "src/util/table.h"

namespace flo {
namespace {

struct TraceSetup {
  ClusterSpec hardware;
  std::vector<ServeRequest> trace;
};

// Mean simulated service time of the spec mix, measured on a scratch
// engine so the benchmarked fleets start genuinely cold.
double MeanServiceUs(const ClusterSpec& hardware, const std::vector<ScenarioSpec>& specs) {
  OverlapEngine scratch(hardware, {}, EngineOptions{.jitter = false});
  double total = 0.0;
  for (const ScenarioSpec& spec : specs) {
    total += scratch.Execute(spec).total_us;
  }
  return total / static_cast<double>(specs.size());
}

TraceSetup MakeTrace(bool smoke, int64_t requests_override) {
  const Workload llm = MakeLlama3Inference();
  const Workload moe = MakeMixtralTraining();
  const std::vector<ScenarioSpec> llm_specs = WorkloadSpecs(llm);
  const std::vector<ScenarioSpec> moe_specs = WorkloadSpecs(moe);
  // A chat tenant with per-conversation GEMM sizes widens the key space —
  // the multi-tenant regime where plan placement actually matters.
  std::vector<ScenarioSpec> chat_specs;
  for (const int64_t m : {1024, 2048, 4096, 6144}) {
    chat_specs.push_back(
        ScenarioSpec::Overlap(GemmShape{m, 8192, 3584}, CommPrimitive::kReduceScatter));
  }
  const double llm_service_us = MeanServiceUs(llm.cluster, llm_specs);
  const double moe_service_us = MeanServiceUs(llm.cluster, moe_specs);
  const double chat_service_us = MeanServiceUs(llm.cluster, chat_specs);
  // Each tenant offers ~0.55x of one executor's capacity: ~1.6x total, so
  // a lone replica drowns and the fleet absorbs the overflow.
  const int per_tenant = requests_override > 0 ? static_cast<int>(requests_override / 3)
                                               : (smoke ? 50 : 200);
  const auto trace = MergeStreams(
      {MakeRequestStream("llm", llm_specs,
                         PoissonArrivals(llm_service_us / 0.55, per_tenant, 1), 0),
       MakeRequestStream("moe", moe_specs,
                         BurstyArrivals(moe_service_us / 0.55, 4.0, 8, per_tenant, 2),
                         100000),
       MakeRequestStream("chat", chat_specs,
                         PoissonArrivals(chat_service_us / 0.55, per_tenant, 3), 200000)});
  return TraceSetup{llm.cluster, trace};
}

FleetReport RunFleet(const TraceSetup& setup, int replicas, PlacementPolicy policy,
                     bool ship_plans) {
  ClusterConfig config;
  config.replicas = replicas;
  config.policy = policy;
  config.ship_plans = ship_plans;
  ServingCluster fleet(setup.hardware, config, {}, EngineOptions{.jitter = false});
  return fleet.Run(setup.trace);
}

void AddRow(CsvWriter* csv, Table* table, int replicas, PlacementPolicy policy,
            bool ship_plans, const FleetReport& report) {
  const PercentileSummary latency = report.stats.LatencyPercentiles();
  csv->AddRow({std::to_string(replicas), PlacementPolicyName(policy),
               ship_plans ? "1" : "0", std::to_string(report.stats.count()),
               FormatDouble(report.ThroughputPerSec(), 2), FormatDouble(latency.p50, 1),
               FormatDouble(latency.p99, 1), FormatDouble(report.WarmHitRate(), 4),
               std::to_string(report.total_searches), std::to_string(report.distinct_keys),
               std::to_string(report.shipping.shipped)});
  table->AddRow({std::to_string(replicas), PlacementPolicyName(policy),
                 ship_plans ? "on" : "off", FormatDouble(report.ThroughputPerSec(), 1),
                 FormatDouble(latency.p50, 0), FormatDouble(latency.p99, 0),
                 FormatDouble(100.0 * report.WarmHitRate(), 1),
                 std::to_string(report.total_searches)});
}

// --- Fleet-scheduler section (src/sched) ------------------------------------

// A bursty multi-tenant trace on one contended executor: an adversary
// floods the shared warm key, a light victim trickles the same key, a
// steady tenant supplies warm filler work, and a newcomer's cold key
// arrives mid-run so its ~20ms search opens backfill windows.
std::vector<ServeRequest> MakeSchedTrace(bool smoke) {
  const int scale = smoke ? 1 : 2;
  const std::vector<ScenarioSpec> shared = {
      ScenarioSpec::Overlap(GemmShape{1024, 2048, 1024}, CommPrimitive::kAllReduce)};
  const std::vector<ScenarioSpec> cold = {
      ScenarioSpec::Overlap(GemmShape{4096, 2048, 1024}, CommPrimitive::kAllReduce)};
  return MergeStreams(
      {MakeRequestStream("steady", shared, PoissonArrivals(600.0, 80 * scale, 3), 0),
       MakeRequestStream("adversary", shared,
                         BurstyArrivals(120.0, 8.0, 16, 240 * scale, 11), 30000),
       MakeRequestStream("victim", shared, PoissonArrivals(4000.0, 24 * scale, 13), 30000),
       MakeRequestStream("newcomer", cold, PoissonArrivals(2000.0, 6 * scale, 7), 30000)});
}

FleetReport RunSchedFleet(const ClusterSpec& hardware,
                          const std::vector<ServeRequest>& trace, bool sched_on,
                          int tune_threads, bool legacy_heap, ObsPlane* obs = nullptr) {
  ClusterConfig config;
  config.replicas = 1;
  config.sched.enabled = sched_on;
  // The trace deliberately builds a deep backlog; with the default 100ms
  // starvation backstop every queued request would age past it and the
  // ordering would degenerate to FIFO-by-age. Keep usage shares in force.
  config.sched.starvation_age_us = 1.0e6;
  if (tune_threads > 0) {
    config.serve.tune_threads = tune_threads;
  }
  config.serve.legacy_event_heap = legacy_heap;
  config.serve.obs = obs;
  ServingCluster fleet(hardware, config, {}, EngineOptions{.jitter = false});
  return fleet.Run(trace);
}

bool SameSchedOutcomes(const SchedReport& a, const SchedReport& b) {
  return a.backfills == b.backfills && a.reserves == b.reserves &&
         a.reserve_idle_us == b.reserve_idle_us && a.head_delays == b.head_delays &&
         a.preempt_scans == b.preempt_scans &&
         a.preempted_requests == b.preempted_requests && a.shed_requests == b.shed_requests;
}

bool SameTimeline(const FleetReport& a, const FleetReport& b) {
  if (a.makespan_us != b.makespan_us || a.stats.count() != b.stats.count() ||
      a.total_searches != b.total_searches) {
    return false;
  }
  for (size_t i = 0; i < a.stats.count(); ++i) {
    if (a.stats.records()[i].finish_us != b.stats.records()[i].finish_us ||
        a.stats.records()[i].plan_cache_hit != b.stats.records()[i].plan_cache_hit) {
      return false;
    }
  }
  return true;
}

// --- Predictive-autoscaling section (rate-estimate pre-spawn) ---------------

// A scripted ramp burst on a warm shared key: a base tenant holds 0.3x of
// one replica's capacity for the whole horizon, then a burst tenant ramps
// 0.6x -> 2.0x across four check intervals and holds 2.0x for one more.
// The ramp segments align with autoscale checkpoints, so the predictive
// tier's rate samples see each segment exactly once.
struct PrespawnSetup {
  std::vector<ServeRequest> trace;
  double check_interval_us = 0.0;
  double burst_start_us = 0.0;
  double service_us = 0.0;
};

PrespawnSetup MakePrespawnTrace(const ClusterSpec& hardware, bool smoke) {
  const std::vector<ScenarioSpec> specs = {
      ScenarioSpec::Overlap(GemmShape{1024, 2048, 1024}, CommPrimitive::kAllReduce)};
  PrespawnSetup setup;
  setup.service_us = MeanServiceUs(hardware, specs);
  // capacity_per_replica requests fit in one check interval.
  setup.check_interval_us = (smoke ? 20.0 : 50.0) * setup.service_us;
  setup.burst_start_us = 4.0 * setup.check_interval_us;
  // The trace ends one interval past the ramp peak, while a late-scaling
  // fleet still owes backlog — the regime where time-to-absorb separates
  // predictive from reactive scaling (a long plateau would let the
  // reactive fleet catch up before arrivals stop and erase the signal).
  const double horizon_us = setup.burst_start_us + 5.0 * setup.check_interval_us;
  std::vector<SimTime> base;
  for (double t = 0.0; t < horizon_us; t += setup.service_us / 0.3) {
    base.push_back(t);
  }
  std::vector<SimTime> burst;
  const double multipliers[5] = {0.6, 1.07, 1.53, 2.0, 2.0};
  for (int segment = 0; segment < 5; ++segment) {
    const double start = setup.burst_start_us + segment * setup.check_interval_us;
    const double gap = setup.service_us / multipliers[segment];
    for (double t = start; t < start + setup.check_interval_us; t += gap) {
      burst.push_back(t);
    }
  }
  setup.trace = MergeStreams({MakeRequestStream("base", specs, base, 0),
                              MakeRequestStream("burst", specs, burst, 100000)});
  return setup;
}

FleetReport RunPrespawnFleet(const ClusterSpec& hardware, const PrespawnSetup& setup,
                             bool predictive, double headroom, int tune_threads,
                             bool legacy_heap, ObsPlane* obs = nullptr) {
  ClusterConfig config;
  config.replicas = 1;
  config.autoscale.enabled = true;
  config.autoscale.min_replicas = 1;
  config.autoscale.max_replicas = 6;
  config.autoscale.check_interval_us = setup.check_interval_us;
  // Queue pressure scaled to capacity (0.4 of an interval's worth of
  // work), so smoke and full runs exercise the same scaling regime
  // instead of the absolute default threshold getting easier to cross as
  // the interval grows.
  config.autoscale.spawn_queue_per_replica =
      0.4 * setup.check_interval_us / setup.service_us;
  config.autoscale.drain_after_calm_checks = 3;
  config.autoscale.predictive = predictive;
  config.autoscale.prespawn_headroom = headroom;
  // A quarter-interval half-life: the rate sample at each checkpoint
  // reflects the segment that just ran, not the one before it.
  config.sched.share_half_life_us = setup.check_interval_us / 4.0;
  // One request per dispatch: a replica's absorb rate is then exactly
  // check_interval / service, the capacity model the ramp multipliers
  // are calibrated against (batch fusion would let one replica swallow
  // the whole ramp and the section would measure nothing).
  config.serve.max_batch = 1;
  // Free cold tuning: the shared key's ~20ms default tune would stall
  // the fleet for several check intervals and the section would measure
  // tuning, not scaling (the tuning regime is the sched section's job).
  config.serve.tune_base_us = 0.0;
  config.serve.tune_per_search_us = 0.0;
  if (tune_threads > 0) {
    config.serve.tune_threads = tune_threads;
  }
  config.serve.legacy_event_heap = legacy_heap;
  config.serve.obs = obs;
  ServingCluster fleet(hardware, config, {}, EngineOptions{.jitter = false});
  return fleet.Run(setup.trace);
}

// Time from the burst's first arrival to the burst tenant's last finish —
// the absorb time the predictive tier is supposed to cut.
double BurstAbsorbUs(const FleetReport& report, double burst_start_us) {
  double last_finish_us = burst_start_us;
  for (const RequestRecord& record : report.stats.records()) {
    if (record.tenant == "burst") {
      last_finish_us = std::max(last_finish_us, record.finish_us);
    }
  }
  return last_finish_us - burst_start_us;
}

bool Run(const BenchArgs& args) {
  const bool smoke = args.smoke;
  const bool quiet = args.quiet;
  const TraceSetup setup = MakeTrace(smoke, args.requests);
  Narrate(quiet, "Serving cluster: %zu requests (llm Poisson + moe bursty), 8x A800\n\n",
          setup.trace.size());
  const auto wall_start = std::chrono::steady_clock::now();
  uint64_t total_events = 0;
  CsvWriter csv({"replicas", "policy", "ship_plans", "requests", "throughput_rps", "p50_us",
                 "p99_us", "warm_hit_rate", "tuner_searches", "distinct_keys",
                 "shipped_plans"});
  Table table({"replicas", "policy", "ship", "req/s", "p50 us", "p99 us", "hit%", "searches"});

  const std::vector<PlacementPolicy> policies = {
      PlacementPolicy::kRoundRobin, PlacementPolicy::kLeastLoaded,
      PlacementPolicy::kPlanAffinity};
  // Policy comparison without shipping: routing alone must earn warmth.
  FleetReport round_robin_4;
  FleetReport affinity_4;
  double throughput_1 = 0.0;
  double throughput_4 = 0.0;
  for (const int replicas : smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4}) {
    for (const PlacementPolicy policy : policies) {
      const FleetReport report = RunFleet(setup, replicas, policy, /*ship_plans=*/false);
      total_events += report.events;
      AddRow(&csv, &table, replicas, policy, false, report);
      if (replicas == 4 && policy == PlacementPolicy::kRoundRobin) {
        round_robin_4 = report;
      }
      if (replicas == 4 && policy == PlacementPolicy::kPlanAffinity) {
        affinity_4 = report;
      }
      if (policy == PlacementPolicy::kPlanAffinity) {
        if (replicas == 1) {
          throughput_1 = report.ThroughputPerSec();
        }
        if (replicas == 4) {
          throughput_4 = report.ThroughputPerSec();
        }
      }
    }
  }
  // Shipping on: every policy's fleet pays each search once.
  FleetReport shipped_4;
  size_t max_shipped_searches = 0;
  for (const PlacementPolicy policy : policies) {
    const FleetReport report = RunFleet(setup, 4, policy, /*ship_plans=*/true);
    total_events += report.events;
    AddRow(&csv, &table, 4, policy, true, report);
    max_shipped_searches = std::max(max_shipped_searches, report.total_searches);
    if (policy == PlacementPolicy::kPlanAffinity) {
      shipped_4 = report;
    }
  }
  Narrate(quiet, "%s\n", table.Render().c_str());
  const double sweep_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  Narrate(quiet,
          "event core: %llu events across the sweep in %.3f s wall (%.0f events/s)\n",
          static_cast<unsigned long long>(total_events), sweep_wall_s,
          sweep_wall_s > 0.0 ? static_cast<double>(total_events) / sweep_wall_s : 0.0);

  // --- Determinism gates ---
  const bool rerun_identical =
      SameTimeline(shipped_4, RunFleet(setup, 4, PlacementPolicy::kPlanAffinity, true));
  std::string snapshot;
  bool plans_replica_invariant = true;
  for (const int replicas : {1, 2, 4}) {
    ServingCluster fleet(setup.hardware,
                         ClusterConfig{.replicas = replicas,
                                       .policy = PlacementPolicy::kPlanAffinity},
                         {}, EngineOptions{.jitter = false});
    fleet.Run(setup.trace);
    const std::string serialized = fleet.shipper().SerializeSnapshot();
    if (snapshot.empty()) {
      snapshot = serialized;
    } else if (serialized != snapshot) {
      plans_replica_invariant = false;
    }
  }
  ClusterConfig threaded;
  threaded.replicas = 4;
  threaded.serve.tuner_lanes = 2;
  threaded.serve.tune_threads = 1;
  ServingCluster fleet_1t(setup.hardware, threaded, {}, EngineOptions{.jitter = false});
  const FleetReport report_1t = fleet_1t.Run(setup.trace);
  threaded.serve.tune_threads = 8;
  ServingCluster fleet_8t(setup.hardware, threaded, {}, EngineOptions{.jitter = false});
  const bool thread_invariant = SameTimeline(report_1t, fleet_8t.Run(setup.trace));

  // --- Chaos gates ---
  // Default dose: 1 crash + 1 straggler per 64 replicas (at least one
  // each), seeded from --faults and expanded over the fault-free
  // makespan. The fleet must still complete every request, keep the p99
  // within 3x of fault-free, and stay bit-deterministic under faults.
  ClusterConfig chaos_config;
  chaos_config.replicas = 4;
  chaos_config.policy = PlacementPolicy::kPlanAffinity;
  chaos_config.faults.seed = args.fault_seed;
  chaos_config.faults.horizon_us = shipped_4.makespan_us;
  chaos_config.faults.crashes = std::max(1, chaos_config.replicas / 64);
  chaos_config.faults.slowdowns = std::max(1, chaos_config.replicas / 64);
  ServingCluster chaos_fleet(setup.hardware, chaos_config, {}, EngineOptions{.jitter = false});
  const FleetReport chaos = chaos_fleet.Run(setup.trace);
  total_events += chaos.events;
  const double fault_free_p99 = shipped_4.stats.LatencyPercentiles().p99;
  const double chaos_p99 = chaos.stats.LatencyPercentiles().p99;
  const bool chaos_complete = chaos.stats.count() == setup.trace.size();
  const bool chaos_p99_ok = chaos_p99 <= 3.0 * fault_free_p99;
  ServingCluster chaos_again(setup.hardware, chaos_config, {}, EngineOptions{.jitter = false});
  const FleetReport chaos_rerun = chaos_again.Run(setup.trace);
  const bool chaos_deterministic =
      SameTimeline(chaos, chaos_rerun) &&
      chaos.fault.requests_requeued == chaos_rerun.fault.requests_requeued &&
      chaos.fault.requests_retried == chaos_rerun.fault.requests_retried &&
      chaos.fault.placement_stalls == chaos_rerun.fault.placement_stalls &&
      chaos.fault.ship_drops == chaos_rerun.fault.ship_drops;
  const double chaos_retry_rate =
      static_cast<double>(chaos.fault.requests_retried) /
      static_cast<double>(setup.trace.size());
  const double chaos_makespan_overhead =
      shipped_4.makespan_us > 0.0 ? chaos.makespan_us / shipped_4.makespan_us : 0.0;

  // --- Sched gates ---
  // One contended replica, an adversarial tenant, and a mid-run cold key:
  // fair share must protect the victim's p99 and backfill must fill the
  // tuning window without ever delaying the head batch.
  FleetReport sched_fifo;
  FleetReport sched_fair;
  double sched_victim_p99_fifo = 0.0;
  double sched_victim_p99_fair = 0.0;
  double sched_gain = 0.0;
  bool sched_complete = true;
  bool sched_off_identical = true;
  bool sched_deterministic = true;
  size_t sched_trace_size = 0;
  if (args.sched) {
    const std::vector<ServeRequest> sched_trace = MakeSchedTrace(smoke);
    sched_trace_size = sched_trace.size();
    sched_fifo = RunSchedFleet(setup.hardware, sched_trace, /*sched_on=*/false, 0, false);
    sched_fair = RunSchedFleet(setup.hardware, sched_trace, /*sched_on=*/true, 0, false);
    total_events += sched_fifo.events + sched_fair.events;
    sched_victim_p99_fifo = sched_fifo.stats.Summarize("victim").latency.p99;
    sched_victim_p99_fair = sched_fair.stats.Summarize("victim").latency.p99;
    sched_gain = sched_victim_p99_fifo > 0.0
                     ? 1.0 - sched_victim_p99_fair / sched_victim_p99_fifo
                     : 0.0;
    sched_complete = sched_fair.stats.count() == sched_trace.size() &&
                     sched_fifo.stats.count() == sched_trace.size();
    // A disabled SchedConfig with every knob tweaked must still be
    // bit-identical to the FIFO run — off means off.
    {
      ClusterConfig off;
      off.replicas = 1;
      off.sched.enabled = false;
      off.sched.share_half_life_us = 1.0;
      off.sched.backfill_slack = 99.0;
      off.sched.starvation_age_us = 1.0;
      ServingCluster off_fleet(setup.hardware, off, {}, EngineOptions{.jitter = false});
      sched_off_identical = SameTimeline(sched_fifo, off_fleet.Run(sched_trace));
    }
    // Sched-on timelines and counters must survive reruns, host tune
    // threads, and the legacy event backend byte-for-byte.
    for (const auto& [threads, legacy] :
         std::vector<std::pair<int, bool>>{{0, false}, {8, false}, {0, true}}) {
      const FleetReport variant =
          RunSchedFleet(setup.hardware, sched_trace, /*sched_on=*/true, threads, legacy);
      if (!SameTimeline(sched_fair, variant) ||
          !SameSchedOutcomes(sched_fair.sched, variant.sched)) {
        sched_deterministic = false;
      }
    }
    if (!args.trace.empty()) {
      ObsConfig obs_config;
      obs_config.enabled = true;
      obs_config.checkpoint_interval_us = 100000.0;
      ObsPlane obs(obs_config);
      RunSchedFleet(setup.hardware, sched_trace, /*sched_on=*/true, 0, false, &obs);
      if (!obs.WriteTrace(args.trace)) {
        std::printf("FAILED to write Chrome trace to %s\n", args.trace.c_str());
        sched_complete = false;
      } else {
        Narrate(quiet, "sched trace written to %s\n", args.trace.c_str());
      }
    }
  }

  // --- Prespawn gates ---
  // A scripted ramp burst: the predictive tier must pre-spawn off the
  // rate estimate and absorb the burst strictly faster than reactive-only
  // scaling, without a single drain while the burst is in flight.
  FleetReport prespawn_reactive;
  FleetReport prespawn_predictive;
  double prespawn_absorb_reactive_us = 0.0;
  double prespawn_absorb_us = 0.0;
  bool prespawn_complete = true;
  bool prespawn_off_identical = true;
  bool prespawn_deterministic = true;
  if (args.prespawn) {
    const PrespawnSetup pre = MakePrespawnTrace(setup.hardware, smoke);
    prespawn_reactive =
        RunPrespawnFleet(setup.hardware, pre, /*predictive=*/false, 1.0, 0, false);
    prespawn_predictive =
        RunPrespawnFleet(setup.hardware, pre, /*predictive=*/true, 1.0, 0, false);
    total_events += prespawn_reactive.events + prespawn_predictive.events;
    prespawn_absorb_reactive_us = BurstAbsorbUs(prespawn_reactive, pre.burst_start_us);
    prespawn_absorb_us = BurstAbsorbUs(prespawn_predictive, pre.burst_start_us);
    prespawn_complete = prespawn_reactive.stats.count() == pre.trace.size() &&
                        prespawn_predictive.stats.count() == pre.trace.size();
    // Predictive off with every predictive knob tweaked must stay
    // bit-identical to the reactive run — off means off.
    prespawn_off_identical = SameTimeline(
        prespawn_reactive,
        RunPrespawnFleet(setup.hardware, pre, /*predictive=*/false, 9.0, 0, false));
    // Predictive-on timelines and the pre-spawn count must survive
    // reruns, host tune threads, and the legacy event backend.
    for (const auto& [threads, legacy] :
         std::vector<std::pair<int, bool>>{{0, false}, {8, false}, {0, true}}) {
      const FleetReport variant =
          RunPrespawnFleet(setup.hardware, pre, /*predictive=*/true, 1.0, threads, legacy);
      if (!SameTimeline(prespawn_predictive, variant) ||
          variant.prespawns != prespawn_predictive.prespawns ||
          variant.spawns != prespawn_predictive.spawns ||
          variant.drains != prespawn_predictive.drains) {
        prespawn_deterministic = false;
      }
    }
    if (!args.trace.empty()) {
      std::string prespawn_trace_path = args.trace;
      const size_t dot = prespawn_trace_path.rfind('.');
      prespawn_trace_path.insert(
          dot == std::string::npos ? prespawn_trace_path.size() : dot, "_prespawn");
      ObsConfig obs_config;
      obs_config.enabled = true;
      obs_config.checkpoint_interval_us = pre.check_interval_us;
      ObsPlane obs(obs_config);
      RunPrespawnFleet(setup.hardware, pre, /*predictive=*/true, 1.0, 0, false, &obs);
      if (!obs.WriteTrace(prespawn_trace_path)) {
        std::printf("FAILED to write Chrome trace to %s\n", prespawn_trace_path.c_str());
        prespawn_complete = false;
      } else {
        Narrate(quiet, "prespawn trace written to %s\n", prespawn_trace_path.c_str());
      }
    }
  }

  const bool csv_ok = csv.WriteFile("cluster_bench.csv");
  char json[6144];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\": \"cluster\", \"smoke\": %s, \"requests\": %zu, \"distinct_keys\": %zu, "
      "\"throughput_rps_1\": %.2f, \"throughput_rps_4\": %.2f, "
      "\"rr_warm_hit\": %.4f, \"affinity_warm_hit\": %.4f, "
      "\"rr_searches\": %zu, \"affinity_searches\": %zu, "
      "\"shipped_searches_max\": %zu, \"shipped_plans\": %zu, "
      "\"duplicate_tunes_avoided\": %zu, \"p99_us_affinity_4\": %.1f, "
      "\"rerun_identical\": %s, \"plans_replica_invariant\": %s, \"thread_invariant\": %s, "
      "\"fault_seed\": %llu, \"fault_injects\": %zu, \"fault_p99_us\": %.1f, "
      "\"fault_retry_rate\": %.4f, \"fault_makespan_overhead\": %.4f, "
      "\"fault_requeued\": %zu, \"fault_restarts\": %zu, \"fault_completed\": %s, "
      "\"fault_rerun_identical\": %s, "
      "\"sched_section\": %s, \"sched_backfills\": %zu, \"sched_head_delays\": %zu, "
      "\"sched_reserve_idle_us\": %.1f, \"sched_preempted\": %zu, "
      "\"sched_victim_p99_fifo_us\": %.1f, \"sched_victim_p99_us\": %.1f, "
      "\"sched_p99_gain\": %.4f, \"sched_off_identical\": %s, "
      "\"sched_rerun_identical\": %s, "
      "\"prespawn_section\": %s, \"prespawn_count\": %zu, "
      "\"prespawn_spawns\": %zu, \"prespawn_drains\": %zu, "
      "\"prespawn_peak_replicas\": %d, \"reactive_peak_replicas\": %d, "
      "\"prespawn_absorb_us\": %.1f, \"reactive_absorb_us\": %.1f, "
      "\"prespawn_absorb_gain\": %.4f, \"prespawn_off_identical\": %s, "
      "\"prespawn_rerun_identical\": %s}",
      smoke ? "true" : "false", setup.trace.size(), shipped_4.distinct_keys, throughput_1,
      throughput_4, round_robin_4.WarmHitRate(), affinity_4.WarmHitRate(),
      round_robin_4.total_searches, affinity_4.total_searches, max_shipped_searches,
      shipped_4.shipping.shipped, shipped_4.shipping.duplicate_tunes_avoided,
      shipped_4.stats.LatencyPercentiles().p99, rerun_identical ? "true" : "false",
      plans_replica_invariant ? "true" : "false", thread_invariant ? "true" : "false",
      static_cast<unsigned long long>(args.fault_seed), chaos.fault.injected_total(),
      chaos_p99, chaos_retry_rate, chaos_makespan_overhead, chaos.fault.requests_requeued,
      chaos.fault.replica_restarts, chaos_complete ? "true" : "false",
      chaos_deterministic ? "true" : "false", args.sched ? "true" : "false",
      sched_fair.sched.backfills, sched_fair.sched.head_delays,
      sched_fair.sched.reserve_idle_us, sched_fair.sched.preempted_requests,
      sched_victim_p99_fifo, sched_victim_p99_fair, sched_gain,
      sched_off_identical ? "true" : "false", sched_deterministic ? "true" : "false",
      args.prespawn ? "true" : "false", prespawn_predictive.prespawns,
      prespawn_predictive.spawns, prespawn_predictive.drains,
      prespawn_predictive.peak_replicas, prespawn_reactive.peak_replicas,
      prespawn_absorb_us, prespawn_absorb_reactive_us,
      prespawn_absorb_reactive_us > 0.0
          ? 1.0 - prespawn_absorb_us / prespawn_absorb_reactive_us
          : 0.0,
      prespawn_off_identical ? "true" : "false",
      prespawn_deterministic ? "true" : "false");
  FILE* out = std::fopen("BENCH_cluster.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "%s\n", json);
    std::fclose(out);
  }
  bool ok = csv_ok && out != nullptr && AppendTrajectoryPoint(args.history, json);
  Narrate(quiet, "\nfleet scaling: %.1f -> %.1f req/s (1 -> 4 replicas, plan-affinity)\n",
          throughput_1, throughput_4);
  Narrate(quiet,
          "policy @4 replicas (no shipping): affinity hit %.1f%% / %zu searches vs "
          "round-robin %.1f%% / %zu searches\n",
          100.0 * affinity_4.WarmHitRate(), affinity_4.total_searches,
          100.0 * round_robin_4.WarmHitRate(), round_robin_4.total_searches);
  if (affinity_4.WarmHitRate() <= round_robin_4.WarmHitRate() ||
      affinity_4.total_searches >= round_robin_4.total_searches) {
    std::printf("FAIL: plan-affinity does not beat round-robin\n");
    ok = false;
  }
  Narrate(quiet,
          "plan shipping @4 replicas: <= %zu searches for %zu distinct keys "
          "(%zu duplicate tunes avoided)\n",
          max_shipped_searches, shipped_4.distinct_keys,
          shipped_4.shipping.duplicate_tunes_avoided);
  if (max_shipped_searches > shipped_4.distinct_keys) {
    std::printf("FAIL: a shipped fleet re-paid a tuner search\n");
    ok = false;
  }
  if (!rerun_identical || !plans_replica_invariant || !thread_invariant) {
    std::printf("FAIL: determinism gate (rerun %d, replica-invariant plans %d, "
                "thread-invariant %d)\n",
                rerun_identical, plans_replica_invariant, thread_invariant);
    ok = false;
  }
  Narrate(quiet,
          "chaos (seed %llu): %zu faults, %zu requeued, p99 %.0f us vs %.0f fault-free "
          "(%.2fx), makespan %.2fx\n",
          static_cast<unsigned long long>(args.fault_seed), chaos.fault.injected_total(),
          chaos.fault.requests_requeued, chaos_p99, fault_free_p99,
          fault_free_p99 > 0.0 ? chaos_p99 / fault_free_p99 : 0.0, chaos_makespan_overhead);
  if (!chaos_complete) {
    std::printf("FAIL: chaos run dropped requests (%zu of %zu completed)\n",
                chaos.stats.count(), setup.trace.size());
    ok = false;
  }
  if (!chaos_p99_ok) {
    std::printf("FAIL: chaos p99 %.0f us exceeds 3x fault-free p99 %.0f us\n", chaos_p99,
                fault_free_p99);
    ok = false;
  }
  if (!chaos_deterministic) {
    std::printf("FAIL: faulted run is not bit-deterministic across reruns\n");
    ok = false;
  }
  if (args.sched) {
    Narrate(quiet,
            "sched: victim p99 %.0f us FIFO -> %.0f us fair (%.1f%% gain), "
            "%zu backfills, %zu head delays, %.0f us reserved idle, %zu preempted\n",
            sched_victim_p99_fifo, sched_victim_p99_fair, 100.0 * sched_gain,
            sched_fair.sched.backfills, sched_fair.sched.head_delays,
            sched_fair.sched.reserve_idle_us, sched_fair.sched.preempted_requests);
    if (sched_gain < 0.10) {
      std::printf("FAIL: sched victim p99 gain %.1f%% below 10%% (FIFO %.0f us, "
                  "fair %.0f us)\n",
                  100.0 * sched_gain, sched_victim_p99_fifo, sched_victim_p99_fair);
      ok = false;
    }
    if (sched_fair.sched.backfills == 0) {
      std::printf("FAIL: sched run performed no backfills\n");
      ok = false;
    }
    if (sched_fair.sched.head_delays != 0) {
      std::printf("FAIL: backfill delayed %zu head batches\n",
                  sched_fair.sched.head_delays);
      ok = false;
    }
    if (!sched_complete) {
      std::printf("FAIL: sched runs dropped requests (%zu FIFO / %zu fair of %zu)\n",
                  sched_fifo.stats.count(), sched_fair.stats.count(), sched_trace_size);
      ok = false;
    }
    if (!sched_off_identical) {
      std::printf("FAIL: disabled SchedConfig is not bit-identical to FIFO\n");
      ok = false;
    }
    if (!sched_deterministic) {
      std::printf("FAIL: sched run is not bit-identical across reruns, tune threads, "
                  "and event backends\n");
      ok = false;
    }
  }
  if (args.prespawn) {
    Narrate(quiet,
            "prespawn: burst absorbed in %.0f us predictive vs %.0f us reactive "
            "(%zu pre-spawns, %zu drains, peak %d vs %d replicas)\n",
            prespawn_absorb_us, prespawn_absorb_reactive_us,
            prespawn_predictive.prespawns, prespawn_predictive.drains,
            prespawn_predictive.peak_replicas, prespawn_reactive.peak_replicas);
    if (prespawn_absorb_us >= prespawn_absorb_reactive_us) {
      std::printf("FAIL: predictive autoscaling did not absorb the burst faster "
                  "(%.0f us vs %.0f us reactive)\n",
                  prespawn_absorb_us, prespawn_absorb_reactive_us);
      ok = false;
    }
    if (prespawn_predictive.prespawns == 0) {
      std::printf("FAIL: predictive run fired no pre-spawns\n");
      ok = false;
    }
    if (prespawn_predictive.drains != 0) {
      std::printf("FAIL: predictive run drained %zu replicas during the burst\n",
                  prespawn_predictive.drains);
      ok = false;
    }
    if (!prespawn_complete) {
      std::printf("FAIL: prespawn runs dropped requests (%zu reactive / %zu predictive)\n",
                  prespawn_reactive.stats.count(), prespawn_predictive.stats.count());
      ok = false;
    }
    if (!prespawn_off_identical) {
      std::printf("FAIL: predictive-off config is not bit-identical to the reactive "
                  "autoscaler\n");
      ok = false;
    }
    if (!prespawn_deterministic) {
      std::printf("FAIL: predictive run is not bit-identical across reruns, tune "
                  "threads, and event backends\n");
      ok = false;
    }
  }
  if (csv_ok) {
    Narrate(quiet, "series written to cluster_bench.csv + BENCH_cluster.json\n");
  } else {
    std::printf("FAILED to write cluster_bench.csv\n");
  }
  return ok;
}

}  // namespace
}  // namespace flo

int main(int argc, char** argv) {
  return flo::Run(flo::ParseBenchArgs(argc, argv)) ? 0 : 1;
}
