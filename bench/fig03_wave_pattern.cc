// Fig. 3: wave pattern in GEMM execution.
//
// Reproduces the paper's measurement: per-tile completion times of a GEMM
// (M=2048, N=K=8192) on an RTX 4090, (a) against the tile's memory index
// without reordering (swizzling scrambles the order), and (b) against the
// reordered index, which is monotone by construction.
#include <cstdio>

#include "src/core/mapping_table.h"
#include "src/gemm/gemm_model.h"
#include "src/gemm/swizzle.h"
#include "src/gemm/wave.h"
#include "src/hw/gpu_spec.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace flo {
namespace {

void Run() {
  const GemmShape shape{2048, 8192, 8192};
  const GpuSpec gpu = MakeRtx4090();
  GemmModel model(gpu);
  const GemmConfig config = model.Configure(shape);
  TileGrid grid(shape, config.tile);
  const int swizzle = 3;  // paper: "without reordering when swizzling_size=3"
  std::vector<int> launch = SwizzledLaunchOrder(grid, swizzle);
  WaveSchedule schedule(launch, gpu.sm_count);
  TileMapping mapping(grid, schedule,
                      WavePartition::PerWave(schedule.wave_count()));

  Rng jitter(42);
  const std::vector<double> completion =
      schedule.CompletionTimes(config.wave_time_us, &jitter);

  std::printf("Fig. 3 — wave pattern in GEMM execution\n");
  std::printf("GEMM %s on %s: %d tiles (%dx%d), %d SMs -> %d waves, wave time %.1f us\n\n",
              shape.ToString().c_str(), gpu.name.c_str(), grid.tile_count(), config.tile.m,
              config.tile.n, gpu.sm_count, schedule.wave_count(), config.wave_time_us);

  // (a) completion time vs tile (memory) index: sampled rows showing the
  // scrambling; (b) vs reordered index: monotone staircase.
  Table table({"tile_index", "completion_us(a)", "reordered_index", "completion_us(b)"});
  const int step = grid.tile_count() / 32;
  for (int t = 0; t < grid.tile_count(); t += step) {
    const int slot = mapping.SlotOfTile(t);
    const int tile_of_slot = mapping.TileOfSlot(t);
    table.AddRow({std::to_string(t), FormatDouble(completion[t], 1), std::to_string(t),
                  FormatDouble(completion[tile_of_slot], 1)});
    (void)slot;
  }
  std::printf("%s\n", table.Render().c_str());

  // Verify the headline property: waves complete as tight clusters, and the
  // reordered index is monotone in completion time.
  int monotone_violations = 0;
  for (int s = 1; s < grid.tile_count(); ++s) {
    if (completion[mapping.TileOfSlot(s)] + 1e-9 <
        completion[mapping.TileOfSlot(s - 1)] - config.wave_time_us * 0.05) {
      ++monotone_violations;
    }
  }
  std::printf("waves: %d; tiles per wave: %d; intra-wave spread <= 5%% of wave time\n",
              schedule.wave_count(), gpu.sm_count);
  std::printf("reordered-order monotonicity violations beyond intra-wave spread: %d\n",
              monotone_violations);
}

}  // namespace
}  // namespace flo

int main() {
  flo::Run();
  return 0;
}
