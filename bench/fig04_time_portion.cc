// Fig. 4: typical time portion of "GEMM + X" in inference and training.
//
// For each workload, prints the fraction of non-overlapped end-to-end time
// spent in each GEMM+collective pair and in "others" (attention, KV cache,
// routing, optimizer), mirroring the paper's A800 profiles.
#include <cstdio>

#include "src/models/e2e.h"
#include "src/models/workloads.h"
#include "src/util/table.h"

namespace flo {
namespace {

void Run() {
  std::printf("Fig. 4 — time portion of GEMM + collective in end-to-end runs (A800)\n\n");
  for (const Workload& workload : AllWorkloads()) {
    const auto rows = TimePortion(workload);
    Table table({"op", "portion"});
    double gemm_x = 0.0;
    for (const auto& row : rows) {
      table.AddRow({row.name, FormatDouble(100.0 * row.fraction, 1) + "%"});
      if (row.name != "others") {
        gemm_x += row.fraction;
      }
    }
    std::printf("%s\n%s", workload.name.c_str(), table.Render().c_str());
    std::printf("GEMM+X total: %.1f%% (paper reports %.1f%%)\n\n", 100.0 * gemm_x,
                100.0 * workload.gemm_x_fraction);
  }
}

}  // namespace
}  // namespace flo

int main() {
  flo::Run();
  return 0;
}
