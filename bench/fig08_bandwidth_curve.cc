// Fig. 8: bandwidth curve varying with data size, with the degradation
// borderline (red markers in the paper).
//
// (a) AllReduce on 4x RTX 4090 (PCIe), tensor 8192x8192 half.
// (b) AllReduce on 4x A800 (NVLink), tensor 1024x4096 half.
#include <cstdio>

#include "src/comm/cost_model.h"
#include "src/hw/cluster.h"
#include "src/util/table.h"

namespace flo {
namespace {

void PrintCurve(const ClusterSpec& cluster, double max_mb) {
  CommCostModel model(cluster.link, cluster.gpu_count);
  std::printf("AllReduce on %s\n", cluster.Describe().c_str());
  Table table({"data_size", "alg_bandwidth_GB/s", "latency_us"});
  for (double mb = 0.125; mb <= max_mb; mb *= 2.0) {
    const double bytes = mb * 1024 * 1024;
    table.AddRow({FormatBytes(bytes),
                  FormatDouble(model.AlgorithmBandwidth(CommPrimitive::kAllReduce, bytes), 2),
                  FormatDouble(model.LatencyUs(CommPrimitive::kAllReduce, bytes), 1)});
  }
  std::printf("%s", table.Render().c_str());
  const double knee = model.BandwidthKneeBytes(CommPrimitive::kAllReduce, 0.8);
  std::printf("degradation borderline (80%% of peak): %s\n\n", FormatBytes(knee).c_str());
}

void Run() {
  std::printf("Fig. 8 — bandwidth vs data size\n\n");
  PrintCurve(Make4090Cluster(4), 128.0);
  PrintCurve(MakeA800Cluster(4), 1024.0);
}

}  // namespace
}  // namespace flo

int main() {
  flo::Run();
  return 0;
}
