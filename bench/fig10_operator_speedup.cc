// Fig. 10: operator-level speedups over the non-overlap baseline, averaged
// across the Table 3 shape sweep, with min/max markers — for GEMM+AR,
// GEMM+RS and GEMM+A2A on 2/4/8 GPUs of both testbeds, against the
// baseline systems where they are supported.
#include <cstdio>
#include <vector>

#include "src/baselines/baselines.h"
#include "src/core/overlap_engine.h"
#include "src/models/shapes.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace flo {
namespace {

struct Aggregate {
  std::vector<double> speedups;

  std::string Cell() const {
    if (speedups.empty()) {
      return "n/a";
    }
    const Summary s = Summarize(speedups);
    return FormatDouble(s.mean, 2) + " (" + FormatDouble(s.min, 2) + ".." +
           FormatDouble(s.max, 2) + ")";
  }
};

void RunPanel(const char* title, bool a800, CommPrimitive primitive) {
  std::printf("%s\n", title);
  Table table({"GPUs", "FlashOverlap", "FLUX", "cuBLASMp", "Async-TP", "VanillaDecomp"});
  for (int gpus : {2, 4, 8}) {
    const ClusterSpec cluster = a800 ? MakeA800Cluster(gpus) : Make4090Cluster(gpus);
    OverlapEngine engine(cluster);
    Baselines baselines(cluster);
    Aggregate ours;
    Aggregate flux;
    Aggregate cublasmp;
    Aggregate async_tp;
    Aggregate decomp;
    for (const auto& shape : OperatorShapes(primitive, a800)) {
      const double base = engine.Execute(ScenarioSpec::NonOverlap(shape, primitive)).total_us;
      ours.speedups.push_back(base / engine.Execute(ScenarioSpec::Overlap(shape, primitive)).total_us);
      const double base_model = baselines.NonOverlap(shape, primitive);
      const auto f = baselines.Flux(shape, primitive);
      if (f.supported) {
        flux.speedups.push_back(base_model / f.latency_us);
      }
      const auto c = baselines.CublasMp(shape, primitive);
      if (c.supported) {
        cublasmp.speedups.push_back(base_model / c.latency_us);
      }
      const auto at = baselines.AsyncTp(shape, primitive);
      if (at.supported) {
        async_tp.speedups.push_back(base_model / at.latency_us);
      }
      const auto d = baselines.VanillaDecomposition(shape, primitive);
      if (d.supported) {
        decomp.speedups.push_back(base_model / d.latency_us);
      }
    }
    table.AddRow({std::to_string(gpus), ours.Cell(), flux.Cell(), cublasmp.Cell(),
                  async_tp.Cell(), decomp.Cell()});
  }
  std::printf("%s\n", table.Render().c_str());
}

void Run() {
  std::printf(
      "Fig. 10 — operator-level speedup vs non-overlap, mean (min..max) over the\n"
      "Table 3 shape sweep\n\n");
  RunPanel("(a) GEMM+AR on A800", true, CommPrimitive::kAllReduce);
  RunPanel("(b) GEMM+RS on A800", true, CommPrimitive::kReduceScatter);
  RunPanel("(c) GEMM+A2A on A800", true, CommPrimitive::kAllToAll);
  RunPanel("(d) GEMM+AR on RTX 4090", false, CommPrimitive::kAllReduce);
  RunPanel("(e) GEMM+RS on RTX 4090", false, CommPrimitive::kReduceScatter);
  RunPanel("(f) GEMM+A2A on RTX 4090", false, CommPrimitive::kAllToAll);
}

}  // namespace
}  // namespace flo

int main() {
  flo::Run();
  return 0;
}
