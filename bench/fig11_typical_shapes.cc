// Fig. 11: per-shape speedup comparison on typical GEMM+RS shapes, A800.
//
// The paper's observation to reproduce: FlashOverlap outperforms the
// baselines on most shapes, with the exception of K=2048 where the
// fusion-based FLUX benefits from its fused-epilogue memory saving.
#include <cstdio>

#include "src/baselines/baselines.h"
#include "src/core/overlap_engine.h"
#include "src/models/shapes.h"
#include "src/util/table.h"

namespace flo {
namespace {

void Run() {
  std::printf("Fig. 11 — GEMM+RS on 4x A800, speedup vs non-overlap per shape\n\n");
  const ClusterSpec cluster = MakeA800Cluster(4);
  OverlapEngine engine(cluster, {}, EngineOptions{.jitter = false});
  Baselines baselines(cluster);
  const CommPrimitive prim = CommPrimitive::kReduceScatter;
  const std::vector<GemmShape> shapes = TypicalRsShapes();

  // One batched sweep: overlap + non-overlap specs for every shape.
  std::vector<ScenarioSpec> specs;
  for (const auto& shape : shapes) {
    specs.push_back(ScenarioSpec::Overlap(shape, prim));
    specs.push_back(ScenarioSpec::NonOverlap(shape, prim));
  }
  const std::vector<OverlapRun> runs = engine.RunBatch(specs);
  const size_t searches_cold = engine.tuner().search_count();
  // A second sweep is served entirely from the plan cache: zero tuner
  // searches in-band, every plan a cache hit.
  engine.planner().ResetStats();
  const std::vector<OverlapRun> warm_runs = engine.RunBatch(specs);
  (void)warm_runs;

  Table table({"M", "N", "K", "FlashOverlap", "FLUX", "cuBLASMp", "Async-TP", "VanillaDecomp",
               "winner"});
  for (size_t i = 0; i < shapes.size(); ++i) {
    const GemmShape& shape = shapes[i];
    const double base = runs[2 * i + 1].total_us;
    const double base_model = baselines.NonOverlap(shape, prim);
    const double ours = base / runs[2 * i].total_us;
    const auto flux = baselines.Flux(shape, prim);
    const auto cublasmp = baselines.CublasMp(shape, prim);
    const auto async_tp = baselines.AsyncTp(shape, prim);
    const auto decomp = baselines.VanillaDecomposition(shape, prim);
    const double flux_speedup = base_model / flux.latency_us;
    const double cublasmp_speedup = base_model / cublasmp.latency_us;
    const double async_speedup = base_model / async_tp.latency_us;
    const double decomp_speedup = base_model / decomp.latency_us;
    double best = ours;
    const char* winner = "FlashOverlap";
    for (const auto& [name, value] :
         {std::pair<const char*, double>{"FLUX", flux_speedup},
          {"cuBLASMp", cublasmp_speedup},
          {"Async-TP", async_speedup},
          {"VanillaDecomp", decomp_speedup}}) {
      if (value > best) {
        best = value;
        winner = name;
      }
    }
    table.AddRow({std::to_string(shape.m), std::to_string(shape.n), std::to_string(shape.k),
                  FormatDouble(ours, 3), FormatDouble(flux_speedup, 3),
                  FormatDouble(cublasmp_speedup, 3), FormatDouble(async_speedup, 3),
                  FormatDouble(decomp_speedup, 3), winner});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nExpected shape (paper): FlashOverlap wins except some K=2048 cases where\n"
      "FLUX's fused memory-access saving dominates.\n");
  std::printf(
      "\nplan cache: cold sweep ran %zu tuner searches; warm sweep hit %zu/%zu plans,"
      " %zu searches\n",
      searches_cold, engine.planner().stats().cache_hits, specs.size(),
      engine.tuner().search_count() - searches_cold);
}

}  // namespace
}  // namespace flo

int main() {
  flo::Run();
  return 0;
}
