// Fig. 12 (+ Tab. 4): end-to-end speedups and the applied operator
// speedups ("size 1"/"size 2") for LLM inference, MoE training, LLM
// training and text-to-video generation on A800 servers.
#include <cstdio>

#include "src/models/e2e.h"
#include "src/models/workloads.h"
#include "src/util/table.h"

namespace flo {
namespace {

void Run() {
  std::printf("Fig. 12 — end-to-end and per-operator speedups (A800)\n\n");
  for (const Workload& workload :
       {MakeLlama3Inference(), MakeMixtralTraining(), MakeLlama3Training(),
        MakeStepVideoGeneration()}) {
    const E2eReport report = EvaluateWorkload(workload);
    std::printf("%s\n", report.workload.c_str());
    Table table({"op", "non-overlap_us", "overlap_us", "speedup"});
    for (const auto& op : report.ops) {
      table.AddRow({op.name, FormatDouble(op.non_overlap_us, 0),
                    FormatDouble(op.overlap_us, 0), FormatDouble(op.speedup, 3)});
    }
    table.AddRow({"e2e (per layer)", FormatDouble(report.baseline_layer_us, 0),
                  FormatDouble(report.overlap_layer_us, 0),
                  FormatDouble(report.e2e_speedup, 3)});
    std::printf("%s\n", table.Render().c_str());
  }
  std::printf("Paper band: operator speedups ~1.1-1.5x, e2e speedups 1.05-1.13x.\n");
}

}  // namespace
}  // namespace flo

int main() {
  flo::Run();
  return 0;
}
