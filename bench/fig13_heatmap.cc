// Fig. 13: speedup heatmaps over (M*N, K) and the ratio to the theoretical
// upper bound.
//
// (a)/(c): GEMM+RS, TP=2, RTX 4090.   (b)/(d): GEMM+AR, TP=4, A800.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/overlap_engine.h"
#include "src/models/shapes.h"
#include "src/util/table.h"

namespace flo {
namespace {

void RunHeatmap(const char* title, const ClusterSpec& cluster, CommPrimitive primitive,
                const HeatmapAxes& axes) {
  OverlapEngine engine(cluster);
  std::printf("%s\n", title);
  std::vector<std::string> header{"K\\MxN(Mi)"};
  for (int mn : axes.mn_mi) {
    header.push_back(std::to_string(mn));
  }
  Table speedup_table(header);
  Table ratio_table(header);
  for (int k_ki : axes.k_ki) {
    std::vector<std::string> speedup_row{std::to_string(k_ki) + "Ki"};
    std::vector<std::string> ratio_row{std::to_string(k_ki) + "Ki"};
    for (int mn : axes.mn_mi) {
      const GemmShape shape{static_cast<int64_t>(mn) * 1024 * 1024 / axes.n, axes.n,
                            static_cast<int64_t>(k_ki) * 1024};
      const double base = engine.Execute(ScenarioSpec::NonOverlap(shape, primitive)).total_us;
      const double ours = engine.Execute(ScenarioSpec::Overlap(shape, primitive)).total_us;
      const double bound = engine.TheoreticalBest(shape, primitive);
      const double speedup = base / ours;
      const double theoretical = base / bound;
      speedup_row.push_back(FormatDouble(speedup, 2));
      ratio_row.push_back(FormatDouble(speedup / theoretical, 2));
    }
    speedup_table.AddRow(speedup_row);
    ratio_table.AddRow(ratio_row);
  }
  std::printf("speedup over non-overlap:\n%s", speedup_table.Render().c_str());
  std::printf("ratio of theoretical speedup:\n%s\n", ratio_table.Render().c_str());
}

void Run() {
  std::printf("Fig. 13 — performance heatmaps on varying GEMM sizes\n\n");
  RunHeatmap("(a)/(c) GEMM+RS, TP=2, RTX 4090", Make4090Cluster(2),
             CommPrimitive::kReduceScatter, HeatmapAxes4090());
  RunHeatmap("(b)/(d) GEMM+AR, TP=4, A800", MakeA800Cluster(4), CommPrimitive::kAllReduce,
             HeatmapAxesA800());
}

}  // namespace
}  // namespace flo

int main() {
  flo::Run();
  return 0;
}
