// Fig. 14: ablation of the wave-grouping strategy.
//
// Compares FlashOverlap's tuned partition against (1) a deliberately
// misconfigured wave size (+20 tiles per wave, so signals fire late), and
// (2) equally-sized groupings Egs=n. Paper conclusions to reproduce:
// fixed-size grouping fails (best size differs per platform), equal-sized
// grouping fails (later groups should be larger), FlashOverlap wins.
#include <cstdio>

#include "src/core/overlap_engine.h"
#include "src/util/table.h"

namespace flo {
namespace {

void RunPanel(const char* title, const ClusterSpec& cluster, CommPrimitive primitive,
              const std::vector<GemmShape>& shapes, const std::vector<int>& equal_sizes) {
  OverlapEngine engine(cluster, {}, EngineOptions{.jitter = false});
  std::printf("%s\n", title);
  std::vector<std::string> header{"(M,N,K)", "non-overlap", "mis-wave"};
  for (int egs : equal_sizes) {
    header.push_back("Egs=" + std::to_string(egs));
  }
  header.push_back("FlashOverlap");
  Table table(header);
  for (const auto& shape : shapes) {
    const double base = engine.Execute(ScenarioSpec::NonOverlap(shape, primitive)).total_us;
    std::vector<std::string> row{shape.ToString(), "1.000"};
    PredictorSetup setup = engine.tuner().MakeSetup(shape, primitive);
    const int waves = setup.EffectiveWaveCount();
    // Misconfigured wave size (+20 in the paper's experiment): every signal
    // waits for 20 tiles of the following wave, delaying each group's
    // communication without changing what is communicated.
    {
      const double t = engine.Execute(ScenarioSpec::Misconfigured(shape, primitive, 20)).total_us;
      row.push_back(FormatDouble(base / t, 3));
    }
    for (int egs : equal_sizes) {
      const WavePartition partition = WavePartition::EqualSized(waves, egs);
      const double t = engine.Execute(ScenarioSpec::Overlap(shape, primitive, &partition)).total_us;
      row.push_back(FormatDouble(base / t, 3));
    }
    const double tuned = engine.Execute(ScenarioSpec::Overlap(shape, primitive)).total_us;
    row.push_back(FormatDouble(base / tuned, 3));
    table.AddRow(row);
  }
  std::printf("%s\n", table.Render().c_str());
}

void Run() {
  std::printf("Fig. 14 — wave grouping ablation\n\n");
  RunPanel("GEMM+AR on 2x RTX 4090", Make4090Cluster(2), CommPrimitive::kAllReduce,
           {GemmShape{2048, 8192, 4096}, GemmShape{4096, 8192, 8192},
            GemmShape{2048, 8192, 16384}},
           {1, 2, 4, 8});
  RunPanel("GEMM+RS on 4x A800", MakeA800Cluster(4), CommPrimitive::kReduceScatter,
           {GemmShape{4096, 8192, 8192}, GemmShape{8192, 8192, 1024},
            GemmShape{16384, 8192, 1024}},
           {1, 2, 4, 8, 16, 32});
}

}  // namespace
}  // namespace flo

int main() {
  flo::Run();
  return 0;
}
