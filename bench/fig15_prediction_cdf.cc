// Fig. 15: CDF of the latency predictor's error ratio, plus the AE C2
// claim: the predictive search reaches >99% of the exhaustive optimum.
//
// 250+ combinations of sizes, grouping partitions and parallelism settings
// per GPU type, predictor vs fine-grained simulated execution.
#include <cstdio>
#include <vector>

#include "src/core/overlap_engine.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace flo {
namespace {

void RunPanel(const char* title, bool a800) {
  std::vector<double> errors;
  for (int gpus : {2, 4, 8}) {
    const ClusterSpec cluster = a800 ? MakeA800Cluster(gpus) : Make4090Cluster(gpus);
    OverlapEngine engine(cluster);
    for (int64_t m : {2048, 4096, 8192}) {
      for (int64_t k : {2048, 4096, 8192}) {
        for (CommPrimitive primitive :
             {CommPrimitive::kAllReduce, CommPrimitive::kReduceScatter}) {
          const GemmShape shape{m, 8192, k};
          PredictorSetup setup = engine.tuner().MakeSetup(shape, primitive);
          const int waves = setup.EffectiveWaveCount();
          // Several grouping partitions per size, as in the paper's sweep.
          for (const WavePartition& partition :
               {WavePartition::EqualSized(waves, 1), WavePartition::EqualSized(waves, 2),
                WavePartition::EqualSized(waves, 4)}) {
            const double predicted =
                PredictOverlapLatency(setup, partition).latency_us;
            const double actual =
                engine.Execute(ScenarioSpec::Overlap(shape, primitive, &partition)).total_us;
            errors.push_back(std::abs(actual - predicted) / actual);
          }
        }
      }
    }
  }
  const Summary summary = Summarize(errors);
  std::printf("%s — %zu combinations, avg error %.2f%%, max %.2f%%\n", title, errors.size(),
              100.0 * summary.mean, 100.0 * summary.max);
  Table table({"error<=", "CDF"});
  const std::vector<double> thresholds{0.0025, 0.005, 0.01, 0.02, 0.05, 0.10, 0.25};
  const auto cdf = EmpiricalCdf(errors, thresholds);
  for (size_t i = 0; i < thresholds.size(); ++i) {
    table.AddRow({FormatDouble(100.0 * thresholds[i], 2) + "%",
                  FormatDouble(100.0 * cdf[i], 1) + "%"});
  }
  std::printf("%s\n", table.Render().c_str());
}

void SearchQuality() {
  // Searched partition vs the best partition of the exhaustive space,
  // executed in the simulator.
  std::printf("Predictive search vs exhaustive search (simulated actuals)\n");
  Table table({"cluster", "shape", "searched_us", "exhaustive_best_us", "ratio"});
  for (auto make_cluster : {Make4090Cluster, MakeA800Cluster}) {
    OverlapEngine engine(make_cluster(4), {}, EngineOptions{.jitter = false});
    for (const GemmShape& shape : {GemmShape{2048, 8192, 8192}, GemmShape{1024, 8192, 4096}}) {
      const CommPrimitive primitive = CommPrimitive::kAllReduce;
      const OverlapRun searched = engine.Execute(ScenarioSpec::Overlap(shape, primitive));
      PredictorSetup setup = engine.tuner().MakeSetup(shape, primitive);
      const int waves = setup.EffectiveWaveCount();
      if (waves > 16) {
        continue;
      }
      double best = searched.total_us;
      for (const auto& partition : EnumerateAllPartitions(waves)) {
        best = std::min(best, engine.Execute(ScenarioSpec::Overlap(shape, primitive, &partition)).total_us);
      }
      table.AddRow({engine.cluster().Describe(), shape.ToString(),
                    FormatDouble(searched.total_us, 1), FormatDouble(best, 1),
                    FormatDouble(best / searched.total_us, 4)});
    }
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nPaper claim: searched partitions achieve > 99%% of the optimal ones.\n");
}

void Run() {
  std::printf("Fig. 15 — CDF of prediction error ratio\n\n");
  RunPanel("(a) RTX 4090", false);
  RunPanel("(b) A800", true);
  SearchQuality();
}

}  // namespace
}  // namespace flo

int main() {
  flo::Run();
  return 0;
}
