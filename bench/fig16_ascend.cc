// Fig. 16: GEMM+AR speedup on HUAWEI Ascend 910B NPUs (HCCS + HCCL), the
// paper's adaptability demonstration (Sec. 6.7) — the same engine, only
// the hardware spec changes. Paper: consistent acceleration on all tested
// cases, up to 1.37x.
#include <cstdio>

#include "src/core/overlap_engine.h"
#include "src/models/shapes.h"
#include "src/util/table.h"

namespace flo {
namespace {

void Run() {
  std::printf("Fig. 16 — GEMM+AR speedup on HUAWEI Ascend 910B\n\n");
  for (int tp : {2, 4}) {
    OverlapEngine engine(MakeAscendCluster(tp));
    std::printf("TP=%d\n", tp);
    Table table({"M", "N", "K", "non-overlap_us", "FlashOverlap_us", "speedup"});
    double max_speedup = 0.0;
    for (const auto& shape : AscendShapes()) {
      const double base = engine.Execute(ScenarioSpec::NonOverlap(shape, CommPrimitive::kAllReduce)).total_us;
      const double ours = engine.Execute(ScenarioSpec::Overlap(shape, CommPrimitive::kAllReduce)).total_us;
      max_speedup = std::max(max_speedup, base / ours);
      table.AddRow({std::to_string(shape.m), std::to_string(shape.n),
                    std::to_string(shape.k), FormatDouble(base, 0), FormatDouble(ours, 0),
                    FormatDouble(base / ours, 3)});
    }
    std::printf("%smax speedup: %.2fx (paper: up to 1.37x)\n\n", table.Render().c_str(),
                max_speedup);
  }
}

}  // namespace
}  // namespace flo

int main() {
  flo::Run();
  return 0;
}
