// Planner performance benchmark: branch-and-bound tuner search vs the
// legacy enumerate-then-evaluate pipeline, plus cold/warm RunBatch sweeps
// with and without the parallel cold-tuning pool.
//
// Shapes are chosen to land at 30+ effective waves on the 8x A800 cluster —
// the regime where the legacy path materializes the full 65536-candidate
// pruned space per search. The binary overrides global operator new to
// count heap allocations, demonstrating that the steady-state B&B search
// loop allocates nothing per candidate.
//
// Usage: bench_planner [--smoke] [--history <file>]   (--smoke shrinks
// repetitions for CI). Writes BENCH_planner.json (machine-readable, one
// object) to the cwd; --history appends the same JSON as one compact line
// to the given trajectory file (CI appends to bench/history/ so the perf
// trajectory accumulates in-tree instead of one artifact per run). Exits
// nonzero when the >= 10x cold-search speedup gate fails.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench/trajectory.h"
#include "src/core/flashoverlap.h"
#include "src/util/table.h"

// --- Allocation instrumentation (whole binary) ---
namespace {
std::atomic<size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace flo {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct SearchStats {
  double seconds = 0.0;
  size_t searches = 0;
  size_t work_units = 0;  // candidates (legacy) or B&B nodes
  size_t allocations = 0;
  int min_waves = 0;
};

// Times cold Tuner::Search calls: a fresh tuner per repetition so every
// search misses every cache. The first (untimed) round warms the searcher
// workspace and the malloc arena so the timed rounds measure steady state.
SearchStats TimeColdSearches(const ClusterSpec& cluster, const TunerConfig& config,
                             const std::vector<GemmShape>& shapes, int repetitions) {
  SearchStats stats;
  stats.min_waves = 1 << 30;
  {
    Tuner warmup(cluster, config);
    for (const GemmShape& shape : shapes) {
      warmup.Tune(shape, CommPrimitive::kAllReduce);
    }
  }
  for (int rep = 0; rep < repetitions; ++rep) {
    Tuner tuner(cluster, config);
    // Pre-resolve the offline artifacts (GEMM configs, latency curve):
    // they are deployment-time work, not part of the per-size search.
    for (const GemmShape& shape : shapes) {
      tuner.GemmConfigFor(shape);
    }
    tuner.LatencyCurveFor(CommPrimitive::kAllReduce);
    const size_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
    const Clock::time_point start = Clock::now();
    for (const GemmShape& shape : shapes) {
      const TunedPlan& plan = tuner.Tune(shape, CommPrimitive::kAllReduce);
      stats.work_units += config.use_legacy_enumeration
                              ? static_cast<size_t>(plan.candidates_evaluated)
                              : plan.search_nodes;
      stats.min_waves = std::min(stats.min_waves, plan.effective_waves);
    }
    stats.seconds += SecondsSince(start);
    stats.allocations += g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
    stats.searches += shapes.size();
  }
  return stats;
}

std::vector<ScenarioSpec> SweepSpecs(const std::vector<GemmShape>& shapes) {
  std::vector<ScenarioSpec> specs;
  for (const GemmShape& shape : shapes) {
    specs.push_back(ScenarioSpec::Overlap(shape, CommPrimitive::kAllReduce));
    specs.push_back(ScenarioSpec::Overlap(shape, CommPrimitive::kReduceScatter));
  }
  return specs;
}

double TimeRunBatch(OverlapEngine* engine, const std::vector<ScenarioSpec>& specs) {
  const Clock::time_point start = Clock::now();
  engine->RunBatch(specs);
  return SecondsSince(start);
}

bool Run(bool smoke, const std::string& history_path) {
  const ClusterSpec cluster = MakeA800Cluster(8);
  // 30+ effective waves each (256x128 tiles, width = 104 usable SMs): the
  // regime where the legacy pipeline enumerates its full candidate cap per
  // search. The gate below verifies the wave count at runtime.
  const std::vector<GemmShape> shapes = {
      {12544, 8192, 8192}, {13056, 8192, 8192}, {13568, 8192, 8192}, {14080, 8192, 8192}};
  const int repetitions = smoke ? 1 : 5;

  TunerConfig legacy_config;
  legacy_config.use_legacy_enumeration = true;
  const TunerConfig bnb_config;

  std::printf("Cold Tuner::Search, %zu shapes x %d repetitions, 8x A800 AllReduce\n",
              shapes.size(), repetitions);
  const SearchStats legacy = TimeColdSearches(cluster, legacy_config, shapes, repetitions);
  const SearchStats bnb = TimeColdSearches(cluster, bnb_config, shapes, repetitions);

  const double legacy_per_search_us = legacy.seconds * 1e6 / legacy.searches;
  const double bnb_per_search_us = bnb.seconds * 1e6 / bnb.searches;
  const double speedup = legacy_per_search_us / bnb_per_search_us;
  const double bnb_allocs_per_node =
      static_cast<double>(bnb.allocations) / static_cast<double>(bnb.work_units);

  Table table({"path", "us/search", "searches/s", "work-units/s", "allocs/search",
               "allocs/candidate"});
  table.AddRow({"legacy enumerate", FormatDouble(legacy_per_search_us, 1),
                FormatDouble(legacy.searches / legacy.seconds, 1),
                FormatDouble(legacy.work_units / legacy.seconds, 0),
                FormatDouble(static_cast<double>(legacy.allocations) / legacy.searches, 1),
                FormatDouble(static_cast<double>(legacy.allocations) / legacy.work_units, 2)});
  table.AddRow({"branch-and-bound", FormatDouble(bnb_per_search_us, 1),
                FormatDouble(bnb.searches / bnb.seconds, 1),
                FormatDouble(bnb.work_units / bnb.seconds, 0),
                FormatDouble(static_cast<double>(bnb.allocations) / bnb.searches, 1),
                FormatDouble(bnb_allocs_per_node, 4)});
  std::printf("%sspeedup: %.1fx at >=%d effective waves\n\n", table.Render().c_str(), speedup,
              std::min(legacy.min_waves, bnb.min_waves));

  // Cold vs warm batch sweeps through the full planner pipeline.
  const std::vector<ScenarioSpec> specs = SweepSpecs(shapes);
  EngineOptions serial_options{.jitter = false};
  OverlapEngine cold_engine(cluster, bnb_config, serial_options);
  const double cold_us = TimeRunBatch(&cold_engine, specs) * 1e6;
  const size_t searches_after_cold = cold_engine.tuner().search_count();
  const double warm_us = TimeRunBatch(&cold_engine, specs) * 1e6;
  EngineOptions pooled_options{.jitter = false};
  pooled_options.tune_threads = 4;
  OverlapEngine pooled_engine(cluster, bnb_config, pooled_options);
  const double pooled_cold_us = TimeRunBatch(&pooled_engine, specs) * 1e6;
  // A warm sweep must not search at all; the JSON records the proof.
  const size_t warm_searches = cold_engine.tuner().search_count() - searches_after_cold;
  std::printf("RunBatch over %zu specs: cold %.0f us, cold+pool(4) %.0f us, warm %.0f us "
              "(%zu warm searches)\n",
              specs.size(), cold_us, pooled_cold_us, warm_us, warm_searches);

  char line[1024];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\": \"planner\", \"smoke\": %s, \"effective_waves_min\": %d, "
      "\"searches_per_path\": %zu, \"legacy_search_us\": %.3f, "
      "\"legacy_candidates_per_sec\": %.0f, \"legacy_allocs_per_candidate\": %.4f, "
      "\"bnb_search_us\": %.3f, \"bnb_searches_per_sec\": %.1f, \"bnb_nodes_per_sec\": %.0f, "
      "\"bnb_allocs_per_node\": %.6f, \"speedup_vs_legacy\": %.2f, "
      "\"runbatch_cold_us\": %.1f, \"runbatch_cold_pooled_us\": %.1f, "
      "\"runbatch_warm_us\": %.1f, \"runbatch_specs\": %zu, \"warm_sweep_searches\": %zu}",
      smoke ? "true" : "false", std::min(legacy.min_waves, bnb.min_waves), legacy.searches,
      legacy_per_search_us, legacy.work_units / legacy.seconds,
      static_cast<double>(legacy.allocations) / legacy.work_units, bnb_per_search_us,
      bnb.searches / bnb.seconds, bnb.work_units / bnb.seconds, bnb_allocs_per_node, speedup,
      cold_us, pooled_cold_us, warm_us, specs.size(), warm_searches);
  FILE* json = std::fopen("BENCH_planner.json", "w");
  if (json == nullptr) {
    std::printf("FAILED to open BENCH_planner.json\n");
    return false;
  }
  std::fprintf(json, "%s\n", line);
  std::fclose(json);
  std::printf("series written to BENCH_planner.json\n");
  if (!AppendTrajectoryPoint(history_path, line)) {
    return false;
  }

  bool ok = true;
  if (std::min(legacy.min_waves, bnb.min_waves) < 30) {
    std::printf("FAIL: benchmark shapes below 30 effective waves\n");
    ok = false;
  }
  if (speedup < 10.0) {
    std::printf("FAIL: cold-search speedup %.1fx misses the 10x gate\n", speedup);
    ok = false;
  }
  // Allocation-freedom: the B&B's per-search allocations are a small
  // constant (setup copies, the latency table, the returned plan) that
  // does not grow with the candidate count — i.e. zero allocations per
  // candidate in the steady-state loop.
  const double bnb_allocs_per_search = static_cast<double>(bnb.allocations) / bnb.searches;
  if (bnb_allocs_per_search > 32.0) {
    std::printf("FAIL: B&B allocates %.1f per search (want a small constant)\n",
                bnb_allocs_per_search);
    ok = false;
  }
  return ok;
}

}  // namespace
}  // namespace flo

int main(int argc, char** argv) {
  const flo::BenchArgs args = flo::ParseBenchArgs(argc, argv);
  return flo::Run(args.smoke, args.history) ? 0 : 1;
}
