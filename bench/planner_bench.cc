// Planner performance benchmark: branch-and-bound tuner search vs the
// legacy enumerate-then-evaluate pipeline, plus cold/warm RunBatch sweeps
// with and without the parallel cold-tuning pool.
//
// Shapes are chosen to land at 30+ effective waves on the 8x A800 cluster —
// the regime where the legacy path materializes the full 65536-candidate
// pruned space per search. The binary overrides global operator new to
// count heap allocations, demonstrating that the steady-state B&B search
// loop allocates nothing per candidate.
//
// Usage: bench_planner [--smoke] [--history <file>]   (--smoke shrinks
// repetitions for CI). Writes BENCH_planner.json (machine-readable, one
// object) to the cwd; --history appends the same JSON as one compact line
// to the given trajectory file (CI appends to bench/history/ so the perf
// trajectory accumulates in-tree instead of one artifact per run). Exits
// nonzero when the >= 10x cold-search speedup gate fails.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <new>
#include <utility>
#include <string>
#include <vector>

#include "bench/trajectory.h"
#include "src/core/flashoverlap.h"
#include "src/util/table.h"

// --- Allocation instrumentation (whole binary) ---
namespace {
std::atomic<size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace flo {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct SearchStats {
  double seconds = 0.0;
  size_t searches = 0;
  size_t work_units = 0;  // candidates (legacy) or B&B nodes
  size_t allocations = 0;
  int min_waves = 0;
};

// Times cold Tuner::Search calls: a fresh tuner per repetition so every
// search misses every cache. The first (untimed) round warms the searcher
// workspace and the malloc arena so the timed rounds measure steady state.
SearchStats TimeColdSearches(const ClusterSpec& cluster, const TunerConfig& config,
                             const std::vector<GemmShape>& shapes, int repetitions) {
  SearchStats stats;
  stats.min_waves = 1 << 30;
  {
    Tuner warmup(cluster, config);
    for (const GemmShape& shape : shapes) {
      warmup.Tune(shape, CommPrimitive::kAllReduce);
    }
  }
  for (int rep = 0; rep < repetitions; ++rep) {
    Tuner tuner(cluster, config);
    // Pre-resolve the offline artifacts (GEMM configs, latency curve):
    // they are deployment-time work, not part of the per-size search.
    for (const GemmShape& shape : shapes) {
      tuner.GemmConfigFor(shape);
    }
    tuner.LatencyCurveFor(CommPrimitive::kAllReduce);
    const size_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
    const Clock::time_point start = Clock::now();
    for (const GemmShape& shape : shapes) {
      const TunedPlan& plan = tuner.Tune(shape, CommPrimitive::kAllReduce);
      stats.work_units += config.use_legacy_enumeration
                              ? static_cast<size_t>(plan.candidates_evaluated)
                              : plan.search_nodes;
      stats.min_waves = std::min(stats.min_waves, plan.effective_waves);
    }
    stats.seconds += SecondsSince(start);
    stats.allocations += g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
    stats.searches += shapes.size();
  }
  return stats;
}

// --- Multi-rank (imbalanced All-to-All) section -----------------------------

struct MultiRankStats {
  double seconds = 0.0;
  size_t searches = 0;
  // Full-timeline rendezvous replays (PredictOverlapLatencyMultiRank
  // calls) — the work the fused search eliminates.
  size_t replays = 0;
  size_t work_units = 0;  // candidates scored (replay path) or B&B nodes
  double best_us = 0.0;
  int base_waves = 0;
};

// The pre-fusion joint search, mirroring the legacy imbalanced path's
// coarsening: enumerate the bounded candidate space at the lightest rank's
// resolution (so every candidate restates onto every rank), then score
// each candidate with one full rendezvous replay.
MultiRankStats TimeReplayJointSearch(const ClusterSpec& cluster,
                                     const std::vector<GemmShape>& shapes,
                                     int repetitions) {
  MultiRankStats stats;
  Tuner tuner(cluster);
  std::vector<PredictorSetup> setups;
  int min_waves = 1 << 30;
  for (const GemmShape& shape : shapes) {
    setups.push_back(tuner.MakeSetup(shape, CommPrimitive::kAllToAll));
    stats.base_waves = std::max(stats.base_waves, setups.back().EffectiveWaveCount());
    min_waves = std::min(min_waves, setups.back().EffectiveWaveCount());
  }
  const std::vector<WavePartition> candidates = EnumeratePruned(min_waves, 2, 4, 65536);
  const Clock::time_point start = Clock::now();
  for (int rep = 0; rep < repetitions; ++rep) {
    WavePartition best;
    double best_us = std::numeric_limits<double>::infinity();
    std::vector<WavePartition> projected(setups.size());
    for (const WavePartition& candidate : candidates) {
      bool feasible = true;
      for (size_t r = 0; r < setups.size(); ++r) {
        auto partition =
            ProjectPartition(candidate, min_waves, setups[r].EffectiveWaveCount());
        if (!partition.has_value()) {
          feasible = false;
          break;
        }
        projected[r] = *std::move(partition);
      }
      if (!feasible) {
        continue;
      }
      ++stats.replays;
      ++stats.work_units;
      const double latency = PredictOverlapLatencyMultiRank(setups, projected).latency_us;
      if (latency < best_us) {
        best_us = latency;
        best = candidate;
      }
    }
    // The single-group fallback is in the pruned set (EnumeratePruned's
    // first insurance seed), so `best_us` already covers "don't overlap".
    stats.best_us = best_us;
    ++stats.searches;
  }
  stats.seconds = SecondsSince(start);
  return stats;
}

// The fused path: Tuner::TuneImbalanced, cold per repetition (fresh tuner,
// offline artifacts pre-resolved). Zero full-timeline replays by
// construction — every node is table arithmetic.
MultiRankStats TimeFusedImbalanced(const ClusterSpec& cluster,
                                   const std::vector<GemmShape>& shapes,
                                   int repetitions) {
  MultiRankStats stats;
  {
    Tuner warmup(cluster);
    warmup.TuneImbalanced(shapes, CommPrimitive::kAllToAll);
  }
  for (int rep = 0; rep < repetitions; ++rep) {
    Tuner tuner(cluster);
    for (const GemmShape& shape : shapes) {
      tuner.GemmConfigFor(shape);
    }
    tuner.LatencyCurveFor(CommPrimitive::kAllToAll);
    const Clock::time_point start = Clock::now();
    const TunedMultiRankPlan& plan = tuner.TuneImbalanced(shapes, CommPrimitive::kAllToAll);
    stats.seconds += SecondsSince(start);
    stats.work_units += plan.search_nodes;
    stats.best_us = plan.predicted_us;
    stats.base_waves = plan.base_waves;
    ++stats.searches;
  }
  return stats;
}

std::vector<ScenarioSpec> SweepSpecs(const std::vector<GemmShape>& shapes) {
  std::vector<ScenarioSpec> specs;
  for (const GemmShape& shape : shapes) {
    specs.push_back(ScenarioSpec::Overlap(shape, CommPrimitive::kAllReduce));
    specs.push_back(ScenarioSpec::Overlap(shape, CommPrimitive::kReduceScatter));
  }
  return specs;
}

double TimeRunBatch(OverlapEngine* engine, const std::vector<ScenarioSpec>& specs) {
  const Clock::time_point start = Clock::now();
  engine->RunBatch(specs);
  return SecondsSince(start);
}

bool Run(bool smoke, const std::string& history_path) {
  const ClusterSpec cluster = MakeA800Cluster(8);
  // 30+ effective waves each (256x128 tiles, width = 104 usable SMs): the
  // regime where the legacy pipeline enumerates its full candidate cap per
  // search. The gate below verifies the wave count at runtime.
  const std::vector<GemmShape> shapes = {
      {12544, 8192, 8192}, {13056, 8192, 8192}, {13568, 8192, 8192}, {14080, 8192, 8192}};
  const int repetitions = smoke ? 1 : 5;

  TunerConfig legacy_config;
  legacy_config.use_legacy_enumeration = true;
  const TunerConfig bnb_config;

  std::printf("Cold Tuner::Search, %zu shapes x %d repetitions, 8x A800 AllReduce\n",
              shapes.size(), repetitions);
  const SearchStats legacy = TimeColdSearches(cluster, legacy_config, shapes, repetitions);
  const SearchStats bnb = TimeColdSearches(cluster, bnb_config, shapes, repetitions);

  const double legacy_per_search_us = legacy.seconds * 1e6 / legacy.searches;
  const double bnb_per_search_us = bnb.seconds * 1e6 / bnb.searches;
  const double speedup = legacy_per_search_us / bnb_per_search_us;
  const double bnb_allocs_per_node =
      static_cast<double>(bnb.allocations) / static_cast<double>(bnb.work_units);

  Table table({"path", "us/search", "searches/s", "work-units/s", "allocs/search",
               "allocs/candidate"});
  table.AddRow({"legacy enumerate", FormatDouble(legacy_per_search_us, 1),
                FormatDouble(legacy.searches / legacy.seconds, 1),
                FormatDouble(legacy.work_units / legacy.seconds, 0),
                FormatDouble(static_cast<double>(legacy.allocations) / legacy.searches, 1),
                FormatDouble(static_cast<double>(legacy.allocations) / legacy.work_units, 2)});
  table.AddRow({"branch-and-bound", FormatDouble(bnb_per_search_us, 1),
                FormatDouble(bnb.searches / bnb.seconds, 1),
                FormatDouble(bnb.work_units / bnb.seconds, 0),
                FormatDouble(static_cast<double>(bnb.allocations) / bnb.searches, 1),
                FormatDouble(bnb_allocs_per_node, 4)});
  std::printf("%sspeedup: %.1fx at >=%d effective waves\n\n", table.Render().c_str(), speedup,
              std::min(legacy.min_waves, bnb.min_waves));

  // Multi-rank: the fused imbalanced branch-and-bound vs the joint search
  // that scores the bounded candidate space with full rendezvous replays.
  // 4 ranks, heaviest at 30+ effective waves.
  const std::vector<GemmShape> imbalanced_shapes = {{14080, 8192, 8192},
                                                    {10240, 8192, 8192},
                                                    {6656, 8192, 8192},
                                                    {4608, 8192, 8192}};
  std::printf("Multi-rank imbalanced tuning, %zu ranks x %d repetitions, AllToAll\n",
              imbalanced_shapes.size(), repetitions);
  const MultiRankStats replay =
      TimeReplayJointSearch(cluster, imbalanced_shapes, repetitions);
  const MultiRankStats fused = TimeFusedImbalanced(cluster, imbalanced_shapes, repetitions);
  const double replay_search_us = replay.seconds * 1e6 / replay.searches;
  const double fused_search_us = fused.seconds * 1e6 / fused.searches;
  const double mr_speedup = replay_search_us / fused_search_us;
  const size_t replay_replays_per_search = replay.replays / replay.searches;
  Table mr_table({"path", "us/search", "replays/search", "work-units/search"});
  mr_table.AddRow({"rendezvous replay", FormatDouble(replay_search_us, 1),
                   FormatDouble(static_cast<double>(replay_replays_per_search), 0),
                   FormatDouble(static_cast<double>(replay.work_units) / replay.searches, 0)});
  mr_table.AddRow({"fused multi-rank B&B", FormatDouble(fused_search_us, 1), "0",
                   FormatDouble(static_cast<double>(fused.work_units) / fused.searches, 0)});
  std::printf(
      "%sreplay elimination: %zu -> 0 per search at %d base waves (%.1fx wall-clock); "
      "plan quality: fused %.1f us vs coarse-replay %.1f us\n"
      "(the replay path scores the legacy coarse space at %.2f us/candidate; the fused "
      "B&B walks the full fine-resolution bounded space at %.3f us/node)\n\n",
      mr_table.Render().c_str(), replay_replays_per_search, fused.base_waves, mr_speedup,
      fused.best_us, replay.best_us,
      replay.seconds * 1e6 / static_cast<double>(replay.replays),
      fused.seconds * 1e6 / static_cast<double>(fused.work_units));

  // Cold vs warm batch sweeps through the full planner pipeline.
  const std::vector<ScenarioSpec> specs = SweepSpecs(shapes);
  EngineOptions serial_options{.jitter = false};
  OverlapEngine cold_engine(cluster, bnb_config, serial_options);
  const double cold_us = TimeRunBatch(&cold_engine, specs) * 1e6;
  const size_t searches_after_cold = cold_engine.tuner().search_count();
  const double warm_us = TimeRunBatch(&cold_engine, specs) * 1e6;
  EngineOptions pooled_options{.jitter = false};
  pooled_options.tune_threads = 4;
  OverlapEngine pooled_engine(cluster, bnb_config, pooled_options);
  const double pooled_cold_us = TimeRunBatch(&pooled_engine, specs) * 1e6;
  // A warm sweep must not search at all; the JSON records the proof.
  const size_t warm_searches = cold_engine.tuner().search_count() - searches_after_cold;
  std::printf("RunBatch over %zu specs: cold %.0f us, cold+pool(4) %.0f us, warm %.0f us "
              "(%zu warm searches)\n",
              specs.size(), cold_us, pooled_cold_us, warm_us, warm_searches);

  char line[2048];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\": \"planner\", \"smoke\": %s, \"effective_waves_min\": %d, "
      "\"searches_per_path\": %zu, \"legacy_search_us\": %.3f, "
      "\"legacy_candidates_per_sec\": %.0f, \"legacy_allocs_per_candidate\": %.4f, "
      "\"bnb_search_us\": %.3f, \"bnb_searches_per_sec\": %.1f, \"bnb_nodes_per_sec\": %.0f, "
      "\"bnb_allocs_per_node\": %.6f, \"speedup_vs_legacy\": %.2f, "
      "\"runbatch_cold_us\": %.1f, \"runbatch_cold_pooled_us\": %.1f, "
      "\"runbatch_warm_us\": %.1f, \"runbatch_specs\": %zu, \"warm_sweep_searches\": %zu, "
      "\"mr_ranks\": %zu, \"mr_base_waves\": %d, \"mr_replay_search_us\": %.3f, "
      "\"mr_fused_search_us\": %.3f, \"mr_speedup\": %.2f, "
      "\"mr_replays_per_search\": %zu, \"mr_fused_replays\": 0, "
      "\"mr_fused_nodes_per_search\": %zu, \"mr_replay_best_us\": %.4f, "
      "\"mr_fused_best_us\": %.4f}",
      smoke ? "true" : "false", std::min(legacy.min_waves, bnb.min_waves), legacy.searches,
      legacy_per_search_us, legacy.work_units / legacy.seconds,
      static_cast<double>(legacy.allocations) / legacy.work_units, bnb_per_search_us,
      bnb.searches / bnb.seconds, bnb.work_units / bnb.seconds, bnb_allocs_per_node, speedup,
      cold_us, pooled_cold_us, warm_us, specs.size(), warm_searches,
      imbalanced_shapes.size(), fused.base_waves, replay_search_us, fused_search_us,
      mr_speedup, replay_replays_per_search, fused.work_units / fused.searches,
      replay.best_us, fused.best_us);
  FILE* json = std::fopen("BENCH_planner.json", "w");
  if (json == nullptr) {
    std::printf("FAILED to open BENCH_planner.json\n");
    return false;
  }
  std::fprintf(json, "%s\n", line);
  std::fclose(json);
  std::printf("series written to BENCH_planner.json\n");
  if (!AppendTrajectoryPoint(history_path, line)) {
    return false;
  }

  bool ok = true;
  if (std::min(legacy.min_waves, bnb.min_waves) < 30) {
    std::printf("FAIL: benchmark shapes below 30 effective waves\n");
    ok = false;
  }
  if (speedup < 10.0) {
    std::printf("FAIL: cold-search speedup %.1fx misses the 10x gate\n", speedup);
    ok = false;
  }
  // Allocation-freedom: the B&B's per-search allocations are a small
  // constant (setup copies, the latency table, the returned plan) that
  // does not grow with the candidate count — i.e. zero allocations per
  // candidate in the steady-state loop.
  const double bnb_allocs_per_search = static_cast<double>(bnb.allocations) / bnb.searches;
  if (bnb_allocs_per_search > 32.0) {
    std::printf("FAIL: B&B allocates %.1f per search (want a small constant)\n",
                bnb_allocs_per_search);
    ok = false;
  }
  // Multi-rank gates: the benchmark regime (4 ranks, 20+ base waves), the
  // >= 50x replay elimination (the fused search performs zero full-timeline
  // replays; the replay path pays one per scored candidate), and the fused
  // optimum not losing to the coarse replay-scored set. The last is not a
  // superset guarantee — an up-projected coarse candidate can leave the
  // fused bounded space (its first group can exceed s1 after rounding) —
  // but the fused search's fine-resolution safety families, heaviest-rank
  // incumbent, and far larger bounded space win on every regime measured;
  // a trip of this gate means real search-quality regression, not noise
  // (plan values are deterministic).
  if (fused.base_waves < 20 || imbalanced_shapes.size() < 4) {
    std::printf("FAIL: multi-rank benchmark below 20 base waves / 4 ranks\n");
    ok = false;
  }
  if (replay_replays_per_search < 50) {
    std::printf("FAIL: replay baseline performs %zu full-timeline replays per search "
                "(need >= 50 for the 50x elimination gate)\n",
                replay_replays_per_search);
    ok = false;
  }
  if (fused.best_us > replay.best_us * (1.0 + 1e-6)) {
    std::printf("FAIL: fused multi-rank best %.4f us loses to the replay-scored %.4f us\n",
                fused.best_us, replay.best_us);
    ok = false;
  }
  return ok;
}

}  // namespace
}  // namespace flo

int main(int argc, char** argv) {
  const flo::BenchArgs args = flo::ParseBenchArgs(argc, argv);
  return flo::Run(args.smoke, args.history) ? 0 : 1;
}
