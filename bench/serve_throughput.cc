// Online serving benchmark: throughput-latency curves for a two-tenant
// request mix over one shared executor, cold plan cache vs warm.
//
// Tenants: "llm" replays Llama3-70B inference ops under Poisson arrivals;
// "moe" replays Mixtral imbalanced All-to-All ops under bursty arrivals.
// The same trace is served twice on one engine — the first pass tunes
// every distinct plan (cold), the second is served entirely from the
// PlanStore (warm steady state). On a repeating trace the warm hit rate
// must exceed 90%: the serving-side payoff of reusable plans.
//
// Usage: bench_serve_throughput [--smoke] [--requests N]   (--smoke
// shrinks the sweep for CI; --requests overrides the per-tenant request
// count). Writes serve_throughput.csv next to the binary's cwd.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/trajectory.h"
#include "src/core/flashoverlap.h"
#include "src/models/workloads.h"
#include "src/util/csv.h"
#include "src/util/table.h"

namespace flo {
namespace {

// Mean simulated service time of the spec mix, measured on a scratch
// engine so the served engines start genuinely cold.
double MeanServiceUs(const ClusterSpec& cluster, const std::vector<ScenarioSpec>& specs) {
  OverlapEngine scratch(cluster, {}, EngineOptions{.jitter = false});
  double total = 0.0;
  for (const ScenarioSpec& spec : specs) {
    total += scratch.Execute(spec).total_us;
  }
  return total / static_cast<double>(specs.size());
}

void AddRows(CsvWriter* csv, const char* phase, double utilization, const ServeReport& report) {
  for (const TenantSummary& s : report.stats.SummarizeAll()) {
    csv->AddRow({phase, FormatDouble(utilization, 2), s.tenant, std::to_string(s.requests),
                 FormatDouble(s.latency.p50, 1), FormatDouble(s.latency.p90, 1),
                 FormatDouble(s.latency.p95, 1), FormatDouble(s.latency.p99, 1),
                 FormatDouble(s.mean_queue_us, 1), FormatDouble(s.mean_exec_us, 1),
                 FormatDouble(s.cache_hit_rate, 4),
                 FormatDouble(report.ThroughputPerSec(), 2)});
  }
}

void PrintReport(const char* phase, const ServeReport& report) {
  Table table({"tenant", "reqs", "p50 us", "p95 us", "p99 us", "queue us", "exec us", "hit%"});
  for (const TenantSummary& s : report.stats.SummarizeAll()) {
    table.AddRow({s.tenant, std::to_string(s.requests), FormatDouble(s.latency.p50, 1),
                  FormatDouble(s.latency.p95, 1), FormatDouble(s.latency.p99, 1),
                  FormatDouble(s.mean_queue_us, 1), FormatDouble(s.mean_exec_us, 1),
                  FormatDouble(100.0 * s.cache_hit_rate, 1)});
  }
  std::printf("%s: %.1f req/s, makespan %.0f us, %zu batches (%zu cold), tuner busy %.0f us\n%s",
              phase, report.ThroughputPerSec(), report.makespan_us, report.batches,
              report.cold_batches, report.tuner_busy_us, table.Render().c_str());
}

// False when the warm-cache hit-rate target is missed (nonzero exit for CI).
bool Run(bool smoke, int64_t requests_override) {
  std::printf("Online serving: two tenants on one shared executor, 8x A800\n");
  const Workload llm = MakeLlama3Inference();
  const Workload moe = MakeMixtralTraining();
  const ClusterSpec cluster = llm.cluster;
  const std::vector<ScenarioSpec> llm_specs = WorkloadSpecs(llm);
  const std::vector<ScenarioSpec> moe_specs = WorkloadSpecs(moe);

  const double llm_service_us = MeanServiceUs(cluster, llm_specs);
  const double moe_service_us = MeanServiceUs(cluster, moe_specs);
  std::printf("mean service: llm %.0f us, moe %.0f us\n\n", llm_service_us, moe_service_us);

  const int per_tenant = requests_override > 0 ? static_cast<int>(requests_override / 2)
                                               : (smoke ? 40 : 200);
  const std::vector<double> utilizations = smoke ? std::vector<double>{0.8}
                                                 : std::vector<double>{0.5, 0.8, 1.2};
  CsvWriter csv({"phase", "utilization", "tenant", "requests", "p50_us", "p90_us", "p95_us",
                 "p99_us", "mean_queue_us", "mean_exec_us", "cache_hit_rate",
                 "throughput_rps"});
  double min_warm_hit_rate = 1.0;
  for (const double utilization : utilizations) {
    // Each tenant offers half the target executor utilization.
    const double llm_mean_ia = llm_service_us / (utilization / 2.0);
    const double moe_mean_ia = moe_service_us / (utilization / 2.0);
    const auto trace = MergeStreams(
        {MakeRequestStream("llm", llm_specs, PoissonArrivals(llm_mean_ia, per_tenant, 1), 0),
         MakeRequestStream("moe", moe_specs,
                           BurstyArrivals(moe_mean_ia, 4.0, 8, per_tenant, 2), 100000)});

    OverlapEngine engine(cluster, {}, EngineOptions{.jitter = false});
    ServeLoop loop(&engine);
    std::printf("--- utilization %.2f (%d reqs/tenant) ---\n", utilization, per_tenant);
    const auto wall_start = std::chrono::steady_clock::now();
    const ServeReport cold = loop.Run(trace);
    PrintReport("cold", cold);
    const ServeReport warm = loop.Run(trace);
    PrintReport("warm", warm);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    const double events = static_cast<double>(cold.events + warm.events);
    std::printf("event core: %.0f events in %.3f s wall (%.0f events/s)\n", events, wall_s,
                wall_s > 0.0 ? events / wall_s : 0.0);
    AddRows(&csv, "cold", utilization, cold);
    AddRows(&csv, "warm", utilization, warm);
    min_warm_hit_rate = std::min(min_warm_hit_rate, warm.stats.CacheHitRate());
    const PlanStoreStats store = engine.plan_store().stats();
    std::printf("plan store: %zu plans, %zu hits / %zu misses / %zu evictions\n\n",
                engine.plan_store().size(), store.hits, store.misses, store.evictions);
  }
  const bool csv_ok = csv.WriteFile("serve_throughput.csv");
  // Worst warm point across the whole sweep, so no configuration hides.
  std::printf("warm-cache steady state: plan-cache hit rate %.1f%% (%s the 90%% target)\n",
              100.0 * min_warm_hit_rate, min_warm_hit_rate > 0.9 ? "meets" : "MISSES");
  std::printf("%s", csv_ok ? "series written to serve_throughput.csv\n"
                           : "FAILED to write serve_throughput.csv\n");
  return csv_ok && min_warm_hit_rate > 0.9;
}

}  // namespace
}  // namespace flo

int main(int argc, char** argv) {
  const flo::BenchArgs args = flo::ParseBenchArgs(argc, argv);
  return flo::Run(args.smoke, args.requests) ? 0 : 1;
}
