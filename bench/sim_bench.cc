// Raw-speed gates for the discrete-event core: the calendar-queue typed
// event loop vs the legacy std::function binary heap, plus a
// million-request end-to-end serving run over a 128-replica fleet.
//
// Four sections, four gates (nonzero exit for CI):
//  1. event core: the same synthetic arrival/completion schedule driven
//     through both backends in one binary — the streaming typed calendar
//     core must sustain >= 10x the events/sec of the legacy baseline
//     (every arrival materialized up front as a heap-allocated closure in
//     a binary heap, the old engine's exact shape), with identical
//     dispatch-order checksums;
//  2. end to end: >= 1M requests (smoke: 50k) streamed via cursors over a
//     128-replica fleet must complete within the wall budget;
//  3. bit identity: at reduced scale, fleet reports are identical between
//     the calendar queue and the legacy heap, across replica counts, tune
//     thread counts, and reruns.
//  4. observability: the same end-to-end run with the full tracing +
//     metrics plane attached must produce a bit-identical fleet report
//     and cost <= 5% events/s vs the untraced lane; --trace/--metrics
//     export the run's Chrome trace and metrics time series.
//
// Usage: bench_sim_bench [--smoke] [--history <file>] [--requests N]
//                        [--trace <file>] [--metrics <file>] [--quiet]
// Writes BENCH_sim.json; --history appends it to the trajectory file;
// --requests overrides the end-to-end request count; --quiet drops the
// progress narration (gate verdicts still print).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/trajectory.h"
#include "src/core/flashoverlap.h"
#include "src/obs/obs_plane.h"
#include "src/serve/request_cursor.h"

namespace flo {
namespace {

double WallSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// Section 1: event-core microbenchmark.

// Deterministic 64-bit mix (splitmix64 finalizer): the synthetic schedule
// derives from the event index alone, so both backends — and the
// materialized and streaming drivers — see the exact same schedule without
// sharing an RNG stream.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Arrival timestamps (strictly increasing: gaps are strictly positive, so
// consecutive arrivals never tie) and per-request service times. Built once
// outside the timed region: the timed lanes should measure the event core,
// not the synthetic workload generator.
struct CoreSchedule {
  std::vector<double> arrive_at;
  std::vector<double> service_us;
};

CoreSchedule MakeCoreSchedule(int64_t arrivals) {
  CoreSchedule schedule;
  schedule.arrive_at.resize(static_cast<size_t>(arrivals));
  schedule.service_us.resize(static_cast<size_t>(arrivals));
  double t = 0.0;
  for (int64_t i = 0; i < arrivals; ++i) {
    t += 0.5 + static_cast<double>(Mix64(static_cast<uint64_t>(i)) % 2000) * 0.01;
    schedule.arrive_at[static_cast<size_t>(i)] = t;
    schedule.service_us[static_cast<size_t>(i)] =
        5.0 + static_cast<double>(Mix64(~static_cast<uint64_t>(i)) % 4000) * 0.01;
  }
  return schedule;
}

struct CoreRun {
  uint64_t events = 0;
  uint64_t checksum = 0;
  double wall_s = 0.0;
  double EventsPerSec() const {
    return wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0;
  }
};

// Runs the schedule (each arrival dispatches one completion) through an
// EventLoop. `materialize` pushes every arrival up front — the old
// engine's behavior, a full-trace-sized heap of closures — while the
// streaming driver keeps one arrival in flight, cursor-style. The
// dispatch order (and so the checksum) is identical either way: arrivals
// occupy band 0, completions are pushed in dispatch order in both.
CoreRun RunCore(bool legacy_heap, bool materialize, const CoreSchedule& schedule) {
  const int64_t arrivals = static_cast<int64_t>(schedule.arrive_at.size());
  EventLoop loop(legacy_heap);
  CoreRun result;
  const uint32_t done_handler =
      loop.RegisterHandler([&result](const EventRecord& record, SimTime now) {
        result.checksum = result.checksum * 1099511628211ull + record.key * 2654435761ull +
                          static_cast<uint64_t>(now * 100.0);
      });
  int64_t next = 0;
  uint32_t arrive_handler = 0;
  auto push_arrival = [&]() {
    EventRecord arrival;
    arrival.type = EventType::kArrival;
    arrival.handler = arrive_handler;
    arrival.key = static_cast<uint64_t>(next);
    loop.Push(schedule.arrive_at[static_cast<size_t>(next)], arrival);
    ++next;
  };
  arrive_handler =
      loop.RegisterHandler([&](const EventRecord& record, SimTime now) {
        result.checksum = result.checksum * 1099511628211ull + record.key;
        EventRecord done;
        done.type = EventType::kBatchFinished;
        done.handler = done_handler;
        done.key = record.key;
        loop.Push(now + schedule.service_us[record.key], done);
        if (!materialize && next < arrivals) {
          push_arrival();
        }
      });
  const auto start = std::chrono::steady_clock::now();
  if (materialize) {
    while (next < arrivals) {
      push_arrival();
    }
  } else if (arrivals > 0) {
    push_arrival();
  }
  loop.RunToCompletion();
  result.wall_s = WallSince(start);
  result.events = loop.dispatched();
  return result;
}

// Fastest of `reps` alternating reps per lane: wall-clock noise on shared
// machines only ever slows a lane down, so each lane's best rate is its
// honest capability, and alternating decorrelates slow spells from lanes.
struct CorePair {
  CoreRun legacy;
  CoreRun calendar;
};

CorePair RunCoreBestOf(const CoreSchedule& schedule, int reps) {
  CorePair best;
  for (int rep = 0; rep < reps; ++rep) {
    // Legacy baseline exactly as the old engine ran: the whole trace
    // materialized up front as heap-allocated closures in a binary heap.
    const CoreRun legacy = RunCore(/*legacy_heap=*/true, /*materialize=*/true, schedule);
    // Fast path: typed records through the calendar queue, arrivals
    // streamed so the live population stays small.
    const CoreRun calendar = RunCore(/*legacy_heap=*/false, /*materialize=*/false, schedule);
    if (rep == 0 || legacy.EventsPerSec() > best.legacy.EventsPerSec()) {
      best.legacy = legacy;
    }
    if (rep == 0 || calendar.EventsPerSec() > best.calendar.EventsPerSec()) {
      best.calendar = calendar;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Sections 2 through 4: serving-fleet runs.

std::vector<ScenarioSpec> BenchSpecs() {
  std::vector<ScenarioSpec> specs;
  for (const int64_t m : {1024, 2048, 4096, 6144}) {
    specs.push_back(
        ScenarioSpec::Overlap(GemmShape{m, 8192, 3584}, CommPrimitive::kReduceScatter));
  }
  return specs;
}

double MeanServiceUs(const ClusterSpec& hardware, const std::vector<ScenarioSpec>& specs) {
  OverlapEngine scratch(hardware, {}, EngineOptions{.jitter = false});
  double total = 0.0;
  for (const ScenarioSpec& spec : specs) {
    total += scratch.Execute(spec).total_us;
  }
  return total / static_cast<double>(specs.size());
}

// Four synthetic tenants, Poisson arrivals, load split evenly; the fleet
// runs at ~80% of aggregate executor capacity so queues stay shallow and
// the event population is dominated by in-flight work, not backlog.
struct StreamSetup {
  std::vector<std::unique_ptr<SyntheticCursor>> tenants;
  std::vector<RequestCursor*> sources;
};

StreamSetup MakeStreams(const std::vector<ScenarioSpec>& specs, double service_us,
                        int replicas, int64_t total_requests) {
  constexpr int kTenants = 4;
  StreamSetup setup;
  const double fleet_ia_us = service_us / (0.8 * static_cast<double>(replicas));
  for (int t = 0; t < kTenants; ++t) {
    const int64_t count = total_requests / kTenants +
                          (t < total_requests % kTenants ? 1 : 0);
    setup.tenants.push_back(std::make_unique<SyntheticCursor>(
        "tenant" + std::to_string(t), specs,
        ArrivalProcess::Poisson(fleet_ia_us * kTenants, /*seed=*/100 + t), count,
        /*first_id=*/static_cast<int64_t>(t) * 10000000));
  }
  for (const auto& tenant : setup.tenants) {
    setup.sources.push_back(tenant.get());
  }
  return setup;
}

bool ReportsIdentical(const FleetReport& a, const FleetReport& b) {
  if (a.makespan_us != b.makespan_us || a.stats.count() != b.stats.count() ||
      a.total_searches != b.total_searches || a.distinct_keys != b.distinct_keys ||
      a.events != b.events || a.spawns != b.spawns || a.drains != b.drains) {
    return false;
  }
  for (size_t i = 0; i < a.stats.count(); ++i) {
    const RequestRecord& ra = a.stats.records()[i];
    const RequestRecord& rb = b.stats.records()[i];
    if (ra.id != rb.id || ra.tenant != rb.tenant || ra.arrival_us != rb.arrival_us ||
        ra.start_us != rb.start_us || ra.finish_us != rb.finish_us ||
        ra.plan_cache_hit != rb.plan_cache_hit || ra.batch_size != rb.batch_size) {
      return false;
    }
  }
  return true;
}

// One fresh end-to-end fleet run: new streams, new fleet, optionally with
// the observability plane attached. Streams and fleet are seeded
// deterministically, so every lane replays the same simulation and the
// reports are comparable bit for bit.
struct E2ERun {
  FleetReport report;
  double wall_s = 0.0;
  double EventsPerSec() const {
    return wall_s > 0.0 ? static_cast<double>(report.events) / wall_s : 0.0;
  }
};

E2ERun RunEndToEnd(const ClusterSpec& hardware, const std::vector<ScenarioSpec>& specs,
                   double service_us, int replicas, int64_t requests, ObsPlane* obs) {
  StreamSetup streams = MakeStreams(specs, service_us, replicas, requests);
  MergeCursor cursor(streams.sources);
  ClusterConfig config;
  config.replicas = replicas;
  config.policy = PlacementPolicy::kPlanAffinity;
  config.serve.obs = obs;
  ServingCluster fleet(hardware, config, {}, EngineOptions{.jitter = false});
  E2ERun run;
  const auto start = std::chrono::steady_clock::now();
  run.report = fleet.Run(&cursor);
  run.wall_s = WallSince(start);
  return run;
}

FleetReport RunIdentityFleet(const ClusterSpec& hardware,
                             const std::vector<ServeRequest>& trace, int replicas,
                             int tune_threads, bool legacy_heap) {
  ClusterConfig config;
  config.replicas = replicas;
  config.policy = PlacementPolicy::kPlanAffinity;
  config.serve.tuner_lanes = 2;
  config.serve.tune_threads = tune_threads;
  config.serve.legacy_event_heap = legacy_heap;
  ServingCluster fleet(hardware, config, {}, EngineOptions{.jitter = false});
  return fleet.Run(trace);
}

bool Run(const BenchArgs& args) {
  const bool smoke = args.smoke;
  const bool quiet = args.quiet;
  bool ok = true;

  // --- Section 1: event core, both backends, one binary ---
  // Full headline scale even under --smoke: the legacy heap's O(log n)
  // sift only shows its real cost once the materialized population blows
  // past the cache, and the whole section is a few seconds.
  const int64_t core_arrivals = 1000000;
  constexpr int kCoreReps = 3;
  const CoreSchedule schedule = MakeCoreSchedule(core_arrivals);
  const CorePair core = RunCoreBestOf(schedule, kCoreReps);
  const CoreRun& legacy = core.legacy;
  const CoreRun& calendar = core.calendar;
  const bool core_checksums_match = legacy.checksum == calendar.checksum;
  const double core_speedup =
      legacy.EventsPerSec() > 0.0 ? calendar.EventsPerSec() / legacy.EventsPerSec() : 0.0;
  Narrate(quiet, "event core (%lld arrivals, %llu events, best of %d):\n",
          static_cast<long long>(core_arrivals),
          static_cast<unsigned long long>(calendar.events), kCoreReps);
  Narrate(quiet, "  legacy std::function heap : %10.0f events/s (%.3f s)\n",
          legacy.EventsPerSec(), legacy.wall_s);
  Narrate(quiet, "  calendar typed streaming  : %10.0f events/s (%.3f s)\n",
          calendar.EventsPerSec(), calendar.wall_s);
  Narrate(quiet, "  speedup %.1fx, dispatch checksums %s\n", core_speedup,
          core_checksums_match ? "match" : "MISMATCH");
  if (!core_checksums_match) {
    std::printf("FAIL: backends dispatched different schedules\n");
    ok = false;
  }
  if (core_speedup < 10.0) {
    std::printf("FAIL: calendar core below the 10x events/sec gate (%.1fx)\n", core_speedup);
    ok = false;
  }

  // --- Section 2: end-to-end streaming fleet run ---
  const int replicas = 128;
  const int64_t requests =
      args.requests > 0 ? args.requests : (smoke ? 50000 : 1000000);
  const ClusterSpec hardware = MakeA800Cluster(8);
  const std::vector<ScenarioSpec> specs = BenchSpecs();
  const double service_us = MeanServiceUs(hardware, specs);
  const E2ERun plain = RunEndToEnd(hardware, specs, service_us, replicas, requests, nullptr);
  const FleetReport& report = plain.report;
  Narrate(quiet,
          "\nend to end: %zu requests over %d replicas, %llu events in %.2f s wall "
          "(%.0f events/s, %.0f requests/s wall)\n",
          report.stats.count(), replicas,
          static_cast<unsigned long long>(report.events), plain.wall_s,
          plain.EventsPerSec(),
          plain.wall_s > 0.0 ? static_cast<double>(report.stats.count()) / plain.wall_s
                             : 0.0);
  if (report.stats.count() != static_cast<size_t>(requests)) {
    std::printf("FAIL: served %zu of %lld requests\n", report.stats.count(),
                static_cast<long long>(requests));
    ok = false;
  }
  // Wall budget: "a million requests in seconds". The smoke run scales the
  // budget down but keeps the same per-request bar.
  const double wall_budget_s = smoke ? 30.0 : 60.0;
  if (plain.wall_s > wall_budget_s) {
    std::printf("FAIL: end-to-end wall %.2f s exceeds the %.0f s budget\n", plain.wall_s,
                wall_budget_s);
    ok = false;
  }

  // --- Section 3: calendar vs legacy bit identity at reduced scale ---
  const int64_t identity_requests = smoke ? 6000 : 20000;
  StreamSetup identity_streams = MakeStreams(specs, service_us, 4, identity_requests);
  MergeCursor identity_cursor(identity_streams.sources);
  std::vector<ServeRequest> identity_trace;
  identity_trace.reserve(static_cast<size_t>(identity_requests));
  while (auto request = identity_cursor.Next()) {
    identity_trace.push_back(std::move(*request));
  }
  bool bit_identical = true;
  for (const int fleet_replicas : {2, 5}) {
    for (const int tune_threads : {1, 8}) {
      const FleetReport with_heap =
          RunIdentityFleet(hardware, identity_trace, fleet_replicas, tune_threads, true);
      const FleetReport with_calendar =
          RunIdentityFleet(hardware, identity_trace, fleet_replicas, tune_threads, false);
      const FleetReport rerun =
          RunIdentityFleet(hardware, identity_trace, fleet_replicas, tune_threads, false);
      const bool same = ReportsIdentical(with_heap, with_calendar) &&
                        ReportsIdentical(with_calendar, rerun);
      Narrate(quiet, "bit identity @%d replicas, %d tune threads: %s\n", fleet_replicas,
              tune_threads, same ? "ok" : "MISMATCH");
      bit_identical = bit_identical && same;
    }
  }
  if (!bit_identical) {
    std::printf("FAIL: calendar and legacy heap timelines diverge\n");
    ok = false;
  }

  // --- Section 4: observability overhead at full end-to-end scale ---
  // Same fleet, same streams, full plane on (tracing + metrics checkpoints
  // + flight recorder). Two gates: the traced report must be bit-identical
  // to the untraced one (attaching the plane cannot perturb the
  // simulation), and the traced lane must hold >= 95% of the untraced
  // events/s. Wall noise on shared machines swings runs by +-10-20%, an
  // order of magnitude above the plane's true cost (~1-2% at the default
  // ring capacity), so the overhead estimate is the MINIMUM ratio over
  // back-to-back untraced/traced pairs — each pair shares one noise
  // environment, noise only ever slows a lane, and the least-contaminated
  // pair is the tightest bound on real cost. Stops early once a pair
  // clears the bar.
  ObsConfig obs_config;
  obs_config.enabled = true;
  obs_config.checkpoint_interval_us = 100000.0;  // 100ms sim-clock rows
  ObsPlane obs(obs_config);
  constexpr int kObsMaxPairs = 5;
  constexpr double kObsGatePct = 5.0;
  E2ERun traced_best;
  E2ERun plain_best = plain;  // section 2's run seeds the untraced lane
  double obs_overhead_pct = 0.0;
  bool obs_identical = true;
  for (int pair = 0; pair < kObsMaxPairs; ++pair) {
    const E2ERun untraced =
        RunEndToEnd(hardware, specs, service_us, replicas, requests, nullptr);
    const E2ERun traced =
        RunEndToEnd(hardware, specs, service_us, replicas, requests, &obs);
    obs_identical = obs_identical && ReportsIdentical(traced.report, report) &&
                    ReportsIdentical(untraced.report, report);
    if (untraced.EventsPerSec() > plain_best.EventsPerSec()) {
      plain_best = untraced;
    }
    if (pair == 0 || traced.EventsPerSec() > traced_best.EventsPerSec()) {
      traced_best = traced;
    }
    const double pair_pct =
        traced.EventsPerSec() > 0.0
            ? 100.0 * (untraced.EventsPerSec() / traced.EventsPerSec() - 1.0)
            : 0.0;
    if (pair == 0 || pair_pct < obs_overhead_pct) {
      obs_overhead_pct = pair_pct;
    }
    Narrate(quiet, "obs pair %d: untraced %10.0f vs traced %10.0f events/s (%+.2f%%)\n",
            pair, untraced.EventsPerSec(), traced.EventsPerSec(), pair_pct);
    if (obs_overhead_pct <= kObsGatePct && pair >= 1) {
      break;
    }
  }
  Narrate(quiet,
          "observability: %.2f%% overhead (min over pairs), %llu spans emitted "
          "(%llu dropped from rings), %zu checkpoint rows\n",
          obs_overhead_pct, static_cast<unsigned long long>(obs.tracer().emitted()),
          static_cast<unsigned long long>(obs.tracer().dropped()),
          obs.metrics().checkpoint_count());
  if (!obs_identical) {
    std::printf("FAIL: attaching the observability plane perturbed the simulation\n");
    ok = false;
  }
  if (obs_overhead_pct > kObsGatePct) {
    std::printf("FAIL: observability overhead %.2f%% exceeds the %.0f%% events/s gate\n",
                obs_overhead_pct, kObsGatePct);
    ok = false;
  }
  if (obs.enabled() && obs.tracer().emitted() == 0) {
    std::printf("FAIL: traced run emitted no spans\n");
    ok = false;
  }
  if (!args.trace.empty()) {
    if (obs.WriteTrace(args.trace)) {
      Narrate(quiet, "wrote Chrome trace to %s\n", args.trace.c_str());
    } else {
      std::printf("FAILED to write trace to %s\n", args.trace.c_str());
      ok = false;
    }
  }
  if (!args.metrics.empty()) {
    if (obs.WriteMetricsCsv(args.metrics)) {
      Narrate(quiet, "wrote metrics time series to %s\n", args.metrics.c_str());
    } else {
      std::printf("FAILED to write metrics to %s\n", args.metrics.c_str());
      ok = false;
    }
  }

  char json[1280];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\": \"sim\", \"smoke\": %s, \"sim_requests\": %zu, \"sim_replicas\": %d, "
      "\"sim_events\": %llu, \"sim_wall_s\": %.3f, \"sim_events_per_sec\": %.0f, "
      "\"sim_core_events_per_sec\": %.0f, \"sim_core_legacy_events_per_sec\": %.0f, "
      "\"sim_core_speedup\": %.2f, \"sim_bit_identical\": %s, "
      "\"obs_overhead_pct\": %.2f, \"obs_events_per_sec\": %.0f, \"obs_spans\": %llu, "
      "\"obs_checkpoints\": %zu, \"obs_identical\": %s}",
      smoke ? "true" : "false", report.stats.count(), replicas,
      static_cast<unsigned long long>(report.events), plain.wall_s, plain.EventsPerSec(),
      calendar.EventsPerSec(), legacy.EventsPerSec(), core_speedup,
      bit_identical && core_checksums_match ? "true" : "false", obs_overhead_pct,
      traced_best.EventsPerSec(),
      static_cast<unsigned long long>(obs.tracer().emitted()),
      obs.metrics().checkpoint_count(), obs_identical ? "true" : "false");
  FILE* out = std::fopen("BENCH_sim.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "%s\n", json);
    std::fclose(out);
    Narrate(quiet, "wrote BENCH_sim.json\n");
  } else {
    std::printf("FAILED to write BENCH_sim.json\n");
  }
  ok = ok && out != nullptr && AppendTrajectoryPoint(args.history, json);
  return ok;
}

}  // namespace
}  // namespace flo

int main(int argc, char** argv) {
  return flo::Run(flo::ParseBenchArgs(argc, argv)) ? 0 : 1;
}
