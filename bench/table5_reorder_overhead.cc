// Table 5: overhead of the reordering fused into the RMSNorm kernel
// (post-communication) and the GEMM epilogue (pre-communication).
//
// Two views are reported:
//  * measured host kernels (google-benchmark): plain RMSNorm vs the
//    mapping-table-directed gather variants at tile / subtile / subtoken
//    granularity, and plain GEMM epilogue store vs scatter store;
//  * the modeled device overhead: extra bytes moved for the mapping table
//    relative to the payload (the paper attributes its 0.07-9.6% numbers
//    to exactly this traffic plus cache-line under-utilization).
#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <cstdio>
#include <vector>

#include "src/core/mapping_table.h"
#include "src/core/reorder.h"
#include "src/core/rmsnorm.h"
#include "src/gemm/host_gemm.h"
#include "src/gemm/swizzle.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace flo {
namespace {

constexpr int64_t kM = 1024;
constexpr int64_t kN = 2048;
constexpr int kGpus = 4;
constexpr float kEps = 1e-5f;

struct Setup {
  TileGrid grid;
  TileMapping mapping;
  // Constructed after `mapping` reaches its final address: SubtokenLayout
  // keeps a pointer to the mapping it was built from.
  std::unique_ptr<SubtokenLayout> layout;
  std::vector<float> staging;
  std::vector<float> recv;  // ReduceScatter receive buffer (per rank)
  std::vector<float> out;
  std::vector<float> rows_out;
};

Setup& GlobalSetup() {
  static Setup* setup = [] {
    const GemmShape shape{kM, kN, 256};
    TileGrid grid(shape, TileShape{64, 64});
    WaveSchedule schedule(SwizzledLaunchOrder(grid, 3), 16);
    auto* s = new Setup{grid,
                        TileMapping(grid, schedule,
                                    WavePartition::EqualSized(schedule.wave_count(), 2)),
                        nullptr,
                        RandomMatrix(1, kM * kN, 1),
                        RandomMatrix(1, kM * kN / kGpus, 2),
                        std::vector<float>(kM * kN),
                        std::vector<float>(kM * kN / kGpus)};
    Rng rng(7);
    std::vector<int> route(kM);
    for (auto& r : route) {
      r = static_cast<int>(rng.NextBelow(kGpus));
    }
    s->layout = std::make_unique<SubtokenLayout>(s->mapping, std::move(route), kGpus);
    return s;
  }();
  return *setup;
}

// Post-communication RMSNorm fused with the subtile reorder: normalizes the
// rank's complete rows reading fragments straight out of the ReduceScatter
// receive buffer (slot-major k-th subtiles).
void RmsNormFromSubtiles(const TileMapping& mapping, int gpus, int rank,
                         std::span<const float> recv, std::span<float> rows_out, float eps) {
  const TileGrid& grid = mapping.grid();
  const int64_t n = grid.shape().n;
  const int tile_m = grid.tile().m;
  const int tile_n = grid.tile().n;
  const int sub_m = tile_m / gpus;
  const int64_t sub_elems = mapping.SubtileElems(gpus);
  (void)rank;
  for (int tile_row = 0; tile_row < grid.rows(); ++tile_row) {
    for (int j = 0; j < sub_m; ++j) {
      double sq = 0.0;
      for (int col_tile = 0; col_tile < grid.cols(); ++col_tile) {
        const int slot = mapping.SlotOfTile(tile_row * grid.cols() + col_tile);
        const float* fragment =
            recv.data() + static_cast<int64_t>(slot) * sub_elems + static_cast<int64_t>(j) * tile_n;
        for (int c = 0; c < tile_n; ++c) {
          sq += static_cast<double>(fragment[c]) * fragment[c];
        }
      }
      const float scale = 1.0f / std::sqrt(static_cast<float>(sq / static_cast<double>(n)) + eps);
      const int64_t local_row = static_cast<int64_t>(tile_row) * sub_m + j;
      for (int col_tile = 0; col_tile < grid.cols(); ++col_tile) {
        const int slot = mapping.SlotOfTile(tile_row * grid.cols() + col_tile);
        const float* fragment =
            recv.data() + static_cast<int64_t>(slot) * sub_elems + static_cast<int64_t>(j) * tile_n;
        float* dst = rows_out.data() + local_row * n + static_cast<int64_t>(col_tile) * tile_n;
        for (int c = 0; c < tile_n; ++c) {
          dst[c] = fragment[c] * scale;
        }
      }
    }
  }
}

// Post-communication RMSNorm fused with the subtoken reorder: each logical
// token's fragments live at routed pool offsets.
void RmsNormFromSubtokens(const SubtokenLayout& layout, std::span<const float> staging,
                          std::span<float> out, float eps) {
  const TileGrid& grid = layout.mapping().grid();
  const int64_t n = grid.shape().n;
  const int tile_m = grid.tile().m;
  const int64_t sub = layout.subtoken_elems();
  for (int64_t row = 0; row < grid.shape().m; ++row) {
    const int tile_row = static_cast<int>(row / tile_m);
    const int r_in_tile = static_cast<int>(row % tile_m);
    double sq = 0.0;
    for (int col_tile = 0; col_tile < grid.cols(); ++col_tile) {
      const int tile = tile_row * grid.cols() + col_tile;
      const float* fragment = staging.data() + layout.SubtokenElemOffset(tile, r_in_tile);
      for (int64_t c = 0; c < sub; ++c) {
        sq += static_cast<double>(fragment[c]) * fragment[c];
      }
    }
    const float scale = 1.0f / std::sqrt(static_cast<float>(sq / static_cast<double>(n)) + eps);
    for (int col_tile = 0; col_tile < grid.cols(); ++col_tile) {
      const int tile = tile_row * grid.cols() + col_tile;
      const float* fragment = staging.data() + layout.SubtokenElemOffset(tile, r_in_tile);
      float* dst = out.data() + row * n + static_cast<int64_t>(col_tile) * sub;
      for (int64_t c = 0; c < sub; ++c) {
        dst[c] = fragment[c] * scale;
      }
    }
  }
}

void BM_RmsNormPlain(benchmark::State& state) {
  Setup& s = GlobalSetup();
  for (auto _ : state) {
    RmsNorm(s.staging, kM, kN, kEps, s.out);
    benchmark::DoNotOptimize(s.out.data());
  }
}
BENCHMARK(BM_RmsNormPlain);

void BM_RmsNormFusedTile(benchmark::State& state) {
  Setup& s = GlobalSetup();
  for (auto _ : state) {
    RmsNormFromStaging(s.mapping, s.staging, kEps, s.out);
    benchmark::DoNotOptimize(s.out.data());
  }
}
BENCHMARK(BM_RmsNormFusedTile);

void BM_RmsNormPlainRankSlice(benchmark::State& state) {
  Setup& s = GlobalSetup();
  for (auto _ : state) {
    RmsNorm(s.recv, kM / kGpus, kN, kEps, s.rows_out);
    benchmark::DoNotOptimize(s.rows_out.data());
  }
}
BENCHMARK(BM_RmsNormPlainRankSlice);

void BM_RmsNormFusedSubtile(benchmark::State& state) {
  Setup& s = GlobalSetup();
  for (auto _ : state) {
    RmsNormFromSubtiles(s.mapping, kGpus, 0, s.recv, s.rows_out, kEps);
    benchmark::DoNotOptimize(s.rows_out.data());
  }
}
BENCHMARK(BM_RmsNormFusedSubtile);

void BM_RmsNormFusedSubtoken(benchmark::State& state) {
  Setup& s = GlobalSetup();
  for (auto _ : state) {
    RmsNormFromSubtokens(*s.layout, s.staging, s.out, kEps);
    benchmark::DoNotOptimize(s.out.data());
  }
}
BENCHMARK(BM_RmsNormFusedSubtoken);

// GEMM epilogue: plain row-major store vs scatter store through the
// mapping table. The GEMM main loop dominates, so the delta is tiny — the
// paper's "within 1%" claim.
void BM_GemmEpiloguePlain(benchmark::State& state) {
  Setup& s = GlobalSetup();
  const GemmShape shape{kM, kN, 64};
  HostGemm gemm(shape, s.grid.tile());
  const auto a = RandomMatrix(shape.m, shape.k, 3);
  const auto b = RandomMatrix(shape.k, shape.n, 4);
  const auto order = SwizzledLaunchOrder(s.grid, 3);
  for (auto _ : state) {
    gemm.ComputeWithSink(a, b, EpilogueOp::kIdentity, {}, order,
                         [&](int tile, std::span<const float> values) {
                           StoreTileRowMajor(s.out, kN, s.grid.RowStart(tile),
                                             s.grid.ColStart(tile), s.grid.tile().m,
                                             s.grid.tile().n, values);
                         });
    benchmark::DoNotOptimize(s.out.data());
  }
}
BENCHMARK(BM_GemmEpiloguePlain);

void BM_GemmEpilogueScatterTile(benchmark::State& state) {
  Setup& s = GlobalSetup();
  const GemmShape shape{kM, kN, 64};
  HostGemm gemm(shape, s.grid.tile());
  const auto a = RandomMatrix(shape.m, shape.k, 3);
  const auto b = RandomMatrix(shape.k, shape.n, 4);
  const auto order = SwizzledLaunchOrder(s.grid, 3);
  for (auto _ : state) {
    gemm.ComputeWithSink(a, b, EpilogueOp::kIdentity, {}, order,
                         [&](int tile, std::span<const float> values) {
                           ScatterTileToStaging(s.mapping, tile, values, s.out);
                         });
    benchmark::DoNotOptimize(s.out.data());
  }
}
BENCHMARK(BM_GemmEpilogueScatterTile);

void BM_GemmEpilogueScatterSubtoken(benchmark::State& state) {
  Setup& s = GlobalSetup();
  const GemmShape shape{kM, kN, 64};
  HostGemm gemm(shape, s.grid.tile());
  const auto a = RandomMatrix(shape.m, shape.k, 3);
  const auto b = RandomMatrix(shape.k, shape.n, 4);
  const auto order = SwizzledLaunchOrder(s.grid, 3);
  for (auto _ : state) {
    gemm.ComputeWithSink(a, b, EpilogueOp::kIdentity, {}, order,
                         [&](int tile, std::span<const float> values) {
                           ScatterTileSubtokens(*s.layout, tile, values, s.out);
                         });
    benchmark::DoNotOptimize(s.out.data());
  }
}
BENCHMARK(BM_GemmEpilogueScatterSubtoken);

void PrintModeledOverhead() {
  Setup& s = GlobalSetup();
  std::printf("\nModeled device-side reorder overhead (mapping-table traffic)\n");
  Table table({"granularity", "table_bytes", "payload", "overhead"});
  const double payload = static_cast<double>(s.mapping.total_elems()) * 2.0;
  const double tile_table = ReorderMappingTableBytes(s.mapping);
  table.AddRow({"tile", FormatBytes(tile_table), FormatBytes(payload),
                FormatDouble(100.0 * tile_table / payload, 3) + "%"});
  const double subtile_table = tile_table * kGpus;
  table.AddRow({"subtile", FormatBytes(subtile_table), FormatBytes(payload),
                FormatDouble(100.0 * subtile_table / payload, 3) + "%"});
  const double subtoken_table = 4.0 * static_cast<double>(kM) * s.grid.cols();
  table.AddRow({"subtoken", FormatBytes(subtoken_table), FormatBytes(payload),
                FormatDouble(100.0 * subtoken_table / payload, 3) + "%"});
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nPaper Table 5: RMSNorm overhead ~7.5-9.6%%, GEMM epilogue 0.07-0.68%%.\n"
      "Compare BM_RmsNormFused* against BM_RmsNormPlain* and\n"
      "BM_GemmEpilogueScatter* against BM_GemmEpiloguePlain above.\n");
}

}  // namespace
}  // namespace flo

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  flo::PrintModeledOverhead();
  return 0;
}
