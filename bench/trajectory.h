// Shared CLI and perf-trajectory plumbing for bench binaries.
//
// Every bench takes the same flags — `--smoke` (shrink for CI),
// `--history <file>` (append the run's compact JSON point to the tracked
// trajectory under bench/history/), `--requests N` (scale the served
// request count where the bench supports it), and `--quiet` (suppress
// ad-hoc progress narration; gate verdicts and FAIL lines always print) —
// and must treat a failed append as a bench failure: a silently dropped
// point defeats the history. Benches that export observability artifacts
// additionally take `--trace <file>` / `--metrics <file>`; benches with a
// chaos section take `--faults <seed>` to reseed the fault schedule;
// benches with a fleet-scheduler section take `--sched 0|1` to skip/run it;
// benches with a predictive-autoscaling section take `--prespawn 0|1`
// likewise.
#ifndef BENCH_TRAJECTORY_H_
#define BENCH_TRAJECTORY_H_

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace flo {

struct BenchArgs {
  bool smoke = false;
  bool quiet = false;    // drop progress narration, keep verdicts
  std::string history;   // empty = no trajectory append
  std::string trace;     // empty = no Chrome trace export
  std::string metrics;   // empty = no metrics time-series export
  int64_t requests = 0;  // 0 = the bench's default scale
  // Seed for benches with a fault-injection (chaos) section; the section
  // runs either way, the seed just picks the schedule it expands.
  uint64_t fault_seed = 1;
  // Benches with a fleet-scheduler section run it by default; `--sched 0`
  // skips it (its gates and sched_* trajectory fields report zeros).
  bool sched = true;
  // Benches with a predictive-autoscaling section run it by default;
  // `--prespawn 0` skips it (gates and prespawn_* fields report zeros).
  bool prespawn = true;
};

inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      args.smoke = true;
    } else if (arg == "--quiet") {
      args.quiet = true;
    } else if (arg == "--history" && i + 1 < argc) {
      args.history = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      args.trace = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      args.metrics = argv[++i];
    } else if (arg == "--requests" && i + 1 < argc) {
      args.requests = std::atoll(argv[++i]);
    } else if (arg == "--faults" && i + 1 < argc) {
      args.fault_seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--sched" && i + 1 < argc) {
      args.sched = std::atoi(argv[++i]) != 0;
    } else if (arg == "--prespawn" && i + 1 < argc) {
      args.prespawn = std::atoi(argv[++i]) != 0;
    }
  }
  return args;
}

// Progress narration: printf that `--quiet` silences. Gate verdicts and
// FAIL lines must keep using printf directly so CI logs always show why a
// bench exited nonzero.
inline void Narrate(bool quiet, const char* format, ...) {
  if (quiet) {
    return;
  }
  va_list args;
  va_start(args, format);
  std::vfprintf(stdout, format, args);
  va_end(args);
}

// The bench-side percentile entry point: routes through the observability
// histogram's exact-sample mode so benches, serving stats, and metrics
// snapshots all share one interpolation (util/stats PercentileOfSorted —
// on an odd sample count the p50 is exactly the middle element).
inline PercentileSummary BenchPercentiles(const std::vector<double>& samples) {
  Histogram histogram;
  histogram.EnableExactSamples();
  for (const double sample : samples) {
    histogram.Observe(sample);
  }
  return histogram.Percentiles();
}

// Appends one compact JSON line to the trajectory file; no-op (true) when
// no history path was given.
inline bool AppendTrajectoryPoint(const std::string& history_path, const char* json_line) {
  if (history_path.empty()) {
    return true;
  }
  FILE* history = std::fopen(history_path.c_str(), "a");
  if (history == nullptr) {
    std::printf("FAILED to append to %s\n", history_path.c_str());
    return false;
  }
  std::fprintf(history, "%s\n", json_line);
  std::fclose(history);
  std::printf("appended trajectory point to %s\n", history_path.c_str());
  return true;
}

}  // namespace flo

#endif  // BENCH_TRAJECTORY_H_
