// Shared CLI and perf-trajectory plumbing for bench binaries.
//
// Every bench takes the same flags — `--smoke` (shrink for CI),
// `--history <file>` (append the run's compact JSON point to the tracked
// trajectory under bench/history/), and `--requests N` (scale the served
// request count where the bench supports it) — and must treat a failed
// append as a bench failure: a silently dropped point defeats the history.
#ifndef BENCH_TRAJECTORY_H_
#define BENCH_TRAJECTORY_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace flo {

struct BenchArgs {
  bool smoke = false;
  std::string history;   // empty = no trajectory append
  int64_t requests = 0;  // 0 = the bench's default scale
};

inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      args.smoke = true;
    } else if (arg == "--history" && i + 1 < argc) {
      args.history = argv[++i];
    } else if (arg == "--requests" && i + 1 < argc) {
      args.requests = std::atoll(argv[++i]);
    }
  }
  return args;
}

// Appends one compact JSON line to the trajectory file; no-op (true) when
// no history path was given.
inline bool AppendTrajectoryPoint(const std::string& history_path, const char* json_line) {
  if (history_path.empty()) {
    return true;
  }
  FILE* history = std::fopen(history_path.c_str(), "a");
  if (history == nullptr) {
    std::printf("FAILED to append to %s\n", history_path.c_str());
    return false;
  }
  std::fprintf(history, "%s\n", json_line);
  std::fclose(history);
  std::printf("appended trajectory point to %s\n", history_path.c_str());
  return true;
}

}  // namespace flo

#endif  // BENCH_TRAJECTORY_H_
