// Artifact-evaluation driver: reproduces the paper's AE appendix flows
// (E1 correctness + speedup, E2 search accuracy, E3 reorder overhead) in
// one binary, mirroring evaluation/e1_*.py .. e3_*.py of the original
// artifact.
//
// Usage: artifact_eval [e1|e2|e3|all]
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/core/flashoverlap.h"
#include "src/models/shapes.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace flo {
namespace {

// E1 part 1: correctness — 10 randomly selected cases must be "all close"
// against the non-overlap implementation (AE claim C1).
bool RunE1Correctness() {
  std::printf("[E1] correctness vs non-overlap reference\n");
  Rng rng(2024);
  bool all_ok = true;
  for (int i = 0; i < 10; ++i) {
    FunctionalOptions options;
    options.gpu_count = 2 + static_cast<int>(rng.NextBelow(3));  // 2..4
    options.wave_width = 2 + static_cast<int>(rng.NextBelow(6));
    options.swizzle_size = 1 + static_cast<int>(rng.NextBelow(4));
    FunctionalOverlap runner(options);
    const GemmShape shape{128, 128, 32};
    std::vector<std::vector<float>> a;
    std::vector<std::vector<float>> b;
    for (int r = 0; r < options.gpu_count; ++r) {
      a.push_back(RandomMatrix(shape.m, shape.k, rng.NextU64()));
      b.push_back(RandomMatrix(shape.k, shape.n, rng.NextU64()));
    }
    const auto overlap = runner.RunAllReduce(shape, WavePartition{}, a, b);
    const auto reference = runner.ReferenceAllReduce(shape, a, b, false);
    float worst = 0.0f;
    for (const auto& result : overlap) {
      worst = std::max(worst, MaxAbsDiff(result, reference));
    }
    const bool close = worst < 2e-3f;
    all_ok = all_ok && close;
    std::printf("  case %2d: gpus=%d width=%d swizzle=%d  max|diff|=%.2e  %s\n", i,
                options.gpu_count, options.wave_width, options.swizzle_size, worst,
                close ? "all close" : "MISMATCH");
  }
  return all_ok;
}

// E1 part 2: speedup table across GPUs and primitives.
void RunE1Speedup() {
  std::printf("\n[E1] overlap speedup (mean over the Table 3 sweep)\n");
  Table table({"cluster", "primitive", "2 GPUs", "4 GPUs", "8 GPUs"});
  for (bool a800 : {false, true}) {
    for (CommPrimitive primitive :
         {CommPrimitive::kAllReduce, CommPrimitive::kReduceScatter,
          CommPrimitive::kAllToAll}) {
      std::vector<std::string> row{a800 ? "A800" : "RTX4090", CommPrimitiveName(primitive)};
      for (int gpus : {2, 4, 8}) {
        OverlapEngine engine(a800 ? MakeA800Cluster(gpus) : Make4090Cluster(gpus));
        std::vector<double> speedups;
        for (const auto& shape : OperatorShapes(primitive, a800)) {
          const double base = engine.Execute(ScenarioSpec::NonOverlap(shape, primitive)).total_us;
          speedups.push_back(base / engine.Execute(ScenarioSpec::Overlap(shape, primitive)).total_us);
        }
        row.push_back(FormatDouble(Summarize(speedups).mean, 2) + "x");
      }
      table.AddRow(row);
    }
  }
  std::printf("%s", table.Render().c_str());
  std::printf("expected: up to ~1.30x on A800 and ~1.65x on RTX 4090 (paper AE E1)\n");
}

// E2: predictor accuracy + search quality (AE claim C2).
void RunE2() {
  std::printf("\n[E2] predictive search accuracy\n");
  std::vector<double> errors;
  double worst_ratio = 1.0;
  for (auto make_cluster : {Make4090Cluster, MakeA800Cluster}) {
    OverlapEngine engine(make_cluster(4));
    // The search-quality comparison strips jitter so both sides rank by
    // the same deterministic machine (as the paper's repeated-timing
    // protocol averages it out).
    OverlapEngine clean_engine(make_cluster(4), {}, EngineOptions{.jitter = false});
    for (const GemmShape& shape :
         {GemmShape{2048, 8192, 8192}, GemmShape{4096, 8192, 4096},
          GemmShape{1024, 8192, 4096}}) {
      const CommPrimitive primitive = CommPrimitive::kAllReduce;
      PredictorSetup setup = engine.tuner().MakeSetup(shape, primitive);
      const int waves = setup.EffectiveWaveCount();
      for (const WavePartition& partition :
           {WavePartition::EqualSized(waves, 1), WavePartition::EqualSized(waves, 2),
            WavePartition::EqualSized(waves, 4), WavePartition::SingleGroup(waves)}) {
        const double predicted = PredictOverlapLatency(setup, partition).latency_us;
        const double actual = engine.Execute(ScenarioSpec::Overlap(shape, primitive, &partition)).total_us;
        errors.push_back(std::abs(actual - predicted) / actual);
      }
      if (waves <= 14) {
        const OverlapRun searched = clean_engine.Execute(ScenarioSpec::Overlap(shape, primitive));
        double best = searched.total_us;
        for (const auto& partition : EnumerateAllPartitions(waves)) {
          best = std::min(best,
                          clean_engine.Execute(ScenarioSpec::Overlap(shape, primitive, &partition)).total_us);
        }
        worst_ratio = std::min(worst_ratio, best / searched.total_us);
      }
    }
  }
  std::printf("  predictor error: avg %.2f%% (paper: < 5%%), max %.2f%%\n",
              100.0 * Summarize(errors).mean, 100.0 * Summarize(errors).max);
  std::printf("  searched vs exhaustive-optimal: worst ratio %.1f%% (paper: > 99%%)\n",
              100.0 * worst_ratio);
}

// E3: reorder overhead (AE claim C3) — modeled device-side traffic; the
// measured host-kernel view lives in bench/table5_reorder_overhead.
void RunE3() {
  std::printf("\n[E3] reorder overhead (modeled device traffic)\n");
  const GemmShape shape{4096, 8192, 4096};
  TileGrid grid(shape, TileShape{128, 128});
  WaveSchedule schedule(SwizzledLaunchOrder(grid, 3), 108);
  TileMapping mapping(grid, schedule, WavePartition::EqualSized(schedule.wave_count(), 2));
  const double payload = static_cast<double>(mapping.total_elems()) * 2.0;
  const double table_bytes = ReorderMappingTableBytes(mapping);
  std::printf("  GEMM epilogue scatter: mapping table %s vs payload %s -> %.3f%% (< 1%%)\n",
              FormatBytes(table_bytes).c_str(), FormatBytes(payload).c_str(),
              100.0 * table_bytes / payload);
  // RMSNorm gather: fragment locality means the extra cost is bounded by
  // one mapping-table read per tile fragment per row.
  const double fragments_per_row = grid.cols();
  const double extra_per_row = fragments_per_row * 4.0;
  const double row_bytes = static_cast<double>(shape.n) * 2.0;
  std::printf("  RMSNorm gather: %.0f fragment lookups/row -> %.2f%% extra traffic (< 10%%)\n",
              fragments_per_row, 100.0 * extra_per_row / row_bytes);
}

}  // namespace
}  // namespace flo

int main(int argc, char** argv) {
  const char* which = argc > 1 ? argv[1] : "all";
  bool ok = true;
  if (std::strcmp(which, "e1") == 0 || std::strcmp(which, "all") == 0) {
    ok = flo::RunE1Correctness() && ok;
    flo::RunE1Speedup();
  }
  if (std::strcmp(which, "e2") == 0 || std::strcmp(which, "all") == 0) {
    flo::RunE2();
  }
  if (std::strcmp(which, "e3") == 0 || std::strcmp(which, "all") == 0) {
    flo::RunE3();
  }
  return ok ? 0 : 1;
}
