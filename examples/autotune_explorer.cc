// Autotune explorer: dissects the wave-grouping design space for one
// GEMM+collective pair — every pruned candidate's predicted latency vs the
// simulated actual, the exhaustive optimum, and the theoretical bound.
//
// Usage: autotune_explorer [M N K] [ar|rs|a2a] [4090|a800] [gpus]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/flashoverlap.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  flo::GemmShape shape{2048, 8192, 8192};
  flo::CommPrimitive primitive = flo::CommPrimitive::kAllReduce;
  std::string gpu = "4090";
  int gpus = 4;
  if (argc >= 4) {
    shape.m = std::atoll(argv[1]);
    shape.n = std::atoll(argv[2]);
    shape.k = std::atoll(argv[3]);
  }
  if (argc >= 5) {
    primitive = flo::CommPrimitiveFromName(argv[4]);
  }
  if (argc >= 6) {
    gpu = argv[5];
  }
  if (argc >= 7) {
    gpus = std::atoi(argv[6]);
  }
  const flo::ClusterSpec cluster =
      gpu == "a800" ? flo::MakeA800Cluster(gpus)
                    : (gpu == "ascend" ? flo::MakeAscendCluster(gpus)
                                       : flo::Make4090Cluster(gpus));

  flo::OverlapEngine engine(cluster, {}, flo::EngineOptions{.jitter = false});
  flo::PredictorSetup setup = engine.tuner().MakeSetup(shape, primitive);
  const int waves = setup.EffectiveWaveCount();
  std::printf("%s, GEMM %s + %s\n", cluster.Describe().c_str(), shape.ToString().c_str(),
              flo::CommPrimitiveName(primitive));
  std::printf("tiles=%d, effective waves=%d (comm holds %d SMs), design space 2^%d\n\n",
              setup.gemm.tile_count, waves, setup.comm_sm_count, waves - 1);

  const double non_overlap = engine.Execute(flo::ScenarioSpec::NonOverlap(shape, primitive)).total_us;
  const double bound = engine.TheoreticalBest(shape, primitive);

  flo::Table table({"partition", "predicted_us", "simulated_us", "speedup"});
  const auto candidates = flo::EnumeratePruned(waves, 2, 4, 24);
  double best_simulated = 1e300;
  std::string best_partition;
  for (const auto& partition : candidates) {
    const double predicted = flo::PredictOverlapLatency(setup, partition).latency_us;
    const double simulated = engine.Execute(flo::ScenarioSpec::Overlap(shape, primitive, &partition)).total_us;
    if (simulated < best_simulated) {
      best_simulated = simulated;
      best_partition = partition.ToString();
    }
    table.AddRow({partition.ToString(), flo::FormatDouble(predicted, 1),
                  flo::FormatDouble(simulated, 1),
                  flo::FormatDouble(non_overlap / simulated, 3)});
  }
  std::printf("%s\n", table.Render().c_str());

  const flo::OverlapRun searched = engine.Execute(flo::ScenarioSpec::Overlap(shape, primitive));
  std::printf("non-overlap:        %10.1f us\n", non_overlap);
  std::printf("theoretical bound:  %10.1f us (speedup %.3fx)\n", bound, non_overlap / bound);
  std::printf("predictive search:  %10.1f us via %s (speedup %.3fx)\n", searched.total_us,
              searched.partition.ToString().c_str(), non_overlap / searched.total_us);
  std::printf("best of %zu listed:  %10.1f us via %s\n", candidates.size(), best_simulated,
              best_partition.c_str());
  return 0;
}
