// Serving-cluster quickstart: a replica fleet with plan-affinity routing,
// plan shipping, and autoscaling on one simulated clock.
//
// Walkthrough:
//   1. build a two-tenant trace (Poisson "chat" + bursty "batch");
//   2. serve it on a 3-replica fleet: plan-affinity keeps each scenario
//      on the replica that tuned it, and plan shipping publishes every
//      freshly tuned plan to the peers — the fleet pays each distinct
//      scenario's search exactly once;
//   3. a burst mid-trace makes the autoscaler spawn a replica, which
//      bootstraps warm from the published plans;
//   4. save the fleet snapshot and warm-start a brand-new fleet from it —
//      zero searches: the paper's "prepare once, serve many", fleet-wide.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/flashoverlap.h"
#include "src/util/table.h"

namespace flo {
namespace {

void PrintFleet(const char* label, const FleetReport& report) {
  Table table({"replica", "spawned us", "reqs", "p50 us", "p99 us", "hit%", "searches",
               "plans"});
  for (const ReplicaReport& replica : report.replicas) {
    if (replica.serve.stats.count() == 0 && replica.tuner_searches == 0) {
      continue;
    }
    const PercentileSummary latency = replica.serve.stats.LatencyPercentiles();
    table.AddRow({std::to_string(replica.id), FormatDouble(replica.spawned_us, 0),
                  std::to_string(replica.serve.stats.count()), FormatDouble(latency.p50, 1),
                  FormatDouble(latency.p99, 1),
                  FormatDouble(100.0 * replica.serve.stats.CacheHitRate(), 1),
                  std::to_string(replica.tuner_searches),
                  std::to_string(replica.plans_resident)});
  }
  std::printf(
      "%s: %zu requests, %.1f req/s, warm-hit %.1f%%, %zu searches for %zu keys, "
      "peak %d replicas\n%s\n",
      label, report.stats.count(), report.ThroughputPerSec(), 100.0 * report.WarmHitRate(),
      report.total_searches, report.distinct_keys, report.peak_replicas,
      table.Render().c_str());
}

void Run() {
  const ClusterSpec hardware = Make4090Cluster(4);
  const CommPrimitive prim = CommPrimitive::kAllReduce;
  const std::vector<ScenarioSpec> chat_specs = {
      ScenarioSpec::Overlap(GemmShape{2048, 4096, 1024}, prim),
      ScenarioSpec::Overlap(GemmShape{4096, 4096, 1024}, prim),
  };
  const std::vector<ScenarioSpec> batch_specs = {
      ScenarioSpec::Overlap(GemmShape{8192, 4096, 2048}, prim),
      ScenarioSpec::Overlap(GemmShape{8192, 8192, 2048}, prim),
  };
  const auto trace = MergeStreams(
      {MakeRequestStream("chat", chat_specs, PoissonArrivals(3000.0, 120, 7), 0),
       MakeRequestStream("batch", batch_specs, BurstyArrivals(6000.0, 4.0, 10, 60, 11),
                         1000)});

  ClusterConfig config;
  config.replicas = 3;
  config.policy = PlacementPolicy::kPlanAffinity;
  config.ship_plans = true;
  config.autoscale.enabled = true;
  config.autoscale.min_replicas = 3;
  config.autoscale.max_replicas = 6;
  config.autoscale.check_interval_us = 30000.0;
  config.autoscale.spawn_queue_per_replica = 3.0;

  ServingCluster fleet(hardware, config, {}, EngineOptions{.jitter = false});
  const FleetReport report = fleet.Run(trace);
  PrintFleet("plan-affinity fleet", report);
  const PlanShipperStats shipping = fleet.shipper().stats();
  std::printf("plan shipping: %zu published, %zu copies shipped, %zu duplicate tunes avoided\n\n",
              shipping.published, shipping.shipped, shipping.duplicate_tunes_avoided);
  if (report.total_searches > report.distinct_keys) {
    std::printf("FAILED: the fleet re-paid a tuner search\n");
    std::exit(1);
  }

  // Fleet snapshot -> disk -> a brand-new fleet serves with zero searches.
  const std::string path = "cluster_demo_plans.txt";
  if (!fleet.SavePlans(path)) {
    std::printf("FAILED to save the fleet snapshot\n");
    std::exit(1);
  }
  ClusterConfig warm_config;
  warm_config.replicas = 2;
  ServingCluster warm_fleet(hardware, warm_config, {}, EngineOptions{.jitter = false});
  const size_t loaded = warm_fleet.LoadPlans(path);
  const FleetReport warm = warm_fleet.Run(trace);
  PrintFleet("warm-started fleet", warm);
  std::printf("warm start: %zu plans loaded from %s, %zu searches\n", loaded, path.c_str(),
              warm.total_searches);
  std::remove(path.c_str());
  if (warm.total_searches != 0) {
    std::printf("FAILED: the warm-started fleet searched\n");
    std::exit(1);
  }
}

}  // namespace
}  // namespace flo

int main() {
  flo::Run();
  return 0;
}
