// LLM inference example: Llama3-70B with TP=8 on an A800 server.
//
// Walks one transformer layer's tensor-parallel GEMM+AllReduce pairs
// through FlashOverlap (nearest-neighbour plan matching included, as a
// serving engine would use for dynamic batch sizes), then composes the
// end-to-end gain.
#include <cstdio>

#include "src/core/flashoverlap.h"
#include "src/models/e2e.h"
#include "src/models/workloads.h"

int main() {
  const flo::Workload workload = flo::MakeLlama3Inference();
  std::printf("workload: %s on %s\n\n", workload.name.c_str(),
              workload.cluster.Describe().c_str());

  flo::OverlapEngine engine(workload.cluster);
  // Serving engines see varying chunk sizes; pre-search representative
  // sizes offline and serve the rest by nearest-neighbour matching.
  for (const auto& op : workload.ops) {
    engine.tuner().Tune(op.shape, op.primitive);
  }
  std::printf("pre-searched plans: %zu\n", engine.tuner().cache_size());
  const flo::GemmShape dynamic{12288, 8192, 3584};  // unseen chunk size
  const flo::TunedPlan plan =
      engine.tuner().TuneNearest(dynamic, flo::CommPrimitive::kAllReduce);
  std::printf("nearest-neighbour plan for unseen %s: %s (predicted %.0f us)\n\n",
              dynamic.ToString().c_str(), plan.partition.ToString().c_str(),
              plan.predicted_us);

  const flo::E2eReport report = flo::EvaluateWorkload(workload);
  for (const auto& op : report.ops) {
    std::printf("%-14s %8.0f -> %8.0f us  (%.2fx)\n", op.name.c_str(), op.non_overlap_us,
                op.overlap_us, op.speedup);
  }
  std::printf("\nper-layer: %.0f -> %.0f us, end-to-end speedup %.3fx\n",
              report.baseline_layer_us, report.overlap_layer_us, report.e2e_speedup);
  return 0;
}
