// MoE training example: Mixtral-8x7B expert parallelism with an imbalanced
// GEMM+All-to-All (the paper's Sec. 2.3.3 scenario).
//
// Shows the two faces of the library on the same pattern:
//  * timed: imbalanced per-rank token loads, rendezvous collectives, and
//    the multi-rank predictor extension;
//  * functional: a small routed exchange verified against the vanilla
//    All-to-All reference on real data.
#include <cstdio>
#include <vector>

#include "src/core/flashoverlap.h"

int main() {
  // --- Timed: expert-parallel A2A with routing skew ---
  const flo::ClusterSpec cluster = flo::MakeA800Cluster(4);
  flo::OverlapEngine engine(cluster);
  // Token counts per expert rank after top-2 routing with hot experts.
  const std::vector<flo::GemmShape> shapes{
      flo::GemmShape{12288, 4096, 7168}, flo::GemmShape{14336, 4096, 7168},
      flo::GemmShape{16384, 4096, 7168}, flo::GemmShape{22528, 4096, 7168}};
  const double sequential =
      engine.Execute(flo::ScenarioSpec::NonOverlapImbalanced(shapes, flo::CommPrimitive::kAllToAll)).total_us;
  const flo::OverlapRun run =
      engine.Execute(flo::ScenarioSpec::Imbalanced(shapes, flo::CommPrimitive::kAllToAll));
  std::printf("Mixtral-style expert A2A on %s\n", cluster.Describe().c_str());
  std::printf("  per-rank tokens: 12288 / 14336 / 16384 / 22528 (hot expert skew)\n");
  std::printf("  non-overlap:  %8.0f us\n", sequential);
  std::printf("  FlashOverlap: %8.0f us  (%.2fx), grouping %s\n", run.total_us,
              sequential / run.total_us, run.partition.ToString().c_str());

  // --- Functional: routed exchange correctness ---
  const int gpus = 4;
  flo::FunctionalOptions options;
  options.gpu_count = gpus;
  options.wave_width = 4;
  flo::FunctionalOverlap functional(options);
  std::vector<flo::GemmShape> small_shapes(gpus, flo::GemmShape{64, 64, 32});
  std::vector<std::vector<int>> routes(gpus);
  std::vector<std::vector<float>> a;
  std::vector<std::vector<float>> b;
  flo::Rng rng(123);
  for (int r = 0; r < gpus; ++r) {
    routes[r].resize(64);
    for (auto& dest : routes[r]) {
      dest = static_cast<int>(rng.NextBelow(gpus));
    }
    a.push_back(flo::RandomMatrix(64, 32, 300 + r));
    b.push_back(flo::RandomMatrix(32, 64, 400 + r));
  }
  const auto ours = functional.RunAllToAll(small_shapes, flo::WavePartition{}, routes, a, b);
  const auto reference = functional.ReferenceAllToAll(small_shapes, routes, a, b);
  float worst = 0.0f;
  for (int r = 0; r < gpus; ++r) {
    if (!ours[r].empty()) {
      worst = std::max(worst, flo::MaxAbsDiff(ours[r], reference[r]));
    }
    std::printf("  rank %d received %zu tokens\n", r, ours[r].size() / 64);
  }
  std::printf("functional A2A check: max |diff| = %g -> %s\n", worst,
              worst < 1e-3f ? "all close" : "MISMATCH");
  return worst < 1e-3f ? 0 : 1;
}
