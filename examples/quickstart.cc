// Quickstart: overlap one GEMM+AllReduce on a simulated 4x RTX 4090 node.
//
// Demonstrates the whole public API surface in ~60 lines:
//  1. pick a cluster preset,
//  2. let the tuner's predictive search choose the wave grouping,
//  3. run the overlapped execution and inspect the per-group timeline,
//  4. verify numerical correctness of the same pipeline on real buffers.
#include <cstdio>

#include "src/core/flashoverlap.h"
#include "src/util/table.h"

int main() {
  // --- 1. Hardware ---
  const flo::ClusterSpec cluster = flo::Make4090Cluster(4);
  std::printf("cluster: %s\n", cluster.Describe().c_str());

  // --- 2 + 3. Tune and run ---
  flo::OverlapEngine engine(cluster);
  const flo::GemmShape shape{4096, 8192, 7168};
  const flo::CommPrimitive primitive = flo::CommPrimitive::kAllReduce;

  const double sequential_us = engine.Execute(flo::ScenarioSpec::NonOverlap(shape, primitive)).total_us;
  const flo::OverlapRun run = engine.Execute(flo::ScenarioSpec::Overlap(shape, primitive));

  std::printf("GEMM %s + %s\n", shape.ToString().c_str(),
              flo::CommPrimitiveName(primitive));
  std::printf("  non-overlap: %8.1f us\n", sequential_us);
  std::printf("  FlashOverlap:%8.1f us  (speedup %.2fx, predicted %.1f us)\n",
              run.total_us, sequential_us / run.total_us, run.predicted_us);
  std::printf("  wave grouping: %s\n", run.partition.ToString().c_str());
  for (const auto& group : run.groups) {
    std::printf("    group %d: %4d tiles, %8s, signal @%8.1f us, comm [%8.1f, %8.1f] us\n",
                group.group, group.tiles, flo::FormatBytes(group.bytes).c_str(),
                group.signal_time, group.comm_start, group.comm_end);
  }

  // --- 4. Numerical correctness on real data (small shape) ---
  flo::FunctionalOptions options;
  options.gpu_count = 4;
  flo::FunctionalOverlap functional(options);
  const flo::GemmShape small{128, 128, 64};
  std::vector<std::vector<float>> a;
  std::vector<std::vector<float>> b;
  for (int rank = 0; rank < options.gpu_count; ++rank) {
    a.push_back(flo::RandomMatrix(small.m, small.k, 100 + rank));
    b.push_back(flo::RandomMatrix(small.k, small.n, 200 + rank));
  }
  const auto overlapped = functional.RunAllReduce(small, flo::WavePartition{}, a, b);
  const auto reference = functional.ReferenceAllReduce(small, a, b, /*rmsnorm=*/false);
  float worst = 0.0f;
  for (const auto& result : overlapped) {
    worst = std::max(worst, flo::MaxAbsDiff(result, reference));
  }
  std::printf("functional check vs non-overlap reference: max |diff| = %g -> %s\n", worst,
              worst < 1e-3f ? "all close" : "MISMATCH");
  return worst < 1e-3f ? 0 : 1;
}
