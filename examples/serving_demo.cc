// Serving quickstart: trace-driven request streams over a shared
// executor, with plans reused across serving loops through one shared,
// capacity-bounded PlanStore.
//
// Walkthrough:
//   1. build a two-tenant trace (Poisson "chat" + bursty "batch") and
//      round-trip it through the CSV trace format;
//   2. serve it on engine A — every distinct plan is tuned once on the
//      side lane while warm batches keep the executor busy;
//   3. serve the same trace on a *fresh* engine B sharing A's PlanStore —
//      zero tuner searches, every plan a cache hit: the paper's "prepare
//      once, serve many" contract, as a serving system.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/core/flashoverlap.h"
#include "src/util/table.h"

namespace flo {
namespace {

void PrintSummary(const char* label, const ServeReport& report) {
  Table table({"tenant", "reqs", "p50 us", "p95 us", "p99 us", "queue us", "hit%"});
  for (const TenantSummary& s : report.stats.SummarizeAll()) {
    table.AddRow({s.tenant, std::to_string(s.requests), FormatDouble(s.latency.p50, 1),
                  FormatDouble(s.latency.p95, 1), FormatDouble(s.latency.p99, 1),
                  FormatDouble(s.mean_queue_us, 1), FormatDouble(100.0 * s.cache_hit_rate, 1)});
  }
  std::printf("%s: %zu requests, %.1f req/s, %zu cold batches\n%s\n", label,
              report.stats.count(), report.ThroughputPerSec(), report.cold_batches,
              table.Render().c_str());
}

void Run() {
  const ClusterSpec cluster = Make4090Cluster(4);
  const CommPrimitive prim = CommPrimitive::kAllReduce;

  // Two tenants with different request vocabularies and arrival shapes.
  const std::vector<ScenarioSpec> chat_specs = {
      ScenarioSpec::Overlap(GemmShape{2048, 4096, 1024}, prim),
      ScenarioSpec::Overlap(GemmShape{4096, 4096, 1024}, prim),
  };
  const std::vector<ScenarioSpec> batch_specs = {
      ScenarioSpec::Overlap(GemmShape{8192, 4096, 2048}, prim),
      ScenarioSpec::Overlap(GemmShape{8192, 8192, 2048}, prim),
  };
  auto trace = MergeStreams(
      {MakeRequestStream("chat", chat_specs, PoissonArrivals(9000.0, 60, 7), 0),
       MakeRequestStream("batch", batch_specs, BurstyArrivals(18000.0, 4.0, 6, 30, 11), 1000)});

  // Traces are replayable CSV artifacts.
  const std::string csv = SerializeTrace(trace);
  const auto reloaded = ParseTrace(csv);
  if (!reloaded || reloaded->size() != trace.size()) {
    std::printf("trace CSV round-trip FAILED\n");
    std::exit(1);
  }
  std::printf("trace: %zu requests, CSV round-trip ok\n\n", trace.size());

  // One bounded PlanStore shared by every serving loop.
  auto store = std::make_shared<PlanStore>(/*capacity=*/16);

  OverlapEngine engine_a(cluster, {}, EngineOptions{.jitter = false});
  engine_a.UseSharedPlanStore(store);
  ServeLoop loop_a(&engine_a);
  PrintSummary("engine A (cold store)", loop_a.Run(*reloaded));

  // A fresh engine — same deployment, so the canonical plan keys match —
  // serves entirely from A's plans.
  OverlapEngine engine_b(cluster, {}, EngineOptions{.jitter = false});
  engine_b.UseSharedPlanStore(store);
  ServeLoop loop_b(&engine_b);
  PrintSummary("engine B (shared warm store)", loop_b.Run(*reloaded));

  const PlanStoreStats stats = store->stats();
  std::printf("shared store: %zu plans resident, %zu hits / %zu misses / %zu evictions\n",
              store->size(), stats.hits, stats.misses, stats.evictions);
  std::printf("engine B tuner searches: %zu (served from engine A's plans)\n",
              engine_b.tuner().search_count());
  if (engine_b.tuner().search_count() != 0) {
    std::printf("FAILED: cross-engine plan reuse is broken\n");
    std::exit(1);
  }
}

}  // namespace
}  // namespace flo

int main() {
  flo::Run();
  return 0;
}
