// Text-to-video generation example: Step-Video-T2V DiT blocks under TP=4.
//
// The paper's best end-to-end case: very large token counts make the
// GEMM+AllReduce pairs both big and balanced, so overlap pays off most.
// Sweeps the token count to show where the overlap benefit comes from.
#include <cstdio>

#include "src/core/flashoverlap.h"
#include "src/models/e2e.h"
#include "src/models/workloads.h"

int main() {
  const flo::Workload workload = flo::MakeStepVideoGeneration();
  std::printf("workload: %s on %s\n\n", workload.name.c_str(),
              workload.cluster.Describe().c_str());

  const flo::E2eReport report = flo::EvaluateWorkload(workload);
  for (const auto& op : report.ops) {
    std::printf("%-14s %8.0f -> %8.0f us  (%.2fx)\n", op.name.c_str(), op.non_overlap_us,
                op.overlap_us, op.speedup);
  }
  std::printf("end-to-end speedup: %.3fx\n\n", report.e2e_speedup);

  // Sensitivity: larger frames (more tokens) widen the overlap window.
  flo::OverlapEngine engine(workload.cluster);
  std::printf("token-count sweep for the MLP down projection (N=6144, K=6144):\n");
  for (int64_t tokens : {4096, 8192, 16384, 33792, 65536}) {
    const flo::GemmShape shape{tokens, 6144, 6144};
    const double base = engine.Execute(flo::ScenarioSpec::NonOverlap(shape, flo::CommPrimitive::kAllReduce)).total_us;
    const double ours =
        engine.Execute(flo::ScenarioSpec::Overlap(shape, flo::CommPrimitive::kAllReduce)).total_us;
    std::printf("  tokens %6ld: %8.0f -> %8.0f us (%.2fx)\n", static_cast<long>(tokens),
                base, ours, base / ours);
  }
  return 0;
}
