#include "src/baselines/baselines.h"

#include <algorithm>
#include <limits>

#include "src/util/check.h"

namespace flo {
namespace {

// Fusion-model constants, calibrated to the published behaviour: FLUX is a
// highly tuned kernel with mild main-loop interference; cuBLASMp trades a
// little more interference for generality. Fusing AllReduce costs more
// than ReduceScatter: the epilogue must both send and apply remote
// reductions in-kernel.
constexpr double kFluxInterference = 1.10;
constexpr double kCublasMpInterference = 1.13;
constexpr double kAllReduceFusionExtra = 0.05;
// Splitting one GEMM into chunks costs intra-kernel locality (L2 reuse of
// B across the M extent) on top of wave quantization.
constexpr double kDecompositionEfficiencyLoss = 1.03;
// Fused kernels stream the payload from registers/SMEM into the transport,
// skipping the collective kernel's read of the GEMM output (the result
// itself must still be written once). One HBM trip saved.
constexpr double kFusedHbmRoundTrips = 1.0;
// Hand-written in-kernel transports do not reach the tuned NCCL ring
// bandwidth (the adaptation cost the paper's Sec. 2.4 attributes to
// fusion): effective bandwidth efficiency relative to the library.
constexpr double kFusedCommEfficiency = 0.85;

}  // namespace

Baselines::Baselines(ClusterSpec cluster, int element_size)
    : cluster_(cluster),
      gemm_model_(cluster.gpu),
      cost_model_(cluster.link, cluster.gpu_count),
      element_size_(element_size) {}

double Baselines::NonOverlap(const GemmShape& shape, CommPrimitive primitive) const {
  const GemmConfig config = gemm_model_.Configure(shape);
  const double bytes = shape.OutputBytes(element_size_);
  return config.duration_us + cost_model_.LatencyUs(primitive, bytes);
}

double Baselines::DecompositionPipeline(const GemmShape& shape, CommPrimitive primitive,
                                        int chunks, bool p2p_copy_engine) const {
  FLO_CHECK_GE(chunks, 1);
  // Chunks split M; the last chunk absorbs the remainder.
  const int64_t chunk_m = std::max<int64_t>(1, shape.m / chunks);
  double t_p_acc = 0.0;
  double t_m_acc = 0.0;
  int64_t remaining = shape.m;
  while (remaining > 0) {
    const int64_t this_m = std::min<int64_t>(chunk_m, remaining);
    remaining -= this_m;
    const GemmShape chunk_shape{this_m, shape.n, shape.k};
    const GemmConfig chunk_config = gemm_model_.Configure(chunk_shape);
    // The chunk GEMM competes with in-flight NCCL kernels for SMs (unless
    // the copy engine does the transfer).
    const int width = p2p_copy_engine
                          ? cluster_.gpu.sm_count
                          : cluster_.gpu.sm_count - cluster_.link.comm_sm_count;
    const double t_p =
        gemm_model_.Duration(chunk_config, std::max(1, width)) * kDecompositionEfficiencyLoss;
    const double chunk_bytes = chunk_shape.OutputBytes(element_size_);
    double t_m = cost_model_.LatencyUs(primitive, chunk_bytes);
    if (p2p_copy_engine) {
      // Copy-engine path: skips the kernel-launch part of the call
      // overhead; ring latency and wire time remain. The output must be
      // staged into the P2P-registered symmetric buffers first — one extra
      // HBM round trip per chunk.
      t_m -= 0.5 * cluster_.link.call_overhead_us;
      t_m += 2.0 * chunk_bytes / (cluster_.gpu.hbm_gbps * 1e3);
    }
    t_p_acc += t_p;
    t_m_acc = std::max(t_p_acc, t_m_acc) + t_m;
  }
  return t_m_acc;
}

BaselineResult Baselines::VanillaDecomposition(const GemmShape& shape, CommPrimitive primitive,
                                               int chunks) const {
  BaselineResult result;
  result.name = "VanillaDecomposition";
  result.supported = true;
  if (chunks > 0) {
    result.latency_us = DecompositionPipeline(shape, primitive, chunks, false);
    return result;
  }
  double best = std::numeric_limits<double>::infinity();
  for (int candidate : {2, 3, 4, 6, 8, 12, 16}) {
    if (candidate >= shape.m) {
      continue;
    }
    best = std::min(best, DecompositionPipeline(shape, primitive, candidate, false));
  }
  result.latency_us = best;
  return result;
}

BaselineResult Baselines::AsyncTp(const GemmShape& shape, CommPrimitive primitive) const {
  BaselineResult result;
  result.name = "Async-TP";
  // Async-TP requires NVLink P2P between all pairs and covers the TP
  // patterns (AllReduce / ReduceScatter decomposition).
  result.supported = cluster_.link.p2p_access && (primitive == CommPrimitive::kAllReduce ||
                                                  primitive == CommPrimitive::kReduceScatter);
  if (!result.supported) {
    return result;
  }
  result.latency_us =
      DecompositionPipeline(shape, primitive, cluster_.gpu_count, /*p2p_copy_engine=*/true);
  return result;
}

namespace {

double FusedLatency(const ClusterSpec& cluster, const GemmModel& gemm_model,
                    const CommCostModel& cost_model, const GemmShape& shape,
                    CommPrimitive primitive, double interference, int element_size) {
  if (primitive == CommPrimitive::kAllReduce) {
    interference += kAllReduceFusionExtra;
  }
  const GemmConfig config = gemm_model.Configure(shape);
  const double bytes = shape.OutputBytes(element_size);
  // Fused kernels move the whole payload at streaming granularity: they see
  // the large-message end of the curve regardless of tile order — but at
  // the hand-rolled transport's efficiency, not NCCL's.
  const double comm = cost_model.LatencyUs(primitive, bytes) / kFusedCommEfficiency;
  const double hbm_bytes_per_us = cluster.gpu.hbm_gbps * 1e3;
  const double mem_saving = kFusedHbmRoundTrips * bytes / hbm_bytes_per_us;
  const double gemm = std::max(config.wave_time_us,
                               config.duration_us * interference - mem_saving);
  // Tile-granular overlap: only the first wave (head) and the last tile's
  // communication (tail) are exposed.
  const double head = config.wave_time_us;
  const double tail_bytes = std::max(
      1.0, bytes * static_cast<double>(cluster.gpu.sm_count) / config.tile_count);
  const double tail =
      cost_model.LatencyUs(primitive, std::min(bytes, tail_bytes)) * 0.5;
  return std::max(gemm + tail, head + comm);
}

}  // namespace

BaselineResult Baselines::Flux(const GemmShape& shape, CommPrimitive primitive) const {
  BaselineResult result;
  result.name = "FLUX";
  result.supported = cluster_.link.p2p_access && (primitive == CommPrimitive::kAllReduce ||
                                                  primitive == CommPrimitive::kReduceScatter);
  if (!result.supported) {
    return result;
  }
  result.latency_us = FusedLatency(cluster_, gemm_model_, cost_model_, shape, primitive,
                                   kFluxInterference, element_size_);
  return result;
}

BaselineResult Baselines::CublasMp(const GemmShape& shape, CommPrimitive primitive) const {
  BaselineResult result;
  result.name = "cuBLASMp";
  result.supported =
      cluster_.link.p2p_access && primitive == CommPrimitive::kReduceScatter;
  if (!result.supported) {
    return result;
  }
  result.latency_us = FusedLatency(cluster_, gemm_model_, cost_model_, shape, primitive,
                                   kCublasMpInterference, element_size_);
  return result;
}

std::vector<BaselineResult> Baselines::All(const GemmShape& shape,
                                           CommPrimitive primitive) const {
  return {Flux(shape, primitive), CublasMp(shape, primitive), AsyncTp(shape, primitive),
          VanillaDecomposition(shape, primitive)};
}

}  // namespace flo
