// Timing models of the baseline overlap systems the paper compares against
// (Sec. 6.1.3): the non-overlap library path, decomposition-based methods
// (a vanilla cuBLAS+NCCL pipeline and PyTorch Async-TP), and fusion-based
// kernels (FLUX and cuBLASMp).
//
// Each baseline is modeled from its published mechanism:
//  * Decomposition splits M into chunks; every chunk pays its own kernel
//    launch and wave quantization (the fragmentation cost of Sec. 1), and
//    chunk communication rides the small-message part of the bandwidth
//    curve.
//  * Async-TP additionally uses copy-engine P2P transfers (no SM footprint,
//    lower call overhead) but is fixed to gpu_count chunks and requires
//    peer-to-peer access.
//  * Fusion overlaps at tile granularity almost perfectly and *saves* the
//    staging round-trip through HBM (why it wins at small K), but inflates
//    the GEMM main loop with communication instructions and requires P2P
//    plus a hand-written kernel per primitive.
#ifndef SRC_BASELINES_BASELINES_H_
#define SRC_BASELINES_BASELINES_H_

#include <optional>
#include <string>
#include <vector>

#include "src/comm/cost_model.h"
#include "src/gemm/gemm_model.h"
#include "src/hw/cluster.h"

namespace flo {

struct BaselineResult {
  std::string name;
  bool supported = false;
  double latency_us = 0.0;
};

class Baselines {
 public:
  explicit Baselines(ClusterSpec cluster, int element_size = 2);

  const ClusterSpec& cluster() const { return cluster_; }

  // Sequential cuBLAS + NCCL reference (denominator of every speedup).
  double NonOverlap(const GemmShape& shape, CommPrimitive primitive) const;

  // Decomposition into `chunks` pieces along M; pass 0 to sweep a chunk-
  // count grid and keep the best (how the baseline would be tuned).
  BaselineResult VanillaDecomposition(const GemmShape& shape, CommPrimitive primitive,
                                      int chunks = 0) const;

  BaselineResult AsyncTp(const GemmShape& shape, CommPrimitive primitive) const;

  BaselineResult Flux(const GemmShape& shape, CommPrimitive primitive) const;

  BaselineResult CublasMp(const GemmShape& shape, CommPrimitive primitive) const;

  // All four, in presentation order.
  std::vector<BaselineResult> All(const GemmShape& shape, CommPrimitive primitive) const;

 private:
  double DecompositionPipeline(const GemmShape& shape, CommPrimitive primitive, int chunks,
                               bool p2p_copy_engine) const;

  ClusterSpec cluster_;
  GemmModel gemm_model_;
  CommCostModel cost_model_;
  int element_size_;
};

}  // namespace flo

#endif  // SRC_BASELINES_BASELINES_H_
