#include "src/cluster/autoscaler.h"

#include <algorithm>

#include "src/util/check.h"

namespace flo {

Autoscaler::Autoscaler(AutoscaleConfig config) : config_(config) {
  FLO_CHECK_GE(config_.min_replicas, 1);
  FLO_CHECK_GE(config_.max_replicas, config_.min_replicas);
  FLO_CHECK_GT(config_.check_interval_us, 0.0);
  FLO_CHECK_GE(config_.drain_after_calm_checks, 1);
  if (config_.predictive) {
    FLO_CHECK_GT(config_.prespawn_headroom, 0.0);
  }
}

Autoscaler::Decision Autoscaler::Evaluate(const Observation& observation) {
  const int replicas = observation.accepting_replicas;
  if (replicas <= 0) {
    // Fault outage: nothing accepts, so per-replica pressure is
    // undefined. Hold, and freeze the calm counter — an outage window
    // must not count toward drain hysteresis (or a drain could fire the
    // moment health restores), and it must not reset progress either.
    return Decision::kHold;
  }
  const double pending_per_replica =
      static_cast<double>(observation.pending_requests) / replicas;
  const bool queue_pressure = pending_per_replica > config_.spawn_queue_per_replica;
  const bool slo_pressure =
      config_.slo_p99_us > 0.0 && observation.recent_p99_us > config_.slo_p99_us;
  if (queue_pressure || slo_pressure) {
    calm_checks_ = 0;
    return replicas < config_.max_replicas ? Decision::kSpawn : Decision::kHold;
  }
  // Predictive tier: demand one interval ahead, linearly extrapolated.
  const bool predictive =
      config_.predictive && observation.capacity_per_replica > 0.0;
  const double predicted_demand =
      predictive ? std::max(0.0, observation.rate_estimate + observation.rate_trend) : 0.0;
  const double capacity_headroom =
      observation.capacity_per_replica * config_.prespawn_headroom;
  if (predictive && predicted_demand > static_cast<double>(replicas) * capacity_headroom) {
    // The estimate says the fleet is about to fall behind even though
    // queues have not built yet: demand forming is not calm.
    calm_checks_ = 0;
    return replicas < config_.max_replicas ? Decision::kPrespawn : Decision::kHold;
  }
  bool calm = pending_per_replica < config_.drain_queue_per_replica &&
              (config_.slo_p99_us <= 0.0 ||
               observation.recent_p99_us <= config_.slo_p99_us);
  if (calm && predictive) {
    // Pre-drain guard: giving a replica back must leave enough capacity
    // for the predicted demand, sustained over the same hysteresis
    // window the reactive signals use.
    calm = predicted_demand <= static_cast<double>(replicas - 1) * capacity_headroom;
  }
  if (!calm) {
    calm_checks_ = 0;
    return Decision::kHold;
  }
  if (++calm_checks_ < config_.drain_after_calm_checks || replicas <= config_.min_replicas) {
    return Decision::kHold;
  }
  calm_checks_ = 0;
  return Decision::kDrain;
}

}  // namespace flo
