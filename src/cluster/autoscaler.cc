#include "src/cluster/autoscaler.h"

#include "src/util/check.h"

namespace flo {

Autoscaler::Autoscaler(AutoscaleConfig config) : config_(config) {
  FLO_CHECK_GE(config_.min_replicas, 1);
  FLO_CHECK_GE(config_.max_replicas, config_.min_replicas);
  FLO_CHECK_GT(config_.check_interval_us, 0.0);
  FLO_CHECK_GE(config_.drain_after_calm_checks, 1);
}

Autoscaler::Decision Autoscaler::Evaluate(const Observation& observation) {
  const int replicas = observation.accepting_replicas;
  const double pending_per_replica =
      replicas > 0 ? static_cast<double>(observation.pending_requests) / replicas : 0.0;
  const bool queue_pressure = pending_per_replica > config_.spawn_queue_per_replica;
  const bool slo_pressure =
      config_.slo_p99_us > 0.0 && observation.recent_p99_us > config_.slo_p99_us;
  if (queue_pressure || slo_pressure) {
    calm_checks_ = 0;
    return replicas < config_.max_replicas ? Decision::kSpawn : Decision::kHold;
  }
  const bool calm = pending_per_replica < config_.drain_queue_per_replica &&
                    (config_.slo_p99_us <= 0.0 ||
                     observation.recent_p99_us <= config_.slo_p99_us);
  if (!calm) {
    calm_checks_ = 0;
    return Decision::kHold;
  }
  if (++calm_checks_ < config_.drain_after_calm_checks || replicas <= config_.min_replicas) {
    return Decision::kHold;
  }
  calm_checks_ = 0;
  return Decision::kDrain;
}

}  // namespace flo
