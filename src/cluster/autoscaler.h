// Replica autoscaling on the simulated clock.
//
// The cluster evaluates the autoscaler at a fixed check interval; the
// decision is a pure function of the observation plus a small hysteresis
// counter, so fleets scale identically on every run (deterministic at any
// replica count). Two pressure signals, either can trigger a spawn:
//  - queue pressure: pending requests per accepting replica above the
//    spawn threshold (the fleet is falling behind the arrival rate);
//  - SLO pressure: the p99 latency of requests finished since the last
//    check above the target (tails are already burning).
// Draining needs calm on BOTH signals for `drain_after_calm_checks`
// consecutive checks — scale-down is deliberately stickier than scale-up
// so bursty traffic does not flap the fleet.
#ifndef SRC_CLUSTER_AUTOSCALER_H_
#define SRC_CLUSTER_AUTOSCALER_H_

#include <cstddef>

namespace flo {

struct AutoscaleConfig {
  bool enabled = false;
  int min_replicas = 1;
  int max_replicas = 8;
  // Sim-clock period between evaluations.
  double check_interval_us = 100000.0;
  // Spawn when pending requests per accepting replica exceed this.
  double spawn_queue_per_replica = 8.0;
  // ...or when the recent p99 latency exceeds this (0 disables the SLO
  // signal).
  double slo_p99_us = 0.0;
  // Drain when pending per replica fall below this and the SLO is met.
  double drain_queue_per_replica = 1.0;
  // Consecutive calm checks required before draining one replica.
  int drain_after_calm_checks = 3;
};

class Autoscaler {
 public:
  enum class Decision { kHold, kSpawn, kDrain };

  struct Observation {
    int accepting_replicas = 0;
    size_t pending_requests = 0;
    // p99 latency of requests finished since the previous check; 0 when
    // none finished.
    double recent_p99_us = 0.0;
  };

  explicit Autoscaler(AutoscaleConfig config);

  const AutoscaleConfig& config() const { return config_; }

  // One check-interval evaluation. Deterministic: the decision depends
  // only on the observation sequence.
  Decision Evaluate(const Observation& observation);

 private:
  AutoscaleConfig config_;
  int calm_checks_ = 0;
};

}  // namespace flo

#endif  // SRC_CLUSTER_AUTOSCALER_H_
