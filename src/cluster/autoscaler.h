// Replica autoscaling on the simulated clock.
//
// The cluster evaluates the autoscaler at a fixed check interval; the
// decision is a pure function of the observation plus a small hysteresis
// counter, so fleets scale identically on every run (deterministic at any
// replica count). Two reactive pressure signals, either can trigger a
// spawn:
//  - queue pressure: pending requests per accepting replica above the
//    spawn threshold (the fleet is falling behind the arrival rate);
//  - SLO pressure: the p99 latency of requests finished since the last
//    check above the target (tails are already burning).
// Draining needs calm on BOTH signals for `drain_after_calm_checks`
// consecutive checks — scale-down is deliberately stickier than scale-up
// so bursty traffic does not flap the fleet.
//
// An optional predictive tier (off by default) composes with — never
// overrides — the reactive signals. It reads a short-horizon arrival-rate
// estimate sampled from the FleetScheduler's decayed arrival accounts:
//  - pre-spawn (kPrespawn): when the extrapolated next-interval demand
//    exceeds what the accepting fleet can absorb (accepting_replicas x
//    capacity_per_replica x prespawn_headroom) while the reactive signals
//    are still quiet, spawn now so the forming burst lands on a warm
//    fleet instead of paying spawn + warm-up inside the tail;
//  - pre-drain guard: a drain additionally requires that the shrunk
//    fleet could still absorb the predicted demand, for the same
//    hysteresis window — so a ramp whose queues have not built yet
//    cannot trick the reactive calm counter into a spurious drain.
// Reactive pressure always wins: if queue or SLO pressure fires, the
// decision is the reactive kSpawn, and predictive calm can only make
// draining stricter, never eager.
#ifndef SRC_CLUSTER_AUTOSCALER_H_
#define SRC_CLUSTER_AUTOSCALER_H_

#include <cstddef>

namespace flo {

struct AutoscaleConfig {
  bool enabled = false;
  int min_replicas = 1;
  int max_replicas = 8;
  // Sim-clock period between evaluations.
  double check_interval_us = 100000.0;
  // Spawn when pending requests per accepting replica exceed this.
  double spawn_queue_per_replica = 8.0;
  // ...or when the recent p99 latency exceeds this (0 disables the SLO
  // signal).
  double slo_p99_us = 0.0;
  // Drain when pending per replica fall below this and the SLO is met.
  double drain_queue_per_replica = 1.0;
  // Consecutive calm checks required before draining one replica.
  int drain_after_calm_checks = 3;
  // Predictive tier master switch. Off (the default), the rate-estimate
  // fields of the observation are ignored and decisions are bit-identical
  // to the reactive-only autoscaler. On, the ServingCluster constructs a
  // FleetScheduler for its arrival accounts even when SchedConfig is
  // disabled; the estimate decays over SchedConfig::share_half_life_us.
  bool predictive = false;
  // Capacity margin for both predictive decisions: pre-spawn fires when
  // predicted demand > accepting x capacity x headroom, and a drain is
  // allowed only when (accepting - 1) x capacity x headroom still covers
  // the predicted demand. > 1.0 spawns earlier and drains later.
  double prespawn_headroom = 1.0;
};

class Autoscaler {
 public:
  // kPrespawn is a spawn decided by the predictive tier alone (reactive
  // signals quiet); clusters treat it exactly like kSpawn but report and
  // trace it separately so the tier's contribution is observable.
  enum class Decision { kHold, kSpawn, kDrain, kPrespawn };

  // INVARIANT (pinned in tests/autoscaler_test.cc): pending_requests and
  // accepting_replicas must cover the SAME replica set — accepting
  // replicas only. Backlogs parked on crashed, hung, or draining
  // replicas are excluded from the numerator because those replicas are
  // excluded from the denominator; that work re-enters the pressure
  // signal when the fault/sched requeue paths re-place it on an
  // accepting replica. Mixing the sets made per-replica pressure
  // meaningless during fault windows (e.g. a hung replica's deep queue
  // divided over the healthy survivors).
  struct Observation {
    int accepting_replicas = 0;
    size_t pending_requests = 0;
    // p99 latency of requests finished since the previous check. When an
    // interval completes nothing but work is still pending, the cluster
    // carries the previous window's p99 forward (a stalled fleet is not
    // a calm fleet); 0 only when the fleet is genuinely idle.
    double recent_p99_us = 0.0;
    // Predictive-tier inputs (ignored unless config.predictive):
    // estimated arrivals in the next check interval, the per-interval
    // trend of that estimate, and the requests one accepting replica can
    // absorb per check interval.
    double rate_estimate = 0.0;
    double rate_trend = 0.0;
    double capacity_per_replica = 0.0;
  };

  explicit Autoscaler(AutoscaleConfig config);

  const AutoscaleConfig& config() const { return config_; }

  // One check-interval evaluation. Deterministic: the decision depends
  // only on the observation sequence. An observation with zero accepting
  // replicas (a fault outage, not calm) holds WITHOUT touching the
  // drain-hysteresis counter: the fleet's pressure is unknowable while
  // nothing accepts, so the calm window neither advances nor resets.
  Decision Evaluate(const Observation& observation);

 private:
  AutoscaleConfig config_;
  int calm_checks_ = 0;
};

}  // namespace flo

#endif  // SRC_CLUSTER_AUTOSCALER_H_
