#include "src/cluster/fleet_router.h"

#include "src/util/check.h"

namespace flo {

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kRoundRobin:
      return "RoundRobin";
    case PlacementPolicy::kLeastLoaded:
      return "LeastLoaded";
    case PlacementPolicy::kPlanAffinity:
      return "PlanAffinity";
  }
  return "Unknown";
}

std::optional<PlacementPolicy> TryPlacementPolicyFromName(const std::string& name) {
  for (const PlacementPolicy policy :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kLeastLoaded,
        PlacementPolicy::kPlanAffinity}) {
    if (name == PlacementPolicyName(policy)) {
      return policy;
    }
  }
  return std::nullopt;
}

template <typename Pred>
int FleetRouter::LeastLoaded(const std::vector<ReplicaSnapshot>& replicas, Pred pred) {
  int best = -1;
  double best_load = 0.0;
  for (const ReplicaSnapshot& replica : replicas) {
    // INVARIANT: `accepting` gates every affinity tier, including the
    // warm-plan winner — a draining, retired, or unhealthy replica must
    // never receive a placement, no matter how attractive its plan cache
    // looks (cluster_test pins this). Snapshots() additionally excludes
    // retired replicas at the source.
    if (!replica.accepting || !pred(replica)) {
      continue;
    }
    const double load = replica.busy_us + replica.pending_cost_us;
    if (best == -1 || load < best_load) {
      best = replica.id;
      best_load = load;
    }
  }
  return best;
}

int FleetRouter::PlaceRoundRobin(const std::vector<ReplicaSnapshot>& replicas,
                                 int avoid_id) {
  // Rotate by id so the cycle survives spawns and drains: the next
  // accepting id after the previous placement, wrapping to the lowest.
  int next = -1;
  int lowest = -1;
  for (const ReplicaSnapshot& replica : replicas) {
    if (!replica.accepting || replica.id == avoid_id) {
      continue;
    }
    if (lowest == -1 || replica.id < lowest) {
      lowest = replica.id;
    }
    if (replica.id > last_placed_id_ && (next == -1 || replica.id < next)) {
      next = replica.id;
    }
  }
  return next != -1 ? next : lowest;
}

int FleetRouter::Place(const std::vector<ReplicaSnapshot>& replicas, int avoid_id) {
  const auto allowed = [avoid_id](const ReplicaSnapshot& r) { return r.id != avoid_id; };
  int placed = -1;
  switch (policy_) {
    case PlacementPolicy::kRoundRobin:
      placed = PlaceRoundRobin(replicas, avoid_id);
      break;
    case PlacementPolicy::kLeastLoaded:
      placed = LeastLoaded(replicas, allowed);
      break;
    case PlacementPolicy::kPlanAffinity:
      placed = LeastLoaded(
          replicas, [&](const ReplicaSnapshot& r) { return allowed(r) && r.plan_warm; });
      if (placed == -1) {
        placed = LeastLoaded(
            replicas, [&](const ReplicaSnapshot& r) { return allowed(r) && r.plan_tuning; });
      }
      if (placed == -1) {
        placed = LeastLoaded(
            replicas, [&](const ReplicaSnapshot& r) { return allowed(r) && r.plan_pending; });
      }
      if (placed == -1) {
        placed = LeastLoaded(replicas, allowed);
      }
      break;
  }
  if (placed != -1) {
    last_placed_id_ = placed;
  }
  return placed;
}

}  // namespace flo
