// Request placement for the serving fleet: which replica gets the next
// request.
//
// The router sees replicas only through snapshots (load, warmth) and is
// deterministic: identical snapshot sequences produce identical
// placements, with the lowest replica id breaking every tie. Three
// policies:
//  - round-robin: rotate over accepting replicas, load-blind;
//  - least-loaded: minimize backlog cost — the executor's remaining busy
//    time plus queue depth x predicted per-request cost;
//  - plan-affinity: send a request to a replica whose PlanStore already
//    holds its plan key warm (least-loaded among the warm ones), else to
//    one already tuning the key (the request coalesces into the tuning
//    window instead of re-paying the search), else to one with same-key
//    requests still pending (the key's future home), else fall back to
//    least-loaded — the cluster-scheduler locality heuristic with plan
//    warmth as the locality signal.
#ifndef SRC_CLUSTER_FLEET_ROUTER_H_
#define SRC_CLUSTER_FLEET_ROUTER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/event_queue.h"

namespace flo {

enum class PlacementPolicy {
  kRoundRobin,
  kLeastLoaded,
  kPlanAffinity,
};

const char* PlacementPolicyName(PlacementPolicy policy);
// Inverse of PlacementPolicyName; std::nullopt for unknown names.
std::optional<PlacementPolicy> TryPlacementPolicyFromName(const std::string& name);

// What the router sees of one replica when placing a request with a given
// plan key.
struct ReplicaSnapshot {
  int id = 0;
  // Active and not draining: eligible for new placements.
  bool accepting = true;
  // Requests admitted but not yet dispatched to the executor.
  size_t queued_requests = 0;
  // Executor busy time remaining, in us (0 when the lane is free).
  double busy_us = 0.0;
  // Predicted cost of the queued backlog, in us (queue depth x estimated
  // per-request service time).
  double pending_cost_us = 0.0;
  // The replica's PlanStore holds the request's plan key warm.
  bool plan_warm = false;
  // The replica is tuning the request's plan key right now.
  bool plan_tuning = false;
  // The replica holds pending requests of the same key (admitted, but the
  // key is neither warm nor tuning yet): the key's future home.
  bool plan_pending = false;
};

class FleetRouter {
 public:
  explicit FleetRouter(PlacementPolicy policy) : policy_(policy) {}

  PlacementPolicy policy() const { return policy_; }

  // Picks an accepting replica; -1 when none accepts. Deterministic.
  // `avoid_id` (when >= 0) excludes one replica from every tier — the
  // preemptive-requeue path re-places work pulled off an overloaded
  // replica and must not hand it straight back.
  int Place(const std::vector<ReplicaSnapshot>& replicas, int avoid_id = -1);

 private:
  int PlaceRoundRobin(const std::vector<ReplicaSnapshot>& replicas, int avoid_id);
  // Least backlog among `replicas` entries satisfying `pred`; -1 if none.
  template <typename Pred>
  static int LeastLoaded(const std::vector<ReplicaSnapshot>& replicas, Pred pred);

  PlacementPolicy policy_;
  // Round-robin rotation state: the id after which the scan resumes.
  int last_placed_id_ = -1;
};

}  // namespace flo

#endif  // SRC_CLUSTER_FLEET_ROUTER_H_
