#include "src/cluster/plan_shipping.h"

#include <fstream>
#include <utility>

#include "src/util/check.h"

namespace flo {

void PlanShipper::ShipToLocked(uint64_t key, const std::string& record,
                               Subscriber* subscriber) {
  stats_.shipped += subscriber->store->ImportRecords(record);
  if (subscriber->tuner != nullptr) {
    const auto artifact = artifacts_.find(key);
    if (artifact != artifacts_.end()) {
      subscriber->tuner->ImportPlans({artifact->second});
    }
  }
}

size_t PlanShipper::Subscribe(int replica_id, std::shared_ptr<PlanStore> store,
                              Tuner* tuner) {
  FLO_CHECK(store != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  // Bootstrap: a late subscriber (autoscaler spawn) starts warm — both
  // tiers — with every plan the fleet has already paid for.
  const size_t bootstrapped = store->ImportRecords(published_.Serialize());
  stats_.shipped += bootstrapped;
  if (tuner != nullptr && !artifacts_.empty()) {
    std::vector<StoredPlan> artifacts;
    artifacts.reserve(artifacts_.size());
    for (const auto& [key, artifact] : artifacts_) {
      artifacts.push_back(artifact);
    }
    tuner->ImportPlans(artifacts);
  }
  subscribers_[replica_id] = Subscriber{std::move(store), tuner};
  return bootstrapped;
}

void PlanShipper::Unsubscribe(int replica_id) {
  std::lock_guard<std::mutex> lock(mu_);
  subscribers_.erase(replica_id);
}

size_t PlanShipper::ReleaseReplica(int replica_id) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t released = 0;
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    if (it->second == replica_id) {
      it = in_flight_.erase(it);
      ++released;
    } else {
      ++it;
    }
  }
  return released;
}

void PlanShipper::AbandonTuning(uint64_t key, int replica_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = in_flight_.find(key);
  if (it != in_flight_.end() && it->second == replica_id) {
    in_flight_.erase(it);
  }
}

void PlanShipper::SetDropFilter(DropFilter filter) {
  std::lock_guard<std::mutex> lock(mu_);
  drop_filter_ = std::move(filter);
}

bool PlanShipper::BeginTuning(uint64_t key, int replica_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (const std::optional<std::string> record = published_.ExportRecord(key)) {
    // Already tuned fleet-wide: re-ship into the caller (its bounded
    // store evicted the copy) instead of letting it re-search.
    const auto it = subscribers_.find(replica_id);
    if (it != subscribers_.end()) {
      ShipToLocked(key, *record, &it->second);
    }
    return true;
  }
  const auto [it, inserted] = in_flight_.try_emplace(key, replica_id);
  if (inserted || it->second == replica_id) {
    return true;
  }
  ++stats_.duplicate_tunes_avoided;
  return false;
}

bool PlanShipper::Publish(uint64_t key, const PlanStore& source, const StoredPlan* artifact) {
  const std::optional<std::string> record = source.ExportRecord(key);
  std::lock_guard<std::mutex> lock(mu_);
  // Release ownership unconditionally: if the owner's bounded store
  // evicted the plan before the publish (nothing to export), a peer must
  // be able to acquire the key and tune it, not stay parked forever.
  in_flight_.erase(key);
  if (!record.has_value()) {
    return false;
  }
  // A re-publish (an evicted copy re-tuned at zero searches) refreshes
  // the published set but is not a new plan and fans out nothing: peers
  // that lost their copy re-fetch through BeginTuning.
  const bool fresh = !published_.Contains(key);
  if (published_.ImportRecords(*record) == 0) {
    return false;
  }
  if (!fresh) {
    return true;
  }
  if (artifact != nullptr) {
    artifacts_[key] = *artifact;
  }
  ++stats_.published;
  for (auto& [id, subscriber] : subscribers_) {
    if (subscriber.store.get() == &source) {
      continue;  // the owner already holds what it just tuned
    }
    if (drop_filter_ && drop_filter_(key, id)) {
      // Injected shipping loss: the delivery vanishes. The victim's
      // parked batches re-acquire through BeginTuning, whose re-ship
      // pull is not filtered.
      ++stats_.ship_drops;
      continue;
    }
    ShipToLocked(key, *record, &subscriber);
  }
  return true;
}

std::string PlanShipper::SerializeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = published_.Serialize();
  // Tuner tier rides along as '#tuner' comment lines: plan-tier parsers
  // skip them, so the combined file stays loadable by PlanStore::Parse.
  std::vector<std::pair<uint64_t, StoredPlan>> artifacts(artifacts_.begin(),
                                                         artifacts_.end());
  out += SerializeTunerTier(artifacts);
  return out;
}

bool PlanShipper::SaveSnapshot(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << SerializeSnapshot();
  return static_cast<bool>(file);
}

size_t PlanShipper::ImportSnapshot(const std::string& text) {
  std::lock_guard<std::mutex> lock(mu_);
  // Tuner tier first: a malformed tier rejects the snapshot whole, before
  // any plan-tier record lands in the published set.
  auto tuner_tier = ParseTunerTier(text);
  if (!tuner_tier.has_value()) {
    return 0;
  }
  const size_t imported = published_.ImportRecords(text);
  if (imported == 0) {
    return 0;
  }
  std::vector<StoredPlan> artifacts;
  artifacts.reserve(tuner_tier->size());
  for (const auto& [key, artifact] : *tuner_tier) {
    artifacts.push_back(artifact);
  }
  for (auto& [key, artifact] : *tuner_tier) {
    artifacts_[key] = std::move(artifact);
  }
  // Ship only the records just imported — re-shipping the whole
  // published set would churn the LRU order of bounded subscriber stores.
  for (auto& [id, subscriber] : subscribers_) {
    stats_.shipped += subscriber.store->ImportRecords(text);
    if (subscriber.tuner != nullptr && !artifacts.empty()) {
      subscriber.tuner->ImportPlans(artifacts);
    }
  }
  return imported;
}

size_t PlanShipper::published_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_.size();
}

bool PlanShipper::Published(uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_.Contains(key);
}

PlanShipperStats PlanShipper::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace flo
