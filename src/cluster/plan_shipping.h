// Plan shipping: the fleet pays each tuner search once.
//
// Replicas subscribe their PlanStores; when one replica finishes a cold
// tune it publishes the plan and the shipper copies it into every peer
// store — through PlanStore's record serialization, so what crosses a
// replica boundary is exactly the bytes that would cross a process
// boundary (shipping and on-disk warm starts share one layer; see
// PlanStore::ExportRecord / ImportRecords).
//
// The shipper also single-flights searches fleet-wide: BeginTuning grants
// each key to the first replica that asks; peers that lose the race park
// their batches until the owner's plan arrives. A key whose plan is
// already published is re-shipped on demand (a capacity-bounded store may
// have evicted it), so losing a plan never re-pays its search.
//
// The published set doubles as the fleet snapshot: save it to disk and a
// future cluster (or a replica spawned mid-run by the autoscaler) warm-
// starts from it with zero searches.
#ifndef SRC_CLUSTER_PLAN_SHIPPING_H_
#define SRC_CLUSTER_PLAN_SHIPPING_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/plan_store.h"
#include "src/core/tuner.h"

namespace flo {

struct PlanShipperStats {
  // Plans published (one per key tuned anywhere in the fleet).
  size_t published = 0;
  // Plan copies delivered into subscriber stores (publishes, re-ships,
  // and bootstrap deliveries).
  size_t shipped = 0;
  // BeginTuning calls denied because a peer owned the in-flight search —
  // duplicate searches the fleet did not pay.
  size_t duplicate_tunes_avoided = 0;
  // Publish fan-out deliveries suppressed by an injected shipping-loss
  // window (src/fault). The victims recover through the BeginTuning
  // re-ship pull path, which the filter never touches.
  size_t ship_drops = 0;
};

class PlanShipper {
 public:
  // Registers a replica's store (and optionally its tuner) as a shipment
  // target and warm-starts both tiers with everything already published —
  // a replica spawned mid-run starts warm. Returns the number of plans
  // bootstrapped into the store (a restarting crashed replica reports
  // this as its re-warm count). The tuner pointer is borrowed; the caller
  // must Unsubscribe before destroying either.
  size_t Subscribe(int replica_id, std::shared_ptr<PlanStore> store, Tuner* tuner = nullptr);
  void Unsubscribe(int replica_id);

  // Crash teardown: releases every in-flight search `replica_id` owns, so
  // the keys are acquirable again (the crashed replica will never publish
  // them). Returns the number released.
  size_t ReleaseReplica(int replica_id);
  // Aborted-search release for one key (injected tuner fault): the owner
  // gives the key up without publishing. No-op unless `replica_id` owns it.
  void AbandonTuning(uint64_t key, int replica_id);

  // Shipping-loss injection (src/fault): while set, a Publish fan-out
  // delivery to (key, replica) is dropped when the filter returns true.
  // Only the push path is filtered — BeginTuning re-ships, Subscribe
  // bootstraps, and ImportSnapshot stay reliable, which is exactly the
  // recovery path a dropped victim falls back to. nullptr clears.
  using DropFilter = std::function<bool(uint64_t key, int replica_id)>;
  void SetDropFilter(DropFilter filter);

  // Fleet-wide single-flight. Returns true when `replica_id` should tune
  // `key` itself: it acquired ownership, or it already owns it. Returns
  // false when a peer owns the in-flight search (park until the publish
  // ships the plan). When the key is already published, the plan (both
  // tiers) is re-shipped into the caller and the call returns true — the
  // caller's "tune" then finds the store warm and costs no search.
  bool BeginTuning(uint64_t key, int replica_id);

  // Publishes `key`'s plan from `source` to every subscribed store and
  // releases the in-flight ownership. `artifact`, when given, is the
  // tuner-tier StoredPlan behind the key's search: it is delivered to
  // peer tuners (and kept for late subscribers), so a bounded store that
  // later evicts the shipped ExecutionPlan rebuilds it without re-paying
  // the search. No-op (false) when `source` does not hold the key.
  bool Publish(uint64_t key, const PlanStore& source, const StoredPlan* artifact = nullptr);

  // The published set, serialized — the fleet snapshot for on-disk
  // warm starts (feed it back via ImportSnapshot or
  // PlanStore::ImportRecords). Two tiers in one file: the ExecutionPlan
  // records, then the tuner-tier StoredPlan artifacts as '#tuner' lines
  // (comments to plan-tier parsers, so old readers load the plan tier
  // unchanged and old snapshots import as an empty tuner tier).
  std::string SerializeSnapshot() const;
  bool SaveSnapshot(const std::string& path) const;
  // Imports both tiers into the published set and ships them to every
  // subscriber (stores and tuners); returns the number of plans imported
  // (0 on malformed text in either tier — nothing is applied).
  size_t ImportSnapshot(const std::string& text);

  size_t published_size() const;
  bool Published(uint64_t key) const;
  PlanShipperStats stats() const;

 private:
  struct Subscriber {
    std::shared_ptr<PlanStore> store;
    Tuner* tuner = nullptr;
  };

  // Delivers `key`'s record (and tuner artifact, if kept) to one
  // subscriber. Requires mu_.
  void ShipToLocked(uint64_t key, const std::string& record, Subscriber* subscriber);

  mutable std::mutex mu_;
  // The authoritative published set (unbounded: one entry per distinct
  // key the fleet ever tuned).
  PlanStore published_;
  // The tuner-tier artifact behind each published key's search. Persisted
  // alongside the plan tier by SerializeSnapshot, so a warm-started fleet
  // with bounded stores rebuilds evicted ExecutionPlans from the tuner
  // cache instead of re-paying the search.
  std::map<uint64_t, StoredPlan> artifacts_;
  std::map<int, Subscriber> subscribers_;
  std::map<uint64_t, int> in_flight_;  // key -> owning replica id
  DropFilter drop_filter_;
  PlanShipperStats stats_;
};

}  // namespace flo

#endif  // SRC_CLUSTER_PLAN_SHIPPING_H_
