#include "src/cluster/replica.h"

#include <utility>

#include "src/util/check.h"

namespace flo {

Replica::Replica(int id, const ClusterSpec& cluster, const TunerConfig& tuner_config,
                 const EngineOptions& options, size_t store_capacity, SimTime spawned_at)
    : id_(id),
      store_(std::make_shared<PlanStore>(store_capacity)),
      engine_(cluster, tuner_config, options),
      spawned_us_(spawned_at) {
  engine_.UseSharedPlanStore(store_);
}

void Replica::StartSession(const ServeConfig& config, EventLoop* events,
                           ServeSession::Hooks hooks) {
  FLO_CHECK(!retired_);
  searches_at_session_start_ = engine_.tuner().search_count();
  health_ = Health::kHealthy;  // injected faults do not leak across runs
  session_ = std::make_unique<ServeSession>(&engine_, config, events, std::move(hooks), id_);
}

size_t Replica::SearchesThisRun() {
  return engine_.tuner().search_count() - searches_at_session_start_;
}

void Replica::Retire(SimTime now) {
  FLO_CHECK(draining_);
  FLO_CHECK(session_ == nullptr || session_->idle());
  retired_ = true;
  retired_us_ = now;
}

}  // namespace flo
