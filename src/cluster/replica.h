// One serving replica: an OverlapEngine with its own (possibly bounded)
// PlanStore plus the replica's serving session and lifecycle state.
//
// The engine and store persist for the replica's lifetime — plans stay
// warm across cluster runs — while the ServeSession (queues, lanes,
// report) is recreated per ServingCluster::Run. Lifecycle: accepting ->
// draining (router stops placing, the backlog finishes) -> retired.
#ifndef SRC_CLUSTER_REPLICA_H_
#define SRC_CLUSTER_REPLICA_H_

#include <cstddef>
#include <memory>

#include "src/core/overlap_engine.h"
#include "src/serve/serve_session.h"
#include "src/sim/event_loop.h"

namespace flo {

class Replica {
 public:
  // Fault-injection health (src/fault). Only a healthy replica accepts
  // placements; crashed and hung replicas are also stalled (their session
  // dispatches nothing), stragglers keep executing at a cost multiplier
  // but are unroutable until the window ends.
  enum class Health { kHealthy, kCrashed, kHung, kStraggling };

  Replica(int id, const ClusterSpec& cluster, const TunerConfig& tuner_config,
          const EngineOptions& options, size_t store_capacity, SimTime spawned_at);

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  int id() const { return id_; }
  OverlapEngine& engine() { return engine_; }
  const std::shared_ptr<PlanStore>& store() const { return store_; }

  // Starts a fresh session (fresh report) for one cluster run; the
  // session's event records carry this replica's id. Also snapshots the
  // engine's tuner search count so per-run search totals subtract work
  // from earlier runs.
  void StartSession(const ServeConfig& config, EventLoop* events,
                    ServeSession::Hooks hooks);
  // Drops the previous run's session so its report cannot leak into a
  // later run (retired replicas are skipped by StartSession).
  void ClearSession() { session_.reset(); }
  ServeSession* session() { return session_.get(); }
  const ServeSession* session() const { return session_.get(); }
  // Searches this replica performed since StartSession.
  size_t SearchesThisRun();

  bool accepting() const {
    return !draining_ && !retired_ && health_ == Health::kHealthy;
  }
  bool draining() const { return draining_; }
  bool retired() const { return retired_; }
  Health health() const { return health_; }
  void SetHealth(Health health) { health_ = health; }
  void BeginDrain() { draining_ = true; }
  void Retire(SimTime now);

  SimTime spawned_us() const { return spawned_us_; }
  // -1 while the replica is still active.
  SimTime retired_us() const { return retired_us_; }

 private:
  int id_;
  std::shared_ptr<PlanStore> store_;
  OverlapEngine engine_;
  std::unique_ptr<ServeSession> session_;
  size_t searches_at_session_start_ = 0;
  bool draining_ = false;
  bool retired_ = false;
  Health health_ = Health::kHealthy;
  SimTime spawned_us_ = 0.0;
  SimTime retired_us_ = -1.0;
};

}  // namespace flo

#endif  // SRC_CLUSTER_REPLICA_H_
