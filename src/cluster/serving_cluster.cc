#include "src/cluster/serving_cluster.h"

#include <algorithm>
#include <utility>

#include "src/obs/obs_plane.h"
#include "src/serve/request_cursor.h"
#include "src/util/check.h"
#include "src/util/file.h"
#include "src/util/stats.h"

namespace flo {

namespace {

// Fleet-scope instant (autoscaler decisions, replica lifecycle): one
// branch when the plane is absent or disabled.
void EmitFleetInstant(ObsPlane* obs, SpanKind kind, SimTime now, uint64_t id, uint64_t arg) {
  if (obs == nullptr || !obs->enabled()) {
    return;
  }
  SpanRecord span;
  span.kind = kind;
  span.start_us = now;
  span.end_us = now;
  span.id = id;
  span.arg = arg;
  span.replica = -1;
  obs->Emit(span);
}

}  // namespace

ServingCluster::ServingCluster(ClusterSpec hardware, ClusterConfig config,
                               TunerConfig tuner_config, EngineOptions options)
    : hardware_(hardware),
      config_(config),
      tuner_config_(tuner_config),
      options_(options),
      keyer_tuner_(hardware, tuner_config),
      keyer_(&keyer_tuner_, &keyer_store_),
      router_(config.policy),
      events_(config.serve.legacy_event_heap) {
  FLO_CHECK_GE(config_.replicas, 1);
  FLO_CHECK_GT(config_.default_cost_estimate_us, 0.0);
  if (config_.autoscale.enabled) {
    FLO_CHECK_LE(config_.autoscale.min_replicas, config_.replicas);
    FLO_CHECK_LE(config_.replicas, config_.autoscale.max_replicas);
  }
  autoscale_handler_ = events_.RegisterHandler(
      [this](const EventRecord&, SimTime now) { AutoscaleCheck(now); });
}

Replica* ServingCluster::SpawnReplica(SimTime now) {
  const int id = next_replica_id_++;
  replicas_.push_back(std::make_unique<Replica>(id, hardware_, tuner_config_, options_,
                                                config_.store_capacity, now));
  Replica* replica = replicas_.back().get();
  // Subscribing bootstraps the fresh store (and tuner) with every
  // published plan: a replica spawned mid-burst starts warm — both tiers
  // — instead of re-tuning the mix.
  shipper_.Subscribe(id, replica->store(), &replica->engine().tuner());
  replica->StartSession(config_.serve, &events_, HooksFor(replica));
  ++spawns_;
  EmitFleetInstant(config_.serve.obs, SpanKind::kReplicaSpawn, now,
                   static_cast<uint64_t>(id), 0);
  int accepting = 0;
  for (const auto& r : replicas_) {
    accepting += r->accepting() ? 1 : 0;
  }
  peak_replicas_ = std::max(peak_replicas_, accepting);
  return replica;
}

Replica* ServingCluster::FindReplica(int id) {
  for (const auto& replica : replicas_) {
    if (replica->id() == id) {
      return replica.get();
    }
  }
  return nullptr;
}

ServeSession::Hooks ServingCluster::HooksFor(Replica* replica) {
  ServeSession::Hooks hooks;
  if (config_.ship_plans) {
    hooks.acquire_tuning = [this, replica](uint64_t key) {
      return shipper_.BeginTuning(key, replica->id());
    };
    hooks.tuning_finished = [this, replica](uint64_t key, const ScenarioSpec& spec,
                                            SimTime now) {
      // Publish the plan together with the tuner-tier artifact behind its
      // search (the spec's TuningRequest): if a bounded store later
      // evicts the shipped ExecutionPlan, any replica rebuilds it from
      // its own tuner cache instead of re-paying the search — the fleet
      // really does pay each search once, at any store capacity.
      const auto request = keyer_.TuningRequest(spec);
      StoredPlan artifact;
      const StoredPlan* artifact_ptr = nullptr;
      // Only balanced searches have a tuner-tier StoredPlan form;
      // imbalanced multiset plans ship through the ExecutionPlan record
      // alone (their search result is not a single-shape partition).
      if (request.has_value() && request->shapes.size() == 1) {
        Tuner& owner = replica->engine().tuner();
        if (owner.Contains(request->shapes[0], request->primitive)) {
          const TunedPlan& tuned = owner.Tune(request->shapes[0], request->primitive);
          artifact = StoredPlan{request->shapes[0], request->primitive, tuned.partition,
                                tuned.predicted_us, tuned.predicted_non_overlap_us};
          artifact_ptr = &artifact;
        }
      }
      shipper_.Publish(key, *replica->store(), artifact_ptr);
      EmitFleetInstant(config_.serve.obs, SpanKind::kPlanShip, now, key,
                       static_cast<uint64_t>(replica->id()));
      // The shipped plan may unblock peers parked on this key.
      DispatchAll(now);
    };
  }
  hooks.request_finished = [this, replica](const RequestRecord& record, SimTime now) {
    ++completed_requests_;
    cost_sum_us_ += record.ExecUs() / static_cast<double>(std::max(1, record.batch_size));
    ++cost_samples_;
    if (config_.autoscale.enabled) {
      // The SLO-pressure window; AutoscaleCheck drains it every interval.
      recent_latencies_.push_back(record.LatencyUs());
    }
    MaybeRetire(replica, now);
  };
  return hooks;
}

double ServingCluster::CostEstimateUs() const {
  return cost_samples_ > 0 ? cost_sum_us_ / static_cast<double>(cost_samples_)
                           : config_.default_cost_estimate_us;
}

const std::vector<ReplicaSnapshot>& ServingCluster::Snapshots(uint64_t key, SimTime now) {
  std::vector<ReplicaSnapshot>& snapshots = snapshot_scratch_;
  snapshots.clear();
  snapshots.reserve(replicas_.size());
  const double cost_estimate = CostEstimateUs();
  for (const auto& replica : replicas_) {
    if (replica->retired() || replica->session() == nullptr) {
      continue;
    }
    const ServeSession& session = *replica->session();
    ReplicaSnapshot snapshot;
    snapshot.id = replica->id();
    snapshot.accepting = replica->accepting();
    snapshot.queued_requests = session.pending_requests();
    snapshot.busy_us = std::max(0.0, session.busy_until() - now);
    snapshot.pending_cost_us =
        static_cast<double>(snapshot.queued_requests) * cost_estimate;
    snapshot.plan_tuning = session.IsTuningKey(key);
    snapshot.plan_warm = replica->store()->Contains(key) && !snapshot.plan_tuning;
    snapshot.plan_pending = session.PendingKeyCount(key) > 0;
    snapshots.push_back(snapshot);
  }
  return snapshots;
}

void ServingCluster::PlaceRequest(ServeRequest request, SimTime now) {
  const uint64_t key = keyer_.CanonicalKey(request.spec);
  run_keys_.insert(key);
  const int id = router_.Place(Snapshots(key, now));
  FLO_CHECK(id != -1) << "no accepting replica (autoscaler drained below min?)";
  Replica* replica = FindReplica(id);
  FLO_CHECK(replica != nullptr);
  replica->session()->Admit(std::move(request), now);
}

void ServingCluster::DispatchAll(SimTime now) {
  for (const auto& replica : replicas_) {
    if (!replica->retired() && replica->session() != nullptr) {
      replica->session()->Dispatch(now);
    }
  }
}

void ServingCluster::MaybeRetire(Replica* replica, SimTime now) {
  if (replica->draining() && !replica->retired() && replica->session()->idle()) {
    replica->Retire(now);
    shipper_.Unsubscribe(replica->id());
    ++drains_;
    EmitFleetInstant(config_.serve.obs, SpanKind::kReplicaRetire, now,
                     static_cast<uint64_t>(replica->id()), 0);
  }
}

void ServingCluster::AutoscaleCheck(SimTime now) {
  Autoscaler::Observation observation;
  size_t pending = 0;
  Replica* youngest_accepting = nullptr;
  for (const auto& replica : replicas_) {
    if (replica->retired() || replica->session() == nullptr) {
      continue;
    }
    pending += replica->session()->pending_requests();
    if (replica->accepting()) {
      ++observation.accepting_replicas;
      youngest_accepting = replica.get();  // id order: last accepting wins
    }
    // A draining replica that went idle without a completion event (its
    // backlog was empty at drain time) retires at the next checkpoint.
    MaybeRetire(replica.get(), now);
  }
  observation.pending_requests = pending;
  if (!recent_latencies_.empty()) {
    observation.recent_p99_us = SummarizePercentiles(recent_latencies_).p99;
    recent_latencies_.clear();
  }
  const Autoscaler::Decision decision = autoscaler_->Evaluate(observation);
  EmitFleetInstant(config_.serve.obs, SpanKind::kAutoscale, now, observation.pending_requests,
                   decision == Autoscaler::Decision::kSpawn   ? 1
                   : decision == Autoscaler::Decision::kDrain ? 2
                                                              : 0);
  switch (decision) {
    case Autoscaler::Decision::kSpawn:
      SpawnReplica(now);
      break;
    case Autoscaler::Decision::kDrain:
      if (youngest_accepting != nullptr) {
        EmitFleetInstant(config_.serve.obs, SpanKind::kReplicaDrain, now,
                         static_cast<uint64_t>(youngest_accepting->id()), 0);
        youngest_accepting->BeginDrain();
        MaybeRetire(youngest_accepting, now);
      }
      break;
    case Autoscaler::Decision::kHold:
      break;
  }
  // Continue while served work remains — completions outstanding, or
  // arrivals the pump has not pulled from the cursor yet.
  if (completed_requests_ < pump_->admitted() || !pump_->done()) {
    EventRecord record;
    record.type = EventType::kAutoscaleCheck;
    record.handler = autoscale_handler_;
    events_.Push(now + autoscaler_->config().check_interval_us, record);
  }
}

FleetReport ServingCluster::Run(std::vector<ServeRequest> requests) {
  // VectorCursor stable-sorts by arrival, reproducing the historical
  // materialize-then-sort admission order exactly.
  VectorCursor cursor(std::move(requests));
  return Run(&cursor);
}

FleetReport ServingCluster::Run(RequestCursor* cursor) {
  FLO_CHECK(cursor != nullptr);
  FLO_CHECK(events_.empty());
  // Per-run state. Engines/stores persist; sessions and reports reset.
  // Only an enabled autoscaler is constructed (and config-validated): a
  // zeroed-out disabled config must not abort the run.
  autoscaler_ =
      config_.autoscale.enabled ? std::make_unique<Autoscaler>(config_.autoscale) : nullptr;
  total_requests_ = 0;
  completed_requests_ = 0;
  cost_sum_us_ = 0.0;
  cost_samples_ = 0;
  recent_latencies_.clear();
  run_keys_.clear();
  spawns_ = 0;
  drains_ = 0;
  peak_replicas_ = 0;
  ObsPlane* obs = config_.serve.obs;
  const bool observing = obs != nullptr && obs->enabled();
  if (observing) {
    obs->BeginRun();
    // Fleet-aggregated mirror: sum tuner/store totals over every replica
    // ever spawned, so the shared gauges describe the fleet, not the
    // last-polled engine.
    obs->AddPoller([this, obs](MetricsRegistry& registry) {
      size_t searches = 0;
      PlanStoreStats stores;
      size_t resident = 0;
      int accepting = 0;
      for (const auto& replica : replicas_) {
        searches += replica->engine().tuner().search_count();
        const PlanStoreStats stats = replica->store()->stats();
        stores.hits += stats.hits;
        stores.misses += stats.misses;
        stores.evictions += stats.evictions;
        resident += replica->store()->size();
        accepting += (!replica->retired() && replica->accepting()) ? 1 : 0;
      }
      registry.Set(obs->ids().tuner_searches_total, static_cast<double>(searches));
      registry.Set(obs->ids().store_hits, static_cast<double>(stores.hits));
      registry.Set(obs->ids().store_misses, static_cast<double>(stores.misses));
      registry.Set(obs->ids().store_evictions, static_cast<double>(stores.evictions));
      registry.Set(obs->ids().plans_resident, static_cast<double>(resident));
      registry.Set(obs->ids().replicas_accepting, static_cast<double>(accepting));
    });
    obs->AttachLoop(&events_);
  } else {
    // The shared loop persists across runs; drop any previous run's tap.
    events_.SetTap(nullptr, nullptr);
  }
  const uint64_t events_before = events_.dispatched();
  if (replicas_.empty()) {
    for (int i = 0; i < config_.replicas; ++i) {
      SpawnReplica(0.0);
    }
    spawns_ = 0;  // the initial fleet is not an autoscaling event
  } else {
    int accepting = 0;
    for (const auto& replica : replicas_) {
      if (replica->retired()) {
        // Drop the prior run's session, or its report would be merged
        // into this run's (the report covers this run only).
        replica->ClearSession();
      } else {
        replica->StartSession(config_.serve, &events_, HooksFor(replica.get()));
        accepting += replica->accepting() ? 1 : 0;
      }
    }
    FLO_CHECK_GT(accepting, 0) << "every replica is retired";
    peak_replicas_ = accepting;
  }

  // Streamed admission: one arrival in flight; each firing places the
  // request and pulls the next from the cursor.
  ArrivalPump pump(cursor, &events_, [this](ServeRequest request, SimTime now) {
    ++total_requests_;
    PlaceRequest(std::move(request), now);
  });
  pump_ = &pump;
  if (config_.autoscale.enabled && !pump.done()) {
    EventRecord record;
    record.type = EventType::kAutoscaleCheck;
    record.handler = autoscale_handler_;
    events_.Push(config_.autoscale.check_interval_us, record);
  }
  events_.RunToCompletion();
  pump_ = nullptr;
  FLO_CHECK(pump.done()) << "arrival pump stalled mid-trace";
  FLO_CHECK_EQ(completed_requests_, total_requests_);

  FleetReport report;
  report.distinct_keys = run_keys_.size();
  report.events = events_.dispatched() - events_before;
  for (const auto& replica : replicas_) {
    ReplicaReport entry;
    entry.id = replica->id();
    entry.spawned_us = replica->spawned_us();
    entry.retired_us = replica->retired_us();
    entry.plans_resident = replica->store()->size();
    if (replica->session() != nullptr) {
      entry.serve = replica->session()->report();
      entry.tuner_searches = replica->SearchesThisRun();
      report.total_searches += entry.tuner_searches;
      report.makespan_us = std::max(report.makespan_us, entry.serve.makespan_us);
      for (const RequestRecord& record : entry.serve.stats.records()) {
        report.stats.Record(record);
      }
    }
    report.replicas.push_back(std::move(entry));
  }
  report.peak_replicas = peak_replicas_;
  report.spawns = spawns_;
  report.drains = drains_;
  report.shipping = shipper_.stats();
  if (observing) {
    obs->FinishRun(report.makespan_us);
  }
  return report;
}

bool ServingCluster::SavePlans(const std::string& path) const {
  return shipper_.SaveSnapshot(path);
}

size_t ServingCluster::ImportPlans(const std::string& text) {
  return shipper_.ImportSnapshot(text);
}

size_t ServingCluster::LoadPlans(const std::string& path) {
  // ImportPlans validates the text (a malformed snapshot applies
  // nothing), so the file is read raw and parsed exactly once.
  const std::optional<std::string> text = ReadFileToString(path);
  return text.has_value() ? ImportPlans(*text) : 0;
}

}  // namespace flo
