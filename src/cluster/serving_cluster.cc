#include "src/cluster/serving_cluster.h"

#include <algorithm>
#include <utility>

#include "src/obs/obs_plane.h"
#include "src/serve/request_cursor.h"
#include "src/serve/tenant_registry.h"
#include "src/util/check.h"
#include "src/util/file.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace flo {

namespace {

// Fleet-scope instant (autoscaler decisions, replica lifecycle): one
// branch when the plane is absent or disabled.
void EmitFleetInstant(ObsPlane* obs, SpanKind kind, SimTime now, uint64_t id, uint64_t arg) {
  if (obs == nullptr || !obs->enabled()) {
    return;
  }
  SpanRecord span;
  span.kind = kind;
  span.start_us = now;
  span.end_us = now;
  span.id = id;
  span.arg = arg;
  span.replica = -1;
  obs->Emit(span);
}

// Requeue backoff: base * 2^(attempt-1) (capped at 10 doublings, no
// std::pow — libm rounding is not a determinism bet) plus seeded jitter
// in [0, jitter) that is a pure function of (seed, request id, attempt).
double RequeueBackoffUs(const FaultConfig& faults, int64_t request_id, int attempt) {
  double backoff = faults.retry_backoff_base_us;
  const int doublings = std::min(attempt, 10) - 1;
  for (int i = 0; i < doublings; ++i) {
    backoff *= 2.0;
  }
  const double jitter =
      Rng(StableHash().Mix(faults.seed).Mix(request_id).Mix(attempt).value()).NextDouble();
  return backoff + faults.retry_backoff_jitter_us * jitter;
}

}  // namespace

ServingCluster::ServingCluster(ClusterSpec hardware, ClusterConfig config,
                               TunerConfig tuner_config, EngineOptions options)
    : hardware_(hardware),
      config_(config),
      tuner_config_(tuner_config),
      options_(options),
      keyer_tuner_(hardware, tuner_config),
      keyer_(&keyer_tuner_, &keyer_store_),
      router_(config.policy),
      events_(config.serve.legacy_event_heap) {
  FLO_CHECK_GE(config_.replicas, 1);
  FLO_CHECK_GT(config_.default_cost_estimate_us, 0.0);
  if (config_.autoscale.enabled) {
    FLO_CHECK_LE(config_.autoscale.min_replicas, config_.replicas);
    FLO_CHECK_LE(config_.replicas, config_.autoscale.max_replicas);
  }
  autoscale_handler_ = events_.RegisterHandler(
      [this](const EventRecord&, SimTime now) { AutoscaleCheck(now); });
  fault_handler_ = events_.RegisterHandler(
      [this](const EventRecord& record, SimTime now) { OnFaultEvent(record, now); });
  sched_handler_ = events_.RegisterHandler(
      [this](const EventRecord&, SimTime now) { SchedCheck(now); });
  // The predictive autoscale tier reads arrival-rate estimates off the
  // scheduler's decayed arrival accounts, so it needs the FleetScheduler
  // constructed even when the sched plane itself is off.
  if (config_.sched.enabled ||
      (config_.autoscale.enabled && config_.autoscale.predictive)) {
    scheduler_ = std::make_unique<FleetScheduler>(config_.sched);
  }
  if (config_.sched.enabled) {
    // Every session spawned from config_.serve consults the one fleet
    // scheduler: per-tenant shares are fleet-wide state, not per-replica.
    // (Predictive-only mode leaves this null: dispatch stays FIFO.)
    config_.serve.sched = scheduler_.get();
  }
}

Replica* ServingCluster::SpawnReplica(SimTime now) {
  const int id = next_replica_id_++;
  replicas_.push_back(std::make_unique<Replica>(id, hardware_, tuner_config_, options_,
                                                config_.store_capacity, now));
  Replica* replica = replicas_.back().get();
  // Subscribing bootstraps the fresh store (and tuner) with every
  // published plan: a replica spawned mid-burst starts warm — both tiers
  // — instead of re-tuning the mix.
  shipper_.Subscribe(id, replica->store(), &replica->engine().tuner());
  replica->StartSession(config_.serve, &events_, HooksFor(replica));
  replica->session()->SetFaultPolicy(
      ServeSession::FaultPolicy{config_.faults.tuner_retry_budget,
                                config_.faults.retry_backoff_base_us,
                                config_.faults.retry_backoff_jitter_us, config_.faults.seed});
  ++spawns_;
  EmitFleetInstant(config_.serve.obs, SpanKind::kReplicaSpawn, now,
                   static_cast<uint64_t>(id), 0);
  int accepting = 0;
  for (const auto& r : replicas_) {
    accepting += r->accepting() ? 1 : 0;
  }
  peak_replicas_ = std::max(peak_replicas_, accepting);
  return replica;
}

Replica* ServingCluster::FindReplica(int id) {
  for (const auto& replica : replicas_) {
    if (replica->id() == id) {
      return replica.get();
    }
  }
  return nullptr;
}

ServeSession::Hooks ServingCluster::HooksFor(Replica* replica) {
  ServeSession::Hooks hooks;
  if (config_.ship_plans) {
    hooks.acquire_tuning = [this, replica](uint64_t key) {
      return shipper_.BeginTuning(key, replica->id());
    };
    hooks.tuning_finished = [this, replica](uint64_t key, const ScenarioSpec& spec,
                                            SimTime now) {
      // Publish the plan together with the tuner-tier artifact behind its
      // search (the spec's TuningRequest): if a bounded store later
      // evicts the shipped ExecutionPlan, any replica rebuilds it from
      // its own tuner cache instead of re-paying the search — the fleet
      // really does pay each search once, at any store capacity.
      const auto request = keyer_.TuningRequest(spec);
      StoredPlan artifact;
      const StoredPlan* artifact_ptr = nullptr;
      // Only balanced searches have a tuner-tier StoredPlan form;
      // imbalanced multiset plans ship through the ExecutionPlan record
      // alone (their search result is not a single-shape partition).
      if (request.has_value() && request->shapes.size() == 1) {
        Tuner& owner = replica->engine().tuner();
        if (owner.Contains(request->shapes[0], request->primitive)) {
          const TunedPlan& tuned = owner.Tune(request->shapes[0], request->primitive);
          artifact = StoredPlan{request->shapes[0], request->primitive, tuned.partition,
                                tuned.predicted_us, tuned.predicted_non_overlap_us};
          artifact_ptr = &artifact;
        }
      }
      shipper_.Publish(key, *replica->store(), artifact_ptr);
      EmitFleetInstant(config_.serve.obs, SpanKind::kPlanShip, now, key,
                       static_cast<uint64_t>(replica->id()));
      // The shipped plan may unblock peers parked on this key.
      DispatchAll(now);
    };
  }
  hooks.tuning_aborted = [this, replica](uint64_t key, SimTime now) {
    // The aborted search will not publish: release the fleet-wide
    // single-flight ownership so a peer (or this replica's retry) can
    // re-acquire the key, then wake anyone parked on it.
    if (config_.ship_plans) {
      shipper_.AbandonTuning(key, replica->id());
    }
    DispatchAll(now);
  };
  if (config_.sched.enabled) {
    hooks.request_shed = [this, replica](const ServeRequest& request, SimTime now) {
      // An SLO-shed retry leaves the run through here instead of
      // request_finished: it counts toward run completion (the admission
      // invariant still balances) but never reaches an executor.
      (void)request;
      ++completed_requests_;
      ++fault_report_.requests_shed;
      MaybeRetire(replica, now);
    };
  }
  hooks.request_finished = [this, replica](const RequestRecord& record, SimTime now) {
    ++completed_requests_;
    cost_sum_us_ += record.ExecUs() / static_cast<double>(std::max(1, record.batch_size));
    ++cost_samples_;
    if (config_.autoscale.enabled) {
      // The SLO-pressure window; AutoscaleCheck drains it every interval.
      recent_latencies_.push_back(record.LatencyUs());
    }
    MaybeRetire(replica, now);
  };
  return hooks;
}

double ServingCluster::CostEstimateUs() const {
  return cost_samples_ > 0 ? cost_sum_us_ / static_cast<double>(cost_samples_)
                           : config_.default_cost_estimate_us;
}

const std::vector<ReplicaSnapshot>& ServingCluster::Snapshots(uint64_t key, SimTime now) {
  std::vector<ReplicaSnapshot>& snapshots = snapshot_scratch_;
  snapshots.clear();
  snapshots.reserve(replicas_.size());
  const double cost_estimate = CostEstimateUs();
  for (const auto& replica : replicas_) {
    if (replica->retired() || replica->session() == nullptr) {
      continue;
    }
    const ServeSession& session = *replica->session();
    ReplicaSnapshot snapshot;
    snapshot.id = replica->id();
    snapshot.accepting = replica->accepting();
    snapshot.queued_requests = session.pending_requests();
    snapshot.busy_us = std::max(0.0, session.busy_until() - now);
    snapshot.pending_cost_us =
        static_cast<double>(snapshot.queued_requests) * cost_estimate;
    snapshot.plan_tuning = session.IsTuningKey(key);
    snapshot.plan_warm = replica->store()->Contains(key) && !snapshot.plan_tuning;
    snapshot.plan_pending = session.PendingKeyCount(key) > 0;
    snapshots.push_back(snapshot);
  }
  return snapshots;
}

void ServingCluster::PlaceRequest(ServeRequest request, SimTime now) {
  const uint64_t key = keyer_.CanonicalKey(request.spec);
  run_keys_.insert(key);
  if (scheduler_ != nullptr) {
    // One arrival charge per admitted request (requeues and preemptive
    // re-placements bypass this path on purpose — a placement revision
    // is not new demand). Interning here matches RequestQueue::Admit's
    // lazy interning order, arrivals being the first touch of a tenant.
    if (request.tenant_id == 0) {
      request.tenant_id = InternTenant(request.tenant);
    }
    scheduler_->ChargeArrival(request.tenant_id, now);
  }
  const int id = router_.Place(Snapshots(key, now));
  if (id == -1) {
    // Every replica is down or draining. Under fault injection that is a
    // transient (health restores are already scheduled): park the arrival
    // in the requeue pool and try again after the base backoff. Without
    // faults it is a configuration error, as before.
    FLO_CHECK(faults_active_) << "no accepting replica (autoscaler drained below min?)";
    ++fault_report_.placement_stalls;
    PushRequeue(std::move(request), now + config_.faults.retry_backoff_base_us);
    return;
  }
  Replica* replica = FindReplica(id);
  FLO_CHECK(replica != nullptr);
  replica->session()->Admit(std::move(request), now);
}

void ServingCluster::DispatchAll(SimTime now) {
  for (const auto& replica : replicas_) {
    if (!replica->retired() && replica->session() != nullptr) {
      replica->session()->Dispatch(now);
    }
  }
}

void ServingCluster::MaybeRetire(Replica* replica, SimTime now) {
  if (replica->draining() && !replica->retired() && replica->session()->idle()) {
    replica->Retire(now);
    shipper_.Unsubscribe(replica->id());
    ++drains_;
    EmitFleetInstant(config_.serve.obs, SpanKind::kReplicaRetire, now,
                     static_cast<uint64_t>(replica->id()), 0);
  }
}

void ServingCluster::AutoscaleCheck(SimTime now) {
  Autoscaler::Observation observation;
  size_t pending = 0;
  Replica* youngest_accepting = nullptr;
  for (const auto& replica : replicas_) {
    if (replica->retired() || replica->session() == nullptr) {
      continue;
    }
    if (replica->accepting()) {
      // Numerator and denominator cover the same set (the Observation
      // invariant): backlogs on crashed/hung/draining replicas re-enter
      // the signal when the requeue paths re-place them.
      pending += replica->session()->pending_requests();
      ++observation.accepting_replicas;
      youngest_accepting = replica.get();  // id order: last accepting wins
    }
    // A draining replica that went idle without a completion event (its
    // backlog was empty at drain time) retires at the next checkpoint.
    MaybeRetire(replica.get(), now);
  }
  observation.pending_requests = pending;
  if (!recent_latencies_.empty()) {
    observation.recent_p99_us = SummarizePercentiles(recent_latencies_).p99;
    last_window_p99_us_ = observation.recent_p99_us;
    recent_latencies_.clear();
  } else if (pending > 0) {
    // Nothing finished this interval but work is still in flight (a
    // straggler, a long cold tune): carry the previous window's p99
    // forward so the SLO signal cannot read "calm" exactly when the
    // fleet is stalled.
    observation.recent_p99_us = last_window_p99_us_;
  }
  ObsPlane* obs = config_.serve.obs;
  const bool observing = obs != nullptr && obs->enabled();
  if (autoscaler_->config().predictive && scheduler_ != nullptr) {
    const RateEstimate estimate =
        scheduler_->SampleRate(now, autoscaler_->config().check_interval_us);
    observation.rate_estimate = estimate.arrivals_per_interval;
    observation.rate_trend = estimate.trend;
    observation.capacity_per_replica =
        autoscaler_->config().check_interval_us / CostEstimateUs();
    if (observing) {
      obs->metrics().Set(obs->ids().autoscale_rate_estimate,
                         observation.rate_estimate);
    }
  }
  const Autoscaler::Decision decision = autoscaler_->Evaluate(observation);
  EmitFleetInstant(config_.serve.obs, SpanKind::kAutoscale, now, observation.pending_requests,
                   decision == Autoscaler::Decision::kSpawn      ? 1
                   : decision == Autoscaler::Decision::kDrain    ? 2
                   : decision == Autoscaler::Decision::kPrespawn ? 3
                                                                 : 0);
  switch (decision) {
    case Autoscaler::Decision::kPrespawn:
      ++prespawns_;
      EmitFleetInstant(config_.serve.obs, SpanKind::kPrespawn, now,
                       static_cast<uint64_t>(next_replica_id_),
                       static_cast<uint64_t>(std::max(
                           0.0, observation.rate_estimate + observation.rate_trend + 0.5)));
      SpawnReplica(now);
      break;
    case Autoscaler::Decision::kSpawn:
      SpawnReplica(now);
      break;
    case Autoscaler::Decision::kDrain:
      if (youngest_accepting != nullptr) {
        EmitFleetInstant(config_.serve.obs, SpanKind::kReplicaDrain, now,
                         static_cast<uint64_t>(youngest_accepting->id()), 0);
        youngest_accepting->BeginDrain();
        MaybeRetire(youngest_accepting, now);
      }
      break;
    case Autoscaler::Decision::kHold:
      break;
  }
  // Continue while served work remains — completions outstanding, or
  // arrivals the pump has not pulled from the cursor yet.
  if (completed_requests_ < pump_->admitted() || !pump_->done()) {
    EventRecord record;
    record.type = EventType::kAutoscaleCheck;
    record.handler = autoscale_handler_;
    events_.Push(now + autoscaler_->config().check_interval_us, record);
  }
}

FleetReport ServingCluster::Run(std::vector<ServeRequest> requests) {
  // VectorCursor stable-sorts by arrival, reproducing the historical
  // materialize-then-sort admission order exactly.
  VectorCursor cursor(std::move(requests));
  return Run(&cursor);
}

FleetReport ServingCluster::Run(RequestCursor* cursor) {
  FLO_CHECK(cursor != nullptr);
  FLO_CHECK(events_.empty());
  // Per-run state. Engines/stores persist; sessions and reports reset.
  // Only an enabled autoscaler is constructed (and config-validated): a
  // zeroed-out disabled config must not abort the run.
  autoscaler_ =
      config_.autoscale.enabled ? std::make_unique<Autoscaler>(config_.autoscale) : nullptr;
  total_requests_ = 0;
  completed_requests_ = 0;
  cost_sum_us_ = 0.0;
  cost_samples_ = 0;
  recent_latencies_.clear();
  last_window_p99_us_ = 0.0;
  run_keys_.clear();
  spawns_ = 0;
  drains_ = 0;
  prespawns_ = 0;
  peak_replicas_ = 0;
  // Fault plane: a scripted override wins; otherwise an enabled config
  // expands into a seeded schedule against the configured replica count.
  if (!schedule_override_.empty()) {
    active_schedule_ = schedule_override_;
  } else if (config_.faults.enabled()) {
    FLO_CHECK_GT(config_.faults.horizon_us, 0.0)
        << "FaultConfig::horizon_us must be set to generate a schedule";
    active_schedule_ = FaultSchedule::FromConfig(config_.faults, config_.replicas);
  } else {
    active_schedule_ = FaultSchedule();
  }
  faults_active_ = !active_schedule_.empty();
  fault_report_ = FaultReport{};
  fault_report_.enabled = faults_active_;
  requeue_pool_.clear();
  requeue_free_.clear();
  ship_drops_baseline_ = shipper_.stats().ship_drops;
  sched_preempt_scans_ = 0;
  sched_preempted_ = 0;
  if (scheduler_ != nullptr) {
    scheduler_->ResetRunState();
  }
  ObsPlane* obs = config_.serve.obs;
  const bool observing = obs != nullptr && obs->enabled();
  if (observing) {
    obs->BeginRun();
    // Fleet-aggregated mirror: sum tuner/store totals over every replica
    // ever spawned, so the shared gauges describe the fleet, not the
    // last-polled engine.
    obs->AddPoller([this, obs](MetricsRegistry& registry) {
      size_t searches = 0;
      PlanStoreStats stores;
      size_t resident = 0;
      int accepting = 0;
      for (const auto& replica : replicas_) {
        searches += replica->engine().tuner().search_count();
        const PlanStoreStats stats = replica->store()->stats();
        stores.hits += stats.hits;
        stores.misses += stats.misses;
        stores.evictions += stats.evictions;
        resident += replica->store()->size();
        accepting += (!replica->retired() && replica->accepting()) ? 1 : 0;
      }
      registry.Set(obs->ids().tuner_searches_total, static_cast<double>(searches));
      registry.Set(obs->ids().store_hits, static_cast<double>(stores.hits));
      registry.Set(obs->ids().store_misses, static_cast<double>(stores.misses));
      registry.Set(obs->ids().store_evictions, static_cast<double>(stores.evictions));
      registry.Set(obs->ids().plans_resident, static_cast<double>(resident));
      registry.Set(obs->ids().replicas_accepting, static_cast<double>(accepting));
    });
    obs->AttachLoop(&events_);
  } else {
    // The shared loop persists across runs; drop any previous run's tap.
    events_.SetTap(nullptr, nullptr);
  }
  const uint64_t events_before = events_.dispatched();
  if (replicas_.empty()) {
    for (int i = 0; i < config_.replicas; ++i) {
      SpawnReplica(0.0);
    }
    spawns_ = 0;  // the initial fleet is not an autoscaling event
  } else {
    int accepting = 0;
    for (const auto& replica : replicas_) {
      if (replica->retired()) {
        // Drop the prior run's session, or its report would be merged
        // into this run's (the report covers this run only).
        replica->ClearSession();
      } else {
        replica->StartSession(config_.serve, &events_, HooksFor(replica.get()));
        replica->session()->SetFaultPolicy(ServeSession::FaultPolicy{
            config_.faults.tuner_retry_budget, config_.faults.retry_backoff_base_us,
            config_.faults.retry_backoff_jitter_us, config_.faults.seed});
        accepting += replica->accepting() ? 1 : 0;
      }
    }
    FLO_CHECK_GT(accepting, 0) << "every replica is retired";
    peak_replicas_ = accepting;
  }

  // Streamed admission: one arrival in flight; each firing places the
  // request and pulls the next from the cursor.
  ArrivalPump pump(cursor, &events_, [this](ServeRequest request, SimTime now) {
    ++total_requests_;
    PlaceRequest(std::move(request), now);
  });
  pump_ = &pump;
  // Every injection is scheduled before dispatch begins (pushes are
  // order-free until the first RunOne), indexed into active_schedule_.
  for (size_t i = 0; i < active_schedule_.size(); ++i) {
    EventRecord record;
    record.type = EventType::kFaultInject;
    record.handler = fault_handler_;
    record.slot = static_cast<uint32_t>(i);
    record.replica = active_schedule_.events()[i].replica;
    events_.Push(active_schedule_.events()[i].time_us, record);
  }
  if (config_.autoscale.enabled && !pump.done()) {
    EventRecord record;
    record.type = EventType::kAutoscaleCheck;
    record.handler = autoscale_handler_;
    events_.Push(config_.autoscale.check_interval_us, record);
  }
  if (config_.sched.enabled && config_.sched.preempt_requeue && !pump.done()) {
    EventRecord record;
    record.type = EventType::kSchedCheck;
    record.handler = sched_handler_;
    events_.Push(config_.sched.preempt_interval_us, record);
  }
  events_.RunToCompletion();
  pump_ = nullptr;
  FLO_CHECK(pump.done()) << "arrival pump stalled mid-trace";
  FLO_CHECK_EQ(completed_requests_, total_requests_);

  FleetReport report;
  report.distinct_keys = run_keys_.size();
  report.events = events_.dispatched() - events_before;
  for (const auto& replica : replicas_) {
    ReplicaReport entry;
    entry.id = replica->id();
    entry.spawned_us = replica->spawned_us();
    entry.retired_us = replica->retired_us();
    entry.plans_resident = replica->store()->size();
    if (replica->session() != nullptr) {
      entry.serve = replica->session()->report();
      entry.tuner_searches = replica->SearchesThisRun();
      report.total_searches += entry.tuner_searches;
      report.makespan_us = std::max(report.makespan_us, entry.serve.makespan_us);
      for (const RequestRecord& record : entry.serve.stats.records()) {
        report.stats.Record(record);
      }
    }
    report.replicas.push_back(std::move(entry));
  }
  report.peak_replicas = peak_replicas_;
  report.spawns = spawns_;
  report.drains = drains_;
  report.prespawns = prespawns_;
  report.shipping = shipper_.stats();
  for (const ReplicaReport& entry : report.replicas) {
    fault_report_.tuner_retries += entry.serve.tuner_retries;
    fault_report_.requests_degraded += entry.serve.degraded_requests;
  }
  fault_report_.ship_drops = shipper_.stats().ship_drops - ship_drops_baseline_;
  report.fault = fault_report_;
  report.sched.enabled = config_.sched.enabled;
  report.sched.preempt_scans = sched_preempt_scans_;
  report.sched.preempted_requests = sched_preempted_;
  for (const ReplicaReport& entry : report.replicas) {
    report.sched.backfills += entry.serve.backfills;
    report.sched.reserves += entry.serve.sched_reserves;
    report.sched.reserve_idle_us += entry.serve.reserve_idle_us;
    report.sched.head_delays += entry.serve.head_delays;
    report.sched.shed_requests += entry.serve.shed_requests;
  }
  if (observing) {
    obs->FinishRun(report.makespan_us);
  }
  return report;
}

void ServingCluster::SetFaultSchedule(FaultSchedule schedule) {
  schedule_override_ = std::move(schedule);
}

void ServingCluster::OnFaultEvent(const EventRecord& record, SimTime now) {
  switch (record.type) {
    case EventType::kFaultInject:
      ApplyFault(active_schedule_.events()[record.slot], now);
      break;
    case EventType::kRequeue:
      OnRequeue(record, now);
      break;
    case EventType::kHealthRestore:
      OnHealthRestore(record, now);
      break;
    case EventType::kHangDetect:
      OnHangDetect(record, now);
      break;
    default:
      FLO_CHECK(false) << "unexpected fault-plane event type";
  }
}

void ServingCluster::ApplyFault(const FaultEvent& event, SimTime now) {
  ObsPlane* obs = config_.serve.obs;
  auto push_restore = [&](FaultKind kind, int replica_id, double delay) {
    EventRecord restore;
    restore.type = EventType::kHealthRestore;
    restore.key = static_cast<uint64_t>(kind);
    restore.handler = fault_handler_;
    restore.replica = replica_id;
    events_.Push(now + delay, restore);
  };
  if (event.kind == FaultKind::kShipLoss) {
    ++fault_report_.injected_ship_loss_windows;
    EmitFleetInstant(obs, SpanKind::kFaultInject, now, static_cast<uint64_t>(event.replica),
                     static_cast<uint64_t>(event.kind));
    // Per-(key, peer) drop decisions are a pure hash of (seed, window
    // index, key, peer): deterministic, and independent of delivery
    // order. Overlapping windows share the filter slot — the last one
    // to open wins, the first to close clears.
    const uint64_t salt =
        StableHash()
            .Mix(config_.faults.seed)
            .Mix(static_cast<uint64_t>(fault_report_.injected_ship_loss_windows))
            .value();
    const double fraction = event.magnitude;
    shipper_.SetDropFilter([salt, fraction](uint64_t key, int replica_id) {
      return Rng(StableHash().Mix(salt).Mix(key).Mix(replica_id).value()).NextDouble() <
             fraction;
    });
    push_restore(FaultKind::kShipLoss, -1, event.duration_us);
    return;
  }
  Replica* replica = FindReplica(event.replica);
  if (replica == nullptr || replica->retired() || replica->session() == nullptr) {
    return;  // deterministic skip: the target is gone
  }
  ServeSession* session = replica->session();
  const uint64_t id = static_cast<uint64_t>(replica->id());
  switch (event.kind) {
    case FaultKind::kCrash: {
      if (replica->health() != Replica::Health::kHealthy) {
        return;  // already failing: one fault at a time per replica
      }
      ++fault_report_.injected_crashes;
      EmitFleetInstant(obs, SpanKind::kFaultCrash, now, id,
                       static_cast<uint64_t>(event.duration_us));
      replica->SetHealth(Replica::Health::kCrashed);
      session->SetStalled(true);
      // Teardown: evacuate the backlog, lose the store, release every
      // in-flight search the dead replica owned, and leave the shipper's
      // subscriber list (the restart re-subscribes, which re-warms).
      RequeueFrom(replica, now);
      replica->store()->Clear();
      shipper_.ReleaseReplica(replica->id());
      shipper_.Unsubscribe(replica->id());
      DispatchAll(now);  // peers may acquire the released keys now
      push_restore(FaultKind::kCrash, replica->id(), event.duration_us);
      break;
    }
    case FaultKind::kHang: {
      if (replica->health() != Replica::Health::kHealthy) {
        return;
      }
      ++fault_report_.injected_hangs;
      EmitFleetInstant(obs, SpanKind::kFaultInject, now, id,
                       static_cast<uint64_t>(event.kind));
      replica->SetHealth(Replica::Health::kHung);
      session->SetStalled(true);
      // The detection deadline comes from the recovery policy, not the
      // event: a hang shorter than the deadline resolves invisibly.
      EventRecord detect;
      detect.type = EventType::kHangDetect;
      detect.handler = fault_handler_;
      detect.replica = replica->id();
      events_.Push(now + config_.faults.hang_detect_us, detect);
      push_restore(FaultKind::kHang, replica->id(), event.duration_us);
      break;
    }
    case FaultKind::kSlowdown: {
      if (replica->health() != Replica::Health::kHealthy) {
        return;
      }
      ++fault_report_.injected_slowdowns;
      EmitFleetInstant(obs, SpanKind::kFaultInject, now, id,
                       static_cast<uint64_t>(event.kind));
      // The straggler keeps executing (slowly) but is unroutable until
      // the window closes.
      replica->SetHealth(Replica::Health::kStraggling);
      session->SetCostMultiplier(event.magnitude);
      push_restore(FaultKind::kSlowdown, replica->id(), event.duration_us);
      break;
    }
    case FaultKind::kTunerFail: {
      ++fault_report_.injected_tuner_failures;
      EmitFleetInstant(obs, SpanKind::kFaultInject, now, id,
                       static_cast<uint64_t>(event.kind));
      session->FailInFlightTuning();
      break;
    }
    case FaultKind::kShipLoss:
    case FaultKind::kCount:
      FLO_CHECK(false) << "unreachable fault kind";
  }
}

void ServingCluster::OnHealthRestore(const EventRecord& record, SimTime now) {
  const FaultKind kind = static_cast<FaultKind>(record.key);
  if (kind == FaultKind::kShipLoss) {
    shipper_.SetDropFilter(nullptr);
    return;
  }
  Replica* replica = FindReplica(record.replica);
  if (replica == nullptr || replica->retired() || replica->session() == nullptr) {
    return;  // crashed + draining replicas may retire before the restore
  }
  switch (kind) {
    case FaultKind::kCrash:
      if (replica->health() != Replica::Health::kCrashed) {
        return;
      }
      // Restart: re-subscribe re-warms the empty store (and tuner tier)
      // from everything the fleet has published — the paper's "prepare
      // once, serve many" contract doubling as crash recovery.
      fault_report_.plans_rewarmed += shipper_.Subscribe(
          replica->id(), replica->store(), &replica->engine().tuner());
      ++fault_report_.replica_restarts;
      replica->SetHealth(Replica::Health::kHealthy);
      replica->session()->SetStalled(false);
      replica->session()->Dispatch(now);
      break;
    case FaultKind::kHang:
      if (replica->health() != Replica::Health::kHung) {
        return;
      }
      replica->SetHealth(Replica::Health::kHealthy);
      replica->session()->SetStalled(false);
      replica->session()->Dispatch(now);
      break;
    case FaultKind::kSlowdown:
      if (replica->health() != Replica::Health::kStraggling) {
        return;
      }
      replica->SetHealth(Replica::Health::kHealthy);
      replica->session()->SetCostMultiplier(1.0);
      replica->session()->Dispatch(now);
      break;
    case FaultKind::kTunerFail:
    case FaultKind::kShipLoss:
    case FaultKind::kCount:
      FLO_CHECK(false) << "unreachable restore kind";
  }
}

void ServingCluster::OnHangDetect(const EventRecord& record, SimTime now) {
  Replica* replica = FindReplica(record.replica);
  if (replica == nullptr || replica->retired() || replica->session() == nullptr ||
      replica->health() != Replica::Health::kHung) {
    return;  // the hang resolved before the deadline
  }
  // Deadline missed: pull the backlog (and cancel its in-flight
  // searches, which will never publish) and reschedule it elsewhere.
  RequeueFrom(replica, now);
  shipper_.ReleaseReplica(replica->id());
  DispatchAll(now);
}

void ServingCluster::RequeueFrom(Replica* replica, SimTime now) {
  requeue_scratch_.clear();
  const size_t evacuated = replica->session()->ExtractPending(&requeue_scratch_);
  if (evacuated == 0) {
    return;
  }
  fault_report_.requests_requeued += evacuated;
  EmitFleetInstant(config_.serve.obs, SpanKind::kFaultRequeue, now,
                   static_cast<uint64_t>(replica->id()), evacuated);
  for (ServeRequest& request : requeue_scratch_) {
    ++request.retries;
    if (request.retries > config_.faults.retry_budget) {
      // The budget bounds backoff growth and flags the report; it never
      // sheds the request — every admitted request completes.
      if (fault_report_.retry_budget_exhausted == 0) {
        FLO_LOG(kWarning) << "request " << request.id << " exceeded the retry budget ("
                          << config_.faults.retry_budget << "); requeueing anyway";
      }
      ++fault_report_.retry_budget_exhausted;
    }
    const double backoff = RequeueBackoffUs(config_.faults, request.id, request.retries);
    PushRequeue(std::move(request), now + backoff);
  }
  requeue_scratch_.clear();
}

void ServingCluster::PushRequeue(ServeRequest request, SimTime at) {
  uint32_t slot;
  if (!requeue_free_.empty()) {
    slot = requeue_free_.back();
    requeue_free_.pop_back();
    requeue_pool_[slot] = std::move(request);
  } else {
    slot = static_cast<uint32_t>(requeue_pool_.size());
    requeue_pool_.push_back(std::move(request));
  }
  EventRecord record;
  record.type = EventType::kRequeue;
  record.key = static_cast<uint64_t>(requeue_pool_[slot].id);
  record.handler = fault_handler_;
  record.slot = slot;
  events_.Push(at, record);
}

void ServingCluster::OnRequeue(const EventRecord& record, SimTime now) {
  ServeRequest request = std::move(requeue_pool_[record.slot]);
  requeue_free_.push_back(record.slot);
  const uint64_t key = keyer_.CanonicalKey(request.spec);
  const int id = router_.Place(Snapshots(key, now));
  if (id == -1) {
    // Nothing routable right now (every replica down or draining).
    // Health restores are already on the clock, so back off at the base
    // interval without charging another retry.
    ++fault_report_.placement_stalls;
    PushRequeue(std::move(request), now + config_.faults.retry_backoff_base_us);
    return;
  }
  ++fault_report_.requests_retried;
  EmitFleetInstant(config_.serve.obs, SpanKind::kFaultRetry, now,
                   static_cast<uint64_t>(request.id), static_cast<uint64_t>(request.retries));
  Replica* replica = FindReplica(id);
  FLO_CHECK(replica != nullptr);
  replica->session()->Admit(std::move(request), now);
}

void ServingCluster::SchedCheck(SimTime now) {
  ++sched_preempt_scans_;
  const SchedConfig& sched = config_.sched;
  // Mean queue depth over accepting healthy replicas, for the overload
  // test. Draining/straggling replicas are preemption victims regardless
  // of depth, so they stay out of the baseline.
  size_t accepting = 0;
  size_t accepting_queued = 0;
  for (const auto& replica : replicas_) {
    if (replica->retired() || replica->session() == nullptr || !replica->accepting() ||
        replica->health() != Replica::Health::kHealthy) {
      continue;
    }
    ++accepting;
    accepting_queued += replica->session()->pending_requests();
  }
  for (const auto& replica : replicas_) {
    if (replica->retired() || replica->session() == nullptr) {
      continue;
    }
    // Crashed and hung replicas belong to the fault plane's requeue path;
    // double-evacuating them would double-count recovery work.
    const Replica::Health health = replica->health();
    if (health == Replica::Health::kCrashed || health == Replica::Health::kHung) {
      continue;
    }
    const size_t queued = replica->session()->pending_requests();
    bool victim = replica->draining() || health == Replica::Health::kStraggling;
    if (!victim && accepting >= 2 && replica->accepting() &&
        queued >= static_cast<size_t>(sched.overload_min_queue)) {
      // Overloaded relative to its peers: strictly above overload_factor
      // times the mean depth of the *other* accepting replicas.
      const double peer_mean = static_cast<double>(accepting_queued - queued) /
                               static_cast<double>(accepting - 1);
      victim = static_cast<double>(queued) > sched.overload_factor * peer_mean;
    }
    if (!victim) {
      continue;
    }
    preempt_scratch_.clear();
    const size_t pulled = replica->session()->ExtractQueued(&preempt_scratch_);
    if (pulled == 0) {
      MaybeRetire(replica.get(), now);
      continue;
    }
    sched_preempted_ += pulled;
    EmitFleetInstant(config_.serve.obs, SpanKind::kSchedPreempt, now,
                     static_cast<uint64_t>(replica->id()), pulled);
    for (ServeRequest& request : preempt_scratch_) {
      const uint64_t key = keyer_.CanonicalKey(request.spec);
      const int id = router_.Place(Snapshots(key, now), replica->id());
      Replica* target = id != -1 ? FindReplica(id) : nullptr;
      if (target == nullptr) {
        // Nowhere better: hand the request straight back. Not a retry —
        // preemption is a placement revision, not a failure.
        target = replica.get();
      }
      target->session()->Admit(std::move(request), now);
    }
    preempt_scratch_.clear();
    MaybeRetire(replica.get(), now);
  }
  // Re-arm while served work remains, like the autoscale checkpoint.
  if (completed_requests_ < pump_->admitted() || !pump_->done()) {
    EventRecord record;
    record.type = EventType::kSchedCheck;
    record.handler = sched_handler_;
    events_.Push(now + sched.preempt_interval_us, record);
  }
}

bool ServingCluster::SavePlans(const std::string& path) const {
  return shipper_.SaveSnapshot(path);
}

size_t ServingCluster::ImportPlans(const std::string& text) {
  return shipper_.ImportSnapshot(text);
}

size_t ServingCluster::LoadPlans(const std::string& path) {
  // ImportPlans validates the text (a malformed snapshot applies
  // nothing), so the file is read raw and parsed exactly once.
  const std::optional<std::string> text = ReadFileToString(path);
  if (!text.has_value()) {
    FLO_LOG(kError) << "plan snapshot unreadable: " << path;
    return 0;
  }
  const size_t imported = ImportPlans(*text);
  if (imported == 0) {
    FLO_LOG(kError) << "plan snapshot rejected (malformed or empty): " << path
                    << " (" << text->size() << " bytes); no store was touched";
  }
  return imported;
}

}  // namespace flo
