// The multi-replica serving cluster: N replica engines behind a
// FleetRouter, on one shared simulated clock.
//
// Layering (the fleet analogue of ScenarioSpec -> Planner -> Executor):
//   trace -> RequestCursor/ArrivalPump (streamed admission) -> FleetRouter
//   (placement) -> Replica ServeSessions (per-tenant queues, executor +
//   tuning lanes) -> shared EventLoop (typed records, calendar queue)
// with two fleet-level services threaded through the session hooks:
//   - PlanShipper: fleet-wide single-flight of tuner searches and
//     publication of freshly tuned plans to every replica's PlanStore, so
//     the fleet pays each distinct scenario's search exactly once (and a
//     saved snapshot warm-starts the next process with zero searches);
//   - Autoscaler: spawns/drains replicas from queue depth and SLO
//     pressure at fixed sim-clock checkpoints, deterministically.
//
// Everything is deterministic: the same trace and config produce
// bit-identical reports, plans are bit-identical at any replica count and
// any host thread count, and replica counts only change the timeline.
#ifndef SRC_CLUSTER_SERVING_CLUSTER_H_
#define SRC_CLUSTER_SERVING_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/autoscaler.h"
#include "src/cluster/fleet_router.h"
#include "src/cluster/plan_shipping.h"
#include "src/cluster/replica.h"
#include "src/core/overlap_engine.h"
#include "src/fault/fault_config.h"
#include "src/fault/fault_schedule.h"
#include "src/sched/fleet_scheduler.h"
#include "src/sched/sched_config.h"
#include "src/serve/serve_loop.h"
#include "src/serve/serve_stats.h"
#include "src/sim/event_loop.h"

namespace flo {

class ArrivalPump;
class RequestCursor;

struct ClusterConfig {
  // Initial replica count (the autoscaler may move it within its bounds).
  int replicas = 2;
  PlacementPolicy policy = PlacementPolicy::kPlanAffinity;
  // Per-replica serving knobs (lanes, batching, tuning costs).
  ServeConfig serve;
  // Publish freshly tuned plans to every peer store and single-flight
  // searches fleet-wide. Off, every replica tunes its own copy of every
  // key it serves — the baseline plan-affinity routing competes against.
  bool ship_plans = true;
  // Per-replica PlanStore capacity (0 = unbounded).
  size_t store_capacity = 0;
  AutoscaleConfig autoscale;
  // Per-request service-cost estimate used for load balancing until
  // completed requests calibrate the running mean.
  double default_cost_estimate_us = 1000.0;
  // Deterministic fault injection (src/fault): the seed expands into a
  // FaultSchedule at Run time. Disabled (the default) injects nothing
  // and leaves runs bit-identical to a fault-free build. An explicit
  // SetFaultSchedule overrides the generated one.
  FaultConfig faults;
  // Fleet scheduler (src/sched): fair-share lane ordering, latency-
  // predicted backfill, and preemptive requeue. Disabled (the default)
  // constructs no scheduler and leaves runs bit-identical to a pre-sched
  // build.
  SchedConfig sched;
};

struct ReplicaReport {
  int id = 0;
  SimTime spawned_us = 0.0;
  // -1 while the replica was still active at the end of the run.
  SimTime retired_us = -1.0;
  // Empty for replicas already retired before the run started.
  ServeReport serve;
  size_t tuner_searches = 0;
  size_t plans_resident = 0;
};

struct FleetReport {
  std::vector<ReplicaReport> replicas;
  // Fleet-wide request records, merged in replica-id order.
  ServeStats stats;
  SimTime makespan_us = 0.0;
  size_t total_searches = 0;
  // Distinct plan keys in the served trace: with plan shipping on,
  // total_searches <= distinct_keys (each scenario tuned once fleet-wide).
  size_t distinct_keys = 0;
  int peak_replicas = 0;
  size_t spawns = 0;
  size_t drains = 0;
  // Spawns decided by the predictive rate-estimate tier alone (counted
  // inside `spawns` too); 0 unless AutoscaleConfig::predictive.
  size_t prespawns = 0;
  PlanShipperStats shipping;
  // Events dispatched by the shared loop during this run (arrivals,
  // batch/tuning completions, autoscale checkpoints).
  uint64_t events = 0;
  // Fault injection and recovery for this run (enabled false when the
  // run injected nothing).
  FaultReport fault;
  // Fleet-scheduler outcomes for this run (enabled false when the
  // scheduler was off).
  SchedReport sched;

  // Fraction of requests whose plan was warm on their replica at batch
  // formation — the global warm-hit rate plan-affinity routing optimizes.
  double WarmHitRate() const { return stats.CacheHitRate(); }
  double ThroughputPerSec() const {
    return makespan_us > 0.0 ? static_cast<double>(stats.count()) / makespan_us * 1e6 : 0.0;
  }
};

class ServingCluster {
 public:
  explicit ServingCluster(ClusterSpec hardware, ClusterConfig config = {},
                          TunerConfig tuner_config = {}, EngineOptions options = {});

  // Serves the trace to completion. Replica engines and stores persist
  // across calls (a second run of the same trace serves warm); the report
  // covers this run only.
  FleetReport Run(std::vector<ServeRequest> requests);

  // Streaming form: requests are pulled from the cursor as simulated time
  // advances, so fleet memory stays O(pending) instead of O(trace) — the
  // path million-request runs take. The vector overload wraps this.
  FleetReport Run(RequestCursor* cursor);

  // Warm-start / persistence over the PlanShipper's published set:
  // SavePlans writes the fleet snapshot; LoadPlans/ImportPlans publish a
  // snapshot into every replica store (returning the plan count), so the
  // next run performs zero searches for covered scenarios.
  bool SavePlans(const std::string& path) const;
  size_t LoadPlans(const std::string& path);
  size_t ImportPlans(const std::string& text);

  // The canonical plan key requests are routed by (replica-independent).
  uint64_t KeyFor(const ScenarioSpec& spec) const { return keyer_.CanonicalKey(spec); }

  // Pins an explicit fault schedule (scripted chaos, e.g. from
  // FaultSchedule::ParseCsv) for subsequent Runs, overriding the one
  // ClusterConfig::faults would generate. An empty schedule clears the
  // override.
  void SetFaultSchedule(FaultSchedule schedule);

  const PlanShipper& shipper() const { return shipper_; }
  const ClusterConfig& config() const { return config_; }
  // All replicas ever spawned, in id order (including retired ones).
  const std::vector<std::unique_ptr<Replica>>& replicas() const { return replicas_; }

 private:
  Replica* SpawnReplica(SimTime now);
  Replica* FindReplica(int id);
  ServeSession::Hooks HooksFor(Replica* replica);
  // Returns a reference to snapshot_scratch_, rebuilt for this call: one
  // router decision per arrival must not cost a vector allocation.
  const std::vector<ReplicaSnapshot>& Snapshots(uint64_t key, SimTime now);
  void PlaceRequest(ServeRequest request, SimTime now);
  void DispatchAll(SimTime now);
  void MaybeRetire(Replica* replica, SimTime now);
  void AutoscaleCheck(SimTime now);
  double CostEstimateUs() const;
  // Preemptive-requeue scan (src/sched): pulls not-yet-dispatched
  // requests off draining, straggling, or overloaded replicas and
  // re-places them through the router, then re-arms itself.
  void SchedCheck(SimTime now);

  // Fault plane (src/fault). OnFaultEvent is the single typed-event
  // target for kFaultInject / kRequeue / kHealthRestore / kHangDetect;
  // the helpers below implement each arm.
  void OnFaultEvent(const EventRecord& record, SimTime now);
  void ApplyFault(const FaultEvent& event, SimTime now);
  void OnRequeue(const EventRecord& record, SimTime now);
  void OnHealthRestore(const EventRecord& record, SimTime now);
  void OnHangDetect(const EventRecord& record, SimTime now);
  // Evacuates every pending request off `replica` and schedules each for
  // re-placement after its deterministic backoff.
  void RequeueFrom(Replica* replica, SimTime now);
  // Parks one request in the requeue pool and schedules its kRequeue.
  void PushRequeue(ServeRequest request, SimTime at);

  ClusterSpec hardware_;
  ClusterConfig config_;
  TunerConfig tuner_config_;
  EngineOptions options_;

  // Replica-independent plan keyer: CanonicalKey covers scenario x
  // hardware x tuner config, so any identically configured planner agrees.
  Tuner keyer_tuner_;
  PlanStore keyer_store_;
  OverlapPlanner keyer_;

  FleetRouter router_;
  PlanShipper shipper_;
  EventLoop events_;
  // Constructed when ClusterConfig::sched enables it (every session then
  // borrows it through ServeConfig::sched) OR when the predictive
  // autoscale tier needs its arrival accounts — in that second, sched-off
  // mode the sessions never see it, so dispatch stays FIFO and only the
  // rate estimate is read. Null = neither consumer active.
  std::unique_ptr<FleetScheduler> scheduler_;
  // Typed-event targets for autoscale checkpoints, fault-plane events,
  // and scheduler preempt scans (registered once).
  uint32_t autoscale_handler_ = 0;
  uint32_t fault_handler_ = 0;
  uint32_t sched_handler_ = 0;
  std::vector<std::unique_ptr<Replica>> replicas_;
  int next_replica_id_ = 0;

  // Per-run state (reset by Run).
  std::unique_ptr<Autoscaler> autoscaler_;
  // The run's arrival pump; the autoscaler's continuation condition reads
  // its admitted()/done() because a streamed trace has no known size.
  ArrivalPump* pump_ = nullptr;
  size_t total_requests_ = 0;
  size_t completed_requests_ = 0;
  double cost_sum_us_ = 0.0;
  size_t cost_samples_ = 0;
  // Latencies of requests finished since the last autoscale check.
  std::vector<double> recent_latencies_;
  // The previous non-empty SLO window's p99, carried forward into
  // checkpoints that completed nothing while work was pending: a fleet
  // stalled behind a straggler or a long cold tune must not read as calm.
  double last_window_p99_us_ = 0.0;
  // Distinct plan keys seen by PlaceRequest this run.
  std::set<uint64_t> run_keys_;
  std::vector<ReplicaSnapshot> snapshot_scratch_;
  int peak_replicas_ = 0;
  size_t spawns_ = 0;
  size_t drains_ = 0;
  size_t prespawns_ = 0;

  // Fault plane (per-run unless noted). The scripted override persists
  // across runs; active_schedule_ is rebuilt by Run.
  FaultSchedule schedule_override_;
  FaultSchedule active_schedule_;
  bool faults_active_ = false;
  FaultReport fault_report_;
  // Requests awaiting their kRequeue firing, pooled so the 24-byte event
  // record can carry a slot index instead of the request.
  std::vector<ServeRequest> requeue_pool_;
  std::vector<uint32_t> requeue_free_;
  // Scratch for RequeueFrom's evacuations; reused across events.
  std::vector<ServeRequest> requeue_scratch_;
  // shipper_ stats are cumulative across runs; this run's ship_drops are
  // reported as a delta from the Run-start baseline.
  size_t ship_drops_baseline_ = 0;
  // Scheduler per-run counters (the per-replica counters live in each
  // session's ServeReport and are aggregated at report time).
  size_t sched_preempt_scans_ = 0;
  size_t sched_preempted_ = 0;
  // Scratch for SchedCheck's evacuations; reused across scans.
  std::vector<ServeRequest> preempt_scratch_;
};

}  // namespace flo

#endif  // SRC_CLUSTER_SERVING_CLUSTER_H_
