// The multi-replica serving cluster: N replica engines behind a
// FleetRouter, on one shared simulated clock.
//
// Layering (the fleet analogue of ScenarioSpec -> Planner -> Executor):
//   trace -> RequestCursor/ArrivalPump (streamed admission) -> FleetRouter
//   (placement) -> Replica ServeSessions (per-tenant queues, executor +
//   tuning lanes) -> shared EventLoop (typed records, calendar queue)
// with two fleet-level services threaded through the session hooks:
//   - PlanShipper: fleet-wide single-flight of tuner searches and
//     publication of freshly tuned plans to every replica's PlanStore, so
//     the fleet pays each distinct scenario's search exactly once (and a
//     saved snapshot warm-starts the next process with zero searches);
//   - Autoscaler: spawns/drains replicas from queue depth and SLO
//     pressure at fixed sim-clock checkpoints, deterministically.
//
// Everything is deterministic: the same trace and config produce
// bit-identical reports, plans are bit-identical at any replica count and
// any host thread count, and replica counts only change the timeline.
#ifndef SRC_CLUSTER_SERVING_CLUSTER_H_
#define SRC_CLUSTER_SERVING_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/autoscaler.h"
#include "src/cluster/fleet_router.h"
#include "src/cluster/plan_shipping.h"
#include "src/cluster/replica.h"
#include "src/core/overlap_engine.h"
#include "src/serve/serve_loop.h"
#include "src/serve/serve_stats.h"
#include "src/sim/event_loop.h"

namespace flo {

class ArrivalPump;
class RequestCursor;

struct ClusterConfig {
  // Initial replica count (the autoscaler may move it within its bounds).
  int replicas = 2;
  PlacementPolicy policy = PlacementPolicy::kPlanAffinity;
  // Per-replica serving knobs (lanes, batching, tuning costs).
  ServeConfig serve;
  // Publish freshly tuned plans to every peer store and single-flight
  // searches fleet-wide. Off, every replica tunes its own copy of every
  // key it serves — the baseline plan-affinity routing competes against.
  bool ship_plans = true;
  // Per-replica PlanStore capacity (0 = unbounded).
  size_t store_capacity = 0;
  AutoscaleConfig autoscale;
  // Per-request service-cost estimate used for load balancing until
  // completed requests calibrate the running mean.
  double default_cost_estimate_us = 1000.0;
};

struct ReplicaReport {
  int id = 0;
  SimTime spawned_us = 0.0;
  // -1 while the replica was still active at the end of the run.
  SimTime retired_us = -1.0;
  // Empty for replicas already retired before the run started.
  ServeReport serve;
  size_t tuner_searches = 0;
  size_t plans_resident = 0;
};

struct FleetReport {
  std::vector<ReplicaReport> replicas;
  // Fleet-wide request records, merged in replica-id order.
  ServeStats stats;
  SimTime makespan_us = 0.0;
  size_t total_searches = 0;
  // Distinct plan keys in the served trace: with plan shipping on,
  // total_searches <= distinct_keys (each scenario tuned once fleet-wide).
  size_t distinct_keys = 0;
  int peak_replicas = 0;
  size_t spawns = 0;
  size_t drains = 0;
  PlanShipperStats shipping;
  // Events dispatched by the shared loop during this run (arrivals,
  // batch/tuning completions, autoscale checkpoints).
  uint64_t events = 0;

  // Fraction of requests whose plan was warm on their replica at batch
  // formation — the global warm-hit rate plan-affinity routing optimizes.
  double WarmHitRate() const { return stats.CacheHitRate(); }
  double ThroughputPerSec() const {
    return makespan_us > 0.0 ? static_cast<double>(stats.count()) / makespan_us * 1e6 : 0.0;
  }
};

class ServingCluster {
 public:
  explicit ServingCluster(ClusterSpec hardware, ClusterConfig config = {},
                          TunerConfig tuner_config = {}, EngineOptions options = {});

  // Serves the trace to completion. Replica engines and stores persist
  // across calls (a second run of the same trace serves warm); the report
  // covers this run only.
  FleetReport Run(std::vector<ServeRequest> requests);

  // Streaming form: requests are pulled from the cursor as simulated time
  // advances, so fleet memory stays O(pending) instead of O(trace) — the
  // path million-request runs take. The vector overload wraps this.
  FleetReport Run(RequestCursor* cursor);

  // Warm-start / persistence over the PlanShipper's published set:
  // SavePlans writes the fleet snapshot; LoadPlans/ImportPlans publish a
  // snapshot into every replica store (returning the plan count), so the
  // next run performs zero searches for covered scenarios.
  bool SavePlans(const std::string& path) const;
  size_t LoadPlans(const std::string& path);
  size_t ImportPlans(const std::string& text);

  // The canonical plan key requests are routed by (replica-independent).
  uint64_t KeyFor(const ScenarioSpec& spec) const { return keyer_.CanonicalKey(spec); }

  const PlanShipper& shipper() const { return shipper_; }
  const ClusterConfig& config() const { return config_; }
  // All replicas ever spawned, in id order (including retired ones).
  const std::vector<std::unique_ptr<Replica>>& replicas() const { return replicas_; }

 private:
  Replica* SpawnReplica(SimTime now);
  Replica* FindReplica(int id);
  ServeSession::Hooks HooksFor(Replica* replica);
  // Returns a reference to snapshot_scratch_, rebuilt for this call: one
  // router decision per arrival must not cost a vector allocation.
  const std::vector<ReplicaSnapshot>& Snapshots(uint64_t key, SimTime now);
  void PlaceRequest(ServeRequest request, SimTime now);
  void DispatchAll(SimTime now);
  void MaybeRetire(Replica* replica, SimTime now);
  void AutoscaleCheck(SimTime now);
  double CostEstimateUs() const;

  ClusterSpec hardware_;
  ClusterConfig config_;
  TunerConfig tuner_config_;
  EngineOptions options_;

  // Replica-independent plan keyer: CanonicalKey covers scenario x
  // hardware x tuner config, so any identically configured planner agrees.
  Tuner keyer_tuner_;
  PlanStore keyer_store_;
  OverlapPlanner keyer_;

  FleetRouter router_;
  PlanShipper shipper_;
  EventLoop events_;
  // Typed-event target for autoscale checkpoints (registered once).
  uint32_t autoscale_handler_ = 0;
  std::vector<std::unique_ptr<Replica>> replicas_;
  int next_replica_id_ = 0;

  // Per-run state (reset by Run).
  std::unique_ptr<Autoscaler> autoscaler_;
  // The run's arrival pump; the autoscaler's continuation condition reads
  // its admitted()/done() because a streamed trace has no known size.
  ArrivalPump* pump_ = nullptr;
  size_t total_requests_ = 0;
  size_t completed_requests_ = 0;
  double cost_sum_us_ = 0.0;
  size_t cost_samples_ = 0;
  // Latencies of requests finished since the last autoscale check.
  std::vector<double> recent_latencies_;
  // Distinct plan keys seen by PlaceRequest this run.
  std::set<uint64_t> run_keys_;
  std::vector<ReplicaSnapshot> snapshot_scratch_;
  int peak_replicas_ = 0;
  size_t spawns_ = 0;
  size_t drains_ = 0;
};

}  // namespace flo

#endif  // SRC_CLUSTER_SERVING_CLUSTER_H_
