#include "src/comm/collective_op.h"

#include <utility>

#include "src/util/check.h"

namespace flo {

CollectiveOp::CollectiveOp(std::string name, std::vector<Device*> devices, int sm_per_device,
                           std::function<SimTime()> duration_fn, std::function<void()> apply)
    : name_(std::move(name)),
      devices_(std::move(devices)),
      sm_per_device_(sm_per_device),
      duration_fn_(std::move(duration_fn)),
      apply_(std::move(apply)) {
  FLO_CHECK(!devices_.empty());
  FLO_CHECK_GE(sm_per_device_, 0);
  arrived_.assign(devices_.size(), false);
  done_callbacks_.resize(devices_.size());
}

void CollectiveOp::EnqueueOn(Stream& stream, int rank) {
  FLO_CHECK_GE(rank, 0);
  FLO_CHECK_LT(rank, static_cast<int>(devices_.size()));
  stream.Enqueue(name_, [this, rank](Simulator& sim, Stream::DoneFn done) {
    Arrive(sim, rank, std::move(done));
  });
}

void CollectiveOp::Arrive(Simulator& sim, int rank, Stream::DoneFn done) {
  FLO_CHECK(!arrived_[rank]) << name_ << ": rank " << rank << " arrived twice";
  arrived_[rank] = true;
  done_callbacks_[rank] = std::move(done);
  ++arrived_count_;
  if (arrived_count_ < static_cast<int>(devices_.size())) {
    return;
  }
  // Last rank arrived: the transfer begins now on all devices.
  FLO_CHECK(!started_);
  started_ = true;
  start_time_ = sim.Now();
  for (Device* device : devices_) {
    device->AcquireSms(sm_per_device_);
  }
  const SimTime duration = duration_fn_ ? duration_fn_() : 0.0;
  FLO_CHECK_GE(duration, 0.0);
  sim.Schedule(duration, [this, &sim]() {
    end_time_ = sim.Now();
    Complete();
  });
}

void CollectiveOp::Complete() {
  FLO_CHECK(!completed_);
  completed_ = true;
  for (Device* device : devices_) {
    device->ReleaseSms(sm_per_device_);
  }
  if (apply_) {
    apply_();
  }
  for (auto& done : done_callbacks_) {
    FLO_CHECK(done != nullptr);
    done();
  }
}

}  // namespace flo
