// Simulated synchronizing collective call.
//
// NCCL collectives are rendezvous operations: every rank must enqueue the
// call, the transfer runs once all ranks arrive, and all ranks' streams
// unblock on completion. While resident, the collective's kernel occupies
// `sm_per_device` SMs on every participating device — which is exactly the
// contention the paper's predictor accounts for (Alg. 1 line 3).
#ifndef SRC_COMM_COLLECTIVE_OP_H_
#define SRC_COMM_COLLECTIVE_OP_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/device.h"
#include "src/sim/stream.h"

namespace flo {

class CollectiveOp {
 public:
  // `duration_fn` is evaluated once, when the last rank arrives (so it can
  // sample jitter); `apply` runs at completion and performs the functional
  // data movement. Both may be null for timing-only simulations.
  CollectiveOp(std::string name, std::vector<Device*> devices, int sm_per_device,
               std::function<SimTime()> duration_fn, std::function<void()> apply);

  // Enqueues this rank's share of the collective on its comm stream. Must
  // be called exactly once per rank.
  void EnqueueOn(Stream& stream, int rank);

  bool completed() const { return completed_; }
  SimTime start_time() const { return start_time_; }
  SimTime end_time() const { return end_time_; }
  const std::string& name() const { return name_; }

 private:
  void Arrive(Simulator& sim, int rank, Stream::DoneFn done);
  void Complete();

  std::string name_;
  std::vector<Device*> devices_;
  int sm_per_device_;
  std::function<SimTime()> duration_fn_;
  std::function<void()> apply_;

  std::vector<bool> arrived_;
  std::vector<Stream::DoneFn> done_callbacks_;
  int arrived_count_ = 0;
  bool started_ = false;
  bool completed_ = false;
  SimTime start_time_ = 0.0;
  SimTime end_time_ = 0.0;
};

}  // namespace flo

#endif  // SRC_COMM_COLLECTIVE_OP_H_
