#include "src/comm/cost_model.h"

#include <cmath>

#include "src/util/check.h"

namespace flo {

CommCostModel::CommCostModel(InterconnectSpec link, int gpu_count)
    : link_(std::move(link)), gpu_count_(gpu_count) {
  FLO_CHECK_GE(gpu_count_, 2);
}

double CommCostModel::LatencyUs(CommPrimitive primitive, double bytes) const {
  FLO_CHECK_GT(bytes, 0.0);
  const double factor = WireFactor(primitive, gpu_count_);
  // The effective bandwidth is a function of the call's payload size: this
  // is precisely the (data size -> bandwidth) curve the paper profiles in
  // Fig. 8, cliff included.
  const double busbw_gbps = link_.EffectiveBusBandwidth(bytes);
  // GB/s == bytes/ns * 1 == 1e3 bytes/us.
  const double bytes_per_us = busbw_gbps * 1e3;
  const double wire_time = factor * bytes / bytes_per_us;
  // Ring steps pay the per-hop latency serially.
  const double steps = (primitive == CommPrimitive::kAllReduce)
                           ? 2.0 * (gpu_count_ - 1)
                           : static_cast<double>(gpu_count_ - 1);
  return link_.call_overhead_us + steps * link_.base_latency_us + wire_time;
}

double CommCostModel::AlgorithmBandwidth(CommPrimitive primitive, double bytes) const {
  const double latency_us = LatencyUs(primitive, bytes);
  return bytes / latency_us / 1e3;  // bytes/us -> GB/s
}

Curve CommCostModel::SampleLatencyCurve(CommPrimitive primitive, double min_bytes,
                                        double max_bytes, int points_per_decade) const {
  FLO_CHECK_GT(min_bytes, 0.0);
  FLO_CHECK_GT(max_bytes, min_bytes);
  std::vector<std::pair<double, double>> points;
  const double log_min = std::log10(min_bytes);
  const double log_max = std::log10(max_bytes);
  const int total =
      static_cast<int>(std::ceil((log_max - log_min) * points_per_decade)) + 1;
  for (int i = 0; i <= total; ++i) {
    const double x =
        std::pow(10.0, log_min + (log_max - log_min) * static_cast<double>(i) / total);
    points.emplace_back(x, LatencyUs(primitive, x));
  }
  return Curve(std::move(points));
}

double CommCostModel::BandwidthKneeBytes(CommPrimitive primitive, double fraction) const {
  FLO_CHECK_GT(fraction, 0.0);
  FLO_CHECK_LT(fraction, 1.0);
  const double reference = AlgorithmBandwidth(primitive, 1024.0 * 1024 * 1024);
  double lo = 1024.0;
  double hi = 1024.0 * 1024 * 1024;
  for (int iter = 0; iter < 64; ++iter) {
    const double mid = std::sqrt(lo * hi);
    if (AlgorithmBandwidth(primitive, mid) < fraction * reference) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace flo
