// Latency model for collective calls on a cluster.
//
// The model combines the ring wire factor with the size-dependent effective
// link bandwidth (Fig. 8) plus per-call and per-step fixed costs. This is
// both what the simulated collectives charge and what the tuner samples
// offline into its interpolation curve (Alg. 1).
#ifndef SRC_COMM_COST_MODEL_H_
#define SRC_COMM_COST_MODEL_H_

#include "src/comm/primitive.h"
#include "src/hw/interconnect.h"
#include "src/util/interp.h"

namespace flo {

class CommCostModel {
 public:
  CommCostModel(InterconnectSpec link, int gpu_count);

  const InterconnectSpec& link() const { return link_; }
  int gpu_count() const { return gpu_count_; }

  // Latency (us) of one collective call moving `bytes` of payload per GPU.
  // `bytes` is the send-buffer size on each rank.
  double LatencyUs(CommPrimitive primitive, double bytes) const;

  // Effective algorithm bandwidth (payload bytes / time), GB/s, for
  // plotting Fig. 8-style curves.
  double AlgorithmBandwidth(CommPrimitive primitive, double bytes) const;

  // Samples the (bytes -> latency us) relation for the tuner's predictive
  // search. Dense log-spaced sampling stands in for offline profiling runs.
  Curve SampleLatencyCurve(CommPrimitive primitive, double min_bytes, double max_bytes,
                           int points_per_decade = 16) const;

  // Smallest payload whose algorithm bandwidth reaches `fraction` of the
  // large-message bandwidth — the "red marker" borderline in Fig. 8.
  double BandwidthKneeBytes(CommPrimitive primitive, double fraction = 0.8) const;

 private:
  InterconnectSpec link_;
  int gpu_count_;
};

}  // namespace flo

#endif  // SRC_COMM_COST_MODEL_H_
