#include "src/comm/functional.h"

#include "src/util/check.h"

namespace flo {

void FunctionalAllReduce(std::span<std::span<float>> rank_buffers) {
  FLO_CHECK_GE(rank_buffers.size(), 2u);
  const size_t elements = rank_buffers[0].size();
  for (const auto& buffer : rank_buffers) {
    FLO_CHECK_EQ(buffer.size(), elements);
  }
  for (size_t i = 0; i < elements; ++i) {
    float sum = 0.0f;
    for (const auto& buffer : rank_buffers) {
      sum += buffer[i];
    }
    for (auto& buffer : rank_buffers) {
      buffer[i] = sum;
    }
  }
}

void FunctionalReduceScatter(std::span<const std::span<const float>> rank_in,
                             std::span<std::span<float>> rank_out) {
  const size_t n = rank_in.size();
  FLO_CHECK_GE(n, 2u);
  FLO_CHECK_EQ(rank_out.size(), n);
  const size_t total = rank_in[0].size();
  FLO_CHECK_EQ(total % n, 0u) << "ReduceScatter input must divide evenly by rank count";
  const size_t slice = total / n;
  for (const auto& in : rank_in) {
    FLO_CHECK_EQ(in.size(), total);
  }
  for (size_t r = 0; r < n; ++r) {
    FLO_CHECK_EQ(rank_out[r].size(), slice);
    for (size_t i = 0; i < slice; ++i) {
      float sum = 0.0f;
      for (const auto& in : rank_in) {
        sum += in[r * slice + i];
      }
      rank_out[r][i] = sum;
    }
  }
}

void FunctionalAllGather(std::span<const std::span<const float>> rank_in,
                         std::span<std::span<float>> rank_out) {
  const size_t n = rank_in.size();
  FLO_CHECK_GE(n, 2u);
  FLO_CHECK_EQ(rank_out.size(), n);
  size_t total = 0;
  for (const auto& in : rank_in) {
    total += in.size();
  }
  for (auto& out : rank_out) {
    FLO_CHECK_EQ(out.size(), total);
    size_t offset = 0;
    for (const auto& in : rank_in) {
      for (size_t i = 0; i < in.size(); ++i) {
        out[offset + i] = in[i];
      }
      offset += in.size();
    }
  }
}

void FunctionalAllToAll(std::span<const std::span<const float>> rank_in,
                        const std::vector<std::vector<int64_t>>& send_counts,
                        std::span<std::span<float>> rank_out) {
  const size_t n = rank_in.size();
  FLO_CHECK_GE(n, 2u);
  FLO_CHECK_EQ(rank_out.size(), n);
  FLO_CHECK_EQ(send_counts.size(), n);
  // Validate layout sizes.
  for (size_t src = 0; src < n; ++src) {
    FLO_CHECK_EQ(send_counts[src].size(), n);
    int64_t total_send = 0;
    for (size_t dst = 0; dst < n; ++dst) {
      FLO_CHECK_GE(send_counts[src][dst], 0);
      total_send += send_counts[src][dst];
    }
    FLO_CHECK_EQ(rank_in[src].size(), static_cast<size_t>(total_send));
  }
  for (size_t dst = 0; dst < n; ++dst) {
    int64_t total_recv = 0;
    for (size_t src = 0; src < n; ++src) {
      total_recv += send_counts[src][dst];
    }
    FLO_CHECK_EQ(rank_out[dst].size(), static_cast<size_t>(total_recv));
  }
  // Exchange: walk each source's segments and copy into each destination.
  std::vector<int64_t> recv_offset(n, 0);
  for (size_t src = 0; src < n; ++src) {
    int64_t send_offset = 0;
    for (size_t dst = 0; dst < n; ++dst) {
      const int64_t count = send_counts[src][dst];
      for (int64_t i = 0; i < count; ++i) {
        rank_out[dst][recv_offset[dst] + i] = rank_in[src][send_offset + i];
      }
      send_offset += count;
      recv_offset[dst] += count;
    }
  }
}

}  // namespace flo
