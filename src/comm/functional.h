// Functional host implementations of the collectives.
//
// These operate on real per-rank buffers so that every reorder /
// communication path in the engine is verified with actual data, not just
// timed. Semantics match NCCL: buffers must be contiguous ranges (enforced
// by taking spans), AllReduce sums element-wise, ReduceScatter splits the
// reduced buffer evenly by rank, AllGather concatenates, AllToAll exchanges
// per-destination segments described by send counts.
#ifndef SRC_COMM_FUNCTIONAL_H_
#define SRC_COMM_FUNCTIONAL_H_

#include <cstdint>
#include <span>
#include <vector>

namespace flo {

// In-place: every rank ends with the element-wise sum over ranks. All spans
// must be equally sized.
void FunctionalAllReduce(std::span<std::span<float>> rank_buffers);

// rank_out[r] = slice r of the element-wise sum of rank_in. Each input span
// has n_ranks * slice elements; each output span has `slice` elements.
void FunctionalReduceScatter(std::span<const std::span<const float>> rank_in,
                             std::span<std::span<float>> rank_out);

// rank_out[r] = concatenation of all rank_in slices, identical on every
// rank.
void FunctionalAllGather(std::span<const std::span<const float>> rank_in,
                         std::span<std::span<float>> rank_out);

// General All-to-All with per-pair element counts. send_counts[src][dst] is
// the number of elements src sends to dst, laid out consecutively (by dst)
// in rank_in[src]. Received segments are laid out (by src) in rank_out[dst].
// Each output span must be exactly the total received size.
void FunctionalAllToAll(std::span<const std::span<const float>> rank_in,
                        const std::vector<std::vector<int64_t>>& send_counts,
                        std::span<std::span<float>> rank_out);

}  // namespace flo

#endif  // SRC_COMM_FUNCTIONAL_H_
