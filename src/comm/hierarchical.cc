#include "src/comm/hierarchical.h"

#include "src/util/check.h"

namespace flo {

InterconnectSpec MakeInfiniBandHdr() {
  InterconnectSpec spec;
  spec.kind = LinkKind::kPcie;  // host-mediated path; closest existing kind
  spec.name = "IB-HDR200";
  // HDR200 NIC shared per GPU pair: ~20 GB/s effective per GPU.
  spec.peak_busbw_gbps = 20.0;
  spec.base_latency_us = 10.0;
  spec.half_saturation_bytes = 4.0 * 1024 * 1024;
  spec.cliff_bytes = 8.0 * 1024 * 1024;
  spec.comm_sm_count = 2;
  spec.call_overhead_us = 25.0;
  spec.p2p_access = false;
  return spec;
}

HierarchicalCostModel::HierarchicalCostModel(InterconnectSpec intra, InterconnectSpec inter,
                                             int nodes, int gpus_per_node)
    : intra_(std::move(intra), std::max(gpus_per_node, 2)),
      inter_(std::move(inter), std::max(nodes, 2)),
      nodes_(nodes),
      gpus_per_node_(gpus_per_node) {
  FLO_CHECK_GE(nodes_, 1);
  FLO_CHECK_GE(gpus_per_node_, 2);
}

double HierarchicalCostModel::LatencyUs(CommPrimitive primitive, double bytes) const {
  FLO_CHECK_GT(bytes, 0.0);
  if (nodes_ <= 1) {
    return intra_.LatencyUs(primitive, bytes);
  }
  // After the intra-node phase each GPU owns a 1/gpus_per_node shard that
  // the inter-node phase operates on.
  const double shard = bytes / gpus_per_node_;
  switch (primitive) {
    case CommPrimitive::kAllReduce:
      return intra_.LatencyUs(CommPrimitive::kReduceScatter, bytes) +
             inter_.LatencyUs(CommPrimitive::kAllReduce, shard) +
             intra_.LatencyUs(CommPrimitive::kAllGather, bytes);
    case CommPrimitive::kReduceScatter:
      return intra_.LatencyUs(CommPrimitive::kReduceScatter, bytes) +
             inter_.LatencyUs(CommPrimitive::kReduceScatter, shard);
    case CommPrimitive::kAllGather:
      return inter_.LatencyUs(CommPrimitive::kAllGather, shard) +
             intra_.LatencyUs(CommPrimitive::kAllGather, bytes);
    case CommPrimitive::kAllToAll: {
      // Fraction staying on-node: (gpus_per_node - 1) / world; crossing:
      // the rest, serialized through the NIC.
      const double world = static_cast<double>(world_size());
      const double local_fraction = (gpus_per_node_ - 1) / world;
      const double cross_fraction = (world - gpus_per_node_) / world;
      return intra_.LatencyUs(CommPrimitive::kAllToAll, bytes * local_fraction +
                                                             1.0) +
             inter_.LatencyUs(CommPrimitive::kAllToAll, bytes * cross_fraction + 1.0);
    }
  }
  return intra_.LatencyUs(primitive, bytes);
}

}  // namespace flo
