// Two-level collective cost model for multi-node deployments.
//
// The paper's current implementation is intra-node (A.6.2 notes that
// inter-node support only swaps the communication backend). This model
// covers that extension: a collective over (nodes x gpus_per_node) executes
// as the standard hierarchical algorithm —
//   AllReduce     = intra RS -> inter AR (per shard) -> intra AG
//   ReduceScatter = intra RS -> inter RS
//   AllGather     = inter AG -> intra AG
//   AllToAll      = intra exchange + inter exchange of the cross slices
// with each phase priced by the corresponding link's cost model.
#ifndef SRC_COMM_HIERARCHICAL_H_
#define SRC_COMM_HIERARCHICAL_H_

#include "src/comm/cost_model.h"
#include "src/hw/interconnect.h"

namespace flo {

// An InfiniBand-style inter-node fabric preset (per-GPU NIC share).
InterconnectSpec MakeInfiniBandHdr();

class HierarchicalCostModel {
 public:
  HierarchicalCostModel(InterconnectSpec intra, InterconnectSpec inter, int nodes,
                        int gpus_per_node);

  int nodes() const { return nodes_; }
  int gpus_per_node() const { return gpus_per_node_; }
  int world_size() const { return nodes_ * gpus_per_node_; }

  // Latency (us) of one hierarchical collective moving `bytes` per GPU.
  double LatencyUs(CommPrimitive primitive, double bytes) const;

  // Single-node degenerate case must match the flat model; exposed for
  // verification.
  const CommCostModel& intra() const { return intra_; }
  const CommCostModel& inter() const { return inter_; }

 private:
  CommCostModel intra_;
  CommCostModel inter_;
  int nodes_;
  int gpus_per_node_;
};

}  // namespace flo

#endif  // SRC_COMM_HIERARCHICAL_H_
