#include "src/comm/primitive.h"

#include <algorithm>
#include <cctype>

#include "src/util/check.h"

namespace flo {

const char* CommPrimitiveName(CommPrimitive primitive) {
  switch (primitive) {
    case CommPrimitive::kAllReduce:
      return "AllReduce";
    case CommPrimitive::kReduceScatter:
      return "ReduceScatter";
    case CommPrimitive::kAllGather:
      return "AllGather";
    case CommPrimitive::kAllToAll:
      return "AllToAll";
  }
  return "?";
}

double WireFactor(CommPrimitive primitive, int gpu_count) {
  FLO_CHECK_GE(gpu_count, 2);
  const double n = static_cast<double>(gpu_count);
  switch (primitive) {
    case CommPrimitive::kAllReduce:
      // Ring AllReduce: reduce-scatter + all-gather phases.
      return 2.0 * (n - 1.0) / n;
    case CommPrimitive::kReduceScatter:
    case CommPrimitive::kAllGather:
      return (n - 1.0) / n;
    case CommPrimitive::kAllToAll:
      // Each rank keeps 1/n of its data locally and sends the rest.
      return (n - 1.0) / n;
  }
  return 1.0;
}

std::optional<CommPrimitive> TryCommPrimitiveFromName(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "ar" || lower == "allreduce") {
    return CommPrimitive::kAllReduce;
  }
  if (lower == "rs" || lower == "reducescatter") {
    return CommPrimitive::kReduceScatter;
  }
  if (lower == "ag" || lower == "allgather") {
    return CommPrimitive::kAllGather;
  }
  if (lower == "a2a" || lower == "alltoall") {
    return CommPrimitive::kAllToAll;
  }
  return std::nullopt;
}

CommPrimitive CommPrimitiveFromName(const std::string& name) {
  const std::optional<CommPrimitive> parsed = TryCommPrimitiveFromName(name);
  FLO_CHECK(parsed.has_value()) << "unknown primitive: " << name;
  return *parsed;
}

}  // namespace flo
