// Collective communication primitives supported by the MCL library (the
// NCCL stand-in). FlashOverlap is agnostic to the primitive by design; the
// engine only ever calls these through the generic interface.
#ifndef SRC_COMM_PRIMITIVE_H_
#define SRC_COMM_PRIMITIVE_H_

#include <optional>
#include <string>

namespace flo {

enum class CommPrimitive {
  kAllReduce,
  kReduceScatter,
  kAllGather,
  kAllToAll,
};

const char* CommPrimitiveName(CommPrimitive primitive);

// Bytes crossing each GPU's link per payload byte under a ring algorithm
// with `gpu_count` participants (the classical busbw factors).
double WireFactor(CommPrimitive primitive, int gpu_count);

// Parses "ar"/"allreduce", "rs"/"reducescatter", "ag", "a2a"/"alltoall".
CommPrimitive CommPrimitiveFromName(const std::string& name);

// Non-aborting variant for untrusted input (plan files): std::nullopt on an
// unknown name instead of FLO_CHECK.
std::optional<CommPrimitive> TryCommPrimitiveFromName(const std::string& name);

}  // namespace flo

#endif  // SRC_COMM_PRIMITIVE_H_
