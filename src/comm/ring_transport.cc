#include "src/comm/ring_transport.h"

#include <utility>

#include "src/util/check.h"

namespace flo {

int RingStepCount(CommPrimitive primitive, int gpu_count) {
  FLO_CHECK_GE(gpu_count, 2);
  switch (primitive) {
    case CommPrimitive::kAllReduce:
      return 2 * (gpu_count - 1);
    case CommPrimitive::kReduceScatter:
    case CommPrimitive::kAllGather:
    case CommPrimitive::kAllToAll:
      return gpu_count - 1;
  }
  return gpu_count - 1;
}

SimTime RingStepTime(const InterconnectSpec& link, double message_bytes, double chunk_bytes) {
  FLO_CHECK_GT(message_bytes, 0.0);
  FLO_CHECK_GT(chunk_bytes, 0.0);
  const double busbw_gbps = link.EffectiveBusBandwidth(message_bytes);
  const double bytes_per_us = busbw_gbps * 1e3;
  return link.base_latency_us + chunk_bytes / bytes_per_us;
}

RingCollectiveOp::RingCollectiveOp(std::string name, std::vector<Device*> devices,
                                   InterconnectSpec link, CommPrimitive primitive, double bytes,
                                   std::function<void()> apply)
    : name_(std::move(name)),
      devices_(std::move(devices)),
      link_(std::move(link)),
      primitive_(primitive),
      bytes_(bytes),
      apply_(std::move(apply)) {
  FLO_CHECK_GE(devices_.size(), 2u);
  FLO_CHECK_GT(bytes_, 0.0);
  arrived_.assign(devices_.size(), false);
  done_callbacks_.resize(devices_.size());
}

void RingCollectiveOp::EnqueueOn(Stream& stream, int rank) {
  FLO_CHECK_GE(rank, 0);
  FLO_CHECK_LT(rank, static_cast<int>(devices_.size()));
  stream.Enqueue(name_, [this, rank](Simulator& sim, Stream::DoneFn done) {
    Arrive(sim, rank, std::move(done));
  });
}

void RingCollectiveOp::Arrive(Simulator& sim, int rank, Stream::DoneFn done) {
  FLO_CHECK(!arrived_[rank]) << name_ << ": rank " << rank << " arrived twice";
  arrived_[rank] = true;
  done_callbacks_[rank] = std::move(done);
  if (++arrived_count_ < static_cast<int>(devices_.size())) {
    return;
  }
  start_time_ = sim.Now();
  for (Device* device : devices_) {
    device->AcquireSms(link_.comm_sm_count);
  }
  // Host-side setup before the first chunk moves.
  sim.Schedule(link_.call_overhead_us, [this, &sim]() { RunStep(sim, 0); });
}

void RingCollectiveOp::RunStep(Simulator& sim, int step) {
  const int total_steps = RingStepCount(primitive_, static_cast<int>(devices_.size()));
  if (step >= total_steps) {
    Complete(sim);
    return;
  }
  // Per-step payload: the classic ring moves the whole wire volume in
  // `total_steps` equal rotations.
  const double wire_bytes = WireFactor(primitive_, static_cast<int>(devices_.size())) * bytes_;
  const double chunk = wire_bytes / total_steps;
  const SimTime duration = RingStepTime(link_, bytes_, chunk);
  const SimTime begin = sim.Now();
  sim.Schedule(duration, [this, &sim, step, begin]() {
    steps_.push_back(StepSpan{step, begin, sim.Now()});
    RunStep(sim, step + 1);
  });
}

void RingCollectiveOp::Complete(Simulator& sim) {
  FLO_CHECK(!completed_);
  completed_ = true;
  end_time_ = sim.Now();
  for (Device* device : devices_) {
    device->ReleaseSms(link_.comm_sm_count);
  }
  if (apply_) {
    apply_();
  }
  for (auto& done : done_callbacks_) {
    FLO_CHECK(done != nullptr);
    done();
  }
}

}  // namespace flo
