// Mechanistic ring transport: a collective simulated step by step.
//
// Where CollectiveOp charges one closed-form duration from the cost model,
// RingCollectiveOp schedules the actual ring algorithm: 2(n-1) chunk
// rotations for AllReduce, (n-1) for ReduceScatter/AllGather, (n-1)
// pairwise exchange rounds for All-to-All. Every step pays the hop latency
// and moves bytes/n per rank at the link's effective bandwidth. Summed, the
// steps reproduce the analytic model — the equivalence is tested — while
// giving the timeline per-step granularity (useful for tracing and for
// validating that the closed form is not hiding structure).
#ifndef SRC_COMM_RING_TRANSPORT_H_
#define SRC_COMM_RING_TRANSPORT_H_

#include <functional>
#include <string>
#include <vector>

#include "src/comm/primitive.h"
#include "src/hw/interconnect.h"
#include "src/sim/device.h"
#include "src/sim/stream.h"

namespace flo {

// Number of ring steps a primitive needs with `gpu_count` participants.
int RingStepCount(CommPrimitive primitive, int gpu_count);

// Duration of one ring step moving `chunk_bytes` per rank. `message_bytes`
// is the whole call's payload — pipelining efficiency is a property of the
// full transfer, so the bandwidth is evaluated at message size.
SimTime RingStepTime(const InterconnectSpec& link, double message_bytes, double chunk_bytes);

class RingCollectiveOp {
 public:
  struct StepSpan {
    int step = 0;
    SimTime start = 0.0;
    SimTime end = 0.0;
  };

  // `bytes` = per-rank payload. `apply` runs once, at completion.
  RingCollectiveOp(std::string name, std::vector<Device*> devices, InterconnectSpec link,
                   CommPrimitive primitive, double bytes, std::function<void()> apply);

  // Enqueues this rank's share on its comm stream (rendezvous semantics,
  // like CollectiveOp).
  void EnqueueOn(Stream& stream, int rank);

  bool completed() const { return completed_; }
  SimTime start_time() const { return start_time_; }
  SimTime end_time() const { return end_time_; }
  const std::vector<StepSpan>& steps() const { return steps_; }

 private:
  void Arrive(Simulator& sim, int rank, Stream::DoneFn done);
  void RunStep(Simulator& sim, int step);
  void Complete(Simulator& sim);

  std::string name_;
  std::vector<Device*> devices_;
  InterconnectSpec link_;
  CommPrimitive primitive_;
  double bytes_;
  std::function<void()> apply_;

  std::vector<bool> arrived_;
  std::vector<Stream::DoneFn> done_callbacks_;
  int arrived_count_ = 0;
  bool completed_ = false;
  SimTime start_time_ = 0.0;
  SimTime end_time_ = 0.0;
  std::vector<StepSpan> steps_;
};

}  // namespace flo

#endif  // SRC_COMM_RING_TRANSPORT_H_
