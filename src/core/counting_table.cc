#include "src/core/counting_table.h"

#include <utility>

#include "src/util/check.h"

namespace flo {

CountingTable::CountingTable(std::vector<int> group_targets)
    : targets_(std::move(group_targets)) {
  FLO_CHECK(!targets_.empty());
  counts_.reserve(targets_.size());
  callbacks_.resize(targets_.size());
  for (int target : targets_) {
    FLO_CHECK_GT(target, 0);
    counts_.push_back(std::make_unique<std::atomic<int>>(0));
  }
}

int CountingTable::target(int group) const {
  FLO_CHECK_GE(group, 0);
  FLO_CHECK_LT(group, group_count());
  return targets_[group];
}

int CountingTable::count(int group) const {
  FLO_CHECK_GE(group, 0);
  FLO_CHECK_LT(group, group_count());
  return counts_[group]->load(std::memory_order_acquire);
}

void CountingTable::OnGroupComplete(int group, std::function<void()> callback) {
  FLO_CHECK_GE(group, 0);
  FLO_CHECK_LT(group, group_count());
  FLO_CHECK(callback != nullptr);
  if (GroupComplete(group)) {
    callback();
    return;
  }
  callbacks_[group].push_back(std::move(callback));
}

bool CountingTable::RecordTile(int group) {
  FLO_CHECK_GE(group, 0);
  FLO_CHECK_LT(group, group_count());
  const int new_count = counts_[group]->fetch_add(1, std::memory_order_acq_rel) + 1;
  FLO_CHECK_LE(new_count, targets_[group]) << "group over-counted";
  if (new_count != targets_[group]) {
    return false;
  }
  auto callbacks = std::move(callbacks_[group]);
  callbacks_[group].clear();
  for (auto& callback : callbacks) {
    callback();
  }
  return true;
}

bool CountingTable::GroupComplete(int group) const { return count(group) >= target(group); }

bool CountingTable::AllComplete() const {
  for (int g = 0; g < group_count(); ++g) {
    if (!GroupComplete(g)) {
      return false;
    }
  }
  return true;
}

void CountingTable::Reset() {
  for (auto& count : counts_) {
    count->store(0, std::memory_order_release);
  }
  for (auto& callbacks : callbacks_) {
    callbacks.clear();
  }
}

}  // namespace flo
