// The signaling mechanism's counting table (paper Sec. 3.2.4).
//
// The table holds one counter per wave group. The GEMM epilogue atomically
// bumps the counter of the finished tile's group; when a counter reaches
// the group's tile count, the group's communication may start. Counters are
// std::atomic because on the real device epilogue threads race; the
// simulator drives it single-threaded but through the same interface.
#ifndef SRC_CORE_COUNTING_TABLE_H_
#define SRC_CORE_COUNTING_TABLE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

namespace flo {

class CountingTable {
 public:
  // `group_targets[j]` = |G_j| in tiles.
  explicit CountingTable(std::vector<int> group_targets);

  int group_count() const { return static_cast<int>(targets_.size()); }
  int target(int group) const;
  int count(int group) const;

  // Registers a callback fired exactly once, when `group` completes. If the
  // group already completed the callback fires immediately.
  void OnGroupComplete(int group, std::function<void()> callback);

  // Records one finished tile of `group`; returns true if this tile
  // completed the group (the "signal"). Over-counting is a caller bug.
  bool RecordTile(int group);

  bool GroupComplete(int group) const;
  bool AllComplete() const;

  // Resets all counters (keeps targets and drops callbacks); lets one
  // table be reused across iterations like the persistent device buffer.
  void Reset();

 private:
  std::vector<int> targets_;
  std::vector<std::unique_ptr<std::atomic<int>>> counts_;
  std::vector<std::vector<std::function<void()>>> callbacks_;
};

}  // namespace flo

#endif  // SRC_CORE_COUNTING_TABLE_H_
