// Execution-time knobs of the overlap engine (deployment scenarios of
// Sec. 4.2.3 and Sec. 5). These affect how a plan is *executed* on the
// simulated cluster, never which plan is chosen — the planner's cache key
// deliberately excludes them so one cached plan serves every option mix.
#ifndef SRC_CORE_ENGINE_OPTIONS_H_
#define SRC_CORE_ENGINE_OPTIONS_H_

#include <cstdint>

namespace flo {

struct EngineOptions {
  // Deterministic jitter (per-case seeded) on wave and collective
  // durations; gives the predictor a realistic error distribution.
  bool jitter = true;
  double wave_jitter = 0.02;
  double comm_jitter = 0.05;
  uint64_t seed_salt = 0;
  // Simulate collectives mechanistically, ring step by ring step
  // (src/comm/ring_transport.h) instead of charging the closed-form cost.
  bool detailed_comm = false;
  // The signal kernel polls the counting table periodically (Sec. 5);
  // a group's communication can only be released on a poll boundary.
  double signal_poll_interval_us = 0.0;
  // SMs statically reserved by co-located work (the preset-SM-ratio
  // scenario of Sec. 4.2.3); unavailable to both GEMM and collectives.
  int reserved_sms = 0;
  // Hold the collective's SM footprint for the whole overlapped region
  // (polling signal kernels + NCCL channels stay resident), exactly the
  // Alg. 1 line 3 assumption. Disable to model channels that release
  // between groups.
  bool persistent_comm_sms = true;
  // Host-side worker threads for cold-plan tuning: RunBatch pre-warms the
  // tuner for every cold spec in parallel before executing. <= 1 keeps the
  // legacy sequential behaviour. Never affects which plan is chosen (the
  // tuner single-flights each key and searches deterministically), so it
  // stays out of the plan-cache key like every other execution knob.
  int tune_threads = 0;

  bool operator==(const EngineOptions&) const = default;
};

}  // namespace flo

#endif  // SRC_CORE_ENGINE_OPTIONS_H_
