// The reusable product of planning a scenario: wave grouping, per-rank
// counting-table targets, and per-group communication segments.
//
// An ExecutionPlan is pure data — it holds no simulator state and no
// pointers into the engine — so it can be memoized in a PlanStore, written
// to disk, and replayed by the ScheduleExecutor under any EngineOptions
// mix. Plans depend only on the scenario, the cluster, and the tuner
// configuration (the planner's canonical cache key).
#ifndef SRC_CORE_EXECUTION_PLAN_H_
#define SRC_CORE_EXECUTION_PLAN_H_

#include <vector>

#include "src/core/scenario.h"
#include "src/core/wave_partition.h"

namespace flo {

// One collective call of the plan: the rendezvous moves the heaviest
// rank's payload and charges its closed-form latency (jitter is applied at
// execution time).
struct CommSegment {
  int group = 0;
  double max_bytes = 0.0;
  double latency_us = 0.0;

  bool operator==(const CommSegment&) const = default;
};

struct ExecutionPlan {
  ScenarioKind kind = ScenarioKind::kOverlap;
  CommPrimitive primitive = CommPrimitive::kAllReduce;
  // The partition reported back to callers (tuned or forced).
  WavePartition partition;
  // group_tiles[r][g] = rank r's counting-table target for group g; all
  // ranks agree on the group count (collectives are rendezvous calls).
  std::vector<std::vector<int>> group_tiles;
  // One segment per group, aligned with group_tiles columns.
  std::vector<CommSegment> segments;
  double predicted_us = 0.0;
  double predicted_non_overlap_us = 0.0;

  int rank_count() const { return static_cast<int>(group_tiles.size()); }
  int group_count() const {
    return group_tiles.empty() ? 0 : static_cast<int>(group_tiles[0].size());
  }

  bool operator==(const ExecutionPlan&) const = default;
};

}  // namespace flo

#endif  // SRC_CORE_EXECUTION_PLAN_H_
