// Umbrella header: the FlashOverlap public API.
//
// Typical use — describe a scenario, let the engine plan and execute it:
//   flo::ClusterSpec cluster = flo::Make4090Cluster(4);
//   flo::OverlapEngine engine(cluster);
//   flo::GemmShape shape{4096, 8192, 7168};
//   flo::OverlapRun run = engine.Execute(
//       flo::ScenarioSpec::Overlap(shape, flo::CommPrimitive::kAllReduce));
//   flo::OverlapRun base = engine.Execute(
//       flo::ScenarioSpec::NonOverlap(shape, flo::CommPrimitive::kAllReduce));
//   double speedup = base.total_us / run.total_us;
//
// Many scenarios sweep through one call (plans are cached, a warm sweep
// never searches):
//   std::vector<flo::ScenarioSpec> specs = ...;
//   std::vector<flo::OverlapRun> runs = engine.RunBatch(specs);
//
// For numerically verified execution on real buffers, use
// flo::FunctionalOverlap.
//
// For online serving (trace-driven request streams over a shared executor
// with a concurrent, evicting PlanStore), see flo::ServeLoop:
//   auto store = std::make_shared<flo::PlanStore>(/*capacity=*/64);
//   engine.UseSharedPlanStore(store);
//   flo::ServeLoop loop(&engine);
//   flo::ServeReport report = loop.Run(trace);
//
// For a multi-replica serving fleet (plan-affinity routing, plan
// shipping, autoscaling), see flo::ServingCluster:
//   flo::ClusterConfig config{.replicas = 4};
//   flo::ServingCluster fleet(cluster, config);
//   flo::FleetReport fleet_report = fleet.Run(trace);
#ifndef SRC_CORE_FLASHOVERLAP_H_
#define SRC_CORE_FLASHOVERLAP_H_

#include "src/cluster/autoscaler.h"
#include "src/cluster/fleet_router.h"
#include "src/cluster/plan_shipping.h"
#include "src/cluster/replica.h"
#include "src/cluster/serving_cluster.h"
#include "src/comm/cost_model.h"
#include "src/comm/functional.h"
#include "src/comm/primitive.h"
#include "src/core/counting_table.h"
#include "src/core/engine_options.h"
#include "src/core/execution_plan.h"
#include "src/core/functional_overlap.h"
#include "src/core/mapping_table.h"
#include "src/core/overlap_engine.h"
#include "src/core/overlap_planner.h"
#include "src/core/plan_store.h"
#include "src/core/predictor.h"
#include "src/core/reorder.h"
#include "src/core/rmsnorm.h"
#include "src/core/scenario.h"
#include "src/core/schedule_executor.h"
#include "src/core/tuner.h"
#include "src/core/wave_partition.h"
#include "src/gemm/gemm_model.h"
#include "src/gemm/host_gemm.h"
#include "src/gemm/swizzle.h"
#include "src/gemm/tile.h"
#include "src/gemm/wave.h"
#include "src/hw/cluster.h"
#include "src/serve/request_queue.h"
#include "src/serve/request_source.h"
#include "src/serve/serve_loop.h"
#include "src/serve/serve_session.h"
#include "src/serve/serve_stats.h"

#endif  // SRC_CORE_FLASHOVERLAP_H_
