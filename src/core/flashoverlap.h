// Umbrella header: the FlashOverlap public API.
//
// Typical use:
//   flo::ClusterSpec cluster = flo::Make4090Cluster(4);
//   flo::OverlapEngine engine(cluster);
//   flo::OverlapRun run = engine.RunOverlap({4096, 8192, 7168},
//                                           flo::CommPrimitive::kAllReduce);
//   double speedup = engine.RunNonOverlap(...) / run.total_us;
//
// For numerically verified execution on real buffers, use
// flo::FunctionalOverlap.
#ifndef SRC_CORE_FLASHOVERLAP_H_
#define SRC_CORE_FLASHOVERLAP_H_

#include "src/comm/cost_model.h"
#include "src/comm/functional.h"
#include "src/comm/primitive.h"
#include "src/core/counting_table.h"
#include "src/core/functional_overlap.h"
#include "src/core/mapping_table.h"
#include "src/core/overlap_engine.h"
#include "src/core/predictor.h"
#include "src/core/reorder.h"
#include "src/core/rmsnorm.h"
#include "src/core/tuner.h"
#include "src/core/wave_partition.h"
#include "src/gemm/gemm_model.h"
#include "src/gemm/host_gemm.h"
#include "src/gemm/swizzle.h"
#include "src/gemm/tile.h"
#include "src/gemm/wave.h"
#include "src/hw/cluster.h"

#endif  // SRC_CORE_FLASHOVERLAP_H_
