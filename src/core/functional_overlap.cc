#include "src/core/functional_overlap.h"

#include <algorithm>
#include <numeric>

#include "src/comm/functional.h"
#include "src/core/counting_table.h"
#include "src/core/reorder.h"
#include "src/core/rmsnorm.h"
#include "src/gemm/host_gemm.h"
#include "src/gemm/swizzle.h"
#include "src/gemm/wave.h"
#include "src/util/check.h"

namespace flo {
namespace {

// Builds (grid, schedule, mapping) for one shape/partition under the
// functional options. The partition must match the schedule's wave count.
struct Plan {
  TileGrid grid;
  std::vector<int> launch_order;
  WaveSchedule schedule;
  TileMapping mapping;
};

// Largest power-of-two tile edge (<= 64) dividing the dimension, so the
// functional path always works on full uniform tiles as the device staging
// layout requires.
int DivisibleTileEdge(int64_t dim) {
  for (int edge : {64, 32, 16, 8, 4, 2}) {
    if (dim % edge == 0) {
      return edge;
    }
  }
  return 1;
}

TileShape SelectFunctionalTile(const GemmShape& shape) {
  return TileShape{DivisibleTileEdge(shape.m), DivisibleTileEdge(shape.n)};
}

Plan MakePlan(const GemmShape& shape, const FunctionalOptions& options,
              const WavePartition& partition) {
  const TileShape tile = SelectFunctionalTile(shape);
  TileGrid grid(shape, tile);
  std::vector<int> launch_order = SwizzledLaunchOrder(grid, options.swizzle_size);
  WaveSchedule schedule(launch_order, options.wave_width);
  WavePartition scaled;
  if (partition.group_count() == 0) {
    // Unspecified partition: a reasonable default grouping.
    scaled = WavePartition::EqualSized(schedule.wave_count(), 2);
  } else if (partition.TotalWaves() == schedule.wave_count()) {
    scaled = partition;
  } else if (partition.group_count() > schedule.wave_count()) {
    // More groups requested than waves exist: the finest legal grouping.
    scaled = WavePartition::PerWave(schedule.wave_count());
  } else {
    scaled = ScalePartitionExact(partition, schedule.wave_count());
  }
  TileMapping mapping(grid, schedule, scaled);
  return Plan{grid, std::move(launch_order), std::move(schedule), std::move(mapping)};
}

}  // namespace

FunctionalOverlap::FunctionalOverlap(FunctionalOptions options) : options_(options) {
  FLO_CHECK_GE(options_.gpu_count, 2);
  FLO_CHECK_GE(options_.wave_width, 1);
  FLO_CHECK_GE(options_.swizzle_size, 1);
}

void FunctionalOverlap::RunSignalingGemms(
    const TileGrid& grid, const TileMapping& mapping,
    const std::vector<std::vector<float>>& rank_a, const std::vector<std::vector<float>>& rank_b,
    const std::function<void(int rank, int tile, std::span<const float>)>& scatter,
    const std::function<void(int group)>& on_group_ready) const {
  const int n = options_.gpu_count;
  FLO_CHECK_EQ(rank_a.size(), static_cast<size_t>(n));
  FLO_CHECK_EQ(rank_b.size(), static_cast<size_t>(n));
  HostGemm gemm(grid.shape(), grid.tile());
  const std::vector<int> launch_order =
      SwizzledLaunchOrder(grid, options_.swizzle_size);

  // One counting table per rank plus a cross-rank arrival count per group:
  // a group's communication may start only when every rank signalled it.
  std::vector<CountingTable> tables;
  tables.reserve(n);
  for (int r = 0; r < n; ++r) {
    tables.emplace_back(mapping.GroupTileTargets());
  }
  std::vector<int> arrivals(mapping.group_count(), 0);

  for (int r = 0; r < n; ++r) {
    gemm.ComputeWithSink(rank_a[r], rank_b[r], options_.epilogue, {}, launch_order,
                         [&](int tile, std::span<const float> values) {
                           scatter(r, tile, values);
                           const int group = mapping.GroupOfTile(tile);
                           if (tables[r].RecordTile(group)) {
                             if (++arrivals[group] == n) {
                               on_group_ready(group);
                             }
                           }
                         });
  }
  for (int g = 0; g < mapping.group_count(); ++g) {
    FLO_CHECK_EQ(arrivals[g], n) << "group " << g << " never became ready";
  }
}

std::vector<std::vector<float>> FunctionalOverlap::RunAllReduce(
    const GemmShape& shape, const WavePartition& partition,
    const std::vector<std::vector<float>>& rank_a, const std::vector<std::vector<float>>& rank_b) {
  const int n = options_.gpu_count;
  Plan plan = MakePlan(shape, options_, partition);
  std::vector<std::vector<float>> staging(
      n, std::vector<float>(plan.mapping.total_elems(), 0.0f));

  RunSignalingGemms(
      plan.grid, plan.mapping, rank_a, rank_b,
      [&](int rank, int tile, std::span<const float> values) {
        ScatterTileToStaging(plan.mapping, tile, values, staging[rank]);
      },
      [&](int group) {
        // Communication of exactly the group's contiguous range — the only
        // thing a library API needs.
        const GroupInfo& info = plan.mapping.group(group);
        std::vector<std::span<float>> spans;
        spans.reserve(n);
        for (int r = 0; r < n; ++r) {
          spans.emplace_back(staging[r].data() + info.elem_begin,
                             static_cast<size_t>(info.elem_count));
        }
        FunctionalAllReduce(spans);
      });

  std::vector<std::vector<float>> result(
      n, std::vector<float>(static_cast<size_t>(shape.m * shape.n), 0.0f));
  for (int r = 0; r < n; ++r) {
    GatherStagingToMatrix(plan.mapping, staging[r], result[r]);
  }
  return result;
}

std::vector<std::vector<float>> FunctionalOverlap::RunAllReduceRmsNorm(
    const GemmShape& shape, const WavePartition& partition,
    const std::vector<std::vector<float>>& rank_a, const std::vector<std::vector<float>>& rank_b) {
  const int n = options_.gpu_count;
  Plan plan = MakePlan(shape, options_, partition);
  std::vector<std::vector<float>> staging(
      n, std::vector<float>(plan.mapping.total_elems(), 0.0f));
  RunSignalingGemms(
      plan.grid, plan.mapping, rank_a, rank_b,
      [&](int rank, int tile, std::span<const float> values) {
        ScatterTileToStaging(plan.mapping, tile, values, staging[rank]);
      },
      [&](int group) {
        const GroupInfo& info = plan.mapping.group(group);
        std::vector<std::span<float>> spans;
        spans.reserve(n);
        for (int r = 0; r < n; ++r) {
          spans.emplace_back(staging[r].data() + info.elem_begin,
                             static_cast<size_t>(info.elem_count));
        }
        FunctionalAllReduce(spans);
      });
  std::vector<std::vector<float>> result(
      n, std::vector<float>(static_cast<size_t>(shape.m * shape.n), 0.0f));
  for (int r = 0; r < n; ++r) {
    // Post-communication reorder fused into the element-wise kernel.
    RmsNormFromStaging(plan.mapping, staging[r], options_.rmsnorm_eps, result[r]);
  }
  return result;
}

std::vector<std::vector<float>> FunctionalOverlap::RunReduceScatterAllGather(
    const GemmShape& shape, const WavePartition& partition,
    const std::vector<std::vector<float>>& rank_a, const std::vector<std::vector<float>>& rank_b,
    bool rmsnorm) {
  const int n = options_.gpu_count;
  Plan plan = MakePlan(shape, options_, partition);
  FLO_CHECK_EQ(shape.m % (static_cast<int64_t>(plan.grid.tile().m)), 0);
  std::vector<std::vector<float>> staging(
      n, std::vector<float>(plan.mapping.total_elems(), 0.0f));
  std::vector<std::vector<float>> recv(
      n, std::vector<float>(plan.mapping.total_elems() / n, 0.0f));

  RunSignalingGemms(
      plan.grid, plan.mapping, rank_a, rank_b,
      [&](int rank, int tile, std::span<const float> values) {
        ScatterTileSubtiles(plan.mapping, n, tile, values, staging[rank]);
      },
      [&](int group) {
        const GroupInfo& info = plan.mapping.group(group);
        std::vector<std::span<const float>> in;
        std::vector<std::span<float>> out;
        in.reserve(n);
        out.reserve(n);
        for (int r = 0; r < n; ++r) {
          in.emplace_back(staging[r].data() + info.elem_begin,
                          static_cast<size_t>(info.elem_count));
          out.emplace_back(recv[r].data() + info.elem_begin / n,
                           static_cast<size_t>(info.elem_count / n));
        }
        FunctionalReduceScatter(in, out);
      });

  // Each rank materializes its complete rows, applies the element-wise op,
  // then the group AllGather + row exchange restores the full matrix.
  const int64_t rows_per_rank = shape.m / n;
  std::vector<std::vector<float>> rank_rows(
      n, std::vector<float>(static_cast<size_t>(rows_per_rank * shape.n), 0.0f));
  for (int r = 0; r < n; ++r) {
    RsGatherRows(plan.mapping, n, r, recv[r], rank_rows[r]);
    if (rmsnorm) {
      std::vector<float> normalized(rank_rows[r].size());
      RmsNorm(rank_rows[r], rows_per_rank, shape.n, options_.rmsnorm_eps, normalized);
      rank_rows[r] = std::move(normalized);
    }
  }
  std::vector<std::span<const float>> gather_in;
  gather_in.reserve(n);
  for (int r = 0; r < n; ++r) {
    gather_in.emplace_back(rank_rows[r].data(), rank_rows[r].size());
  }
  std::vector<std::vector<float>> gathered(
      n, std::vector<float>(static_cast<size_t>(shape.m * shape.n), 0.0f));
  std::vector<std::span<float>> gather_out;
  gather_out.reserve(n);
  for (int r = 0; r < n; ++r) {
    gather_out.emplace_back(gathered[r].data(), gathered[r].size());
  }
  FunctionalAllGather(gather_in, gather_out);

  std::vector<std::vector<float>> result(
      n, std::vector<float>(static_cast<size_t>(shape.m * shape.n), 0.0f));
  for (int r = 0; r < n; ++r) {
    RsRowExchange(plan.mapping, n, gathered[r], result[r]);
  }
  return result;
}

std::vector<std::vector<float>> FunctionalOverlap::RunAllToAll(
    const std::vector<GemmShape>& shapes, const WavePartition& base_partition,
    const std::vector<std::vector<int>>& routes, const std::vector<std::vector<float>>& rank_a,
    const std::vector<std::vector<float>>& rank_b) {
  const int n = options_.gpu_count;
  FLO_CHECK_EQ(shapes.size(), static_cast<size_t>(n));
  FLO_CHECK_EQ(routes.size(), static_cast<size_t>(n));

  // Per-rank plans; every rank rescales the base partition to its own wave
  // count while keeping the group count identical (collectives rendezvous).
  // The base must therefore fit the lightest rank's wave count.
  int min_waves = INT32_MAX;
  for (int r = 0; r < n; ++r) {
    TileGrid grid(shapes[r], SelectFunctionalTile(shapes[r]));
    min_waves = std::min(
        min_waves, (grid.tile_count() + options_.wave_width - 1) / options_.wave_width);
  }
  WavePartition base = base_partition;
  if (base.group_count() == 0) {
    base = WavePartition::EqualSized(min_waves, 2);
  } else if (base.group_count() > min_waves) {
    base = ScalePartition(base, min_waves);
  }
  std::vector<Plan> plans;
  std::vector<SubtokenLayout> layouts;
  plans.reserve(n);
  layouts.reserve(n);
  for (int r = 0; r < n; ++r) {
    plans.push_back(MakePlan(shapes[r], options_, base));
    FLO_CHECK_EQ(plans[r].mapping.group_count(), plans[0].mapping.group_count());
    layouts.emplace_back(plans[r].mapping, routes[r], n);
  }
  const int groups = plans[0].mapping.group_count();

  std::vector<std::vector<float>> staging(n);
  for (int r = 0; r < n; ++r) {
    staging[r].assign(static_cast<size_t>(layouts[r].total_elems()), 0.0f);
  }

  // Destination-side bookkeeping: local row of each (src, global row).
  std::vector<std::vector<std::vector<int64_t>>> local_row(
      n, std::vector<std::vector<int64_t>>(n));
  std::vector<int64_t> dest_rows(n, 0);
  for (int dest = 0; dest < n; ++dest) {
    int64_t next = 0;
    for (int src = 0; src < n; ++src) {
      local_row[dest][src].assign(static_cast<size_t>(shapes[src].m), -1);
      for (int64_t row = 0; row < shapes[src].m; ++row) {
        if (routes[src][row] == dest) {
          local_row[dest][src][row] = next++;
        }
      }
    }
    dest_rows[dest] = next;
  }
  std::vector<std::vector<float>> result(n);
  for (int dest = 0; dest < n; ++dest) {
    result[dest].assign(static_cast<size_t>(dest_rows[dest] * shapes[dest].n), 0.0f);
  }

  // Run the signaling GEMM on each rank independently (shapes differ), then
  // exchange group-by-group once all ranks reached the group.
  std::vector<CountingTable> tables;
  std::vector<int> arrivals(groups, 0);
  tables.reserve(n);
  for (int r = 0; r < n; ++r) {
    tables.emplace_back(plans[r].mapping.GroupTileTargets());
  }
  auto exchange_group = [&](int g) {
    // Assemble send segments (contiguous per source: the group's pools) and
    // run the library All-to-All.
    std::vector<std::span<const float>> in;
    std::vector<std::vector<int64_t>> send_counts(n, std::vector<int64_t>(n, 0));
    in.reserve(n);
    for (int src = 0; src < n; ++src) {
      in.emplace_back(staging[src].data() + layouts[src].GroupElemBegin(g),
                      static_cast<size_t>(layouts[src].GroupElemCount(g)));
      for (int dest = 0; dest < n; ++dest) {
        send_counts[src][dest] = layouts[src].SendElems(g, dest);
      }
    }
    std::vector<std::vector<float>> recv(n);
    std::vector<std::span<float>> out;
    out.reserve(n);
    for (int dest = 0; dest < n; ++dest) {
      int64_t total = 0;
      for (int src = 0; src < n; ++src) {
        total += send_counts[src][dest];
      }
      recv[dest].assign(static_cast<size_t>(total), 0.0f);
      out.emplace_back(recv[dest].data(), recv[dest].size());
    }
    FunctionalAllToAll(in, send_counts, out);
    // Post-communication reorder on each destination.
    for (int dest = 0; dest < n; ++dest) {
      int64_t cursor = 0;
      for (int src = 0; src < n; ++src) {
        const int64_t elems = send_counts[src][dest];
        A2aScatterReceived(layouts[src], g, dest,
                           std::span<const float>(recv[dest].data() + cursor,
                                                  static_cast<size_t>(elems)),
                           local_row[dest][src], result[dest], shapes[dest].n);
        cursor += elems;
      }
    }
  };

  HostGemm* unused = nullptr;
  (void)unused;
  for (int r = 0; r < n; ++r) {
    HostGemm gemm(shapes[r], plans[r].grid.tile());
    gemm.ComputeWithSink(rank_a[r], rank_b[r], options_.epilogue, {},
                         plans[r].launch_order,
                         [&](int tile, std::span<const float> values) {
                           ScatterTileSubtokens(layouts[r], tile, values, staging[r]);
                           const int group = plans[r].mapping.GroupOfTile(tile);
                           if (tables[r].RecordTile(group)) {
                             if (++arrivals[group] == n) {
                               exchange_group(group);
                             }
                           }
                         });
  }
  for (int g = 0; g < groups; ++g) {
    FLO_CHECK_EQ(arrivals[g], n);
  }
  return result;
}

std::vector<float> FunctionalOverlap::ReferenceAllReduce(
    const GemmShape& shape, const std::vector<std::vector<float>>& rank_a,
    const std::vector<std::vector<float>>& rank_b, bool rmsnorm) const {
  const int n = options_.gpu_count;
  const TileShape tile = SelectTileShape(shape);
  HostGemm gemm(shape, tile);
  std::vector<float> sum(static_cast<size_t>(shape.m * shape.n), 0.0f);
  std::vector<float> c(sum.size());
  for (int r = 0; r < n; ++r) {
    gemm.ComputeRowMajor(rank_a[r], rank_b[r], options_.epilogue, {}, c);
    for (size_t i = 0; i < sum.size(); ++i) {
      sum[i] += c[i];
    }
  }
  if (rmsnorm) {
    std::vector<float> normalized(sum.size());
    RmsNorm(sum, shape.m, shape.n, options_.rmsnorm_eps, normalized);
    return normalized;
  }
  return sum;
}

std::vector<std::vector<float>> FunctionalOverlap::ReferenceAllToAll(
    const std::vector<GemmShape>& shapes, const std::vector<std::vector<int>>& routes,
    const std::vector<std::vector<float>>& rank_a,
    const std::vector<std::vector<float>>& rank_b) const {
  const int n = options_.gpu_count;
  // Vanilla path: full GEMM per rank, then rows delivered to destinations
  // ordered by (source rank, source row).
  std::vector<std::vector<float>> outputs(n);
  for (int r = 0; r < n; ++r) {
    const TileShape tile = SelectTileShape(shapes[r]);
    HostGemm gemm(shapes[r], tile);
    outputs[r].assign(static_cast<size_t>(shapes[r].m * shapes[r].n), 0.0f);
    gemm.ComputeRowMajor(rank_a[r], rank_b[r], options_.epilogue, {}, outputs[r]);
  }
  std::vector<std::vector<float>> result(n);
  for (int dest = 0; dest < n; ++dest) {
    for (int src = 0; src < n; ++src) {
      for (int64_t row = 0; row < shapes[src].m; ++row) {
        if (routes[src][row] == dest) {
          const float* begin = outputs[src].data() + row * shapes[src].n;
          result[dest].insert(result[dest].end(), begin, begin + shapes[src].n);
        }
      }
    }
  }
  return result;
}

}  // namespace flo
