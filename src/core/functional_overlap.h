// Functional (real-data) execution of the full FlashOverlap pipeline.
//
// This path runs the exact mechanism — swizzled tile computation, epilogue
// scatter reorder, counting-table signaling, per-group contiguous-range
// collectives, post-communication reorder — on host buffers, so every
// claim about correctness (paper AE experiment E1: "all close") is checked
// with real numbers rather than assumed. Timing is the OverlapEngine's job.
#ifndef SRC_CORE_FUNCTIONAL_OVERLAP_H_
#define SRC_CORE_FUNCTIONAL_OVERLAP_H_

#include <vector>

#include "src/core/mapping_table.h"
#include "src/core/wave_partition.h"
#include "src/gemm/epilogue.h"
#include "src/gemm/tile.h"

namespace flo {

struct FunctionalOptions {
  int gpu_count = 2;
  // Concurrent tiles per wave (the simulated SM width).
  int wave_width = 4;
  int swizzle_size = 2;
  EpilogueOp epilogue = EpilogueOp::kIdentity;
  float rmsnorm_eps = 1e-5f;
};

class FunctionalOverlap {
 public:
  explicit FunctionalOverlap(FunctionalOptions options);

  const FunctionalOptions& options() const { return options_; }

  // GEMM + AllReduce. rank_a[r] / rank_b[r] are rank r's inputs (each rank
  // computes a partial product, as under tensor parallelism); the result is
  // every rank's post-reorder full matrix (identical across ranks).
  std::vector<std::vector<float>> RunAllReduce(const GemmShape& shape,
                                               const WavePartition& partition,
                                               const std::vector<std::vector<float>>& rank_a,
                                               const std::vector<std::vector<float>>& rank_b);

  // GEMM + AllReduce with the post-reorder fused into RMSNorm (the fused
  // element-wise kernel of Sec. 6.6).
  std::vector<std::vector<float>> RunAllReduceRmsNorm(
      const GemmShape& shape, const WavePartition& partition,
      const std::vector<std::vector<float>>& rank_a,
      const std::vector<std::vector<float>>& rank_b);

  // GEMM + ReduceScatter [+ per-row RMSNorm] + AllGather + row exchange.
  // Returns the final full matrix per rank (identical across ranks, equal
  // to the non-overlap reference).
  std::vector<std::vector<float>> RunReduceScatterAllGather(
      const GemmShape& shape, const WavePartition& partition,
      const std::vector<std::vector<float>>& rank_a,
      const std::vector<std::vector<float>>& rank_b, bool rmsnorm);

  // GEMM + All-to-All (expert-parallel epilogue exchange). Rank r computes
  // an (m_r x n) output whose row i is routed to GPU route[r][i]. Returns,
  // per destination rank, the received token matrix with rows ordered by
  // (source rank, source row) — matching the vanilla A2A reference.
  std::vector<std::vector<float>> RunAllToAll(const std::vector<GemmShape>& shapes,
                                              const WavePartition& base_partition,
                                              const std::vector<std::vector<int>>& routes,
                                              const std::vector<std::vector<float>>& rank_a,
                                              const std::vector<std::vector<float>>& rank_b);

  // --- Non-overlap references (vanilla GEMM then library collective) ---
  std::vector<float> ReferenceAllReduce(const GemmShape& shape,
                                        const std::vector<std::vector<float>>& rank_a,
                                        const std::vector<std::vector<float>>& rank_b,
                                        bool rmsnorm) const;

  std::vector<std::vector<float>> ReferenceAllToAll(
      const std::vector<GemmShape>& shapes, const std::vector<std::vector<int>>& routes,
      const std::vector<std::vector<float>>& rank_a,
      const std::vector<std::vector<float>>& rank_b) const;

 private:
  struct Staged {
    TileGrid grid;
    TileMapping mapping;
    std::vector<std::vector<float>> rank_staging;
  };

  // Runs the signaling GEMM on every rank: tiles computed in swizzled
  // launch order, scattered via `scatter`, counted; fires `on_group_ready`
  // once per group when all ranks completed it.
  void RunSignalingGemms(
      const TileGrid& grid, const TileMapping& mapping,
      const std::vector<std::vector<float>>& rank_a,
      const std::vector<std::vector<float>>& rank_b,
      const std::function<void(int rank, int tile, std::span<const float>)>& scatter,
      const std::function<void(int group)>& on_group_ready) const;

  FunctionalOptions options_;
};

}  // namespace flo

#endif  // SRC_CORE_FUNCTIONAL_OVERLAP_H_
