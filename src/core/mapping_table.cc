#include "src/core/mapping_table.h"

#include <functional>
#include <sstream>
#include <utility>

#include "src/util/check.h"

namespace flo {

TileMapping::TileMapping(const TileGrid& grid, const WaveSchedule& schedule,
                         const WavePartition& partition)
    : grid_(grid), partition_(partition) {
  FLO_CHECK(partition.Valid(schedule.wave_count()))
      << "partition " << partition.ToString() << " does not cover " << schedule.wave_count()
      << " waves";
  FLO_CHECK_EQ(schedule.tile_count(), grid.tile_count());
  FLO_CHECK_EQ(grid.shape().m % grid.tile().m, 0)
      << "overlap path requires M divisible by tile_m";
  FLO_CHECK_EQ(grid.shape().n % grid.tile().n, 0)
      << "overlap path requires N divisible by tile_n";
  tile_elems_ = grid.tile().Elements();

  slot_of_tile_.assign(grid.tile_count(), -1);
  tile_of_slot_.assign(grid.tile_count(), -1);
  group_of_tile_.assign(grid.tile_count(), -1);

  int wave = 0;
  int slot = 0;
  for (int g = 0; g < partition.group_count(); ++g) {
    GroupInfo info;
    info.first_wave = wave;
    info.wave_count = partition.group_sizes[g];
    info.slot_begin = slot;
    info.elem_begin = static_cast<int64_t>(slot) * tile_elems_;
    for (int w = 0; w < info.wave_count; ++w, ++wave) {
      for (int tile : schedule.WaveTiles(wave)) {
        info.tiles.push_back(tile);
        slot_of_tile_[tile] = slot;
        tile_of_slot_[slot] = tile;
        group_of_tile_[tile] = g;
        ++slot;
      }
    }
    info.elem_count = static_cast<int64_t>(info.tile_count()) * tile_elems_;
    FLO_CHECK_GT(info.tile_count(), 0) << "empty wave group";
    groups_.push_back(std::move(info));
  }
  FLO_CHECK_EQ(wave, schedule.wave_count());
  FLO_CHECK_EQ(slot, grid.tile_count());
}

const GroupInfo& TileMapping::group(int g) const {
  FLO_CHECK_GE(g, 0);
  FLO_CHECK_LT(g, group_count());
  return groups_[g];
}

int TileMapping::SlotOfTile(int tile) const {
  FLO_CHECK_GE(tile, 0);
  FLO_CHECK_LT(tile, tile_count());
  return slot_of_tile_[tile];
}

int TileMapping::TileOfSlot(int slot) const {
  FLO_CHECK_GE(slot, 0);
  FLO_CHECK_LT(slot, tile_count());
  return tile_of_slot_[slot];
}

int TileMapping::GroupOfTile(int tile) const {
  FLO_CHECK_GE(tile, 0);
  FLO_CHECK_LT(tile, tile_count());
  return group_of_tile_[tile];
}

int64_t TileMapping::TileElemOffset(int tile) const {
  return static_cast<int64_t>(SlotOfTile(tile)) * tile_elems_;
}

int64_t TileMapping::SubtileElems(int gpu_count) const {
  FLO_CHECK_GE(gpu_count, 2);
  FLO_CHECK_EQ(grid_.tile().m % gpu_count, 0)
      << "ReduceScatter layout requires tile_m divisible by GPU count";
  return tile_elems_ / gpu_count;
}

int64_t TileMapping::SubtileElemOffset(int tile, int part, int gpu_count) const {
  FLO_CHECK_GE(part, 0);
  FLO_CHECK_LT(part, gpu_count);
  const int64_t sub_elems = SubtileElems(gpu_count);
  const int group_index = GroupOfTile(tile);
  const GroupInfo& info = groups_[group_index];
  const int local_slot = SlotOfTile(tile) - info.slot_begin;
  // Group range = gpu_count equal parts; part k holds the k-th subtile of
  // every tile in the group, in local slot order. A plain ReduceScatter of
  // the range then delivers part k to GPU k.
  return info.elem_begin + static_cast<int64_t>(part) * info.tile_count() * sub_elems +
         static_cast<int64_t>(local_slot) * sub_elems;
}

std::vector<int> TileMapping::GroupTileTargets() const {
  std::vector<int> targets;
  targets.reserve(groups_.size());
  for (const auto& info : groups_) {
    targets.push_back(info.tile_count());
  }
  return targets;
}

std::string TileMapping::ToString() const {
  std::ostringstream out;
  out << "TileMapping{" << grid_.shape().ToString() << ", partition "
      << partition_.ToString() << ", groups:";
  for (const auto& info : groups_) {
    out << " [slots " << info.slot_begin << ".." << info.slot_begin + info.tile_count() - 1
        << "]";
  }
  out << "}";
  return out.str();
}

SubtokenLayout::SubtokenLayout(const TileMapping& mapping, std::vector<int> route, int gpu_count)
    : mapping_(&mapping), route_(std::move(route)), gpu_count_(gpu_count) {
  FLO_CHECK_GE(gpu_count_, 2);
  const TileGrid& grid = mapping.grid();
  FLO_CHECK_EQ(route_.size(), static_cast<size_t>(grid.shape().m))
      << "route table must cover every output row";
  for (int dest : route_) {
    FLO_CHECK_GE(dest, 0);
    FLO_CHECK_LT(dest, gpu_count_);
  }
  subtoken_elems_ = grid.tile().n;
  const int tile_m = grid.tile().m;

  // Pass 1: per-(group, dest) subtoken counts.
  const int groups = mapping.group_count();
  std::vector<std::vector<int64_t>> counts(groups, std::vector<int64_t>(gpu_count_, 0));
  for (int g = 0; g < groups; ++g) {
    for (int tile : mapping.group(g).tiles) {
      const int64_t row0 = grid.RowStart(tile);
      for (int r = 0; r < tile_m; ++r) {
        ++counts[g][route_[row0 + r]];
      }
    }
  }
  // Pass 2: pool offsets (group-major, then destination).
  pool_offset_.assign(groups, std::vector<int64_t>(gpu_count_, 0));
  pool_elems_.assign(groups, std::vector<int64_t>(gpu_count_, 0));
  int64_t offset = 0;
  for (int g = 0; g < groups; ++g) {
    for (int d = 0; d < gpu_count_; ++d) {
      pool_offset_[g][d] = offset;
      pool_elems_[g][d] = counts[g][d] * subtoken_elems_;
      offset += pool_elems_[g][d];
    }
  }
  // Pass 3: per-row scatter offsets, appending within each pool in
  // (launch-order, row) order.
  row_offset_.assign(static_cast<size_t>(grid.tile_count()) * tile_m, -1);
  std::vector<std::vector<int64_t>> cursor = pool_offset_;
  for (int g = 0; g < groups; ++g) {
    for (int tile : mapping.group(g).tiles) {
      const int64_t row0 = grid.RowStart(tile);
      for (int r = 0; r < tile_m; ++r) {
        const int dest = route_[row0 + r];
        row_offset_[static_cast<size_t>(tile) * tile_m + r] = cursor[g][dest];
        cursor[g][dest] += subtoken_elems_;
      }
    }
  }
}

int64_t SubtokenLayout::total_elems() const {
  const auto& last = pool_offset_.back();
  return last.back() + pool_elems_.back().back();
}

int64_t SubtokenLayout::GroupElemBegin(int group) const {
  FLO_CHECK_GE(group, 0);
  FLO_CHECK_LT(group, static_cast<int>(pool_offset_.size()));
  return pool_offset_[group][0];
}

int64_t SubtokenLayout::GroupElemCount(int group) const {
  int64_t total = 0;
  for (int d = 0; d < gpu_count_; ++d) {
    total += pool_elems_[group][d];
  }
  return total;
}

int64_t SubtokenLayout::SendElems(int group, int dest) const {
  FLO_CHECK_GE(dest, 0);
  FLO_CHECK_LT(dest, gpu_count_);
  return pool_elems_[group][dest];
}

int64_t SubtokenLayout::SubtokenElemOffset(int tile, int row_in_tile) const {
  const int tile_m = mapping_->grid().tile().m;
  FLO_CHECK_GE(row_in_tile, 0);
  FLO_CHECK_LT(row_in_tile, tile_m);
  const int64_t offset = row_offset_[static_cast<size_t>(tile) * tile_m + row_in_tile];
  FLO_CHECK_GE(offset, 0);
  return offset;
}

void SubtokenLayout::ForEachSubtoken(
    int group, int dest, const std::function<void(int tile, int row_in_tile)>& fn) const {
  const TileGrid& grid = mapping_->grid();
  const int tile_m = grid.tile().m;
  for (int tile : mapping_->group(group).tiles) {
    const int64_t row0 = grid.RowStart(tile);
    for (int r = 0; r < tile_m; ++r) {
      if (route_[row0 + r] == dest) {
        fn(tile, r);
      }
    }
  }
}

}  // namespace flo
