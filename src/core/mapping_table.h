// Mapping tables for the pre/post-communication reorderings (Sec. 3.3).
//
// The pre-communication reorder writes each finished tile into a contiguous
// *slot* of a staging buffer. Slots are ordered by wave group, then by
// launch order inside the group — so when a group's last tile lands, the
// group occupies one contiguous address range and a plain NCCL call on that
// range is legal. The mapping table records tile <-> slot and is all the
// post-communication reorder needs to restore logical order.
//
// Three granularities (Fig. 7):
//  * tile      — AllReduce: any consistent order works across ranks.
//  * subtile   — ReduceScatter: each tile splits into gpu_count row-chunks;
//                the k-th chunk of every tile must land on GPU k, so each
//                group's range is laid out as gpu_count equal parts.
//  * subtoken  — All-to-All: each tile row (token fragment) has a routed
//                destination GPU; per-destination memory pools inside each
//                group keep destinations contiguous.
#ifndef SRC_CORE_MAPPING_TABLE_H_
#define SRC_CORE_MAPPING_TABLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/wave_partition.h"
#include "src/gemm/tile.h"
#include "src/gemm/wave.h"

namespace flo {

struct GroupInfo {
  int first_wave = 0;
  int wave_count = 0;
  // Tiles in launch order; local slot of tiles[i] is slot_begin + i.
  std::vector<int> tiles;
  int slot_begin = 0;
  int64_t elem_begin = 0;
  int64_t elem_count = 0;

  int tile_count() const { return static_cast<int>(tiles.size()); }
};

class TileMapping {
 public:
  // Requires full uniform tiles (shape divisible by the tile shape): the
  // staging buffer is slot-addressed with a single tile stride, exactly as
  // the CUDA implementation requires.
  TileMapping(const TileGrid& grid, const WaveSchedule& schedule,
              const WavePartition& partition);

  const TileGrid& grid() const { return grid_; }
  const WavePartition& partition() const { return partition_; }
  int tile_count() const { return grid_.tile_count(); }
  int64_t tile_elems() const { return tile_elems_; }
  int64_t total_elems() const { return tile_elems_ * tile_count(); }
  int group_count() const { return static_cast<int>(groups_.size()); }
  const std::vector<GroupInfo>& groups() const { return groups_; }
  const GroupInfo& group(int g) const;

  int SlotOfTile(int tile) const;
  int TileOfSlot(int slot) const;
  int GroupOfTile(int tile) const;

  // Element offset of a tile's slot in the staging buffer (tile
  // granularity, used for AllReduce).
  int64_t TileElemOffset(int tile) const;

  // Element offset of subtile `part` (0..gpu_count-1) of `tile` under the
  // ReduceScatter layout. Requires tile.m divisible by gpu_count.
  int64_t SubtileElemOffset(int tile, int part, int gpu_count) const;
  int64_t SubtileElems(int gpu_count) const;

  // Per-group tile counts — the counting-table targets.
  std::vector<int> GroupTileTargets() const;

  std::string ToString() const;

 private:
  TileGrid grid_;
  WavePartition partition_;
  int64_t tile_elems_ = 0;
  std::vector<GroupInfo> groups_;
  std::vector<int> slot_of_tile_;
  std::vector<int> tile_of_slot_;
  std::vector<int> group_of_tile_;
};

// Subtoken (All-to-All) staging layout for one source rank.
//
// Staging order: group-major, then destination pool, then (tile launch
// order, row within tile). `route[global_row]` gives the destination rank
// of each output row (token).
//
// Lifetime: the layout keeps a pointer to `mapping`; the mapping must
// outlive the layout and must not be moved/relocated after construction.
class SubtokenLayout {
 public:
  SubtokenLayout(const TileMapping& mapping, std::vector<int> route, int gpu_count);

  int gpu_count() const { return gpu_count_; }
  const TileMapping& mapping() const { return *mapping_; }
  const std::vector<int>& route() const { return route_; }
  // Elements of one subtoken (a tile-row fragment): tile_n.
  int64_t subtoken_elems() const { return subtoken_elems_; }
  int64_t total_elems() const;

  // Contiguous staging range of a group: [GroupElemBegin, +GroupElemCount).
  int64_t GroupElemBegin(int group) const;
  int64_t GroupElemCount(int group) const;

  // Subtokens this rank sends to `dest` within `group`, in elements.
  int64_t SendElems(int group, int dest) const;

  // Scatter offset for tile row `row_in_tile` of `tile` in the staging
  // buffer (pre-communication reorder target).
  int64_t SubtokenElemOffset(int tile, int row_in_tile) const;

  // Iterates the subtokens of `group` destined to `dest` in staging order,
  // invoking fn(tile, row_in_tile). This is the provenance order in which
  // a receiver sees the segment from this source rank.
  void ForEachSubtoken(int group, int dest,
                       const std::function<void(int tile, int row_in_tile)>& fn) const;

 private:
  const TileMapping* mapping_;
  std::vector<int> route_;
  int gpu_count_;
  int64_t subtoken_elems_ = 0;
  // offset_[g][d] = element offset of pool (g, d); pools are contiguous.
  std::vector<std::vector<int64_t>> pool_offset_;
  std::vector<std::vector<int64_t>> pool_elems_;
  // Per-tile-row offsets, indexed by tile * tile_m + row_in_tile.
  std::vector<int64_t> row_offset_;
};

}  // namespace flo

#endif  // SRC_CORE_MAPPING_TABLE_H_
