#include "src/core/overlap_engine.h"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "src/core/predictor.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace flo {

OverlapEngine::OverlapEngine(ClusterSpec cluster, TunerConfig tuner_config,
                             EngineOptions options)
    : cluster_(cluster),
      options_(options),
      tuner_(cluster, tuner_config),
      planner_(&tuner_, &plan_store_),
      executor_(std::move(cluster)) {}

void OverlapEngine::UseSharedPlanStore(std::shared_ptr<PlanStore> store) {
  FLO_CHECK(store != nullptr);
  shared_store_ = std::move(store);
  store_ = shared_store_.get();
  planner_ = OverlapPlanner(&tuner_, store_);
  // Conservative: memoized runs stay valid across stores (plans for a key
  // are deterministic), but a store swap is a deployment boundary — start
  // clean.
  run_memo_.clear();
}

OverlapRun OverlapEngine::Execute(const ScenarioSpec& spec) {
  return ExecuteInternal(spec, /*memoize=*/false);
}

OverlapRun OverlapEngine::ExecuteMemoized(const ScenarioSpec& spec) {
  // Per-scenario option overrides are not part of the MixInto fingerprint,
  // so those specs always take the plain path.
  return ExecuteInternal(spec, /*memoize=*/!spec.options.has_value());
}

OverlapRun OverlapEngine::ExecuteInternal(const ScenarioSpec& spec, bool memoize) {
  const EngineOptions& effective = spec.options.has_value() ? *spec.options : options_;
  bool cache_hit = false;
  // Against a shared store another engine may evict concurrently, so take
  // the plan by value (copied under the store's lock) instead of holding a
  // reference into the map.
  ExecutionPlan owned;
  const ExecutionPlan* plan;
  if (shared_store_ != nullptr) {
    owned = planner_.PlanByValue(spec, &cache_hit);
    plan = &owned;
  } else {
    plan = &planner_.Plan(spec, &cache_hit);
  }
  uint64_t fingerprint = 0;
  if (memoize) {
    StableHash hash;
    spec.MixInto(hash);
    fingerprint = hash.value();
    const auto it = run_memo_.find(fingerprint);
    if (it != run_memo_.end()) {
      OverlapRun run = it->second;
      // Hit/miss is a property of this call's store lookup, not of the
      // memoized one.
      run.plan_cache_hit = cache_hit;
      return run;
    }
  }
  const std::vector<GemmShape> shapes = spec.RankShapes(cluster_.gpu_count);
  std::vector<GemmConfig> configs;
  configs.reserve(shapes.size());
  for (const GemmShape& shape : shapes) {
    configs.push_back(tuner_.GemmConfigFor(shape));
  }
  const uint64_t seed =
      executor_.CaseSeed(shapes[0], spec.primitive, plan->partition, effective.seed_salt);
  OverlapRun run;
  if (spec.kind == ScenarioKind::kNonOverlap) {
    run.partition = plan->partition;
    run.total_us = executor_.ExecuteSequential(*plan, configs, effective, seed);
    run.predicted_us = plan->predicted_non_overlap_us;
  } else {
    run = executor_.ExecuteOverlap(*plan, configs, effective, seed);
    run.predicted_us = plan->predicted_us;
  }
  run.plan_cache_hit = cache_hit;
  if (memoize) {
    OverlapRun cached = run;
    cached.groups.clear();  // keep memo entries small; traces stay per-call
    run_memo_.emplace(fingerprint, std::move(cached));
  }
  return run;
}

std::vector<OverlapRun> OverlapEngine::RunBatch(std::span<const ScenarioSpec> specs) {
  if (options_.tune_threads > 1) {
    PretuneParallel(specs, options_.tune_threads);
  }
  std::vector<OverlapRun> runs;
  runs.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) {
    runs.push_back(Execute(spec));
  }
  return runs;
}

std::vector<PretuneRequest> OverlapEngine::PretuneParallel(
    std::span<const ScenarioSpec> specs, int threads) {
  const auto warm = [this](const PretuneRequest& request) {
    return request.shapes.size() == 1
               ? tuner_.Contains(request.shapes[0], request.primitive)
               : tuner_.ContainsImbalanced(request.shapes, request.primitive);
  };
  const auto run = [this](const PretuneRequest& request) {
    if (request.shapes.size() == 1) {
      tuner_.Tune(request.shapes[0], request.primitive);
    } else {
      tuner_.TuneImbalanced(request.shapes, request.primitive);
    }
  };
  std::vector<PretuneRequest> requests;
  for (const ScenarioSpec& spec : specs) {
    if (store_->Contains(planner_.CanonicalKey(spec))) {
      continue;  // the plan itself is warm; no search will happen
    }
    std::optional<PretuneRequest> request = planner_.TuningRequest(spec);
    if (!request.has_value() || warm(*request)) {
      continue;
    }
    if (std::find(requests.begin(), requests.end(), *request) == requests.end()) {
      requests.push_back(*std::move(request));
    }
  }
  if (requests.empty()) {
    return requests;
  }
  if (threads > 1 && requests.size() > 1) {
    ThreadPool& pool = TunePool(std::min(threads, static_cast<int>(requests.size())));
    for (const PretuneRequest& request : requests) {
      pool.Submit([&run, &request] { run(request); });
    }
    pool.WaitIdle();
  } else {
    for (const PretuneRequest& request : requests) {
      run(request);
    }
  }
  return requests;
}

ThreadPool& OverlapEngine::TunePool(int threads) {
  if (tune_pool_ == nullptr || tune_pool_->thread_count() < threads) {
    tune_pool_ = std::make_unique<ThreadPool>(threads);
  }
  return *tune_pool_;
}

SimTime OverlapEngine::TheoreticalBest(const GemmShape& shape, CommPrimitive primitive) {
  PredictorSetup setup = tuner_.MakeSetup(shape, primitive);
  return TheoreticalOverlapLatency(setup);
}

void OverlapEngine::ExportMetrics(MetricsRegistry* registry) const {
  tuner_.ExportMetrics(registry);
  store_->ExportMetrics(registry);
}

// --- DEPRECATED shims ---

OverlapRun OverlapEngine::RunOverlap(const GemmShape& shape, CommPrimitive primitive,
                                     const WavePartition* forced_partition) {
  return Execute(ScenarioSpec::Overlap(shape, primitive, forced_partition));
}

SimTime OverlapEngine::RunNonOverlap(const GemmShape& shape, CommPrimitive primitive) {
  return Execute(ScenarioSpec::NonOverlap(shape, primitive)).total_us;
}

OverlapRun OverlapEngine::RunOverlapMisconfigured(const GemmShape& shape,
                                                  CommPrimitive primitive, int extra_tiles) {
  return Execute(ScenarioSpec::Misconfigured(shape, primitive, extra_tiles));
}

OverlapRun OverlapEngine::RunOverlapImbalanced(const std::vector<GemmShape>& shapes,
                                               CommPrimitive primitive,
                                               const WavePartition* forced_partition) {
  return Execute(ScenarioSpec::Imbalanced(shapes, primitive, forced_partition));
}

SimTime OverlapEngine::RunNonOverlapImbalanced(const std::vector<GemmShape>& shapes,
                                               CommPrimitive primitive) {
  return Execute(ScenarioSpec::NonOverlapImbalanced(shapes, primitive)).total_us;
}

}  // namespace flo
