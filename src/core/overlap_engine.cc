#include "src/core/overlap_engine.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/comm/collective_op.h"
#include "src/comm/ring_transport.h"
#include "src/core/counting_table.h"
#include "src/core/predictor.h"
#include "src/sim/simulator.h"
#include "src/sim/stream.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace flo {

OverlapEngine::OverlapEngine(ClusterSpec cluster, TunerConfig tuner_config,
                             EngineOptions options)
    : cluster_(cluster), options_(options), tuner_(std::move(cluster), tuner_config) {}

double OverlapEngine::JitterFactor(Rng* rng, double amplitude) const {
  if (!options_.jitter || rng == nullptr) {
    return 1.0;
  }
  // Real kernels only ever run at or below nominal speed: jitter stretches
  // durations, never shrinks them.
  return 1.0 + rng->NextDouble() * amplitude;
}

uint64_t OverlapEngine::CaseSeed(const GemmShape& shape, CommPrimitive primitive,
                                 const WavePartition& partition) const {
  StableHash hash;
  hash.Mix(shape.m).Mix(shape.n).Mix(shape.k);
  hash.Mix(static_cast<int>(primitive));
  hash.Mix(cluster_.gpu_count);
  hash.Mix(cluster_.gpu.name.c_str());
  for (int size : partition.group_sizes) {
    hash.Mix(size);
  }
  hash.Mix(options_.seed_salt);
  return hash.value();
}

OverlapRun OverlapEngine::RunOverlap(const GemmShape& shape, CommPrimitive primitive,
                                     const WavePartition* forced_partition) {
  WavePartition partition;
  double predicted = 0.0;
  if (forced_partition != nullptr) {
    partition = *forced_partition;
    PredictorSetup setup = tuner_.MakeSetup(shape, primitive);
    if (partition.TotalWaves() == setup.EffectiveWaveCount()) {
      predicted = PredictOverlapLatency(setup, partition).latency_us;
    }
  } else {
    const TunedPlan& plan = tuner_.Tune(shape, primitive);
    partition = plan.partition;
    predicted = plan.predicted_us;
  }
  const std::vector<GemmShape> shapes(cluster_.gpu_count, shape);
  PredictorSetup setup = tuner_.MakeSetup(shape, primitive);
  WavePartition effective = partition;
  if (effective.TotalWaves() != setup.EffectiveWaveCount()) {
    effective = partition.group_count() > setup.EffectiveWaveCount()
                    ? WavePartition::PerWave(setup.EffectiveWaveCount())
                    : ScalePartitionExact(partition, setup.EffectiveWaveCount());
  }
  const std::vector<std::vector<int>> group_tiles(cluster_.gpu_count,
                                                  setup.GroupTiles(effective));
  OverlapRun run = RunTimed(shapes, primitive, group_tiles, effective);
  run.predicted_us = predicted;
  return run;
}

OverlapRun OverlapEngine::RunOverlapMisconfigured(const GemmShape& shape,
                                                  CommPrimitive primitive, int extra_tiles) {
  FLO_CHECK_GE(extra_tiles, 0);
  const TunedPlan& plan = tuner_.Tune(shape, primitive);
  PredictorSetup setup = tuner_.MakeSetup(shape, primitive);
  std::vector<int> tiles = setup.GroupTiles(plan.partition);
  // Shift tiles forward: group g waits for `extra_tiles` tiles that really
  // belong to group g+1. The final group keeps the remainder so the totals
  // still cover the GEMM.
  for (size_t g = 0; g + 1 < tiles.size(); ++g) {
    const int moved = std::min(extra_tiles, tiles[g + 1] - 1);
    tiles[g] += moved;
    tiles[g + 1] -= moved;
  }
  const std::vector<GemmShape> shapes(cluster_.gpu_count, shape);
  const std::vector<std::vector<int>> group_tiles(cluster_.gpu_count, tiles);
  return RunTimed(shapes, primitive, group_tiles, plan.partition);
}

OverlapRun OverlapEngine::RunOverlapImbalanced(const std::vector<GemmShape>& shapes,
                                               CommPrimitive primitive,
                                               const WavePartition* forced_partition) {
  FLO_CHECK_EQ(shapes.size(), static_cast<size_t>(cluster_.gpu_count));
  // Tune on the heaviest rank; every rank rescales to its own wave count.
  const GemmShape& reference =
      *std::max_element(shapes.begin(), shapes.end(),
                        [](const GemmShape& a, const GemmShape& b) { return a.m < b.m; });
  WavePartition base = forced_partition != nullptr ? *forced_partition
                                                   : tuner_.Tune(reference, primitive).partition;
  PredictorSetup reference_setup = tuner_.MakeSetup(reference, primitive);
  // Every rank must be able to host one counting-table group per collective
  // call: cap the group count at the lightest rank's wave count by
  // coarsening, then restate the base over the reference's waves.
  int min_waves = reference_setup.EffectiveWaveCount();
  for (const auto& shape : shapes) {
    PredictorSetup setup = tuner_.MakeSetup(shape, primitive);
    min_waves = std::min(min_waves, setup.EffectiveWaveCount());
  }
  if (base.group_count() > min_waves) {
    base = ScalePartitionExact(ScalePartition(base, min_waves),
                               reference_setup.EffectiveWaveCount());
  }
  if (forced_partition == nullptr && base.group_count() > 1) {
    // Multi-rank gating (Sec. 4.2.2 extension): if the rendezvous-aware
    // prediction says the imbalance eats the overlap gain, fall back to
    // the single-group (sequential) plan.
    std::vector<PredictorSetup> setups;
    std::vector<WavePartition> partitions;
    double predicted_non_overlap = 0.0;
    bool scalable = true;
    for (const auto& shape : shapes) {
      PredictorSetup setup = tuner_.MakeSetup(shape, primitive);
      const int waves = setup.EffectiveWaveCount();
      if (base.group_count() > waves) {
        scalable = false;
        break;
      }
      partitions.push_back(ScalePartitionExact(base, waves));
      predicted_non_overlap = std::max(predicted_non_overlap, PredictNonOverlapLatency(setup));
      setups.push_back(std::move(setup));
    }
    if (!scalable || PredictOverlapLatencyMultiRank(setups, partitions).latency_us >=
                         predicted_non_overlap) {
      base = WavePartition::SingleGroup(reference_setup.EffectiveWaveCount());
    }
  }
  // Per-rank group tile counts proportional to the reference rank's
  // grouping: every rank keeps the same group count (the collectives are
  // rendezvous calls) but scales its tile boundaries to its own load.
  const std::vector<int> reference_tiles = reference_setup.GroupTiles(base);
  std::vector<double> fractions;
  fractions.reserve(reference_tiles.size());
  for (int tiles : reference_tiles) {
    fractions.push_back(static_cast<double>(tiles) / reference_setup.gemm.tile_count);
  }
  std::vector<std::vector<int>> group_tiles;
  group_tiles.reserve(shapes.size());
  for (const auto& shape : shapes) {
    const GemmConfig& config = tuner_.GemmConfigFor(shape);
    FLO_CHECK_GE(config.tile_count, static_cast<int>(fractions.size()))
        << "rank too small for the group count";
    group_tiles.push_back(SplitTilesByFractions(config.tile_count, fractions));
  }
  return RunTimed(shapes, primitive, group_tiles, base);
}

SimTime OverlapEngine::RunNonOverlap(const GemmShape& shape, CommPrimitive primitive) {
  return RunNonOverlapImbalanced(std::vector<GemmShape>(cluster_.gpu_count, shape), primitive);
}

SimTime OverlapEngine::RunNonOverlapImbalanced(const std::vector<GemmShape>& shapes,
                                               CommPrimitive primitive) {
  FLO_CHECK_EQ(shapes.size(), static_cast<size_t>(cluster_.gpu_count));
  Rng rng(CaseSeed(shapes[0], primitive, WavePartition::SingleGroup(1)));
  // Sequential: every rank's GEMM runs unconstrained; the collective starts
  // when the slowest rank's GEMM finishes and moves the full payload.
  double gemm_us = 0.0;
  double worst_comm = 0.0;
  for (const auto& shape : shapes) {
    const GemmConfig& config = tuner_.GemmConfigFor(shape);
    double duration = config.duration_us;
    if (options_.reserved_sms > 0) {
      // Co-located work shrinks the wave width even without overlap.
      const int width = std::max(1, cluster_.gpu.sm_count - options_.reserved_sms);
      const int waves = (config.tile_count + width - 1) / width;
      duration = waves * config.wave_time_us + cluster_.gpu.kernel_launch_overhead_us;
    }
    gemm_us = std::max(gemm_us, duration * JitterFactor(&rng, options_.wave_jitter));
    const double bytes = shape.OutputBytes(tuner_.config().element_size);
    worst_comm = std::max(worst_comm, tuner_.cost_model().LatencyUs(primitive, bytes));
  }
  return gemm_us + worst_comm * JitterFactor(&rng, options_.comm_jitter);
}

SimTime OverlapEngine::TheoreticalBest(const GemmShape& shape, CommPrimitive primitive) {
  PredictorSetup setup = tuner_.MakeSetup(shape, primitive);
  return TheoreticalOverlapLatency(setup);
}

OverlapRun OverlapEngine::RunTimed(const std::vector<GemmShape>& shapes,
                                   CommPrimitive primitive,
                                   const std::vector<std::vector<int>>& group_tiles_in,
                                   const WavePartition& report_partition) {
  const int n = cluster_.gpu_count;
  FLO_CHECK_EQ(shapes.size(), static_cast<size_t>(n));
  FLO_CHECK_EQ(group_tiles_in.size(), static_cast<size_t>(n));
  const int group_count = static_cast<int>(group_tiles_in[0].size());
  for (const auto& tiles : group_tiles_in) {
    FLO_CHECK_EQ(static_cast<int>(tiles.size()), group_count);
  }
  const int element_size = tuner_.config().element_size;

  Simulator sim;
  Cluster devices(cluster_);
  Rng rng(CaseSeed(shapes[0], primitive, report_partition));
  if (options_.reserved_sms > 0) {
    for (int r = 0; r < n; ++r) {
      devices.device(r).AcquireSms(options_.reserved_sms);
    }
  }
  // With persistent channels the signal/comm kernels occupy their SMs for
  // the entire overlapped region, matching the predictor's wave-count
  // adjustment; the per-collective acquisition is then disabled. A single
  // group means no concurrency at all — the "don't overlap" fallback —
  // so nothing is reserved and the run degenerates to sequential
  // execution.
  const bool persistent = options_.persistent_comm_sms && group_count > 1;
  const int per_collective_sms = persistent ? 0 : cluster_.link.comm_sm_count;
  if (persistent) {
    for (int r = 0; r < n; ++r) {
      devices.device(r).AcquireSms(cluster_.link.comm_sm_count);
    }
  }

  struct RankState {
    GemmConfig config;
    std::vector<int> group_tiles;      // counting-table targets
    std::vector<int> group_of_slot;    // cumulative boundaries
    std::unique_ptr<CountingTable> table;
    std::unique_ptr<Stream> gemm_stream;
    std::unique_ptr<Stream> comm_stream;
    int tiles_done = 0;
  };
  std::vector<RankState> ranks(n);
  for (int r = 0; r < n; ++r) {
    RankState& state = ranks[r];
    state.config = tuner_.GemmConfigFor(shapes[r]);
    state.group_tiles = group_tiles_in[r];
    state.group_of_slot.reserve(state.config.tile_count);
    for (int g = 0; g < group_count; ++g) {
      for (int i = 0; i < state.group_tiles[g]; ++i) {
        state.group_of_slot.push_back(g);
      }
    }
    FLO_CHECK_EQ(static_cast<int>(state.group_of_slot.size()), state.config.tile_count);
    state.table = std::make_unique<CountingTable>(state.group_tiles);
    state.gemm_stream =
        std::make_unique<Stream>(&sim, &devices.device(r), "gemm" + std::to_string(r));
    state.comm_stream =
        std::make_unique<Stream>(&sim, &devices.device(r), "comm" + std::to_string(r));
  }

  OverlapRun run;
  run.partition = report_partition;
  run.groups.resize(group_count);

  // Collectives: one rendezvous op per group, shared by all ranks. Two
  // implementations: the closed-form CollectiveOp, or the mechanistic
  // per-step ring transport.
  std::vector<std::unique_ptr<CollectiveOp>> collectives;
  std::vector<std::unique_ptr<RingCollectiveOp>> ring_collectives;
  collectives.reserve(group_count);
  ring_collectives.reserve(group_count);
  for (int g = 0; g < group_count; ++g) {
    std::vector<Device*> group_devices;
    group_devices.reserve(n);
    for (int r = 0; r < n; ++r) {
      group_devices.push_back(&devices.device(r));
    }
    // Payload follows the heaviest rank (the call is synchronizing).
    double worst_latency = 0.0;
    double bytes = 0.0;
    for (int r = 0; r < n; ++r) {
      const double rank_bytes = static_cast<double>(ranks[r].group_tiles[g]) *
                                ranks[r].config.tile.Elements() * element_size;
      bytes = std::max(bytes, rank_bytes);
      if (rank_bytes > 0) {
        worst_latency =
            std::max(worst_latency, tuner_.cost_model().LatencyUs(primitive, rank_bytes));
      }
    }
    run.groups[g].group = g;
    run.groups[g].tiles = ranks[0].group_tiles[g];
    run.groups[g].bytes = bytes;
    if (options_.detailed_comm) {
      InterconnectSpec link = cluster_.link;
      link.comm_sm_count = per_collective_sms;
      ring_collectives.push_back(std::make_unique<RingCollectiveOp>(
          "comm_g" + std::to_string(g), std::move(group_devices), link, primitive, bytes,
          nullptr));
      collectives.push_back(nullptr);
    } else {
      const double jitter = JitterFactor(&rng, options_.comm_jitter);
      collectives.push_back(std::make_unique<CollectiveOp>(
          "comm_g" + std::to_string(g), std::move(group_devices), per_collective_sms,
          [worst_latency, jitter]() { return worst_latency * jitter; }, nullptr));
      ring_collectives.push_back(nullptr);
    }
  }

  // Comm streams: per group, a signal kernel (waits for the local counting
  // table, released on a poll boundary) followed by this rank's share of
  // the collective.
  const double poll = options_.signal_poll_interval_us;
  for (int r = 0; r < n; ++r) {
    RankState& state = ranks[r];
    for (int g = 0; g < group_count; ++g) {
      CountingTable* table = state.table.get();
      state.comm_stream->Enqueue(
          "signal_g" + std::to_string(g),
          [table, g, poll, &sim, &run](Simulator&, Stream::DoneFn done) {
            table->OnGroupComplete(g, [done = std::move(done), g, poll, &sim, &run]() {
              // The signal time the paper cares about is when the *last*
              // rank's tiles land; later ranks overwrite earlier ones.
              run.groups[g].signal_time = std::max(run.groups[g].signal_time, sim.Now());
              if (poll > 0.0) {
                // The polling kernel only observes the table on its next
                // query; release on the poll boundary.
                const double remainder = std::fmod(sim.Now(), poll);
                const double wait = remainder == 0.0 ? 0.0 : poll - remainder;
                sim.Schedule(wait, [done = std::move(done)]() { done(); });
              } else {
                done();
              }
            });
          });
      if (options_.detailed_comm) {
        ring_collectives[g]->EnqueueOn(*state.comm_stream, r);
      } else {
        collectives[g]->EnqueueOn(*state.comm_stream, r);
      }
    }
  }

  // GEMM kernels: wave loop with dynamic width = free SMs at wave start.
  const double wave_jitter_amp = options_.wave_jitter;
  for (int r = 0; r < n; ++r) {
    RankState& state = ranks[r];
    Device* device = &devices.device(r);
    state.gemm_stream->Enqueue(
        "gemm", [this, &sim, &rng, state_ptr = &state, device, wave_jitter_amp](
                    Simulator&, Stream::DoneFn done) {
          auto next_wave = std::make_shared<std::function<void()>>();
          *next_wave = [this, &sim, &rng, state_ptr, device, wave_jitter_amp, next_wave,
                        done = std::move(done)]() {
            RankState& state = *state_ptr;
            if (state.tiles_done >= state.config.tile_count) {
              done();
              return;
            }
            const int width = device->ComputeSms();
            const int take = std::min(width, state.config.tile_count - state.tiles_done);
            const double duration =
                state.config.wave_time_us * JitterFactor(&rng, wave_jitter_amp);
            sim.Schedule(duration, [state_ptr, take, next_wave]() {
              RankState& state = *state_ptr;
              for (int i = 0; i < take; ++i) {
                const int slot = state.tiles_done + i;
                state.table->RecordTile(state.group_of_slot[slot]);
              }
              state.tiles_done += take;
              (*next_wave)();
            });
          };
          // Kernel launch overhead precedes the first wave.
          sim.Schedule(cluster_.gpu.kernel_launch_overhead_us, [next_wave]() { (*next_wave)(); });
        });
  }

  sim.Run();

  // Drain checks + trace extraction.
  SimTime total = 0.0;
  SimTime gemm_end = 0.0;
  for (int r = 0; r < n; ++r) {
    FLO_CHECK(ranks[r].gemm_stream->idle()) << "rank " << r << " GEMM never finished";
    FLO_CHECK(ranks[r].comm_stream->idle()) << "rank " << r << " comm stream stalled";
    FLO_CHECK(ranks[r].table->AllComplete());
    total = std::max(total, ranks[r].comm_stream->last_completion_time());
    total = std::max(total, ranks[r].gemm_stream->last_completion_time());
    gemm_end = std::max(gemm_end, ranks[r].gemm_stream->last_completion_time());
  }
  for (int g = 0; g < group_count; ++g) {
    if (options_.detailed_comm) {
      FLO_CHECK(ring_collectives[g]->completed()) << "group " << g << " never ran";
      run.groups[g].comm_start = ring_collectives[g]->start_time();
      run.groups[g].comm_end = ring_collectives[g]->end_time();
    } else {
      FLO_CHECK(collectives[g]->completed()) << "group " << g << " collective never ran";
      run.groups[g].comm_start = collectives[g]->start_time();
      run.groups[g].comm_end = collectives[g]->end_time();
    }
  }
  if (options_.reserved_sms > 0) {
    for (int r = 0; r < n; ++r) {
      devices.device(r).ReleaseSms(options_.reserved_sms);
    }
  }
  if (persistent) {
    for (int r = 0; r < n; ++r) {
      devices.device(r).ReleaseSms(cluster_.link.comm_sm_count);
    }
  }
  run.gemm_timeline = ranks[0].gemm_stream->timeline();
  run.comm_timeline = ranks[0].comm_stream->timeline();
  run.total_us = total;
  run.gemm_end_us = gemm_end;
  return run;
}

}  // namespace flo
