// The FlashOverlap engine: a thin orchestration of the
// ScenarioSpec -> OverlapPlanner -> ScheduleExecutor pipeline.
//
// Describe what to run as a ScenarioSpec (declarative: per-rank shapes,
// primitive, ablation knobs, optional forced partition and per-scenario
// options); the planner turns it into a cached ExecutionPlan; the executor
// replays the plan on the simulated cluster. RunBatch sweeps many specs
// through one shared executor, reusing cached plans — a warm sweep
// performs zero tuner searches.
//
// The legacy Run* entry points survive as one-line shims over
// ScenarioSpec/Execute and are DEPRECATED: new call sites should build a
// ScenarioSpec directly.
#ifndef SRC_CORE_OVERLAP_ENGINE_H_
#define SRC_CORE_OVERLAP_ENGINE_H_

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/comm/cost_model.h"
#include "src/core/engine_options.h"
#include "src/core/overlap_planner.h"
#include "src/core/plan_store.h"
#include "src/core/scenario.h"
#include "src/core/schedule_executor.h"
#include "src/core/tuner.h"
#include "src/core/wave_partition.h"
#include "src/hw/cluster.h"
#include "src/sim/event_queue.h"
#include "src/sim/timeline.h"
#include "src/util/thread_pool.h"

namespace flo {

class OverlapEngine {
 public:
  explicit OverlapEngine(ClusterSpec cluster, TunerConfig tuner_config = {},
                         EngineOptions options = {});

  Tuner& tuner() { return tuner_; }
  OverlapPlanner& planner() { return planner_; }
  // The active store: the engine-owned one, or the shared one after
  // UseSharedPlanStore.
  PlanStore& plan_store() { return *store_; }
  ScheduleExecutor& executor() { return executor_; }
  const ClusterSpec& cluster() const { return cluster_; }
  const EngineOptions& options() const { return options_; }

  // Shared-store mode (the paper's plans are "cached and reusable across
  // serving processes"): repoints the planner at an external, possibly
  // capacity-bounded PlanStore so several engines/serving loops reuse each
  // other's plans. Cross-engine reuse only happens between identical
  // deployments — the canonical key covers cluster and tuner config.
  // Resets planner stats (they described the old store).
  void UseSharedPlanStore(std::shared_ptr<PlanStore> store);

  // Executes one scenario end to end: plan (cached) then schedule. For
  // ScenarioKind::kNonOverlap only `total_us`, `predicted_us` and
  // `partition` are populated.
  OverlapRun Execute(const ScenarioSpec& spec);

  // Execute with result memoization for serving loops that replay the same
  // scenario many times (fleet runs execute each distinct spec thousands of
  // times). The plan-store lookup still happens on every call — store
  // hit/miss counters, LRU recency, and planner stats advance exactly as
  // with Execute, and plan_cache_hit reflects the fresh lookup — but on a
  // repeat spec the deterministic simulation itself (gemm configs, seeded
  // schedule replay) is skipped and the cached result returned with
  // `groups` traces empty. Specs carrying per-scenario options bypass the
  // memo entirely (their engine options are not part of the fingerprint).
  OverlapRun ExecuteMemoized(const ScenarioSpec& spec);

  // Sweeps many scenarios through the shared executor. Plans are reused
  // across calls via the PlanStore, so repeating a sweep performs zero
  // tuner searches; planner().stats() exposes the hit/miss counts. With
  // EngineOptions::tune_threads > 1 a cold sweep first runs every distinct
  // predictive search on a worker pool (PretuneParallel), so tuning cost
  // scales down with cores while results stay bit-identical.
  std::vector<OverlapRun> RunBatch(std::span<const ScenarioSpec> specs);

  // Pre-warms the tuner cache for every spec whose plan is absent from the
  // active store: collects the distinct tuner searches those specs would
  // trigger (balanced Tune or imbalanced TuneImbalanced, see
  // PretuneRequest) and runs them on `threads` workers (sequentially for
  // threads <= 1 or a single request). Returns the claimed searches in
  // spec order (first spec to need a search claims it) — callers charging
  // tuning cost attribute from this list rather than re-deriving the
  // decision. Safe against a shared PlanStore — the tuner single-flights
  // concurrent searches per key, so plans are deterministic regardless of
  // the thread count.
  std::vector<PretuneRequest> PretuneParallel(std::span<const ScenarioSpec> specs,
                                              int threads);

  // Perfect-overlap bound (Sec. 6.4).
  SimTime TheoreticalBest(const GemmShape& shape, CommPrimitive primitive);

  // Observability mirror: exports the tuner's and the active plan
  // store's totals into registry gauges — the checkpoint-poller body
  // serving layers register on an attached ObsPlane.
  void ExportMetrics(MetricsRegistry* registry) const;

  // --- DEPRECATED shims over ScenarioSpec/Execute ---

  // DEPRECATED: use Execute(ScenarioSpec::Overlap(...)).
  OverlapRun RunOverlap(const GemmShape& shape, CommPrimitive primitive,
                        const WavePartition* forced_partition = nullptr);
  // DEPRECATED: use Execute(ScenarioSpec::NonOverlap(...)).total_us.
  SimTime RunNonOverlap(const GemmShape& shape, CommPrimitive primitive);
  // DEPRECATED: use Execute(ScenarioSpec::Misconfigured(...)).
  OverlapRun RunOverlapMisconfigured(const GemmShape& shape, CommPrimitive primitive,
                                     int extra_tiles);
  // DEPRECATED: use Execute(ScenarioSpec::Imbalanced(...)).
  OverlapRun RunOverlapImbalanced(const std::vector<GemmShape>& shapes, CommPrimitive primitive,
                                  const WavePartition* forced_partition = nullptr);
  // DEPRECATED: use Execute(ScenarioSpec::NonOverlapImbalanced(...)).total_us.
  SimTime RunNonOverlapImbalanced(const std::vector<GemmShape>& shapes, CommPrimitive primitive);

 private:
  OverlapRun ExecuteInternal(const ScenarioSpec& spec, bool memoize);

  // The persistent tuning pool, created lazily by the first parallel
  // pretune and reused afterwards (grown if a later call asks for more
  // workers) — per-call pool construction would cost more than the
  // searches it parallelizes now that a B&B search is microseconds.
  ThreadPool& TunePool(int threads);

  ClusterSpec cluster_;
  EngineOptions options_;
  Tuner tuner_;
  PlanStore plan_store_;
  std::shared_ptr<PlanStore> shared_store_;  // set by UseSharedPlanStore
  PlanStore* store_ = &plan_store_;          // the store planner_ memoizes into
  OverlapPlanner planner_;
  ScheduleExecutor executor_;
  std::unique_ptr<ThreadPool> tune_pool_;
  // ExecuteMemoized results keyed by the spec's order-sensitive content
  // fingerprint (ScenarioSpec::MixInto). Entries store runs with `groups`
  // cleared; timings are exact because the schedule replay is a pure
  // function of (plan, configs, options, case seed), all derived
  // deterministically from the spec.
  std::unordered_map<uint64_t, OverlapRun> run_memo_;
};

}  // namespace flo

#endif  // SRC_CORE_OVERLAP_ENGINE_H_
