// Timed execution of FlashOverlap on the simulated cluster.
//
// Each rank gets a device and two streams (computation / signal+comm, as in
// the paper's implementation, Sec. 5). The GEMM runs wave by wave; each
// wave's width is whatever SM budget the resident collectives leave over.
// Finished tiles bump the counting table; a completed group fires the
// signal that releases that group's collective, which rendezvouses across
// ranks, holds its SM footprint for its duration, and unblocks the comm
// stream. The total latency is when every stream drains.
#ifndef SRC_CORE_OVERLAP_ENGINE_H_
#define SRC_CORE_OVERLAP_ENGINE_H_

#include <optional>
#include <vector>

#include "src/comm/cost_model.h"
#include "src/core/tuner.h"
#include "src/core/wave_partition.h"
#include "src/hw/cluster.h"
#include "src/sim/event_queue.h"
#include "src/sim/timeline.h"

namespace flo {

struct EngineOptions {
  // Deterministic jitter (per-case seeded) on wave and collective
  // durations; gives the predictor a realistic error distribution.
  bool jitter = true;
  double wave_jitter = 0.02;
  double comm_jitter = 0.05;
  uint64_t seed_salt = 0;
  // Simulate collectives mechanistically, ring step by ring step
  // (src/comm/ring_transport.h) instead of charging the closed-form cost.
  bool detailed_comm = false;
  // The signal kernel polls the counting table periodically (Sec. 5);
  // a group's communication can only be released on a poll boundary.
  double signal_poll_interval_us = 0.0;
  // SMs statically reserved by co-located work (the preset-SM-ratio
  // scenario of Sec. 4.2.3); unavailable to both GEMM and collectives.
  int reserved_sms = 0;
  // Hold the collective's SM footprint for the whole overlapped region
  // (polling signal kernels + NCCL channels stay resident), exactly the
  // Alg. 1 line 3 assumption. Disable to model channels that release
  // between groups.
  bool persistent_comm_sms = true;
};

struct GroupTrace {
  int group = 0;
  int tiles = 0;
  double bytes = 0.0;
  SimTime signal_time = 0.0;
  SimTime comm_start = 0.0;
  SimTime comm_end = 0.0;
};

struct OverlapRun {
  SimTime total_us = 0.0;
  SimTime gemm_end_us = 0.0;
  WavePartition partition;
  std::vector<GroupTrace> groups;
  double predicted_us = 0.0;
  // Rank-0 stream timelines, for trace export (src/sim/trace_export.h).
  Timeline gemm_timeline;
  Timeline comm_timeline;
};

class OverlapEngine {
 public:
  explicit OverlapEngine(ClusterSpec cluster, TunerConfig tuner_config = {},
                         EngineOptions options = {});

  Tuner& tuner() { return tuner_; }
  const ClusterSpec& cluster() const { return cluster_; }
  const EngineOptions& options() const { return options_; }

  // Overlapped execution. With a null `forced_partition` the tuner's
  // predictive search picks the wave grouping.
  OverlapRun RunOverlap(const GemmShape& shape, CommPrimitive primitive,
                        const WavePartition* forced_partition = nullptr);

  // Sequential baseline: tuned GEMM, then one library collective call.
  SimTime RunNonOverlap(const GemmShape& shape, CommPrimitive primitive);

  // Perfect-overlap bound (Sec. 6.4).
  SimTime TheoreticalBest(const GemmShape& shape, CommPrimitive primitive);

  // Ablation: runs with a misconfigured wave size (paper Fig. 14) — every
  // group's counting target is inflated by `extra_tiles` (borrowed from the
  // following group), so each signal fires only after tiles of the next
  // wave finish; the accumulated tiles wait, delaying every communication.
  OverlapRun RunOverlapMisconfigured(const GemmShape& shape, CommPrimitive primitive,
                                     int extra_tiles);

  // Imbalanced variant (expert-parallel All-to-All): per-rank shapes; the
  // base partition is derived from the largest rank and rescaled.
  OverlapRun RunOverlapImbalanced(const std::vector<GemmShape>& shapes, CommPrimitive primitive,
                                  const WavePartition* forced_partition = nullptr);
  SimTime RunNonOverlapImbalanced(const std::vector<GemmShape>& shapes, CommPrimitive primitive);

 private:
  // Jitter multipliers in [1, 1+amp) derived from a per-case stable seed.
  double JitterFactor(Rng* rng, double amplitude) const;
  uint64_t CaseSeed(const GemmShape& shape, CommPrimitive primitive,
                    const WavePartition& partition) const;

  // `group_tiles[r][g]` = rank r's counting-table target for group g; all
  // ranks must agree on the group count (the collective rendezvous).
  OverlapRun RunTimed(const std::vector<GemmShape>& shapes, CommPrimitive primitive,
                      const std::vector<std::vector<int>>& group_tiles,
                      const WavePartition& report_partition);

  ClusterSpec cluster_;
  EngineOptions options_;
  Tuner tuner_;
};

}  // namespace flo

#endif  // SRC_CORE_OVERLAP_ENGINE_H_
