#include "src/core/overlap_planner.h"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "src/core/predictor.h"
#include "src/util/check.h"

namespace flo {
namespace {

// Cached plans bake in segment latencies and tuned partitions, so every
// numeric parameter that feeds the cost/GEMM models must be part of the
// key — names alone would serve stale plans after a spec tweak.
StableHash& MixDouble(StableHash& hash, double value) {
  return hash.Mix(std::bit_cast<uint64_t>(value));
}

// The legacy imbalanced reference rank: the heuristic path tunes on the
// heaviest shape. Shared by BuildImbalancedLegacy and TuningRequest, so
// pre-warmed searches always match the search the build will perform.
const GemmShape& HeaviestRank(const std::vector<GemmShape>& shapes) {
  return *std::max_element(shapes.begin(), shapes.end(),
                           [](const GemmShape& a, const GemmShape& b) { return a.m < b.m; });
}

// See CanonicalKey: bumped when imbalanced plan construction changes.
constexpr int kImbalancedPlanVersion = 2;

}  // namespace

OverlapPlanner::OverlapPlanner(Tuner* tuner, PlanStore* store)
    : tuner_(tuner), store_(store) {
  FLO_CHECK(tuner_ != nullptr);
  FLO_CHECK(store_ != nullptr);
}

uint64_t OverlapPlanner::CanonicalKey(const ScenarioSpec& spec) const {
  StableHash hash;
  spec.MixInto(hash);
  const ClusterSpec& cluster = tuner_->cluster();
  hash.Mix(cluster.gpu_count);
  hash.Mix(cluster.gpu.name.c_str());
  hash.Mix(cluster.gpu.sm_count);
  MixDouble(hash, cluster.gpu.fp16_tflops);
  MixDouble(hash, cluster.gpu.hbm_gbps);
  MixDouble(hash, cluster.gpu.kernel_launch_overhead_us);
  MixDouble(hash, cluster.gpu.gemm_peak_efficiency);
  MixDouble(hash, cluster.gpu.gemm_k_half);
  hash.Mix(static_cast<int>(cluster.link.kind));
  hash.Mix(cluster.link.name.c_str());
  hash.Mix(cluster.link.comm_sm_count);
  MixDouble(hash, cluster.link.peak_busbw_gbps);
  MixDouble(hash, cluster.link.base_latency_us);
  MixDouble(hash, cluster.link.half_saturation_bytes);
  MixDouble(hash, cluster.link.cliff_bytes);
  MixDouble(hash, cluster.link.call_overhead_us);
  const TunerConfig& config = tuner_->config();
  hash.Mix(config.s1).Mix(config.sp).Mix(config.max_candidates);
  hash.Mix(config.exhaustive ? 1 : 0);
  hash.Mix(config.element_size);
  // The search implementation and its budget can change which partition
  // wins (the branch-and-bound space is a superset of the truncated legacy
  // enumeration), so they are plan-relevant.
  hash.Mix(config.use_legacy_enumeration ? 1 : 0);
  hash.Mix(config.search_max_nodes);
  if (spec.imbalanced()) {
    // Imbalanced planning-algorithm version: bumped when imbalanced plan
    // construction changes (v2: joint multi-rank search), so stale
    // on-disk stores and shipped records from older deployments never
    // serve plans the current planner would not build. Scoped to
    // imbalanced specs — balanced plans are byte-identical across the
    // change, so their warm starts stay valid.
    hash.Mix(kImbalancedPlanVersion);
  }
  return hash.value();
}

std::optional<PretuneRequest> OverlapPlanner::TuningRequest(const ScenarioSpec& spec) const {
  if (spec.shapes.empty() || spec.kind == ScenarioKind::kNonOverlap ||
      spec.forced_partition.has_value()) {
    return std::nullopt;
  }
  if (!spec.imbalanced()) {
    // Balanced (and misconfigured-ablation) builds tune the broadcast
    // shape.
    return PretuneRequest{{spec.shapes[0]}, spec.primitive};
  }
  if (tuner_->config().use_legacy_enumeration) {
    // The legacy heuristic tunes on the heaviest rank only. spec.shapes
    // and the expanded RankShapes hold the same multiset, so the maximum
    // agrees with BuildImbalancedLegacy's choice.
    return PretuneRequest{{HeaviestRank(spec.shapes)}, spec.primitive};
  }
  // Joint search, keyed by the canonical rank-shape multiset — the same
  // ordering TuneImbalanced keys on (one shared home), so pre-warming one
  // spec never mis-warms another that shares only its heaviest rank.
  return PretuneRequest{Tuner::CanonicalShapeMultiset(spec.shapes), spec.primitive};
}

void OverlapPlanner::RecordLookup(bool hit, bool* cache_hit) {
  (hit ? stats_.cache_hits : stats_.cache_misses) += 1;
  if (cache_hit != nullptr) {
    *cache_hit = hit;
  }
}

const ExecutionPlan& OverlapPlanner::Plan(const ScenarioSpec& spec, bool* cache_hit) {
  const uint64_t key = CanonicalKey(spec);
  if (const ExecutionPlan* cached = store_->Find(key)) {
    RecordLookup(true, cache_hit);
    return *cached;
  }
  RecordLookup(false, cache_hit);
  return store_->Put(key, Build(spec));
}

ExecutionPlan OverlapPlanner::PlanByValue(const ScenarioSpec& spec, bool* cache_hit) {
  const uint64_t key = CanonicalKey(spec);
  if (std::optional<ExecutionPlan> cached = store_->FindCopy(key)) {
    RecordLookup(true, cache_hit);
    return *std::move(cached);
  }
  RecordLookup(false, cache_hit);
  ExecutionPlan built = Build(spec);
  store_->Put(key, built);
  return built;
}

ExecutionPlan OverlapPlanner::Build(const ScenarioSpec& spec) {
  FLO_CHECK(!spec.shapes.empty()) << "scenario has no shapes";
  if (spec.extra_tiles > 0) {
    // The misconfiguration ablation is only defined for the balanced,
    // tuned-partition path; reject combinations we would silently ignore.
    FLO_CHECK(!spec.imbalanced()) << "extra_tiles is not supported with per-rank shapes";
    FLO_CHECK(!spec.forced_partition.has_value())
        << "extra_tiles always misconfigures the tuned partition; drop the forced one";
    FLO_CHECK(spec.kind == ScenarioKind::kOverlap)
        << "extra_tiles only affects overlapped execution";
  }
  if (spec.kind == ScenarioKind::kNonOverlap) {
    return BuildNonOverlap(spec);
  }
  return spec.imbalanced() ? BuildImbalancedOverlap(spec) : BuildBalancedOverlap(spec);
}

ExecutionPlan OverlapPlanner::BuildNonOverlap(const ScenarioSpec& spec) {
  const int n = tuner_->cluster().gpu_count;
  const std::vector<GemmShape> shapes = spec.RankShapes(n);
  ExecutionPlan plan;
  plan.kind = ScenarioKind::kNonOverlap;
  plan.primitive = spec.primitive;
  plan.partition = WavePartition::SingleGroup(1);
  CommSegment segment;
  double worst_gemm_us = 0.0;
  for (const GemmShape& shape : shapes) {
    const GemmConfig& config = tuner_->GemmConfigFor(shape);
    plan.group_tiles.push_back({config.tile_count});
    worst_gemm_us = std::max(worst_gemm_us, config.duration_us);
    // The library call moves the exact output payload, not the padded tile
    // footprint; the collective starts when the slowest rank arrives.
    const double bytes = shape.OutputBytes(tuner_->config().element_size);
    segment.max_bytes = std::max(segment.max_bytes, bytes);
    segment.latency_us =
        std::max(segment.latency_us, tuner_->cost_model().LatencyUs(spec.primitive, bytes));
  }
  plan.segments.push_back(segment);
  // GEMM + collective, like PredictNonOverlapLatency — not comm alone.
  plan.predicted_non_overlap_us = worst_gemm_us + segment.latency_us;
  return plan;
}

ExecutionPlan OverlapPlanner::BuildBalancedOverlap(const ScenarioSpec& spec) {
  const GemmShape& shape = spec.shapes[0];
  const int n = tuner_->cluster().gpu_count;
  ExecutionPlan plan;
  plan.kind = ScenarioKind::kOverlap;
  plan.primitive = spec.primitive;
  PredictorSetup setup = tuner_->MakeSetup(shape, spec.primitive);

  if (spec.extra_tiles > 0) {
    // Misconfigured-wave ablation (Fig. 14): shift tiles forward so group g
    // waits for `extra_tiles` tiles that really belong to group g+1. The
    // final group keeps the remainder so the totals still cover the GEMM.
    const TunedPlan& tuned = tuner_->Tune(shape, spec.primitive);
    std::vector<int> tiles = setup.GroupTiles(tuned.partition);
    for (size_t g = 0; g + 1 < tiles.size(); ++g) {
      const int moved = std::min(spec.extra_tiles, tiles[g + 1] - 1);
      tiles[g] += moved;
      tiles[g + 1] -= moved;
    }
    plan.partition = tuned.partition;
    plan.group_tiles.assign(n, tiles);
    plan.predicted_non_overlap_us = tuned.predicted_non_overlap_us;
    FillCommSegments(&plan, std::vector<GemmShape>(n, shape));
    return plan;
  }

  WavePartition partition;
  double predicted = 0.0;
  if (spec.forced_partition.has_value()) {
    partition = *spec.forced_partition;
    if (partition.TotalWaves() == setup.EffectiveWaveCount()) {
      predicted = PredictOverlapLatency(setup, partition).latency_us;
    }
  } else {
    const TunedPlan& tuned = tuner_->Tune(shape, spec.primitive);
    partition = tuned.partition;
    predicted = tuned.predicted_us;
    plan.predicted_non_overlap_us = tuned.predicted_non_overlap_us;
  }
  WavePartition effective = partition;
  if (effective.TotalWaves() != setup.EffectiveWaveCount()) {
    effective = partition.group_count() > setup.EffectiveWaveCount()
                    ? WavePartition::PerWave(setup.EffectiveWaveCount())
                    : ScalePartitionExact(partition, setup.EffectiveWaveCount());
  }
  plan.partition = effective;
  plan.group_tiles.assign(n, setup.GroupTiles(effective));
  plan.predicted_us = predicted;
  FillCommSegments(&plan, std::vector<GemmShape>(n, shape));
  return plan;
}

ExecutionPlan OverlapPlanner::BuildImbalancedOverlap(const ScenarioSpec& spec) {
  const int n = tuner_->cluster().gpu_count;
  const std::vector<GemmShape> shapes = spec.RankShapes(n);
  if (spec.forced_partition.has_value() || tuner_->config().use_legacy_enumeration) {
    // Forced partitions bypass every search; the legacy config keeps the
    // tune-heaviest-then-rescale heuristic as the comparison baseline.
    return BuildImbalancedLegacy(spec, shapes);
  }
  // Joint multi-rank search (fused branch-and-bound over per-rank latency
  // tables): the cached base composition already encodes the rendezvous
  // gating — when no segmentation wins, the single-group base degenerates
  // to sequential execution.
  const TunedMultiRankPlan& tuned = tuner_->TuneImbalanced(shapes, spec.primitive);
  ExecutionPlan plan;
  plan.kind = ScenarioKind::kOverlap;
  plan.primitive = spec.primitive;
  plan.partition = tuned.base;
  plan.predicted_us = tuned.predicted_us;
  plan.predicted_non_overlap_us = tuned.predicted_non_overlap_us;
  // Per-rank counting targets follow the exact projected groupings the
  // search scored, not a proportional tile split.
  plan.group_tiles.reserve(shapes.size());
  for (const GemmShape& shape : shapes) {
    PredictorSetup setup = tuner_->MakeSetup(shape, spec.primitive);
    const std::optional<WavePartition> projected =
        ProjectPartition(tuned.base, tuned.base_waves, setup.EffectiveWaveCount());
    FLO_CHECK(projected.has_value()) << "winning base must project onto every rank";
    plan.group_tiles.push_back(setup.GroupTiles(*projected));
  }
  FillCommSegments(&plan, shapes);
  return plan;
}

ExecutionPlan OverlapPlanner::BuildImbalancedLegacy(const ScenarioSpec& spec,
                                                    const std::vector<GemmShape>& shapes) {
  ExecutionPlan plan;
  plan.kind = ScenarioKind::kOverlap;
  plan.primitive = spec.primitive;
  // Tune on the heaviest rank; every rank rescales to its own wave count.
  const GemmShape& reference = HeaviestRank(shapes);
  WavePartition base = spec.forced_partition.has_value()
                           ? *spec.forced_partition
                           : tuner_->Tune(reference, spec.primitive).partition;
  PredictorSetup reference_setup = tuner_->MakeSetup(reference, spec.primitive);
  // Every rank must be able to host one counting-table group per collective
  // call: cap the group count at the lightest rank's wave count by
  // coarsening, then restate the base over the reference's waves.
  int min_waves = reference_setup.EffectiveWaveCount();
  for (const auto& shape : shapes) {
    PredictorSetup setup = tuner_->MakeSetup(shape, spec.primitive);
    min_waves = std::min(min_waves, setup.EffectiveWaveCount());
  }
  if (base.group_count() > min_waves) {
    base = ScalePartitionExact(ScalePartition(base, min_waves),
                               reference_setup.EffectiveWaveCount());
  }
  if (!spec.forced_partition.has_value() && base.group_count() > 1) {
    // Multi-rank gating (Sec. 4.2.2 extension): if the rendezvous-aware
    // prediction says the imbalance eats the overlap gain, fall back to
    // the single-group (sequential) plan.
    std::vector<PredictorSetup> setups;
    std::vector<WavePartition> partitions;
    double predicted_non_overlap = 0.0;
    bool scalable = true;
    for (const auto& shape : shapes) {
      PredictorSetup setup = tuner_->MakeSetup(shape, spec.primitive);
      const int waves = setup.EffectiveWaveCount();
      if (base.group_count() > waves) {
        scalable = false;
        break;
      }
      partitions.push_back(ScalePartitionExact(base, waves));
      predicted_non_overlap = std::max(predicted_non_overlap, PredictNonOverlapLatency(setup));
      setups.push_back(std::move(setup));
    }
    plan.predicted_non_overlap_us = predicted_non_overlap;
    if (!scalable || PredictOverlapLatencyMultiRank(setups, partitions).latency_us >=
                         predicted_non_overlap) {
      base = WavePartition::SingleGroup(reference_setup.EffectiveWaveCount());
    }
  }
  // Per-rank group tile counts proportional to the reference rank's
  // grouping: every rank keeps the same group count (the collectives are
  // rendezvous calls) but scales its tile boundaries to its own load.
  const std::vector<int> reference_tiles = reference_setup.GroupTiles(base);
  std::vector<double> fractions;
  fractions.reserve(reference_tiles.size());
  for (int tiles : reference_tiles) {
    fractions.push_back(static_cast<double>(tiles) / reference_setup.gemm.tile_count);
  }
  plan.group_tiles.reserve(shapes.size());
  for (const auto& shape : shapes) {
    const GemmConfig& config = tuner_->GemmConfigFor(shape);
    FLO_CHECK_GE(config.tile_count, static_cast<int>(fractions.size()))
        << "rank too small for the group count";
    plan.group_tiles.push_back(SplitTilesByFractions(config.tile_count, fractions));
  }
  plan.partition = base;
  FillCommSegments(&plan, shapes);
  return plan;
}

void OverlapPlanner::FillCommSegments(ExecutionPlan* plan,
                                      const std::vector<GemmShape>& rank_shapes) {
  // Payload follows the heaviest rank (the call is synchronizing); a
  // group's bytes are its counting target times the rank's tile footprint.
  FLO_CHECK_EQ(rank_shapes.size(), static_cast<size_t>(plan->rank_count()));
  const int element_size = tuner_->config().element_size;
  plan->segments.clear();
  plan->segments.reserve(plan->group_count());
  for (int g = 0; g < plan->group_count(); ++g) {
    CommSegment segment;
    segment.group = g;
    for (int r = 0; r < plan->rank_count(); ++r) {
      const GemmConfig& config = tuner_->GemmConfigFor(rank_shapes[r]);
      const double rank_bytes = static_cast<double>(plan->group_tiles[r][g]) *
                                config.tile.Elements() * element_size;
      segment.max_bytes = std::max(segment.max_bytes, rank_bytes);
      if (rank_bytes > 0) {
        segment.latency_us = std::max(
            segment.latency_us, tuner_->cost_model().LatencyUs(plan->primitive, rank_bytes));
      }
    }
    plan->segments.push_back(segment);
  }
}

}  // namespace flo
