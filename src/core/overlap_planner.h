// Turns a ScenarioSpec into an ExecutionPlan, memoized through a PlanStore.
//
// This is the planning layer of the ScenarioSpec -> OverlapPlanner ->
// ScheduleExecutor pipeline: it owns every decision that the legacy Run*
// methods made before touching the simulator — tuner search (or forced
// partition), wave-count adjustment, misconfiguration tile shifting, and
// the imbalanced multi-rank gating — and caches the result under a
// canonical hash of (scenario, cluster, tuner config). Execution-only
// knobs (jitter, polling, reserved SMs) are deliberately not part of the
// key: one plan serves every EngineOptions mix.
#ifndef SRC_CORE_OVERLAP_PLANNER_H_
#define SRC_CORE_OVERLAP_PLANNER_H_

#include <cstdint>
#include <optional>
#include <utility>

#include "src/core/execution_plan.h"
#include "src/core/plan_store.h"
#include "src/core/scenario.h"
#include "src/core/tuner.h"

namespace flo {

struct PlannerStats {
  size_t cache_hits = 0;
  size_t cache_misses = 0;
};

// One pre-warmable tuner search: a single shape (balanced Tune) or the
// canonical sorted rank-shape multiset (imbalanced TuneImbalanced). Keying
// imbalanced requests by the full multiset — not the heaviest rank — keeps
// two specs that share a heaviest rank but differ in light ranks from
// colliding in the pre-tune lane.
struct PretuneRequest {
  std::vector<GemmShape> shapes;
  CommPrimitive primitive = CommPrimitive::kAllReduce;

  bool operator==(const PretuneRequest&) const = default;
};

class OverlapPlanner {
 public:
  // Both pointers are borrowed and must outlive the planner.
  OverlapPlanner(Tuner* tuner, PlanStore* store);

  // The plan-cache key: scenario fingerprint x cluster identity x tuner
  // configuration.
  uint64_t CanonicalKey(const ScenarioSpec& spec) const;

  // The tuner search a Build for `spec` would perform — a single-shape
  // Tune or an imbalanced multiset TuneImbalanced — or std::nullopt when
  // building the plan performs no predictive search (non-overlap
  // scenarios, forced partitions). Batch sweeps and serving loops use this
  // to pre-warm the tuner's cache in parallel — the expensive part of a
  // cold plan — before building plans serially.
  std::optional<PretuneRequest> TuningRequest(const ScenarioSpec& spec) const;

  // Returns the memoized plan, building (and caching) it on first use.
  // The reference is stable until the store evicts the entry (so: consume
  // it before planning anything else against a capacity-bounded store).
  // `cache_hit`, when non-null, reports whether the plan was served from
  // the store — per-spec visibility for batch sweeps and serving loops.
  const ExecutionPlan& Plan(const ScenarioSpec& spec, bool* cache_hit = nullptr);

  // Value-returning variant for shared stores: the copy is taken under the
  // store's lock (PlanStore::FindCopy), so it stays valid even if another
  // engine concurrently evicts the entry. The engine uses this whenever a
  // shared PlanStore is attached.
  ExecutionPlan PlanByValue(const ScenarioSpec& spec, bool* cache_hit = nullptr);

  const PlannerStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PlannerStats{}; }

 private:
  void RecordLookup(bool hit, bool* cache_hit);
  ExecutionPlan Build(const ScenarioSpec& spec);
  ExecutionPlan BuildNonOverlap(const ScenarioSpec& spec);
  ExecutionPlan BuildBalancedOverlap(const ScenarioSpec& spec);
  ExecutionPlan BuildImbalancedOverlap(const ScenarioSpec& spec);
  // The pre-joint-search heuristic (tune the heaviest rank, rescale,
  // gate with one rendezvous replay) — the baseline behind
  // TunerConfig::use_legacy_enumeration, also used for forced partitions.
  ExecutionPlan BuildImbalancedLegacy(const ScenarioSpec& spec,
                                      const std::vector<GemmShape>& shapes);
  // Fills plan->segments from group_tiles via the tuner's cost model.
  void FillCommSegments(ExecutionPlan* plan, const std::vector<GemmShape>& rank_shapes);

  Tuner* tuner_;
  PlanStore* store_;
  PlannerStats stats_;
};

}  // namespace flo

#endif  // SRC_CORE_OVERLAP_PLANNER_H_
