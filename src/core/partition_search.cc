#include "src/core/partition_search.h"

#include <algorithm>
#include <limits>

#include "src/util/check.h"

namespace flo {
namespace {

// How many non-dominated (t_p, t_m) prefixes to remember per assigned-wave
// count. The sets stay tiny in practice (compute-bound regimes collapse to
// a handful of points); the cap only bounds the workspace, overflow merely
// forfeits some pruning, never correctness.
constexpr size_t kDominanceCap = 64;

// Relative slack applied to the lower bound before pruning on it. The
// bound sums remaining compute as one multiply-add while real prefixes
// accumulate it group by group, so the two can differ by a few ULPs; the
// slack keeps the bound admissible despite that, at no practical cost in
// pruning power.
constexpr double kBoundSlack = 1e-9;

}  // namespace

PartitionSearchResult PartitionSearcher::Search(const GroupLatencyTable& table,
                                                const PartitionSearchOptions& options) {
  FLO_CHECK_GE(table.waves, 1);
  table_ = &table;
  options_ = options;
  const int waves = table.waves;
  const size_t size = static_cast<size_t>(waves) + 1;
  if (path_.size() < size) {
    path_.resize(size);
    seed_path_.resize(size);
    best_path_.resize(size);
  }
  if (dominance_.size() < size) {
    dominance_.resize(size);
    for (auto& set : dominance_) {
      set.reserve(kDominanceCap);
    }
  }
  for (int a = 0; a <= waves; ++a) {
    dominance_[a].clear();
  }
  best_groups_ = 0;
  best_us_ = std::numeric_limits<double>::infinity();
  nodes_ = 0;
  candidates_ = 0;
  budget_exhausted_ = false;

  if (options_.seed_safety_families) {
    // Single-group fallback, then the equal-sized families. Cheap (O(T^2)
    // table arithmetic total) and they hand the DFS a strong incumbent.
    seed_path_[0] = waves;
    ConsiderCandidate(seed_path_.data(), 1, table.single_group_us);
    for (int body = 1; body < waves; ++body) {
      int groups = 0;
      int remaining = waves;
      while (remaining > 0) {
        const int take = std::min(body, remaining);
        seed_path_[groups++] = take;
        remaining -= take;
      }
      ConsiderCandidate(seed_path_.data(), groups,
                        PredictLatencyWithTable(table, seed_path_.data(), groups));
    }
  }

  Dfs(/*assigned=*/0, /*t_p=*/table.launch_overhead_us, /*t_m=*/0.0, /*depth=*/0);

  PartitionSearchResult result;
  FLO_CHECK_GE(best_groups_, 1) << "search produced no candidate";
  result.partition.group_sizes.assign(best_path_.begin(), best_path_.begin() + best_groups_);
  result.predicted_us = best_us_;
  result.nodes_visited = nodes_;
  result.candidates_evaluated = candidates_;
  result.budget_exhausted = budget_exhausted_;
  return result;
}

void PartitionSearcher::Dfs(int assigned, double t_p, double t_m, int depth) {
  const int remaining = table_->waves - assigned;
  const int max_take =
      (depth == 0 && options_.bounded) ? std::min(options_.s1, remaining) : remaining;
  for (int take = 1; take <= max_take; ++take) {
    if (nodes_ >= options_.max_nodes) {
      budget_exhausted_ = true;
      return;
    }
    ++nodes_;
    const double t_p_new = t_p + take * table_->wave_time_us;
    if (take == remaining) {
      // Closing group. The single-group partition follows the predictor's
      // special case (full-width GEMM, sequential collective); any other
      // closer commits the tail-adjusted final collective.
      double latency;
      if (depth == 0) {
        latency = table_->single_group_us;
      } else {
        if (options_.bounded && take > options_.sp) {
          continue;
        }
        latency = std::max(t_p_new, t_m) + table_->tail[take];
      }
      ++candidates_;
      path_[depth] = take;
      ConsiderCandidate(path_.data(), depth + 1, latency);
      continue;
    }
    // Non-final group: its collective overlaps the next group's compute —
    // committed here with t_p through this group, exactly as the
    // group-by-group replay would.
    const double t_m_new = std::max(t_p_new, t_m) + table_->full[take];
    const int rest = remaining - take;
    const int tail_cap = options_.bounded ? std::min(options_.sp, rest) : rest;
    const double bound = std::max(t_m_new, t_p_new + rest * table_->wave_time_us) +
                         table_->min_tail_prefix[tail_cap];
    if (bound * (1.0 - kBoundSlack) > best_us_) {
      continue;
    }
    if (DominatedOrRecord(assigned + take, t_p_new, t_m_new)) {
      continue;
    }
    path_[depth] = take;
    Dfs(assigned + take, t_p_new, t_m_new, depth + 1);
    if (budget_exhausted_) {
      return;
    }
  }
}

bool PartitionSearcher::DominatedOrRecord(int assigned, double t_p, double t_m) {
  std::vector<DomPoint>& set = dominance_[assigned];
  size_t keep = 0;
  for (size_t i = 0; i < set.size(); ++i) {
    if (set[i].t_p <= t_p && set[i].t_m <= t_m) {
      return true;  // an earlier prefix is at least as good on both axes
    }
    if (!(t_p <= set[i].t_p && t_m <= set[i].t_m)) {
      set[keep++] = set[i];  // survives: not dominated by the newcomer
    }
  }
  set.resize(keep);
  if (set.size() < kDominanceCap) {
    set.push_back(DomPoint{t_p, t_m});
  }
  return false;
}

void PartitionSearcher::ConsiderCandidate(const int* sizes, int groups, double latency_us) {
  if (latency_us > best_us_) {
    return;
  }
  if (latency_us == best_us_ &&
      !std::lexicographical_compare(sizes, sizes + groups, best_path_.data(),
                                    best_path_.data() + best_groups_)) {
    return;
  }
  best_us_ = latency_us;
  best_groups_ = groups;
  std::copy(sizes, sizes + groups, best_path_.begin());
}

}  // namespace flo
