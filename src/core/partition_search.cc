#include "src/core/partition_search.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/check.h"

namespace flo {
namespace {

// How many non-dominated (t_p, t_m) prefixes to remember per assigned-wave
// count. The sets stay tiny in practice (compute-bound regimes collapse to
// a handful of points); the cap only bounds the workspace, overflow merely
// forfeits some pruning, never correctness.
constexpr size_t kDominanceCap = 64;

// Relative slack applied to the lower bound before pruning on it. The
// bound sums remaining compute as one multiply-add while real prefixes
// accumulate it group by group, so the two can differ by a few ULPs; the
// slack keeps the bound admissible despite that, at no practical cost in
// pruning power.
constexpr double kBoundSlack = 1e-9;

// Shared incumbent update for both searchers: accept strict improvements,
// break latency ties toward the lexicographically smallest group-size
// vector. One body so the bit-reproducibility contract cannot diverge.
void UpdateIncumbent(const int* sizes, int groups, double latency_us, double* best_us,
                     int* best_groups, std::vector<int>* best_path) {
  if (latency_us > *best_us) {
    return;
  }
  if (latency_us == *best_us &&
      !std::lexicographical_compare(sizes, sizes + groups, best_path->data(),
                                    best_path->data() + *best_groups)) {
    return;
  }
  *best_us = latency_us;
  *best_groups = groups;
  std::copy(sizes, sizes + groups, best_path->begin());
}

// Writes the equal-sized safety family with `body`-wave groups into
// `path`, returning the group count (shared by both searchers' seeding).
int FillEqualSized(int waves, int body, int* path) {
  int groups = 0;
  int remaining = waves;
  while (remaining > 0) {
    const int take = std::min(body, remaining);
    path[groups++] = take;
    remaining -= take;
  }
  return groups;
}

}  // namespace

PartitionSearchResult PartitionSearcher::Search(const GroupLatencyTable& table,
                                                const PartitionSearchOptions& options) {
  FLO_CHECK_GE(table.waves, 1);
  table_ = &table;
  options_ = options;
  const int waves = table.waves;
  const size_t size = static_cast<size_t>(waves) + 1;
  if (path_.size() < size) {
    path_.resize(size);
    seed_path_.resize(size);
    best_path_.resize(size);
  }
  if (dominance_.size() < size) {
    dominance_.resize(size);
    for (auto& set : dominance_) {
      set.reserve(kDominanceCap);
    }
  }
  for (int a = 0; a <= waves; ++a) {
    dominance_[a].clear();
  }
  best_groups_ = 0;
  best_us_ = std::numeric_limits<double>::infinity();
  nodes_ = 0;
  candidates_ = 0;
  budget_exhausted_ = false;

  if (options_.seed_safety_families) {
    // Single-group fallback, then the equal-sized families. Cheap (O(T^2)
    // table arithmetic total) and they hand the DFS a strong incumbent.
    seed_path_[0] = waves;
    ConsiderCandidate(seed_path_.data(), 1, table.single_group_us);
    for (int body = 1; body < waves; ++body) {
      const int groups = FillEqualSized(waves, body, seed_path_.data());
      ConsiderCandidate(seed_path_.data(), groups,
                        PredictLatencyWithTable(table, seed_path_.data(), groups));
    }
  }

  Dfs(/*assigned=*/0, /*t_p=*/table.launch_overhead_us, /*t_m=*/0.0, /*depth=*/0);

  PartitionSearchResult result;
  FLO_CHECK_GE(best_groups_, 1) << "search produced no candidate";
  result.partition.group_sizes.assign(best_path_.begin(), best_path_.begin() + best_groups_);
  result.predicted_us = best_us_;
  result.nodes_visited = nodes_;
  result.candidates_evaluated = candidates_;
  result.budget_exhausted = budget_exhausted_;
  return result;
}

void PartitionSearcher::Dfs(int assigned, double t_p, double t_m, int depth) {
  const int remaining = table_->waves - assigned;
  const int max_take =
      (depth == 0 && options_.bounded) ? std::min(options_.s1, remaining) : remaining;
  for (int take = 1; take <= max_take; ++take) {
    if (nodes_ >= options_.max_nodes) {
      budget_exhausted_ = true;
      return;
    }
    ++nodes_;
    const double t_p_new = t_p + take * table_->wave_time_us;
    if (take == remaining) {
      // Closing group. The single-group partition follows the predictor's
      // special case (full-width GEMM, sequential collective); any other
      // closer commits the tail-adjusted final collective.
      double latency;
      if (depth == 0) {
        latency = table_->single_group_us;
      } else {
        if (options_.bounded && take > options_.sp) {
          continue;
        }
        latency = std::max(t_p_new, t_m) + table_->tail[take];
      }
      ++candidates_;
      path_[depth] = take;
      ConsiderCandidate(path_.data(), depth + 1, latency);
      continue;
    }
    // Non-final group: its collective overlaps the next group's compute —
    // committed here with t_p through this group, exactly as the
    // group-by-group replay would.
    const double t_m_new = std::max(t_p_new, t_m) + table_->full[take];
    const int rest = remaining - take;
    const int tail_cap = options_.bounded ? std::min(options_.sp, rest) : rest;
    const double bound = std::max(t_m_new, t_p_new + rest * table_->wave_time_us) +
                         table_->min_tail_prefix[tail_cap];
    if (bound * (1.0 - kBoundSlack) > best_us_) {
      continue;
    }
    if (DominatedOrRecord(assigned + take, t_p_new, t_m_new)) {
      continue;
    }
    path_[depth] = take;
    Dfs(assigned + take, t_p_new, t_m_new, depth + 1);
    if (budget_exhausted_) {
      return;
    }
  }
}

bool PartitionSearcher::DominatedOrRecord(int assigned, double t_p, double t_m) {
  std::vector<DomPoint>& set = dominance_[assigned];
  size_t keep = 0;
  for (size_t i = 0; i < set.size(); ++i) {
    if (set[i].t_p <= t_p && set[i].t_m <= t_m) {
      return true;  // an earlier prefix is at least as good on both axes
    }
    if (!(t_p <= set[i].t_p && t_m <= set[i].t_m)) {
      set[keep++] = set[i];  // survives: not dominated by the newcomer
    }
  }
  set.resize(keep);
  if (set.size() < kDominanceCap) {
    set.push_back(DomPoint{t_p, t_m});
  }
  return false;
}

void PartitionSearcher::ConsiderCandidate(const int* sizes, int groups, double latency_us) {
  UpdateIncumbent(sizes, groups, latency_us, &best_us_, &best_groups_, &best_path_);
}

// --- MultiRankPartitionSearcher ---------------------------------------------

MultiRankSearchResult MultiRankPartitionSearcher::Search(const MultiRankLatencyTable& tables,
                                                         const PartitionSearchOptions& options,
                                                         const WavePartition* seed) {
  FLO_CHECK(!tables.ranks.empty());
  FLO_CHECK_GE(tables.base_waves, 1);
  for (const GroupLatencyTable& table : tables.ranks) {
    FLO_CHECK_GE(table.waves, 1);
    FLO_CHECK_LE(table.waves, tables.base_waves);
  }
  tables_ = &tables;
  options_ = options;
  rank_count_ = static_cast<int>(tables.ranks.size());
  const int waves = tables.base_waves;
  const size_t size = static_cast<size_t>(waves) + 1;
  if (path_.size() < size) {
    path_.resize(size);
    seed_path_.resize(size);
    best_path_.resize(size);
  }
  const size_t state = size * static_cast<size_t>(rank_count_);
  if (prev_.size() < state) {
    prev_.resize(state);
    t_p_.resize(state);
  }
  if (dominance_.size() < size) {
    dominance_.resize(size);
  }
  for (size_t a = 0; a < size; ++a) {
    dominance_[a].entries = 0;
  }
  best_groups_ = 0;
  best_us_ = std::numeric_limits<double>::infinity();
  nodes_ = 0;
  candidates_ = 0;
  budget_exhausted_ = false;
  seed_path_[0] = waves;
  single_group_us_ = PredictLatencyWithTableMultiRank(tables, seed_path_.data(), 1,
                                                      &seed_scratch_);

  if (options_.seed_safety_families) {
    ConsiderCandidate(seed_path_.data(), 1, single_group_us_);
    for (int body = 1; body < waves; ++body) {
      ScoreSeed(seed_path_.data(), FillEqualSized(waves, body, seed_path_.data()));
    }
  }
  if (seed != nullptr && !seed->group_sizes.empty()) {
    FLO_CHECK_EQ(seed->TotalWaves(), waves);
    std::copy(seed->group_sizes.begin(), seed->group_sizes.end(), seed_path_.begin());
    ScoreSeed(seed_path_.data(), seed->group_count());
  }

  for (int r = 0; r < rank_count_; ++r) {
    prev_[r] = 0;
    t_p_[r] = tables.ranks[r].launch_overhead_us;
  }
  Dfs(/*cum=*/0, /*t_m=*/0.0, /*depth=*/0);

  MultiRankSearchResult result;
  FLO_CHECK_GE(best_groups_, 1) << "multi-rank search produced no candidate";
  result.base.group_sizes.assign(best_path_.begin(), best_path_.begin() + best_groups_);
  result.predicted_us = best_us_;
  result.nodes_visited = nodes_;
  result.candidates_evaluated = candidates_;
  result.budget_exhausted = budget_exhausted_;
  return result;
}

void MultiRankPartitionSearcher::Dfs(int cum, double t_m, int depth) {
  const int remaining = tables_->base_waves - cum;
  const int max_take =
      (depth == 0 && options_.bounded) ? std::min(options_.s1, remaining) : remaining;
  const int ranks = rank_count_;
  const int* prev = prev_.data() + static_cast<size_t>(depth) * ranks;
  const double* t_p = t_p_.data() + static_cast<size_t>(depth) * ranks;
  int* prev_next = prev_.data() + static_cast<size_t>(depth + 1) * ranks;
  double* t_p_next = t_p_.data() + static_cast<size_t>(depth + 1) * ranks;
  for (int take = 1; take <= max_take; ++take) {
    if (nodes_ >= options_.max_nodes) {
      budget_exhausted_ = true;
      return;
    }
    ++nodes_;
    const int cum_new = cum + take;
    if (take == remaining) {
      // Closing group: every rank's projection is forced to its own final
      // wave (feasible by the DFS invariant prev[r] < T_r).
      double latency;
      if (depth == 0) {
        latency = single_group_us_;
      } else {
        if (options_.bounded && take > options_.sp) {
          continue;
        }
        double ready = 0.0;
        double comm = 0.0;
        for (int r = 0; r < ranks; ++r) {
          const GroupLatencyTable& table = tables_->ranks[r];
          const int group = table.waves - prev[r];
          const double tp = t_p[r] + group * table.wave_time_us;
          ready = std::max(ready, tp);
          comm = std::max(comm, table.tail[group]);
        }
        latency = std::max(ready, t_m) + comm;
      }
      ++candidates_;
      path_[depth] = take;
      ConsiderCandidate(path_.data(), depth + 1, latency);
      continue;
    }
    // Non-final group: project each rank's boundary and commit the group's
    // rendezvous collective with per-rank compute through this group,
    // exactly as the full replay would.
    bool infeasible = false;
    double ready = 0.0;
    double comm = 0.0;
    for (int r = 0; r < ranks; ++r) {
      const GroupLatencyTable& table = tables_->ranks[r];
      const int boundary =
          ProjectedBoundary(cum_new, tables_->base_waves, table.waves, prev[r]);
      if (boundary >= table.waves) {
        infeasible = true;
        break;
      }
      const int group = boundary - prev[r];
      const double tp = t_p[r] + group * table.wave_time_us;
      prev_next[r] = boundary;
      t_p_next[r] = tp;
      ready = std::max(ready, tp);
      comm = std::max(comm, table.full[group]);
    }
    if (infeasible) {
      // Boundaries are monotone in the base prefix sum, so every larger
      // non-final take is infeasible too; only the closing take survives.
      if (max_take < remaining) {
        break;
      }
      take = remaining - 1;
      continue;
    }
    const double t_m_new = std::max(ready, t_m) + comm;
    double bound_compute = 0.0;
    double lb_tail = 0.0;
    for (int r = 0; r < ranks; ++r) {
      const GroupLatencyTable& table = tables_->ranks[r];
      const int rest = table.waves - prev_next[r];
      bound_compute = std::max(bound_compute, t_p_next[r] + rest * table.wave_time_us);
      lb_tail = std::max(lb_tail, table.min_tail_prefix[rest]);
    }
    const double bound = std::max(t_m_new, bound_compute) + lb_tail;
    if (bound * (1.0 - kBoundSlack) > best_us_) {
      continue;
    }
    if (DominatedOrRecord(cum_new, prev_next, t_p_next, t_m_new)) {
      continue;
    }
    path_[depth] = take;
    Dfs(cum_new, t_m_new, depth + 1);
    if (budget_exhausted_) {
      return;
    }
  }
}

bool MultiRankPartitionSearcher::DominatedOrRecord(int cum, const int* prev,
                                                   const double* t_p, double t_m) {
  DomSet& set = dominance_[cum];
  const size_t ranks = static_cast<size_t>(rank_count_);
  const size_t vstride = ranks + 1;
  size_t keep = 0;
  for (size_t i = 0; i < set.entries; ++i) {
    const int* entry_prev = set.prevs.data() + i * ranks;
    const double* entry_vals = set.vals.data() + i * vstride;
    if (std::equal(entry_prev, entry_prev + ranks, prev)) {
      // Same per-rank boundaries => identical suffix behaviour; compare
      // the accumulator vectors componentwise.
      bool entry_dominates = entry_vals[ranks] <= t_m;
      for (size_t r = 0; r < ranks && entry_dominates; ++r) {
        entry_dominates = entry_vals[r] <= t_p[r];
      }
      if (entry_dominates) {
        return true;
      }
      bool newcomer_dominates = t_m <= entry_vals[ranks];
      for (size_t r = 0; r < ranks && newcomer_dominates; ++r) {
        newcomer_dominates = t_p[r] <= entry_vals[r];
      }
      if (newcomer_dominates) {
        continue;  // drop the entry; the newcomer is recorded below
      }
    }
    if (keep != i) {
      std::copy(entry_prev, entry_prev + ranks, set.prevs.data() + keep * ranks);
      std::copy(entry_vals, entry_vals + vstride, set.vals.data() + keep * vstride);
    }
    ++keep;
  }
  set.entries = keep;
  if (set.entries < kDominanceCap) {
    // Guard each buffer by its own stride: a searcher reused across rank
    // counts keeps buffers sized for the old stride, and prevs (stride R)
    // outlasting vals (stride R+1) must not skip the vals resize.
    if (set.prevs.size() < (set.entries + 1) * ranks) {
      set.prevs.resize((set.entries + 1) * ranks);
    }
    if (set.vals.size() < (set.entries + 1) * vstride) {
      set.vals.resize((set.entries + 1) * vstride);
    }
    std::copy(prev, prev + ranks, set.prevs.data() + set.entries * ranks);
    std::copy(t_p, t_p + ranks, set.vals.data() + set.entries * vstride);
    set.vals[set.entries * vstride + ranks] = t_m;
    ++set.entries;
  }
  return false;
}

void MultiRankPartitionSearcher::ScoreSeed(const int* sizes, int groups) {
  const double latency =
      PredictLatencyWithTableMultiRank(*tables_, sizes, groups, &seed_scratch_);
  if (!std::isfinite(latency)) {
    return;  // projection infeasible for some rank; not a candidate
  }
  ConsiderCandidate(sizes, groups, latency);
}

void MultiRankPartitionSearcher::ConsiderCandidate(const int* sizes, int groups,
                                                   double latency_us) {
  UpdateIncumbent(sizes, groups, latency_us, &best_us_, &best_groups_, &best_path_);
}

}  // namespace flo
