// Fused branch-and-bound search over the wave-partition design space.
//
// The legacy tuner pipeline materializes up to 65536 candidate partitions
// (std::set<std::vector<int>>), then evaluates each with heap-allocating
// GroupTiles/Prediction vectors and a piecewise-linear curve lookup per
// group. This module replaces that enumerate-then-evaluate split with a
// single DFS over the partition tree that carries the predictor's
// (t_p_acc, t_m_acc) recurrence incrementally:
//
//  - every node costs one multiply, one add, one max and one latency-table
//    read (no curve evaluation, no allocation);
//  - a prefix is cut when its optimistic lower bound — remaining waves at
//    full compute rate plus the best-case final-group collective — already
//    exceeds the incumbent;
//  - a prefix is cut when an earlier prefix reached the same assigned-wave
//    count with both accumulators no worse (dominance: latency is monotone
//    in (t_p_acc, t_m_acc) for a fixed suffix).
//
// Both cuts are admissible, so the search is exact over its space: with
// `bounded == false` it returns the same best partition and latency as
// exhaustively scoring EnumerateAllPartitions. Ties are broken toward the
// lexicographically smallest group-size vector, which makes the winner
// independent of traversal details and bit-reproducible.
#ifndef SRC_CORE_PARTITION_SEARCH_H_
#define SRC_CORE_PARTITION_SEARCH_H_

#include <cstddef>
#include <vector>

#include "src/core/predictor.h"
#include "src/core/wave_partition.h"

namespace flo {

struct PartitionSearchOptions {
  // Pruning bounds (paper Sec. 4.1.4): first group <= s1, last group <= sp
  // waves. Only consulted when `bounded`.
  int s1 = 2;
  int sp = 4;
  // false: search the full 2^(T-1) composition space (the accuracy
  // baseline); true: restrict to the (s1, sp)-bounded space plus the
  // safety families below.
  bool bounded = true;
  // Score the single-group fallback and the equal-sized families first.
  // They seed a strong incumbent for pruning and keep the bounded search a
  // superset of the legacy EnumeratePruned candidate set.
  bool seed_safety_families = true;
  // Safety valve: give up refining (keeping the best found so far) after
  // this many group extensions. The safety seeds guarantee a valid result
  // even on immediate exhaustion.
  size_t max_nodes = static_cast<size_t>(1) << 24;
};

struct PartitionSearchResult {
  WavePartition partition;
  double predicted_us = 0.0;
  // Group extensions examined (the B&B analogue of "candidates": each is
  // one O(1) step of incremental evaluation).
  size_t nodes_visited = 0;
  // Complete partitions whose final latency was scored.
  size_t candidates_evaluated = 0;
  bool budget_exhausted = false;
};

// Reusable searcher: the DFS path, incumbent buffers and per-wave-count
// dominance sets are preallocated members, so steady-state searches make
// zero heap allocations per candidate (and, after the first search at a
// given wave count, zero allocations per search apart from the returned
// partition).
class PartitionSearcher {
 public:
  PartitionSearcher() = default;

  // Exact best partition for the setup `table` was built from.
  PartitionSearchResult Search(const GroupLatencyTable& table,
                               const PartitionSearchOptions& options);

 private:
  struct DomPoint {
    double t_p;
    double t_m;
  };

  void Dfs(int assigned, double t_p, double t_m, int depth);
  // Records (t_p, t_m) at `assigned` waves; true if an earlier recorded
  // point dominates it (prune).
  bool DominatedOrRecord(int assigned, double t_p, double t_m);
  void ConsiderCandidate(const int* sizes, int groups, double latency_us);

  const GroupLatencyTable* table_ = nullptr;
  PartitionSearchOptions options_;
  std::vector<int> path_;
  std::vector<int> seed_path_;
  std::vector<int> best_path_;
  int best_groups_ = 0;
  double best_us_ = 0.0;
  std::vector<std::vector<DomPoint>> dominance_;
  size_t nodes_ = 0;
  size_t candidates_ = 0;
  bool budget_exhausted_ = false;
};

struct MultiRankSearchResult {
  // Best base composition (over MultiRankLatencyTable::base_waves); every
  // rank executes its prefix-local projection (ProjectPartition).
  WavePartition base;
  double predicted_us = 0.0;
  size_t nodes_visited = 0;
  size_t candidates_evaluated = 0;
  bool budget_exhausted = false;
};

// Fused multi-rank branch-and-bound for imbalanced All-to-All
// (Sec. 4.2.2): walks the base composition space carrying per-rank
// (boundary, t_p_acc) state plus the shared rendezvous t_m_acc — the
// incremental form of PredictOverlapLatencyMultiRank, one table read and
// one multiply-add-max per rank per node, no full-timeline replays.
//
// Pruning mirrors the single-rank searcher: an admissible lower bound
// (each rank finishes its remaining waves at full compute rate, max across
// ranks, plus the best-case final rendezvous collective) and per-wave-count
// dominance over the per-rank accumulator vectors (comparable only at equal
// per-rank boundaries — different boundaries imply different suffixes).
// Ties break toward the lexicographically smallest base composition, so
// with `bounded == false` the result is bit-identical (base AND latency) to
// exhaustively scoring every projectable member of EnumerateAllPartitions
// with PredictOverlapLatencyMultiRank.
class MultiRankPartitionSearcher {
 public:
  MultiRankPartitionSearcher() = default;

  // `seed`, when given, is scored first as the incumbent (skipped when its
  // projection is infeasible). It must be a composition of
  // `tables.base_waves` — e.g. the heaviest rank's single-rank plan.
  MultiRankSearchResult Search(const MultiRankLatencyTable& tables,
                               const PartitionSearchOptions& options,
                               const WavePartition* seed = nullptr);

 private:
  void Dfs(int cum, double t_m, int depth);
  // Records the per-rank (boundary, t_p) vector and t_m at `cum` assigned
  // base waves; true if an earlier prefix with identical boundaries
  // dominates it (all accumulators no worse => prune).
  bool DominatedOrRecord(int cum, const int* prev, const double* t_p, double t_m);
  void ConsiderCandidate(const int* sizes, int groups, double latency_us);
  void ScoreSeed(const int* sizes, int groups);

  const MultiRankLatencyTable* tables_ = nullptr;
  PartitionSearchOptions options_;
  int rank_count_ = 0;
  std::vector<int> path_;
  std::vector<int> seed_path_;
  std::vector<int> best_path_;
  int best_groups_ = 0;
  double best_us_ = 0.0;
  // Per-depth per-rank DFS state, stride rank_count_: row d holds the
  // boundaries/accumulators after d groups.
  std::vector<int> prev_;
  std::vector<double> t_p_;
  // Dominance entries per assigned-wave count, flattened: `prevs` holds
  // rank_count_ boundaries per entry, `vals` holds rank_count_ t_p values
  // plus t_m per entry.
  struct DomSet {
    std::vector<int> prevs;
    std::vector<double> vals;
    size_t entries = 0;
  };
  std::vector<DomSet> dominance_;
  MultiRankScratch seed_scratch_;
  // Rendezvous single-group latency, precomputed per Search (the depth-0
  // closing candidate and the first safety seed share it).
  double single_group_us_ = 0.0;
  size_t nodes_ = 0;
  size_t candidates_ = 0;
  bool budget_exhausted_ = false;
};

}  // namespace flo

#endif  // SRC_CORE_PARTITION_SEARCH_H_
