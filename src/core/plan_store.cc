#include "src/core/plan_store.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/obs/metrics.h"
#include "src/util/check.h"
#include "src/util/file.h"
#include "src/util/logging.h"
#include "src/util/parse.h"
#include "src/util/table.h"

namespace flo {
namespace {

std::string PartitionToCsv(const WavePartition& partition) {
  std::string out;
  for (size_t i = 0; i < partition.group_sizes.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    out += std::to_string(partition.group_sizes[i]);
  }
  return out;
}

std::optional<WavePartition> PartitionFromCsv(const std::string& text) {
  WavePartition partition;
  std::stringstream stream(text);
  std::string token;
  while (std::getline(stream, token, ',')) {
    const auto value = TryParseInt(token);
    if (!value || *value <= 0) {
      return std::nullopt;
    }
    partition.group_sizes.push_back(*value);
  }
  if (partition.group_sizes.empty()) {
    return std::nullopt;
  }
  return partition;
}

}  // namespace

std::string SerializePlans(const std::vector<StoredPlan>& plans) {
  std::ostringstream out;
  out << "# FlashOverlap tuned plans: m n k primitive partition predicted_us"
         " non_overlap_us\n";
  for (const auto& plan : plans) {
    char line[256];
    std::snprintf(line, sizeof(line), "%lld %lld %lld %s %s %.6f %.6f\n",
                  static_cast<long long>(plan.shape.m), static_cast<long long>(plan.shape.n),
                  static_cast<long long>(plan.shape.k), CommPrimitiveName(plan.primitive),
                  PartitionToCsv(plan.partition).c_str(), plan.predicted_us,
                  plan.predicted_non_overlap_us);
    out << line;
  }
  return out.str();
}

std::optional<std::vector<StoredPlan>> ParsePlans(const std::string& text) {
  std::vector<StoredPlan> plans;
  std::stringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::stringstream fields(line);
    StoredPlan plan;
    std::string primitive;
    std::string partition;
    if (!(fields >> plan.shape.m >> plan.shape.n >> plan.shape.k >> primitive >> partition >>
          plan.predicted_us >> plan.predicted_non_overlap_us)) {
      return std::nullopt;
    }
    if (plan.shape.m <= 0 || plan.shape.n <= 0 || plan.shape.k <= 0) {
      return std::nullopt;
    }
    const auto parsed_primitive = TryCommPrimitiveFromName(primitive);
    if (!parsed_primitive.has_value()) {
      return std::nullopt;
    }
    plan.primitive = *parsed_primitive;
    auto parsed = PartitionFromCsv(partition);
    if (!parsed.has_value()) {
      return std::nullopt;
    }
    plan.partition = std::move(*parsed);
    plans.push_back(std::move(plan));
  }
  return plans;
}

PlanStore::PlanStore(const PlanStore& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  capacity_ = other.capacity_;
  plans_ = other.plans_;
  last_use_ = other.last_use_;
  use_clock_ = other.use_clock_;
  stats_ = other.stats_;
}

PlanStore::PlanStore(PlanStore&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  capacity_ = other.capacity_;
  plans_ = std::move(other.plans_);
  last_use_ = std::move(other.last_use_);
  use_clock_ = other.use_clock_;
  stats_ = other.stats_;
}

PlanStore& PlanStore::operator=(const PlanStore& other) {
  if (this == &other) {
    return *this;
  }
  PlanStore copy(other);
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = copy.capacity_;
  plans_ = std::move(copy.plans_);
  last_use_ = std::move(copy.last_use_);
  use_clock_ = copy.use_clock_;
  stats_ = copy.stats_;
  return *this;
}

PlanStore& PlanStore::operator=(PlanStore&& other) noexcept {
  if (this == &other) {
    return *this;
  }
  std::scoped_lock lock(mu_, other.mu_);
  capacity_ = other.capacity_;
  plans_ = std::move(other.plans_);
  last_use_ = std::move(other.last_use_);
  use_clock_ = other.use_clock_;
  stats_ = other.stats_;
  return *this;
}

void PlanStore::TouchLocked(uint64_t key) const { last_use_[key] = ++use_clock_; }

void PlanStore::EnforceCapacityLocked() {
  while (capacity_ != 0 && plans_.size() > capacity_) {
    auto victim = last_use_.begin();
    for (auto it = last_use_.begin(); it != last_use_.end(); ++it) {
      if (it->second < victim->second) {
        victim = it;
      }
    }
    plans_.erase(victim->first);
    last_use_.erase(victim);
    ++stats_.evictions;
  }
}

const ExecutionPlan* PlanStore::Find(uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = plans_.find(key);
  if (it == plans_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  TouchLocked(key);
  return &it->second;
}

std::optional<ExecutionPlan> PlanStore::FindCopy(uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = plans_.find(key);
  if (it == plans_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  TouchLocked(key);
  return it->second;
}

const ExecutionPlan& PlanStore::Put(uint64_t key, ExecutionPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = plans_.insert_or_assign(key, std::move(plan));
  TouchLocked(key);
  if (inserted) {
    // The fresh entry holds the max use tick, so eviction can never pick
    // it: the returned reference stays valid.
    EnforceCapacityLocked();
  }
  return it->second;
}

bool PlanStore::Contains(uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.count(key) != 0;
}

std::optional<double> PlanStore::PeekPredictedUs(uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = plans_.find(key);
  if (it == plans_.end()) {
    return std::nullopt;
  }
  return it->second.predicted_us;
}

bool PlanStore::Erase(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  last_use_.erase(key);
  return plans_.erase(key) != 0;
}

size_t PlanStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

void PlanStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();
  last_use_.clear();
}

size_t PlanStore::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void PlanStore::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  EnforceCapacityLocked();
}

PlanStoreStats PlanStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PlanStore::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = PlanStoreStats{};
}

void PlanStore::ExportMetrics(MetricsRegistry* registry) const {
  const PlanStoreStats snapshot = stats();
  registry->Set(registry->Gauge("plan_store.hits"), static_cast<double>(snapshot.hits));
  registry->Set(registry->Gauge("plan_store.misses"), static_cast<double>(snapshot.misses));
  registry->Set(registry->Gauge("plan_store.evictions"),
                static_cast<double>(snapshot.evictions));
  registry->Set(registry->Gauge("plan_store.resident"), static_cast<double>(size()));
}

namespace {

std::optional<std::vector<int>> IntsFromCsv(const std::string& text) {
  std::vector<int> values;
  std::stringstream stream(text);
  std::string token;
  while (std::getline(stream, token, ',')) {
    const auto value = TryParseInt(token);
    if (!value) {
      return std::nullopt;
    }
    values.push_back(*value);
  }
  if (values.empty()) {
    return std::nullopt;
  }
  return values;
}

std::string KeyToken(uint64_t key) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%016llx", static_cast<unsigned long long>(key));
  return buffer;
}

// A loadable plan must be internally consistent, not just syntactically
// valid: the executor FLO_CHECKs would otherwise abort the process on the
// first Execute against a hand-edited or bit-rotted record.
bool StructurallyValid(const ExecutionPlan& plan) {
  if (plan.group_tiles.empty()) {
    return false;
  }
  const size_t group_count = plan.group_tiles[0].size();
  if (group_count == 0 || plan.segments.size() != group_count) {
    return false;
  }
  for (const auto& tiles : plan.group_tiles) {
    if (tiles.size() != group_count) {
      return false;
    }
    for (int count : tiles) {
      if (count <= 0) {
        return false;
      }
    }
  }
  for (size_t g = 0; g < plan.segments.size(); ++g) {
    const CommSegment& segment = plan.segments[g];
    if (segment.group != static_cast<int>(g) || segment.max_bytes < 0.0 ||
        segment.latency_us < 0.0) {
      return false;
    }
  }
  return true;
}

// One multi-line record in the store's text format.
void AppendRecord(std::ostringstream& out, uint64_t key, const ExecutionPlan& plan) {
  out << "plan " << KeyToken(key) << ' ' << ScenarioKindName(plan.kind) << ' '
      << CommPrimitiveName(plan.primitive) << ' ' << PartitionToCsv(plan.partition) << ' '
      << FormatDoubleExact(plan.predicted_us) << ' ' << FormatDoubleExact(plan.predicted_non_overlap_us)
      << '\n';
  for (const auto& tiles : plan.group_tiles) {
    out << "tiles ";
    for (size_t g = 0; g < tiles.size(); ++g) {
      out << (g == 0 ? "" : ",") << tiles[g];
    }
    out << "\n";
  }
  for (const auto& segment : plan.segments) {
    out << "seg " << segment.group << ' ' << FormatDoubleExact(segment.max_bytes) << ' '
        << FormatDoubleExact(segment.latency_us) << '\n';
  }
  out << "end\n";
}

}  // namespace

std::string PlanStore::Serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "# FlashOverlap execution plans: keyed by canonical scenario hash\n";
  for (const auto& [key, plan] : plans_) {
    AppendRecord(out, key, plan);
  }
  // Trailing record-count footer. Syntactically a comment (older parsers
  // skip it); Parse validates it when present, so a snapshot truncated at
  // a record boundary — every record intact, some missing — is rejected
  // whole instead of silently importing a subset.
  out << "# count " << plans_.size() << '\n';
  return out.str();
}

std::optional<std::string> PlanStore::ExportRecord(uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = plans_.find(key);
  if (it == plans_.end()) {
    return std::nullopt;
  }
  std::ostringstream out;
  AppendRecord(out, key, it->second);
  return out.str();
}

size_t PlanStore::ImportRecords(const std::string& text) {
  // Parse into a scratch store first so a malformed shipment applies
  // nothing (and holds no lock while parsing).
  std::optional<PlanStore> parsed = Parse(text);
  if (!parsed.has_value()) {
    FLO_LOG(kError) << "plan import rejected: malformed or truncated record text ("
                    << text.size() << " bytes); store untouched";
    return 0;
  }
  const size_t imported = parsed->plans_.size();
  for (auto& [key, plan] : parsed->plans_) {
    Put(key, std::move(plan));
  }
  return imported;
}

std::optional<PlanStore> PlanStore::Parse(const std::string& text) {
  PlanStore store;
  std::stringstream stream(text);
  std::string line;
  bool in_record = false;
  uint64_t key = 0;
  size_t records = 0;
  // Declared record count from a "# count N" footer, when one is present
  // (snapshots written by Serialize carry it; hand-written record text and
  // single-record shipments need not).
  std::optional<size_t> declared_count;
  ExecutionPlan plan;
  while (std::getline(stream, line)) {
    if (line.empty() || line[0] == '#') {
      constexpr const char kCountTag[] = "# count ";
      if (line.rfind(kCountTag, 0) == 0) {
        const auto parsed = TryParseInt(line.substr(sizeof(kCountTag) - 1));
        if (!parsed || *parsed < 0) {
          return std::nullopt;
        }
        declared_count = static_cast<size_t>(*parsed);
      }
      continue;
    }
    std::stringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "plan") {
      if (in_record) {
        return std::nullopt;  // previous record never closed
      }
      std::string key_hex;
      std::string kind;
      std::string primitive;
      std::string partition;
      std::string predicted;
      std::string non_overlap;
      if (!(fields >> key_hex >> kind >> primitive >> partition >> predicted >> non_overlap)) {
        return std::nullopt;
      }
      const auto parsed_key = TryParseHexU64(key_hex);
      if (!parsed_key) {
        return std::nullopt;
      }
      key = *parsed_key;
      const auto parsed_predicted = TryParseDouble(predicted);
      const auto parsed_non_overlap = TryParseDouble(non_overlap);
      if (!parsed_predicted || !parsed_non_overlap) {
        return std::nullopt;
      }
      plan.predicted_us = *parsed_predicted;
      plan.predicted_non_overlap_us = *parsed_non_overlap;
      const auto parsed_kind = TryScenarioKindFromName(kind);
      const auto parsed_primitive = TryCommPrimitiveFromName(primitive);
      const auto parsed_partition = PartitionFromCsv(partition);
      if (!parsed_kind || !parsed_primitive || !parsed_partition) {
        return std::nullopt;
      }
      plan.kind = *parsed_kind;
      plan.primitive = *parsed_primitive;
      plan.partition = std::move(*parsed_partition);
      in_record = true;
    } else if (tag == "tiles") {
      std::string csv;
      if (!in_record || !(fields >> csv)) {
        return std::nullopt;
      }
      auto tiles = IntsFromCsv(csv);
      if (!tiles) {
        return std::nullopt;
      }
      plan.group_tiles.push_back(std::move(*tiles));
    } else if (tag == "seg") {
      std::string group;
      std::string max_bytes;
      std::string latency;
      if (!in_record || !(fields >> group >> max_bytes >> latency)) {
        return std::nullopt;
      }
      const auto parsed_group = TryParseInt(group);
      const auto parsed_bytes = TryParseDouble(max_bytes);
      const auto parsed_latency = TryParseDouble(latency);
      if (!parsed_group || !parsed_bytes || !parsed_latency) {
        return std::nullopt;
      }
      CommSegment segment;
      segment.group = *parsed_group;
      segment.max_bytes = *parsed_bytes;
      segment.latency_us = *parsed_latency;
      plan.segments.push_back(segment);
    } else if (tag == "end") {
      if (!in_record || !StructurallyValid(plan)) {
        return std::nullopt;
      }
      store.Put(key, std::move(plan));
      ++records;
      plan = ExecutionPlan{};
      in_record = false;
    } else {
      return std::nullopt;
    }
  }
  if (in_record) {
    return std::nullopt;
  }
  if (declared_count.has_value() && records != *declared_count) {
    // Truncated at a record boundary (or padded): the byte stream is
    // incomplete even though every surviving record parsed.
    return std::nullopt;
  }
  return store;
}

bool PlanStore::SaveToFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << Serialize();
  return static_cast<bool>(file);
}

std::optional<PlanStore> PlanStore::LoadFromFile(const std::string& path) {
  const std::optional<std::string> text = ReadFileToString(path);
  if (!text.has_value()) {
    return std::nullopt;
  }
  return Parse(*text);
}

bool SavePlansToFile(const std::vector<StoredPlan>& plans, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << SerializePlans(plans);
  return static_cast<bool>(file);
}

std::optional<std::vector<StoredPlan>> LoadPlansFromFile(const std::string& path) {
  const std::optional<std::string> text = ReadFileToString(path);
  if (!text.has_value()) {
    return std::nullopt;
  }
  return ParsePlans(*text);
}

std::string SerializeTunerTier(const std::vector<std::pair<uint64_t, StoredPlan>>& plans) {
  std::ostringstream out;
  for (const auto& [key, plan] : plans) {
    out << "#tuner " << KeyToken(key) << ' ' << plan.shape.m << ' ' << plan.shape.n << ' '
        << plan.shape.k << ' ' << CommPrimitiveName(plan.primitive) << ' '
        << PartitionToCsv(plan.partition) << ' ' << FormatDoubleExact(plan.predicted_us)
        << ' ' << FormatDoubleExact(plan.predicted_non_overlap_us) << '\n';
  }
  out << "#tuner-count " << plans.size() << '\n';
  return out.str();
}

std::optional<std::vector<std::pair<uint64_t, StoredPlan>>> ParseTunerTier(
    const std::string& text) {
  std::vector<std::pair<uint64_t, StoredPlan>> plans;
  std::stringstream stream(text);
  std::string line;
  std::optional<size_t> declared_count;
  constexpr const char kRecordTag[] = "#tuner ";
  constexpr const char kCountTag[] = "#tuner-count ";
  while (std::getline(stream, line)) {
    if (line.rfind(kCountTag, 0) == 0) {
      const auto parsed = TryParseInt(line.substr(sizeof(kCountTag) - 1));
      if (!parsed || *parsed < 0) {
        return std::nullopt;
      }
      declared_count = static_cast<size_t>(*parsed);
      continue;
    }
    if (line.rfind(kRecordTag, 0) != 0) {
      continue;  // plan-tier record or ordinary comment
    }
    std::stringstream fields(line.substr(sizeof(kRecordTag) - 1));
    std::string key_hex;
    StoredPlan plan;
    std::string primitive;
    std::string partition;
    std::string predicted;
    std::string non_overlap;
    if (!(fields >> key_hex >> plan.shape.m >> plan.shape.n >> plan.shape.k >> primitive >>
          partition >> predicted >> non_overlap)) {
      return std::nullopt;
    }
    const auto parsed_key = TryParseHexU64(key_hex);
    if (!parsed_key || plan.shape.m <= 0 || plan.shape.n <= 0 || plan.shape.k <= 0) {
      return std::nullopt;
    }
    const auto parsed_primitive = TryCommPrimitiveFromName(primitive);
    auto parsed_partition = PartitionFromCsv(partition);
    const auto parsed_predicted = TryParseDouble(predicted);
    const auto parsed_non_overlap = TryParseDouble(non_overlap);
    if (!parsed_primitive || !parsed_partition || !parsed_predicted || !parsed_non_overlap) {
      return std::nullopt;
    }
    plan.primitive = *parsed_primitive;
    plan.partition = std::move(*parsed_partition);
    plan.predicted_us = *parsed_predicted;
    plan.predicted_non_overlap_us = *parsed_non_overlap;
    plans.emplace_back(*parsed_key, std::move(plan));
  }
  if (declared_count.has_value() && plans.size() != *declared_count) {
    return std::nullopt;
  }
  return plans;
}

}  // namespace flo
