#include "src/core/plan_store.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/util/check.h"

namespace flo {
namespace {

std::string PartitionToCsv(const WavePartition& partition) {
  std::string out;
  for (size_t i = 0; i < partition.group_sizes.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    out += std::to_string(partition.group_sizes[i]);
  }
  return out;
}

std::optional<WavePartition> PartitionFromCsv(const std::string& text) {
  WavePartition partition;
  std::stringstream stream(text);
  std::string token;
  while (std::getline(stream, token, ',')) {
    try {
      const int value = std::stoi(token);
      if (value <= 0) {
        return std::nullopt;
      }
      partition.group_sizes.push_back(value);
    } catch (...) {
      return std::nullopt;
    }
  }
  if (partition.group_sizes.empty()) {
    return std::nullopt;
  }
  return partition;
}

}  // namespace

std::string SerializePlans(const std::vector<StoredPlan>& plans) {
  std::ostringstream out;
  out << "# FlashOverlap tuned plans: m n k primitive partition predicted_us"
         " non_overlap_us\n";
  for (const auto& plan : plans) {
    char line[256];
    std::snprintf(line, sizeof(line), "%lld %lld %lld %s %s %.6f %.6f\n",
                  static_cast<long long>(plan.shape.m), static_cast<long long>(plan.shape.n),
                  static_cast<long long>(plan.shape.k), CommPrimitiveName(plan.primitive),
                  PartitionToCsv(plan.partition).c_str(), plan.predicted_us,
                  plan.predicted_non_overlap_us);
    out << line;
  }
  return out.str();
}

std::optional<std::vector<StoredPlan>> ParsePlans(const std::string& text) {
  std::vector<StoredPlan> plans;
  std::stringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::stringstream fields(line);
    StoredPlan plan;
    std::string primitive;
    std::string partition;
    if (!(fields >> plan.shape.m >> plan.shape.n >> plan.shape.k >> primitive >> partition >>
          plan.predicted_us >> plan.predicted_non_overlap_us)) {
      return std::nullopt;
    }
    if (plan.shape.m <= 0 || plan.shape.n <= 0 || plan.shape.k <= 0) {
      return std::nullopt;
    }
    // CommPrimitiveFromName aborts on unknown names; pre-validate here so a
    // corrupt file degrades to a parse error instead.
    if (primitive != "AllReduce" && primitive != "ReduceScatter" && primitive != "AllGather" &&
        primitive != "AllToAll") {
      return std::nullopt;
    }
    plan.primitive = CommPrimitiveFromName(primitive);
    auto parsed = PartitionFromCsv(partition);
    if (!parsed.has_value()) {
      return std::nullopt;
    }
    plan.partition = std::move(*parsed);
    plans.push_back(std::move(plan));
  }
  return plans;
}

bool SavePlansToFile(const std::vector<StoredPlan>& plans, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << SerializePlans(plans);
  return static_cast<bool>(file);
}

std::optional<std::vector<StoredPlan>> LoadPlansFromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParsePlans(buffer.str());
}

}  // namespace flo
