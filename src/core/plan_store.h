// Persistence for tuned plans.
//
// The paper's deployment flow runs the tuning "before runtime" and reuses
// the results (Sec. 4.2.2); the artifact ships a preparation script that
// materializes configurations on disk. PlanStore is that artifact: a
// line-oriented text format that serializes the tuner's plan cache so a
// serving process can start with every representative size pre-searched.
//
// Format (one record per line, '#' comments allowed):
//   m n k primitive partition predicted_us non_overlap_us
//   4096 8192 7168 AllReduce 1,2,4,4 1234.5 1670.2
#ifndef SRC_CORE_PLAN_STORE_H_
#define SRC_CORE_PLAN_STORE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/comm/primitive.h"
#include "src/core/wave_partition.h"
#include "src/gemm/tile.h"

namespace flo {

struct StoredPlan {
  GemmShape shape;
  CommPrimitive primitive = CommPrimitive::kAllReduce;
  WavePartition partition;
  double predicted_us = 0.0;
  double predicted_non_overlap_us = 0.0;

  bool operator==(const StoredPlan&) const = default;
};

// Serializes records to the text format above.
std::string SerializePlans(const std::vector<StoredPlan>& plans);

// Parses the text format; returns std::nullopt on any malformed line.
std::optional<std::vector<StoredPlan>> ParsePlans(const std::string& text);

// File helpers; return false on I/O failure.
bool SavePlansToFile(const std::vector<StoredPlan>& plans, const std::string& path);
std::optional<std::vector<StoredPlan>> LoadPlansFromFile(const std::string& path);

}  // namespace flo

#endif  // SRC_CORE_PLAN_STORE_H_
