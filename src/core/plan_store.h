// Persistence and memoization for plans.
//
// The paper's deployment flow runs the tuning "before runtime" and reuses
// the results (Sec. 4.2.2); the artifact ships a preparation script that
// materializes configurations on disk. This header is that artifact, in
// two tiers:
//
//  1. StoredPlan + free functions: the legacy line-oriented text format for
//     the tuner's (shape, primitive) -> partition cache.
//     Format (one record per line, '#' comments allowed):
//       m n k primitive partition predicted_us non_overlap_us
//       4096 8192 7168 AllReduce 1,2,4,4 1234.5 1670.2
//
//  2. PlanStore: the OverlapPlanner's memo of full ExecutionPlans keyed by
//     the canonical scenario hash, with its own multi-line text format so a
//     serving process can start with every scenario pre-planned.
#ifndef SRC_CORE_PLAN_STORE_H_
#define SRC_CORE_PLAN_STORE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/comm/primitive.h"
#include "src/core/execution_plan.h"
#include "src/core/wave_partition.h"
#include "src/gemm/tile.h"

namespace flo {

struct StoredPlan {
  GemmShape shape;
  CommPrimitive primitive = CommPrimitive::kAllReduce;
  WavePartition partition;
  double predicted_us = 0.0;
  double predicted_non_overlap_us = 0.0;

  bool operator==(const StoredPlan&) const = default;
};

// Serializes records to the text format above.
std::string SerializePlans(const std::vector<StoredPlan>& plans);

// Parses the text format; returns std::nullopt on any malformed line.
std::optional<std::vector<StoredPlan>> ParsePlans(const std::string& text);

// File helpers; return false on I/O failure.
bool SavePlansToFile(const std::vector<StoredPlan>& plans, const std::string& path);
std::optional<std::vector<StoredPlan>> LoadPlansFromFile(const std::string& path);

// Keyed store of full ExecutionPlans. The key is the OverlapPlanner's
// canonical scenario hash (scenario fields x cluster x tuner config), so a
// store survives process restarts only between identical deployments —
// exactly the paper's "prepare once, serve many" contract.
//
// Text format (multi-line records):
//   plan <key-hex> <kind> <primitive> <partition-csv> <predicted> <non_overlap>
//   tiles <csv>          # one line per rank, group targets
//   seg <group> <bytes> <latency_us>
//   end
class PlanStore {
 public:
  // nullptr when absent.
  const ExecutionPlan* Find(uint64_t key) const;
  // Inserts or overwrites; returns the stored plan.
  const ExecutionPlan& Put(uint64_t key, ExecutionPlan plan);
  bool Contains(uint64_t key) const { return plans_.count(key) != 0; }
  size_t size() const { return plans_.size(); }
  void Clear() { plans_.clear(); }

  const std::map<uint64_t, ExecutionPlan>& plans() const { return plans_; }

  std::string Serialize() const;
  // Returns std::nullopt on any malformed record.
  static std::optional<PlanStore> Parse(const std::string& text);
  bool SaveToFile(const std::string& path) const;
  static std::optional<PlanStore> LoadFromFile(const std::string& path);

 private:
  std::map<uint64_t, ExecutionPlan> plans_;
};

}  // namespace flo

#endif  // SRC_CORE_PLAN_STORE_H_
