// Persistence and memoization for plans.
//
// The paper's deployment flow runs the tuning "before runtime" and reuses
// the results (Sec. 4.2.2); the artifact ships a preparation script that
// materializes configurations on disk. This header is that artifact, in
// two tiers:
//
//  1. StoredPlan + free functions: the legacy line-oriented text format for
//     the tuner's (shape, primitive) -> partition cache.
//     Format (one record per line, '#' comments allowed):
//       m n k primitive partition predicted_us non_overlap_us
//       4096 8192 7168 AllReduce 1,2,4,4 1234.5 1670.2
//
//  2. PlanStore: the OverlapPlanner's memo of full ExecutionPlans keyed by
//     the canonical scenario hash, with its own multi-line text format so a
//     serving process can start with every scenario pre-planned.
#ifndef SRC_CORE_PLAN_STORE_H_
#define SRC_CORE_PLAN_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/comm/primitive.h"
#include "src/core/execution_plan.h"
#include "src/core/wave_partition.h"
#include "src/gemm/tile.h"

namespace flo {

class MetricsRegistry;

struct StoredPlan {
  GemmShape shape;
  CommPrimitive primitive = CommPrimitive::kAllReduce;
  WavePartition partition;
  double predicted_us = 0.0;
  double predicted_non_overlap_us = 0.0;

  bool operator==(const StoredPlan&) const = default;
};

// Serializes records to the text format above.
std::string SerializePlans(const std::vector<StoredPlan>& plans);

// Parses the text format; returns std::nullopt on any malformed line.
std::optional<std::vector<StoredPlan>> ParsePlans(const std::string& text);

// File helpers; return false on I/O failure.
bool SavePlansToFile(const std::vector<StoredPlan>& plans, const std::string& path);
std::optional<std::vector<StoredPlan>> LoadPlansFromFile(const std::string& path);

// The tuner-tier section of a two-tier snapshot: keyed StoredPlans
// carried in the same file as a PlanStore's ExecutionPlan records.
// Every line is '#'-prefixed, so PlanStore::Parse reads a combined file
// unchanged (the tier is comments to the plan-tier parser) and old
// single-tier files parse as an empty tuner tier:
//   #tuner <key-hex> <m> <n> <k> <primitive> <partition-csv> <pred> <non_overlap>
//   #tuner-count N
// The count footer rejects truncated files whole, like "# count".
std::string SerializeTunerTier(const std::vector<std::pair<uint64_t, StoredPlan>>& plans);
// Extracts the tuner tier from snapshot text: empty vector when the
// text carries none, std::nullopt on a malformed line or count-footer
// mismatch.
std::optional<std::vector<std::pair<uint64_t, StoredPlan>>> ParseTunerTier(
    const std::string& text);

// Hit/miss counts from Find/FindCopy lookups, evictions from capacity
// enforcement. Contains() is a peek and does not count.
struct PlanStoreStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;

  double HitRate() const {
    const size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

// Keyed store of full ExecutionPlans. The key is the OverlapPlanner's
// canonical scenario hash (scenario fields x cluster x tuner config), so a
// store survives process restarts only between identical deployments —
// exactly the paper's "prepare once, serve many" contract.
//
// Capacity: an optional cap on the number of resident plans; exceeding it
// evicts the least-recently-used entry (lookups and inserts count as use).
// 0 means unbounded. Capacity is a runtime knob, not part of the
// serialized format.
//
// Concurrency: every member is guarded by an internal mutex, so one store
// can be shared by multiple serving loops (the paper's plans are "cached
// and reusable across serving processes"). Find/Put return references into
// the store that stay valid only until the entry is evicted — within one
// thread that is fine (the plan is consumed immediately); across threads
// use FindCopy. plans() exposes the underlying map and is only safe while
// no other thread mutates the store.
//
// Text format (multi-line records):
//   plan <key-hex> <kind> <primitive> <partition-csv> <predicted> <non_overlap>
//   tiles <csv>          # one line per rank, group targets
//   seg <group> <bytes> <latency_us>
//   end
class PlanStore {
 public:
  PlanStore() = default;
  explicit PlanStore(size_t capacity) : capacity_(capacity) {}

  PlanStore(const PlanStore& other);
  PlanStore(PlanStore&& other) noexcept;
  PlanStore& operator=(const PlanStore& other);
  PlanStore& operator=(PlanStore&& other) noexcept;

  // nullptr when absent. Counts a hit/miss and refreshes LRU recency.
  const ExecutionPlan* Find(uint64_t key) const;
  // Thread-safe lookup for shared-store use: returns a copy, so the result
  // survives a concurrent eviction.
  std::optional<ExecutionPlan> FindCopy(uint64_t key) const;
  // Inserts or overwrites; returns the stored plan. May evict the
  // least-recently-used *other* entry when over capacity.
  const ExecutionPlan& Put(uint64_t key, ExecutionPlan plan);
  // Peek: no stats, no recency update.
  bool Contains(uint64_t key) const;
  // The stored plan's predicted end-to-end latency, as a peek: no stats,
  // no recency update — the fleet scheduler's backfill fit-checks call
  // this per dispatch and must not perturb hit rates or LRU order.
  std::optional<double> PeekPredictedUs(uint64_t key) const;
  // Drops one entry (no eviction stats: this is an explicit discard, e.g.
  // an aborted tuner search invalidating the plan it cached). False when
  // absent.
  bool Erase(uint64_t key);
  size_t size() const;
  void Clear();

  // 0 = unbounded. Shrinking below the current size evicts immediately.
  size_t capacity() const;
  void set_capacity(size_t capacity);

  PlanStoreStats stats() const;
  void ResetStats();

  // Observability mirror: writes the store's lookup totals and resident
  // plan count into registry gauges ("plan_store.hits", ".misses",
  // ".evictions", ".resident"). Registration is name-idempotent, so every
  // export lands on one shared column set; serving layers call this from
  // their checkpoint pollers.
  void ExportMetrics(MetricsRegistry* registry) const;

  const std::map<uint64_t, ExecutionPlan>& plans() const { return plans_; }

  std::string Serialize() const;
  // Returns std::nullopt on any malformed record.
  static std::optional<PlanStore> Parse(const std::string& text);
  bool SaveToFile(const std::string& path) const;
  static std::optional<PlanStore> LoadFromFile(const std::string& path);

  // Per-record wire format for plan shipping (src/cluster): a shipped
  // plan crosses replica boundaries as exactly the bytes a save/load
  // round-trip would write, so shipping and on-disk warm starts share one
  // serialization layer. ExportRecord returns the entry's record text
  // (std::nullopt when absent; a peek — no stats, no recency update).
  // ImportRecords parses record text and Puts every plan, returning the
  // number imported (0 on any malformed record; nothing is applied).
  std::optional<std::string> ExportRecord(uint64_t key) const;
  size_t ImportRecords(const std::string& text);

 private:
  void TouchLocked(uint64_t key) const;
  // Evicts least-recently-used entries until size() <= capacity().
  void EnforceCapacityLocked();

  mutable std::mutex mu_;
  size_t capacity_ = 0;
  std::map<uint64_t, ExecutionPlan> plans_;
  // LRU bookkeeping: a monotonic use tick per key. Eviction takes the
  // minimum — O(n), but stores hold at most thousands of plans and the
  // flat layout keeps the class copyable (tests snapshot stores by value).
  mutable std::map<uint64_t, uint64_t> last_use_;
  mutable uint64_t use_clock_ = 0;
  mutable PlanStoreStats stats_;
};

}  // namespace flo

#endif  // SRC_CORE_PLAN_STORE_H_
