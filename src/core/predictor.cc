#include "src/core/predictor.h"

#include <algorithm>
#include <limits>

#include "src/util/check.h"

namespace flo {

int PredictorSetup::EffectiveWaveCount() const {
  const int width = std::max(1, gpu.sm_count - comm_sm_count);
  return static_cast<int>((gemm.tile_count + width - 1) / width);
}

std::vector<int> PredictorSetup::GroupTiles(const WavePartition& partition) const {
  const int width = std::max(1, gpu.sm_count - comm_sm_count);
  std::vector<int> tiles;
  tiles.reserve(partition.group_count());
  int assigned = 0;
  int wave = 0;
  for (int size : partition.group_sizes) {
    int group_tiles = 0;
    for (int w = 0; w < size; ++w, ++wave) {
      const int remaining = gemm.tile_count - assigned - group_tiles;
      group_tiles += std::min(width, std::max(0, remaining));
    }
    tiles.push_back(group_tiles);
    assigned += group_tiles;
  }
  FLO_CHECK_EQ(assigned, gemm.tile_count);
  return tiles;
}

double PredictorSetup::GroupBytes(int tiles) const {
  return static_cast<double>(tiles) * static_cast<double>(gemm.tile.Elements()) * element_size;
}

Prediction PredictOverlapLatency(const PredictorSetup& setup, const WavePartition& partition) {
  FLO_CHECK_EQ(partition.TotalWaves(), setup.EffectiveWaveCount())
      << "partition must cover the effective wave count";
  if (partition.group_count() == 1) {
    // The "don't overlap" fallback: no concurrent collective, so nothing
    // reserves SMs and the GEMM runs at full width — identical to
    // sequential execution.
    Prediction prediction;
    const double comm =
        setup.latency_curve.Eval(setup.GroupBytes(setup.gemm.tile_count));
    prediction.group_comp_us.push_back(setup.gemm.duration_us);
    prediction.group_comm_us.push_back(comm);
    prediction.latency_us = setup.gemm.duration_us + comm;
    return prediction;
  }
  const std::vector<int> group_tiles = setup.GroupTiles(partition);
  Prediction prediction;
  double t_p_acc = setup.gpu.kernel_launch_overhead_us;
  double t_m_acc = 0.0;
  for (int i = 0; i < partition.group_count(); ++i) {
    // Communication of the previous group overlaps this group's compute
    // (Alg. 1 lines 12-18).
    if (i > 0 && group_tiles[i - 1] > 0) {
      const double t_m = setup.latency_curve.Eval(setup.GroupBytes(group_tiles[i - 1]));
      t_m_acc = std::max(t_p_acc, t_m_acc) + t_m;
      prediction.group_comm_us.push_back(t_m);
    } else if (i > 0) {
      prediction.group_comm_us.push_back(0.0);
    }
    const double t_p = partition.group_sizes[i] * setup.gemm.wave_time_us;
    prediction.group_comp_us.push_back(t_p);
    t_p_acc += t_p;
  }
  // Final group's communication cannot overlap anything (Alg. 1 lines
  // 20-22).
  const double t_last = group_tiles.back() > 0
                            ? setup.latency_curve.Eval(setup.GroupBytes(group_tiles.back()))
                            : 0.0;
  t_m_acc = std::max(t_p_acc, t_m_acc) + t_last;
  prediction.group_comm_us.push_back(t_last);
  prediction.latency_us = t_m_acc;
  return prediction;
}

GroupLatencyTable BuildGroupLatencyTable(const PredictorSetup& setup) {
  GroupLatencyTable table;
  table.waves = setup.EffectiveWaveCount();
  table.width = std::max(1, setup.gpu.sm_count - setup.comm_sm_count);
  table.tail_tiles = setup.gemm.tile_count - (table.waves - 1) * table.width;
  FLO_CHECK_GE(table.tail_tiles, 1);
  FLO_CHECK_LE(table.tail_tiles, table.width);
  table.wave_time_us = setup.gemm.wave_time_us;
  table.launch_overhead_us = setup.gpu.kernel_launch_overhead_us;
  table.gemm_duration_us = setup.gemm.duration_us;
  table.full.assign(static_cast<size_t>(table.waves) + 1, 0.0);
  table.tail.assign(static_cast<size_t>(table.waves) + 1, 0.0);
  table.min_tail_prefix.assign(static_cast<size_t>(table.waves) + 1,
                               std::numeric_limits<double>::infinity());
  // Payloads grow monotonically in w, so one cursor per family resolves
  // every lookup without a binary search.
  size_t full_hint = 0;
  size_t tail_hint = 0;
  for (int w = 1; w <= table.waves; ++w) {
    if (w < table.waves) {
      // A group of w full waves; groups holding the tail wave use tail[].
      table.full[w] =
          setup.latency_curve.Eval(setup.GroupBytes(w * table.width), &full_hint);
    }
    const int tail_group_tiles = (w - 1) * table.width + table.tail_tiles;
    table.tail[w] = setup.latency_curve.Eval(setup.GroupBytes(tail_group_tiles), &tail_hint);
    table.min_tail_prefix[w] = std::min(table.min_tail_prefix[w - 1], table.tail[w]);
  }
  table.single_group_us =
      setup.gemm.duration_us + setup.latency_curve.Eval(setup.GroupBytes(setup.gemm.tile_count));
  return table;
}

double PredictLatencyWithTable(const GroupLatencyTable& table, const WavePartition& partition) {
  FLO_CHECK_EQ(partition.TotalWaves(), table.waves);
  return PredictLatencyWithTable(table, partition.group_sizes.data(),
                                 partition.group_count());
}

double PredictLatencyWithTable(const GroupLatencyTable& table, const int* group_sizes,
                               int groups) {
  FLO_CHECK_GE(groups, 1);
  if (groups == 1) {
    return table.single_group_us;
  }
  // Identical operation sequence to PredictOverlapLatency, with the curve
  // lookups replaced by table reads.
  double t_p_acc = table.launch_overhead_us;
  double t_m_acc = 0.0;
  for (int i = 0; i < groups; ++i) {
    if (i > 0) {
      t_m_acc = std::max(t_p_acc, t_m_acc) + table.full[group_sizes[i - 1]];
    }
    t_p_acc += group_sizes[i] * table.wave_time_us;
  }
  t_m_acc = std::max(t_p_acc, t_m_acc) + table.tail[group_sizes[groups - 1]];
  return t_m_acc;
}

Prediction PredictOverlapLatencyMultiRank(const std::vector<PredictorSetup>& setups,
                                          const std::vector<WavePartition>& partitions) {
  FLO_CHECK(!setups.empty());
  FLO_CHECK_EQ(setups.size(), partitions.size());
  const int groups = partitions[0].group_count();
  for (const auto& partition : partitions) {
    FLO_CHECK_EQ(partition.group_count(), groups)
        << "all ranks must agree on the number of collective calls";
  }
  std::vector<std::vector<int>> tiles;
  tiles.reserve(setups.size());
  for (size_t r = 0; r < setups.size(); ++r) {
    tiles.push_back(setups[r].GroupTiles(partitions[r]));
  }
  Prediction prediction;
  std::vector<double> t_p_acc(setups.size());
  for (size_t r = 0; r < setups.size(); ++r) {
    t_p_acc[r] = setups[r].gpu.kernel_launch_overhead_us;
  }
  double t_m_acc = 0.0;
  auto comm_time = [&](int group) {
    // The collective is a rendezvous: its cost follows the largest payload.
    double worst = 0.0;
    for (size_t r = 0; r < setups.size(); ++r) {
      if (tiles[r][group] > 0) {
        worst = std::max(
            worst, setups[r].latency_curve.Eval(setups[r].GroupBytes(tiles[r][group])));
      }
    }
    return worst;
  };
  if (groups == 1) {
    // The "don't overlap" fallback, mirroring the single-rank special
    // case: nothing reserves comm SMs, every rank runs its full-width
    // GEMM, and the rendezvous collective starts when the slowest rank
    // arrives. With N identical ranks this reduces exactly to the
    // single-rank single-group prediction.
    double ready = 0.0;
    for (const PredictorSetup& setup : setups) {
      ready = std::max(ready, setup.gemm.duration_us);
    }
    const double comm = comm_time(0);
    prediction.group_comp_us.push_back(ready);
    prediction.group_comm_us.push_back(comm);
    prediction.latency_us = ready + comm;
    return prediction;
  }
  for (int i = 0; i < groups; ++i) {
    if (i > 0) {
      const double ready = *std::max_element(t_p_acc.begin(), t_p_acc.end());
      t_m_acc = std::max(ready, t_m_acc) + comm_time(i - 1);
    }
    for (size_t r = 0; r < setups.size(); ++r) {
      t_p_acc[r] += partitions[r].group_sizes[i] * setups[r].gemm.wave_time_us;
    }
  }
  const double ready = *std::max_element(t_p_acc.begin(), t_p_acc.end());
  t_m_acc = std::max(ready, t_m_acc) + comm_time(groups - 1);
  prediction.latency_us = t_m_acc;
  return prediction;
}

MultiRankLatencyTable BuildMultiRankLatencyTable(const std::vector<PredictorSetup>& setups) {
  FLO_CHECK(!setups.empty());
  MultiRankLatencyTable tables;
  tables.ranks.reserve(setups.size());
  for (const PredictorSetup& setup : setups) {
    tables.ranks.push_back(BuildGroupLatencyTable(setup));
    tables.base_waves = std::max(tables.base_waves, tables.ranks.back().waves);
  }
  return tables;
}

double PredictLatencyWithTableMultiRank(const MultiRankLatencyTable& tables,
                                        const int* base_sizes, int groups,
                                        MultiRankScratch* scratch) {
  FLO_CHECK_GE(groups, 1);
  const size_t ranks = tables.ranks.size();
  if (groups == 1) {
    // Rendezvous form of the single-group fallback: the slowest full-width
    // GEMM, then the largest whole-output collective (tail[T] is the
    // whole-output payload by construction).
    double ready = 0.0;
    double comm = 0.0;
    for (size_t r = 0; r < ranks; ++r) {
      const GroupLatencyTable& table = tables.ranks[r];
      ready = std::max(ready, table.gemm_duration_us);
      comm = std::max(comm, table.tail[table.waves]);
    }
    return ready + comm;
  }
  MultiRankScratch local;
  if (scratch == nullptr) {
    scratch = &local;
  }
  scratch->prev.assign(ranks, 0);
  scratch->t_p.resize(ranks);
  for (size_t r = 0; r < ranks; ++r) {
    scratch->t_p[r] = tables.ranks[r].launch_overhead_us;
  }
  // Identical operation sequence to the rendezvous replay: every group
  // extends each rank by its projected boundary, accumulates per-rank
  // compute, and commits the group's collective at the cross-rank max.
  double t_m = 0.0;
  int cum = 0;
  for (int g = 0; g < groups; ++g) {
    cum += base_sizes[g];
    const bool final_group = g == groups - 1;
    double ready = 0.0;
    double comm = 0.0;
    for (size_t r = 0; r < ranks; ++r) {
      const GroupLatencyTable& table = tables.ranks[r];
      int boundary;
      if (final_group) {
        boundary = table.waves;
      } else {
        boundary = ProjectedBoundary(cum, tables.base_waves, table.waves, scratch->prev[r]);
        if (boundary >= table.waves) {
          return std::numeric_limits<double>::infinity();
        }
      }
      const int size = boundary - scratch->prev[r];
      scratch->prev[r] = boundary;
      scratch->t_p[r] += size * table.wave_time_us;
      ready = std::max(ready, scratch->t_p[r]);
      comm = std::max(comm, final_group ? table.tail[size] : table.full[size]);
    }
    t_m = std::max(ready, t_m) + comm;
  }
  return t_m;
}

double PredictLatencyWithTableMultiRank(const MultiRankLatencyTable& tables,
                                        const WavePartition& base,
                                        MultiRankScratch* scratch) {
  FLO_CHECK_EQ(base.TotalWaves(), tables.base_waves);
  return PredictLatencyWithTableMultiRank(tables, base.group_sizes.data(),
                                          base.group_count(), scratch);
}

double PredictNonOverlapLatency(const PredictorSetup& setup) {
  const double total_bytes = setup.GroupBytes(setup.gemm.tile_count);
  return setup.gemm.duration_us + setup.latency_curve.Eval(total_bytes);
}

double TheoreticalOverlapLatency(const PredictorSetup& setup) {
  const double total_bytes = setup.GroupBytes(setup.gemm.tile_count);
  const double comm_total = setup.latency_curve.Eval(total_bytes);
  const double gemm_total = setup.gemm.duration_us;
  const int width = std::max(1, setup.gpu.sm_count - setup.comm_sm_count);
  const int last_wave_tiles =
      setup.gemm.tile_count - (setup.EffectiveWaveCount() - 1) * width;
  const double comm_last_wave = setup.latency_curve.Eval(
      setup.GroupBytes(std::max(1, std::min(width, last_wave_tiles))));
  if (gemm_total >= comm_total) {
    return gemm_total + comm_last_wave;
  }
  return setup.gemm.wave_time_us + setup.gpu.kernel_launch_overhead_us + comm_total;
}

}  // namespace flo
