// Latency predictor for the predictive search (paper Alg. 1).
//
// Inputs are exactly the offline artifacts the paper's tuner prepares: the
// tuned GEMM configuration, the sampled (data size -> latency) curve of the
// communication primitive, and the SM footprint of the communication
// kernel. The predictor replays the overlap timeline group by group:
// communication of group i-1 overlaps computation of group i; accumulated
// communication can never start before the matching computation finishes.
#ifndef SRC_CORE_PREDICTOR_H_
#define SRC_CORE_PREDICTOR_H_

#include <vector>

#include "src/comm/primitive.h"
#include "src/core/wave_partition.h"
#include "src/gemm/gemm_model.h"
#include "src/util/interp.h"

namespace flo {

struct PredictorSetup {
  GemmConfig gemm;
  GpuSpec gpu;
  CommPrimitive primitive = CommPrimitive::kAllReduce;
  // Sampled offline: per-call collective latency as a function of payload
  // bytes per rank (already includes call overhead and ring latency).
  Curve latency_curve;
  // SMs the collective holds while resident (Alg. 1 line 3 contention).
  int comm_sm_count = 0;
  // Device element size (half = 2 bytes).
  int element_size = 2;

  // Waves of the GEMM when the collective's SMs are reserved.
  int EffectiveWaveCount() const;
  // Tiles in each group of `partition` under the effective wave width.
  std::vector<int> GroupTiles(const WavePartition& partition) const;
  // Payload bytes of a group holding `tiles` tiles.
  double GroupBytes(int tiles) const;
};

struct Prediction {
  double latency_us = 0.0;
  // Per-group computation / communication components (diagnostics).
  std::vector<double> group_comp_us;
  std::vector<double> group_comm_us;
};

// Alg. 1 core: predicted latency of the overlapped execution.
Prediction PredictOverlapLatency(const PredictorSetup& setup, const WavePartition& partition);

// Multi-rank extension for imbalanced All-to-All (Sec. 4.2.2): accumulated
// latencies take the max across ranks at every synchronization point.
Prediction PredictOverlapLatencyMultiRank(const std::vector<PredictorSetup>& setups,
                                          const std::vector<WavePartition>& partitions);

// Sequential (non-overlap) latency using the same artifacts.
double PredictNonOverlapLatency(const PredictorSetup& setup);

// Perfect-overlap bound (paper Sec. 6.4): max(GEMM + comm-of-last-wave,
// first-wave + full comm).
double TheoreticalOverlapLatency(const PredictorSetup& setup);

}  // namespace flo

#endif  // SRC_CORE_PREDICTOR_H_
