// Latency predictor for the predictive search (paper Alg. 1).
//
// Inputs are exactly the offline artifacts the paper's tuner prepares: the
// tuned GEMM configuration, the sampled (data size -> latency) curve of the
// communication primitive, and the SM footprint of the communication
// kernel. The predictor replays the overlap timeline group by group:
// communication of group i-1 overlaps computation of group i; accumulated
// communication can never start before the matching computation finishes.
#ifndef SRC_CORE_PREDICTOR_H_
#define SRC_CORE_PREDICTOR_H_

#include <vector>

#include "src/comm/primitive.h"
#include "src/core/wave_partition.h"
#include "src/gemm/gemm_model.h"
#include "src/util/interp.h"

namespace flo {

struct PredictorSetup {
  GemmConfig gemm;
  GpuSpec gpu;
  CommPrimitive primitive = CommPrimitive::kAllReduce;
  // Sampled offline: per-call collective latency as a function of payload
  // bytes per rank (already includes call overhead and ring latency).
  Curve latency_curve;
  // SMs the collective holds while resident (Alg. 1 line 3 contention).
  int comm_sm_count = 0;
  // Device element size (half = 2 bytes).
  int element_size = 2;

  // Waves of the GEMM when the collective's SMs are reserved.
  int EffectiveWaveCount() const;
  // Tiles in each group of `partition` under the effective wave width.
  std::vector<int> GroupTiles(const WavePartition& partition) const;
  // Payload bytes of a group holding `tiles` tiles.
  double GroupBytes(int tiles) const;
};

struct Prediction {
  double latency_us = 0.0;
  // Per-group computation / communication components (diagnostics).
  std::vector<double> group_comp_us;
  std::vector<double> group_comm_us;
};

// Alg. 1 core: predicted latency of the overlapped execution.
Prediction PredictOverlapLatency(const PredictorSetup& setup, const WavePartition& partition);

// Precomputed per-group-wave-count latencies for one PredictorSetup.
//
// Under the greedy tile assignment of GroupTiles only O(T) distinct group
// payloads exist: a group of w waves holds w*width tiles unless it contains
// the final (tail-adjusted) wave, in which case it holds
// (w-1)*width + tail tiles. Tabulating both families once per setup makes
// every candidate evaluation pure arithmetic — Curve::Eval leaves the
// search's inner loop entirely. Entries are bit-identical to what
// PredictOverlapLatency would compute for the same group.
struct GroupLatencyTable {
  int waves = 0;            // effective wave count T
  int width = 0;            // tiles per full wave (usable SMs)
  int tail_tiles = 0;       // tiles of the final wave, in [1, width]
  double wave_time_us = 0.0;
  double launch_overhead_us = 0.0;
  // Full-width GEMM duration (no SM reservation) — the multi-rank
  // single-group rendezvous needs the per-rank compute and collective
  // terms separately, where the single-rank path only needs their sum.
  double gemm_duration_us = 0.0;
  // full[w]: collective latency of a group of w full waves (w in 1..T-1;
  // index 0 unused). tail[w]: latency of a group of w waves whose last wave
  // is the tail wave (w in 1..T; index 0 unused).
  std::vector<double> full;
  std::vector<double> tail;
  // min_tail_prefix[w] = min(tail[1..w]) — the best-case final-group
  // collective used by the branch-and-bound lower bound.
  std::vector<double> min_tail_prefix;
  // The single-group special case of PredictOverlapLatency: full-width
  // GEMM followed by one collective of the whole output.
  double single_group_us = 0.0;
};

// Builds the table for `setup` with O(T) curve lookups (monotone, so the
// curve's segment-cursor fast path applies).
GroupLatencyTable BuildGroupLatencyTable(const PredictorSetup& setup);

// Table-driven replay of the PredictOverlapLatency recurrence. Performs
// the identical floating-point operation sequence, so the result is
// bit-identical to PredictOverlapLatency(setup, partition).latency_us for
// the setup the table was built from. No heap allocation.
double PredictLatencyWithTable(const GroupLatencyTable& table, const WavePartition& partition);

// Raw-composition core of the above (group sizes as a pointer/length pair,
// summing to table.waves). The single home of the table-driven operation
// sequence — the branch-and-bound search scores its seed compositions
// through this, so the bit-identical contract lives in exactly one body.
double PredictLatencyWithTable(const GroupLatencyTable& table, const int* group_sizes,
                               int groups);

// Multi-rank extension for imbalanced All-to-All (Sec. 4.2.2): accumulated
// latencies take the max across ranks at every synchronization point. A
// single-group partition set mirrors the single-rank "don't overlap"
// fallback: every rank runs its full-width GEMM and the rendezvous
// collective starts when the slowest rank arrives.
Prediction PredictOverlapLatencyMultiRank(const std::vector<PredictorSetup>& setups,
                                          const std::vector<WavePartition>& partitions);

// Per-rank latency tables for the fused multi-rank search: one
// GroupLatencyTable per rank plus the shared base wave count (the max rank
// wave count — the composition space the joint search walks; every rank's
// partition is the prefix-local projection of one base composition, see
// ProjectPartition).
struct MultiRankLatencyTable {
  std::vector<GroupLatencyTable> ranks;
  int base_waves = 0;
};

MultiRankLatencyTable BuildMultiRankLatencyTable(const std::vector<PredictorSetup>& setups);

// Reusable per-rank boundary/accumulator workspace; passing one makes
// repeated scoring allocation-free.
struct MultiRankScratch {
  std::vector<int> prev;
  std::vector<double> t_p;
};

// Incremental per-rank recurrence: table-driven replay of the multi-rank
// rendezvous over the per-rank projections of the base composition.
// Performs the identical floating-point operation sequence as
// PredictOverlapLatencyMultiRank(setups, {ProjectPartition(base, ...)}) for
// the setups the tables were built from, so the result is bit-identical.
// Returns +infinity when the projection is infeasible for any rank.
double PredictLatencyWithTableMultiRank(const MultiRankLatencyTable& tables,
                                        const int* base_sizes, int groups,
                                        MultiRankScratch* scratch = nullptr);
double PredictLatencyWithTableMultiRank(const MultiRankLatencyTable& tables,
                                        const WavePartition& base,
                                        MultiRankScratch* scratch = nullptr);

// Sequential (non-overlap) latency using the same artifacts.
double PredictNonOverlapLatency(const PredictorSetup& setup);

// Perfect-overlap bound (paper Sec. 6.4): max(GEMM + comm-of-last-wave,
// first-wave + full comm).
double TheoreticalOverlapLatency(const PredictorSetup& setup);

}  // namespace flo

#endif  // SRC_CORE_PREDICTOR_H_
