#include "src/core/reorder.h"

#include <algorithm>

#include "src/gemm/epilogue.h"
#include "src/util/check.h"

namespace flo {

void ScatterTileToStaging(const TileMapping& mapping, int tile,
                          std::span<const float> tile_values, std::span<float> staging) {
  FLO_CHECK_EQ(tile_values.size(), static_cast<size_t>(mapping.tile_elems()));
  FLO_CHECK_EQ(staging.size(), static_cast<size_t>(mapping.total_elems()));
  const int64_t offset = mapping.TileElemOffset(tile);
  std::copy(tile_values.begin(), tile_values.end(), staging.begin() + offset);
}

void ScatterTileSubtiles(const TileMapping& mapping, int gpu_count, int tile,
                         std::span<const float> tile_values, std::span<float> staging) {
  FLO_CHECK_EQ(tile_values.size(), static_cast<size_t>(mapping.tile_elems()));
  FLO_CHECK_EQ(staging.size(), static_cast<size_t>(mapping.total_elems()));
  const int64_t sub_elems = mapping.SubtileElems(gpu_count);
  for (int part = 0; part < gpu_count; ++part) {
    const int64_t src = static_cast<int64_t>(part) * sub_elems;
    const int64_t dst = mapping.SubtileElemOffset(tile, part, gpu_count);
    std::copy(tile_values.begin() + src, tile_values.begin() + src + sub_elems,
              staging.begin() + dst);
  }
}

void ScatterTileSubtokens(const SubtokenLayout& layout, int tile,
                          std::span<const float> tile_values, std::span<float> staging) {
  const int64_t sub = layout.subtoken_elems();
  const int tile_m = static_cast<int>(tile_values.size() / sub);
  FLO_CHECK_EQ(tile_values.size(), static_cast<size_t>(tile_m) * sub);
  for (int r = 0; r < tile_m; ++r) {
    const int64_t dst = layout.SubtokenElemOffset(tile, r);
    FLO_CHECK_LE(static_cast<size_t>(dst + sub), staging.size());
    std::copy(tile_values.begin() + static_cast<int64_t>(r) * sub,
              tile_values.begin() + static_cast<int64_t>(r + 1) * sub, staging.begin() + dst);
  }
}

void GatherStagingToMatrix(const TileMapping& mapping, std::span<const float> staging,
                           std::span<float> c) {
  const TileGrid& grid = mapping.grid();
  FLO_CHECK_EQ(staging.size(), static_cast<size_t>(mapping.total_elems()));
  FLO_CHECK_EQ(c.size(), static_cast<size_t>(grid.shape().m * grid.shape().n));
  for (int tile = 0; tile < mapping.tile_count(); ++tile) {
    LoadTileFromSlot(staging, mapping.TileElemOffset(tile), c, grid.shape().n,
                     grid.RowStart(tile), grid.ColStart(tile), grid.tile().m, grid.tile().n);
  }
}

std::vector<int64_t> RsOwnedRows(const TileMapping& mapping, int gpu_count, int rank) {
  FLO_CHECK_GE(rank, 0);
  FLO_CHECK_LT(rank, gpu_count);
  const TileGrid& grid = mapping.grid();
  const int tile_m = grid.tile().m;
  FLO_CHECK_EQ(tile_m % gpu_count, 0);
  const int sub_m = tile_m / gpu_count;
  std::vector<int64_t> rows;
  rows.reserve(static_cast<size_t>(grid.shape().m / gpu_count));
  for (int tile_row = 0; tile_row < grid.rows(); ++tile_row) {
    const int64_t base = static_cast<int64_t>(tile_row) * tile_m + rank * sub_m;
    for (int j = 0; j < sub_m; ++j) {
      rows.push_back(base + j);
    }
  }
  return rows;
}

void RsGatherRows(const TileMapping& mapping, int gpu_count, int rank,
                  std::span<const float> recv, std::span<float> rows_out) {
  // The subtile layout makes the receive buffer rank-agnostic (slot-major
  // k-th subtiles); `rank` is kept in the signature because the device
  // kernel binds per-rank buffers, and validated here.
  FLO_CHECK_GE(rank, 0);
  FLO_CHECK_LT(rank, gpu_count);
  const TileGrid& grid = mapping.grid();
  const int64_t n = grid.shape().n;
  const int tile_m = grid.tile().m;
  const int tile_n = grid.tile().n;
  const int sub_m = tile_m / gpu_count;
  const int64_t sub_elems = mapping.SubtileElems(gpu_count);
  FLO_CHECK_EQ(recv.size(), static_cast<size_t>(mapping.total_elems() / gpu_count));
  FLO_CHECK_EQ(rows_out.size(), static_cast<size_t>(grid.shape().m / gpu_count * n));
  for (int tile_row = 0; tile_row < grid.rows(); ++tile_row) {
    for (int col_tile = 0; col_tile < grid.cols(); ++col_tile) {
      const int tile = tile_row * grid.cols() + col_tile;
      const int slot = mapping.SlotOfTile(tile);
      const int64_t base = static_cast<int64_t>(slot) * sub_elems;
      const int64_t col0 = static_cast<int64_t>(col_tile) * tile_n;
      for (int j = 0; j < sub_m; ++j) {
        const int64_t local_row = static_cast<int64_t>(tile_row) * sub_m + j;
        const float* src = recv.data() + base + static_cast<int64_t>(j) * tile_n;
        float* dst = rows_out.data() + local_row * n + col0;
        std::copy(src, src + tile_n, dst);
      }
    }
  }
}

void RsRowExchange(const TileMapping& mapping, int gpu_count, std::span<const float> gathered,
                   std::span<float> c) {
  const TileGrid& grid = mapping.grid();
  const int64_t m = grid.shape().m;
  const int64_t n = grid.shape().n;
  const int tile_m = grid.tile().m;
  const int sub_m = tile_m / gpu_count;
  const int64_t rows_per_rank = m / gpu_count;
  FLO_CHECK_EQ(gathered.size(), static_cast<size_t>(m * n));
  FLO_CHECK_EQ(c.size(), static_cast<size_t>(m * n));
  for (int rank = 0; rank < gpu_count; ++rank) {
    for (int tile_row = 0; tile_row < grid.rows(); ++tile_row) {
      for (int j = 0; j < sub_m; ++j) {
        const int64_t local_row = static_cast<int64_t>(tile_row) * sub_m + j;
        const int64_t gathered_row = rank * rows_per_rank + local_row;
        const int64_t global_row = static_cast<int64_t>(tile_row) * tile_m + rank * sub_m + j;
        std::copy(gathered.begin() + gathered_row * n, gathered.begin() + (gathered_row + 1) * n,
                  c.begin() + global_row * n);
      }
    }
  }
}

void A2aScatterReceived(const SubtokenLayout& src_layout, int group, int dest,
                        std::span<const float> recv_segment,
                        const std::vector<int64_t>& local_row_of_global,
                        std::span<float> dst_matrix, int64_t dst_cols) {
  const TileGrid& grid = src_layout.mapping().grid();
  const int64_t sub = src_layout.subtoken_elems();
  int64_t cursor = 0;
  // The receiver sees subtokens in the source's pool order; replaying the
  // same deterministic walk recovers each fragment's provenance (global
  // row + column range) without any metadata on the wire.
  src_layout.ForEachSubtoken(group, dest, [&](int tile, int row_in_tile) {
    FLO_CHECK_LE(static_cast<size_t>(cursor + sub), recv_segment.size());
    const int64_t global_row = grid.RowStart(tile) + row_in_tile;
    const int64_t local_row = local_row_of_global[global_row];
    FLO_CHECK_GE(local_row, 0) << "token routed to wrong rank";
    const int64_t col0 = grid.ColStart(tile);
    FLO_CHECK_LE(static_cast<size_t>(local_row * dst_cols + col0 + sub), dst_matrix.size());
    std::copy(recv_segment.begin() + cursor, recv_segment.begin() + cursor + sub,
              dst_matrix.begin() + local_row * dst_cols + col0);
    cursor += sub;
  });
  FLO_CHECK_EQ(static_cast<size_t>(cursor), recv_segment.size());
}

double ReorderMappingTableBytes(const TileMapping& mapping) {
  // One 4-byte slot entry per tile plus the group table.
  return 4.0 * mapping.tile_count() + 8.0 * mapping.group_count();
}

}  // namespace flo
