// Pre- and post-communication reordering (paper Sec. 3.3).
//
// Pre-communication: finished tiles scatter into contiguous staging slots
// (fused into the GEMM epilogue — here, the GEMM sink callback).
// Post-communication: the mapping table is replayed to restore logical
// order (fused into the next element-wise kernel; see rmsnorm.h for the
// fused variant).
#ifndef SRC_CORE_REORDER_H_
#define SRC_CORE_REORDER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/mapping_table.h"

namespace flo {

// --- Pre-communication scatter (one finished tile -> staging) ---

// Tile granularity (AllReduce): dense copy into the tile's slot.
void ScatterTileToStaging(const TileMapping& mapping, int tile,
                          std::span<const float> tile_values, std::span<float> staging);

// Subtile granularity (ReduceScatter): the tile's gpu_count row-chunks go
// to the gpu_count parts of the group range.
void ScatterTileSubtiles(const TileMapping& mapping, int gpu_count, int tile,
                         std::span<const float> tile_values, std::span<float> staging);

// Subtoken granularity (All-to-All): each tile row goes to its destination
// pool.
void ScatterTileSubtokens(const SubtokenLayout& layout, int tile,
                          std::span<const float> tile_values, std::span<float> staging);

// --- Post-communication reorder ---

// AllReduce: staging (slot order) -> logical row-major C.
void GatherStagingToMatrix(const TileMapping& mapping, std::span<const float> staging,
                           std::span<float> c);

// ReduceScatter receive side. `recv` is this rank's buffer (total/gpu_count
// elements): per group, the rank's part lands at elem_begin/gpu_count, so
// globally recv is slot-major subtiles.
//
// Global rows owned by `rank`, ascending: for each tile-row R the chunk
// [R*tile_m + rank*sub_m, +sub_m).
std::vector<int64_t> RsOwnedRows(const TileMapping& mapping, int gpu_count, int rank);

// Materializes the rank's owned rows (ascending) as a dense
// (m/gpu_count) x n matrix — rows are complete, so element-wise ops
// (normalization) can run before AllGather.
void RsGatherRows(const TileMapping& mapping, int gpu_count, int rank,
                  std::span<const float> recv, std::span<float> rows_out);

// After AllGather of the per-rank row blocks, restores logical row order —
// the block-cyclic "row exchange" of Fig. 7(e).
void RsRowExchange(const TileMapping& mapping, int gpu_count, std::span<const float> gathered,
                   std::span<float> c);

// All-to-All receive side: consumes the segment received from one source
// rank for one group (subtokens in the source's pool order) and scatters
// each fragment to its token's row. `local_row_of_global[r]` maps the
// source's global row index to the receiver's local token row (or -1 if the
// token is not routed here — a caller bug).
void A2aScatterReceived(const SubtokenLayout& src_layout, int group, int dest,
                        std::span<const float> recv_segment,
                        const std::vector<int64_t>& local_row_of_global,
                        std::span<float> dst_matrix, int64_t dst_cols);

// Modeled overhead of a reorder: extra bytes touched for the mapping table
// relative to the payload (paper Sec. 6.6 puts the table at ~1.6-12.5% of
// the output and the fused cost under 1% / 10%).
double ReorderMappingTableBytes(const TileMapping& mapping);

}  // namespace flo

#endif  // SRC_CORE_REORDER_H_
