#include "src/core/rmsnorm.h"

#include <cmath>

#include "src/util/check.h"

namespace flo {

void RmsNorm(std::span<const float> in, int64_t rows, int64_t cols, float eps,
             std::span<float> out) {
  FLO_CHECK_EQ(in.size(), static_cast<size_t>(rows * cols));
  FLO_CHECK_EQ(out.size(), in.size());
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = in.data() + r * cols;
    double sq = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      sq += static_cast<double>(row[c]) * row[c];
    }
    const float scale =
        1.0f / std::sqrt(static_cast<float>(sq / static_cast<double>(cols)) + eps);
    float* dst = out.data() + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      dst[c] = row[c] * scale;
    }
  }
}

void RmsNormFromStaging(const TileMapping& mapping, std::span<const float> staging, float eps,
                        std::span<float> out) {
  const TileGrid& grid = mapping.grid();
  const int64_t m = grid.shape().m;
  const int64_t n = grid.shape().n;
  const int tile_m = grid.tile().m;
  const int tile_n = grid.tile().n;
  FLO_CHECK_EQ(staging.size(), static_cast<size_t>(mapping.total_elems()));
  FLO_CHECK_EQ(out.size(), static_cast<size_t>(m * n));
  // Walk logical rows; each row's data lives in grid.cols() tile slots at
  // mapping-table-directed offsets. Locality within a fragment (tile_n
  // contiguous elements) is what keeps the fused kernel cheap on device.
  for (int64_t row = 0; row < m; ++row) {
    const int tile_row = static_cast<int>(row / tile_m);
    const int r_in_tile = static_cast<int>(row % tile_m);
    double sq = 0.0;
    for (int col_tile = 0; col_tile < grid.cols(); ++col_tile) {
      const int tile = tile_row * grid.cols() + col_tile;
      const float* fragment = staging.data() + mapping.TileElemOffset(tile) +
                              static_cast<int64_t>(r_in_tile) * tile_n;
      for (int c = 0; c < tile_n; ++c) {
        sq += static_cast<double>(fragment[c]) * fragment[c];
      }
    }
    const float scale =
        1.0f / std::sqrt(static_cast<float>(sq / static_cast<double>(n)) + eps);
    for (int col_tile = 0; col_tile < grid.cols(); ++col_tile) {
      const int tile = tile_row * grid.cols() + col_tile;
      const float* fragment = staging.data() + mapping.TileElemOffset(tile) +
                              static_cast<int64_t>(r_in_tile) * tile_n;
      float* dst = out.data() + row * n + static_cast<int64_t>(col_tile) * tile_n;
      for (int c = 0; c < tile_n; ++c) {
        dst[c] = fragment[c] * scale;
      }
    }
  }
}

}  // namespace flo
