// RMSNorm element-wise kernel, plain and fused with the post-communication
// reorder (the paper's Sec. 6.6 overhead subject).
#ifndef SRC_CORE_RMSNORM_H_
#define SRC_CORE_RMSNORM_H_

#include <cstdint>
#include <span>

#include "src/core/mapping_table.h"

namespace flo {

// out[r, :] = in[r, :] / rms(in[r, :]), row-major (rows x cols).
void RmsNorm(std::span<const float> in, int64_t rows, int64_t cols, float eps,
             std::span<float> out);

// Fused variant: reads the AllReduce result directly from the tile-slot
// staging buffer via the mapping table (gather) and writes the normalized
// matrix in logical order — equivalent to GatherStagingToMatrix followed by
// RmsNorm but with a single pass over the data.
void RmsNormFromStaging(const TileMapping& mapping, std::span<const float> staging, float eps,
                        std::span<float> out);

}  // namespace flo

#endif  // SRC_CORE_RMSNORM_H_
