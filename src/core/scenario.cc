#include "src/core/scenario.h"

#include <sstream>

#include "src/util/check.h"

namespace flo {

const char* ScenarioKindName(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kOverlap:
      return "Overlap";
    case ScenarioKind::kNonOverlap:
      return "NonOverlap";
  }
  return "Unknown";
}

std::optional<ScenarioKind> TryScenarioKindFromName(const std::string& name) {
  for (ScenarioKind kind : {ScenarioKind::kOverlap, ScenarioKind::kNonOverlap}) {
    if (name == ScenarioKindName(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

std::vector<GemmShape> ScenarioSpec::RankShapes(int gpu_count) const {
  FLO_CHECK(!shapes.empty()) << "scenario has no shapes";
  if (shapes.size() == 1) {
    return std::vector<GemmShape>(gpu_count, shapes[0]);
  }
  FLO_CHECK_EQ(shapes.size(), static_cast<size_t>(gpu_count))
      << "per-rank shape count must match the cluster";
  return shapes;
}

void ScenarioSpec::MixInto(StableHash& hash) const {
  hash.Mix(static_cast<int>(kind));
  hash.Mix(static_cast<int>(shapes.size()));
  for (const GemmShape& shape : shapes) {
    hash.Mix(shape.m).Mix(shape.n).Mix(shape.k);
  }
  hash.Mix(static_cast<int>(primitive));
  hash.Mix(extra_tiles);
  hash.Mix(forced_partition.has_value() ? 1 : 0);
  if (forced_partition.has_value()) {
    for (int size : forced_partition->group_sizes) {
      hash.Mix(size);
    }
  }
}

std::string ScenarioSpec::Describe() const {
  std::ostringstream out;
  out << ScenarioKindName(kind) << " " << CommPrimitiveName(primitive);
  for (const GemmShape& shape : shapes) {
    out << " " << shape.ToString();
  }
  if (extra_tiles > 0) {
    out << " extra_tiles=" << extra_tiles;
  }
  if (forced_partition.has_value()) {
    out << " partition=" << forced_partition->ToString();
  }
  return out.str();
}

ScenarioSpec ScenarioSpec::Overlap(const GemmShape& shape, CommPrimitive primitive,
                                   const WavePartition* forced_partition) {
  ScenarioSpec spec;
  spec.kind = ScenarioKind::kOverlap;
  spec.shapes = {shape};
  spec.primitive = primitive;
  if (forced_partition != nullptr) {
    spec.forced_partition = *forced_partition;
  }
  return spec;
}

ScenarioSpec ScenarioSpec::NonOverlap(const GemmShape& shape, CommPrimitive primitive) {
  ScenarioSpec spec;
  spec.kind = ScenarioKind::kNonOverlap;
  spec.shapes = {shape};
  spec.primitive = primitive;
  return spec;
}

ScenarioSpec ScenarioSpec::Misconfigured(const GemmShape& shape, CommPrimitive primitive,
                                         int extra_tiles) {
  FLO_CHECK_GE(extra_tiles, 0);
  ScenarioSpec spec;
  spec.kind = ScenarioKind::kOverlap;
  spec.shapes = {shape};
  spec.primitive = primitive;
  spec.extra_tiles = extra_tiles;
  return spec;
}

ScenarioSpec ScenarioSpec::Imbalanced(std::vector<GemmShape> shapes, CommPrimitive primitive,
                                      const WavePartition* forced_partition) {
  ScenarioSpec spec;
  spec.kind = ScenarioKind::kOverlap;
  spec.shapes = std::move(shapes);
  spec.primitive = primitive;
  if (forced_partition != nullptr) {
    spec.forced_partition = *forced_partition;
  }
  return spec;
}

ScenarioSpec ScenarioSpec::NonOverlapImbalanced(std::vector<GemmShape> shapes,
                                                CommPrimitive primitive) {
  ScenarioSpec spec;
  spec.kind = ScenarioKind::kNonOverlap;
  spec.shapes = std::move(shapes);
  spec.primitive = primitive;
  return spec;
}

}  // namespace flo
