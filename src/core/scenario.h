// Declarative scenario description: everything the legacy Run* entry
// points encoded positionally, as one value type.
//
// A ScenarioSpec says *what* to execute — per-rank GEMM shapes, the
// communication primitive, the misconfiguration ablation's extra tiles, an
// optional forced wave partition, and optional per-scenario EngineOptions
// overriding the engine defaults. The OverlapPlanner turns a spec into an
// ExecutionPlan (cached by canonical hash), and the ScheduleExecutor runs
// the plan on the simulated cluster. New workloads are new spec values,
// not new engine methods.
#ifndef SRC_CORE_SCENARIO_H_
#define SRC_CORE_SCENARIO_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/comm/primitive.h"
#include "src/core/engine_options.h"
#include "src/core/wave_partition.h"
#include "src/gemm/tile.h"
#include "src/util/rng.h"

namespace flo {

enum class ScenarioKind {
  // Signal-released wave-group overlap (the paper's mechanism).
  kOverlap,
  // Sequential baseline: full GEMM, then one library collective call.
  kNonOverlap,
};

const char* ScenarioKindName(ScenarioKind kind);
// Inverse of ScenarioKindName; std::nullopt for unknown names. Shared by
// every text parser (plan store, serving traces).
std::optional<ScenarioKind> TryScenarioKindFromName(const std::string& name);

struct ScenarioSpec {
  ScenarioKind kind = ScenarioKind::kOverlap;
  // One shape per rank. A single entry is broadcast to every rank
  // (balanced tensor parallelism); multiple entries model the imbalanced
  // expert-parallel All-to-All of Sec. 4.2.2.
  std::vector<GemmShape> shapes;
  CommPrimitive primitive = CommPrimitive::kAllReduce;
  // Misconfigured-wave ablation (paper Fig. 14): every group's counting
  // target is inflated by this many tiles borrowed from the next group.
  int extra_tiles = 0;
  // Bypass the tuner's predictive search with an explicit partition.
  std::optional<WavePartition> forced_partition;
  // Per-scenario override of the engine-level EngineOptions.
  std::optional<EngineOptions> options;

  bool operator==(const ScenarioSpec&) const = default;

  bool imbalanced() const { return shapes.size() > 1; }
  // Shapes expanded to one per rank (broadcasting a single entry).
  std::vector<GemmShape> RankShapes(int gpu_count) const;

  // Mixes the plan-relevant fields (not the execution-only options) into
  // `hash`; the planner composes this with cluster and tuner identity to
  // form the canonical plan-cache key.
  void MixInto(StableHash& hash) const;

  std::string Describe() const;

  // --- Builders mirroring the legacy entry points ---
  static ScenarioSpec Overlap(const GemmShape& shape, CommPrimitive primitive,
                              const WavePartition* forced_partition = nullptr);
  static ScenarioSpec NonOverlap(const GemmShape& shape, CommPrimitive primitive);
  static ScenarioSpec Misconfigured(const GemmShape& shape, CommPrimitive primitive,
                                    int extra_tiles);
  static ScenarioSpec Imbalanced(std::vector<GemmShape> shapes, CommPrimitive primitive,
                                 const WavePartition* forced_partition = nullptr);
  static ScenarioSpec NonOverlapImbalanced(std::vector<GemmShape> shapes,
                                           CommPrimitive primitive);
};

}  // namespace flo

#endif  // SRC_CORE_SCENARIO_H_
