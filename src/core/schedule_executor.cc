#include "src/core/schedule_executor.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>

#include "src/sim/simulator.h"
#include "src/util/check.h"

namespace flo {

ScheduleExecutor::ScheduleExecutor(ClusterSpec spec) : spec_(spec), devices_(spec_) {}

double ScheduleExecutor::JitterFactor(Rng* rng, bool enabled, double amplitude) {
  if (!enabled || rng == nullptr) {
    return 1.0;
  }
  // Real kernels only ever run at or below nominal speed: jitter stretches
  // durations, never shrinks them.
  return 1.0 + rng->NextDouble() * amplitude;
}

uint64_t ScheduleExecutor::CaseSeed(const GemmShape& shape, CommPrimitive primitive,
                                    const WavePartition& partition, uint64_t seed_salt) const {
  StableHash hash;
  hash.Mix(shape.m).Mix(shape.n).Mix(shape.k);
  hash.Mix(static_cast<int>(primitive));
  hash.Mix(spec_.gpu_count);
  hash.Mix(spec_.gpu.name.c_str());
  for (int size : partition.group_sizes) {
    hash.Mix(size);
  }
  hash.Mix(seed_salt);
  return hash.value();
}

SimTime ScheduleExecutor::ExecuteSequential(const ExecutionPlan& plan,
                                            const std::vector<GemmConfig>& rank_configs,
                                            const EngineOptions& options, uint64_t case_seed) {
  FLO_CHECK_EQ(rank_configs.size(), static_cast<size_t>(spec_.gpu_count));
  FLO_CHECK(!plan.segments.empty());
  Rng rng(case_seed);
  // Sequential: every rank's GEMM runs unconstrained; the collective starts
  // when the slowest rank's GEMM finishes and moves the full payload.
  double gemm_us = 0.0;
  for (const GemmConfig& config : rank_configs) {
    double duration = config.duration_us;
    if (options.reserved_sms > 0) {
      // Co-located work shrinks the wave width even without overlap.
      const int width = std::max(1, spec_.gpu.sm_count - options.reserved_sms);
      const int waves = (config.tile_count + width - 1) / width;
      duration = waves * config.wave_time_us + spec_.gpu.kernel_launch_overhead_us;
    }
    gemm_us = std::max(gemm_us,
                       duration * JitterFactor(&rng, options.jitter, options.wave_jitter));
  }
  const double worst_comm = plan.segments[0].latency_us;
  return gemm_us + worst_comm * JitterFactor(&rng, options.jitter, options.comm_jitter);
}

std::vector<ScheduleExecutor::RankState> ScheduleExecutor::BuildRankStates(
    Simulator* sim, const ExecutionPlan& plan, const std::vector<GemmConfig>& rank_configs) {
  const int n = spec_.gpu_count;
  const int group_count = plan.group_count();
  std::vector<RankState> ranks(n);
  for (int r = 0; r < n; ++r) {
    RankState& state = ranks[r];
    state.config = rank_configs[r];
    state.group_tiles = plan.group_tiles[r];
    state.group_of_slot.reserve(state.config.tile_count);
    for (int g = 0; g < group_count; ++g) {
      for (int i = 0; i < state.group_tiles[g]; ++i) {
        state.group_of_slot.push_back(g);
      }
    }
    FLO_CHECK_EQ(static_cast<int>(state.group_of_slot.size()), state.config.tile_count)
        << "plan's counting targets must cover rank " << r << "'s tiles exactly";
    state.table = std::make_unique<CountingTable>(state.group_tiles);
    state.gemm_stream =
        std::make_unique<Stream>(sim, &devices_.device(r), "gemm" + std::to_string(r));
    state.comm_stream =
        std::make_unique<Stream>(sim, &devices_.device(r), "comm" + std::to_string(r));
  }
  return ranks;
}

ScheduleExecutor::CollectiveSet ScheduleExecutor::BuildCollectives(
    const ExecutionPlan& plan, const EngineOptions& options, int per_collective_sms, Rng* rng,
    OverlapRun* run) {
  const int n = spec_.gpu_count;
  const int group_count = plan.group_count();
  CollectiveSet collectives;
  collectives.closed_form.reserve(group_count);
  collectives.ring.reserve(group_count);
  for (int g = 0; g < group_count; ++g) {
    std::vector<Device*> group_devices;
    group_devices.reserve(n);
    for (int r = 0; r < n; ++r) {
      group_devices.push_back(&devices_.device(r));
    }
    const CommSegment& segment = plan.segments[g];
    run->groups[g].group = g;
    run->groups[g].tiles = plan.group_tiles[0][g];
    run->groups[g].bytes = segment.max_bytes;
    if (options.detailed_comm) {
      InterconnectSpec link = spec_.link;
      link.comm_sm_count = per_collective_sms;
      collectives.ring.push_back(std::make_unique<RingCollectiveOp>(
          "comm_g" + std::to_string(g), std::move(group_devices), link, plan.primitive,
          segment.max_bytes, nullptr));
      collectives.closed_form.push_back(nullptr);
    } else {
      const double latency = segment.latency_us;
      const double jitter = JitterFactor(rng, options.jitter, options.comm_jitter);
      collectives.closed_form.push_back(std::make_unique<CollectiveOp>(
          "comm_g" + std::to_string(g), std::move(group_devices), per_collective_sms,
          [latency, jitter]() { return latency * jitter; }, nullptr));
      collectives.ring.push_back(nullptr);
    }
  }
  return collectives;
}

void ScheduleExecutor::EnqueueSignalDispatch(Simulator* sim, std::vector<RankState>* ranks,
                                             CollectiveSet* collectives,
                                             const EngineOptions& options, OverlapRun* run) {
  // Comm streams: per group, a signal kernel (waits for the local counting
  // table, released on a poll boundary) followed by this rank's share of
  // the collective rendezvous.
  const int group_count = static_cast<int>(run->groups.size());
  const double poll = options.signal_poll_interval_us;
  for (RankState& state : *ranks) {
    for (int g = 0; g < group_count; ++g) {
      CountingTable* table = state.table.get();
      state.comm_stream->Enqueue(
          "signal_g" + std::to_string(g),
          [table, g, poll, sim, run](Simulator&, Stream::DoneFn done) {
            table->OnGroupComplete(g, [done = std::move(done), g, poll, sim, run]() {
              // The signal time the paper cares about is when the *last*
              // rank's tiles land; later ranks overwrite earlier ones.
              run->groups[g].signal_time = std::max(run->groups[g].signal_time, sim->Now());
              if (poll > 0.0) {
                // The polling kernel only observes the table on its next
                // query; release on the poll boundary.
                const double remainder = std::fmod(sim->Now(), poll);
                const double wait = remainder == 0.0 ? 0.0 : poll - remainder;
                sim->Schedule(wait, [done = std::move(done)]() { done(); });
              } else {
                done();
              }
            });
          });
      const int rank = static_cast<int>(&state - ranks->data());
      if (options.detailed_comm) {
        collectives->ring[g]->EnqueueOn(*state.comm_stream, rank);
      } else {
        collectives->closed_form[g]->EnqueueOn(*state.comm_stream, rank);
      }
    }
  }
}

void ScheduleExecutor::EnqueueWaveSchedulers(Simulator* sim, std::vector<RankState>* ranks,
                                             const EngineOptions& options, Rng* rng) {
  // GEMM kernels: wave loop with dynamic width = free SMs at wave start.
  const bool jitter = options.jitter;
  const double wave_jitter_amp = options.wave_jitter;
  const double launch_overhead = spec_.gpu.kernel_launch_overhead_us;
  for (RankState& state : *ranks) {
    Device* device = state.gemm_stream->device();
    state.gemm_stream->Enqueue(
        "gemm", [sim, rng, state_ptr = &state, device, jitter, wave_jitter_amp,
                 launch_overhead](Simulator&, Stream::DoneFn done) {
          auto next_wave = std::make_shared<std::function<void()>>();
          // The recursive closure holds itself only weakly: ownership
          // lives in the scheduled events (each wave event keeps the next
          // one alive), so the last wave releases the function — and the
          // captured `done` — instead of leaking a shared_ptr cycle.
          *next_wave = [sim, rng, state_ptr, device, jitter, wave_jitter_amp,
                        weak_self = std::weak_ptr<std::function<void()>>(next_wave),
                        done = std::move(done)]() {
            RankState& state = *state_ptr;
            if (state.tiles_done >= state.config.tile_count) {
              done();
              return;
            }
            const int width = device->ComputeSms();
            const int take = std::min(width, state.config.tile_count - state.tiles_done);
            const double duration =
                state.config.wave_time_us * JitterFactor(rng, jitter, wave_jitter_amp);
            sim->Schedule(duration, [state_ptr, take, next_wave = weak_self.lock()]() {
              RankState& state = *state_ptr;
              for (int i = 0; i < take; ++i) {
                const int slot = state.tiles_done + i;
                state.table->RecordTile(state.group_of_slot[slot]);
              }
              state.tiles_done += take;
              (*next_wave)();
            });
          };
          // Kernel launch overhead precedes the first wave.
          sim->Schedule(launch_overhead, [next_wave]() { (*next_wave)(); });
        });
  }
}

void ScheduleExecutor::CollectResults(const std::vector<RankState>& ranks,
                                      const CollectiveSet& collectives,
                                      const EngineOptions& options, OverlapRun* run) {
  SimTime total = 0.0;
  SimTime gemm_end = 0.0;
  for (size_t r = 0; r < ranks.size(); ++r) {
    FLO_CHECK(ranks[r].gemm_stream->idle()) << "rank " << r << " GEMM never finished";
    FLO_CHECK(ranks[r].comm_stream->idle()) << "rank " << r << " comm stream stalled";
    FLO_CHECK(ranks[r].table->AllComplete());
    total = std::max(total, ranks[r].comm_stream->last_completion_time());
    total = std::max(total, ranks[r].gemm_stream->last_completion_time());
    gemm_end = std::max(gemm_end, ranks[r].gemm_stream->last_completion_time());
  }
  for (size_t g = 0; g < run->groups.size(); ++g) {
    if (options.detailed_comm) {
      FLO_CHECK(collectives.ring[g]->completed()) << "group " << g << " never ran";
      run->groups[g].comm_start = collectives.ring[g]->start_time();
      run->groups[g].comm_end = collectives.ring[g]->end_time();
    } else {
      FLO_CHECK(collectives.closed_form[g]->completed())
          << "group " << g << " collective never ran";
      run->groups[g].comm_start = collectives.closed_form[g]->start_time();
      run->groups[g].comm_end = collectives.closed_form[g]->end_time();
    }
  }
  run->total_us = total;
  run->gemm_end_us = gemm_end;
}

OverlapRun ScheduleExecutor::ExecuteOverlap(const ExecutionPlan& plan,
                                            const std::vector<GemmConfig>& rank_configs,
                                            const EngineOptions& options, uint64_t case_seed) {
  const int n = spec_.gpu_count;
  FLO_CHECK_EQ(plan.rank_count(), n);
  FLO_CHECK_EQ(rank_configs.size(), static_cast<size_t>(n));
  const int group_count = plan.group_count();
  FLO_CHECK_GT(group_count, 0);
  for (const auto& tiles : plan.group_tiles) {
    FLO_CHECK_EQ(static_cast<int>(tiles.size()), group_count);
  }
  FLO_CHECK_EQ(static_cast<int>(plan.segments.size()), group_count);

  Simulator sim;
  Rng rng(case_seed);
  if (options.reserved_sms > 0) {
    for (int r = 0; r < n; ++r) {
      devices_.device(r).AcquireSms(options.reserved_sms);
    }
  }
  // With persistent channels the signal/comm kernels occupy their SMs for
  // the entire overlapped region, matching the predictor's wave-count
  // adjustment; the per-collective acquisition is then disabled. A single
  // group means no concurrency at all — the "don't overlap" fallback —
  // so nothing is reserved and the run degenerates to sequential
  // execution.
  const bool persistent = options.persistent_comm_sms && group_count > 1;
  const int per_collective_sms = persistent ? 0 : spec_.link.comm_sm_count;
  if (persistent) {
    for (int r = 0; r < n; ++r) {
      devices_.device(r).AcquireSms(spec_.link.comm_sm_count);
    }
  }

  OverlapRun run;
  run.partition = plan.partition;
  run.groups.resize(group_count);

  std::vector<RankState> ranks = BuildRankStates(&sim, plan, rank_configs);
  CollectiveSet collectives =
      BuildCollectives(plan, options, per_collective_sms, &rng, &run);
  EnqueueSignalDispatch(&sim, &ranks, &collectives, options, &run);
  EnqueueWaveSchedulers(&sim, &ranks, options, &rng);

  sim.Run();

  CollectResults(ranks, collectives, options, &run);
  // The executor's devices persist across runs: return every acquired SM
  // so the next scenario in a batch starts from a clean pool.
  if (options.reserved_sms > 0) {
    for (int r = 0; r < n; ++r) {
      devices_.device(r).ReleaseSms(options.reserved_sms);
    }
  }
  if (persistent) {
    for (int r = 0; r < n; ++r) {
      devices_.device(r).ReleaseSms(spec_.link.comm_sm_count);
    }
  }
  run.gemm_timeline = ranks[0].gemm_stream->timeline();
  run.comm_timeline = ranks[0].comm_stream->timeline();
  return run;
}

}  // namespace flo
