// Executes an ExecutionPlan on the simulated cluster.
//
// The execution layer of the ScenarioSpec -> OverlapPlanner ->
// ScheduleExecutor pipeline. Each rank gets a device and two streams
// (computation / signal+comm, as in the paper's implementation, Sec. 5),
// and the run is assembled from three composable stages layered on
// src/sim/:
//
//   1. collective rendezvous — one CollectiveOp (or mechanistic
//      RingCollectiveOp) per wave group, shared by all ranks;
//   2. signal dispatcher — per rank and group, a signal kernel that waits
//      on the local counting table and releases on a poll boundary;
//   3. wave scheduler — the GEMM wave loop whose width is whatever SM
//      budget the resident collectives leave over.
//
// The executor owns the simulated devices and is reusable across runs, so
// a batch sweep shares one cluster's SM-pool state instead of rebuilding
// devices per scenario. Each Execute call spins a fresh event queue.
#ifndef SRC_CORE_SCHEDULE_EXECUTOR_H_
#define SRC_CORE_SCHEDULE_EXECUTOR_H_

#include <memory>
#include <vector>

#include "src/comm/collective_op.h"
#include "src/comm/ring_transport.h"
#include "src/core/counting_table.h"
#include "src/core/execution_plan.h"
#include "src/core/engine_options.h"
#include "src/gemm/gemm_model.h"
#include "src/hw/cluster.h"
#include "src/sim/event_queue.h"
#include "src/sim/stream.h"
#include "src/sim/timeline.h"
#include "src/util/rng.h"

namespace flo {

struct GroupTrace {
  int group = 0;
  int tiles = 0;
  double bytes = 0.0;
  SimTime signal_time = 0.0;
  SimTime comm_start = 0.0;
  SimTime comm_end = 0.0;
};

struct OverlapRun {
  SimTime total_us = 0.0;
  SimTime gemm_end_us = 0.0;
  WavePartition partition;
  std::vector<GroupTrace> groups;
  double predicted_us = 0.0;
  // Whether the plan came from the PlanStore (set by OverlapEngine, not
  // the executor): per-spec cache visibility for RunBatch / serving loops.
  bool plan_cache_hit = false;
  // Rank-0 stream timelines, for trace export (src/sim/trace_export.h).
  Timeline gemm_timeline;
  Timeline comm_timeline;
};

class ScheduleExecutor {
 public:
  explicit ScheduleExecutor(ClusterSpec spec);

  const ClusterSpec& cluster() const { return spec_; }

  // Stable per-case seed so every binary prints identical numbers on
  // re-run (jitter is derived from it).
  uint64_t CaseSeed(const GemmShape& shape, CommPrimitive primitive,
                    const WavePartition& partition, uint64_t seed_salt) const;

  // Timed overlapped execution of `plan`. `rank_configs` are the tuned
  // GEMM configurations, one per rank, aligned with plan.group_tiles.
  OverlapRun ExecuteOverlap(const ExecutionPlan& plan,
                            const std::vector<GemmConfig>& rank_configs,
                            const EngineOptions& options, uint64_t case_seed);

  // Sequential baseline: every rank's GEMM runs unconstrained (minus any
  // reserved SMs), then the plan's single collective segment moves the full
  // payload once the slowest rank arrives. Closed form — no event queue.
  SimTime ExecuteSequential(const ExecutionPlan& plan,
                            const std::vector<GemmConfig>& rank_configs,
                            const EngineOptions& options, uint64_t case_seed);

 private:
  struct RankState {
    GemmConfig config;
    std::vector<int> group_tiles;    // counting-table targets
    std::vector<int> group_of_slot;  // cumulative boundaries
    std::unique_ptr<CountingTable> table;
    std::unique_ptr<Stream> gemm_stream;
    std::unique_ptr<Stream> comm_stream;
    int tiles_done = 0;
  };
  struct CollectiveSet {
    // Exactly one of the two entries per group is non-null: the
    // closed-form CollectiveOp or the mechanistic per-step ring transport.
    std::vector<std::unique_ptr<CollectiveOp>> closed_form;
    std::vector<std::unique_ptr<RingCollectiveOp>> ring;
  };

  // Jitter multipliers in [1, 1+amp); 1.0 when jitter is disabled.
  static double JitterFactor(Rng* rng, bool enabled, double amplitude);

  // --- Stages of ExecuteOverlap ---
  std::vector<RankState> BuildRankStates(Simulator* sim, const ExecutionPlan& plan,
                                         const std::vector<GemmConfig>& rank_configs);
  CollectiveSet BuildCollectives(const ExecutionPlan& plan, const EngineOptions& options,
                                 int per_collective_sms, Rng* rng, OverlapRun* run);
  void EnqueueSignalDispatch(Simulator* sim, std::vector<RankState>* ranks,
                             CollectiveSet* collectives, const EngineOptions& options,
                             OverlapRun* run);
  void EnqueueWaveSchedulers(Simulator* sim, std::vector<RankState>* ranks,
                             const EngineOptions& options, Rng* rng);
  void CollectResults(const std::vector<RankState>& ranks, const CollectiveSet& collectives,
                      const EngineOptions& options, OverlapRun* run);

  ClusterSpec spec_;
  Cluster devices_;
};

}  // namespace flo

#endif  // SRC_CORE_SCHEDULE_EXECUTOR_H_
