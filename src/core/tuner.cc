#include "src/core/tuner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/gemm/gemm_model.h"
#include "src/util/check.h"
#include "src/util/logging.h"

namespace flo {

Tuner::Tuner(ClusterSpec cluster, TunerConfig config)
    : cluster_(std::move(cluster)),
      config_(config),
      cost_model_(cluster_.link, cluster_.gpu_count) {
  FLO_CHECK_GE(config_.s1, 1);
  FLO_CHECK_GE(config_.sp, 1);
}

const GemmConfig& Tuner::GemmConfigFor(const GemmShape& shape) {
  const std::string key = shape.ToString();
  auto it = gemm_cache_.find(key);
  if (it == gemm_cache_.end()) {
    GemmModel model(cluster_.gpu);
    it = gemm_cache_.emplace(key, model.Configure(shape)).first;
  }
  return it->second;
}

const Curve& Tuner::LatencyCurveFor(CommPrimitive primitive) {
  const int key = static_cast<int>(primitive);
  auto it = curve_cache_.find(key);
  if (it == curve_cache_.end()) {
    // Dense log-spaced sampling from 64 KiB to 4 GiB covers every group
    // size the engine can produce; 64 points per decade keeps the
    // interpolation error well under the jitter floor even across the
    // bandwidth cliff's curvature.
    Curve curve = cost_model_.SampleLatencyCurve(primitive, 64.0 * 1024,
                                                 4.0 * 1024 * 1024 * 1024, 64);
    it = curve_cache_.emplace(key, std::move(curve)).first;
  }
  return it->second;
}

PredictorSetup Tuner::MakeSetup(const GemmShape& shape, CommPrimitive primitive) {
  PredictorSetup setup;
  setup.gemm = GemmConfigFor(shape);
  setup.gpu = cluster_.gpu;
  setup.primitive = primitive;
  setup.latency_curve = LatencyCurveFor(primitive);
  setup.comm_sm_count = CommSmCount();
  setup.element_size = config_.element_size;
  return setup;
}

const TunedPlan& Tuner::Tune(const GemmShape& shape, CommPrimitive primitive) {
  const Key key{shape.m, shape.n, shape.k, static_cast<int>(primitive)};
  auto it = plan_cache_.find(key);
  if (it == plan_cache_.end()) {
    it = plan_cache_.emplace(key, Search(shape, primitive)).first;
  }
  return it->second;
}

TunedPlan Tuner::Search(const GemmShape& shape, CommPrimitive primitive) {
  ++search_count_;
  PredictorSetup setup = MakeSetup(shape, primitive);
  const int waves = setup.EffectiveWaveCount();
  std::vector<WavePartition> candidates;
  if (config_.exhaustive && waves <= 20) {
    candidates = EnumerateAllPartitions(waves);
  } else {
    candidates = EnumeratePruned(waves, config_.s1, config_.sp, config_.max_candidates);
  }
  FLO_CHECK(!candidates.empty());

  TunedPlan plan;
  plan.gemm = setup.gemm;
  plan.effective_waves = waves;
  plan.predicted_non_overlap_us = PredictNonOverlapLatency(setup);
  double best = std::numeric_limits<double>::infinity();
  for (const auto& candidate : candidates) {
    const Prediction prediction = PredictOverlapLatency(setup, candidate);
    if (prediction.latency_us < best) {
      best = prediction.latency_us;
      plan.partition = candidate;
      plan.predicted_us = prediction.latency_us;
    }
  }
  plan.candidates_evaluated = static_cast<int>(candidates.size());
  FLO_LOG(kDebug) << "tuned " << shape.ToString() << " + " << CommPrimitiveName(primitive)
                  << ": partition " << plan.partition.ToString() << ", predicted "
                  << plan.predicted_us << " us over " << plan.candidates_evaluated
                  << " candidates";
  return plan;
}

std::vector<StoredPlan> Tuner::ExportPlans() const {
  std::vector<StoredPlan> plans;
  plans.reserve(plan_cache_.size());
  for (const auto& [key, plan] : plan_cache_) {
    StoredPlan stored;
    stored.shape = GemmShape{std::get<0>(key), std::get<1>(key), std::get<2>(key)};
    stored.primitive = static_cast<CommPrimitive>(std::get<3>(key));
    stored.partition = plan.partition;
    stored.predicted_us = plan.predicted_us;
    stored.predicted_non_overlap_us = plan.predicted_non_overlap_us;
    plans.push_back(std::move(stored));
  }
  return plans;
}

int Tuner::ImportPlans(const std::vector<StoredPlan>& plans) {
  int accepted = 0;
  for (const auto& stored : plans) {
    PredictorSetup setup = MakeSetup(stored.shape, stored.primitive);
    const int waves = setup.EffectiveWaveCount();
    TunedPlan plan;
    plan.gemm = setup.gemm;
    plan.effective_waves = waves;
    if (stored.partition.TotalWaves() == waves) {
      plan.partition = stored.partition;
    } else if (stored.partition.group_count() <= waves) {
      // The plan came from a different hardware generation or SM budget:
      // rescale rather than discard.
      plan.partition = ScalePartitionExact(stored.partition, waves);
    } else {
      continue;
    }
    plan.predicted_us = PredictOverlapLatency(setup, plan.partition).latency_us;
    plan.predicted_non_overlap_us = PredictNonOverlapLatency(setup);
    plan.candidates_evaluated = 1;
    const Key key{stored.shape.m, stored.shape.n, stored.shape.k,
                  static_cast<int>(stored.primitive)};
    plan_cache_[key] = std::move(plan);
    ++accepted;
  }
  return accepted;
}

TunedPlan Tuner::TuneNearest(const GemmShape& shape, CommPrimitive primitive) {
  // Only consider cached plans for the same primitive.
  const TunedPlan* nearest = nullptr;
  double best_distance = std::numeric_limits<double>::infinity();
  for (const auto& [key, plan] : plan_cache_) {
    if (std::get<3>(key) != static_cast<int>(primitive)) {
      continue;
    }
    const double dm = std::log2(static_cast<double>(shape.m)) -
                      std::log2(static_cast<double>(std::get<0>(key)));
    const double dn = std::log2(static_cast<double>(shape.n)) -
                      std::log2(static_cast<double>(std::get<1>(key)));
    const double dk = std::log2(static_cast<double>(shape.k)) -
                      std::log2(static_cast<double>(std::get<2>(key)));
    const double distance = dm * dm + dn * dn + dk * dk;
    if (distance < best_distance) {
      best_distance = distance;
      nearest = &plan;
    }
  }
  if (nearest == nullptr) {
    return Tune(shape, primitive);
  }
  // Rescale the neighbour's partition to this shape's wave count and
  // re-predict (cheap: a single candidate).
  PredictorSetup setup = MakeSetup(shape, primitive);
  TunedPlan plan;
  plan.gemm = setup.gemm;
  plan.effective_waves = setup.EffectiveWaveCount();
  plan.partition = ScalePartition(nearest->partition, plan.effective_waves);
  plan.predicted_us = PredictOverlapLatency(setup, plan.partition).latency_us;
  plan.predicted_non_overlap_us = PredictNonOverlapLatency(setup);
  plan.candidates_evaluated = 1;
  return plan;
}

}  // namespace flo
