#include "src/core/tuner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>
#include <utility>

#include "src/core/partition_search.h"
#include "src/gemm/gemm_model.h"
#include "src/obs/metrics.h"
#include "src/util/check.h"
#include "src/util/logging.h"

namespace flo {

Tuner::Tuner(ClusterSpec cluster, TunerConfig config)
    : cluster_(std::move(cluster)),
      config_(config),
      cost_model_(cluster_.link, cluster_.gpu_count) {
  FLO_CHECK_GE(config_.s1, 1);
  FLO_CHECK_GE(config_.sp, 1);
  FLO_CHECK_GE(config_.search_max_nodes, 1);
}

const GemmConfig& Tuner::GemmConfigFor(const GemmShape& shape) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gemm_cache_.find(shape);
  if (it == gemm_cache_.end()) {
    GemmModel model(cluster_.gpu);
    it = gemm_cache_.emplace(shape, model.Configure(shape)).first;
  }
  return it->second;
}

const Curve& Tuner::LatencyCurveFor(CommPrimitive primitive) {
  const int key = static_cast<int>(primitive);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = curve_cache_.find(key);
  if (it == curve_cache_.end()) {
    // Dense log-spaced sampling from 64 KiB to 4 GiB covers every group
    // size the engine can produce; 64 points per decade keeps the
    // interpolation error well under the jitter floor even across the
    // bandwidth cliff's curvature.
    Curve curve = cost_model_.SampleLatencyCurve(primitive, 64.0 * 1024,
                                                 4.0 * 1024 * 1024 * 1024, 64);
    it = curve_cache_.emplace(key, std::move(curve)).first;
  }
  return it->second;
}

PredictorSetup Tuner::MakeSetup(const GemmShape& shape, CommPrimitive primitive) {
  PredictorSetup setup;
  setup.gemm = GemmConfigFor(shape);
  setup.gpu = cluster_.gpu;
  setup.primitive = primitive;
  setup.latency_curve = LatencyCurveFor(primitive);
  setup.comm_sm_count = CommSmCount();
  setup.element_size = config_.element_size;
  return setup;
}

const TunedPlan& Tuner::Tune(const GemmShape& shape, CommPrimitive primitive) {
  const Key key{shape.m, shape.n, shape.k, static_cast<int>(primitive)};
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      auto it = plan_cache_.find(key);
      if (it != plan_cache_.end()) {
        return it->second;
      }
      if (searches_in_flight_.insert(key).second) {
        break;  // this thread owns the search for `key`
      }
      // Another thread is searching this key: wait for it rather than
      // duplicating the work (keeps search_count deterministic under any
      // thread count).
      search_done_.wait(lock);
    }
  }
  TunedPlan plan;
  try {
    plan = Search(shape, primitive);
  } catch (...) {
    // Release the single-flight claim, or every later Tune of this key
    // would wait forever on a search that no longer exists.
    std::lock_guard<std::mutex> lock(mu_);
    searches_in_flight_.erase(key);
    search_done_.notify_all();
    throw;
  }
  std::lock_guard<std::mutex> lock(mu_);
  // No overwrite: if a concurrent ImportPlans installed this key first,
  // keep its node — waiters may already hold a reference to it.
  const TunedPlan& cached = StorePlanLocked(key, std::move(plan), /*overwrite=*/false);
  searches_in_flight_.erase(key);
  search_done_.notify_all();
  return cached;
}

bool Tuner::Contains(const GemmShape& shape, CommPrimitive primitive) const {
  const Key key{shape.m, shape.n, shape.k, static_cast<int>(primitive)};
  std::lock_guard<std::mutex> lock(mu_);
  return plan_cache_.count(key) != 0;
}

std::vector<GemmShape> Tuner::CanonicalShapeMultiset(std::vector<GemmShape> shapes) {
  std::sort(shapes.begin(), shapes.end(), [](const GemmShape& a, const GemmShape& b) {
    return std::tuple(a.m, a.n, a.k) < std::tuple(b.m, b.n, b.k);
  });
  return shapes;
}

Tuner::MultiKey Tuner::CanonicalMultiKey(const std::vector<GemmShape>& shapes,
                                         CommPrimitive primitive) {
  MultiKey key;
  key.first.reserve(shapes.size());
  for (const GemmShape& shape : CanonicalShapeMultiset(shapes)) {
    key.first.push_back({shape.m, shape.n, shape.k});
  }
  key.second = static_cast<int>(primitive);
  return key;
}

const TunedMultiRankPlan& Tuner::TuneImbalanced(const std::vector<GemmShape>& shapes,
                                                CommPrimitive primitive) {
  FLO_CHECK(!shapes.empty());
  const MultiKey key = CanonicalMultiKey(shapes, primitive);
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      auto it = imbalanced_cache_.find(key);
      if (it != imbalanced_cache_.end()) {
        return it->second;
      }
      if (imbalanced_in_flight_.insert(key).second) {
        break;  // this thread owns the search for `key`
      }
      search_done_.wait(lock);
    }
  }
  TunedMultiRankPlan plan;
  try {
    plan = SearchImbalanced(key, primitive);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    imbalanced_in_flight_.erase(key);
    search_done_.notify_all();
    throw;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const TunedMultiRankPlan& cached =
      imbalanced_cache_.try_emplace(key, std::move(plan)).first->second;
  imbalanced_in_flight_.erase(key);
  search_done_.notify_all();
  return cached;
}

bool Tuner::ContainsImbalanced(const std::vector<GemmShape>& shapes,
                               CommPrimitive primitive) const {
  const MultiKey key = CanonicalMultiKey(shapes, primitive);
  std::lock_guard<std::mutex> lock(mu_);
  return imbalanced_cache_.count(key) != 0;
}

size_t Tuner::imbalanced_cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return imbalanced_cache_.size();
}

TunedMultiRankPlan Tuner::SearchImbalanced(const MultiKey& key, CommPrimitive primitive) {
  search_count_.fetch_add(1, std::memory_order_relaxed);
  // Duplicate ranks contribute identical accumulators under every
  // cross-rank max, so the search runs over the deduplicated (sorted)
  // shape set — bit-identical to replaying the full multiset.
  std::vector<PredictorSetup> setups;
  std::vector<double> non_overlap;
  for (size_t i = 0; i < key.first.size(); ++i) {
    if (i > 0 && key.first[i] == key.first[i - 1]) {
      continue;
    }
    const GemmShape shape{key.first[i][0], key.first[i][1], key.first[i][2]};
    setups.push_back(MakeSetup(shape, primitive));
    non_overlap.push_back(PredictNonOverlapLatency(setups.back()));
  }
  const MultiRankLatencyTable tables = BuildMultiRankLatencyTable(setups);

  PartitionSearchOptions options;
  options.s1 = config_.s1;
  options.sp = config_.sp;
  options.bounded = !(config_.exhaustive && tables.base_waves <= 20);
  options.max_nodes = static_cast<size_t>(config_.search_max_nodes);

  // Seed the incumbent with the deepest rank's single-rank plan: the
  // heaviest rank dominates the rendezvous, so its solo optimum is a
  // strong starting bound. Searched directly on that rank's table — no
  // Tune() call, so an imbalanced key costs exactly one counted search.
  static thread_local PartitionSearcher rank_searcher;
  static thread_local MultiRankPartitionSearcher searcher;
  const GroupLatencyTable* deepest = &tables.ranks[0];
  for (const GroupLatencyTable& table : tables.ranks) {
    if (table.waves > deepest->waves) {
      deepest = &table;
    }
  }
  const WavePartition seed = rank_searcher.Search(*deepest, options).partition;
  const MultiRankSearchResult result = searcher.Search(tables, options, &seed);
  if (result.budget_exhausted) {
    FLO_LOG(kWarning) << "multi-rank branch-and-bound hit the " << config_.search_max_nodes
                      << "-node budget at " << tables.base_waves
                      << " base waves; best-so-far plan kept";
  }
  TunedMultiRankPlan plan;
  plan.base = result.base;
  plan.base_waves = tables.base_waves;
  plan.predicted_us = result.predicted_us;
  plan.predicted_non_overlap_us = *std::max_element(non_overlap.begin(), non_overlap.end());
  plan.candidates_evaluated = static_cast<int>(
      std::min<size_t>(result.candidates_evaluated, std::numeric_limits<int>::max()));
  plan.search_nodes = result.nodes_visited;
  return plan;
}

size_t Tuner::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_cache_.size();
}

void Tuner::ExportMetrics(MetricsRegistry* registry) const {
  registry->Set(registry->Gauge("tuner.searches_total"), static_cast<double>(search_count()));
  registry->Set(registry->Gauge("tuner.plans_cached"), static_cast<double>(cache_size()));
}

const TunedPlan& Tuner::StorePlanLocked(const Key& key, TunedPlan plan, bool overwrite) {
  auto [it, inserted] = plan_cache_.try_emplace(key, std::move(plan));
  if (inserted) {
    nearest_index_[std::get<3>(key)].push_back(
        IndexEntry{std::log2(static_cast<double>(std::get<0>(key))),
                   std::log2(static_cast<double>(std::get<1>(key))),
                   std::log2(static_cast<double>(std::get<2>(key))), key, &it->second});
  } else if (overwrite) {
    // Mutates the node in place (index pointers stay valid). Only the
    // warm-start path asks for this; see the ImportPlans contract.
    it->second = std::move(plan);
  }
  return it->second;
}

TunedPlan Tuner::Search(const GemmShape& shape, CommPrimitive primitive) {
  search_count_.fetch_add(1, std::memory_order_relaxed);
  const PredictorSetup setup = MakeSetup(shape, primitive);
  const int waves = setup.EffectiveWaveCount();
  TunedPlan plan = config_.use_legacy_enumeration ? SearchLegacy(setup, waves)
                                                  : SearchBranchAndBound(setup, waves);
  FLO_LOG(kDebug) << "tuned " << shape.ToString() << " + " << CommPrimitiveName(primitive)
                  << ": partition " << plan.partition.ToString() << ", predicted "
                  << plan.predicted_us << " us over " << plan.candidates_evaluated
                  << " candidates (" << plan.search_nodes << " nodes)";
  return plan;
}

TunedPlan Tuner::SearchBranchAndBound(const PredictorSetup& setup, int waves) const {
  const GroupLatencyTable table = BuildGroupLatencyTable(setup);
  PartitionSearchOptions options;
  options.s1 = config_.s1;
  options.sp = config_.sp;
  // The exhaustive config searches the full 2^(T-1) space for modest T,
  // exactly like the legacy EnumerateAllPartitions baseline.
  options.bounded = !(config_.exhaustive && waves <= 20);
  options.max_nodes = static_cast<size_t>(config_.search_max_nodes);
  // One workspace per thread: the pool's parallel cold searches each reuse
  // their own preallocated buffers across searches.
  static thread_local PartitionSearcher searcher;
  const PartitionSearchResult result = searcher.Search(table, options);
  if (result.budget_exhausted) {
    FLO_LOG(kWarning) << "branch-and-bound search hit the " << config_.search_max_nodes
                      << "-node budget at " << waves << " waves; best-so-far plan kept";
  }
  TunedPlan plan;
  plan.gemm = setup.gemm;
  plan.effective_waves = waves;
  plan.partition = result.partition;
  plan.predicted_us = result.predicted_us;
  plan.predicted_non_overlap_us = PredictNonOverlapLatency(setup);
  plan.candidates_evaluated = static_cast<int>(
      std::min<size_t>(result.candidates_evaluated, std::numeric_limits<int>::max()));
  plan.search_nodes = result.nodes_visited;
  return plan;
}

TunedPlan Tuner::SearchLegacy(const PredictorSetup& setup, int waves) const {
  std::vector<WavePartition> candidates;
  if (config_.exhaustive && waves <= 20) {
    candidates = EnumerateAllPartitions(waves);
  } else {
    candidates = EnumeratePruned(waves, config_.s1, config_.sp, config_.max_candidates);
  }
  FLO_CHECK(!candidates.empty());

  TunedPlan plan;
  plan.gemm = setup.gemm;
  plan.effective_waves = waves;
  plan.predicted_non_overlap_us = PredictNonOverlapLatency(setup);
  double best = std::numeric_limits<double>::infinity();
  for (const auto& candidate : candidates) {
    const Prediction prediction = PredictOverlapLatency(setup, candidate);
    if (prediction.latency_us < best) {
      best = prediction.latency_us;
      plan.partition = candidate;
      plan.predicted_us = prediction.latency_us;
    }
  }
  plan.candidates_evaluated = static_cast<int>(candidates.size());
  return plan;
}

std::vector<StoredPlan> Tuner::ExportPlans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StoredPlan> plans;
  plans.reserve(plan_cache_.size());
  for (const auto& [key, plan] : plan_cache_) {
    StoredPlan stored;
    stored.shape = GemmShape{std::get<0>(key), std::get<1>(key), std::get<2>(key)};
    stored.primitive = static_cast<CommPrimitive>(std::get<3>(key));
    stored.partition = plan.partition;
    stored.predicted_us = plan.predicted_us;
    stored.predicted_non_overlap_us = plan.predicted_non_overlap_us;
    plans.push_back(std::move(stored));
  }
  return plans;
}

int Tuner::ImportPlans(const std::vector<StoredPlan>& plans) {
  int accepted = 0;
  for (const auto& stored : plans) {
    PredictorSetup setup = MakeSetup(stored.shape, stored.primitive);
    const int waves = setup.EffectiveWaveCount();
    TunedPlan plan;
    plan.gemm = setup.gemm;
    plan.effective_waves = waves;
    if (stored.partition.TotalWaves() == waves) {
      plan.partition = stored.partition;
    } else if (stored.partition.group_count() <= waves) {
      // The plan came from a different hardware generation or SM budget:
      // rescale rather than discard.
      plan.partition = ScalePartitionExact(stored.partition, waves);
    } else {
      continue;
    }
    plan.predicted_us = PredictOverlapLatency(setup, plan.partition).latency_us;
    plan.predicted_non_overlap_us = PredictNonOverlapLatency(setup);
    plan.candidates_evaluated = 1;
    const Key key{stored.shape.m, stored.shape.n, stored.shape.k,
                  static_cast<int>(stored.primitive)};
    std::lock_guard<std::mutex> lock(mu_);
    StorePlanLocked(key, std::move(plan), /*overwrite=*/true);
    ++accepted;
  }
  return accepted;
}

TunedPlan Tuner::TuneNearest(const GemmShape& shape, CommPrimitive primitive) {
  // Only consider cached plans for the same primitive, via the
  // per-primitive index (log-extents precomputed at insert time).
  WavePartition nearest_partition;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto index_it = nearest_index_.find(static_cast<int>(primitive));
    if (index_it != nearest_index_.end() && !index_it->second.empty()) {
      const double qm = std::log2(static_cast<double>(shape.m));
      const double qn = std::log2(static_cast<double>(shape.n));
      const double qk = std::log2(static_cast<double>(shape.k));
      double best_distance = std::numeric_limits<double>::infinity();
      const IndexEntry* nearest = nullptr;
      for (const IndexEntry& entry : index_it->second) {
        const double dm = qm - entry.log_m;
        const double dn = qn - entry.log_n;
        const double dk = qk - entry.log_k;
        const double distance = dm * dm + dn * dn + dk * dk;
        // Key tie-break: index order is pool-completion order under
        // parallel tuning, so distance alone would be nondeterministic
        // for equidistant neighbours.
        if (distance < best_distance ||
            (distance == best_distance && nearest != nullptr && entry.key < nearest->key)) {
          best_distance = distance;
          nearest = &entry;
        }
      }
      nearest_partition = nearest->plan->partition;
      found = true;
    }
  }
  if (!found) {
    return Tune(shape, primitive);
  }
  // Rescale the neighbour's partition to this shape's wave count and
  // re-predict (cheap: a single candidate).
  PredictorSetup setup = MakeSetup(shape, primitive);
  TunedPlan plan;
  plan.gemm = setup.gemm;
  plan.effective_waves = setup.EffectiveWaveCount();
  plan.partition = ScalePartition(nearest_partition, plan.effective_waves);
  plan.predicted_us = PredictOverlapLatency(setup, plan.partition).latency_us;
  plan.predicted_non_overlap_us = PredictNonOverlapLatency(setup);
  plan.candidates_evaluated = 1;
  return plan;
}

}  // namespace flo
