// Real-time tuner: offline profiling + online predictive search (Sec. 4.2).
//
// Offline (once per deployment): derive GEMM configurations, sample the
// communication latency curve, determine the collective's SM footprint.
// Online (once per new GEMM size): search the wave-group design space for
// the candidate with the lowest predicted latency. The default search is
// the fused branch-and-bound walk of src/core/partition_search.h over a
// precomputed per-group-wave-count latency table; the legacy
// enumerate-then-evaluate pipeline survives behind
// TunerConfig::use_legacy_enumeration as the accuracy/performance baseline.
// Results are cached; unseen sizes can be served by nearest-neighbour
// matching so dynamic workloads (LLM inference) never pay search latency
// in-band.
//
// Concurrency: every public method is thread-safe. Cache lookups take a
// short critical section; a cache-missing Tune releases the lock for the
// search itself and single-flights concurrent requests for the same key,
// so a thread pool can drive many cold searches for distinct keys in
// parallel (each key is searched exactly once, keeping search_count and
// the cached plans deterministic regardless of thread count). One
// exception: ImportPlans overwrites already-cached plans in place, so it
// must not run while another thread holds a reference to a plan of the
// same key — it is a warm-start operation, meant to run before serving.
#ifndef SRC_CORE_TUNER_H_
#define SRC_CORE_TUNER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/comm/cost_model.h"
#include "src/core/plan_store.h"
#include "src/core/predictor.h"
#include "src/core/wave_partition.h"
#include "src/hw/cluster.h"

namespace flo {

struct TunerConfig {
  // Pruning bounds on the first/last group sizes (paper uses S1=2, SP=4).
  int s1 = 2;
  int sp = 4;
  int max_candidates = 65536;
  // If true, search the full 2^(T-1) space (the accuracy baseline of
  // Sec. 6.5); only viable for modest T.
  bool exhaustive = false;
  int element_size = 2;
  // Use the pre-branch-and-bound enumerate-then-evaluate pipeline
  // (EnumeratePruned/EnumerateAllPartitions + per-candidate prediction).
  // Kept as the differential-testing and benchmarking baseline.
  bool use_legacy_enumeration = false;
  // Node budget for the branch-and-bound search (group extensions); on
  // exhaustion the best plan found so far is returned.
  int search_max_nodes = 1 << 24;
};

struct TunedPlan {
  WavePartition partition;
  double predicted_us = 0.0;
  double predicted_non_overlap_us = 0.0;
  GemmConfig gemm;
  int effective_waves = 0;
  int candidates_evaluated = 0;
  // Branch-and-bound group extensions examined (0 for the legacy path).
  size_t search_nodes = 0;
};

// Result of the joint multi-rank search (imbalanced All-to-All,
// Sec. 4.2.2): the best base composition over the deepest rank's wave
// count; each rank executes its prefix-local projection (ProjectPartition).
struct TunedMultiRankPlan {
  WavePartition base;
  // Rendezvous overlap latency of `base` (PredictOverlapLatencyMultiRank
  // over the projected partitions — the search's table recurrence is
  // bit-identical to that replay).
  double predicted_us = 0.0;
  // Sequential baseline: max over ranks of the per-rank non-overlap
  // latency (GEMM + whole-payload collective).
  double predicted_non_overlap_us = 0.0;
  int base_waves = 0;
  int candidates_evaluated = 0;
  size_t search_nodes = 0;
};

class Tuner {
 public:
  explicit Tuner(ClusterSpec cluster, TunerConfig config = {});

  const ClusterSpec& cluster() const { return cluster_; }
  const TunerConfig& config() const { return config_; }
  const CommCostModel& cost_model() const { return cost_model_; }

  // --- Offline stage artifacts (computed lazily, cached) ---
  // Returned references stay valid for the tuner's lifetime (node-based
  // containers; entries are never erased).
  const GemmConfig& GemmConfigFor(const GemmShape& shape);
  const Curve& LatencyCurveFor(CommPrimitive primitive);
  int CommSmCount() const { return cluster_.link.comm_sm_count; }
  PredictorSetup MakeSetup(const GemmShape& shape, CommPrimitive primitive);

  // --- Online stage ---
  // Searches the (pruned or exhaustive) space for `shape` and caches the
  // result. Concurrent calls for the same key wait on one search.
  const TunedPlan& Tune(const GemmShape& shape, CommPrimitive primitive);

  // True when a Tune for this key would be served from the cache. A peek:
  // no search, no stats. (An in-flight search does not count — the plan is
  // visible only once cached.)
  bool Contains(const GemmShape& shape, CommPrimitive primitive) const;

  // Joint multi-rank search for an imbalanced per-rank shape set, cached
  // and single-flighted like Tune. The key is the canonical rank-shape
  // multiset (sorted), so rank order never splits the cache and two sets
  // sharing a heaviest rank but differing light ranks never collide.
  // Counts one predictive search per cache miss.
  const TunedMultiRankPlan& TuneImbalanced(const std::vector<GemmShape>& shapes,
                                           CommPrimitive primitive);

  // Cache peek for TuneImbalanced, mirroring Contains.
  bool ContainsImbalanced(const std::vector<GemmShape>& shapes,
                          CommPrimitive primitive) const;

  // Canonical sorted order of a rank-shape multiset — the single ordering
  // home shared by the TuneImbalanced cache key and the planner's
  // pre-tune requests (OverlapPlanner::TuningRequest), so the two can
  // never drift apart and recreate the pre-tune mis-warm collision.
  static std::vector<GemmShape> CanonicalShapeMultiset(std::vector<GemmShape> shapes);

  size_t imbalanced_cache_size() const;

  // Serves an unseen size from the cache by nearest-neighbour matching on
  // log-scale (M, N, K) distance, via a per-primitive index of cached
  // plans; falls back to Tune when no plan of the primitive is cached. The
  // returned plan is rescaled to the query's wave count.
  TunedPlan TuneNearest(const GemmShape& shape, CommPrimitive primitive);

  size_t cache_size() const;

  // Number of predictive searches actually executed (cache misses). Batch
  // callers use this to demonstrate that warm sweeps never search in-band.
  size_t search_count() const { return search_count_.load(std::memory_order_relaxed); }

  // Observability mirror: writes the tuner's totals into registry gauges
  // ("tuner.searches_total", "tuner.plans_cached"). Name-idempotent, so
  // checkpoint pollers re-export onto the same columns every interval.
  void ExportMetrics(MetricsRegistry* registry) const;

  // Snapshot of the plan cache, for persistence via src/core/plan_store.h.
  std::vector<StoredPlan> ExportPlans() const;

  // Installs pre-searched plans into the cache (deployment warm start);
  // returns the number of plans accepted. Plans whose partition does not
  // cover the shape's effective wave count on this cluster are rescaled.
  // Overwrites existing entries in place — run it before handing the
  // tuner to concurrent users (see the class comment).
  int ImportPlans(const std::vector<StoredPlan>& plans);

 private:
  using Key = std::tuple<int64_t, int64_t, int64_t, int>;
  // Canonical imbalanced key: sorted (m, n, k) multiset + primitive.
  using MultiKey = std::pair<std::vector<std::array<int64_t, 3>>, int>;

  static MultiKey CanonicalMultiKey(const std::vector<GemmShape>& shapes,
                                    CommPrimitive primitive);

  // Nearest-neighbour index entry: precomputed log-extents of a cached
  // plan. Pointers reference plan_cache_ nodes (stable; never erased).
  // The key breaks distance ties, so TuneNearest is deterministic even
  // though parallel tuning appends entries in pool-completion order.
  struct IndexEntry {
    double log_m;
    double log_n;
    double log_k;
    Key key;
    const TunedPlan* plan;
  };

  TunedPlan Search(const GemmShape& shape, CommPrimitive primitive);
  TunedPlan SearchLegacy(const PredictorSetup& setup, int waves) const;
  TunedPlan SearchBranchAndBound(const PredictorSetup& setup, int waves) const;
  // The fused multi-rank search over the deduplicated shape set (the
  // rendezvous max is unchanged by duplicate ranks).
  TunedMultiRankPlan SearchImbalanced(const MultiKey& key, CommPrimitive primitive);
  // Caches a plan and keeps the per-primitive nearest-neighbour index in
  // sync; an existing entry is kept untouched unless `overwrite` (which
  // mutates the node in place — ImportPlans only). Returns the cached
  // node.
  const TunedPlan& StorePlanLocked(const Key& key, TunedPlan plan, bool overwrite);

  ClusterSpec cluster_;
  TunerConfig config_;
  CommCostModel cost_model_;

  mutable std::mutex mu_;
  std::condition_variable search_done_;
  std::set<Key> searches_in_flight_;
  std::set<MultiKey> imbalanced_in_flight_;
  std::unordered_map<GemmShape, GemmConfig, GemmShapeHash> gemm_cache_;
  std::map<int, Curve> curve_cache_;
  std::map<Key, TunedPlan> plan_cache_;
  std::map<MultiKey, TunedMultiRankPlan> imbalanced_cache_;
  // primitive -> index over the cached plans of that primitive.
  std::map<int, std::vector<IndexEntry>> nearest_index_;
  std::atomic<size_t> search_count_ = 0;
};

}  // namespace flo

#endif  // SRC_CORE_TUNER_H_
