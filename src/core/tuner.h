// Real-time tuner: offline profiling + online predictive search (Sec. 4.2).
//
// Offline (once per deployment): derive GEMM configurations, sample the
// communication latency curve, determine the collective's SM footprint.
// Online (once per new GEMM size): enumerate the pruned wave-group design
// space and pick the candidate with the lowest predicted latency. Results
// are cached; unseen sizes can be served by nearest-neighbour matching so
// dynamic workloads (LLM inference) never pay search latency in-band.
#ifndef SRC_CORE_TUNER_H_
#define SRC_CORE_TUNER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/comm/cost_model.h"
#include "src/core/plan_store.h"
#include "src/core/predictor.h"
#include "src/core/wave_partition.h"
#include "src/hw/cluster.h"

namespace flo {

struct TunerConfig {
  // Pruning bounds on the first/last group sizes (paper uses S1=2, SP=4).
  int s1 = 2;
  int sp = 4;
  int max_candidates = 65536;
  // If true, search the full 2^(T-1) space (the accuracy baseline of
  // Sec. 6.5); only viable for modest T.
  bool exhaustive = false;
  int element_size = 2;
};

struct TunedPlan {
  WavePartition partition;
  double predicted_us = 0.0;
  double predicted_non_overlap_us = 0.0;
  GemmConfig gemm;
  int effective_waves = 0;
  int candidates_evaluated = 0;
};

class Tuner {
 public:
  explicit Tuner(ClusterSpec cluster, TunerConfig config = {});

  const ClusterSpec& cluster() const { return cluster_; }
  const TunerConfig& config() const { return config_; }
  const CommCostModel& cost_model() const { return cost_model_; }

  // --- Offline stage artifacts (computed lazily, cached) ---
  const GemmConfig& GemmConfigFor(const GemmShape& shape);
  const Curve& LatencyCurveFor(CommPrimitive primitive);
  int CommSmCount() const { return cluster_.link.comm_sm_count; }
  PredictorSetup MakeSetup(const GemmShape& shape, CommPrimitive primitive);

  // --- Online stage ---
  // Searches the (pruned or exhaustive) space for `shape` and caches the
  // result.
  const TunedPlan& Tune(const GemmShape& shape, CommPrimitive primitive);

  // Serves an unseen size from the cache by nearest-neighbour matching on
  // log-scale (M, N, K) distance; falls back to Tune when the cache is
  // empty. The returned plan is rescaled to the query's wave count.
  TunedPlan TuneNearest(const GemmShape& shape, CommPrimitive primitive);

  size_t cache_size() const { return plan_cache_.size(); }

  // Number of predictive searches actually executed (cache misses). Batch
  // callers use this to demonstrate that warm sweeps never search in-band.
  size_t search_count() const { return search_count_; }

  // Snapshot of the plan cache, for persistence via src/core/plan_store.h.
  std::vector<StoredPlan> ExportPlans() const;

  // Installs pre-searched plans into the cache (deployment warm start);
  // returns the number of plans accepted. Plans whose partition does not
  // cover the shape's effective wave count on this cluster are rescaled.
  int ImportPlans(const std::vector<StoredPlan>& plans);

 private:
  using Key = std::tuple<int64_t, int64_t, int64_t, int>;

  TunedPlan Search(const GemmShape& shape, CommPrimitive primitive);

  ClusterSpec cluster_;
  TunerConfig config_;
  CommCostModel cost_model_;
  std::map<std::string, GemmConfig> gemm_cache_;
  std::map<int, Curve> curve_cache_;
  std::map<Key, TunedPlan> plan_cache_;
  size_t search_count_ = 0;
};

}  // namespace flo

#endif  // SRC_CORE_TUNER_H_
