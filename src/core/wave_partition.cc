#include "src/core/wave_partition.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <sstream>

#include "src/util/check.h"
#include "src/util/logging.h"

namespace flo {

int WavePartition::TotalWaves() const {
  return std::accumulate(group_sizes.begin(), group_sizes.end(), 0);
}

bool WavePartition::Valid(int wave_count) const {
  if (group_sizes.empty()) {
    return false;
  }
  for (int size : group_sizes) {
    if (size <= 0) {
      return false;
    }
  }
  return TotalWaves() == wave_count;
}

std::string WavePartition::ToString() const {
  std::ostringstream out;
  out << "(";
  for (size_t i = 0; i < group_sizes.size(); ++i) {
    out << (i == 0 ? "" : ",") << group_sizes[i];
  }
  out << ")";
  return out.str();
}

WavePartition WavePartition::PerWave(int wave_count) {
  FLO_CHECK_GE(wave_count, 1);
  return WavePartition{std::vector<int>(wave_count, 1)};
}

WavePartition WavePartition::SingleGroup(int wave_count) {
  FLO_CHECK_GE(wave_count, 1);
  return WavePartition{{wave_count}};
}

WavePartition WavePartition::EqualSized(int wave_count, int group_waves) {
  FLO_CHECK_GE(wave_count, 1);
  FLO_CHECK_GE(group_waves, 1);
  WavePartition partition;
  int remaining = wave_count;
  while (remaining > 0) {
    const int take = std::min(group_waves, remaining);
    partition.group_sizes.push_back(take);
    remaining -= take;
  }
  return partition;
}

std::vector<WavePartition> EnumerateAllPartitions(int wave_count) {
  FLO_CHECK_GE(wave_count, 1);
  FLO_CHECK_LE(wave_count, 20) << "design space 2^(T-1) too large; use EnumeratePruned";
  std::vector<WavePartition> result;
  // Each bitmask over the first T-1 wave boundaries decides "communicate
  // here" (1) or not (0); the final boundary is forced.
  const uint32_t combos = 1u << (wave_count - 1);
  result.reserve(combos);
  for (uint32_t mask = 0; mask < combos; ++mask) {
    WavePartition partition;
    int current = 1;
    for (int boundary = 0; boundary < wave_count - 1; ++boundary) {
      if ((mask >> boundary) & 1u) {
        partition.group_sizes.push_back(current);
        current = 1;
      } else {
        ++current;
      }
    }
    partition.group_sizes.push_back(current);
    result.push_back(std::move(partition));
  }
  return result;
}

namespace {

// Returns true when the max_candidates cap forced it to abandon part of
// the space (every abandoned subtree holds at least one admissible
// partition — a 1-wave closer is always within the sp bound).
bool EnumeratePrunedRecursive(int remaining, int s1, int sp, bool is_first,
                              std::vector<int>* current, std::vector<WavePartition>* out,
                              int max_candidates) {
  const int limit = is_first ? s1 : remaining;
  for (int take = 1; take <= std::min(limit, remaining); ++take) {
    if (take == remaining) {
      // Closing group: enforce the last-group bound unless it is also the
      // first group (single-group partition is always admissible).
      if (!is_first && take > sp) {
        continue;
      }
      if (static_cast<int>(out->size()) >= max_candidates) {
        return true;
      }
      current->push_back(take);
      out->push_back(WavePartition{*current});
      current->pop_back();
      continue;
    }
    if (static_cast<int>(out->size()) >= max_candidates) {
      return true;
    }
    current->push_back(take);
    const bool truncated = EnumeratePrunedRecursive(remaining - take, s1, sp,
                                                    /*is_first=*/false, current, out,
                                                    max_candidates);
    current->pop_back();
    if (truncated) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<WavePartition> EnumeratePruned(int wave_count, int s1, int sp, int max_candidates) {
  FLO_CHECK_GE(wave_count, 1);
  FLO_CHECK_GE(s1, 1);
  FLO_CHECK_GE(sp, 1);
  FLO_CHECK_GE(max_candidates, 1);
  std::set<std::vector<int>> unique;
  // Insurance seeds, tracked separately so a max_candidates overflow can
  // never evict them from the emitted set (the lexicographic order of
  // `unique` would otherwise silently drop e.g. the single-group
  // partition, whose vector {T} sorts last).
  std::set<std::vector<int>> seeds;
  // The single-group partition (communicate everything at the end) is
  // always admissible: it is the graceful "don't overlap" fallback that
  // guarantees the tuned plan never predicts worse than sequential
  // execution, even on links where any segmentation loses.
  seeds.insert(WavePartition::SingleGroup(wave_count).group_sizes);
  // Equal-sized partitions for every group size: cheap insurance for
  // cliff-heavy links where the head bound would otherwise exclude the
  // few-large-groups optima.
  for (int body = 1; body <= wave_count; ++body) {
    seeds.insert(WavePartition::EqualSized(wave_count, body).group_sizes);
  }
  unique.insert(seeds.begin(), seeds.end());
  bool recursion_truncated = false;
  // Up to 36 waves the recursive enumeration is affordable: it terminates
  // at max_candidates, and with seed retention below a truncated space is
  // still safe. Beyond that even reaching the cap costs real time per
  // search, so very deep GEMMs use the structured family instead.
  if (wave_count <= 36) {
    std::vector<WavePartition> pruned;
    std::vector<int> current;
    recursion_truncated = EnumeratePrunedRecursive(wave_count, s1, sp, /*is_first=*/true,
                                                   &current, &pruned, max_candidates);
    for (const auto& p : pruned) {
      unique.insert(p.group_sizes);
    }
  } else {
    // Structured fallback for very deep GEMMs: equal-sized bodies with a
    // bounded head and tail. Covers the shapes the full space's optima
    // take in practice (small head, monotone body, bounded tail).
    for (int head = 1; head <= s1; ++head) {
      for (int body = 1; body <= std::max(1, wave_count / 2); body *= 2) {
        for (int tail = 1; tail <= sp; ++tail) {
          const int middle = wave_count - head - tail;
          if (middle < 0) {
            continue;
          }
          std::vector<int> sizes{head};
          int remaining = middle;
          while (remaining > 0) {
            const int take = std::min(body, remaining);
            sizes.push_back(take);
            remaining -= take;
          }
          sizes.push_back(tail);
          unique.insert(std::move(sizes));
        }
      }
    }
  }
  std::vector<WavePartition> result;
  result.reserve(std::min<size_t>(unique.size(), max_candidates));
  if (static_cast<int>(unique.size()) > max_candidates) {
    // Over the cap: emit every seed first (single-group before the
    // equal-sized families, so it survives even a cap smaller than the
    // seed count), then fill lexicographically.
    result.push_back(WavePartition::SingleGroup(wave_count));
    for (const auto& sizes : seeds) {
      if (static_cast<int>(result.size()) >= max_candidates) {
        break;
      }
      if (sizes != result.front().group_sizes) {
        result.push_back(WavePartition{sizes});
      }
    }
    for (const auto& sizes : unique) {
      if (static_cast<int>(result.size()) >= max_candidates) {
        break;
      }
      if (seeds.count(sizes) == 0) {
        result.push_back(WavePartition{sizes});
      }
    }
    FLO_LOG(kWarning) << "EnumeratePruned(" << wave_count << ", s1=" << s1 << ", sp=" << sp
                      << ") dropped " << unique.size() - result.size()
                      << " candidates over the max_candidates=" << max_candidates
                      << " cap (insurance seeds retained)";
  } else {
    for (const auto& sizes : unique) {
      result.push_back(WavePartition{sizes});
    }
    if (recursion_truncated) {
      FLO_LOG(kWarning) << "EnumeratePruned(" << wave_count << ", s1=" << s1 << ", sp=" << sp
                        << ") stopped enumerating at the max_candidates=" << max_candidates
                        << " cap; the pruned space was not fully explored";
    }
  }
  return result;
}

WavePartition ScalePartitionExact(const WavePartition& partition, int to_waves) {
  const int groups = partition.group_count();
  FLO_CHECK_GE(to_waves, groups);
  const int from_waves = partition.TotalWaves();
  WavePartition scaled;
  scaled.group_sizes.resize(groups);
  int previous_boundary = 0;
  int cumulative = 0;
  for (int g = 0; g < groups; ++g) {
    cumulative += partition.group_sizes[g];
    int boundary = static_cast<int>(
        static_cast<double>(cumulative) * to_waves / from_waves + 0.5);
    // Leave room so every remaining group still gets >= 1 wave.
    const int min_boundary = previous_boundary + 1;
    const int max_boundary = to_waves - (groups - 1 - g);
    boundary = std::clamp(boundary, min_boundary, max_boundary);
    if (g == groups - 1) {
      boundary = to_waves;
    }
    scaled.group_sizes[g] = boundary - previous_boundary;
    previous_boundary = boundary;
  }
  FLO_CHECK(scaled.Valid(to_waves));
  return scaled;
}

std::optional<WavePartition> ProjectPartition(const WavePartition& base, int from_waves,
                                              int to_waves) {
  FLO_CHECK_GE(to_waves, 1);
  FLO_CHECK_EQ(base.TotalWaves(), from_waves);
  const int groups = base.group_count();
  WavePartition projected;
  projected.group_sizes.resize(groups);
  int previous = 0;
  int cum = 0;
  for (int g = 0; g < groups; ++g) {
    cum += base.group_sizes[g];
    int boundary;
    if (g == groups - 1) {
      boundary = to_waves;
    } else {
      boundary = ProjectedBoundary(cum, from_waves, to_waves, previous);
      if (boundary >= to_waves) {
        return std::nullopt;  // the rank's final wave must stay in the last group
      }
    }
    projected.group_sizes[g] = boundary - previous;
    previous = boundary;
  }
  FLO_CHECK(projected.Valid(to_waves));
  return projected;
}

std::vector<int> SplitTilesByFractions(int total, const std::vector<double>& fractions) {
  const int groups = static_cast<int>(fractions.size());
  FLO_CHECK_GE(groups, 1);
  FLO_CHECK_GE(total, groups);
  std::vector<int> counts(groups);
  int previous_boundary = 0;
  double cumulative = 0.0;
  for (int g = 0; g < groups; ++g) {
    cumulative += fractions[g];
    int boundary = static_cast<int>(cumulative * total + 0.5);
    const int min_boundary = previous_boundary + 1;
    const int max_boundary = total - (groups - 1 - g);
    boundary = std::clamp(boundary, min_boundary, max_boundary);
    if (g == groups - 1) {
      boundary = total;
    }
    counts[g] = boundary - previous_boundary;
    previous_boundary = boundary;
  }
  return counts;
}

WavePartition ScalePartition(const WavePartition& partition, int to_waves) {
  FLO_CHECK_GE(to_waves, 1);
  const int from_waves = partition.TotalWaves();
  FLO_CHECK_GE(from_waves, 1);
  if (from_waves == to_waves) {
    return partition;
  }
  WavePartition scaled;
  int assigned = 0;
  int cumulative = 0;
  for (int size : partition.group_sizes) {
    cumulative += size;
    // Proportional prefix sums, rounded; guarantees monotone boundaries.
    int boundary = static_cast<int>(
        static_cast<double>(cumulative) * to_waves / from_waves + 0.5);
    boundary = std::clamp(boundary, assigned, to_waves);
    if (boundary > assigned) {
      scaled.group_sizes.push_back(boundary - assigned);
      assigned = boundary;
    }
  }
  if (assigned < to_waves) {
    if (scaled.group_sizes.empty()) {
      scaled.group_sizes.push_back(to_waves - assigned);
    } else {
      scaled.group_sizes.back() += to_waves - assigned;
    }
  }
  FLO_CHECK(scaled.Valid(to_waves));
  return scaled;
}

}  // namespace flo
