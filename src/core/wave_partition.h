// Wave-group partitions: the tunable design space (paper Sec. 3.4).
//
// After each of T waves the design makes a binary choice — communicate the
// accumulated tiles or keep accumulating — except the last wave, which must
// communicate. A partition is therefore a composition of T into positive
// group sizes; the space has 2^(T-1) members.
#ifndef SRC_CORE_WAVE_PARTITION_H_
#define SRC_CORE_WAVE_PARTITION_H_

#include <optional>
#include <string>
#include <vector>

namespace flo {

struct WavePartition {
  // group_sizes[j] = |G_j| in waves; all positive, sums to the wave count.
  std::vector<int> group_sizes;

  int group_count() const { return static_cast<int>(group_sizes.size()); }
  int TotalWaves() const;
  bool Valid(int wave_count) const;
  std::string ToString() const;

  bool operator==(const WavePartition&) const = default;

  // One group per wave — the most fine-grained ("baseline") partition.
  static WavePartition PerWave(int wave_count);
  // Everything in one group — degenerates to non-overlapped execution.
  static WavePartition SingleGroup(int wave_count);
  // Equal group sizes of `group_waves` (last group takes the remainder);
  // the "Egs=n" ablation strategy of Fig. 14.
  static WavePartition EqualSized(int wave_count, int group_waves);
};

// All 2^(T-1) compositions of `wave_count`. Aborts if wave_count > 20 to
// avoid accidental blowup; use EnumeratePruned for big T.
std::vector<WavePartition> EnumerateAllPartitions(int wave_count);

// Pruned design space (Sec. 4.1.4): first group <= s1 waves, last group
// <= sp waves. If the pruned space still exceeds `max_candidates`, falls
// back to a structured candidate family (equal-sized + geometric ramps)
// so tuning stays real-time for very large T.
std::vector<WavePartition> EnumeratePruned(int wave_count, int s1, int sp,
                                           int max_candidates = 65536);

// Rescales a partition tuned for `from_waves` to a GEMM with `to_waves`
// (used for All-to-All ranks with imbalanced token counts).
WavePartition ScalePartition(const WavePartition& partition, int to_waves);

// Prefix-local boundary of a projected partition: where a base prefix of
// `cum` waves (out of `from_waves`) lands on a rank with `to_waves` waves,
// given the rank's previous boundary. The single home of the rounding
// expression shared by ProjectPartition and the fused multi-rank search —
// the boundary depends only on the base prefix sum, never on later groups,
// so the branch-and-bound can extend projections one group at a time.
inline int ProjectedBoundary(int cum, int from_waves, int to_waves, int previous) {
  const int scaled =
      static_cast<int>(static_cast<double>(cum) * to_waves / from_waves + 0.5);
  return scaled > previous + 1 ? scaled : previous + 1;
}

// Projects `base` (a composition of `from_waves`) onto a rank with
// `to_waves` waves via ProjectedBoundary; the final boundary is forced to
// `to_waves` so the projection keeps the group count exactly (collectives
// are rendezvous calls). Returns std::nullopt when infeasible: an
// intermediate boundary would already consume the rank's final wave,
// leaving no wave for a later group — only possible when
// base.group_count() approaches `to_waves`.
std::optional<WavePartition> ProjectPartition(const WavePartition& base, int from_waves,
                                              int to_waves);

// Like ScalePartition but preserves the group count exactly (every group
// keeps at least one wave). Collective calls are rendezvous operations, so
// imbalanced ranks must agree on the number of groups. Requires
// to_waves >= partition.group_count().
WavePartition ScalePartitionExact(const WavePartition& partition, int to_waves);

// Splits `total` tiles into per-group tile counts proportional to
// `fractions` (which must sum to ~1); every group gets at least one tile.
// Requires total >= fractions.size().
std::vector<int> SplitTilesByFractions(int total, const std::vector<double>& fractions);

}  // namespace flo

#endif  // SRC_CORE_WAVE_PARTITION_H_
