// Typed fault kinds, the seeded chaos configuration, and the recovery
// report the serving fleet produces under injection.
//
// The fault plane is deterministic by construction: a FaultConfig seed
// expands into a fixed FaultSchedule (src/fault/fault_schedule.h), every
// injection and recovery action runs on the shared EventLoop's sim clock,
// and all jitter is derived from stable hashes — so a given seed yields
// bit-identical FleetReports (including the FaultReport below) across
// reruns, host thread counts, and event-loop backends. A zero-fault
// config schedules nothing and leaves every run bit-identical to a build
// that never had the plane.
#ifndef SRC_FAULT_FAULT_CONFIG_H_
#define SRC_FAULT_FAULT_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace flo {

// The injectable fault taxonomy (Slurm's NODE_FAIL / drain / health-check
// shapes, mapped onto the simulated serving fleet).
enum class FaultKind : uint8_t {
  // Replica dies: session torn down (queued and in-flight requests
  // requeued through the router), PlanStore contents lost; the replica
  // restarts after a delay and re-warms from the shipper's published set.
  kCrash = 0,
  // Executor stalls: no new dispatches until the window ends. If the
  // stall outlives the detection deadline, pending work is requeued the
  // way a deadline-missed request would be.
  kHang,
  // Straggler: every batch on the replica costs `magnitude`x for the
  // window; the replica is drained from routing (unroutable) until the
  // window ends, like Slurm draining an unhealthy node.
  kSlowdown,
  // Every cold tuner search in flight on the replica aborts when it
  // completes: the plan is discarded and the batch retries with
  // exponential backoff, degrading to the single-group safety plan when
  // the retry budget exhausts.
  kTunerFail,
  // Shipping loss window: freshly published plans fail to reach a
  // deterministic `magnitude` fraction of peers. Victims recover through
  // the existing re-ship pull path (BeginTuning against a published key),
  // never by re-paying the search.
  kShipLoss,
  kCount,
};

const char* FaultKindName(FaultKind kind);

// Seeded chaos shape plus the recovery policy knobs. `enabled()` false
// (the default) injects nothing and perturbs nothing.
struct FaultConfig {
  uint64_t seed = 1;
  // Injection times are drawn uniformly over (0, horizon_us); pick the
  // rough makespan of the fault-free run.
  double horizon_us = 0.0;
  // Faults per kind in the generated schedule.
  int crashes = 0;
  int hangs = 0;
  int slowdowns = 0;
  int tuner_failures = 0;
  int ship_loss_windows = 0;
  // Per-kind windows and magnitudes.
  double crash_restart_us = 5000.0;       // crash -> restart delay
  double hang_window_us = 4000.0;         // stall duration
  double hang_detect_us = 1500.0;         // deadline before pending work requeues
  double slowdown_window_us = 8000.0;     // straggler window
  double slowdown_multiplier = 3.0;       // execution-cost multiplier
  double ship_loss_window_us = 5000.0;    // drop-filter window
  double ship_loss_fraction = 0.5;        // per-(key, peer) drop probability
  // Recovery policy: requeued requests back off exponentially
  // (base * 2^(retries-1) + seeded jitter) and are flagged once they
  // exceed the budget (the run still completes them — the budget bounds
  // the backoff growth and feeds the report, it does not shed load).
  int retry_budget = 5;
  double retry_backoff_base_us = 200.0;
  double retry_backoff_jitter_us = 50.0;
  // Cold searches aborted by kTunerFail retry at most this many times
  // before the batch serves the single-group safety plan instead.
  int tuner_retry_budget = 2;

  bool enabled() const {
    return crashes > 0 || hangs > 0 || slowdowns > 0 || tuner_failures > 0 ||
           ship_loss_windows > 0;
  }
};

// The fault section of a FleetReport: injections performed and the
// recovery work they triggered. All counters are per run and
// deterministic for a fixed schedule.
struct FaultReport {
  bool enabled = false;
  // Injections actually applied (an event targeting a retired or already
  // unhealthy replica is skipped, deterministically).
  size_t injected_crashes = 0;
  size_t injected_hangs = 0;
  size_t injected_slowdowns = 0;
  size_t injected_tuner_failures = 0;
  size_t injected_ship_loss_windows = 0;
  // Recovery: requests pulled off a failed replica and rescheduled.
  size_t requests_requeued = 0;
  // Requeued requests successfully re-placed through the router.
  size_t requests_retried = 0;
  // Requests whose retry count exceeded the budget (still served).
  size_t retry_budget_exhausted = 0;
  // Requeue firings that found no routable replica and backed off again.
  size_t placement_stalls = 0;
  // Requests served on the single-group safety plan after tuner retries
  // exhausted their budget.
  size_t requests_degraded = 0;
  // Aborted cold searches re-parked for a backoff retry.
  size_t tuner_retries = 0;
  // Plans re-imported into a restarted replica's store from the
  // shipper's published set.
  size_t plans_rewarmed = 0;
  size_t replica_restarts = 0;
  // Plan shipments suppressed by kShipLoss windows (this run).
  size_t ship_drops = 0;
  // SLO-aware shed (src/sched, slo_shed knob): retries dropped at the
  // degrade point because the tenant's p99 was already past its SLO —
  // serving a safety-plan batch would only burn capacity the tenant's
  // latency target cannot be saved by. Shed requests complete the run
  // accounting but never reach an executor.
  size_t requests_shed = 0;

  size_t injected_total() const {
    return injected_crashes + injected_hangs + injected_slowdowns +
           injected_tuner_failures + injected_ship_loss_windows;
  }
};

}  // namespace flo

#endif  // SRC_FAULT_FAULT_CONFIG_H_
