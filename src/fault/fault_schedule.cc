#include "src/fault/fault_schedule.h"

#include <algorithm>
#include <sstream>

#include "src/util/check.h"
#include "src/util/parse.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace flo {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kHang:
      return "hang";
    case FaultKind::kSlowdown:
      return "slowdown";
    case FaultKind::kTunerFail:
      return "tuner_fail";
    case FaultKind::kShipLoss:
      return "ship_loss";
    case FaultKind::kCount:
      break;
  }
  return "?";
}

namespace {

std::optional<FaultKind> TryFaultKindFromName(const std::string& name) {
  for (const FaultKind kind : {FaultKind::kCrash, FaultKind::kHang, FaultKind::kSlowdown,
                               FaultKind::kTunerFail, FaultKind::kShipLoss}) {
    if (name == FaultKindName(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

}  // namespace

void FaultSchedule::SortEvents() {
  // (time, kind, replica): a total order over distinct events, so the
  // injection sequence is independent of generation or script order.
  std::sort(events_.begin(), events_.end(), [](const FaultEvent& a, const FaultEvent& b) {
    if (a.time_us != b.time_us) {
      return a.time_us < b.time_us;
    }
    if (a.kind != b.kind) {
      return static_cast<int>(a.kind) < static_cast<int>(b.kind);
    }
    return a.replica < b.replica;
  });
}

void FaultSchedule::Add(const FaultEvent& event) {
  events_.push_back(event);
  SortEvents();
}

FaultSchedule FaultSchedule::FromConfig(const FaultConfig& config, int replica_count) {
  FLO_CHECK_GE(replica_count, 1);
  FaultSchedule schedule;
  if (!config.enabled()) {
    return schedule;
  }
  FLO_CHECK_GT(config.horizon_us, 0.0) << "seeded fault schedules need a horizon";
  Rng rng(config.seed);
  // Fixed generation order (kind-major), so the draw sequence — and thus
  // the schedule — is a pure function of (config, replica_count).
  const auto draw = [&](FaultKind kind, int count, double duration, double magnitude) {
    for (int i = 0; i < count; ++i) {
      FaultEvent event;
      // Keep injections off the very edges of the run: a fault at t=0
      // or past the horizon exercises nothing.
      event.time_us = config.horizon_us * (0.05 + 0.85 * rng.NextDouble());
      event.kind = kind;
      event.replica = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(replica_count)));
      event.duration_us = duration;
      event.magnitude = magnitude;
      schedule.events_.push_back(event);
    }
  };
  draw(FaultKind::kCrash, config.crashes, config.crash_restart_us, 0.0);
  draw(FaultKind::kHang, config.hangs, config.hang_window_us, 0.0);
  draw(FaultKind::kSlowdown, config.slowdowns, config.slowdown_window_us,
       config.slowdown_multiplier);
  draw(FaultKind::kTunerFail, config.tuner_failures, 0.0, 0.0);
  draw(FaultKind::kShipLoss, config.ship_loss_windows, config.ship_loss_window_us,
       config.ship_loss_fraction);
  schedule.SortEvents();
  return schedule;
}

std::string FaultSchedule::ToCsv() const {
  std::ostringstream out;
  out << "# fault schedule: time_us,kind,replica,duration_us,magnitude\n";
  for (const FaultEvent& event : events_) {
    out << FormatDoubleExact(event.time_us) << ',' << FaultKindName(event.kind) << ','
        << event.replica << ',' << FormatDoubleExact(event.duration_us) << ','
        << FormatDoubleExact(event.magnitude) << '\n';
  }
  return out.str();
}

std::optional<FaultSchedule> FaultSchedule::ParseCsv(const std::string& text) {
  FaultSchedule schedule;
  std::stringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::stringstream fields(line);
    std::string time_us;
    std::string kind;
    std::string replica;
    std::string duration_us;
    std::string magnitude;
    if (!std::getline(fields, time_us, ',') || !std::getline(fields, kind, ',') ||
        !std::getline(fields, replica, ',') || !std::getline(fields, duration_us, ',') ||
        !std::getline(fields, magnitude)) {
      return std::nullopt;
    }
    FaultEvent event;
    const auto parsed_time = TryParseDouble(time_us);
    const auto parsed_kind = TryFaultKindFromName(kind);
    const auto parsed_replica = TryParseInt(replica);
    const auto parsed_duration = TryParseDouble(duration_us);
    const auto parsed_magnitude = TryParseDouble(magnitude);
    if (!parsed_time || !parsed_kind || !parsed_replica || !parsed_duration ||
        !parsed_magnitude || *parsed_time < 0.0 || *parsed_duration < 0.0) {
      return std::nullopt;
    }
    event.time_us = *parsed_time;
    event.kind = *parsed_kind;
    event.replica = *parsed_replica;
    event.duration_us = *parsed_duration;
    event.magnitude = *parsed_magnitude;
    schedule.events_.push_back(event);
  }
  schedule.SortEvents();
  return schedule;
}

}  // namespace flo
