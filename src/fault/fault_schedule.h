// The deterministic fault schedule: a sorted list of typed FaultEvents a
// ServingCluster injects through its shared EventLoop.
//
// Two construction paths, both reproducible:
//  - FromConfig expands FaultConfig seeds into events (times uniform over
//    the horizon, replicas uniform over the fleet, via the SplitMix64 Rng);
//  - ParseCsv loads a hand-written or recorded chaos script, so a fault
//    scenario can be replayed bit-for-bit (ToCsv is the inverse).
//
// Events are kept sorted by (time, kind, replica); the cluster schedules
// every event before dispatch begins, so injection order is part of the
// deterministic event timeline.
#ifndef SRC_FAULT_FAULT_SCHEDULE_H_
#define SRC_FAULT_FAULT_SCHEDULE_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/fault/fault_config.h"
#include "src/sim/event_queue.h"

namespace flo {

// One injection. `duration_us` is the fault window (crash: restart delay;
// hang/slowdown/ship-loss: the window length; tuner-fail: unused).
// `magnitude` is kind-specific (slowdown: cost multiplier; ship-loss: the
// drop fraction). `replica` is the target id (-1 = fleet scope, only
// meaningful for kShipLoss).
struct FaultEvent {
  SimTime time_us = 0.0;
  FaultKind kind = FaultKind::kCrash;
  int replica = 0;
  double duration_us = 0.0;
  double magnitude = 0.0;

  bool operator==(const FaultEvent&) const = default;
};

class FaultSchedule {
 public:
  // Expands the config's per-kind counts into a sorted schedule over
  // `replica_count` replicas. Deterministic in (config, replica_count).
  static FaultSchedule FromConfig(const FaultConfig& config, int replica_count);

  // CSV script: `time_us,kind,replica,duration_us,magnitude` per line,
  // '#' comments and blank lines allowed. std::nullopt on any malformed
  // line. The parsed schedule is re-sorted, so scripts need not be.
  static std::optional<FaultSchedule> ParseCsv(const std::string& text);
  std::string ToCsv() const;

  void Add(const FaultEvent& event);

  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }
  const std::vector<FaultEvent>& events() const { return events_; }

 private:
  void SortEvents();

  std::vector<FaultEvent> events_;
};

}  // namespace flo

#endif  // SRC_FAULT_FAULT_SCHEDULE_H_
