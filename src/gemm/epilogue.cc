#include "src/gemm/epilogue.h"

#include <algorithm>

#include "src/util/check.h"

namespace flo {

float ApplyEpilogue(EpilogueOp op, float value, int64_t col, std::span<const float> bias) {
  switch (op) {
    case EpilogueOp::kIdentity:
      return value;
    case EpilogueOp::kBias:
      FLO_CHECK_LT(static_cast<size_t>(col), bias.size());
      return value + bias[col];
    case EpilogueOp::kRelu:
      return std::max(0.0f, value);
  }
  return value;
}

void StoreTileRowMajor(std::span<float> c, int64_t n, int64_t row_start, int64_t col_start,
                       int tile_rows, int tile_cols, std::span<const float> tile_values) {
  FLO_CHECK_EQ(tile_values.size(), static_cast<size_t>(tile_rows) * tile_cols);
  for (int r = 0; r < tile_rows; ++r) {
    for (int col = 0; col < tile_cols; ++col) {
      const int64_t dst = (row_start + r) * n + (col_start + col);
      FLO_CHECK_LT(static_cast<size_t>(dst), c.size());
      c[dst] = tile_values[static_cast<size_t>(r) * tile_cols + col];
    }
  }
}

void StoreTileToSlot(std::span<float> staging, int64_t slot_offset, int tile_rows, int tile_cols,
                     std::span<const float> tile_values) {
  FLO_CHECK_EQ(tile_values.size(), static_cast<size_t>(tile_rows) * tile_cols);
  FLO_CHECK_LE(static_cast<size_t>(slot_offset) + tile_values.size(), staging.size());
  std::copy(tile_values.begin(), tile_values.end(), staging.begin() + slot_offset);
}

void LoadTileFromSlot(std::span<const float> staging, int64_t slot_offset, std::span<float> c,
                      int64_t n, int64_t row_start, int64_t col_start, int tile_rows,
                      int tile_cols) {
  FLO_CHECK_LE(static_cast<size_t>(slot_offset) + static_cast<size_t>(tile_rows) * tile_cols,
               staging.size());
  for (int r = 0; r < tile_rows; ++r) {
    for (int col = 0; col < tile_cols; ++col) {
      const int64_t dst = (row_start + r) * n + (col_start + col);
      FLO_CHECK_LT(static_cast<size_t>(dst), c.size());
      c[dst] = staging[slot_offset + static_cast<int64_t>(r) * tile_cols + col];
    }
  }
}

}  // namespace flo
