// GEMM epilogue: element-wise post-ops and the scatter-store hook that the
// pre-communication reorder fuses into (paper Sec. 3.3.4 / Sec. 5, EVT).
#ifndef SRC_GEMM_EPILOGUE_H_
#define SRC_GEMM_EPILOGUE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace flo {

enum class EpilogueOp {
  kIdentity,
  kBias,  // adds a per-column bias vector
  kRelu,
};

// Applies the element-wise op to a value at output column `col`.
float ApplyEpilogue(EpilogueOp op, float value, int64_t col, std::span<const float> bias);

// Destination of a tile's output: either the logical row-major C matrix or
// a scatter slot inside the contiguous staging buffer.
//
// `StoreTileRowMajor` writes the tile where a vanilla GEMM would.
// `StoreTileToSlot` implements the fused pre-communication reorder: tile
// (tile_rows x tile_cols) is written densely (row-major within the tile)
// starting at `slot_offset` elements of `staging`.
void StoreTileRowMajor(std::span<float> c, int64_t n, int64_t row_start, int64_t col_start,
                       int tile_rows, int tile_cols, std::span<const float> tile_values);

void StoreTileToSlot(std::span<float> staging, int64_t slot_offset, int tile_rows, int tile_cols,
                     std::span<const float> tile_values);

// Reads a dense tile back out of a staging slot into the row-major matrix —
// the inverse of StoreTileToSlot, used by the post-communication reorder.
void LoadTileFromSlot(std::span<const float> staging, int64_t slot_offset, std::span<float> c,
                      int64_t n, int64_t row_start, int64_t col_start, int tile_rows,
                      int tile_cols);

}  // namespace flo

#endif  // SRC_GEMM_EPILOGUE_H_
