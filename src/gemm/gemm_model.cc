#include "src/gemm/gemm_model.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace flo {

GemmModel::GemmModel(GpuSpec gpu) : gpu_(std::move(gpu)) {}

double GemmModel::WaveTime(const GemmShape& shape, const TileShape& tile) const {
  // One wave = one tile per SM. Per-SM sustained FLOPS comes from the
  // chip-wide effective rate divided across SMs; a tile's work is
  // 2 * tm * tn * K flops.
  const double tile_flops = 2.0 * static_cast<double>(tile.m) * static_cast<double>(tile.n) *
                            static_cast<double>(shape.k);
  const double chip_flops_per_us = gpu_.EffectiveTflops(static_cast<double>(shape.k)) * 1e6;
  const double sm_flops_per_us = chip_flops_per_us / gpu_.sm_count;
  FLO_CHECK_GT(sm_flops_per_us, 0.0);
  return tile_flops / sm_flops_per_us;
}

GemmConfig GemmModel::Configure(const GemmShape& shape) const {
  GemmConfig config;
  config.shape = shape;
  config.tile = SelectTileShape(shape);
  TileGrid grid(shape, config.tile);
  config.tile_count = grid.tile_count();
  // Swizzle follows the tile-row extent: enough rows to cover an L2-friendly
  // square-ish footprint, mirroring CUTLASS's log-tile swizzle.
  config.swizzle_size = std::clamp(grid.rows() / 2, 1, 8);
  config.wave_time_us = WaveTime(shape, config.tile);
  config.full_sm_waves =
      static_cast<int>((config.tile_count + gpu_.sm_count - 1) / gpu_.sm_count);
  config.duration_us =
      config.full_sm_waves * config.wave_time_us + gpu_.kernel_launch_overhead_us;
  return config;
}

int GemmModel::WaveCount(const GemmConfig& config, int available_sms) const {
  const int width = std::max(1, available_sms);
  return static_cast<int>((config.tile_count + width - 1) / width);
}

double GemmModel::Duration(const GemmConfig& config, int available_sms) const {
  return WaveCount(config, available_sms) * config.wave_time_us +
         gpu_.kernel_launch_overhead_us;
}

}  // namespace flo
