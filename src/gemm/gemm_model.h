// Analytic GEMM timing: wave-quantized duration on a given GPU.
//
// This is the "GEMM configuration" the tuner derives offline (Sec. 4.2.1
// (1)): tile shape, swizzle pattern, tile count, wave time, duration. The
// model is deliberately wave-quantized — partial waves cost a full wave —
// because that quantization is exactly why decomposition-based baselines
// lose on fragmented GEMMs.
#ifndef SRC_GEMM_GEMM_MODEL_H_
#define SRC_GEMM_GEMM_MODEL_H_

#include "src/gemm/tile.h"
#include "src/gemm/wave.h"
#include "src/hw/gpu_spec.h"

namespace flo {

struct GemmConfig {
  GemmShape shape;
  TileShape tile;
  int swizzle_size = 1;
  int tile_count = 0;
  // Time for one full wave using all SMs of the GPU.
  double wave_time_us = 0.0;
  // Waves using all SMs.
  int full_sm_waves = 0;
  // Total duration using all SMs (wave-quantized) + launch overhead.
  double duration_us = 0.0;
};

class GemmModel {
 public:
  explicit GemmModel(GpuSpec gpu);

  const GpuSpec& gpu() const { return gpu_; }

  // Derives the tuned configuration for a problem size, as the CUTLASS
  // profiler would offline.
  GemmConfig Configure(const GemmShape& shape) const;

  // Time of one wave when `concurrent_tiles` tiles run at once (one per
  // SM). Fewer available SMs do not change the per-wave time, only how many
  // tiles fit in a wave.
  double WaveTime(const GemmShape& shape, const TileShape& tile) const;

  // Wave-quantized duration when only `available_sms` SMs are usable (the
  // rest are held by communication kernels). Includes launch overhead.
  double Duration(const GemmConfig& config, int available_sms) const;

  // Number of waves with `available_sms` usable SMs (Alg. 1 line 3).
  int WaveCount(const GemmConfig& config, int available_sms) const;

 private:
  GpuSpec gpu_;
};

}  // namespace flo

#endif  // SRC_GEMM_GEMM_MODEL_H_
