#include "src/gemm/host_gemm.h"

#include <cmath>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace flo {

HostGemm::HostGemm(GemmShape shape, TileShape tile) : grid_(shape, tile) {}

void HostGemm::ComputeTile(std::span<const float> a, std::span<const float> b, int tile_index,
                           EpilogueOp op, std::span<const float> bias,
                           std::vector<float>* tile_out) const {
  const GemmShape& shape = grid_.shape();
  FLO_CHECK_EQ(a.size(), static_cast<size_t>(shape.m * shape.k));
  FLO_CHECK_EQ(b.size(), static_cast<size_t>(shape.k * shape.n));
  const int rows = grid_.TileRowsAt(tile_index);
  const int cols = grid_.TileColsAt(tile_index);
  const int64_t row0 = grid_.RowStart(tile_index);
  const int64_t col0 = grid_.ColStart(tile_index);
  tile_out->assign(static_cast<size_t>(rows) * cols, 0.0f);
  for (int r = 0; r < rows; ++r) {
    const float* a_row = a.data() + (row0 + r) * shape.k;
    for (int c = 0; c < cols; ++c) {
      // Accumulate in double to keep the reference numerically tight.
      double acc = 0.0;
      const int64_t col = col0 + c;
      for (int64_t kk = 0; kk < shape.k; ++kk) {
        acc += static_cast<double>(a_row[kk]) * static_cast<double>(b[kk * shape.n + col]);
      }
      const float value = ApplyEpilogue(op, static_cast<float>(acc), col, bias);
      (*tile_out)[static_cast<size_t>(r) * cols + c] = value;
    }
  }
}

void HostGemm::ComputeRowMajor(std::span<const float> a, std::span<const float> b, EpilogueOp op,
                               std::span<const float> bias, std::span<float> c) const {
  const GemmShape& shape = grid_.shape();
  FLO_CHECK_EQ(c.size(), static_cast<size_t>(shape.m * shape.n));
  std::vector<float> tile;
  for (int t = 0; t < grid_.tile_count(); ++t) {
    ComputeTile(a, b, t, op, bias, &tile);
    StoreTileRowMajor(c, shape.n, grid_.RowStart(t), grid_.ColStart(t), grid_.TileRowsAt(t),
                      grid_.TileColsAt(t), tile);
  }
}

void HostGemm::ComputeWithSink(std::span<const float> a, std::span<const float> b, EpilogueOp op,
                               std::span<const float> bias, std::span<const int> launch_order,
                               const std::function<void(int, std::span<const float>)>& sink) const {
  FLO_CHECK_EQ(launch_order.size(), static_cast<size_t>(grid_.tile_count()));
  std::vector<float> tile;
  for (int tile_index : launch_order) {
    ComputeTile(a, b, tile_index, op, bias, &tile);
    sink(tile_index, tile);
  }
}

std::vector<float> RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  FLO_CHECK_GT(rows, 0);
  FLO_CHECK_GT(cols, 0);
  Rng rng(seed);
  std::vector<float> data(static_cast<size_t>(rows) * cols);
  for (auto& v : data) {
    v = static_cast<float>(rng.NextDouble(-1.0, 1.0));
  }
  return data;
}

float MaxAbsDiff(std::span<const float> a, std::span<const float> b) {
  FLO_CHECK_EQ(a.size(), b.size());
  float max_diff = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a[i] - b[i]));
  }
  return max_diff;
}

}  // namespace flo
