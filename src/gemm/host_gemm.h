// Reference host GEMM operating tile-by-tile.
//
// This is the functional stand-in for the CUTLASS kernel: it computes the
// same tile partition the timing model schedules, can emit tiles in any
// launch order, and supports the fused epilogue (element-wise op + scatter
// store). Correctness of FlashOverlap's reorder pipeline is validated
// against it end-to-end with real numbers.
#ifndef SRC_GEMM_HOST_GEMM_H_
#define SRC_GEMM_HOST_GEMM_H_

#include <functional>
#include <span>
#include <vector>

#include "src/gemm/epilogue.h"
#include "src/gemm/tile.h"

namespace flo {

class HostGemm {
 public:
  HostGemm(GemmShape shape, TileShape tile);

  const TileGrid& grid() const { return grid_; }

  // Computes one output tile of C = A * B into `tile_out` (dense row-major,
  // TileRowsAt x TileColsAt elements). A is M x K row-major, B is K x N
  // row-major.
  void ComputeTile(std::span<const float> a, std::span<const float> b, int tile_index,
                   EpilogueOp op, std::span<const float> bias, std::vector<float>* tile_out) const;

  // Vanilla full GEMM into row-major C (the non-overlap reference path).
  void ComputeRowMajor(std::span<const float> a, std::span<const float> b, EpilogueOp op,
                       std::span<const float> bias, std::span<float> c) const;

  // Computes tiles in `launch_order`, invoking `sink(tile_index, values)`
  // per finished tile. The overlap engine plugs the scatter-store reorder
  // and the counting-table bump into the sink — exactly the epilogue fusion
  // of the real system.
  void ComputeWithSink(std::span<const float> a, std::span<const float> b, EpilogueOp op,
                       std::span<const float> bias, std::span<const int> launch_order,
                       const std::function<void(int, std::span<const float>)>& sink) const;

 private:
  TileGrid grid_;
};

// Convenience: deterministic pseudo-random matrix fill.
std::vector<float> RandomMatrix(int64_t rows, int64_t cols, uint64_t seed);

// Max absolute difference between two equal-sized buffers.
float MaxAbsDiff(std::span<const float> a, std::span<const float> b);

}  // namespace flo

#endif  // SRC_GEMM_HOST_GEMM_H_
