#include "src/gemm/profiler.h"

#include <algorithm>
#include <limits>

#include "src/util/check.h"

namespace flo {

GemmProfiler::GemmProfiler(GpuSpec gpu) : gpu_(gpu), model_(std::move(gpu)) {}

std::vector<TileShape> GemmProfiler::CandidateTiles() {
  return {TileShape{128, 256}, TileShape{256, 128}, TileShape{128, 128}, TileShape{64, 256},
          TileShape{128, 64},  TileShape{64, 128},  TileShape{64, 64}};
}

std::vector<ProfiledCandidate> GemmProfiler::Profile(const GemmShape& shape) const {
  std::vector<ProfiledCandidate> results;
  for (const TileShape& tile : CandidateTiles()) {
    if (shape.m % tile.m != 0 || shape.n % tile.n != 0) {
      continue;
    }
    TileGrid grid(shape, tile);
    ProfiledCandidate candidate;
    candidate.tile = tile;
    candidate.tile_count = grid.tile_count();
    candidate.waves = (grid.tile_count() + gpu_.sm_count - 1) / gpu_.sm_count;
    const int last_wave_tiles = grid.tile_count() - (candidate.waves - 1) * gpu_.sm_count;
    candidate.last_wave_occupancy =
        static_cast<double>(last_wave_tiles) / std::min(gpu_.sm_count, grid.tile_count());
    // Duration = wave-quantized main loop + epilogue writeback. Smaller
    // tiles pay more per-tile overhead, folded in as a fixed cost per tile
    // launch on the SM.
    const double wave_time = model_.WaveTime(shape, tile);
    const double per_tile_overhead_us = 0.4;
    const double sm_rounds = static_cast<double>(candidate.waves);
    candidate.duration_us = candidate.waves * wave_time +
                            sm_rounds * per_tile_overhead_us +
                            gpu_.kernel_launch_overhead_us;
    results.push_back(candidate);
  }
  return results;
}

GemmConfig GemmProfiler::ProfileBest(const GemmShape& shape) const {
  const auto candidates = Profile(shape);
  if (candidates.empty()) {
    // Nothing divides evenly: defer to the heuristic (the overlap path will
    // reject it anyway if tiles are partial).
    return model_.Configure(shape);
  }
  const ProfiledCandidate* best = nullptr;
  double best_duration = std::numeric_limits<double>::infinity();
  for (const auto& candidate : candidates) {
    if (candidate.duration_us < best_duration) {
      best_duration = candidate.duration_us;
      best = &candidate;
    }
  }
  FLO_CHECK(best != nullptr);
  GemmConfig config;
  config.shape = shape;
  config.tile = best->tile;
  TileGrid grid(shape, config.tile);
  config.tile_count = grid.tile_count();
  config.swizzle_size = std::clamp(grid.rows() / 2, 1, 8);
  config.wave_time_us = model_.WaveTime(shape, config.tile);
  config.full_sm_waves = best->waves;
  config.duration_us = best->waves * config.wave_time_us + gpu_.kernel_launch_overhead_us;
  return config;
}

}  // namespace flo
