// GEMM configuration profiler.
//
// The real system runs the CUTLASS profiler offline to pick the tile shape
// and swizzle for each problem size (Sec. 5 / Sec. 4.2.1(1)). This is the
// model-driven equivalent: it scores a candidate family of tile shapes by
// wave-quantized duration plus epilogue memory traffic and returns the
// winner. Compared to the single-heuristic SelectTileShape, the profiler
// adapts to quantization effects (e.g. a skinny M prefers shallow tiles so
// the last wave is not mostly idle).
#ifndef SRC_GEMM_PROFILER_H_
#define SRC_GEMM_PROFILER_H_

#include <vector>

#include "src/gemm/gemm_model.h"

namespace flo {

struct ProfiledCandidate {
  TileShape tile;
  double duration_us = 0.0;
  int tile_count = 0;
  int waves = 0;
  // Fraction of the last wave's slots actually used (1.0 = perfectly
  // quantized).
  double last_wave_occupancy = 0.0;
};

class GemmProfiler {
 public:
  explicit GemmProfiler(GpuSpec gpu);

  // Candidate tile family (the shapes a CUTLASS build typically ships).
  static std::vector<TileShape> CandidateTiles();

  // Scores every candidate that divides the problem (full uniform tiles,
  // as the overlap path requires); falls back to SelectTileShape when none
  // divides.
  std::vector<ProfiledCandidate> Profile(const GemmShape& shape) const;

  // Best configuration by modeled duration.
  GemmConfig ProfileBest(const GemmShape& shape) const;

 private:
  GpuSpec gpu_;
  GemmModel model_;
};

}  // namespace flo

#endif  // SRC_GEMM_PROFILER_H_
