#include "src/gemm/swizzle.h"

#include <algorithm>

#include "src/util/check.h"

namespace flo {

std::vector<int> SwizzledLaunchOrder(const TileGrid& grid, int swizzle_size) {
  FLO_CHECK_GE(swizzle_size, 1);
  std::vector<int> order;
  order.reserve(grid.tile_count());
  const int rows = grid.rows();
  const int cols = grid.cols();
  for (int group_start = 0; group_start < rows; group_start += swizzle_size) {
    const int group_rows = std::min(swizzle_size, rows - group_start);
    for (int col = 0; col < cols; ++col) {
      for (int r = 0; r < group_rows; ++r) {
        order.push_back(grid.TileIndex(group_start + r, col));
      }
    }
  }
  FLO_CHECK_EQ(static_cast<int>(order.size()), grid.tile_count());
  return order;
}

std::vector<int> LaunchSlotOfTile(const std::vector<int>& launch_order) {
  std::vector<int> slot(launch_order.size(), -1);
  for (size_t i = 0; i < launch_order.size(); ++i) {
    const int tile = launch_order[i];
    FLO_CHECK_GE(tile, 0);
    FLO_CHECK_LT(tile, static_cast<int>(launch_order.size()));
    FLO_CHECK_EQ(slot[tile], -1) << "duplicate tile in launch order";
    slot[tile] = static_cast<int>(i);
  }
  return slot;
}

bool IsPermutation(const std::vector<int>& order, int n) {
  if (static_cast<int>(order.size()) != n) {
    return false;
  }
  std::vector<bool> seen(n, false);
  for (int v : order) {
    if (v < 0 || v >= n || seen[v]) {
      return false;
    }
    seen[v] = true;
  }
  return true;
}

}  // namespace flo
