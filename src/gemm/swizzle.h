// Block swizzling: the launch order of output tiles.
//
// GEMMs launch thread blocks in a swizzled order for L2 locality (paper
// Sec. 2.1.2, Fig. 2(b)). The consequence FlashOverlap cares about: the
// completion order of tiles does not match their memory-address order, so a
// finished wave is non-contiguous — which is what the reordering fixes.
#ifndef SRC_GEMM_SWIZZLE_H_
#define SRC_GEMM_SWIZZLE_H_

#include <vector>

#include "src/gemm/tile.h"

namespace flo {

// Returns the launch order as a permutation of tile indices:
// result[launch_slot] = tile_index.
//
// swizzle_size S groups S consecutive tile-rows; within a group, blocks
// walk down the rows of one column before advancing to the next column.
// S = 1 degenerates to plain row-major launch order.
std::vector<int> SwizzledLaunchOrder(const TileGrid& grid, int swizzle_size);

// Inverse permutation: result[tile_index] = launch_slot.
std::vector<int> LaunchSlotOfTile(const std::vector<int>& launch_order);

// True if `order` is a permutation of [0, n).
bool IsPermutation(const std::vector<int>& order, int n);

}  // namespace flo

#endif  // SRC_GEMM_SWIZZLE_H_
