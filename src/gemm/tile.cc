#include "src/gemm/tile.h"

#include <algorithm>
#include <sstream>

#include "src/util/check.h"

namespace flo {

std::string GemmShape::ToString() const {
  std::ostringstream out;
  out << "M" << m << "xN" << n << "xK" << k;
  return out.str();
}

size_t GemmShapeHash::operator()(const GemmShape& shape) const {
  // splitmix64-style mixing of the three extents.
  uint64_t hash = 0x9E3779B97F4A7C15ull;
  for (uint64_t v : {static_cast<uint64_t>(shape.m), static_cast<uint64_t>(shape.n),
                     static_cast<uint64_t>(shape.k)}) {
    v += 0x9E3779B97F4A7C15ull;
    v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9ull;
    v = (v ^ (v >> 27)) * 0x94D049BB133111EBull;
    hash ^= (v ^ (v >> 31)) + 0x9E3779B97F4A7C15ull + (hash << 6) + (hash >> 2);
  }
  return static_cast<size_t>(hash);
}

TileGrid::TileGrid(GemmShape shape, TileShape tile) : shape_(shape), tile_(tile) {
  FLO_CHECK_GT(shape.m, 0);
  FLO_CHECK_GT(shape.n, 0);
  FLO_CHECK_GT(shape.k, 0);
  FLO_CHECK_GT(tile.m, 0);
  FLO_CHECK_GT(tile.n, 0);
  rows_ = static_cast<int>((shape.m + tile.m - 1) / tile.m);
  cols_ = static_cast<int>((shape.n + tile.n - 1) / tile.n);
}

int TileGrid::TileIndex(int row, int col) const {
  FLO_CHECK_GE(row, 0);
  FLO_CHECK_LT(row, rows_);
  FLO_CHECK_GE(col, 0);
  FLO_CHECK_LT(col, cols_);
  return row * cols_ + col;
}

int TileGrid::TileRow(int index) const {
  FLO_CHECK_GE(index, 0);
  FLO_CHECK_LT(index, tile_count());
  return index / cols_;
}

int TileGrid::TileCol(int index) const {
  FLO_CHECK_GE(index, 0);
  FLO_CHECK_LT(index, tile_count());
  return index % cols_;
}

int TileGrid::TileRowsAt(int index) const {
  const int64_t start = RowStart(index);
  return static_cast<int>(std::min<int64_t>(tile_.m, shape_.m - start));
}

int TileGrid::TileColsAt(int index) const {
  const int64_t start = ColStart(index);
  return static_cast<int>(std::min<int64_t>(tile_.n, shape_.n - start));
}

int64_t TileGrid::RowStart(int index) const {
  return static_cast<int64_t>(TileRow(index)) * tile_.m;
}

int64_t TileGrid::ColStart(int index) const {
  return static_cast<int64_t>(TileCol(index)) * tile_.n;
}

TileShape SelectTileShape(const GemmShape& shape) {
  // Heuristic stand-in for the CUTLASS profiler pick (Sec. 5): favor
  // 128x256 for wide outputs, fall back to square / small tiles so tiny
  // problems still produce multiple tiles.
  if (shape.m >= 1024 && shape.n >= 2048) {
    return TileShape{128, 256};
  }
  if (shape.m >= 256 && shape.n >= 256) {
    return TileShape{128, 128};
  }
  const int tm = static_cast<int>(std::min<int64_t>(shape.m, 64));
  const int tn = static_cast<int>(std::min<int64_t>(shape.n, 64));
  return TileShape{std::max(tm, 1), std::max(tn, 1)};
}

}  // namespace flo
