// GEMM problem and output-tile geometry.
//
// The output matrix C (M x N, row-major) is partitioned into tiles of
// tile_m x tile_n; a tile is the minimum parallel unit dispatched to an SM
// (paper Sec. 2.1.1) and the natural overlap granularity.
#ifndef SRC_GEMM_TILE_H_
#define SRC_GEMM_TILE_H_

#include <cstdint>
#include <string>

namespace flo {

struct GemmShape {
  int64_t m = 0;
  int64_t n = 0;
  int64_t k = 0;

  double Flops() const { return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                                static_cast<double>(k); }
  // Output bytes at the given element size (half precision on device).
  double OutputBytes(int element_size = 2) const {
    return static_cast<double>(m) * static_cast<double>(n) * element_size;
  }
  std::string ToString() const;

  bool operator==(const GemmShape&) const = default;
};

// Hash functor so GemmShape can key std::unordered_map directly (the
// tuner's offline-artifact caches) instead of going through ToString().
struct GemmShapeHash {
  size_t operator()(const GemmShape& shape) const;
};

struct TileShape {
  int m = 0;
  int n = 0;

  int64_t Elements() const { return static_cast<int64_t>(m) * n; }
  bool operator==(const TileShape&) const = default;
};

// Row-major grid of output tiles. Tile index = row * cols + rows' col, i.e.
// indices increase along N first — which is exactly why a tile is
// non-contiguous in C (stride N) and why a wave of swizzled tiles is
// non-contiguous across tiles.
class TileGrid {
 public:
  TileGrid() = default;
  TileGrid(GemmShape shape, TileShape tile);

  const GemmShape& shape() const { return shape_; }
  const TileShape& tile() const { return tile_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int tile_count() const { return rows_ * cols_; }

  int TileIndex(int row, int col) const;
  int TileRow(int index) const;
  int TileCol(int index) const;

  // Actual extent of a tile (edge tiles may be partial).
  int TileRowsAt(int index) const;
  int TileColsAt(int index) const;

  // First output row / column covered by the tile.
  int64_t RowStart(int index) const;
  int64_t ColStart(int index) const;

 private:
  GemmShape shape_;
  TileShape tile_;
  int rows_ = 0;
  int cols_ = 0;
};

// Picks a tile shape the way a CUTLASS profile would: large tiles for large
// N, smaller for skinny outputs.
TileShape SelectTileShape(const GemmShape& shape);

}  // namespace flo

#endif  // SRC_GEMM_TILE_H_
