#include "src/gemm/wave.h"

#include <utility>

#include "src/util/check.h"

namespace flo {

WaveSchedule::WaveSchedule(std::vector<int> launch_order, int width)
    : launch_order_(std::move(launch_order)), width_(width) {
  FLO_CHECK_GT(width_, 0);
  FLO_CHECK(!launch_order_.empty());
  const int tiles = static_cast<int>(launch_order_.size());
  wave_of_tile_.assign(tiles, -1);
  for (int slot = 0; slot < tiles; ++slot) {
    const int wave = slot / width_;
    if (wave >= static_cast<int>(waves_.size())) {
      waves_.emplace_back();
    }
    const int tile = launch_order_[slot];
    FLO_CHECK_GE(tile, 0);
    FLO_CHECK_LT(tile, tiles);
    FLO_CHECK_EQ(wave_of_tile_[tile], -1) << "tile appears twice in launch order";
    waves_[wave].push_back(tile);
    wave_of_tile_[tile] = wave;
  }
}

const std::vector<int>& WaveSchedule::WaveTiles(int wave) const {
  FLO_CHECK_GE(wave, 0);
  FLO_CHECK_LT(wave, wave_count());
  return waves_[wave];
}

int WaveSchedule::WaveOfTile(int tile) const {
  FLO_CHECK_GE(tile, 0);
  FLO_CHECK_LT(tile, tile_count());
  return wave_of_tile_[tile];
}

std::vector<double> WaveSchedule::CompletionTimes(double wave_us, Rng* jitter,
                                                  double intra_wave_spread) const {
  FLO_CHECK_GT(wave_us, 0.0);
  FLO_CHECK_GE(intra_wave_spread, 0.0);
  FLO_CHECK_LT(intra_wave_spread, 1.0);
  std::vector<double> times(tile_count(), 0.0);
  for (int tile = 0; tile < tile_count(); ++tile) {
    const int wave = wave_of_tile_[tile];
    double t = (wave + 1) * wave_us;
    if (jitter != nullptr) {
      // Completion spreads backwards from the wave boundary: tiles finish
      // within the last `intra_wave_spread` fraction of the wave.
      t -= jitter->NextDouble() * intra_wave_spread * wave_us;
    }
    times[tile] = t;
  }
  return times;
}

}  // namespace flo
