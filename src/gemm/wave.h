// Wave schedule: which tiles execute concurrently.
//
// With more tiles than SMs, tile execution proceeds in waves of (roughly)
// SM-count tiles that complete nearly simultaneously (paper Sec. 2.1.1,
// Fig. 3). FlashOverlap signals at wave granularity instead of tile
// granularity because a wave is the natural batch of simultaneously-ready
// data.
#ifndef SRC_GEMM_WAVE_H_
#define SRC_GEMM_WAVE_H_

#include <vector>

#include "src/gemm/tile.h"
#include "src/util/rng.h"

namespace flo {

class WaveSchedule {
 public:
  // `launch_order[slot] = tile`; `width` = concurrently executing tiles
  // (available SMs). Wave w contains launch slots [w*width, (w+1)*width).
  WaveSchedule(std::vector<int> launch_order, int width);

  int wave_count() const { return static_cast<int>(waves_.size()); }
  int width() const { return width_; }
  int tile_count() const { return static_cast<int>(launch_order_.size()); }

  const std::vector<int>& launch_order() const { return launch_order_; }

  // Tiles of wave w, in launch order.
  const std::vector<int>& WaveTiles(int wave) const;

  // Wave index of a tile.
  int WaveOfTile(int tile) const;

  // Per-tile completion times for a uniform wave duration `wave_us`.
  // If `jitter` is non-null, tiles within a wave spread over the last
  // `intra_wave_spread` fraction of the wave (paper: within ~5%).
  std::vector<double> CompletionTimes(double wave_us, Rng* jitter = nullptr,
                                      double intra_wave_spread = 0.05) const;

 private:
  std::vector<int> launch_order_;
  int width_ = 0;
  std::vector<std::vector<int>> waves_;
  std::vector<int> wave_of_tile_;
};

}  // namespace flo

#endif  // SRC_GEMM_WAVE_H_
