#include "src/hw/cluster.h"

#include <sstream>

#include "src/util/check.h"

namespace flo {

std::string ClusterSpec::Describe() const {
  std::ostringstream out;
  out << gpu_count << "x " << gpu.name << " (" << LinkKindName(link.kind) << ")";
  return out.str();
}

ClusterSpec Make4090Cluster(int gpu_count) {
  FLO_CHECK_GE(gpu_count, 2);
  return ClusterSpec{MakeRtx4090(), MakePcie4090(), gpu_count};
}

ClusterSpec MakeA800Cluster(int gpu_count) {
  FLO_CHECK_GE(gpu_count, 2);
  return ClusterSpec{MakeA800(), MakeNvlinkA800(), gpu_count};
}

ClusterSpec MakeAscendCluster(int gpu_count) {
  FLO_CHECK_GE(gpu_count, 2);
  return ClusterSpec{MakeAscend910B(), MakeHccsAscend(), gpu_count};
}

Cluster::Cluster(ClusterSpec spec) : spec_(std::move(spec)) {
  FLO_CHECK_GE(spec_.gpu_count, 1);
  devices_.reserve(spec_.gpu_count);
  for (int rank = 0; rank < spec_.gpu_count; ++rank) {
    devices_.push_back(std::make_unique<Device>(rank, spec_.gpu.sm_count));
  }
}

Device& Cluster::device(int rank) {
  FLO_CHECK_GE(rank, 0);
  FLO_CHECK_LT(rank, static_cast<int>(devices_.size()));
  return *devices_[rank];
}

const Device& Cluster::device(int rank) const {
  FLO_CHECK_GE(rank, 0);
  FLO_CHECK_LT(rank, static_cast<int>(devices_.size()));
  return *devices_[rank];
}

}  // namespace flo
