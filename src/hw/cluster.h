// A homogeneous multi-GPU node: N identical devices on one interconnect.
#ifndef SRC_HW_CLUSTER_H_
#define SRC_HW_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/hw/gpu_spec.h"
#include "src/hw/interconnect.h"
#include "src/sim/device.h"

namespace flo {

struct ClusterSpec {
  GpuSpec gpu;
  InterconnectSpec link;
  int gpu_count = 0;

  std::string Describe() const;
};

// Paper testbed factories.
ClusterSpec Make4090Cluster(int gpu_count);
ClusterSpec MakeA800Cluster(int gpu_count);
ClusterSpec MakeAscendCluster(int gpu_count);

// Instantiated simulated devices for a cluster spec.
class Cluster {
 public:
  explicit Cluster(ClusterSpec spec);

  const ClusterSpec& spec() const { return spec_; }
  int gpu_count() const { return spec_.gpu_count; }
  Device& device(int rank);
  const Device& device(int rank) const;

 private:
  ClusterSpec spec_;
  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace flo

#endif  // SRC_HW_CLUSTER_H_
