#include "src/hw/gpu_spec.h"

#include <algorithm>
#include <cctype>

#include "src/util/check.h"

namespace flo {

double GpuSpec::EffectiveTflops(double k) const {
  FLO_CHECK_GT(k, 0.0);
  // Saturating main-loop efficiency: short K cannot hide the tile prologue
  // and epilogue, long K approaches the tuned peak.
  const double k_eff = k / (k + gemm_k_half);
  return fp16_tflops * gemm_peak_efficiency * k_eff;
}

GpuSpec MakeRtx4090() {
  GpuSpec spec;
  spec.name = "RTX4090";
  spec.sm_count = 128;
  spec.fp16_tflops = 330.0;
  spec.hbm_gbps = 1008.0;
  spec.kernel_launch_overhead_us = 5.0;
  spec.gemm_peak_efficiency = 0.78;
  spec.gemm_k_half = 512.0;
  return spec;
}

GpuSpec MakeA800() {
  GpuSpec spec;
  spec.name = "A800";
  spec.sm_count = 108;
  spec.fp16_tflops = 312.0;
  spec.hbm_gbps = 1935.0;
  spec.kernel_launch_overhead_us = 5.0;
  spec.gemm_peak_efficiency = 0.82;
  spec.gemm_k_half = 448.0;
  return spec;
}

GpuSpec MakeAscend910B() {
  GpuSpec spec;
  spec.name = "Ascend910B";
  // 910B exposes 24 AI (cube) cores; each runs one output tile at a time in
  // the TBE tiling model, so waves are much wider than on NVIDIA parts.
  spec.sm_count = 24;
  spec.fp16_tflops = 320.0;
  spec.hbm_gbps = 1600.0;
  spec.kernel_launch_overhead_us = 8.0;
  spec.gemm_peak_efficiency = 0.72;
  spec.gemm_k_half = 640.0;
  return spec;
}

GpuSpec MakeA100() {
  GpuSpec spec = MakeA800();
  // A100 is the same silicon as A800 with unrestricted NVLink; the compute
  // spec is identical for our purposes.
  spec.name = "A100";
  return spec;
}

GpuSpec MakeRtx3090() {
  GpuSpec spec;
  spec.name = "RTX3090";
  spec.sm_count = 82;
  spec.fp16_tflops = 142.0;
  spec.hbm_gbps = 936.0;
  spec.kernel_launch_overhead_us = 5.0;
  spec.gemm_peak_efficiency = 0.75;
  spec.gemm_k_half = 512.0;
  return spec;
}

GpuSpec GpuSpecByName(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "rtx4090" || lower == "4090") {
    return MakeRtx4090();
  }
  if (lower == "a800") {
    return MakeA800();
  }
  if (lower == "a100") {
    return MakeA100();
  }
  if (lower == "rtx3090" || lower == "3090") {
    return MakeRtx3090();
  }
  if (lower == "ascend910b" || lower == "910b" || lower == "ascend") {
    return MakeAscend910B();
  }
  FLO_CHECK(false) << "unknown GPU preset: " << name;
}

}  // namespace flo
