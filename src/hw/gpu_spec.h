// Compute-device descriptions used by the timing models.
//
// Presets mirror the paper's testbeds: NVIDIA A800 (NVLink server), NVIDIA
// RTX 4090 (consumer PCIe server) and HUAWEI Ascend 910B (Sec. 6.7).
#ifndef SRC_HW_GPU_SPEC_H_
#define SRC_HW_GPU_SPEC_H_

#include <string>

namespace flo {

struct GpuSpec {
  std::string name;
  // Streaming multiprocessors (or AI cores on Ascend): the number of output
  // tiles that execute concurrently — determines the wave count.
  int sm_count = 0;
  // Dense FP16 tensor throughput of the whole chip.
  double fp16_tflops = 0.0;
  // Device memory bandwidth; drives epilogue/element-wise kernel costs.
  double hbm_gbps = 0.0;
  // Fixed cost of getting any kernel onto the device.
  double kernel_launch_overhead_us = 5.0;
  // Fraction of peak FLOPS a well-tuned GEMM reaches on large shapes.
  double gemm_peak_efficiency = 0.80;
  // K value at which main-loop efficiency reaches half of peak; models the
  // prologue/epilogue amortization of the CUTLASS main loop.
  double gemm_k_half = 512.0;

  // Effective GEMM FLOPS for accumulation depth `k` using all SMs.
  double EffectiveTflops(double k) const;
};

// Paper testbed presets.
GpuSpec MakeRtx4090();
GpuSpec MakeA800();
GpuSpec MakeAscend910B();

// Additional parts the artifact supports (sm80/sm86/sm89 per the paper's
// AE appendix: "can also be used on RTX 3090 and A100 GPUs").
GpuSpec MakeA100();
GpuSpec MakeRtx3090();

// Resolves a preset by case-insensitive name ("a800", "rtx4090", "4090",
// "ascend910b"); aborts on unknown names.
GpuSpec GpuSpecByName(const std::string& name);

}  // namespace flo

#endif  // SRC_HW_GPU_SPEC_H_
