#include "src/hw/interconnect.h"

#include <cmath>

#include "src/util/check.h"

namespace flo {

const char* LinkKindName(LinkKind kind) {
  switch (kind) {
    case LinkKind::kPcie:
      return "PCIe";
    case LinkKind::kNvlink:
      return "NVLink";
    case LinkKind::kHccs:
      return "HCCS";
  }
  return "?";
}

double InterconnectSpec::EffectiveBusBandwidth(double bytes) const {
  FLO_CHECK_GT(bytes, 0.0);
  // Effective bandwidth = bytes / wire-time with
  //   wire-time ∝ bytes + half_saturation + cliff_penalty(bytes).
  // The saturation term models protocol pipelining filling up; the penalty
  // term models the sharp utilization drop below the cliff size (the red
  // borderline of Fig. 8). The penalty's slope is bounded by 1 so the
  // implied transfer time is strictly monotone in size — segmenting a
  // message can never make it cheaper.
  double penalty = 0.0;
  if (bytes < cliff_bytes) {
    const double shortfall = 1.0 - bytes / cliff_bytes;
    penalty = 0.5 * cliff_bytes * shortfall * shortfall;
  }
  return peak_busbw_gbps * bytes / (bytes + half_saturation_bytes + penalty);
}

Curve InterconnectSpec::SampleBandwidthCurve(double min_bytes, double max_bytes,
                                             int points_per_decade) const {
  FLO_CHECK_GT(min_bytes, 0.0);
  FLO_CHECK_GT(max_bytes, min_bytes);
  FLO_CHECK_GT(points_per_decade, 1);
  std::vector<std::pair<double, double>> points;
  const double log_min = std::log10(min_bytes);
  const double log_max = std::log10(max_bytes);
  const int total = static_cast<int>((log_max - log_min) * points_per_decade) + 1;
  for (int i = 0; i <= total; ++i) {
    const double x =
        std::pow(10.0, log_min + (log_max - log_min) * static_cast<double>(i) / total);
    points.emplace_back(x, EffectiveBusBandwidth(x));
  }
  return Curve(std::move(points));
}

InterconnectSpec MakePcie4090() {
  InterconnectSpec spec;
  spec.kind = LinkKind::kPcie;
  spec.name = "PCIe-4090";
  // PCIe 4.0 x16 across NUMA: ~20 GB/s effective bus bandwidth per GPU.
  spec.peak_busbw_gbps = 20.0;
  spec.base_latency_us = 6.0;
  spec.half_saturation_bytes = 2.0 * 1024 * 1024;
  spec.cliff_bytes = 4.0 * 1024 * 1024;
  spec.comm_sm_count = 4;
  spec.call_overhead_us = 20.0;
  spec.p2p_access = false;
  return spec;
}

InterconnectSpec MakeNvlinkA800() {
  InterconnectSpec spec;
  spec.kind = LinkKind::kNvlink;
  spec.name = "NVLink-A800";
  // Pairwise NVLink (400 GB/s links); NCCL ring reaches ~190 GB/s busbw.
  spec.peak_busbw_gbps = 190.0;
  spec.base_latency_us = 2.0;
  spec.half_saturation_bytes = 8.0 * 1024 * 1024;
  spec.cliff_bytes = 16.0 * 1024 * 1024;
  spec.comm_sm_count = 4;
  spec.call_overhead_us = 12.0;
  spec.p2p_access = true;
  return spec;
}

InterconnectSpec MakeHccsAscend() {
  InterconnectSpec spec;
  spec.kind = LinkKind::kHccs;
  spec.name = "HCCS-910B";
  // 910B HCCS full-mesh: 7 links x 56 GB/s; collectives sustain ~140 GB/s
  // of bus bandwidth per NPU.
  spec.peak_busbw_gbps = 140.0;
  spec.base_latency_us = 4.0;
  spec.half_saturation_bytes = 4.0 * 1024 * 1024;
  spec.cliff_bytes = 8.0 * 1024 * 1024;
  spec.comm_sm_count = 2;
  spec.call_overhead_us = 18.0;
  spec.p2p_access = true;
  return spec;
}

}  // namespace flo
