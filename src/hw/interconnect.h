// Inter-GPU link models with size-dependent effective bandwidth.
//
// The paper's tuner samples a (data size, bandwidth) curve per primitive and
// hardware offline (Fig. 8) and interpolates it at search time. We model the
// underlying point-to-point link here; collective-level curves are derived
// in src/comm/cost_model.h. The curve exhibits the measured shape: smooth
// saturation plus a sharp cliff below a threshold size (the red markers in
// Fig. 8).
#ifndef SRC_HW_INTERCONNECT_H_
#define SRC_HW_INTERCONNECT_H_

#include <cstdint>
#include <string>

#include "src/util/interp.h"

namespace flo {

enum class LinkKind {
  kPcie,    // RTX 4090 server: PCIe across NUMA nodes, no P2P access.
  kNvlink,  // A800 server: pairwise NVLink, P2P capable.
  kHccs,    // Ascend 910B: HCCS mesh.
};

const char* LinkKindName(LinkKind kind);

struct InterconnectSpec {
  LinkKind kind = LinkKind::kPcie;
  std::string name;
  // Peak per-GPU bus bandwidth for large transfers.
  double peak_busbw_gbps = 0.0;
  // Per-message fixed latency (protocol + sync overhead per ring step).
  double base_latency_us = 10.0;
  // Transfer size at which the smooth component reaches half of peak.
  double half_saturation_bytes = 4.0 * 1024 * 1024;
  // Below this size the bandwidth drops off a cliff (Fig. 8 red markers).
  double cliff_bytes = 1.0 * 1024 * 1024;
  // SMs a collective kernel occupies while resident (NCCL channels).
  int comm_sm_count = 8;
  // Per-collective-call host/driver overhead (API call, kernel launch,
  // protocol setup). Frequent small calls make tile-wise signaling lose.
  double call_overhead_us = 15.0;
  // Whether peer-to-peer device access is available (FLUX and Async-TP
  // require it; the 4090 testbed lacks it).
  bool p2p_access = false;

  // Effective bus bandwidth (GB/s) moving `bytes` in one call.
  double EffectiveBusBandwidth(double bytes) const;

  // Samples (bytes, GB/s) densely over [min_bytes, max_bytes]; this is the
  // "offline profiling" stage of the tuner (Sec. 4.2.1 (2)).
  Curve SampleBandwidthCurve(double min_bytes, double max_bytes, int points_per_decade = 16) const;
};

// Presets matching the paper's testbeds.
InterconnectSpec MakePcie4090();
InterconnectSpec MakeNvlinkA800();
InterconnectSpec MakeHccsAscend();

}  // namespace flo

#endif  // SRC_HW_INTERCONNECT_H_
