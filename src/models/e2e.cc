#include "src/models/e2e.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace flo {

// Imbalanced A2A: spread per-rank token counts around the mean with the
// requested max/mean factor (deterministic ramp).
std::vector<GemmShape> ImbalancedShapes(const GemmShape& shape, int gpu_count,
                                        double imbalance) {
  std::vector<GemmShape> shapes;
  shapes.reserve(gpu_count);
  for (int r = 0; r < gpu_count; ++r) {
    const double t = gpu_count > 1 ? static_cast<double>(r) / (gpu_count - 1) : 0.0;
    // Linear ramp from (2 - imbalance) to imbalance around mean 1.
    const double factor = (2.0 - imbalance) + (2.0 * imbalance - 2.0) * t;
    int64_t m = static_cast<int64_t>(static_cast<double>(shape.m) * factor);
    m = std::max<int64_t>(m, 256);
    // Keep tile alignment so the overlap path stays uniform.
    m = (m + 127) / 128 * 128;
    shapes.push_back(GemmShape{m, shape.n, shape.k});
  }
  return shapes;
}

E2eReport EvaluateWorkload(const Workload& workload) {
  OverlapEngine engine(workload.cluster);
  E2eReport report;
  report.workload = workload.name;
  double ops_non_overlap = 0.0;
  double ops_overlap = 0.0;
  for (const auto& op : workload.ops) {
    OpSpeedup row;
    row.name = op.name;
    if (op.primitive == CommPrimitive::kAllToAll && op.imbalance > 1.0) {
      const auto shapes = ImbalancedShapes(op.shape, workload.cluster.gpu_count, op.imbalance);
      row.non_overlap_us = engine.Execute(ScenarioSpec::NonOverlapImbalanced(shapes, op.primitive)).total_us;
      row.overlap_us = engine.Execute(ScenarioSpec::Imbalanced(shapes, op.primitive)).total_us;
    } else {
      row.non_overlap_us = engine.Execute(ScenarioSpec::NonOverlap(op.shape, op.primitive)).total_us;
      row.overlap_us = engine.Execute(ScenarioSpec::Overlap(op.shape, op.primitive)).total_us;
    }
    row.speedup = row.non_overlap_us / row.overlap_us;
    ops_non_overlap += row.non_overlap_us * op.count;
    ops_overlap += row.overlap_us * op.count;
    report.ops.push_back(row);
  }
  FLO_CHECK_GT(workload.gemm_x_fraction, 0.0);
  FLO_CHECK_LT(workload.gemm_x_fraction, 1.0);
  const double others = ops_non_overlap * (1.0 - workload.gemm_x_fraction) /
                        workload.gemm_x_fraction;
  report.baseline_layer_us = ops_non_overlap + others;
  report.overlap_layer_us = ops_overlap + others;
  report.e2e_speedup = report.baseline_layer_us / report.overlap_layer_us;
  return report;
}

std::vector<PortionRow> TimePortion(const Workload& workload) {
  OverlapEngine engine(workload.cluster);
  std::vector<PortionRow> rows;
  double ops_total = 0.0;
  for (const auto& op : workload.ops) {
    PortionRow row;
    row.name = op.name;
    row.fraction = engine.Execute(ScenarioSpec::NonOverlap(op.shape, op.primitive)).total_us * op.count;
    ops_total += row.fraction;
    rows.push_back(row);
  }
  const double others = ops_total * (1.0 - workload.gemm_x_fraction) /
                        workload.gemm_x_fraction;
  const double total = ops_total + others;
  for (auto& row : rows) {
    row.fraction /= total;
  }
  rows.push_back(PortionRow{"others", others / total});
  return rows;
}

}  // namespace flo
