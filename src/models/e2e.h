// End-to-end composition: turns per-op overlap gains into workload-level
// speedups (paper Fig. 12) and time-portion breakdowns (Fig. 4).
#ifndef SRC_MODELS_E2E_H_
#define SRC_MODELS_E2E_H_

#include <string>
#include <vector>

#include "src/core/overlap_engine.h"
#include "src/models/workloads.h"

namespace flo {

struct OpSpeedup {
  std::string name;
  double non_overlap_us = 0.0;
  double overlap_us = 0.0;
  double speedup = 1.0;
};

struct E2eReport {
  std::string workload;
  std::vector<OpSpeedup> ops;
  // Non-overlap end-to-end time per layer (us), including "others".
  double baseline_layer_us = 0.0;
  double overlap_layer_us = 0.0;
  double e2e_speedup = 1.0;
};

// Imbalanced A2A: spreads per-rank token counts around the mean with a
// deterministic linear ramp; max/mean equals `imbalance`. Shared by the
// e2e evaluation and the serving request source.
std::vector<GemmShape> ImbalancedShapes(const GemmShape& shape, int gpu_count,
                                        double imbalance);

// Runs every op of the workload through the engine (overlap vs non-overlap)
// and composes the end-to-end speedup using the workload's GEMM+X fraction.
E2eReport EvaluateWorkload(const Workload& workload);

// Fig. 4-style breakdown: fraction of non-overlap end-to-end time spent in
// each op and in "others".
struct PortionRow {
  std::string name;
  double fraction = 0.0;
};
std::vector<PortionRow> TimePortion(const Workload& workload);

}  // namespace flo

#endif  // SRC_MODELS_E2E_H_
