#include "src/models/moe_router.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace flo {

double MoeRouting::ImbalanceFactor() const {
  const auto loads = GpuLoads();
  FLO_CHECK(!loads.empty());
  int64_t max_load = 0;
  int64_t total = 0;
  for (int64_t load : loads) {
    max_load = std::max(max_load, load);
    total += load;
  }
  const double mean = static_cast<double>(total) / static_cast<double>(loads.size());
  return mean > 0.0 ? static_cast<double>(max_load) / mean : 1.0;
}

std::vector<int64_t> MoeRouting::GpuLoads() const {
  std::vector<int64_t> loads;
  loads.reserve(tokens_of_gpu.size());
  for (const auto& tokens : tokens_of_gpu) {
    loads.push_back(static_cast<int64_t>(tokens.size()));
  }
  return loads;
}

int GpuOfExpert(const MoeRouterConfig& config, int expert) {
  FLO_CHECK_GE(expert, 0);
  FLO_CHECK_LT(expert, config.experts);
  FLO_CHECK_EQ(config.experts % config.gpus, 0)
      << "experts must split evenly across the EP group";
  const int experts_per_gpu = config.experts / config.gpus;
  return expert / experts_per_gpu;
}

MoeRouting RouteTokens(const MoeRouterConfig& config, int64_t tokens) {
  FLO_CHECK_GE(config.experts, 1);
  FLO_CHECK_GE(config.gpus, 1);
  FLO_CHECK_GE(config.top_k, 1);
  FLO_CHECK_LE(config.top_k, config.experts);
  FLO_CHECK_GE(config.hot_bias, 0.0);
  FLO_CHECK_LE(config.hot_bias, 1.0);
  FLO_CHECK_GT(tokens, 0);

  // Expert sampling weights: geometric decay controlled by hot_bias.
  std::vector<double> cumulative(config.experts);
  double total = 0.0;
  for (int e = 0; e < config.experts; ++e) {
    const double weight = std::pow(1.0 - 0.7 * config.hot_bias, e);
    total += weight;
    cumulative[e] = total;
  }

  Rng rng(config.seed);
  MoeRouting routing;
  routing.expert_of_token.resize(tokens);
  routing.tokens_of_expert.resize(config.experts);
  routing.tokens_of_gpu.resize(config.gpus);
  for (int64_t token = 0; token < tokens; ++token) {
    auto& picks = routing.expert_of_token[token];
    for (int k = 0; k < config.top_k; ++k) {
      int expert = 0;
      // Rejection-free: invert the cumulative weight table; re-draw on a
      // duplicate pick (top-k experts are distinct).
      for (int attempt = 0; attempt < 64; ++attempt) {
        const double u = rng.NextDouble() * total;
        expert = static_cast<int>(
            std::lower_bound(cumulative.begin(), cumulative.end(), u) - cumulative.begin());
        expert = std::min(expert, config.experts - 1);
        if (std::find(picks.begin(), picks.end(), expert) == picks.end()) {
          break;
        }
        // Fall back to a linear probe if sampling keeps colliding.
        if (attempt == 63) {
          while (std::find(picks.begin(), picks.end(), expert) != picks.end()) {
            expert = (expert + 1) % config.experts;
          }
        }
      }
      picks.push_back(expert);
      routing.tokens_of_expert[expert].push_back(token);
      routing.tokens_of_gpu[GpuOfExpert(config, expert)].push_back(token);
    }
  }
  return routing;
}

std::vector<int> ReturnRouteForGpu(const MoeRouterConfig& config, const MoeRouting& routing,
                                   int gpu) {
  FLO_CHECK_GE(gpu, 0);
  FLO_CHECK_LT(gpu, config.gpus);
  const auto& held = routing.tokens_of_gpu[gpu];
  std::vector<int> route;
  route.reserve(held.size());
  for (int64_t token : held) {
    // Tokens are owned round-robin by original index (the data-parallel
    // shard that produced them).
    route.push_back(static_cast<int>(token % config.gpus));
  }
  return route;
}

}  // namespace flo
