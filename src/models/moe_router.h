// MoE routing substrate: generates the token -> expert -> GPU assignments
// that drive the GEMM+All-to-All pattern (paper Sec. 2.3.3).
//
// Routing skew is the reason A2A workloads are imbalanced; the router
// produces deterministic, seedable assignments with a controllable hot
// expert bias so benchmarks and tests can dial the imbalance the paper
// profiles (>40% of Mixtral training time).
#ifndef SRC_MODELS_MOE_ROUTER_H_
#define SRC_MODELS_MOE_ROUTER_H_

#include <cstdint>
#include <vector>

namespace flo {

struct MoeRouterConfig {
  int experts = 8;
  int gpus = 4;           // expert parallelism degree; experts split evenly
  int top_k = 2;          // experts per token
  double hot_bias = 0.0;  // 0 = uniform; 1 = strongly skewed to expert 0
  uint64_t seed = 1;
};

struct MoeRouting {
  // For each (token, k) pick: the expert index.
  std::vector<std::vector<int>> expert_of_token;
  // Tokens routed to each expert (expert-major, token order preserved).
  std::vector<std::vector<int64_t>> tokens_of_expert;
  // Tokens routed to each GPU (= union of its experts' tokens).
  std::vector<std::vector<int64_t>> tokens_of_gpu;

  // Max / mean of per-GPU token counts — the imbalance factor of the
  // engine's A2A path.
  double ImbalanceFactor() const;
  // Per-GPU token counts.
  std::vector<int64_t> GpuLoads() const;
};

// Which GPU hosts `expert` under an even split.
int GpuOfExpert(const MoeRouterConfig& config, int expert);

// Routes `tokens` tokens. Deterministic for a fixed config.
MoeRouting RouteTokens(const MoeRouterConfig& config, int64_t tokens);

// The return-path route table for one source GPU: after expert computation,
// every processed token row goes back to the GPU that owns the token
// (tokens are owned round-robin by original index). Entry i is the
// destination GPU of the i-th row held by `gpu`.
std::vector<int> ReturnRouteForGpu(const MoeRouterConfig& config, const MoeRouting& routing,
                                   int gpu);

}  // namespace flo

#endif  // SRC_MODELS_MOE_ROUTER_H_
