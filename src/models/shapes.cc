#include "src/models/shapes.h"

#include "src/util/check.h"

namespace flo {

std::vector<GemmShape> OperatorShapes(CommPrimitive primitive, bool a800) {
  // Table 3 ranges, per GPU (on-GPU shapes). M*N in Mi^2 units; K in Ki.
  int mn_lo = 0;
  int mn_hi = 0;
  int k_lo = 0;
  int k_hi = 0;
  if (a800) {
    if (primitive == CommPrimitive::kAllToAll) {
      mn_lo = 16;
      mn_hi = 400;
      k_lo = 4;
      k_hi = 8;
    } else {
      mn_lo = 64;
      mn_hi = 256;
      k_lo = 2;
      k_hi = 8;
    }
  } else {
    if (primitive == CommPrimitive::kAllToAll) {
      mn_lo = 4;
      mn_hi = 68;
      k_lo = 8;
      k_hi = 16;
    } else {
      mn_lo = 16;
      mn_hi = 64;
      k_lo = 8;
      k_hi = 16;
    }
  }
  const int64_t n = 8192;
  std::vector<GemmShape> shapes;
  // ~5 M*N points x ~4 K points + a denser diagonal => 50+ shapes overall
  // across the sweep used in Fig. 10.
  const int mn_steps = 5;
  const int k_steps = 4;
  for (int i = 0; i < mn_steps; ++i) {
    const int mn = mn_lo + (mn_hi - mn_lo) * i / (mn_steps - 1);
    const int64_t m = static_cast<int64_t>(mn) * 1024 * 1024 / n;
    for (int j = 0; j < k_steps; ++j) {
      const int k_ki = k_lo + (k_hi - k_lo) * j / (k_steps - 1);
      shapes.push_back(GemmShape{std::max<int64_t>(m, 128), n,
                                 static_cast<int64_t>(k_ki) * 1024});
    }
  }
  // Denser diagonal fill.
  for (int i = 0; i < mn_steps - 1; ++i) {
    const int mn = mn_lo + (mn_hi - mn_lo) * (2 * i + 1) / (2 * (mn_steps - 1));
    const int64_t m = static_cast<int64_t>(mn) * 1024 * 1024 / n;
    const int k_ki = k_lo + (k_hi - k_lo) * (i % k_steps) / (k_steps - 1);
    shapes.push_back(
        GemmShape{std::max<int64_t>(m, 128), n, static_cast<int64_t>(k_ki) * 1024});
  }
  return shapes;
}

std::vector<GemmShape> TypicalRsShapes() {
  std::vector<GemmShape> shapes;
  for (int64_t m : {16384, 32768, 49152}) {
    for (int64_t k : {2048, 4096, 8192}) {
      shapes.push_back(GemmShape{m, 8192, k});
    }
  }
  return shapes;
}

HeatmapAxes HeatmapAxes4090() {
  HeatmapAxes axes;
  axes.mn_mi = {16, 24, 32, 40, 48, 56, 64};
  axes.k_ki = {4, 6, 8, 10, 12, 14, 16};
  axes.n = 8192;
  return axes;
}

HeatmapAxes HeatmapAxesA800() {
  HeatmapAxes axes;
  axes.mn_mi = {64, 96, 128, 160, 192, 224, 256};
  axes.k_ki = {2, 3, 4, 5, 6, 7, 8};
  axes.n = 8192;
  return axes;
}

std::vector<GemmShape> AscendShapes() {
  // Fig. 16 shape table: typical LLM layer GEMMs.
  return {
      GemmShape{2048, 5120, 2560},  GemmShape{4096, 2048, 8192},
      GemmShape{4096, 4096, 2048},  GemmShape{5120, 6912, 4096},
      GemmShape{2048, 8192, 12288}, GemmShape{4096, 5120, 2560},
      GemmShape{4096, 4096, 2048},  GemmShape{5120, 6912, 4096},
  };
}

}  // namespace flo
