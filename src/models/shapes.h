// GEMM shape sets used by the paper's evaluation (Table 3, Fig. 11,
// Fig. 13, Fig. 16).
#ifndef SRC_MODELS_SHAPES_H_
#define SRC_MODELS_SHAPES_H_

#include <vector>

#include "src/comm/primitive.h"
#include "src/gemm/tile.h"

namespace flo {

// Operator-evaluation grid (Table 3): ~50+ shapes per (primitive, GPU).
// M*N spans the listed Mi^2 range, K the listed Ki range; N is fixed at a
// typical model width so M*N sweeps via M.
std::vector<GemmShape> OperatorShapes(CommPrimitive primitive, bool a800);

// Fig. 11 typical GEMM+RS shapes on A800: M in {16384, 32768, 49152},
// N = 8192, K in {2048, 4096, 8192}.
std::vector<GemmShape> TypicalRsShapes();

// Fig. 13 heatmap axes.
struct HeatmapAxes {
  // Values of M*N in units of 1024^2 (the x axis).
  std::vector<int> mn_mi;
  // Values of K in units of 1024 (the y axis).
  std::vector<int> k_ki;
  // N used to factor M*N into (M, N).
  int64_t n = 8192;
};

HeatmapAxes HeatmapAxes4090();
HeatmapAxes HeatmapAxesA800();

// Fig. 16 Ascend LLM shapes: (M, N, K) triples from typical LLM layers.
std::vector<GemmShape> AscendShapes();

}  // namespace flo

#endif  // SRC_MODELS_SHAPES_H_
