#include "src/models/workloads.h"

namespace flo {

Workload MakeLlama3Inference() {
  // Llama3-70B: hidden 8192, FFN 28672, TP=8. Per layer the TP row-parallel
  // GEMMs end in AllReduce: attention output projection (K = 8192/8) and
  // MLP down projection (K = 28672/8). Prefill chunk of 16384 tokens.
  Workload w;
  w.name = "Llama3-70B inference (TP=8)";
  w.cluster = MakeA800Cluster(8);
  w.layers = 80;
  const int64_t tokens = 16384;
  w.ops = {
      {"attn_out+AR", GemmShape{tokens, 8192, 1024}, CommPrimitive::kAllReduce, 1},
      {"mlp_down+AR", GemmShape{tokens, 8192, 3584}, CommPrimitive::kAllReduce, 1},
  };
  // Fig. 4 row 1 (prefill): GEMM+AR ~35.8% + 8.8% of end-to-end time.
  w.gemm_x_fraction = 0.446;
  return w;
}

Workload MakeLlama3Training() {
  // Training with TP=8 decomposes AllReduce into ReduceScatter+AllGather;
  // the GEMM+RS pairs are what FlashOverlap optimizes. 8 layers fit a node.
  Workload w;
  w.name = "Llama3-70B training (TP=8)";
  w.cluster = MakeA800Cluster(8);
  w.layers = 8;
  const int64_t tokens = 16384;
  w.ops = {
      {"attn_out+RS", GemmShape{tokens, 8192, 1024}, CommPrimitive::kReduceScatter, 1},
      {"mlp_down+RS", GemmShape{tokens, 8192, 3584}, CommPrimitive::kReduceScatter, 1},
      // Backward data-gradient GEMMs mirror the forward pair.
      {"bwd_attn+RS", GemmShape{tokens, 8192, 1024}, CommPrimitive::kReduceScatter, 1},
      {"bwd_mlp+RS", GemmShape{tokens, 8192, 3584}, CommPrimitive::kReduceScatter, 1},
  };
  // Fig. 4 row 4: GEMM+RS ~15.7% + 14.3% forward/backward.
  w.gemm_x_fraction = 0.30;
  return w;
}

Workload MakeMixtralTraining() {
  // Mixtral-8x7B: hidden 4096, FFN 14336, 8 experts, EP=4 x TP=2; expert
  // outputs return to their source GPUs via All-to-All. 32768 input tokens,
  // top-2 routing => 2x token volume through experts; routing skew makes
  // the per-rank load imbalanced.
  Workload w;
  w.name = "Mixtral-8x7B training (EP=4, TP=2)";
  w.cluster = MakeA800Cluster(8);
  w.layers = 4;
  const int64_t tokens_per_rank = 32768 * 2 / 4;
  w.ops = {
      {"expert_down+A2A", GemmShape{tokens_per_rank, 4096, 7168}, CommPrimitive::kAllToAll, 1,
       /*imbalance=*/1.4},
      {"bwd_expert+A2A", GemmShape{tokens_per_rank, 4096, 7168}, CommPrimitive::kAllToAll, 1,
       /*imbalance=*/1.4},
  };
  // Fig. 4 row 2: GEMM+A2A > 40% of overall latency.
  w.gemm_x_fraction = 0.42;
  return w;
}

Workload MakeStepVideoGeneration() {
  // Step-Video-T2V DiT: hidden 6144, FFN 24576, TP=4, 33792 tokens.
  Workload w;
  w.name = "Step-Video-T2V generation (TP=4)";
  w.cluster = MakeA800Cluster(4);
  w.layers = 48;
  const int64_t tokens = 33792;
  w.ops = {
      {"attn_out+AR", GemmShape{tokens, 6144, 1536}, CommPrimitive::kAllReduce, 1},
      {"mlp_down+AR", GemmShape{tokens, 6144, 6144}, CommPrimitive::kAllReduce, 1},
  };
  // Fig. 4 row 3: GEMM+AR ~31.6%.
  w.gemm_x_fraction = 0.316;
  return w;
}

Workload MakeLlama2Training() {
  // Llama2-7B: hidden 4096, FFN 11008, TP=4 (PP=2 outside scope of the
  // per-op view).
  Workload w;
  w.name = "Llama2-7B training (TP=4, PP=2)";
  w.cluster = MakeA800Cluster(4);
  w.layers = 32;
  const int64_t tokens = 8192;
  w.ops = {
      {"attn_out+RS", GemmShape{tokens, 4096, 1024}, CommPrimitive::kReduceScatter, 1},
      {"mlp_down+RS", GemmShape{tokens, 4096, 2752}, CommPrimitive::kReduceScatter, 1},
      {"bwd_attn+RS", GemmShape{tokens, 4096, 1024}, CommPrimitive::kReduceScatter, 1},
      {"bwd_mlp+RS", GemmShape{tokens, 4096, 2752}, CommPrimitive::kReduceScatter, 1},
  };
  w.gemm_x_fraction = 0.30;
  return w;
}

std::vector<Workload> AllWorkloads() {
  return {MakeLlama3Inference(), MakeMixtralTraining(), MakeLlama3Training(),
          MakeStepVideoGeneration(), MakeLlama2Training()};
}

}  // namespace flo
