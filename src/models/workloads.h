// End-to-end workload descriptions (paper Tab. 4, Fig. 4, Fig. 12).
//
// A workload is a transformer-ish model under a parallelism setting,
// reduced to the list of "GEMM + collective" ops per layer that FlashOverlap
// optimizes plus the fraction of time spent elsewhere (attention, KV cache,
// optimizer, routing). The "others" fraction is lifted from the paper's own
// profile (Fig. 4) so the end-to-end composition has the published shape.
#ifndef SRC_MODELS_WORKLOADS_H_
#define SRC_MODELS_WORKLOADS_H_

#include <string>
#include <vector>

#include "src/comm/primitive.h"
#include "src/gemm/tile.h"
#include "src/hw/cluster.h"

namespace flo {

struct WorkloadOp {
  std::string name;
  GemmShape shape;
  CommPrimitive primitive = CommPrimitive::kAllReduce;
  // Instances per layer.
  int count = 1;
  // For All-to-All ops: per-rank token imbalance factor (max/mean); 1 means
  // balanced.
  double imbalance = 1.0;
};

struct Workload {
  std::string name;
  ClusterSpec cluster;
  int layers = 1;
  std::vector<WorkloadOp> ops;
  // Fraction of end-to-end time occupied by the GEMM+X ops above in the
  // non-overlapped baseline (from Fig. 4); the rest is "others".
  double gemm_x_fraction = 0.4;
};

// Tab. 4 settings (A800 server).
Workload MakeLlama3Inference();      // Llama3-70B, TP=8, chunk 16384
Workload MakeLlama3Training();       // Llama3-70B (8 layers), TP=8
Workload MakeMixtralTraining();      // Mixtral-8x7B (4 layers), EP=4, TP=2
Workload MakeStepVideoGeneration();  // Step-Video-T2V, TP=4

// Fig. 4 profiling set additionally includes Llama2-7B training.
Workload MakeLlama2Training();  // Llama2-7B, TP=4, PP=2

std::vector<Workload> AllWorkloads();

}  // namespace flo

#endif  // SRC_MODELS_WORKLOADS_H_
