#include "src/obs/flight_recorder.h"

#include "src/util/check.h"

namespace flo {
namespace {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kGeneric:
      return "generic";
    case EventType::kArrival:
      return "arrival";
    case EventType::kBatchFinished:
      return "batch_finished";
    case EventType::kTuningFinished:
      return "tuning_finished";
    case EventType::kAutoscaleCheck:
      return "autoscale_check";
    case EventType::kFaultInject:
      return "fault_inject";
    case EventType::kRequeue:
      return "requeue";
    case EventType::kHealthRestore:
      return "health_restore";
    case EventType::kHangDetect:
      return "hang_detect";
    case EventType::kRetryKick:
      return "retry_kick";
  }
  return "?";
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity) : capacity_(capacity) {
  FLO_CHECK_GT(capacity_, 0u);
  events_.reserve(capacity_);
  spans_.reserve(capacity_);
}

FlightRecorder::~FlightRecorder() {
  if (check_hook_ != -1) {
    RemoveCheckFailureDump(check_hook_);
  }
}

void FlightRecorder::InstallCheckHook() {
  if (check_hook_ == -1) {
    check_hook_ = AddCheckFailureDump(
        [](void* ctx) { static_cast<FlightRecorder*>(ctx)->Dump(stderr); }, this);
  }
}

void FlightRecorder::Dump(std::FILE* out) const {
  std::fprintf(out, "--- flight recorder: last %zu of %llu events ---\n", events_.size(),
               static_cast<unsigned long long>(event_next_));
  const size_t event_start = event_next_ > capacity_ ? event_next_ % capacity_ : 0;
  for (size_t i = 0; i < events_.size(); ++i) {
    const EventEntry& entry = events_[(event_start + i) % events_.size()];
    std::fprintf(out, "  t=%.3f %s key=%llx slot=%u replica=%d\n", entry.time_us,
                 EventTypeName(entry.record.type),
                 static_cast<unsigned long long>(entry.record.key), entry.record.slot,
                 entry.record.replica);
  }
  std::fprintf(out, "--- flight recorder: last %zu of %llu spans ---\n", spans_.size(),
               static_cast<unsigned long long>(span_next_));
  const size_t span_start = span_next_ > capacity_ ? span_next_ % capacity_ : 0;
  for (size_t i = 0; i < spans_.size(); ++i) {
    const SpanRecord& span = spans_[(span_start + i) % spans_.size()];
    std::fprintf(out, "  [%.3f, %.3f] %s id=%llx arg=%llu replica=%d\n", span.start_us,
                 span.end_us, SpanKindName(span.kind),
                 static_cast<unsigned long long>(span.id),
                 static_cast<unsigned long long>(span.arg), span.replica);
  }
}

void FlightRecorder::Clear() {
  events_.clear();
  event_next_ = 0;
  spans_.clear();
  span_next_ = 0;
}

}  // namespace flo
