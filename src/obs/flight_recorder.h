// Flight recorder: a bounded ring of the last-N dispatched events and
// emitted spans, dumped to stderr when a FLO_CHECK fails — the post-mortem
// for "which events led up to this" in a million-event run.
//
// Recording is O(1) per event (two stores and a counter), fed from the
// event-loop tap and the span path; InstallCheckHook registers the dump
// with util/check so the abort prints the tail automatically.
#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <cstdio>
#include <vector>

#include "src/obs/span.h"
#include "src/sim/event_queue.h"
#include "src/sim/event_record.h"

namespace flo {

class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Hot path (called once per dispatched event / emitted span): inline so
  // the ring write costs two stores and a counter, not a cross-TU call.
  void OnEvent(const EventRecord& record, SimTime now) {
    if (events_.size() < capacity_) {
      events_.push_back(EventEntry{now, record});
    } else {
      events_[event_next_ % capacity_] = EventEntry{now, record};
    }
    ++event_next_;
  }
  void OnSpan(const SpanRecord& span) {
    if (spans_.size() < capacity_) {
      spans_.push_back(span);
    } else {
      spans_[span_next_ % capacity_] = span;
    }
    ++span_next_;
  }

  // Registers Dump with the FLO_CHECK failure path; idempotent. The
  // destructor unregisters.
  void InstallCheckHook();

  // Prints the retained tails (oldest first) to `out`.
  void Dump(std::FILE* out) const;

  uint64_t events_seen() const { return event_next_; }
  void Clear();

 private:
  struct EventEntry {
    SimTime time_us = 0.0;
    EventRecord record;
  };

  size_t capacity_;
  std::vector<EventEntry> events_;
  uint64_t event_next_ = 0;
  std::vector<SpanRecord> spans_;
  uint64_t span_next_ = 0;
  int check_hook_ = -1;
};

}  // namespace flo

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
