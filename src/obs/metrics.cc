#include "src/obs/metrics.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/util/check.h"
#include "src/util/table.h"

namespace flo {
namespace {

std::vector<double> DefaultBounds() {
  // Serving latencies: 100us .. 10s in decade/half-decade steps.
  return {100.0, 316.0, 1e3, 3160.0, 1e4, 31600.0, 1e5, 316000.0, 1e6, 3.16e6, 1e7};
}

}  // namespace

Histogram::Histogram() : Histogram(DefaultBounds()) {}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    FLO_CHECK_LT(bounds_[i - 1], bounds_[i]) << "histogram bounds must ascend";
  }
  buckets_.assign(bounds_.size() + 1, 0);
}

double Histogram::ApproxPercentile(double p) const {
  FLO_CHECK_GT(count_, 0u);
  FLO_CHECK_GE(p, 0.0);
  FLO_CHECK_LE(p, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (static_cast<double>(seen + buckets_[i]) >= target) {
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      // Overflow bucket: no upper bound — report its lower edge.
      if (i == bounds_.size()) {
        return lo;
      }
      const double hi = bounds_[i];
      const double into =
          buckets_[i] == 0 ? 0.0
                           : (target - static_cast<double>(seen)) / static_cast<double>(buckets_[i]);
      return lo + into * (hi - lo);
    }
    seen += buckets_[i];
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

double Histogram::ExactPercentile(double p) const {
  FLO_CHECK(exact_samples_) << "exact percentiles need EnableExactSamples()";
  FLO_CHECK_GT(count_, 0u);
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return PercentileOfSorted(sorted_, p);
}

PercentileSummary Histogram::Percentiles() const {
  PercentileSummary summary;
  summary.p50 = ExactPercentile(50.0);
  summary.p90 = ExactPercentile(90.0);
  summary.p95 = ExactPercentile(95.0);
  summary.p99 = ExactPercentile(99.0);
  return summary;
}

void Histogram::Clear() {
  buckets_.assign(buckets_.size(), 0);
  count_ = 0;
  sum_ = 0.0;
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

MetricsRegistry::Id MetricsRegistry::Counter(const std::string& name) {
  const auto it = counter_ids_.find(name);
  if (it != counter_ids_.end()) {
    return it->second;
  }
  const Id id = static_cast<Id>(counters_.size());
  counter_ids_.emplace(name, id);
  counters_.push_back(0);
  return id;
}

MetricsRegistry::Id MetricsRegistry::Gauge(const std::string& name) {
  const auto it = gauge_ids_.find(name);
  if (it != gauge_ids_.end()) {
    return it->second;
  }
  const Id id = static_cast<Id>(gauges_.size());
  gauge_ids_.emplace(name, id);
  gauges_.push_back(0.0);
  return id;
}

MetricsRegistry::Id MetricsRegistry::Histo(const std::string& name, std::vector<double> bounds,
                                           bool exact_samples) {
  const auto it = histogram_ids_.find(name);
  if (it != histogram_ids_.end()) {
    return it->second;
  }
  const Id id = static_cast<Id>(histograms_.size());
  histogram_ids_.emplace(name, id);
  histograms_.push_back(bounds.empty() ? Histogram() : Histogram(std::move(bounds)));
  if (exact_samples) {
    histograms_.back().EnableExactSamples();
  }
  return id;
}

void MetricsRegistry::Checkpoint(SimTime now) {
  Row row;
  row.time_us = now;
  row.counters = counters_;
  row.gauges = gauges_;
  rows_.push_back(std::move(row));
}

CsvWriter MetricsRegistry::TimeSeriesCsv() const {
  std::vector<std::string> header{"time_us"};
  for (const auto& [name, id] : counter_ids_) {
    header.push_back(name);
  }
  for (const auto& [name, id] : gauge_ids_) {
    header.push_back(name);
  }
  CsvWriter csv(std::move(header));
  for (const Row& row : rows_) {
    std::vector<std::string> cells{FormatDoubleExact(row.time_us)};
    // Metrics registered after this row was taken backfill as zero.
    for (const auto& [name, id] : counter_ids_) {
      cells.push_back(std::to_string(id < row.counters.size() ? row.counters[id] : 0));
    }
    for (const auto& [name, id] : gauge_ids_) {
      cells.push_back(FormatDoubleExact(id < row.gauges.size() ? row.gauges[id] : 0.0));
    }
    csv.AddRow(std::move(cells));
  }
  return csv;
}

std::string MetricsRegistry::SnapshotJson() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  auto key = [&](const std::string& name) -> std::ostringstream& {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"" << name << "\":";
    return out;
  };
  for (const auto& [name, id] : counter_ids_) {
    key(name) << counters_[id];
  }
  for (const auto& [name, id] : gauge_ids_) {
    key(name) << FormatDoubleExact(gauges_[id]);
  }
  for (const auto& [name, id] : histogram_ids_) {
    const Histogram& histogram = histograms_[id];
    key(name) << "{\"count\":" << histogram.count()
              << ",\"sum\":" << FormatDoubleExact(histogram.sum()) << ",\"buckets\":[";
    for (size_t i = 0; i < histogram.buckets().size(); ++i) {
      out << (i > 0 ? "," : "") << histogram.buckets()[i];
    }
    out << "]";
    if (histogram.count() > 0) {
      const double p50 = histogram.exact_samples() ? histogram.ExactPercentile(50.0)
                                                   : histogram.ApproxPercentile(50.0);
      const double p99 = histogram.exact_samples() ? histogram.ExactPercentile(99.0)
                                                   : histogram.ApproxPercentile(99.0);
      out << ",\"p50\":" << FormatDoubleExact(p50) << ",\"p99\":" << FormatDoubleExact(p99);
    }
    out << "}";
  }
  out << "}";
  return out.str();
}

void MetricsRegistry::ResetValues() {
  std::fill(counters_.begin(), counters_.end(), 0);
  std::fill(gauges_.begin(), gauges_.end(), 0.0);
  for (Histogram& histogram : histograms_) {
    histogram.Clear();
  }
  rows_.clear();
}

}  // namespace flo
