// Deterministic metrics registry: named counters, gauges, and fixed-bucket
// histograms with O(1) updates, snapshotted into a sim-clock time series.
//
// Determinism contract: all updates happen on the event-dispatch thread
// (sessions, cluster hooks, checkpoint pollers), values are keyed by name
// — registering an existing name returns the existing id, so every replica
// of a fleet aggregates into one fleet-wide series — and exports order
// columns by name. The same simulation therefore produces byte-identical
// CSV/JSON regardless of replica count, host thread count, or event-loop
// backend.
//
// The Histogram doubles as the repo's single percentile engine: bucket
// counts give O(1) streaming observation with approximate percentiles,
// and exact-sample mode retains the raw samples so Percentiles() can
// delegate to util/stats' one interpolation (PercentileOfSorted) —
// ServeStats and the benches route their percentile math through it
// rather than growing second implementations.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/util/csv.h"
#include "src/util/stats.h"

namespace flo {

class Histogram {
 public:
  // Bucket upper bounds (ascending); an implicit +inf bucket is appended.
  // The default covers serving latencies from 100us to 10s decades.
  Histogram();
  explicit Histogram(std::vector<double> bounds);

  // Retain raw samples so Percentiles()/ExactPercentile() are exact.
  // Costs O(samples) memory; summaries use it, long-running time series
  // stay bucket-only.
  void EnableExactSamples() { exact_samples_ = true; }
  bool exact_samples() const { return exact_samples_; }

  // Hot path (once per request in a traced serving run): inline so an
  // observation costs one binary search over the bounds and two stores.
  void Observe(double value) {
    const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), value);
    ++buckets_[static_cast<size_t>(it - bounds_.begin())];
    ++count_;
    sum_ += value;
    if (exact_samples_) {
      samples_.push_back(value);
      sorted_valid_ = false;
    }
  }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  // bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<uint64_t>& buckets() const { return buckets_; }

  // Percentile from bucket counts alone: linear interpolation inside the
  // covering bucket. Requires count() > 0.
  double ApproxPercentile(double p) const;

  // Exact percentiles over the retained samples (requires exact-sample
  // mode and count() > 0); the same interpolation as util/stats — on an
  // odd sample count, p50 is the exact median.
  double ExactPercentile(double p) const;
  PercentileSummary Percentiles() const;

  void Clear();

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  bool exact_samples_ = false;
  std::vector<double> samples_;
  // Lazily sorted view of samples_ for the exact percentile queries.
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

class MetricsRegistry {
 public:
  using Id = uint32_t;

  // Registration is idempotent by name: a second registration of the same
  // name (e.g. by another replica) returns the existing id, aggregating
  // fleet-wide.
  Id Counter(const std::string& name);
  Id Gauge(const std::string& name);
  Id Histo(const std::string& name, std::vector<double> bounds = {},
           bool exact_samples = false);

  void Add(Id counter, uint64_t delta = 1) { counters_[counter] += delta; }
  void Set(Id gauge, double value) { gauges_[gauge] = value; }
  void Observe(Id histogram, double value) { histograms_[histogram].Observe(value); }

  uint64_t CounterValue(Id counter) const { return counters_[counter]; }
  double GaugeValue(Id gauge) const { return gauges_[gauge]; }
  const Histogram& histogram(Id id) const { return histograms_[id]; }

  // Appends one time-series row: the current value of every counter and
  // gauge, stamped with the sim-clock time.
  void Checkpoint(SimTime now);
  size_t checkpoint_count() const { return rows_.size(); }

  // The checkpoint rows as CSV: time_us first, then one column per
  // counter/gauge, name-sorted. Metrics registered after a row was taken
  // backfill as zero.
  CsvWriter TimeSeriesCsv() const;

  // Final values of every metric as a JSON object keyed by name
  // (counters, gauges, and histograms with bucket counts and percentiles
  // when exact). Name-sorted, exact double formatting: byte-deterministic.
  std::string SnapshotJson() const;

  // Zeroes values and drops checkpoint rows; registrations (names, ids,
  // bucket layouts) survive, so a registry outlives runs the way engines
  // do.
  void ResetValues();

 private:
  struct Row {
    SimTime time_us = 0.0;
    std::vector<uint64_t> counters;
    std::vector<double> gauges;
  };

  std::map<std::string, Id> counter_ids_;
  std::map<std::string, Id> gauge_ids_;
  std::map<std::string, Id> histogram_ids_;
  std::vector<uint64_t> counters_;
  std::vector<double> gauges_;
  std::vector<Histogram> histograms_;
  std::vector<Row> rows_;
};

}  // namespace flo

#endif  // SRC_OBS_METRICS_H_
