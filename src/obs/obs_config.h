// Configuration for the observability plane (src/obs).
//
// Everything here is off by default and the entire plane can be compiled
// out with -DFLO_DISABLE_OBS (CMake option FLO_DISABLE_OBS): every
// emission site guards on ObsPlane::enabled(), which folds to a constant
// false in that build, so the simulator's hot paths carry at most one
// predictable branch per event — and a disabled run is bit-identical to a
// build without the plane at all.
#ifndef SRC_OBS_OBS_CONFIG_H_
#define SRC_OBS_OBS_CONFIG_H_

#include <cstddef>

namespace flo {

#ifdef FLO_DISABLE_OBS
inline constexpr bool kObsCompiledIn = false;
#else
inline constexpr bool kObsCompiledIn = true;
#endif

struct ObsConfig {
  // Master switch; with it off an attached ObsPlane records nothing.
  bool enabled = false;
  // Request-lifecycle / planner span tracing (the Perfetto export).
  bool tracing = true;
  // Counter/gauge/histogram registry with sim-clock checkpoints.
  bool metrics = true;
  // Last-N event/span ring dumped on FLO_CHECK failure.
  bool flight_recorder = true;
  // Sim-clock spacing of metrics time-series rows; 0 = final snapshot
  // only. Checkpoints are taken from the event-loop tap when dispatched
  // time crosses a boundary — never by scheduling events, so enabling
  // them cannot perturb the simulation.
  double checkpoint_interval_us = 0.0;
  // Per-track (replica) span ring capacity: a 1M-request fleet run keeps
  // the last N spans per replica, so trace size is bounded by design
  // (SpanTracer reports how many were dropped). The default keeps a
  // 128-replica fleet's rings ~6MB total — deep rings (8192+) push the
  // working set past the cache and triple the traced run's overhead.
  size_t span_ring_capacity = 1024;
  // Flight-recorder ring capacities (events / spans).
  size_t flight_ring_capacity = 256;
};

}  // namespace flo

#endif  // SRC_OBS_OBS_CONFIG_H_
