#include "src/obs/obs_plane.h"

#include <fstream>
#include <utility>

#include "src/serve/tenant_registry.h"
#include "src/sim/trace_export.h"
#include "src/util/check.h"

namespace flo {

ObsPlane::ObsPlane(ObsConfig config)
    : config_(config),
      tracer_(config.span_ring_capacity),
      recorder_(config.flight_ring_capacity) {
  ids_.requests = registry_.Counter("serve.requests");
  ids_.batches = registry_.Counter("serve.batches");
  ids_.tunes = registry_.Counter("serve.tunes");
  ids_.tune_searches = registry_.Counter("serve.tune_searches");
  ids_.plan_hits = registry_.Counter("plan.hits");
  ids_.plan_misses = registry_.Counter("plan.misses");
  ids_.plan_ships = registry_.Counter("plan.ships");
  ids_.autoscale_spawns = registry_.Counter("autoscale.spawns");
  ids_.autoscale_drains = registry_.Counter("autoscale.drains");
  ids_.autoscale_holds = registry_.Counter("autoscale.holds");
  ids_.autoscale_prespawns = registry_.Counter("autoscale.prespawns");
  ids_.autoscale_rate_estimate = registry_.Gauge("autoscale.rate_estimate");
  ids_.replica_spawns = registry_.Counter("fleet.replica_spawns");
  ids_.replica_drains = registry_.Counter("fleet.replica_drains");
  ids_.replica_retires = registry_.Counter("fleet.replica_retires");
  ids_.events = registry_.Counter("sim.events");
  ids_.fault_injects = registry_.Counter("fault.injects");
  ids_.requests_requeued = registry_.Counter("fault.requests_requeued");
  ids_.requests_retried = registry_.Counter("fault.requests_retried");
  ids_.requests_degraded = registry_.Counter("fault.requests_degraded");
  ids_.sched_backfills = registry_.Counter("sched.backfills");
  ids_.sched_reserves = registry_.Counter("sched.reserves");
  ids_.sched_preempted = registry_.Counter("sched.requests_preempted");
  ids_.sched_shed = registry_.Counter("sched.requests_shed");
  ids_.latency_us = registry_.Histo("serve.latency_us");
  ids_.queue_us = registry_.Histo("serve.queue_us");
  ids_.tuner_searches_total = registry_.Gauge("tuner.searches_total");
  ids_.store_hits = registry_.Gauge("plan_store.hits");
  ids_.store_misses = registry_.Gauge("plan_store.misses");
  ids_.store_evictions = registry_.Gauge("plan_store.evictions");
  ids_.plans_resident = registry_.Gauge("plan_store.resident");
  ids_.replicas_accepting = registry_.Gauge("fleet.replicas_accepting");
  if (enabled() && config_.flight_recorder) {
    recorder_.InstallCheckHook();
  }
}

void ObsPlane::BeginRun() {
  tracer_.Clear();
  registry_.ResetValues();
  recorder_.Clear();
  pollers_.clear();
  checkpoints_armed_ = metrics_on() && config_.checkpoint_interval_us > 0.0;
  next_checkpoint_us_ = config_.checkpoint_interval_us;
}

void ObsPlane::FinishRun(SimTime makespan_us) {
  if (!metrics_on()) {
    return;
  }
  RunPollers();
  registry_.Checkpoint(makespan_us);
}

void ObsPlane::AttachLoop(EventLoop* loop) {
  FLO_CHECK(loop != nullptr);
  if (enabled()) {
    loop->SetTap(&ObsPlane::Tap, this);
  } else {
    loop->SetTap(nullptr, nullptr);
  }
}

void ObsPlane::AddPoller(std::function<void(MetricsRegistry&)> poller) {
  pollers_.push_back(std::move(poller));
}

void ObsPlane::RunPollers() {
  for (const auto& poller : pollers_) {
    poller(registry_);
  }
}

void ObsPlane::Tap(void* ctx, const EventRecord& record, SimTime now) {
  static_cast<ObsPlane*>(ctx)->OnEvent(record, now);
}

void ObsPlane::OnEvent(const EventRecord& record, SimTime now) {
  if (config_.flight_recorder) {
    recorder_.OnEvent(record, now);
  }
  if (!metrics_on()) {
    return;
  }
  registry_.Add(ids_.events);
  // Checkpoint rows are cut when dispatched time crosses an interval
  // boundary — values reflect every event strictly before the boundary,
  // which is deterministic because dispatch order is.
  while (checkpoints_armed_ && now >= next_checkpoint_us_) {
    RunPollers();
    registry_.Checkpoint(next_checkpoint_us_);
    next_checkpoint_us_ += config_.checkpoint_interval_us;
  }
}

void ObsPlane::Emit(const SpanRecord& span) {
  if (!enabled()) {
    return;
  }
  FLO_CHECK_GE(span.end_us, span.start_us);
  if (config_.flight_recorder) {
    recorder_.OnSpan(span);
  }
  if (tracing()) {
    tracer_.Emit(span);
  }
  if (!metrics_on()) {
    return;
  }
  switch (span.kind) {
    case SpanKind::kRequest:
      registry_.Add(ids_.requests);
      registry_.Observe(ids_.latency_us, span.DurationUs());
      break;
    case SpanKind::kQueue:
      registry_.Observe(ids_.queue_us, span.DurationUs());
      break;
    case SpanKind::kExecute:
      registry_.Add(ids_.batches);
      break;
    case SpanKind::kTune:
      registry_.Add(ids_.tunes);
      registry_.Add(ids_.tune_searches, span.arg);
      break;
    case SpanKind::kBnbSearch:
      break;  // the searches are charged on the kTune span
    case SpanKind::kPlanHit:
      registry_.Add(ids_.plan_hits);
      break;
    case SpanKind::kPlanMiss:
      registry_.Add(ids_.plan_misses);
      break;
    case SpanKind::kPlanShip:
      registry_.Add(ids_.plan_ships);
      break;
    case SpanKind::kAutoscale:
      registry_.Add(span.arg == 1   ? ids_.autoscale_spawns
                    : span.arg == 2 ? ids_.autoscale_drains
                                    : ids_.autoscale_holds);
      break;
    case SpanKind::kReplicaSpawn:
      registry_.Add(ids_.replica_spawns);
      break;
    case SpanKind::kReplicaDrain:
      registry_.Add(ids_.replica_drains);
      break;
    case SpanKind::kReplicaRetire:
      registry_.Add(ids_.replica_retires);
      break;
    case SpanKind::kFaultCrash:
    case SpanKind::kFaultInject:
      registry_.Add(ids_.fault_injects);
      break;
    case SpanKind::kFaultRequeue:
      registry_.Add(ids_.requests_requeued, span.arg);
      break;
    case SpanKind::kFaultRetry:
      registry_.Add(ids_.requests_retried);
      break;
    case SpanKind::kFaultDegraded:
      registry_.Add(ids_.requests_degraded, span.arg);
      break;
    case SpanKind::kSchedBackfill:
      registry_.Add(ids_.sched_backfills);
      break;
    case SpanKind::kSchedReserve:
      registry_.Add(ids_.sched_reserves);
      break;
    case SpanKind::kSchedPreempt:
      registry_.Add(ids_.sched_preempted, span.arg);
      break;
    case SpanKind::kSchedShed:
      registry_.Add(ids_.sched_shed);
      break;
    case SpanKind::kPrespawn:
      registry_.Add(ids_.autoscale_prespawns);
      break;
    case SpanKind::kCount:
      FLO_CHECK(false) << "kCount is not an emittable span kind";
  }
}

std::string ObsPlane::TraceJson() const {
  ChromeTraceBuilder builder;
  for (size_t track = 0; track < tracer_.track_count(); ++track) {
    const std::vector<SpanRecord> spans = tracer_.TrackSpans(track);
    const int64_t pid = static_cast<int64_t>(track);
    if (track == 0) {
      builder.ProcessName(pid, "fleet");
    } else {
      builder.ProcessName(pid, "replica " + std::to_string(track - 1));
    }
    builder.ThreadName(pid, 0, "executor");
    for (const SpanRecord& span : spans) {
      const std::string name = SpanKindName(span.kind);
      switch (span.kind) {
        case SpanKind::kExecute:
          // The executor lane runs one batch at a time: complete events on
          // tid 0 never overlap within a replica.
          builder.Complete(pid, 0, name, span.start_us, span.DurationUs(),
                           {TraceArg::Int("batch", static_cast<int64_t>(span.arg)),
                            TraceArg::Bool("hit", (span.flags & 1) != 0),
                            TraceArg::Str("key", std::to_string(span.id))});
          break;
        case SpanKind::kTune:
          // Tuning lanes overlap: nestable async, grouped by plan key.
          builder.AsyncBegin(pid, "tune", span.id, name, span.start_us,
                             {TraceArg::Int("searches", static_cast<int64_t>(span.arg))});
          builder.AsyncEnd(pid, "tune", span.id, name, span.end_us);
          break;
        case SpanKind::kSchedReserve:
          // Executor-reservation holds are real intervals (one at a time
          // per replica): async on a "sched" track so SLO attribution
          // can overlap them against request queueing.
          builder.AsyncBegin(pid, "sched", span.id, name, span.start_us, {});
          builder.AsyncEnd(pid, "sched", span.id, name, span.end_us);
          break;
        case SpanKind::kRequest:
        case SpanKind::kQueue: {
          // One async group per tenant; request and queue spans share the
          // request id, so the viewer nests queue inside request.
          const std::string category =
              span.tenant != 0 ? "tenant:" + TenantNameOf(span.tenant) : "requests";
          builder.AsyncBegin(pid, category, span.id, name, span.start_us,
                             {TraceArg::Int("batch", static_cast<int64_t>(span.arg))});
          builder.AsyncEnd(pid, category, span.id, name, span.end_us);
          break;
        }
        default:
          builder.Instant(pid, 0, name, span.start_us,
                          {TraceArg::Str("id", std::to_string(span.id)),
                           TraceArg::Int("arg", static_cast<int64_t>(span.arg))});
      }
    }
  }
  return builder.Json();
}

bool ObsPlane::WriteTrace(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << TraceJson();
  return static_cast<bool>(file);
}

std::string ObsPlane::MetricsCsv() const { return registry_.TimeSeriesCsv().Render(); }

bool ObsPlane::WriteMetricsCsv(const std::string& path) const {
  return registry_.TimeSeriesCsv().WriteFile(path);
}

}  // namespace flo
