// The observability facade: one object wiring the span tracer, metrics
// registry, and flight recorder into a serving run.
//
// A ServeLoop or ServingCluster points ServeConfig::obs at a plane; the
// run then:
//  - installs the plane as the event loop's observation tap (flight
//    recording + sim-clock metrics checkpoints, without scheduling any
//    events of its own — attaching the plane cannot perturb the
//    simulation);
//  - emits SpanRecords from its event handlers (request lifecycle, batch
//    execution, cold-plan tuning, planner search charges, plan-store
//    hit/miss/ship, autoscaler decisions), each of which also bumps the
//    matching registry counters/histograms;
//  - registers pollers that mirror externally owned totals (tuner search
//    counts, plan-store stats) into gauges at every checkpoint.
//
// Exports: TraceJson() renders the retained spans as Chrome trace-event
// JSON (open in ui.perfetto.dev — one process per replica, the executor
// lane as complete events, requests/tuning as nestable async tracks);
// the registry renders the metrics time series as CSV and the final
// snapshot as JSON. All exports are byte-deterministic for a
// deterministic run.
//
// Everything is gated: with ObsConfig::enabled false (or the plane absent,
// or FLO_DISABLE_OBS compiled in) runs are bit-identical to a build
// without observability.
#ifndef SRC_OBS_OBS_PLANE_H_
#define SRC_OBS_OBS_PLANE_H_

#include <functional>
#include <string>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/obs_config.h"
#include "src/obs/span.h"
#include "src/obs/span_tracer.h"
#include "src/sim/event_loop.h"

namespace flo {

class ObsPlane {
 public:
  explicit ObsPlane(ObsConfig config = {});

  ObsPlane(const ObsPlane&) = delete;
  ObsPlane& operator=(const ObsPlane&) = delete;

  bool enabled() const { return kObsCompiledIn && config_.enabled; }
  bool tracing() const { return enabled() && config_.tracing; }
  bool metrics_on() const { return enabled() && config_.metrics; }

  const ObsConfig& config() const { return config_; }
  SpanTracer& tracer() { return tracer_; }
  MetricsRegistry& metrics() { return registry_; }
  const MetricsRegistry& metrics() const { return registry_; }
  FlightRecorder& recorder() { return recorder_; }

  // Per-run lifecycle. BeginRun drops spans, metric values, checkpoint
  // rows, flight records, and pollers (registrations survive); FinishRun
  // polls once more and stamps the final checkpoint at the run's
  // makespan.
  void BeginRun();
  void FinishRun(SimTime makespan_us);

  // Installs this plane as the loop's observation tap (no-op when
  // disabled, detaching any previous tap).
  void AttachLoop(EventLoop* loop);

  // Pollers run before every checkpoint row, mirroring externally owned
  // totals (tuner search counts, plan-store stats) into the registry.
  void AddPoller(std::function<void(MetricsRegistry&)> poller);

  // Records a span: flight recorder, tracer ring, and the kind's registry
  // counters/histograms. Call sites guard with enabled() so the disabled
  // cost is one branch.
  void Emit(const SpanRecord& span);

  // Pre-registered metric ids for the serving emission sites.
  struct ServeMetrics {
    MetricsRegistry::Id requests = 0;
    MetricsRegistry::Id batches = 0;
    MetricsRegistry::Id tunes = 0;
    MetricsRegistry::Id tune_searches = 0;
    MetricsRegistry::Id plan_hits = 0;
    MetricsRegistry::Id plan_misses = 0;
    MetricsRegistry::Id plan_ships = 0;
    MetricsRegistry::Id autoscale_spawns = 0;
    MetricsRegistry::Id autoscale_drains = 0;
    MetricsRegistry::Id autoscale_holds = 0;
    MetricsRegistry::Id autoscale_prespawns = 0;
    // Gauge: the predictive tier's sampled arrivals-per-interval
    // estimate, set at each autoscale checkpoint (0 when reactive-only).
    MetricsRegistry::Id autoscale_rate_estimate = 0;
    MetricsRegistry::Id replica_spawns = 0;
    MetricsRegistry::Id replica_drains = 0;
    MetricsRegistry::Id replica_retires = 0;
    MetricsRegistry::Id events = 0;
    // Fault plane (src/fault): injections and recovery actions.
    MetricsRegistry::Id fault_injects = 0;
    MetricsRegistry::Id requests_requeued = 0;
    MetricsRegistry::Id requests_retried = 0;
    MetricsRegistry::Id requests_degraded = 0;
    // Fleet scheduler (src/sched): backfill, reservation, preemption,
    // and SLO-shed outcomes.
    MetricsRegistry::Id sched_backfills = 0;
    MetricsRegistry::Id sched_reserves = 0;
    MetricsRegistry::Id sched_preempted = 0;
    MetricsRegistry::Id sched_shed = 0;
    MetricsRegistry::Id latency_us = 0;  // histogram
    MetricsRegistry::Id queue_us = 0;    // histogram
    // Poller-fed gauges (mirrors of externally owned totals).
    MetricsRegistry::Id tuner_searches_total = 0;
    MetricsRegistry::Id store_hits = 0;
    MetricsRegistry::Id store_misses = 0;
    MetricsRegistry::Id store_evictions = 0;
    MetricsRegistry::Id plans_resident = 0;
    MetricsRegistry::Id replicas_accepting = 0;
  };
  const ServeMetrics& ids() const { return ids_; }

  // Exports (deterministic byte streams for a deterministic run).
  std::string TraceJson() const;
  bool WriteTrace(const std::string& path) const;
  std::string MetricsCsv() const;
  bool WriteMetricsCsv(const std::string& path) const;
  std::string MetricsJson() const { return registry_.SnapshotJson(); }

 private:
  static void Tap(void* ctx, const EventRecord& record, SimTime now);
  void OnEvent(const EventRecord& record, SimTime now);
  void RunPollers();

  ObsConfig config_;
  SpanTracer tracer_;
  MetricsRegistry registry_;
  FlightRecorder recorder_;
  ServeMetrics ids_;
  std::vector<std::function<void(MetricsRegistry&)>> pollers_;
  SimTime next_checkpoint_us_ = 0.0;
  bool checkpoints_armed_ = false;
};

}  // namespace flo

#endif  // SRC_OBS_OBS_PLANE_H_
