// The span record: one fixed-size POD per observed interval or instant.
//
// Spans are emitted only from the single-threaded event-dispatch path (a
// session handler, the cluster's autoscale checkpoint, ...), with
// sim-clock times, so a run's span stream is a pure function of the
// simulated execution — bit-deterministic across reruns, host thread
// counts, and event-loop backends.
#ifndef SRC_OBS_SPAN_H_
#define SRC_OBS_SPAN_H_

#include <cstdint>

namespace flo {

enum class SpanKind : uint8_t {
  // Request lifecycle (id = request id, tenant = interned tenant).
  kRequest = 0,  // arrival -> completion
  kQueue,        // arrival -> batch execution start
  kExecute,      // one batch on the executor lane (id = plan key, arg = batch size)
  kTune,         // cold-plan tuning lane occupancy (id = plan key, arg = searches)
  // Planner internals (instants; id = plan key).
  kBnbSearch,  // predictive searches charged to a tuning start (arg = searches)
  kPlanHit,    // batch dispatched against a warm plan
  kPlanMiss,   // batch paid the cold path (arg = batch size)
  kPlanShip,   // freshly tuned plan published to the fleet
  // Fleet events (instants; replica = -1 for fleet scope).
  kAutoscale,      // arg = decision (0 hold, 1 spawn, 2 drain, 3 prespawn)
  kReplicaSpawn,   // id = replica id
  kReplicaDrain,   // id = replica id
  kReplicaRetire,  // id = replica id
  // Fault plane (instants). id = replica id unless noted.
  kFaultCrash,     // a crash injection landed (arg = restart delay, us)
  kFaultInject,    // any other injection (arg = FaultKind)
  kFaultRequeue,   // requests pulled off a failed replica (arg = count)
  kFaultRetry,     // a requeued request re-placed (id = request id)
  kFaultDegraded,  // batch fell back to the safety plan (id = key, arg = requests)
  // Fleet scheduler (src/sched).
  kSchedBackfill,  // warm batch slotted into a tuning window (id = key, arg = size)
  kSchedReserve,   // executor held idle for a blocked head (interval; id = key)
  kSchedPreempt,   // queued requests pulled off a replica (id = replica, arg = count)
  kSchedShed,      // degraded-mode request shed over a blown SLO (id = request id)
  // Predictive autoscaling: a pre-spawn fired from the rate estimate
  // (id = spawned replica id, arg = predicted next-interval demand).
  kPrespawn,
  kCount,
};

// Viewer/trace name of a kind ("request", "execute", ...).
const char* SpanKindName(SpanKind kind);

struct SpanRecord {
  double start_us = 0.0;
  double end_us = 0.0;  // == start_us for instants
  uint64_t id = 0;      // request id or plan key
  uint64_t arg = 0;     // kind-specific payload (see SpanKind)
  int32_t replica = -1;
  uint32_t tenant = 0;  // interned tenant id; 0 = none
  SpanKind kind = SpanKind::kRequest;
  uint8_t flags = 0;  // bit 0: plan-cache hit

  bool instant() const { return end_us == start_us; }
  double DurationUs() const { return end_us - start_us; }
};

static_assert(sizeof(SpanRecord) <= 48, "span records ride fixed-size rings");

}  // namespace flo

#endif  // SRC_OBS_SPAN_H_
