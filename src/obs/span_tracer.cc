#include "src/obs/span_tracer.h"

#include "src/util/check.h"

namespace flo {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRequest:
      return "request";
    case SpanKind::kQueue:
      return "queue";
    case SpanKind::kExecute:
      return "execute";
    case SpanKind::kTune:
      return "tune";
    case SpanKind::kBnbSearch:
      return "bnb_search";
    case SpanKind::kPlanHit:
      return "plan_hit";
    case SpanKind::kPlanMiss:
      return "plan_miss";
    case SpanKind::kPlanShip:
      return "plan_ship";
    case SpanKind::kAutoscale:
      return "autoscale";
    case SpanKind::kReplicaSpawn:
      return "replica_spawn";
    case SpanKind::kReplicaDrain:
      return "replica_drain";
    case SpanKind::kReplicaRetire:
      return "replica_retire";
    case SpanKind::kFaultCrash:
      return "fault/crash";
    case SpanKind::kFaultInject:
      return "fault/inject";
    case SpanKind::kFaultRequeue:
      return "fault/requeue";
    case SpanKind::kFaultRetry:
      return "fault/retry";
    case SpanKind::kFaultDegraded:
      return "fault/degraded";
    case SpanKind::kSchedBackfill:
      return "sched/backfill";
    case SpanKind::kSchedReserve:
      return "sched/reserve";
    case SpanKind::kSchedPreempt:
      return "sched/preempt";
    case SpanKind::kSchedShed:
      return "sched/shed";
    case SpanKind::kPrespawn:
      return "autoscale/prespawn";
    case SpanKind::kCount:
      break;
  }
  return "?";
}

SpanTracer::SpanTracer(size_t ring_capacity) : capacity_(ring_capacity) {
  FLO_CHECK_GT(capacity_, 0u);
}

std::vector<SpanRecord> SpanTracer::TrackSpans(size_t track) const {
  FLO_CHECK_LT(track, tracks_.size());
  const Ring& ring = tracks_[track];
  std::vector<SpanRecord> spans;
  spans.reserve(ring.buffer.size());
  if (ring.next <= capacity_) {
    spans = ring.buffer;
  } else {
    // The ring wrapped: oldest retained span sits at the write cursor.
    const size_t start = ring.next % capacity_;
    for (size_t i = 0; i < capacity_; ++i) {
      spans.push_back(ring.buffer[(start + i) % capacity_]);
    }
  }
  return spans;
}

void SpanTracer::Clear() {
  for (Ring& ring : tracks_) {
    ring.buffer.clear();
    ring.next = 0;
  }
  emitted_ = 0;
  dropped_ = 0;
}

}  // namespace flo
