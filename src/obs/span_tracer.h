// Allocation-free span collection: one bounded ring of SpanRecords per
// track (track = replica + 1; track 0 holds fleet-scope and standalone
// spans).
//
// Emit is O(1) and never allocates after a track's first span: the ring
// overwrites its oldest record when full and counts the drop, so a
// 1M-request fleet run retains the last `capacity` spans per replica and
// the export stays bounded by design.
#ifndef SRC_OBS_SPAN_TRACER_H_
#define SRC_OBS_SPAN_TRACER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/obs/span.h"
#include "src/util/check.h"

namespace flo {

class SpanTracer {
 public:
  explicit SpanTracer(size_t ring_capacity);

  // Hot path (once per span): inline so a retained span costs a bounds
  // check and one ring store.
  void Emit(const SpanRecord& record) {
    FLO_CHECK_GE(record.replica, -1);
    const size_t track = static_cast<size_t>(record.replica + 1);
    if (track >= tracks_.size()) {
      tracks_.resize(track + 1);
    }
    Ring& ring = tracks_[track];
    if (ring.buffer.size() < capacity_) {
      ring.buffer.push_back(record);
    } else {
      ring.buffer[ring.next % capacity_] = record;
      ++dropped_;
    }
    ++ring.next;
    ++emitted_;
  }

  // Tracks ever emitted to (indexes 0..track_count()-1 are valid even if
  // a middle track stayed empty).
  size_t track_count() const { return tracks_.size(); }

  // Retained spans of a track, oldest first.
  std::vector<SpanRecord> TrackSpans(size_t track) const;

  uint64_t emitted() const { return emitted_; }
  uint64_t dropped() const { return dropped_; }

  // Forgets all spans and drop counts; keeps ring allocations.
  void Clear();

 private:
  struct Ring {
    std::vector<SpanRecord> buffer;
    uint64_t next = 0;  // total spans ever pushed to this ring
  };

  size_t capacity_;
  std::vector<Ring> tracks_;
  uint64_t emitted_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace flo

#endif  // SRC_OBS_SPAN_TRACER_H_
