#include "src/sched/fleet_scheduler.h"

#include <string>

#include "src/serve/tenant_registry.h"
#include "src/util/check.h"

namespace flo {
namespace {

// Whole half-life periods elapsed since the anchor, capped so the
// halving loop stays O(1); past 64 periods the share underflows to
// zero anyway.
int DecayPeriods(SimTime anchor_us, SimTime now, double half_life_us) {
  if (half_life_us <= 0.0 || now <= anchor_us) {
    return 0;
  }
  const double periods = (now - anchor_us) / half_life_us;
  return periods >= 64.0 ? 64 : static_cast<int>(periods);
}

// Repeated halving instead of std::pow/exp2: libm rounding is not
// bit-stable across toolchains, 0.5 multiplication is.
double Halve(double value, int periods) {
  for (int i = 0; i < periods; ++i) {
    value *= 0.5;
  }
  return value;
}

}  // namespace

FleetScheduler::Priority FleetScheduler::KeyFor(uint32_t tenant_id, SimTime arrival_us,
                                                SimTime now) const {
  Priority priority;
  priority.arrival_us = arrival_us;
  priority.usage_us = UsageAt(tenant_id, now);
  priority.starving =
      config_.starvation_age_us > 0.0 && now - arrival_us >= config_.starvation_age_us;
  return priority;
}

bool FleetScheduler::Before(const Priority& a, const Priority& b) {
  if (a.starving != b.starving) {
    return a.starving;
  }
  if (a.starving) {
    return a.arrival_us < b.arrival_us;  // oldest starving request first
  }
  if (a.usage_us != b.usage_us) {
    return a.usage_us < b.usage_us;  // lightest tenant first
  }
  return a.arrival_us < b.arrival_us;
}

size_t FleetScheduler::PickLane(const std::vector<RequestQueue::LaneHead>& heads,
                                SimTime now) const {
  FLO_CHECK(!heads.empty());
  size_t best = 0;
  Priority best_priority = KeyFor(heads[0].tenant_id, heads[0].arrival_us, now);
  for (size_t i = 1; i < heads.size(); ++i) {
    const Priority priority = KeyFor(heads[i].tenant_id, heads[i].arrival_us, now);
    if (Before(priority, best_priority)) {
      best = i;
      best_priority = priority;
    }
  }
  return best;
}

FleetScheduler::TenantShare& FleetScheduler::ShareFor(uint32_t tenant_id) {
  FLO_CHECK_GT(tenant_id, 0u);
  if (tenant_id >= shares_.size()) {
    shares_.resize(tenant_id + 1);
  }
  TenantShare& share = shares_[tenant_id];
  if (!share.registered) {
    const std::string& tenant = TenantNameOf(tenant_id);
    share.usage_gauge = registry_.Gauge("sched.usage_us." + tenant);
    share.latency_histo = registry_.Histo("sched.latency_us." + tenant);
    share.registered = true;
  }
  return share;
}

void FleetScheduler::Charge(uint32_t tenant_id, double cost_us, SimTime now) {
  TenantShare& share = ShareFor(tenant_id);
  const int periods = DecayPeriods(share.anchor_us, now, config_.share_half_life_us);
  if (periods >= 64) {
    share.usage_us = 0.0;
    share.anchor_us = now;
  } else if (periods > 0) {
    share.usage_us = Halve(share.usage_us, periods);
    share.anchor_us += periods * config_.share_half_life_us;
  }
  share.usage_us += cost_us;
  registry_.Set(share.usage_gauge, share.usage_us);
}

double FleetScheduler::UsageAt(uint32_t tenant_id, SimTime now) const {
  if (tenant_id >= shares_.size()) {
    return 0.0;
  }
  const TenantShare& share = shares_[tenant_id];
  if (!share.registered || share.usage_us <= 0.0) {
    return 0.0;
  }
  const int periods = DecayPeriods(share.anchor_us, now, config_.share_half_life_us);
  // At the cap the share is zero by definition, matching Charge's fold.
  return periods >= 64 ? 0.0 : Halve(share.usage_us, periods);
}

void FleetScheduler::ObserveLatency(uint32_t tenant_id, double latency_us) {
  registry_.Observe(ShareFor(tenant_id).latency_histo, latency_us);
}

double FleetScheduler::TenantP99Us(uint32_t tenant_id) const {
  if (tenant_id >= shares_.size() || !shares_[tenant_id].registered) {
    return 0.0;
  }
  const Histogram& histogram = registry_.histogram(shares_[tenant_id].latency_histo);
  return histogram.count() == 0 ? 0.0 : histogram.ApproxPercentile(0.99);
}

bool FleetScheduler::TenantSloBlown(uint32_t tenant_id) const {
  return config_.slo_shed && config_.slo_p99_us > 0.0 &&
         TenantP99Us(tenant_id) > config_.slo_p99_us;
}

bool FleetScheduler::BackfillFits(double predicted_service_us, double window_us) const {
  return config_.backfill && window_us > 0.0 &&
         predicted_service_us * config_.backfill_slack <= window_us;
}

void FleetScheduler::ResetRunState() {
  shares_.clear();
  registry_.ResetValues();
}

}  // namespace flo
