#include "src/sched/fleet_scheduler.h"

#include <string>

#include "src/serve/tenant_registry.h"
#include "src/util/check.h"

namespace flo {
namespace {

// Whole half-life periods elapsed since the anchor, capped so the
// halving loop stays O(1); past 64 periods the share underflows to
// zero anyway.
int DecayPeriods(SimTime anchor_us, SimTime now, double half_life_us) {
  if (half_life_us <= 0.0 || now <= anchor_us) {
    return 0;
  }
  const double periods = (now - anchor_us) / half_life_us;
  return periods >= 64.0 ? 64 : static_cast<int>(periods);
}

// Repeated halving instead of std::pow/exp2: libm rounding is not
// bit-stable across toolchains, 0.5 multiplication is.
double Halve(double value, int periods) {
  for (int i = 0; i < periods; ++i) {
    value *= 0.5;
  }
  return value;
}

// Folds whole-period decay into an account in place (the shared idiom of
// Charge, ChargeArrival, and the fleet-level account).
void FoldDecay(double* mass, SimTime* anchor_us, SimTime now, double half_life_us) {
  const int periods = DecayPeriods(*anchor_us, now, half_life_us);
  if (periods >= 64) {
    *mass = 0.0;
    *anchor_us = now;
  } else if (periods > 0) {
    *mass = Halve(*mass, periods);
    *anchor_us += periods * half_life_us;
  }
}

}  // namespace

FleetScheduler::Priority FleetScheduler::KeyFor(uint32_t tenant_id, SimTime arrival_us,
                                                SimTime now) const {
  Priority priority;
  priority.arrival_us = arrival_us;
  priority.usage_us = UsageAt(tenant_id, now);
  priority.starving =
      config_.starvation_age_us > 0.0 && now - arrival_us >= config_.starvation_age_us;
  return priority;
}

bool FleetScheduler::Before(const Priority& a, const Priority& b) {
  if (a.starving != b.starving) {
    return a.starving;
  }
  if (a.starving) {
    return a.arrival_us < b.arrival_us;  // oldest starving request first
  }
  if (a.usage_us != b.usage_us) {
    return a.usage_us < b.usage_us;  // lightest tenant first
  }
  return a.arrival_us < b.arrival_us;
}

size_t FleetScheduler::PickLane(const std::vector<RequestQueue::LaneHead>& heads,
                                SimTime now) const {
  FLO_CHECK(!heads.empty());
  size_t best = 0;
  Priority best_priority = KeyFor(heads[0].tenant_id, heads[0].arrival_us, now);
  for (size_t i = 1; i < heads.size(); ++i) {
    const Priority priority = KeyFor(heads[i].tenant_id, heads[i].arrival_us, now);
    if (Before(priority, best_priority)) {
      best = i;
      best_priority = priority;
    }
  }
  return best;
}

FleetScheduler::TenantShare& FleetScheduler::ShareFor(uint32_t tenant_id) {
  FLO_CHECK_GT(tenant_id, 0u);
  if (tenant_id >= shares_.size()) {
    shares_.resize(tenant_id + 1);
  }
  TenantShare& share = shares_[tenant_id];
  if (!share.registered) {
    const std::string& tenant = TenantNameOf(tenant_id);
    share.usage_gauge = registry_.Gauge("sched.usage_us." + tenant);
    share.latency_histo = registry_.Histo("sched.latency_us." + tenant);
    share.arrival_gauge = registry_.Gauge("sched.arrivals." + tenant);
    share.registered = true;
  }
  return share;
}

void FleetScheduler::Charge(uint32_t tenant_id, double cost_us, SimTime now) {
  TenantShare& share = ShareFor(tenant_id);
  FoldDecay(&share.usage_us, &share.anchor_us, now, config_.share_half_life_us);
  share.usage_us += cost_us;
  registry_.Set(share.usage_gauge, share.usage_us);
}

void FleetScheduler::ChargeArrival(uint32_t tenant_id, SimTime now) {
  TenantShare& share = ShareFor(tenant_id);
  FoldDecay(&share.arrival_mass, &share.arrival_anchor_us, now, config_.share_half_life_us);
  share.arrival_mass += 1.0;
  registry_.Set(share.arrival_gauge, share.arrival_mass);
  FoldDecay(&fleet_arrival_mass_, &fleet_arrival_anchor_us_, now,
            config_.share_half_life_us);
  fleet_arrival_mass_ += 1.0;
}

double FleetScheduler::ArrivalMassAt(uint32_t tenant_id, SimTime now) const {
  if (tenant_id >= shares_.size()) {
    return 0.0;
  }
  const TenantShare& share = shares_[tenant_id];
  if (!share.registered || share.arrival_mass <= 0.0) {
    return 0.0;
  }
  const int periods =
      DecayPeriods(share.arrival_anchor_us, now, config_.share_half_life_us);
  return periods >= 64 ? 0.0 : Halve(share.arrival_mass, periods);
}

RateEstimate FleetScheduler::SampleRate(SimTime now, double interval_us) {
  RateEstimate estimate;
  if (config_.share_half_life_us <= 0.0 || interval_us <= 0.0) {
    return estimate;
  }
  FoldDecay(&fleet_arrival_mass_, &fleet_arrival_anchor_us_, now,
            config_.share_half_life_us);
  // Phase-compensated inversion: folding decays in whole half-life
  // quanta, so the mass still carries an un-decayed span of
  // d = now - anchor in [0, half_life). At a steady rate of r arrivals/us
  // the after-fold mass is r * half_life (the geometric tail) plus r * d
  // (the un-decayed arrivals), so r = mass / (half_life + d) — exact at
  // any sample phase, where dividing by half_life alone would swing the
  // estimate by up to 2x with the anchor's position. No libm.
  const double undecayed_us = now - fleet_arrival_anchor_us_;
  const double rate_per_us =
      fleet_arrival_mass_ / (config_.share_half_life_us + undecayed_us);
  estimate.arrivals_per_interval = rate_per_us * interval_us;
  if (rate_sampled_) {
    estimate.trend = estimate.arrivals_per_interval - last_rate_per_interval_;
  }
  last_rate_per_interval_ = estimate.arrivals_per_interval;
  rate_sampled_ = true;
  return estimate;
}

double FleetScheduler::UsageAt(uint32_t tenant_id, SimTime now) const {
  if (tenant_id >= shares_.size()) {
    return 0.0;
  }
  const TenantShare& share = shares_[tenant_id];
  if (!share.registered || share.usage_us <= 0.0) {
    return 0.0;
  }
  const int periods = DecayPeriods(share.anchor_us, now, config_.share_half_life_us);
  // At the cap the share is zero by definition, matching Charge's fold.
  return periods >= 64 ? 0.0 : Halve(share.usage_us, periods);
}

void FleetScheduler::ObserveLatency(uint32_t tenant_id, double latency_us) {
  registry_.Observe(ShareFor(tenant_id).latency_histo, latency_us);
}

double FleetScheduler::TenantP99Us(uint32_t tenant_id) const {
  if (tenant_id >= shares_.size() || !shares_[tenant_id].registered) {
    return 0.0;
  }
  const Histogram& histogram = registry_.histogram(shares_[tenant_id].latency_histo);
  return histogram.count() == 0 ? 0.0 : histogram.ApproxPercentile(0.99);
}

bool FleetScheduler::TenantSloBlown(uint32_t tenant_id) const {
  return config_.slo_shed && config_.slo_p99_us > 0.0 &&
         TenantP99Us(tenant_id) > config_.slo_p99_us;
}

bool FleetScheduler::BackfillFits(double predicted_service_us, double window_us) const {
  return config_.backfill && window_us > 0.0 &&
         predicted_service_us * config_.backfill_slack <= window_us;
}

void FleetScheduler::ResetRunState() {
  shares_.clear();
  registry_.ResetValues();
  fleet_arrival_mass_ = 0.0;
  fleet_arrival_anchor_us_ = 0.0;
  last_rate_per_interval_ = 0.0;
  rate_sampled_ = false;
}

}  // namespace flo
