// FleetScheduler: fleet-wide fair-share state plus the priority and
// backfill decisions every replica's dispatch consults.
//
// One scheduler is shared by every session in a cluster (the way the
// ObsPlane is), so tenant shares are fleet-wide: a tenant burning
// executor time on replica 3 loses priority on replica 0 too. All
// state lives in a live MetricsRegistry — per-tenant usage gauges and
// latency histograms — updated at event-dispatch time on the sim
// clock, so decisions are bit-deterministic across reruns, host tune
// threads, and event-loop backends.
//
// Priority is Slurm-shaped: usage-decayed fair share first (lowest
// served cost wins), request age as the tie-break, and a starvation
// backstop that lifts any request older than `starvation_age_us` above
// every non-starving batch. Tenant ids never order anything — interning
// order is arrival-dependent — only usage, age, and (via the lane list)
// alphabetical tenant order do.
#ifndef SRC_SCHED_FLEET_SCHEDULER_H_
#define SRC_SCHED_FLEET_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sched/sched_config.h"
#include "src/serve/request_queue.h"
#include "src/sim/event_queue.h"

namespace flo {

// Short-horizon arrival-rate estimate over the scheduler's decayed
// arrival accounts, sampled at the autoscale checkpoint. Both fields are
// in requests per `interval_us` (the sampling interval): the estimate is
// the steady-state inversion of the decayed arrival mass, the trend is
// the change since the previous sample — together they extrapolate the
// next interval's demand one step ahead.
struct RateEstimate {
  double arrivals_per_interval = 0.0;
  double trend = 0.0;
};

class FleetScheduler {
 public:
  explicit FleetScheduler(SchedConfig config) : config_(config) {}

  bool enabled() const { return config_.enabled; }
  const SchedConfig& config() const { return config_; }

  // The deterministic priority key: starving requests first (oldest
  // wins), then lowest decayed usage, then oldest arrival. Callers
  // break remaining ties by their own deterministic scan order.
  struct Priority {
    bool starving = false;
    double usage_us = 0.0;
    SimTime arrival_us = 0.0;
  };
  Priority KeyFor(uint32_t tenant_id, SimTime arrival_us, SimTime now) const;
  // True when `a` outranks `b`.
  static bool Before(const Priority& a, const Priority& b);

  // RequestQueue::LanePicker entry point: index (into `heads`) of the
  // highest-priority lane head at `now`. Ties keep the first head in
  // the presented (alphabetical-tenant) order.
  size_t PickLane(const std::vector<RequestQueue::LaneHead>& heads, SimTime now) const;

  // Charges `cost_us` of served predicted-cost to the tenant (once per
  // request at batch dispatch), folding in half-life decay and
  // mirroring the share into the live registry gauge.
  void Charge(uint32_t tenant_id, double cost_us, SimTime now);
  // The tenant's decayed usage as of `now`; 0 for never-charged tenants.
  double UsageAt(uint32_t tenant_id, SimTime now) const;

  // Charges one arrival to the tenant's (and the fleet's) arrival
  // account — the same libm-free halving over `share_half_life_us` the
  // served-cost shares use, so a burst's arrival mass decays on the same
  // clock its usage does. Charged once per admitted request, never for
  // fault requeues or preemptive re-placements (those are placement
  // revisions, not demand).
  void ChargeArrival(uint32_t tenant_id, SimTime now);
  // The tenant's decayed arrival mass as of `now`; 0 when never charged.
  double ArrivalMassAt(uint32_t tenant_id, SimTime now) const;

  // Samples the fleet-level arrival-rate estimate for the next
  // `interval_us`, inverting the decayed arrival mass: decay folds in
  // whole half-life quanta, so at a steady rate of r arrivals/us the
  // after-fold mass is r * (half_life + d) where d = now - anchor is the
  // un-decayed span — mass / (half_life + d) recovers r exactly at any
  // sample phase, with plain arithmetic (no libm call — decisions stay
  // bit-stable across toolchains). The trend is the difference from the
  // previous sample, so callers can extrapolate a forming burst one
  // interval ahead. Returns zeros when decay is disabled
  // (share_half_life_us <= 0): an undecayed account is cumulative
  // history, not a rate.
  RateEstimate SampleRate(SimTime now, double interval_us);

  // Completed-request latency feed for the SLO shed decision.
  void ObserveLatency(uint32_t tenant_id, double latency_us);
  // Approximate p99 over the tenant's observed latencies (0 when none).
  double TenantP99Us(uint32_t tenant_id) const;
  // True when slo_shed is armed and the tenant's p99 already exceeds
  // the configured SLO — serving it degraded can no longer help.
  bool TenantSloBlown(uint32_t tenant_id) const;

  // True when a candidate with this predicted service time fits a
  // tuning window of `window_us` with the configured slack.
  bool BackfillFits(double predicted_service_us, double window_us) const;

  // Clears shares and latency state between runs; registry metric
  // registrations survive (ids are name-stable).
  void ResetRunState();

  // The live share state (sched.usage_us.<tenant> gauges,
  // sched.latency_us.<tenant> histograms) — what the priority reads.
  const MetricsRegistry& registry() const { return registry_; }

 private:
  struct TenantShare {
    bool registered = false;
    double usage_us = 0.0;
    // Decay is folded in whole half-life periods; the anchor advances
    // by whole periods so partial periods keep accumulating.
    SimTime anchor_us = 0.0;
    // Arrival account: requests admitted, decayed like usage_us but on
    // its own anchor (arrivals and dispatches happen at different times).
    double arrival_mass = 0.0;
    SimTime arrival_anchor_us = 0.0;
    MetricsRegistry::Id usage_gauge = 0;
    MetricsRegistry::Id latency_histo = 0;
    MetricsRegistry::Id arrival_gauge = 0;
  };

  TenantShare& ShareFor(uint32_t tenant_id);

  SchedConfig config_;
  MetricsRegistry registry_;
  // Indexed by interned tenant id (dense, ids start at 1).
  std::vector<TenantShare> shares_;
  // Fleet-level arrival account (the per-tenant accounts' sum, folded on
  // its own anchor) plus the previous SampleRate value for the trend.
  double fleet_arrival_mass_ = 0.0;
  SimTime fleet_arrival_anchor_us_ = 0.0;
  double last_rate_per_interval_ = 0.0;
  bool rate_sampled_ = false;
};

}  // namespace flo

#endif  // SRC_SCHED_FLEET_SCHEDULER_H_
