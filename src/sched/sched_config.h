// Fleet scheduling knobs: the decision layer for *when* admitted work
// runs (the FleetRouter decides *where*). Three cooperating policies,
// all default-off so a default-constructed config is bit-identical to
// the pre-sched FIFO dispatch:
//
//  - fair-share priority: per-tenant served-cost shares decayed with a
//    half-life compose with request age into a deterministic priority
//    key that orders each replica's ready lanes;
//  - latency-predicted backfill: when the head-of-line batch is blocked
//    on cold tuning, lower-priority warm batches are slotted into the
//    window iff their predicted service time fits before the tuning
//    lane's expected completion — the head job is never delayed;
//  - preemptive requeue: not-yet-dispatched requests on draining,
//    straggling, or overloaded replicas are pulled back through the
//    FleetRouter instead of riding the sinking replica.
#ifndef SRC_SCHED_SCHED_CONFIG_H_
#define SRC_SCHED_SCHED_CONFIG_H_

#include <cstddef>

namespace flo {

struct SchedConfig {
  // Master switch. Off = every dispatch decision is byte-identical to
  // the pre-sched build, whatever the other knobs say.
  bool enabled = false;

  // Fair share: served predicted-cost halves every this many sim-us.
  // <= 0 disables decay (shares accumulate forever).
  double share_half_life_us = 50'000.0;
  // A request older than this outranks every non-starving batch
  // regardless of its tenant's share — the starvation-freedom backstop.
  double starvation_age_us = 100'000.0;

  // Backfill: with it off, a blocked high-priority head holds the
  // executor idle until its tuning completes (strict priority).
  bool backfill = true;
  // A candidate fits a window iff predicted_service * slack <= window;
  // the margin absorbs predictor error so the head job is not delayed.
  double backfill_slack = 1.25;

  // Preemptive requeue: a fleet-level scan every preempt_interval_us
  // pulls queued (never dispatched) requests off unhealthy or
  // overloaded replicas and re-places them through the router.
  bool preempt_requeue = true;
  double preempt_interval_us = 2'000.0;
  // A replica is overloaded when its queue depth is at least
  // overload_min_queue and exceeds overload_factor x the mean depth of
  // the other accepting replicas.
  double overload_factor = 4.0;
  size_t overload_min_queue = 8;

  // SLO-aware shed: when tuner retries exhaust and a batch would be
  // served on the single-group safety plan, drop the requests of
  // tenants whose observed p99 already exceeds slo_p99_us instead of
  // queueing degraded work that can no longer meet its SLO.
  bool slo_shed = false;
  double slo_p99_us = 0.0;  // <= 0 = never shed
};

// Scheduler outcomes aggregated into FleetReport. All-zero (and
// enabled=false) when the scheduler is off.
struct SchedReport {
  bool enabled = false;
  size_t backfills = 0;            // warm batches slotted into tuning windows
  size_t reserves = 0;             // executor-idle holds for a blocked head
  double reserve_idle_us = 0.0;    // total executor time spent reserved
  size_t head_delays = 0;          // backfill overran into a tuned head's start
  size_t preempt_scans = 0;        // fleet preemption sweeps run
  size_t preempted_requests = 0;   // queued requests pulled off replicas
  size_t shed_requests = 0;        // degraded-mode requests shed over SLO
};

}  // namespace flo

#endif  // SRC_SCHED_SCHED_CONFIG_H_
