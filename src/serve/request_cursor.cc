#include "src/serve/request_cursor.h"

#include <algorithm>
#include <utility>

#include "src/serve/tenant_registry.h"
#include "src/util/check.h"

namespace flo {

VectorCursor::VectorCursor(std::vector<ServeRequest> requests)
    : requests_(std::move(requests)) {
  std::stable_sort(requests_.begin(), requests_.end(),
                   [](const ServeRequest& a, const ServeRequest& b) {
                     return a.arrival_us < b.arrival_us;
                   });
}

std::optional<ServeRequest> VectorCursor::Next() {
  if (index_ >= requests_.size()) {
    return std::nullopt;
  }
  return std::move(requests_[index_++]);
}

SyntheticCursor::SyntheticCursor(std::string tenant, std::vector<ScenarioSpec> specs,
                                 ArrivalProcess process, int64_t count, int64_t first_id)
    : tenant_(std::move(tenant)),
      tenant_id_(InternTenant(tenant_)),
      specs_(std::move(specs)),
      process_(process),
      remaining_(count),
      next_id_(first_id) {
  FLO_CHECK(!specs_.empty());
  FLO_CHECK_GE(count, 0);
}

std::optional<ServeRequest> SyntheticCursor::Next() {
  if (remaining_ <= 0) {
    return std::nullopt;
  }
  --remaining_;
  ServeRequest request;
  request.id = next_id_++;
  request.tenant = tenant_;
  request.tenant_id = tenant_id_;
  request.arrival_us = process_.Next();
  request.spec = specs_[spec_index_];
  spec_index_ = (spec_index_ + 1) % specs_.size();
  return request;
}

MergeCursor::MergeCursor(std::vector<RequestCursor*> sources)
    : sources_(std::move(sources)) {
  heads_.reserve(sources_.size());
  for (RequestCursor* source : sources_) {
    FLO_CHECK(source != nullptr);
    heads_.push_back(source->Next());
  }
}

std::optional<ServeRequest> MergeCursor::Next() {
  size_t best = heads_.size();
  for (size_t i = 0; i < heads_.size(); ++i) {
    if (!heads_[i].has_value()) {
      continue;
    }
    // Strict < keeps ties on the lowest source index: the order a stable
    // sort of concatenated streams (MergeStreams) produces.
    if (best == heads_.size() || heads_[i]->arrival_us < heads_[best]->arrival_us) {
      best = i;
    }
  }
  if (best == heads_.size()) {
    return std::nullopt;
  }
  std::optional<ServeRequest> result = std::move(heads_[best]);
  heads_[best] = sources_[best]->Next();
  return result;
}

TraceFileCursor::TraceFileCursor(const std::string& path) : file_(path) {
  if (!file_) {
    ok_ = false;
    done_ = true;
  }
}

std::optional<ServeRequest> TraceFileCursor::Next() {
  if (done_) {
    return std::nullopt;
  }
  std::string line;
  while (std::getline(file_, line)) {
    ServeRequest request;
    switch (ParseTraceLine(std::move(line), &request)) {
      case TraceLineResult::kSkip:
        continue;
      case TraceLineResult::kError:
        ok_ = false;
        done_ = true;
        return std::nullopt;
      case TraceLineResult::kRequest:
        request.id = next_id_++;
        return request;
    }
  }
  done_ = true;
  return std::nullopt;
}

ArrivalPump::ArrivalPump(RequestCursor* cursor, EventLoop* events, AdmitFn admit)
    : cursor_(cursor), events_(events), admit_(std::move(admit)) {
  FLO_CHECK(cursor_ != nullptr);
  FLO_CHECK(events_ != nullptr);
  FLO_CHECK(admit_ != nullptr);
  handler_ = events_->RegisterHandler(
      [this](const EventRecord&, SimTime now) { OnArrival(now); });
  staged_ = cursor_->Next();
  Schedule();
}

void ArrivalPump::Schedule() {
  if (!staged_.has_value()) {
    return;
  }
  EventRecord record;
  record.type = EventType::kArrival;
  record.handler = handler_;
  record.key = static_cast<uint64_t>(staged_->id);
  events_->Push(staged_->arrival_us, record);
}

void ArrivalPump::OnArrival(SimTime now) {
  FLO_CHECK(staged_.has_value());
  ServeRequest request = std::move(*staged_);
  staged_ = cursor_->Next();
  if (staged_.has_value()) {
    FLO_CHECK_GE(staged_->arrival_us, request.arrival_us)
        << "cursor must yield nondecreasing arrivals";
  }
  // Schedule the successor before admitting: arrivals share a band in the
  // event loop, so relative order at equal timestamps is already fixed by
  // band + sequence, and scheduling first keeps the queue non-empty while
  // the admit callback runs.
  Schedule();
  ++admitted_;
  admit_(std::move(request), now);
}

}  // namespace flo
