// Pull-based request ingestion for the serving loops.
//
// The serving engines used to materialize an entire trace as a
// std::vector<ServeRequest> (and merge per-tenant streams up front) before
// the first event fired. A RequestCursor instead yields requests one at a
// time in arrival order, so ServeLoop/ServingCluster admit work as
// simulated time advances: memory stays O(pending) instead of O(trace),
// and million-request runs never build a million-entry event heap.
//
// Cursors are single-pass and must yield nondecreasing arrival_us (the
// event loop FLO_CHECKs this). Ties across merged sources keep source
// order — the exact order MergeStreams' stable sort produced.
#ifndef SRC_SERVE_REQUEST_CURSOR_H_
#define SRC_SERVE_REQUEST_CURSOR_H_

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/serve/request_source.h"
#include "src/sim/event_loop.h"

namespace flo {

class RequestCursor {
 public:
  virtual ~RequestCursor() = default;

  // The next request in nondecreasing arrival order; nullopt when the
  // source is exhausted (permanently — cursors are single-pass).
  virtual std::optional<ServeRequest> Next() = 0;
};

// A materialized trace, stable-sorted by arrival on construction: the
// adapter that lets vector-based call sites drive the streaming path.
class VectorCursor : public RequestCursor {
 public:
  explicit VectorCursor(std::vector<ServeRequest> requests);
  std::optional<ServeRequest> Next() override;

 private:
  std::vector<ServeRequest> requests_;
  size_t index_ = 0;
};

// One tenant's synthetic stream: an ArrivalProcess zipped with specs
// cycled round-robin, `count` requests long. The streaming equivalent of
// MakeRequestStream(tenant, specs, PoissonArrivals(...)) — bit-identical
// request for request.
class SyntheticCursor : public RequestCursor {
 public:
  SyntheticCursor(std::string tenant, std::vector<ScenarioSpec> specs,
                  ArrivalProcess process, int64_t count, int64_t first_id = 0);
  std::optional<ServeRequest> Next() override;

 private:
  std::string tenant_;
  uint32_t tenant_id_;
  std::vector<ScenarioSpec> specs_;
  ArrivalProcess process_;
  int64_t remaining_;
  int64_t next_id_;
  size_t spec_index_ = 0;
};

// K-way merge of child cursors (borrowed; must outlive the merge). Ties
// go to the lowest source index — the order MergeStreams' stable sort
// gives simultaneous arrivals.
class MergeCursor : public RequestCursor {
 public:
  explicit MergeCursor(std::vector<RequestCursor*> sources);
  std::optional<ServeRequest> Next() override;

 private:
  std::vector<RequestCursor*> sources_;
  std::vector<std::optional<ServeRequest>> heads_;
};

// Line-at-a-time streaming parse of a CSV trace file (the format of
// SerializeTrace). Ids are assigned sequentially in file order, exactly
// like LoadTraceFromFile. A malformed line (or an unreadable file) ends
// the stream and sets ok() to false — callers distinguish "exhausted"
// from "rejected" the way LoadTraceFromFile's nullopt did.
class TraceFileCursor : public RequestCursor {
 public:
  explicit TraceFileCursor(const std::string& path);
  std::optional<ServeRequest> Next() override;
  bool ok() const { return ok_; }

 private:
  std::ifstream file_;
  bool ok_ = true;
  bool done_ = false;
  int64_t next_id_ = 0;
};

// Drives a cursor through an EventLoop: keeps exactly one arrival event
// in flight and pulls the next request when the current one fires, so the
// event queue holds O(pending work) entries instead of the whole trace.
// Construction stages the first request; the admit callback runs at each
// request's arrival time.
class ArrivalPump {
 public:
  using AdmitFn = std::function<void(ServeRequest request, SimTime now)>;

  // `cursor` and `events` are borrowed and must outlive the pump; the
  // pump must outlive the drain of `events` (its handler lives here).
  ArrivalPump(RequestCursor* cursor, EventLoop* events, AdmitFn admit);

  // Requests admitted so far.
  size_t admitted() const { return admitted_; }
  // True once the cursor is exhausted and every pulled request admitted.
  bool done() const { return !staged_.has_value(); }

 private:
  void Schedule();
  void OnArrival(SimTime now);

  RequestCursor* cursor_;
  EventLoop* events_;
  AdmitFn admit_;
  uint32_t handler_;
  std::optional<ServeRequest> staged_;
  size_t admitted_ = 0;
};

}  // namespace flo

#endif  // SRC_SERVE_REQUEST_CURSOR_H_
