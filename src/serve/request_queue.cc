#include "src/serve/request_queue.h"

#include <utility>

#include "src/util/check.h"

namespace flo {

RequestQueue::RequestQueue(Keyer keyer) : keyer_(std::move(keyer)) {
  FLO_CHECK(keyer_ != nullptr);
}

void RequestQueue::Admit(ServeRequest request) {
  const uint64_t key = keyer_(request.spec);
  queues_[request.tenant].push_back(Pending{std::move(request), key});
  ++key_depth_[key];
  ++size_;
}

size_t RequestQueue::TenantDepth(const std::string& tenant) const {
  auto it = queues_.find(tenant);
  return it == queues_.end() ? 0 : it->second.size();
}

size_t RequestQueue::KeyDepth(uint64_t key) const {
  auto it = key_depth_.find(key);
  return it == key_depth_.end() ? 0 : it->second;
}

std::vector<std::string> RequestQueue::Tenants() const {
  std::vector<std::string> tenants;
  tenants.reserve(queues_.size());
  for (const auto& [tenant, queue] : queues_) {
    tenants.push_back(tenant);
  }
  return tenants;
}

const std::string& RequestQueue::NextTenant() const {
  FLO_CHECK(!empty());
  // First non-empty tenant strictly after the last choice, wrapping.
  auto it = queues_.upper_bound(last_tenant_);
  for (size_t steps = 0; steps < 2 * queues_.size(); ++steps, ++it) {
    if (it == queues_.end()) {
      it = queues_.begin();
    }
    if (!it->second.empty()) {
      return it->first;
    }
  }
  FLO_CHECK(false) << "non-empty queue with no poppable tenant";
  return last_tenant_;  // unreachable
}

uint64_t RequestQueue::PeekKey() const { return queues_.at(NextTenant()).front().key; }

std::vector<ServeRequest> RequestQueue::PopBatch(int max_batch, uint64_t* batch_key) {
  FLO_CHECK_GT(max_batch, 0);
  std::vector<ServeRequest> batch;
  if (empty()) {
    return batch;
  }
  const std::string tenant = NextTenant();
  last_tenant_ = tenant;
  const uint64_t key = queues_[tenant].front().key;
  if (batch_key != nullptr) {
    *batch_key = key;
  }
  // The chosen tenant's consecutive same-key run first, then the other
  // tenants' same-key head runs in rotation order.
  auto drain = [&](std::deque<Pending>* queue) {
    while (!queue->empty() && queue->front().key == key &&
           batch.size() < static_cast<size_t>(max_batch)) {
      batch.push_back(std::move(queue->front().request));
      queue->pop_front();
      if (--key_depth_[key] == 0) {
        key_depth_.erase(key);
      }
      --size_;
    }
  };
  drain(&queues_[tenant]);
  for (auto it = queues_.upper_bound(tenant); it != queues_.end(); ++it) {
    drain(&it->second);
  }
  for (auto it = queues_.begin(); it != queues_.end() && it->first < tenant; ++it) {
    drain(&it->second);
  }
  return batch;
}

}  // namespace flo
