#include "src/serve/request_queue.h"

#include <algorithm>
#include <utility>

#include "src/serve/tenant_registry.h"
#include "src/util/check.h"

namespace flo {

RequestQueue::RequestQueue(Keyer keyer) : keyer_(std::move(keyer)) {
  FLO_CHECK(keyer_ != nullptr);
}

RequestQueue::Lane& RequestQueue::LaneFor(ServeRequest* request) {
  if (request->tenant_id == 0) {
    request->tenant_id = InternTenant(request->tenant);  // hand-built request
  }
  const auto it = lanes_by_id_.find(request->tenant_id);
  if (it != lanes_by_id_.end()) {
    return *it->second;
  }
  auto lane = std::make_unique<Lane>();
  lane->tenant = request->tenant;
  lane->tenant_id = request->tenant_id;
  Lane* raw = lane.get();
  // Sorted insert keeps rotation alphabetical; new tenants are rare.
  const auto pos = std::lower_bound(
      lanes_.begin(), lanes_.end(), lane,
      [](const std::unique_ptr<Lane>& a, const std::unique_ptr<Lane>& b) {
        return a->tenant < b->tenant;
      });
  lanes_.insert(pos, std::move(lane));
  lanes_by_id_.emplace(request->tenant_id, raw);
  return *raw;
}

void RequestQueue::Admit(ServeRequest request) {
  const uint64_t key = keyer_(request.spec);
  Lane& lane = LaneFor(&request);
  lane.queue.push_back(Pending{std::move(request), key});
  ++key_depth_[key];
  ++size_;
}

size_t RequestQueue::TenantDepth(const std::string& tenant) const {
  const auto it = std::lower_bound(
      lanes_.begin(), lanes_.end(), tenant,
      [](const std::unique_ptr<Lane>& lane, const std::string& name) {
        return lane->tenant < name;
      });
  return it != lanes_.end() && (*it)->tenant == tenant ? (*it)->queue.size() : 0;
}

size_t RequestQueue::KeyDepth(uint64_t key) const {
  const auto it = key_depth_.find(key);
  return it == key_depth_.end() ? 0 : it->second;
}

std::vector<std::string> RequestQueue::Tenants() const {
  std::vector<std::string> tenants;
  tenants.reserve(lanes_.size());
  for (const std::unique_ptr<Lane>& lane : lanes_) {
    tenants.push_back(lane->tenant);
  }
  return tenants;
}

size_t RequestQueue::NextLaneIndex() const {
  FLO_CHECK(!empty());
  if (picker_ != nullptr) {
    heads_scratch_.clear();
    for (size_t index = 0; index < lanes_.size(); ++index) {
      const Lane& lane = *lanes_[index];
      if (lane.queue.empty()) {
        continue;
      }
      heads_scratch_.push_back(LaneHead{&lane.tenant, lane.tenant_id,
                                        lane.queue.front().key,
                                        lane.queue.front().request.arrival_us,
                                        lane.queue.size(), index});
    }
    const size_t pick = picker_(heads_scratch_);
    FLO_CHECK_LT(pick, heads_scratch_.size());
    return heads_scratch_[pick].lane_index;
  }
  // First non-empty lane strictly after the last choice, wrapping.
  const auto start = std::upper_bound(
      lanes_.begin(), lanes_.end(), last_tenant_,
      [](const std::string& name, const std::unique_ptr<Lane>& lane) {
        return name < lane->tenant;
      });
  const size_t first = static_cast<size_t>(start - lanes_.begin());
  for (size_t step = 0; step < lanes_.size(); ++step) {
    const size_t index = (first + step) % lanes_.size();
    if (!lanes_[index]->queue.empty()) {
      return index;
    }
  }
  FLO_CHECK(false) << "non-empty queue with no poppable tenant";
  return 0;  // unreachable
}

uint64_t RequestQueue::PeekKey() const {
  return lanes_[NextLaneIndex()]->queue.front().key;
}

RequestQueue::BatchPreview RequestQueue::PreviewBatch(int max_batch) const {
  if (empty()) {
    return BatchPreview{};
  }
  return PreviewAt(NextLaneIndex(), max_batch);
}

void RequestQueue::PreviewLanes(int max_batch, std::vector<BatchPreview>* out) const {
  FLO_CHECK(out != nullptr);
  out->clear();
  for (size_t index = 0; index < lanes_.size(); ++index) {
    if (!lanes_[index]->queue.empty()) {
      out->push_back(PreviewAt(index, max_batch));
    }
  }
}

RequestQueue::BatchPreview RequestQueue::PreviewAt(size_t chosen, int max_batch) const {
  FLO_CHECK_GT(max_batch, 0);
  BatchPreview preview;
  preview.key = lanes_[chosen]->queue.front().key;
  preview.tenant_id = lanes_[chosen]->tenant_id;
  const size_t cap = static_cast<size_t>(max_batch);
  // Mirror PopBatchInto's gather — the chosen lane's same-key run, then
  // the other lanes' same-key head runs in rotation order — by walking
  // the deques without popping.
  auto scan = [&](const std::deque<Pending>& queue) {
    for (const Pending& pending : queue) {
      if (pending.key != preview.key || preview.size >= cap) {
        break;
      }
      if (preview.size == 0 || pending.request.arrival_us < preview.oldest_arrival_us) {
        preview.oldest_arrival_us = pending.request.arrival_us;
      }
      ++preview.size;
    }
  };
  scan(lanes_[chosen]->queue);
  for (size_t i = chosen + 1; i < lanes_.size(); ++i) {
    scan(lanes_[i]->queue);
  }
  for (size_t i = 0; i < chosen; ++i) {
    scan(lanes_[i]->queue);
  }
  return preview;
}

size_t RequestQueue::DrainInto(std::vector<ServeRequest>* out) {
  FLO_CHECK(out != nullptr);
  size_t drained = 0;
  for (const std::unique_ptr<Lane>& lane : lanes_) {
    while (!lane->queue.empty()) {
      out->push_back(std::move(lane->queue.front().request));
      lane->queue.pop_front();
      ++drained;
    }
  }
  key_depth_.clear();
  size_ = 0;
  return drained;
}

std::vector<ServeRequest> RequestQueue::PopBatch(int max_batch, uint64_t* batch_key) {
  std::vector<ServeRequest> batch;
  const uint64_t key = PopBatchInto(max_batch, &batch);
  if (batch_key != nullptr) {
    *batch_key = key;
  }
  return batch;
}

uint64_t RequestQueue::PopBatchInto(int max_batch, std::vector<ServeRequest>* out) {
  FLO_CHECK_GT(max_batch, 0);
  FLO_CHECK(out != nullptr);
  out->clear();
  if (empty()) {
    return 0;
  }
  return PopAt(NextLaneIndex(), max_batch, out);
}

uint64_t RequestQueue::PopLaneBatchInto(uint32_t tenant_id, int max_batch,
                                        std::vector<ServeRequest>* out) {
  FLO_CHECK_GT(max_batch, 0);
  FLO_CHECK(out != nullptr);
  out->clear();
  for (size_t index = 0; index < lanes_.size(); ++index) {
    if (lanes_[index]->tenant_id == tenant_id && !lanes_[index]->queue.empty()) {
      return PopAt(index, max_batch, out);
    }
  }
  FLO_CHECK(false) << "no queued lane for tenant id " << tenant_id;
  return 0;  // unreachable
}

uint64_t RequestQueue::PopAt(size_t chosen, int max_batch, std::vector<ServeRequest>* out) {
  last_tenant_ = lanes_[chosen]->tenant;
  const uint64_t key = lanes_[chosen]->queue.front().key;
  // The chosen tenant's consecutive same-key run first, then the other
  // tenants' same-key head runs in rotation order.
  auto drain = [&](std::deque<Pending>* queue) {
    while (!queue->empty() && queue->front().key == key &&
           out->size() < static_cast<size_t>(max_batch)) {
      out->push_back(std::move(queue->front().request));
      queue->pop_front();
      if (--key_depth_[key] == 0) {
        key_depth_.erase(key);
      }
      --size_;
    }
  };
  drain(&lanes_[chosen]->queue);
  for (size_t i = chosen + 1; i < lanes_.size(); ++i) {
    drain(&lanes_[i]->queue);
  }
  for (size_t i = 0; i < chosen; ++i) {
    drain(&lanes_[i]->queue);
  }
  return key;
}

}  // namespace flo
