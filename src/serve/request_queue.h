// Per-tenant admission queues with compatibility-batched popping.
//
// The serving scheduler admits every arriving request into its tenant's
// FIFO and drains the queues round-robin so no tenant starves. A pop
// returns a *batch*: the rotation tenant's head request defines a plan key
// (the planner's canonical scenario hash), and the batch gathers the
// consecutive same-key run at that tenant's head plus same-key runs at the
// other tenants' heads, up to a size cap. Requests batched together share
// one executor dispatch — and, by construction, one cached plan.
//
// Admission is integer-keyed: lanes are found by interned tenant id (one
// hash of a uint32 per request) while rotation order remains alphabetical
// by tenant name — bit-identical to the historical std::map<std::string>
// iteration, without its per-request string compares.
#ifndef SRC_SERVE_REQUEST_QUEUE_H_
#define SRC_SERVE_REQUEST_QUEUE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/serve/request_source.h"

namespace flo {

class RequestQueue {
 public:
  // Maps a spec to its plan-compatibility key (typically
  // OverlapPlanner::CanonicalKey). Keys are computed once, at admission.
  using Keyer = std::function<uint64_t(const ScenarioSpec&)>;

  // A non-empty lane's head, as seen by a LanePicker: the oldest queued
  // request's key and arrival plus the lane's identity and depth. Heads
  // are presented in lane (alphabetical tenant) order.
  struct LaneHead {
    const std::string* tenant = nullptr;
    uint32_t tenant_id = 0;
    uint64_t key = 0;
    SimTime arrival_us = 0.0;
    size_t depth = 0;
    size_t lane_index = 0;  // internal index, echoed back by the picker
  };
  // Ranks the non-empty lane heads and returns the index (into the
  // presented vector) of the lane the next batch should form around.
  // Installed by the fleet scheduler; when absent, lane choice is the
  // historical round-robin rotation.
  using LanePicker = std::function<size_t(const std::vector<LaneHead>&)>;

  explicit RequestQueue(Keyer keyer);

  // Replaces round-robin rotation with scheduler-ranked lane choice for
  // PeekKey/PopBatch/PreviewBatch. Pass nullptr to restore rotation.
  void SetLanePicker(LanePicker picker) { picker_ = std::move(picker); }

  void Admit(ServeRequest request);

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  size_t TenantDepth(const std::string& tenant) const;
  // Queued requests whose plan key is `key`, across every tenant — the
  // affinity signal fleet routers use to keep a key's requests together.
  size_t KeyDepth(uint64_t key) const;
  std::vector<std::string> Tenants() const;

  // Pops the next batch (empty only when the queue is empty). Tenant
  // rotation is deterministic: alphabetical order, resuming after the
  // previously chosen tenant. `batch_key`, when non-null, receives the
  // plan key the batch was formed around.
  std::vector<ServeRequest> PopBatch(int max_batch, uint64_t* batch_key = nullptr);

  // Allocation-reusing form: appends the batch into *out (cleared first,
  // capacity kept) and returns the batch's plan key (0 when empty) — the
  // hot-path variant ServeSession's pooled batches use.
  uint64_t PopBatchInto(int max_batch, std::vector<ServeRequest>* out);

  // The plan key the next PopBatch would batch around, without popping or
  // advancing the rotation (so a PopBatch right after returns a batch of
  // exactly this key). Requires !empty(). Lets a scheduler decide lane
  // routing before committing to the pop.
  uint64_t PeekKey() const;

  // Exactly what the next PopBatchInto(max_batch, ...) would form —
  // same key, same request count, and the batch's oldest arrival —
  // without popping. size == 0 iff the queue is empty. Backfill uses
  // this to fit-check a queue batch before committing to the pop.
  struct BatchPreview {
    uint64_t key = 0;
    uint32_t tenant_id = 0;
    size_t size = 0;
    SimTime oldest_arrival_us = 0.0;
  };
  BatchPreview PreviewBatch(int max_batch) const;

  // One preview per non-empty lane, in lane (alphabetical tenant) order:
  // the batch a pop formed around that lane's head would gather. The
  // backfill scan uses these to find warm fillers in lanes the ranked
  // pick passes over (the top lane may be cold and blocked). *out is
  // cleared first, capacity kept.
  void PreviewLanes(int max_batch, std::vector<BatchPreview>* out) const;

  // Pops the batch formed around `tenant_id`'s lane head — exactly what
  // PreviewLanes reported for that lane. Requires a non-empty lane for
  // the tenant. Returns the batch's plan key.
  uint64_t PopLaneBatchInto(uint32_t tenant_id, int max_batch,
                            std::vector<ServeRequest>* out);

  // Moves every queued request into *out (appended in lane order, FIFO
  // within a lane) and empties the queue. Deterministic: lane order is
  // alphabetical by tenant. Fault recovery uses this to evacuate a failed
  // replica's backlog for re-placement. Returns the number drained.
  size_t DrainInto(std::vector<ServeRequest>* out);

 private:
  struct Pending {
    ServeRequest request;
    uint64_t key = 0;
  };
  struct Lane {
    std::string tenant;
    uint32_t tenant_id = 0;
    std::deque<Pending> queue;
  };

  // The lane for a request's tenant, interning and creating on demand.
  Lane& LaneFor(ServeRequest* request);
  // Index of the lane whose head defines the next batch. Requires !empty().
  size_t NextLaneIndex() const;
  // The batch a pop formed around lane `chosen`'s head would gather.
  BatchPreview PreviewAt(size_t chosen, int max_batch) const;
  // Pops the batch formed around lane `chosen`'s head into *out.
  uint64_t PopAt(size_t chosen, int max_batch, std::vector<ServeRequest>* out);

  Keyer keyer_;
  LanePicker picker_;
  // Scratch for building the picker's head list without reallocating.
  mutable std::vector<LaneHead> heads_scratch_;
  // Sorted by tenant name; unique_ptr keeps Lane addresses stable across
  // the (rare) sorted insert of a new tenant.
  std::vector<std::unique_ptr<Lane>> lanes_;
  // Interned tenant id -> lane: the per-request fast path.
  std::unordered_map<uint32_t, Lane*> lanes_by_id_;
  // key -> queued request count, kept in sync by Admit/PopBatch.
  std::unordered_map<uint64_t, size_t> key_depth_;
  std::string last_tenant_;
  size_t size_ = 0;
};

}  // namespace flo

#endif  // SRC_SERVE_REQUEST_QUEUE_H_
