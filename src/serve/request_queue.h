// Per-tenant admission queues with compatibility-batched popping.
//
// The serving scheduler admits every arriving request into its tenant's
// FIFO and drains the queues round-robin so no tenant starves. A pop
// returns a *batch*: the rotation tenant's head request defines a plan key
// (the planner's canonical scenario hash), and the batch gathers the
// consecutive same-key run at that tenant's head plus same-key runs at the
// other tenants' heads, up to a size cap. Requests batched together share
// one executor dispatch — and, by construction, one cached plan.
#ifndef SRC_SERVE_REQUEST_QUEUE_H_
#define SRC_SERVE_REQUEST_QUEUE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/serve/request_source.h"

namespace flo {

class RequestQueue {
 public:
  // Maps a spec to its plan-compatibility key (typically
  // OverlapPlanner::CanonicalKey). Keys are computed once, at admission.
  using Keyer = std::function<uint64_t(const ScenarioSpec&)>;

  explicit RequestQueue(Keyer keyer);

  void Admit(ServeRequest request);

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  size_t TenantDepth(const std::string& tenant) const;
  // Queued requests whose plan key is `key`, across every tenant — the
  // affinity signal fleet routers use to keep a key's requests together.
  size_t KeyDepth(uint64_t key) const;
  std::vector<std::string> Tenants() const;

  // Pops the next batch (empty only when the queue is empty). Tenant
  // rotation is deterministic: alphabetical order, resuming after the
  // previously chosen tenant. `batch_key`, when non-null, receives the
  // plan key the batch was formed around.
  std::vector<ServeRequest> PopBatch(int max_batch, uint64_t* batch_key = nullptr);

  // The plan key the next PopBatch would batch around, without popping or
  // advancing the rotation (so a PopBatch right after returns a batch of
  // exactly this key). Requires !empty(). Lets a scheduler decide lane
  // routing before committing to the pop.
  uint64_t PeekKey() const;

 private:
  struct Pending {
    ServeRequest request;
    uint64_t key = 0;
  };

  // The tenant whose head defines the next batch. Requires !empty().
  const std::string& NextTenant() const;

  Keyer keyer_;
  // std::map keeps tenant iteration (and thus rotation) deterministic.
  std::map<std::string, std::deque<Pending>> queues_;
  // key -> queued request count, kept in sync by Admit/PopBatch.
  std::map<uint64_t, size_t> key_depth_;
  std::string last_tenant_;
  size_t size_ = 0;
};

}  // namespace flo

#endif  // SRC_SERVE_REQUEST_QUEUE_H_
