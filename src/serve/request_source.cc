#include "src/serve/request_source.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "src/models/e2e.h"
#include "src/serve/tenant_registry.h"
#include "src/util/check.h"
#include "src/util/file.h"
#include "src/util/parse.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace flo {
namespace {

double ExponentialGap(Rng* rng, double mean) {
  // NextDouble is in [0, 1), so the argument of log stays in (0, 1].
  return -mean * std::log(1.0 - rng->NextDouble());
}

// Tenant names become bare CSV fields of the trace format; a comma or
// newline would produce a file ParseTrace rejects wholesale.
void CheckTenantName(const std::string& tenant) {
  FLO_CHECK(!tenant.empty());
  FLO_CHECK(tenant.find(',') == std::string::npos && tenant.find('\n') == std::string::npos &&
            tenant[0] != '#')
      << "tenant name must be CSV-safe: " << tenant;
}

}  // namespace

ArrivalProcess::ArrivalProcess(double in_burst_mean_us, double idle_mean_us, int burst_len,
                               uint64_t seed)
    : rng_(seed),
      in_burst_mean_us_(in_burst_mean_us),
      idle_mean_us_(idle_mean_us),
      burst_len_(burst_len) {}

ArrivalProcess ArrivalProcess::Poisson(double mean_interarrival_us, uint64_t seed) {
  FLO_CHECK_GT(mean_interarrival_us, 0.0);
  // Poisson is the degenerate burst: every arrival is a burst head with
  // the plain mean gap (bit-identical to the historical generator).
  return ArrivalProcess(mean_interarrival_us, mean_interarrival_us, 1, seed);
}

ArrivalProcess ArrivalProcess::Bursty(double mean_interarrival_us, double burstiness,
                                      int burst_len, uint64_t seed) {
  FLO_CHECK_GT(mean_interarrival_us, 0.0);
  FLO_CHECK_GE(burstiness, 1.0);
  FLO_CHECK_GT(burst_len, 0);
  const double in_burst_mean = mean_interarrival_us / burstiness;
  // Per burst of `burst_len` arrivals, the expected total must stay
  // burst_len * mean: one idle gap absorbs what the burst_len - 1 short
  // gaps (plus its own slot) save.
  const double idle_mean =
      mean_interarrival_us + (burst_len - 1) * (mean_interarrival_us - in_burst_mean);
  return ArrivalProcess(in_burst_mean, idle_mean, burst_len, seed);
}

SimTime ArrivalProcess::Next() {
  const bool burst_head = index_ % burst_len_ == 0;
  ++index_;
  t_ += ExponentialGap(&rng_, burst_head ? idle_mean_us_ : in_burst_mean_us_);
  return t_;
}

std::vector<SimTime> PoissonArrivals(double mean_interarrival_us, int count, uint64_t seed) {
  FLO_CHECK_GE(count, 0);
  ArrivalProcess process = ArrivalProcess::Poisson(mean_interarrival_us, seed);
  std::vector<SimTime> arrivals;
  arrivals.reserve(count);
  for (int i = 0; i < count; ++i) {
    arrivals.push_back(process.Next());
  }
  return arrivals;
}

std::vector<SimTime> BurstyArrivals(double mean_interarrival_us, double burstiness,
                                    int burst_len, int count, uint64_t seed) {
  FLO_CHECK_GE(count, 0);
  ArrivalProcess process =
      ArrivalProcess::Bursty(mean_interarrival_us, burstiness, burst_len, seed);
  std::vector<SimTime> arrivals;
  arrivals.reserve(count);
  for (int i = 0; i < count; ++i) {
    arrivals.push_back(process.Next());
  }
  return arrivals;
}

std::vector<ScenarioSpec> WorkloadSpecs(const Workload& workload) {
  std::vector<ScenarioSpec> specs;
  for (const WorkloadOp& op : workload.ops) {
    for (int i = 0; i < op.count; ++i) {
      if (op.primitive == CommPrimitive::kAllToAll && op.imbalance > 1.0) {
        specs.push_back(ScenarioSpec::Imbalanced(
            ImbalancedShapes(op.shape, workload.cluster.gpu_count, op.imbalance),
            op.primitive));
      } else {
        specs.push_back(ScenarioSpec::Overlap(op.shape, op.primitive));
      }
    }
  }
  return specs;
}

std::vector<ServeRequest> MakeRequestStream(const std::string& tenant,
                                            const std::vector<ScenarioSpec>& specs,
                                            const std::vector<SimTime>& arrivals,
                                            int64_t first_id) {
  FLO_CHECK(!specs.empty());
  CheckTenantName(tenant);
  const uint32_t tenant_id = InternTenant(tenant);
  std::vector<ServeRequest> stream;
  stream.reserve(arrivals.size());
  for (size_t i = 0; i < arrivals.size(); ++i) {
    ServeRequest request;
    request.id = first_id + static_cast<int64_t>(i);
    request.tenant = tenant;
    request.tenant_id = tenant_id;
    request.arrival_us = arrivals[i];
    request.spec = specs[i % specs.size()];
    stream.push_back(std::move(request));
  }
  return stream;
}

std::vector<ServeRequest> MergeStreams(std::vector<std::vector<ServeRequest>> streams) {
  std::vector<ServeRequest> merged;
  for (auto& stream : streams) {
    merged.insert(merged.end(), std::make_move_iterator(stream.begin()),
                  std::make_move_iterator(stream.end()));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const ServeRequest& a, const ServeRequest& b) {
                     return a.arrival_us < b.arrival_us;
                   });
  return merged;
}

std::string SerializeTrace(const std::vector<ServeRequest>& trace) {
  std::ostringstream out;
  out << "arrival_us,tenant,kind,primitive,extra_tiles,shapes\n";
  for (const ServeRequest& request : trace) {
    CheckTenantName(request.tenant);
    // The trace format carries the declarative workload only; silently
    // dropping these fields would make the replay a different scenario.
    FLO_CHECK(!request.spec.forced_partition.has_value() && !request.spec.options.has_value())
        << "forced partitions / per-scenario options are not trace-serializable";
    // ParseTrace rejects these, so writing them would save an unloadable
    // trace: fail at save time, where the bad value originated.
    FLO_CHECK(std::isfinite(request.arrival_us) && request.arrival_us >= 0.0)
        << "arrival_us must be finite and non-negative";
    FLO_CHECK(!request.spec.shapes.empty()) << "spec has no shapes";
    // Exact round-trip, so a replayed trace reproduces the run bit for
    // bit (the same convention as the plan-store format).
    out << FormatDoubleExact(request.arrival_us) << ',' << request.tenant << ','
        << ScenarioKindName(request.spec.kind)
        << ',' << CommPrimitiveName(request.spec.primitive) << ',' << request.spec.extra_tiles
        << ',';
    for (size_t i = 0; i < request.spec.shapes.size(); ++i) {
      const GemmShape& s = request.spec.shapes[i];
      out << (i == 0 ? "" : ";") << s.m << 'x' << s.n << 'x' << s.k;
    }
    out << '\n';
  }
  return out.str();
}

namespace {

std::optional<GemmShape> ShapeFromToken(const std::string& token) {
  std::stringstream stream(token);
  std::string part;
  std::vector<int64_t> dims;
  while (std::getline(stream, part, 'x')) {
    const auto value = TryParseInt64(part);
    if (!value || *value <= 0) {
      return std::nullopt;
    }
    dims.push_back(*value);
  }
  if (dims.size() != 3) {
    return std::nullopt;
  }
  return GemmShape{dims[0], dims[1], dims[2]};
}

}  // namespace

TraceLineResult ParseTraceLine(std::string line, ServeRequest* out) {
  FLO_CHECK(out != nullptr);
  if (!line.empty() && line.back() == '\r') {
    line.pop_back();  // tolerate CRLF trace files
  }
  if (line.empty() || line[0] == '#' || line.rfind("arrival_us,", 0) == 0) {
    return TraceLineResult::kSkip;
  }
  std::stringstream fields(line);
  std::string arrival, tenant, kind, primitive, extra_tiles, shapes;
  if (!std::getline(fields, arrival, ',') || !std::getline(fields, tenant, ',') ||
      !std::getline(fields, kind, ',') || !std::getline(fields, primitive, ',') ||
      !std::getline(fields, extra_tiles, ',') || !std::getline(fields, shapes)) {
    return TraceLineResult::kError;
  }
  ServeRequest request;
  request.tenant = tenant;
  const auto parsed_arrival = TryParseDouble(arrival);
  const auto parsed_extra_tiles = TryParseInt(extra_tiles);
  if (!parsed_arrival || !parsed_extra_tiles) {
    return TraceLineResult::kError;
  }
  request.arrival_us = *parsed_arrival;
  request.spec.extra_tiles = *parsed_extra_tiles;
  // The same constraints SerializeTrace enforces, so a loaded trace
  // always re-serializes.
  if (!std::isfinite(request.arrival_us) || request.arrival_us < 0.0 ||
      request.spec.extra_tiles < 0 || tenant.empty() || tenant[0] == '#') {
    return TraceLineResult::kError;
  }
  const auto parsed_kind = TryScenarioKindFromName(kind);
  const auto parsed_primitive = TryCommPrimitiveFromName(primitive);
  if (!parsed_kind || !parsed_primitive) {
    return TraceLineResult::kError;
  }
  request.spec.kind = *parsed_kind;
  request.spec.primitive = *parsed_primitive;
  std::stringstream shape_stream(shapes);
  std::string token;
  while (std::getline(shape_stream, token, ';')) {
    const auto shape = ShapeFromToken(token);
    if (!shape) {
      return TraceLineResult::kError;
    }
    request.spec.shapes.push_back(*shape);
  }
  if (request.spec.shapes.empty()) {
    return TraceLineResult::kError;
  }
  request.tenant_id = InternTenant(request.tenant);
  *out = std::move(request);
  return TraceLineResult::kRequest;
}

std::optional<std::vector<ServeRequest>> ParseTrace(const std::string& text) {
  std::vector<ServeRequest> trace;
  std::stringstream stream(text);
  std::string line;
  int64_t next_id = 0;
  while (std::getline(stream, line)) {
    ServeRequest request;
    switch (ParseTraceLine(std::move(line), &request)) {
      case TraceLineResult::kSkip:
        break;
      case TraceLineResult::kError:
        return std::nullopt;
      case TraceLineResult::kRequest:
        request.id = next_id++;
        trace.push_back(std::move(request));
        break;
    }
  }
  return trace;
}

bool SaveTraceToFile(const std::vector<ServeRequest>& trace, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << SerializeTrace(trace);
  return static_cast<bool>(file);
}

std::optional<std::vector<ServeRequest>> LoadTraceFromFile(const std::string& path) {
  const std::optional<std::string> text = ReadFileToString(path);
  if (!text.has_value()) {
    return std::nullopt;
  }
  return ParseTrace(*text);
}

}  // namespace flo
