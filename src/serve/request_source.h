// Workload generation for the online serving simulator: request streams
// of ScenarioSpecs arriving over simulated time.
//
// Two sources, both deterministic under a fixed seed:
//  - synthetic arrival processes (Poisson and bursty on/off) zipped with
//    the per-layer ops of a src/models workload;
//  - replayable CSV traces, so a measured or hand-written request mix can
//    be served repeatedly (the serving analogue of the paper's "prepare
//    once, serve many" plan reuse).
#ifndef SRC_SERVE_REQUEST_SOURCE_H_
#define SRC_SERVE_REQUEST_SOURCE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/scenario.h"
#include "src/models/workloads.h"
#include "src/sim/event_queue.h"
#include "src/util/rng.h"

namespace flo {

struct ServeRequest {
  int64_t id = 0;
  std::string tenant;
  SimTime arrival_us = 0.0;
  ScenarioSpec spec;
  // Interned tenant id (TenantRegistry). 0 = unresolved; admission interns
  // lazily, so hand-built requests may leave it unset. Appended last so
  // positional brace initializers of the four fields above keep working.
  uint32_t tenant_id = 0;
  // Times this request was requeued off a failed replica (src/fault
  // recovery); 0 on first placement. Appended last, like tenant_id.
  int retries = 0;
};

// Streaming arrival-time generator: the pull-based form of the batch
// generators below, emitting one arrival per Next() call. Bit-identical to
// PoissonArrivals/BurstyArrivals under the same parameters and seed (those
// are now materialized through this class).
class ArrivalProcess {
 public:
  static ArrivalProcess Poisson(double mean_interarrival_us, uint64_t seed);
  static ArrivalProcess Bursty(double mean_interarrival_us, double burstiness,
                               int burst_len, uint64_t seed);

  // The next arrival time; strictly nondecreasing across calls.
  SimTime Next();

 private:
  ArrivalProcess(double in_burst_mean_us, double idle_mean_us, int burst_len,
                 uint64_t seed);

  Rng rng_;
  double in_burst_mean_us_;
  double idle_mean_us_;
  int burst_len_;
  int64_t index_ = 0;
  SimTime t_ = 0.0;
};

// Poisson process: iid exponential inter-arrivals with the given mean.
// Same seed -> identical sequence, bit for bit.
std::vector<SimTime> PoissonArrivals(double mean_interarrival_us, int count, uint64_t seed);

// Bursty on/off process: bursts of `burst_len` requests whose internal
// gaps have mean `mean_interarrival_us / burstiness`, separated by idle
// gaps stretched so the long-run mean inter-arrival time stays close to
// `mean_interarrival_us`. burstiness > 1; burstiness == 1 degenerates to
// Poisson.
std::vector<SimTime> BurstyArrivals(double mean_interarrival_us, double burstiness,
                                    int burst_len, int count, uint64_t seed);

// The workload's per-layer ops as overlap ScenarioSpecs — the request
// vocabulary of a tenant serving that model. Imbalanced All-to-All ops
// expand to per-rank shapes via ImbalancedShapes.
std::vector<ScenarioSpec> WorkloadSpecs(const Workload& workload);

// Zips arrival times with specs (cycled round-robin) into one tenant's
// request stream; ids start at `first_id`. Tenant names must be CSV-safe
// (non-empty, no comma/newline, not starting with '#') — enforced here
// and in SerializeTrace via FLO_CHECK.
std::vector<ServeRequest> MakeRequestStream(const std::string& tenant,
                                            const std::vector<ScenarioSpec>& specs,
                                            const std::vector<SimTime>& arrivals,
                                            int64_t first_id = 0);

// Merges per-tenant streams into one arrival-ordered trace (stable:
// simultaneous arrivals keep their stream order).
std::vector<ServeRequest> MergeStreams(std::vector<std::vector<ServeRequest>> streams);

// CSV trace format (one request per line, '#' comments allowed):
//   arrival_us,tenant,kind,primitive,extra_tiles,shapes
// where shapes is `m x n x k` triples joined by ';' (one per rank for
// imbalanced specs). Forced partitions and per-scenario options are not
// part of the trace — a trace carries the declarative workload only.
std::string SerializeTrace(const std::vector<ServeRequest>& trace);

// One line of the trace format, for line-at-a-time streaming parses
// (TraceFileCursor) and the whole-text ParseTrace alike. kSkip covers
// blank lines, comments, the header, and CRLF artifacts; the caller
// assigns ids.
enum class TraceLineResult { kRequest, kSkip, kError };
TraceLineResult ParseTraceLine(std::string line, ServeRequest* out);

// Returns std::nullopt on any malformed line; ids are reassigned
// sequentially in file order.
std::optional<std::vector<ServeRequest>> ParseTrace(const std::string& text);
bool SaveTraceToFile(const std::vector<ServeRequest>& trace, const std::string& path);
std::optional<std::vector<ServeRequest>> LoadTraceFromFile(const std::string& path);

}  // namespace flo

#endif  // SRC_SERVE_REQUEST_SOURCE_H_
