#include "src/serve/serve_loop.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/serve/serve_session.h"
#include "src/sim/event_queue.h"
#include "src/util/check.h"

namespace flo {

ServeLoop::ServeLoop(OverlapEngine* engine, ServeConfig config)
    : engine_(engine), config_(config) {
  FLO_CHECK(engine_ != nullptr);
}

ServeReport ServeLoop::Run(std::vector<ServeRequest> requests) {
  std::stable_sort(requests.begin(), requests.end(),
                   [](const ServeRequest& a, const ServeRequest& b) {
                     return a.arrival_us < b.arrival_us;
                   });
  // One session over a private event queue: the single-replica special
  // case of the state machine (src/cluster drives many sessions on one
  // shared queue).
  EventQueue events;
  ServeSession session(engine_, config_, &events);
  for (ServeRequest& request : requests) {
    const SimTime arrival = request.arrival_us;
    events.Push(arrival, [&session, arrival, request = std::move(request)]() mutable {
      session.Admit(std::move(request), arrival);
    });
  }
  SimTime now = 0.0;
  while (!events.empty()) {
    auto callback = events.Pop(&now);
    callback();
  }
  return session.report();
}

}  // namespace flo
