#include "src/serve/serve_loop.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "src/serve/request_queue.h"
#include "src/sim/event_queue.h"
#include "src/util/check.h"

namespace flo {
namespace {

struct Batch {
  std::vector<ServeRequest> requests;
  // The plan key the batch was formed around (from RequestQueue).
  uint64_t key = 0;
  // Routed through the cold-plan path: its requests waited on tuning.
  bool tuned = false;
};

}  // namespace

ServeLoop::ServeLoop(OverlapEngine* engine, ServeConfig config)
    : engine_(engine), config_(config) {
  FLO_CHECK(engine_ != nullptr);
  FLO_CHECK_GT(config_.max_batch, 0);
  FLO_CHECK_GE(config_.tune_base_us, 0.0);
  FLO_CHECK_GE(config_.tune_per_search_us, 0.0);
}

ServeReport ServeLoop::Run(std::vector<ServeRequest> requests) {
  std::stable_sort(requests.begin(), requests.end(),
                   [](const ServeRequest& a, const ServeRequest& b) {
                     return a.arrival_us < b.arrival_us;
                   });
  ServeReport report;
  EventQueue events;
  RequestQueue queue(
      [this](const ScenarioSpec& spec) { return engine_->planner().CanonicalKey(spec); });
  bool executor_free = true;
  const int tuner_lanes = std::max(1, config_.tuner_lanes);
  int tuners_busy = 0;
  std::deque<Batch> ready;      // tuned batches awaiting the executor
  std::deque<Batch> tune_wait;  // cold batches awaiting the tuning lane
  // Keys whose plan is in the store but whose simulated tuning has not
  // completed yet: they must not be treated as warm, or later same-key
  // batches would execute before the tuning that produced their plan.
  std::set<uint64_t> tuning_keys;
  SimTime now = 0.0;

  std::function<void()> dispatch;

  auto is_warm = [&](uint64_t key) {
    return engine_->plan_store().Contains(key) && tuning_keys.count(key) == 0;
  };

  // Batches parked in a lane are not frozen: a same-key batch joining the
  // lane coalesces into an existing one up to max_batch, so requests
  // arriving during a tuning window still get compatibility-batched.
  auto merge_or_park = [&](std::deque<Batch>* lane, Batch batch) {
    for (Batch& existing : *lane) {
      if (existing.key == batch.key &&
          existing.requests.size() + batch.requests.size() <=
              static_cast<size_t>(config_.max_batch)) {
        for (ServeRequest& request : batch.requests) {
          existing.requests.push_back(std::move(request));
        }
        return;
      }
    }
    lane->push_back(std::move(batch));
  };

  auto tune_cost_us = [this](size_t searches) {
    return config_.tune_base_us + config_.tune_per_search_us * static_cast<double>(searches);
  };

  auto finish_tuning_at = [&](Batch batch, double cost) {
    report.tuner_busy_us += cost;
    const uint64_t key = batch.key;
    events.Push(now + cost, [&, key, batch = std::move(batch)]() mutable {
      --tuners_busy;
      tuning_keys.erase(key);
      ready.push_back(std::move(batch));
      dispatch();
    });
  };

  auto start_tuning = [&](Batch batch) {
    ++tuners_busy;
    tuning_keys.insert(batch.key);
    // Build and cache the plan now; its cost lands on the tuning lane, so
    // the executor keeps serving warm batches meanwhile. By-value: against
    // a shared store, Plan()'s reference could dangle under concurrent
    // eviction by another engine.
    const size_t searches_before = engine_->tuner().search_count();
    engine_->planner().PlanByValue(batch.requests.front().spec);
    const double cost = tune_cost_us(engine_->tuner().search_count() - searches_before);
    finish_tuning_at(std::move(batch), cost);
  };

  // Multi-lane start: the distinct predictive searches behind `group` run
  // together on a real worker pool (the parallel cold-tuning lane); each
  // simulated lane is then charged the searches its own batch was missing.
  // The charge is decided before the pool runs, so the timeline is
  // deterministic regardless of worker scheduling.
  auto start_tuning_group = [&](std::vector<Batch> group) {
    std::vector<ScenarioSpec> specs;
    specs.reserve(group.size());
    for (const Batch& batch : group) {
      specs.push_back(batch.requests.front().spec);
    }
    // PretuneParallel reports which searches it claimed (first spec to
    // need one wins); each lane is charged exactly its batch's claim.
    auto claimed = engine_->PretuneParallel(specs, static_cast<int>(group.size()));
    for (size_t i = 0; i < group.size(); ++i) {
      size_t searches = 0;
      const auto request = engine_->planner().TuningRequest(specs[i]);
      if (request.has_value()) {
        const auto it = std::find(claimed.begin(), claimed.end(), *request);
        if (it != claimed.end()) {
          claimed.erase(it);
          searches = 1;
        }
      }
      ++tuners_busy;
      tuning_keys.insert(group[i].key);
      // The searches are warm now; this builds and caches the plan.
      engine_->planner().PlanByValue(specs[i]);
      finish_tuning_at(std::move(group[i]), tune_cost_us(searches));
    }
  };

  auto execute_batch = [&](Batch batch) {
    executor_free = false;
    ++report.batches;
    // Hit/miss is a property of the batch's plan at dispatch time: if the
    // plan was cold, every request of the batch waited on it — including
    // the ones whose Execute hits the entry the first request just built.
    const bool warm_at_dispatch = !batch.tuned && engine_->plan_store().Contains(batch.key);
    const size_t searches_before = engine_->tuner().search_count();
    // One canonical key means one spec, one seed, one deterministic
    // schedule: simulate once and charge the service per request.
    const OverlapRun run = engine_->Execute(batch.requests.front().spec);
    double service_us = run.total_us * static_cast<double>(batch.requests.size());
    const bool hit = warm_at_dispatch && run.plan_cache_hit;
    const bool cold = !hit;
    if (cold) {
      ++report.cold_batches;
    }
    // A plan-cache miss inside Execute means the plan was rebuilt inline
    // on the executor's critical path (overlap_tuning off, or evicted
    // after tuning/dispatch): charge the plan-build base plus any
    // searches the tuner's own cache no longer covered.
    const size_t inline_searches = engine_->tuner().search_count() - searches_before;
    if (!run.plan_cache_hit) {
      service_us += tune_cost_us(inline_searches);
    }
    report.executor_busy_us += service_us;
    const SimTime start = now;
    const SimTime finish = now + service_us;
    events.Push(finish, [&, batch = std::move(batch), hit, start, finish] {
      for (const ServeRequest& request : batch.requests) {
        RequestRecord record;
        record.id = request.id;
        record.tenant = request.tenant;
        record.arrival_us = request.arrival_us;
        record.start_us = start;
        record.finish_us = finish;
        record.plan_cache_hit = hit;
        record.batch_size = static_cast<int>(batch.requests.size());
        report.stats.Record(std::move(record));
      }
      report.makespan_us = std::max(report.makespan_us, finish);
      executor_free = true;
      dispatch();
    });
  };

  dispatch = [&]() {
    // Release batches whose key went warm (an earlier same-key batch
    // finished tuning) from the waiting room first — even while the lane
    // is busy with another key, or they would strand behind it with the
    // executor idle.
    for (auto it = tune_wait.begin(); it != tune_wait.end();) {
      if (is_warm(it->key)) {
        merge_or_park(&ready, std::move(*it));
        it = tune_wait.erase(it);
      } else {
        ++it;
      }
    }
    // Feed idle tuning lanes: gather distinct-key cold batches — from the
    // waiting room first, then straight from the queue (a cold batch at
    // the rotation head must start tuning even while the executor is busy
    // with a warm batch; that concurrency is the point of the side lane).
    // Batches gathered in one round start together so their searches share
    // the worker pool.
    std::vector<Batch> starting;
    auto key_busy = [&](uint64_t key) {
      if (tuning_keys.count(key) != 0) {
        return true;
      }
      for (const Batch& batch : starting) {
        if (batch.key == key) {
          return true;
        }
      }
      return false;
    };
    while (tuners_busy + static_cast<int>(starting.size()) < tuner_lanes) {
      bool picked = false;
      for (auto it = tune_wait.begin(); it != tune_wait.end(); ++it) {
        if (!key_busy(it->key)) {
          starting.push_back(std::move(*it));
          tune_wait.erase(it);
          picked = true;
          break;
        }
      }
      if (picked) {
        continue;
      }
      if (config_.overlap_tuning && !queue.empty() && !is_warm(queue.PeekKey()) &&
          !key_busy(queue.PeekKey())) {
        Batch batch;
        batch.requests = queue.PopBatch(config_.max_batch, &batch.key);
        batch.tuned = true;
        starting.push_back(std::move(batch));
        continue;
      }
      break;
    }
    if (starting.size() == 1) {
      start_tuning(std::move(starting.front()));
    } else if (!starting.empty()) {
      start_tuning_group(std::move(starting));
    }
    while (executor_free) {
      if (!ready.empty()) {
        Batch batch = std::move(ready.front());
        ready.pop_front();
        execute_batch(std::move(batch));
        return;
      }
      if (queue.empty()) {
        return;
      }
      Batch batch;
      batch.requests = queue.PopBatch(config_.max_batch, &batch.key);
      if (config_.overlap_tuning && !is_warm(batch.key)) {
        batch.tuned = true;  // it will wait on the cold-plan path
        if (tuners_busy < tuner_lanes && tuning_keys.count(batch.key) == 0) {
          start_tuning(std::move(batch));
        } else {
          merge_or_park(&tune_wait, std::move(batch));
        }
        continue;  // a warm batch may be waiting behind the cold one
      }
      execute_batch(std::move(batch));
    }
  };

  for (ServeRequest& request : requests) {
    const SimTime arrival = request.arrival_us;
    events.Push(arrival, [&, request = std::move(request)]() mutable {
      queue.Admit(std::move(request));
      dispatch();
    });
  }
  while (!events.empty()) {
    auto callback = events.Pop(&now);
    callback();
  }
  return report;
}

}  // namespace flo
