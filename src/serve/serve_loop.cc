#include "src/serve/serve_loop.h"

#include <utility>
#include <vector>

#include "src/serve/request_cursor.h"
#include "src/serve/serve_session.h"
#include "src/sim/event_loop.h"
#include "src/util/check.h"

namespace flo {

ServeLoop::ServeLoop(OverlapEngine* engine, ServeConfig config)
    : engine_(engine), config_(config) {
  FLO_CHECK(engine_ != nullptr);
}

ServeReport ServeLoop::Run(std::vector<ServeRequest> requests) {
  // VectorCursor stable-sorts by arrival, so the streamed admission order
  // matches the historical materialize-everything loop exactly.
  VectorCursor cursor(std::move(requests));
  return Run(&cursor);
}

ServeReport ServeLoop::Run(RequestCursor* cursor) {
  FLO_CHECK(cursor != nullptr);
  // One session over a private event loop: the single-replica special
  // case of the state machine (src/cluster drives many sessions on one
  // shared loop).
  EventLoop events(config_.legacy_event_heap);
  ServeSession session(engine_, config_, &events);
  ArrivalPump pump(cursor, &events,
                   [&session](ServeRequest request, SimTime now) {
                     session.Admit(std::move(request), now);
                   });
  events.RunToCompletion();
  ServeReport report = session.report();
  report.events = events.dispatched();
  return report;
}

}  // namespace flo
