#include "src/serve/serve_loop.h"

#include <utility>
#include <vector>

#include "src/obs/obs_plane.h"
#include "src/serve/request_cursor.h"
#include "src/serve/serve_session.h"
#include "src/sim/event_loop.h"
#include "src/util/check.h"

namespace flo {

ServeLoop::ServeLoop(OverlapEngine* engine, ServeConfig config)
    : engine_(engine), config_(config) {
  FLO_CHECK(engine_ != nullptr);
}

ServeReport ServeLoop::Run(std::vector<ServeRequest> requests) {
  // VectorCursor stable-sorts by arrival, so the streamed admission order
  // matches the historical materialize-everything loop exactly.
  VectorCursor cursor(std::move(requests));
  return Run(&cursor);
}

ServeReport ServeLoop::Run(RequestCursor* cursor) {
  FLO_CHECK(cursor != nullptr);
  // One session over a private event loop: the single-replica special
  // case of the state machine (src/cluster drives many sessions on one
  // shared loop).
  EventLoop events(config_.legacy_event_heap);
  ObsPlane* obs = config_.obs;
  const bool observing = obs != nullptr && obs->enabled();
  if (observing) {
    obs->BeginRun();
    obs->AddPoller([obs, engine = engine_](MetricsRegistry& registry) {
      engine->ExportMetrics(&registry);
      registry.Set(obs->ids().replicas_accepting, 1.0);
    });
    obs->AttachLoop(&events);
  }
  ServeSession session(engine_, config_, &events);
  ArrivalPump pump(cursor, &events,
                   [&session](ServeRequest request, SimTime now) {
                     session.Admit(std::move(request), now);
                   });
  events.RunToCompletion();
  ServeReport report = session.report();
  report.events = events.dispatched();
  if (observing) {
    obs->FinishRun(report.makespan_us);
  }
  return report;
}

}  // namespace flo
