// The online serving scheduler: drains a request trace through one shared
// ScheduleExecutor on the simulated clock.
//
// Model: one executor lane (the cluster runs one overlapped scenario at a
// time — the GEMM waves of a batch own the SM pool) plus one tuning lane.
// Arriving requests are admitted into per-tenant queues (RequestQueue);
// batches of plan-compatible requests are dispatched to the executor.
// A batch whose plan is cold is routed to the tuning lane first, so
// cold-plan tuning overlaps warm-plan execution instead of stalling it —
// the serving-side payoff of the paper's reusable-plan design. With
// overlap_tuning off, tuning happens inline on the executor lane (the
// naive baseline).
//
// Cold-plan cost on the sim clock is a plan-build base charge plus a per
// tuner search charge (measured via Tuner::search_count). Note the two
// cache layers: evicting a plan from a capacity-bounded PlanStore re-pays
// the base on the next request, but the expensive searches return only
// when the engine's own Tuner cache (unbounded, per process) is also
// cold — i.e. in a fresh serving process, which is exactly the situation
// shared stores exist to rescue.
#ifndef SRC_SERVE_SERVE_LOOP_H_
#define SRC_SERVE_SERVE_LOOP_H_

#include <cstdint>
#include <vector>

#include "src/core/overlap_engine.h"
#include "src/serve/request_source.h"
#include "src/serve/serve_stats.h"

namespace flo {

class FleetScheduler;
class ObsPlane;
class RequestCursor;

struct ServeConfig {
  // Max requests fused into one executor dispatch (they share a plan).
  int max_batch = 4;
  // Cold-plan tuning cost on the serving clock: base + per tuner search.
  // A search stands for profiling candidate GEMM configs before runtime
  // (paper Sec. 4.2.2), so it costs milliseconds, not microseconds.
  double tune_base_us = 50.0;
  double tune_per_search_us = 20000.0;
  // Tune cold plans on the side lane while warm batches keep executing.
  bool overlap_tuning = true;
  // Concurrent cold-tuning lanes. With > 1 lanes, distinct cold plan keys
  // tune in parallel: on the simulated clock each lane is busy for its own
  // batch's cost, and when several lanes start in the same dispatch round
  // the underlying predictive searches run on a real worker pool
  // (OverlapEngine::PretuneParallel) against the engine's — possibly
  // shared — PlanStore. Plans are deterministic regardless of the lane
  // count; only the timeline changes.
  int tuner_lanes = 1;
  // Adaptive lane sizing: ignore the static tuner_lanes and size the pool
  // each dispatch round from the observed cold-key pressure — the number
  // of distinct cold plan keys in flight, parked, or at the rotation head
  // — clamped to [1, max_tuner_lanes]. A cold burst widens the pool, a
  // warm steady state collapses it back to one lane. Plans stay
  // deterministic (the lane count only moves tuning cost between lanes);
  // ServeReport::tuner_lanes exposes the chosen pool size.
  bool adaptive_tuner_lanes = false;
  int max_tuner_lanes = 8;
  // Worker threads for the parallel cold-tuning pool backing a multi-lane
  // round (OverlapEngine::PretuneParallel). 0 = one worker per lane
  // starting in the round. Never affects the simulated timeline: each
  // lane's charge is decided before the pool runs.
  int tune_threads = 0;
  // Drive the run through the legacy std::function binary heap instead of
  // the typed calendar queue. Timelines are bit-identical either way; the
  // flag exists as the differential baseline sim_bench and the event-core
  // tests pin the fast path against.
  bool legacy_event_heap = false;
  // Memoize deterministic schedule replays per spec fingerprint
  // (OverlapEngine::ExecuteMemoized). Plan-store lookups, hit/miss stats,
  // and reports are unchanged; repeat specs skip the simulation itself.
  bool memoize_runs = true;
  // Observability plane (src/obs): request-lifecycle span tracing, metrics
  // checkpoints, and the flight recorder. Borrowed; must outlive the run.
  // nullptr (the default) — and a plane with ObsConfig::enabled false —
  // leave every timeline, report, and random draw bit-identical to a
  // build without observability.
  ObsPlane* obs = nullptr;
  // Fleet scheduler (src/sched): fair-share priority over the tenant
  // lanes, latency-predicted backfill into cold-tuning windows, and the
  // SLO shed decision. Borrowed; must outlive the run. nullptr (the
  // default) — and a scheduler whose SchedConfig::enabled is false —
  // leave dispatch bit-identical to the pre-sched FIFO build.
  FleetScheduler* sched = nullptr;
};

struct ServeReport {
  ServeStats stats;
  SimTime makespan_us = 0.0;
  size_t batches = 0;
  // Batches whose plan was cold when they were formed.
  size_t cold_batches = 0;
  double executor_busy_us = 0.0;
  double tuner_busy_us = 0.0;
  // Peak cold-tuning lanes put to use — the chosen lane-pool size (under
  // ServeConfig::adaptive_tuner_lanes, the pool the pressure demanded).
  int tuner_lanes = 0;
  // Events dispatched by the run's event loop (arrivals + internal).
  uint64_t events = 0;
  // Fault recovery (src/fault): cold searches that were failed by an
  // injected tuner-lane fault and re-attempted with backoff, and requests
  // served on the single-group safety plan after the retry budget ran out.
  // Both zero on fault-free runs.
  size_t tuner_retries = 0;
  size_t degraded_requests = 0;
  // Fleet scheduling (src/sched), all zero with the scheduler off:
  // warm batches backfilled into tuning windows, executor-idle
  // reservations held for a blocked head (and their total idle time),
  // backfills that overran a tuned head's start, and degraded-mode
  // requests shed over a blown SLO.
  size_t backfills = 0;
  size_t sched_reserves = 0;
  double reserve_idle_us = 0.0;
  size_t head_delays = 0;
  size_t shed_requests = 0;

  double ThroughputPerSec() const {
    return makespan_us > 0.0 ? static_cast<double>(stats.count()) / makespan_us * 1e6 : 0.0;
  }
};

class ServeLoop {
 public:
  // The engine is borrowed and must outlive the loop. Point it at a shared
  // PlanStore (OverlapEngine::UseSharedPlanStore) to serve warm from
  // another loop's tuning work.
  explicit ServeLoop(OverlapEngine* engine, ServeConfig config = {});

  // Serves the trace to completion and returns the metrics. Deterministic:
  // the same trace against the same engine state yields identical numbers.
  ServeReport Run(std::vector<ServeRequest> requests);

  // Streaming form: pulls requests from the cursor as simulated time
  // advances (one arrival in flight at a time), so memory stays
  // O(pending) instead of O(trace). The vector overload wraps this.
  ServeReport Run(RequestCursor* cursor);

  const ServeConfig& config() const { return config_; }

 private:
  OverlapEngine* engine_;
  ServeConfig config_;
};

}  // namespace flo

#endif  // SRC_SERVE_SERVE_LOOP_H_
