#include "src/serve/serve_session.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/obs/obs_plane.h"
#include "src/sched/fleet_scheduler.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace flo {

namespace {

// One observability guard per emission site: a null plane or a disabled
// one costs a single branch.
inline bool Observing(const ServeConfig& config) {
  return config.obs != nullptr && config.obs->enabled();
}

// Seeded jitter in [0, 1) for retry backoff: a pure function of (seed,
// key, attempt), so the timeline is bit-identical across reruns and
// independent of evaluation order.
double JitterFraction(uint64_t seed, uint64_t key, int attempt) {
  return Rng(StableHash().Mix(seed).Mix(key).Mix(attempt).value()).NextDouble();
}

// base * 2^(attempt-1) without std::pow (whose libm rounding is not a
// determinism bet worth making); attempts clamp at 10 doublings.
double BackoffUs(double base, int attempt) {
  double backoff = base;
  const int doublings = std::min(attempt, 10) - 1;
  for (int i = 0; i < doublings; ++i) {
    backoff *= 2.0;
  }
  return backoff;
}

}  // namespace

ServeSession::ServeSession(OverlapEngine* engine, ServeConfig config, EventLoop* events,
                           Hooks hooks, int replica_id)
    : engine_(engine),
      config_(config),
      events_(events),
      hooks_(std::move(hooks)),
      replica_id_(replica_id),
      queue_([this](const ScenarioSpec& spec) { return engine_->planner().CanonicalKey(spec); }) {
  FLO_CHECK(engine_ != nullptr);
  FLO_CHECK(events_ != nullptr);
  FLO_CHECK_GT(config_.max_batch, 0);
  FLO_CHECK_GE(config_.tune_base_us, 0.0);
  FLO_CHECK_GE(config_.tune_per_search_us, 0.0);
  FLO_CHECK_GE(config_.max_tuner_lanes, 1);
  tuning_handler_ = events_->RegisterHandler(
      [this](const EventRecord& record, SimTime now) { OnTuningFinished(record, now); });
  finish_handler_ = events_->RegisterHandler(
      [this](const EventRecord& record, SimTime now) { OnBatchFinished(record, now); });
  retry_handler_ = events_->RegisterHandler(
      [this](const EventRecord&, SimTime now) { Dispatch(now); });
  if (config_.sched != nullptr && config_.sched->enabled()) {
    sched_ = config_.sched;
    // Scheduler-ranked lane choice replaces round-robin rotation; the
    // queue is clockless, so the picker reads the dispatch round's time
    // from sched_now_.
    queue_.SetLanePicker([this](const std::vector<RequestQueue::LaneHead>& heads) {
      return sched_->PickLane(heads, sched_now_);
    });
  }
}

void ServeSession::Admit(ServeRequest request, SimTime now) {
  ++pending_requests_;
  queue_.Admit(std::move(request));
  Dispatch(now);
}

bool ServeSession::idle() const {
  return queue_.empty() && ready_.empty() && tune_wait_.empty() && tuners_busy_ == 0 &&
         executor_free_;
}

size_t ServeSession::PendingKeyCount(uint64_t key) const {
  size_t pending = queue_.KeyDepth(key);
  for (const uint32_t s : ready_) {
    if (batch_pool_[s].key == key) {
      pending += batch_pool_[s].requests.size();
    }
  }
  for (const uint32_t s : tune_wait_) {
    if (batch_pool_[s].key == key) {
      pending += batch_pool_[s].requests.size();
    }
  }
  return pending;
}

uint32_t ServeSession::AcquireSlot() {
  if (!free_slots_.empty()) {
    const uint32_t s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  batch_pool_.emplace_back();
  return static_cast<uint32_t>(batch_pool_.size() - 1);
}

void ServeSession::ReleaseSlot(uint32_t slot) {
  Batch& batch = batch_pool_[slot];
  batch.requests.clear();  // keeps capacity: the pooling that matters
  batch.key = 0;
  batch.tuned = false;
  batch.exec_start = 0.0;
  batch.exec_hit = false;
  batch.cancelled = false;
  batch.degraded = false;
  batch.tune_failed = false;
  batch.tune_retries = 0;
  batch.not_before_us = 0.0;
  batch.charged_searches = 0;
  batch.tenant_id = 0;
  batch.oldest_arrival_us = 0.0;
  batch.tune_eta_us = 0.0;
  batch.backfilled = false;
  free_slots_.push_back(slot);
}

bool ServeSession::IsWarm(uint64_t key) const {
  return engine_->plan_store().Contains(key) && tuning_keys_.count(key) == 0;
}

uint64_t ServeSession::PopQueueBatch(uint32_t batch_slot) {
  Batch& batch = batch_pool_[batch_slot];
  batch.key = queue_.PopBatchInto(config_.max_batch, &batch.requests);
  batch.tenant_id = batch.requests.front().tenant_id;
  batch.oldest_arrival_us = batch.requests.front().arrival_us;
  for (const ServeRequest& request : batch.requests) {
    if (request.arrival_us < batch.oldest_arrival_us) {
      batch.oldest_arrival_us = request.arrival_us;
    }
  }
  return batch.key;
}

uint64_t ServeSession::PopQueueLaneBatch(uint32_t batch_slot, uint32_t tenant_id) {
  Batch& batch = batch_pool_[batch_slot];
  batch.key = queue_.PopLaneBatchInto(tenant_id, config_.max_batch, &batch.requests);
  batch.tenant_id = batch.requests.front().tenant_id;
  batch.oldest_arrival_us = batch.requests.front().arrival_us;
  for (const ServeRequest& request : batch.requests) {
    if (request.arrival_us < batch.oldest_arrival_us) {
      batch.oldest_arrival_us = request.arrival_us;
    }
  }
  return batch.key;
}

double ServeSession::PredictedServiceUs(const Batch& batch) const {
  if (batch.degraded) {
    // The safety plan's cost has no stored estimate; never backfill it.
    return std::numeric_limits<double>::infinity();
  }
  const auto predicted = engine_->plan_store().PeekPredictedUs(batch.key);
  if (!predicted.has_value()) {
    return std::numeric_limits<double>::infinity();
  }
  return *predicted * static_cast<double>(batch.requests.size()) * cost_multiplier_;
}

int ServeSession::TunerLaneTarget() const {
  if (!config_.adaptive_tuner_lanes) {
    return std::max(1, config_.tuner_lanes);
  }
  std::set<uint64_t> demand(tuning_keys_.begin(), tuning_keys_.end());
  for (const uint32_t s : tune_wait_) {
    demand.insert(batch_pool_[s].key);
  }
  if (!queue_.empty()) {
    const uint64_t head = queue_.PeekKey();
    if (!IsWarm(head)) {
      demand.insert(head);
    }
  }
  return std::clamp(static_cast<int>(demand.size()), 1, config_.max_tuner_lanes);
}

// Batches parked in a lane are not frozen: a same-key batch joining the
// lane coalesces into an existing one up to max_batch, so requests
// arriving during a tuning window still get compatibility-batched.
void ServeSession::MergeOrPark(Lane* lane, uint32_t batch_slot) {
  Batch& incoming = batch_pool_[batch_slot];
  for (const uint32_t s : *lane) {
    Batch& existing = batch_pool_[s];
    if (existing.key == incoming.key &&
        existing.requests.size() + incoming.requests.size() <=
            static_cast<size_t>(config_.max_batch)) {
      for (ServeRequest& request : incoming.requests) {
        existing.requests.push_back(std::move(request));
      }
      // Priority metadata follows the merged requests: the coalesced
      // batch is as old as its oldest member.
      if (incoming.oldest_arrival_us < existing.oldest_arrival_us) {
        existing.oldest_arrival_us = incoming.oldest_arrival_us;
      }
      ReleaseSlot(batch_slot);
      return;
    }
  }
  lane->push_back(batch_slot);
}

double ServeSession::TuneCostUs(size_t searches) const {
  return config_.tune_base_us + config_.tune_per_search_us * static_cast<double>(searches);
}

void ServeSession::FinishTuningAt(uint32_t batch_slot, double cost, size_t searches,
                                  SimTime now) {
  report_.tuner_busy_us += cost;
  Batch& batch = batch_pool_[batch_slot];
  batch.tune_eta_us = now + cost;  // the backfill window's far edge
  tuning_requests_ += batch.requests.size();
  // Remember the charge so a retry after an injected abort re-pays it
  // even though the tuner's own cache is warm by then.
  batch.charged_searches = std::max(batch.charged_searches, searches);
  tuning_slots_.push_back(batch_slot);
  if (Observing(config_)) {
    SpanRecord span;
    span.kind = SpanKind::kTune;
    span.start_us = now;
    span.end_us = now + cost;
    span.id = batch.key;
    span.arg = searches;
    span.replica = replica_id_;
    config_.obs->Emit(span);
    if (searches > 0) {
      // The predictive searches behind this tune, as a planner-internal
      // instant at the moment they were charged.
      span.kind = SpanKind::kBnbSearch;
      span.end_us = now;
      config_.obs->Emit(span);
    }
  }
  EventRecord record;
  record.type = EventType::kTuningFinished;
  record.key = batch.key;
  record.handler = tuning_handler_;
  record.slot = batch_slot;
  record.replica = replica_id_;
  events_->Push(now + cost, record);
}

void ServeSession::OnTuningFinished(const EventRecord& record, SimTime now) {
  const uint32_t batch_slot = record.slot;
  const uint64_t key = record.key;
  FLO_CHECK_EQ(batch_pool_[batch_slot].key, key);
  --tuners_busy_;
  tuning_slots_.erase(std::find(tuning_slots_.begin(), tuning_slots_.end(), batch_slot));
  if (batch_pool_[batch_slot].cancelled) {
    // The batch was evacuated (replica crash): its requests are gone and
    // the extraction already settled tuning_keys_/tuning_requests_. The
    // stale finish event just returns the slot.
    ReleaseSlot(batch_slot);
    Dispatch(now);
    return;
  }
  if (batch_pool_[batch_slot].tune_failed) {
    AbortTuning(batch_slot, key, now);
    return;
  }
  tuning_keys_.erase(key);
  tuning_requests_ -= batch_pool_[batch_slot].requests.size();
  // Backfill audit: a lower-priority batch slotted into this batch's
  // tuning window must be off the executor by the time the tune
  // completes. Equal-time events dispatch the tune finish before the
  // batch finish (FIFO seq order), so busy_until_ == now counts as an
  // exact fit, not a delay.
  if (sched_ != nullptr && executing_slot_ >= 0) {
    const Batch& running = batch_pool_[static_cast<uint32_t>(executing_slot_)];
    const Batch& tuned = batch_pool_[batch_slot];
    if (running.backfilled && busy_until_ > now &&
        FleetScheduler::Before(
            sched_->KeyFor(tuned.tenant_id, tuned.oldest_arrival_us, now),
            sched_->KeyFor(running.tenant_id, running.oldest_arrival_us, now))) {
      ++report_.head_delays;
    }
  }
  // Copied out: Dispatch below may execute and recycle the slot.
  const ScenarioSpec spec = batch_pool_[batch_slot].requests.front().spec;
  ready_.push_back(batch_slot);
  Dispatch(now);
  if (hooks_.tuning_finished) {
    hooks_.tuning_finished(key, spec, now);
  }
}

void ServeSession::AbortTuning(uint32_t batch_slot, uint64_t key, SimTime now) {
  Batch& batch = batch_pool_[batch_slot];
  tuning_keys_.erase(key);
  tuning_requests_ -= batch.requests.size();
  batch.tune_failed = false;
  ++batch.tune_retries;
  // Discard the poisoned plan so the key reads cold again; the tuner's
  // own cache keeps its references valid, and charged_searches re-pays
  // the simulated cost on the retry.
  engine_->plan_store().Erase(key);
  if (batch.tune_retries > fault_policy_.tuner_retry_budget) {
    // Budget exhausted: the batch is bound for the single-group safety
    // plan. SLO-aware shed first (SchedConfig::slo_shed): requests of
    // tenants whose p99 is already blown are dropped rather than served
    // degraded — slow safety-plan work can no longer rescue their SLO
    // and only queues more delay behind it.
    if (sched_ != nullptr && sched_->config().slo_shed) {
      size_t kept = 0;
      for (ServeRequest& request : batch.requests) {
        if (sched_->TenantSloBlown(request.tenant_id)) {
          ++report_.shed_requests;
          FLO_CHECK_GT(pending_requests_, 0u);
          --pending_requests_;
          if (Observing(config_)) {
            SpanRecord span;
            span.kind = SpanKind::kSchedShed;
            span.start_us = now;
            span.end_us = now;
            span.id = static_cast<uint64_t>(request.id);
            span.tenant = request.tenant_id;
            span.replica = replica_id_;
            config_.obs->Emit(span);
          }
          if (hooks_.request_shed) {
            hooks_.request_shed(request, now);
          }
        } else {
          batch.requests[kept++] = std::move(request);
        }
      }
      batch.requests.resize(kept);
    }
    if (batch.requests.empty()) {
      // Every request shed: nothing left to serve degraded.
      ReleaseSlot(batch_slot);
      if (hooks_.tuning_aborted) {
        hooks_.tuning_aborted(key, now);
      }
      Dispatch(now);
      return;
    }
    batch.degraded = true;
    if (Observing(config_)) {
      SpanRecord span;
      span.kind = SpanKind::kFaultDegraded;
      span.start_us = now;
      span.end_us = now;
      span.id = key;
      span.arg = batch.requests.size();
      span.replica = replica_id_;
      config_.obs->Emit(span);
    }
    ready_.push_back(batch_slot);
  } else {
    ++report_.tuner_retries;
    const double backoff =
        BackoffUs(fault_policy_.retry_backoff_base_us, batch.tune_retries) +
        fault_policy_.retry_backoff_jitter_us *
            JitterFraction(fault_policy_.seed, key, batch.tune_retries);
    batch.not_before_us = now + backoff;
    // Plain park (merging into a same-key waiter would lose the retry
    // state); the kick re-runs Dispatch at expiry.
    tune_wait_.push_back(batch_slot);
    EventRecord kick;
    kick.type = EventType::kRetryKick;
    kick.key = key;
    kick.handler = retry_handler_;
    kick.slot = batch_slot;
    kick.replica = replica_id_;
    events_->Push(batch.not_before_us, kick);
  }
  if (hooks_.tuning_aborted) {
    hooks_.tuning_aborted(key, now);
  }
  Dispatch(now);
}

size_t ServeSession::FailInFlightTuning() {
  size_t failed = 0;
  for (const uint32_t s : tuning_slots_) {
    Batch& batch = batch_pool_[s];
    if (!batch.cancelled && !batch.tune_failed) {
      batch.tune_failed = true;
      ++failed;
    }
  }
  return failed;
}

size_t ServeSession::ExtractPending(std::vector<ServeRequest>* out) {
  FLO_CHECK(out != nullptr);
  size_t extracted = 0;
  auto evacuate = [&](uint32_t s, bool counted_pending) {
    Batch& batch = batch_pool_[s];
    for (ServeRequest& request : batch.requests) {
      out->push_back(std::move(request));
      ++extracted;
      if (counted_pending) {
        FLO_CHECK_GT(pending_requests_, 0u);
        --pending_requests_;
      }
    }
    batch.requests.clear();
  };
  // Executor: the batch keeps running as a cancelled no-op (its service
  // time already elapsed on this replica's clock); its requests restart
  // elsewhere. ExecuteBatch already took them out of pending_requests_.
  if (executing_slot_ >= 0) {
    Batch& batch = batch_pool_[static_cast<uint32_t>(executing_slot_)];
    batch.cancelled = true;
    evacuate(static_cast<uint32_t>(executing_slot_), /*counted_pending=*/false);
  }
  // Ready and parked batches: their slots free immediately.
  for (const uint32_t s : ready_) {
    evacuate(s, /*counted_pending=*/true);
    ReleaseSlot(s);
  }
  ready_.clear();
  for (const uint32_t s : tune_wait_) {
    evacuate(s, /*counted_pending=*/true);
    ReleaseSlot(s);
  }
  tune_wait_.clear();
  // Tuning slots: the search is cancelled but the finish event still
  // holds the slot — it releases when the stale event fires.
  for (const uint32_t s : tuning_slots_) {
    Batch& batch = batch_pool_[s];
    if (batch.cancelled) {
      continue;  // already evacuated by an earlier crash
    }
    tuning_requests_ -= batch.requests.size();
    tuning_keys_.erase(batch.key);
    batch.cancelled = true;
    evacuate(s, /*counted_pending=*/true);
  }
  // Admission queue last: lane order, FIFO within a lane.
  const size_t drained = queue_.DrainInto(out);
  FLO_CHECK_GE(pending_requests_, drained);
  pending_requests_ -= drained;
  extracted += drained;
  return extracted;
}

size_t ServeSession::ExtractQueued(std::vector<ServeRequest>* out) {
  FLO_CHECK(out != nullptr);
  const size_t drained = queue_.DrainInto(out);
  FLO_CHECK_GE(pending_requests_, drained);
  pending_requests_ -= drained;
  return drained;
}

SimTime ServeSession::TuningEtaFor(uint64_t key) const {
  SimTime eta = -1.0;
  for (const uint32_t s : tuning_slots_) {
    const Batch& batch = batch_pool_[s];
    if (batch.key == key && !batch.cancelled &&
        (eta < 0.0 || batch.tune_eta_us < eta)) {
      eta = batch.tune_eta_us;
    }
  }
  return eta;
}

void ServeSession::StartTuning(uint32_t batch_slot, SimTime now) {
  ++tuners_busy_;
  tuning_keys_.insert(batch_pool_[batch_slot].key);
  // Build and cache the plan now; its cost lands on the tuning lane, so
  // the executor keeps serving warm batches meanwhile. By-value: against
  // a shared store, Plan()'s reference could dangle under concurrent
  // eviction by another engine.
  const size_t searches_before = engine_->tuner().search_count();
  engine_->planner().PlanByValue(batch_pool_[batch_slot].requests.front().spec);
  const size_t searches = std::max(engine_->tuner().search_count() - searches_before,
                                   batch_pool_[batch_slot].charged_searches);
  FinishTuningAt(batch_slot, TuneCostUs(searches), searches, now);
}

// Multi-lane start: the distinct predictive searches behind `group` run
// together on a real worker pool (the parallel cold-tuning lane); each
// simulated lane is then charged the searches its own batch was missing.
// The charge is decided before the pool runs, so the timeline is
// deterministic regardless of worker scheduling.
void ServeSession::StartTuningGroup(std::vector<uint32_t> group, SimTime now) {
  std::vector<ScenarioSpec> specs;
  specs.reserve(group.size());
  for (const uint32_t s : group) {
    specs.push_back(batch_pool_[s].requests.front().spec);
  }
  // PretuneParallel reports which searches it claimed (first spec to
  // need one wins); each lane is charged exactly its batch's claim.
  const int threads = config_.tune_threads > 0 ? config_.tune_threads
                                               : static_cast<int>(group.size());
  auto claimed = engine_->PretuneParallel(specs, threads);
  for (size_t i = 0; i < group.size(); ++i) {
    size_t searches = 0;
    const auto request = engine_->planner().TuningRequest(specs[i]);
    if (request.has_value()) {
      const auto it = std::find(claimed.begin(), claimed.end(), *request);
      if (it != claimed.end()) {
        claimed.erase(it);
        searches = 1;
      }
    }
    searches = std::max(searches, batch_pool_[group[i]].charged_searches);
    ++tuners_busy_;
    tuning_keys_.insert(batch_pool_[group[i]].key);
    // The searches are warm now; this builds and caches the plan.
    engine_->planner().PlanByValue(specs[i]);
    FinishTuningAt(group[i], TuneCostUs(searches), searches, now);
  }
}

void ServeSession::ExecuteBatch(uint32_t batch_slot, SimTime now) {
  Batch& batch = batch_pool_[batch_slot];
  if (sched_ != nullptr) {
    EndReservation(now);  // the executor is running again
  }
  executor_free_ = false;
  executing_slot_ = batch_slot;
  ++report_.batches;
  pending_requests_ -= batch.requests.size();
  // Hit/miss is a property of the batch's plan at dispatch time: if the
  // plan was cold, every request of the batch waited on it — including
  // the ones whose Execute hits the entry the first request just built.
  const bool warm_at_dispatch = !batch.tuned && engine_->plan_store().Contains(batch.key);
  const size_t searches_before = engine_->tuner().search_count();
  // A degraded batch (tuner retry budget exhausted) runs the search-free
  // single-group safety plan: forced partition, no extra tiles — slower,
  // but it needs no tuning. The forced spec has its own canonical
  // fingerprint, so the memo and plan store never confuse it with the
  // real plan.
  ScenarioSpec spec = batch.requests.front().spec;
  if (batch.degraded) {
    spec.extra_tiles = 0;
    spec.forced_partition = WavePartition::SingleGroup(1);
  }
  // One canonical key means one spec, one seed, one deterministic
  // schedule: simulate once and charge the service per request. Fleet
  // runs replay the same spec thousands of times, so the deterministic
  // replay itself is memoized (the store lookup still happens per call).
  const OverlapRun run =
      config_.memoize_runs ? engine_->ExecuteMemoized(spec) : engine_->Execute(spec);
  double service_us = run.total_us * static_cast<double>(batch.requests.size());
  const bool hit = warm_at_dispatch && run.plan_cache_hit;
  const bool cold = !hit;
  if (cold) {
    ++report_.cold_batches;
  }
  // A plan-cache miss inside Execute means the plan was rebuilt inline
  // on the executor's critical path (overlap_tuning off, or evicted
  // after tuning/dispatch): charge the plan-build base plus any
  // searches the tuner's own cache no longer covered.
  const size_t inline_searches = engine_->tuner().search_count() - searches_before;
  if (!run.plan_cache_hit) {
    service_us += TuneCostUs(inline_searches);
  }
  if (cost_multiplier_ != 1.0) {
    service_us *= cost_multiplier_;  // straggler injection (src/fault)
  }
  if (sched_ != nullptr) {
    // Fair share charges served predicted-cost per request at dispatch,
    // on the shared fleet-wide scheduler.
    for (const ServeRequest& request : batch.requests) {
      sched_->Charge(request.tenant_id, run.total_us, now);
    }
  }
  report_.executor_busy_us += service_us;
  const SimTime finish = now + service_us;
  busy_until_ = finish;
  batch.exec_start = now;
  batch.exec_hit = hit;
  if (Observing(config_)) {
    // Plan-store outcome at dispatch time, as an instant on this replica.
    SpanRecord span;
    span.kind = hit ? SpanKind::kPlanHit : SpanKind::kPlanMiss;
    span.start_us = now;
    span.end_us = now;
    span.id = batch.key;
    span.arg = batch.requests.size();
    span.replica = replica_id_;
    span.flags = hit ? 1 : 0;
    config_.obs->Emit(span);
  }
  EventRecord record;
  record.type = EventType::kBatchFinished;
  record.key = batch.key;
  record.handler = finish_handler_;
  record.slot = batch_slot;
  record.replica = replica_id_;
  events_->Push(finish, record);
}

void ServeSession::OnBatchFinished(const EventRecord& record, SimTime now) {
  const uint32_t batch_slot = record.slot;
  Batch& batch = batch_pool_[batch_slot];
  executing_slot_ = -1;
  if (batch.cancelled) {
    // The replica crashed mid-batch: its requests were evacuated and will
    // complete elsewhere. No stats, no spans, no hooks — just free the
    // lane.
    ReleaseSlot(batch_slot);
    executor_free_ = true;
    Dispatch(now);
    return;
  }
  const SimTime start = batch.exec_start;
  const SimTime finish = now;
  const bool hit = batch.exec_hit;
  const int batch_size = static_cast<int>(batch.requests.size());
  if (Observing(config_)) {
    ObsPlane& obs = *config_.obs;
    SpanRecord span;
    span.replica = replica_id_;
    span.flags = hit ? 1 : 0;
    span.kind = SpanKind::kExecute;
    span.start_us = start;
    span.end_us = finish;
    span.id = batch.key;
    span.arg = batch.requests.size();
    obs.Emit(span);
    // Per-request lifecycle spans: the request's full arrival->completion
    // interval, then its queueing prefix (same id, so the trace viewer
    // nests queue inside request).
    span.arg = static_cast<uint64_t>(batch_size);
    for (const ServeRequest& request : batch.requests) {
      span.id = static_cast<uint64_t>(request.id);
      span.tenant = request.tenant_id;
      span.kind = SpanKind::kRequest;
      span.start_us = request.arrival_us;
      span.end_us = finish;
      obs.Emit(span);
      span.kind = SpanKind::kQueue;
      span.end_us = start;
      obs.Emit(span);
    }
  }
  finished_scratch_.clear();
  for (ServeRequest& request : batch.requests) {
    if (sched_ != nullptr) {
      // Completed-latency feed for the SLO shed decision.
      sched_->ObserveLatency(request.tenant_id, finish - request.arrival_us);
    }
    RequestRecord finished;
    finished.id = request.id;
    finished.tenant = std::move(request.tenant);
    finished.tenant_id = request.tenant_id;
    finished.arrival_us = request.arrival_us;
    finished.start_us = start;
    finished.finish_us = finish;
    finished.plan_cache_hit = hit;
    finished.batch_size = batch_size;
    finished.retries = request.retries;
    finished.degraded = batch.degraded;
    if (hooks_.request_finished) {
      finished_scratch_.push_back(finished);
    }
    report_.stats.Record(std::move(finished));
  }
  if (batch.degraded) {
    report_.degraded_requests += batch.requests.size();
  }
  report_.makespan_us = std::max(report_.makespan_us, finish);
  ReleaseSlot(batch_slot);
  executor_free_ = true;
  Dispatch(now);
  // finished_scratch_ is only written above; Dispatch and the hooks never
  // touch it (OnBatchFinished cannot re-enter — one executor event in
  // flight at a time).
  for (const RequestRecord& finished : finished_scratch_) {
    hooks_.request_finished(finished, now);
  }
}

void ServeSession::Dispatch(SimTime now) {
  if (stalled_) {
    return;  // crashed or hung replica: nothing starts until restored
  }
  sched_now_ = now;  // the lane picker's clock for this round
  // Release batches whose key went warm (an earlier same-key batch
  // finished tuning, or a peer shipped the plan into the store) from the
  // waiting room first — even while the lane is busy with another key, or
  // they would strand behind it with the executor idle.
  for (size_t i = 0; i < tune_wait_.size();) {
    const uint32_t s = tune_wait_[i];
    if (IsWarm(batch_pool_[s].key)) {
      tune_wait_.erase(tune_wait_.begin() + static_cast<Lane::difference_type>(i));
      MergeOrPark(&ready_, s);
    } else {
      ++i;
    }
  }
  // Feed idle tuning lanes: gather distinct-key cold batches — from the
  // waiting room first, then straight from the queue (a cold batch at
  // the rotation head must start tuning even while the executor is busy
  // with a warm batch; that concurrency is the point of the side lane).
  // Batches gathered in one round start together so their searches share
  // the worker pool.
  const int tuner_lanes = TunerLaneTarget();
  std::vector<uint32_t> starting;
  // Keys the fleet vetoed this round (a peer owns the in-flight search);
  // their batches park until the shipped plan turns the key warm.
  std::set<uint64_t> vetoed;
  auto key_busy = [&](uint64_t key) {
    if (tuning_keys_.count(key) != 0) {
      return true;
    }
    for (const uint32_t s : starting) {
      if (batch_pool_[s].key == key) {
        return true;
      }
    }
    return false;
  };
  auto acquire = [&](uint64_t key) {
    if (!hooks_.acquire_tuning || hooks_.acquire_tuning(key)) {
      return true;
    }
    vetoed.insert(key);
    return false;
  };
  while (tuners_busy_ + static_cast<int>(starting.size()) < tuner_lanes) {
    bool picked = false;
    for (size_t i = 0; i < tune_wait_.size(); ++i) {
      const uint64_t key = batch_pool_[tune_wait_[i]].key;
      if (batch_pool_[tune_wait_[i]].not_before_us > now) {
        continue;  // retry backoff still running (src/fault)
      }
      if (!key_busy(key) && vetoed.count(key) == 0 && acquire(key)) {
        starting.push_back(tune_wait_[i]);
        tune_wait_.erase(tune_wait_.begin() + static_cast<Lane::difference_type>(i));
        picked = true;
        break;
      }
    }
    if (picked) {
      continue;
    }
    if (config_.overlap_tuning && !queue_.empty() && !IsWarm(queue_.PeekKey()) &&
        !key_busy(queue_.PeekKey()) && vetoed.count(queue_.PeekKey()) == 0) {
      if (acquire(queue_.PeekKey())) {
        const uint32_t s = AcquireSlot();
        PopQueueBatch(s);
        batch_pool_[s].tuned = true;
        starting.push_back(s);
        continue;
      }
      // Vetoed head: move it off the queue so warm work behind it keeps
      // flowing; it waits for the peer's plan like any parked cold batch.
      const uint32_t s = AcquireSlot();
      PopQueueBatch(s);
      batch_pool_[s].tuned = true;
      MergeOrPark(&tune_wait_, s);
      continue;
    }
    break;
  }
  // The chosen lane-pool size, for ServeReport: the lanes this round put
  // to use (adaptive mode grows it with cold-key pressure).
  report_.tuner_lanes =
      std::max(report_.tuner_lanes, tuners_busy_ + static_cast<int>(starting.size()));
  if (starting.size() == 1) {
    StartTuning(starting.front(), now);
  } else if (!starting.empty()) {
    StartTuningGroup(std::move(starting), now);
  }
  if (sched_ != nullptr) {
    DispatchExecutorSched(now, tuner_lanes, &vetoed);
    return;
  }
  while (executor_free_) {
    if (!ready_.empty()) {
      const uint32_t s = ready_.front();
      ready_.pop_front();
      ExecuteBatch(s, now);
      return;
    }
    if (queue_.empty()) {
      return;
    }
    const uint32_t s = AcquireSlot();
    PopQueueBatch(s);
    if (config_.overlap_tuning && !IsWarm(batch_pool_[s].key)) {
      batch_pool_[s].tuned = true;  // it will wait on the cold-plan path
      if (tuners_busy_ < tuner_lanes && tuning_keys_.count(batch_pool_[s].key) == 0 &&
          vetoed.count(batch_pool_[s].key) == 0 && acquire(batch_pool_[s].key)) {
        StartTuning(s, now);
      } else {
        MergeOrPark(&tune_wait_, s);
      }
      continue;  // a warm batch may be waiting behind the cold one
    }
    ExecuteBatch(s, now);
  }
}

// The scheduler-ordered executor stage. Candidate units, each carrying a
// priority key:
//   ready batches        — can run immediately;
//   the queue's preview  — what the next pop would form (warm or cold);
//   tuning-lane batches  — blocked until their tune's ETA.
// The highest-priority unit wins (ties: ready, then queue, then tuning,
// then scan order — all deterministic). A winning tuning batch cannot
// run, so the window until its ETA is backfilled with the best
// lower-priority warm batch that provably fits (predicted service x
// slack, against the ETA of every tuning batch that outranks the
// candidate — the head job is never delayed); when nothing fits, the
// executor idles reserved.
void ServeSession::DispatchExecutorSched(SimTime now, int tuner_lanes,
                                         std::set<uint64_t>* vetoed) {
  auto acquire = [&](uint64_t key) {
    if (!hooks_.acquire_tuning || hooks_.acquire_tuning(key)) {
      return true;
    }
    vetoed->insert(key);
    return false;
  };
  while (executor_free_) {
    // Class 0 = ready, 1 = queue preview, 2 = blocked on tuning.
    int best_class = -1;
    size_t best_index = 0;
    FleetScheduler::Priority best_priority;
    auto offer = [&](int cls, size_t index, const FleetScheduler::Priority& priority) {
      if (best_class == -1 || FleetScheduler::Before(priority, best_priority)) {
        best_class = cls;
        best_index = index;
        best_priority = priority;
      }
    };
    for (size_t i = 0; i < ready_.size(); ++i) {
      const Batch& batch = batch_pool_[ready_[i]];
      offer(0, i, sched_->KeyFor(batch.tenant_id, batch.oldest_arrival_us, now));
    }
    RequestQueue::BatchPreview preview;
    if (!queue_.empty()) {
      preview = queue_.PreviewBatch(config_.max_batch);
      offer(1, 0, sched_->KeyFor(preview.tenant_id, preview.oldest_arrival_us, now));
    }
    for (size_t i = 0; i < tuning_slots_.size(); ++i) {
      const Batch& batch = batch_pool_[tuning_slots_[i]];
      if (batch.cancelled || batch.tune_failed) {
        continue;  // will never reach ready
      }
      offer(2, i, sched_->KeyFor(batch.tenant_id, batch.oldest_arrival_us, now));
    }
    if (best_class == -1) {
      return;  // nothing runnable or pending a known ETA
    }
    if (best_class == 0) {
      const uint32_t s = ready_[best_index];
      ready_.erase(ready_.begin() + static_cast<Lane::difference_type>(best_index));
      ExecuteBatch(s, now);
      return;
    }
    if (best_class == 1) {
      const uint32_t s = AcquireSlot();
      PopQueueBatch(s);
      if (config_.overlap_tuning && !IsWarm(batch_pool_[s].key)) {
        batch_pool_[s].tuned = true;
        if (tuners_busy_ < tuner_lanes && tuning_keys_.count(batch_pool_[s].key) == 0 &&
            vetoed->count(batch_pool_[s].key) == 0 && acquire(batch_pool_[s].key)) {
          StartTuning(s, now);
        } else {
          MergeOrPark(&tune_wait_, s);
        }
        continue;  // re-rank: the next-best unit may run meanwhile
      }
      ExecuteBatch(s, now);
      return;
    }
    // The head of the line is blocked on tuning: backfill its window or
    // hold the executor for it. A candidate fits only against the
    // earliest ETA among tuning batches that outrank it, so no tuned
    // batch — this one or a later-finishing higher-priority one — is
    // ever delayed by the backfill.
    const Batch& blocked = batch_pool_[tuning_slots_[best_index]];
    auto window_for = [&](const FleetScheduler::Priority& candidate) {
      double window = std::numeric_limits<double>::infinity();
      for (const uint32_t s : tuning_slots_) {
        const Batch& tuning = batch_pool_[s];
        if (tuning.cancelled || tuning.tune_failed) {
          continue;
        }
        const FleetScheduler::Priority priority =
            sched_->KeyFor(tuning.tenant_id, tuning.oldest_arrival_us, now);
        if (FleetScheduler::Before(priority, candidate) &&
            tuning.tune_eta_us - now < window) {
          window = tuning.tune_eta_us - now;
        }
      }
      return window;
    };
    int fill_class = -1;
    size_t fill_index = 0;
    uint32_t fill_tenant = 0;
    FleetScheduler::Priority fill_priority;
    if (sched_->config().backfill) {
      for (size_t i = 0; i < ready_.size(); ++i) {
        const Batch& batch = batch_pool_[ready_[i]];
        const FleetScheduler::Priority priority =
            sched_->KeyFor(batch.tenant_id, batch.oldest_arrival_us, now);
        if (!sched_->BackfillFits(PredictedServiceUs(batch), window_for(priority))) {
          continue;
        }
        if (fill_class == -1 || FleetScheduler::Before(priority, fill_priority)) {
          fill_class = 0;
          fill_index = i;
          fill_priority = priority;
        }
      }
      // Every lane's head batch is a filler candidate, not just the
      // ranked pick's: the top lane is often the blocked tenant's own
      // (cold, unpoppable), while warm work waits in lanes it outranks.
      queue_.PreviewLanes(config_.max_batch, &lane_previews_);
      for (const RequestQueue::BatchPreview& lane : lane_previews_) {
        if (lane.size == 0 || !IsWarm(lane.key)) {
          continue;
        }
        const FleetScheduler::Priority priority =
            sched_->KeyFor(lane.tenant_id, lane.oldest_arrival_us, now);
        const auto predicted = engine_->plan_store().PeekPredictedUs(lane.key);
        if (predicted.has_value() &&
            sched_->BackfillFits(
                *predicted * static_cast<double>(lane.size) * cost_multiplier_,
                window_for(priority)) &&
            (fill_class == -1 || FleetScheduler::Before(priority, fill_priority))) {
          fill_class = 1;
          fill_tenant = lane.tenant_id;
          fill_priority = priority;
        }
      }
    }
    if (fill_class == 0) {
      const uint32_t s = ready_[fill_index];
      ready_.erase(ready_.begin() + static_cast<Lane::difference_type>(fill_index));
      batch_pool_[s].backfilled = true;
      ++report_.backfills;
      if (Observing(config_)) {
        SpanRecord span;
        span.kind = SpanKind::kSchedBackfill;
        span.start_us = now;
        span.end_us = now;
        span.id = batch_pool_[s].key;
        span.arg = batch_pool_[s].requests.size();
        span.tenant = batch_pool_[s].tenant_id;
        span.replica = replica_id_;
        config_.obs->Emit(span);
      }
      ExecuteBatch(s, now);
      return;
    }
    if (fill_class == 1) {
      const uint32_t s = AcquireSlot();
      // Exactly the previewed lane batch: same key, same size.
      PopQueueLaneBatch(s, fill_tenant);
      batch_pool_[s].backfilled = true;
      ++report_.backfills;
      if (Observing(config_)) {
        SpanRecord span;
        span.kind = SpanKind::kSchedBackfill;
        span.start_us = now;
        span.end_us = now;
        span.id = batch_pool_[s].key;
        span.arg = batch_pool_[s].requests.size();
        span.tenant = batch_pool_[s].tenant_id;
        span.replica = replica_id_;
        config_.obs->Emit(span);
      }
      ExecuteBatch(s, now);
      return;
    }
    BeginReservation(blocked.key, now);
    return;
  }
}

void ServeSession::BeginReservation(uint64_t key, SimTime now) {
  if (reserving_) {
    return;  // already held (possibly for an earlier blocked head)
  }
  reserving_ = true;
  reserve_start_us_ = now;
  reserve_key_ = key;
  ++report_.sched_reserves;
}

void ServeSession::EndReservation(SimTime now) {
  if (!reserving_) {
    return;
  }
  reserving_ = false;
  report_.reserve_idle_us += now - reserve_start_us_;
  if (Observing(config_)) {
    SpanRecord span;
    span.kind = SpanKind::kSchedReserve;
    span.start_us = reserve_start_us_;
    span.end_us = now;
    span.id = reserve_key_;
    span.replica = replica_id_;
    config_.obs->Emit(span);
  }
}

}  // namespace flo
