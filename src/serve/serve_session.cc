#include "src/serve/serve_session.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace flo {

ServeSession::ServeSession(OverlapEngine* engine, ServeConfig config, EventQueue* events,
                           Hooks hooks)
    : engine_(engine),
      config_(config),
      events_(events),
      hooks_(std::move(hooks)),
      queue_([this](const ScenarioSpec& spec) { return engine_->planner().CanonicalKey(spec); }) {
  FLO_CHECK(engine_ != nullptr);
  FLO_CHECK(events_ != nullptr);
  FLO_CHECK_GT(config_.max_batch, 0);
  FLO_CHECK_GE(config_.tune_base_us, 0.0);
  FLO_CHECK_GE(config_.tune_per_search_us, 0.0);
  FLO_CHECK_GE(config_.max_tuner_lanes, 1);
}

void ServeSession::Admit(ServeRequest request, SimTime now) {
  queue_.Admit(std::move(request));
  Dispatch(now);
}

bool ServeSession::idle() const {
  return queue_.empty() && ready_.empty() && tune_wait_.empty() && tuners_busy_ == 0 &&
         executor_free_;
}

size_t ServeSession::PendingKeyCount(uint64_t key) const {
  size_t pending = queue_.KeyDepth(key);
  for (const Batch& batch : ready_) {
    if (batch.key == key) {
      pending += batch.requests.size();
    }
  }
  for (const Batch& batch : tune_wait_) {
    if (batch.key == key) {
      pending += batch.requests.size();
    }
  }
  return pending;
}

size_t ServeSession::pending_requests() const {
  size_t pending = queue_.size() + tuning_requests_;
  for (const Batch& batch : ready_) {
    pending += batch.requests.size();
  }
  for (const Batch& batch : tune_wait_) {
    pending += batch.requests.size();
  }
  return pending;
}

bool ServeSession::IsWarm(uint64_t key) const {
  return engine_->plan_store().Contains(key) && tuning_keys_.count(key) == 0;
}

int ServeSession::TunerLaneTarget() const {
  if (!config_.adaptive_tuner_lanes) {
    return std::max(1, config_.tuner_lanes);
  }
  std::set<uint64_t> demand(tuning_keys_.begin(), tuning_keys_.end());
  for (const Batch& batch : tune_wait_) {
    demand.insert(batch.key);
  }
  if (!queue_.empty()) {
    const uint64_t head = queue_.PeekKey();
    if (!IsWarm(head)) {
      demand.insert(head);
    }
  }
  return std::clamp(static_cast<int>(demand.size()), 1, config_.max_tuner_lanes);
}

// Batches parked in a lane are not frozen: a same-key batch joining the
// lane coalesces into an existing one up to max_batch, so requests
// arriving during a tuning window still get compatibility-batched.
void ServeSession::MergeOrPark(std::deque<Batch>* lane, Batch batch) {
  for (Batch& existing : *lane) {
    if (existing.key == batch.key &&
        existing.requests.size() + batch.requests.size() <=
            static_cast<size_t>(config_.max_batch)) {
      for (ServeRequest& request : batch.requests) {
        existing.requests.push_back(std::move(request));
      }
      return;
    }
  }
  lane->push_back(std::move(batch));
}

double ServeSession::TuneCostUs(size_t searches) const {
  return config_.tune_base_us + config_.tune_per_search_us * static_cast<double>(searches);
}

void ServeSession::FinishTuningAt(Batch batch, double cost, SimTime now) {
  report_.tuner_busy_us += cost;
  const uint64_t key = batch.key;
  const SimTime finish = now + cost;
  tuning_requests_ += batch.requests.size();
  events_->Push(finish, [this, key, finish, batch = std::move(batch)]() mutable {
    --tuners_busy_;
    tuning_keys_.erase(key);
    tuning_requests_ -= batch.requests.size();
    const ScenarioSpec spec = batch.requests.front().spec;
    ready_.push_back(std::move(batch));
    Dispatch(finish);
    if (hooks_.tuning_finished) {
      hooks_.tuning_finished(key, spec, finish);
    }
  });
}

void ServeSession::StartTuning(Batch batch, SimTime now) {
  ++tuners_busy_;
  tuning_keys_.insert(batch.key);
  // Build and cache the plan now; its cost lands on the tuning lane, so
  // the executor keeps serving warm batches meanwhile. By-value: against
  // a shared store, Plan()'s reference could dangle under concurrent
  // eviction by another engine.
  const size_t searches_before = engine_->tuner().search_count();
  engine_->planner().PlanByValue(batch.requests.front().spec);
  const double cost = TuneCostUs(engine_->tuner().search_count() - searches_before);
  FinishTuningAt(std::move(batch), cost, now);
}

// Multi-lane start: the distinct predictive searches behind `group` run
// together on a real worker pool (the parallel cold-tuning lane); each
// simulated lane is then charged the searches its own batch was missing.
// The charge is decided before the pool runs, so the timeline is
// deterministic regardless of worker scheduling.
void ServeSession::StartTuningGroup(std::vector<Batch> group, SimTime now) {
  std::vector<ScenarioSpec> specs;
  specs.reserve(group.size());
  for (const Batch& batch : group) {
    specs.push_back(batch.requests.front().spec);
  }
  // PretuneParallel reports which searches it claimed (first spec to
  // need one wins); each lane is charged exactly its batch's claim.
  const int threads = config_.tune_threads > 0 ? config_.tune_threads
                                               : static_cast<int>(group.size());
  auto claimed = engine_->PretuneParallel(specs, threads);
  for (size_t i = 0; i < group.size(); ++i) {
    size_t searches = 0;
    const auto request = engine_->planner().TuningRequest(specs[i]);
    if (request.has_value()) {
      const auto it = std::find(claimed.begin(), claimed.end(), *request);
      if (it != claimed.end()) {
        claimed.erase(it);
        searches = 1;
      }
    }
    ++tuners_busy_;
    tuning_keys_.insert(group[i].key);
    // The searches are warm now; this builds and caches the plan.
    engine_->planner().PlanByValue(specs[i]);
    FinishTuningAt(std::move(group[i]), TuneCostUs(searches), now);
  }
}

void ServeSession::ExecuteBatch(Batch batch, SimTime now) {
  executor_free_ = false;
  ++report_.batches;
  // Hit/miss is a property of the batch's plan at dispatch time: if the
  // plan was cold, every request of the batch waited on it — including
  // the ones whose Execute hits the entry the first request just built.
  const bool warm_at_dispatch = !batch.tuned && engine_->plan_store().Contains(batch.key);
  const size_t searches_before = engine_->tuner().search_count();
  // One canonical key means one spec, one seed, one deterministic
  // schedule: simulate once and charge the service per request.
  const OverlapRun run = engine_->Execute(batch.requests.front().spec);
  double service_us = run.total_us * static_cast<double>(batch.requests.size());
  const bool hit = warm_at_dispatch && run.plan_cache_hit;
  const bool cold = !hit;
  if (cold) {
    ++report_.cold_batches;
  }
  // A plan-cache miss inside Execute means the plan was rebuilt inline
  // on the executor's critical path (overlap_tuning off, or evicted
  // after tuning/dispatch): charge the plan-build base plus any
  // searches the tuner's own cache no longer covered.
  const size_t inline_searches = engine_->tuner().search_count() - searches_before;
  if (!run.plan_cache_hit) {
    service_us += TuneCostUs(inline_searches);
  }
  report_.executor_busy_us += service_us;
  const SimTime start = now;
  const SimTime finish = now + service_us;
  busy_until_ = finish;
  events_->Push(finish, [this, batch = std::move(batch), hit, start, finish] {
    std::vector<RequestRecord> finished;
    if (hooks_.request_finished) {
      finished.reserve(batch.requests.size());
    }
    for (const ServeRequest& request : batch.requests) {
      RequestRecord record;
      record.id = request.id;
      record.tenant = request.tenant;
      record.arrival_us = request.arrival_us;
      record.start_us = start;
      record.finish_us = finish;
      record.plan_cache_hit = hit;
      record.batch_size = static_cast<int>(batch.requests.size());
      if (hooks_.request_finished) {
        finished.push_back(record);
      }
      report_.stats.Record(std::move(record));
    }
    report_.makespan_us = std::max(report_.makespan_us, finish);
    executor_free_ = true;
    Dispatch(finish);
    for (const RequestRecord& record : finished) {
      hooks_.request_finished(record, finish);
    }
  });
}

void ServeSession::Dispatch(SimTime now) {
  // Release batches whose key went warm (an earlier same-key batch
  // finished tuning, or a peer shipped the plan into the store) from the
  // waiting room first — even while the lane is busy with another key, or
  // they would strand behind it with the executor idle.
  for (auto it = tune_wait_.begin(); it != tune_wait_.end();) {
    if (IsWarm(it->key)) {
      MergeOrPark(&ready_, std::move(*it));
      it = tune_wait_.erase(it);
    } else {
      ++it;
    }
  }
  // Feed idle tuning lanes: gather distinct-key cold batches — from the
  // waiting room first, then straight from the queue (a cold batch at
  // the rotation head must start tuning even while the executor is busy
  // with a warm batch; that concurrency is the point of the side lane).
  // Batches gathered in one round start together so their searches share
  // the worker pool.
  const int tuner_lanes = TunerLaneTarget();
  std::vector<Batch> starting;
  // Keys the fleet vetoed this round (a peer owns the in-flight search);
  // their batches park until the shipped plan turns the key warm.
  std::set<uint64_t> vetoed;
  auto key_busy = [&](uint64_t key) {
    if (tuning_keys_.count(key) != 0) {
      return true;
    }
    for (const Batch& batch : starting) {
      if (batch.key == key) {
        return true;
      }
    }
    return false;
  };
  auto acquire = [&](uint64_t key) {
    if (!hooks_.acquire_tuning || hooks_.acquire_tuning(key)) {
      return true;
    }
    vetoed.insert(key);
    return false;
  };
  while (tuners_busy_ + static_cast<int>(starting.size()) < tuner_lanes) {
    bool picked = false;
    for (auto it = tune_wait_.begin(); it != tune_wait_.end(); ++it) {
      if (!key_busy(it->key) && vetoed.count(it->key) == 0 && acquire(it->key)) {
        starting.push_back(std::move(*it));
        tune_wait_.erase(it);
        picked = true;
        break;
      }
    }
    if (picked) {
      continue;
    }
    if (config_.overlap_tuning && !queue_.empty() && !IsWarm(queue_.PeekKey()) &&
        !key_busy(queue_.PeekKey()) && vetoed.count(queue_.PeekKey()) == 0) {
      if (acquire(queue_.PeekKey())) {
        Batch batch;
        batch.requests = queue_.PopBatch(config_.max_batch, &batch.key);
        batch.tuned = true;
        starting.push_back(std::move(batch));
        continue;
      }
      // Vetoed head: move it off the queue so warm work behind it keeps
      // flowing; it waits for the peer's plan like any parked cold batch.
      Batch batch;
      batch.requests = queue_.PopBatch(config_.max_batch, &batch.key);
      batch.tuned = true;
      MergeOrPark(&tune_wait_, std::move(batch));
      continue;
    }
    break;
  }
  // The chosen lane-pool size, for ServeReport: the lanes this round put
  // to use (adaptive mode grows it with cold-key pressure).
  report_.tuner_lanes =
      std::max(report_.tuner_lanes, tuners_busy_ + static_cast<int>(starting.size()));
  if (starting.size() == 1) {
    StartTuning(std::move(starting.front()), now);
  } else if (!starting.empty()) {
    StartTuningGroup(std::move(starting), now);
  }
  while (executor_free_) {
    if (!ready_.empty()) {
      Batch batch = std::move(ready_.front());
      ready_.pop_front();
      ExecuteBatch(std::move(batch), now);
      return;
    }
    if (queue_.empty()) {
      return;
    }
    Batch batch;
    batch.requests = queue_.PopBatch(config_.max_batch, &batch.key);
    if (config_.overlap_tuning && !IsWarm(batch.key)) {
      batch.tuned = true;  // it will wait on the cold-plan path
      if (tuners_busy_ < tuner_lanes && tuning_keys_.count(batch.key) == 0 &&
          vetoed.count(batch.key) == 0 && acquire(batch.key)) {
        StartTuning(std::move(batch), now);
      } else {
        MergeOrPark(&tune_wait_, std::move(batch));
      }
      continue;  // a warm batch may be waiting behind the cold one
    }
    ExecuteBatch(std::move(batch), now);
  }
}

}  // namespace flo
