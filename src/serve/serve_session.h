// The per-engine serving state machine, extracted from ServeLoop so an
// external scheduler can drive many of them on one shared event loop —
// the fleet of src/cluster/ runs one session per replica engine.
//
// A session owns one replica's serving state: the per-tenant admission
// queue, one executor lane, and the cold-tuning lanes. It is driven from
// outside: the owner pushes Admit calls (a router deciding placement) and
// the session schedules its own continuation events on the borrowed
// EventLoop — typed records dispatched to handlers the session registers
// at construction, not per-event closures. ServeLoop wraps exactly one
// session over a private loop — the single-replica special case.
//
// Hooks let a fleet coordinate across sessions without the session
// knowing about the fleet: acquire_tuning gates cold tunes (fleet-wide
// single-flight — a vetoed batch parks until its key turns warm, e.g.
// when a peer ships the plan into this session's store), tuning_finished
// announces a freshly cached plan (the publish point for plan shipping),
// request_finished streams completions (autoscaling signals).
#ifndef SRC_SERVE_SERVE_SESSION_H_
#define SRC_SERVE_SERVE_SESSION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <vector>

#include "src/core/overlap_engine.h"
#include "src/serve/request_queue.h"
#include "src/serve/request_source.h"
#include "src/serve/serve_loop.h"
#include "src/serve/serve_stats.h"
#include "src/sim/event_loop.h"

namespace flo {

class ServeSession {
 public:
  struct Hooks {
    // Called once before a cold batch's key starts tuning here. Return
    // false to veto (another replica owns the in-flight search); the batch
    // parks until the key turns warm in this session's store. Absent =
    // always granted.
    std::function<bool(uint64_t key)> acquire_tuning;
    // Called when a key's simulated tuning completes and its plan is
    // cached in the engine's store — the publish point for plan shipping.
    // `spec` is the scenario the batch was tuned for (the key's preimage,
    // so a shipper can also export the tuner-tier artifact).
    std::function<void(uint64_t key, const ScenarioSpec& spec, SimTime now)> tuning_finished;
    // Called for every request as its batch completes.
    std::function<void(const RequestRecord& record, SimTime now)> request_finished;
    // Called when an in-flight cold tune aborts (injected tuner-lane
    // fault): the plan was discarded and the key will retry with backoff
    // or degrade. A fleet releases its single-flight ownership here so a
    // peer may pick the search up.
    std::function<void(uint64_t key, SimTime now)> tuning_aborted;
    // Called for every request the scheduler sheds at the degraded-mode
    // boundary (SchedConfig::slo_shed): the request will never execute,
    // and the owner must count it as settled. Only fires with a fleet
    // scheduler attached.
    std::function<void(const ServeRequest& request, SimTime now)> request_shed;
  };

  // Retry/backoff knobs for injected tuner-lane faults (src/fault). The
  // defaults mirror FaultConfig; a fleet pushes its config through
  // SetFaultPolicy before the run.
  struct FaultPolicy {
    // Aborted searches re-attempted per key before degrading to the
    // single-group safety plan.
    int tuner_retry_budget = 2;
    // Deterministic exponential backoff between attempts: base doubles
    // per retry, plus seeded jitter in [0, jitter).
    double retry_backoff_base_us = 200.0;
    double retry_backoff_jitter_us = 50.0;
    uint64_t seed = 1;
  };

  // The engine and event loop are borrowed and must outlive the session;
  // the session must outlive the drain of any events it scheduled (its
  // handlers live here). `replica_id` tags the session's event records
  // (-1 for standalone sessions).
  ServeSession(OverlapEngine* engine, ServeConfig config, EventLoop* events,
               Hooks hooks = {}, int replica_id = -1);

  // Admits one request and dispatches. `now` is the caller's simulated
  // time (the request's arrival as seen by this session).
  void Admit(ServeRequest request, SimTime now);

  // Re-evaluates every lane. Idempotent; owners call it after anything
  // that may unblock work (e.g. a peer shipped a plan into the store).
  void Dispatch(SimTime now);

  // No queued work, no tuning in flight, executor free. The session may
  // still receive Admit calls afterwards.
  bool idle() const;
  // Requests admitted but not yet dispatched to the executor. O(1): a
  // counter maintained by Admit/ExecuteBatch, not a lane scan.
  size_t pending_requests() const { return pending_requests_; }
  // Executor busy horizon (<= now when the lane is free).
  SimTime busy_until() const { return busy_until_; }
  bool IsTuningKey(uint64_t key) const { return tuning_keys_.count(key) != 0; }
  // Pending requests (queued, ready, or parked) batched around `key` —
  // the affinity signal for keys admitted but not yet tuning or warm.
  size_t PendingKeyCount(uint64_t key) const;

  OverlapEngine& engine() { return *engine_; }
  const ServeConfig& config() const { return config_; }
  const ServeReport& report() const { return report_; }
  ServeReport& report() { return report_; }

  // --- Fault-injection surface (src/fault) ---------------------------
  // A stalled session freezes its dispatch loop: admitted work queues but
  // nothing starts (crashed or hung replica). In-flight finish events
  // still fire; their batches are cancelled via ExtractPending first.
  void SetStalled(bool stalled) { stalled_ = stalled; }
  bool stalled() const { return stalled_; }
  // Straggler injection: every executor service time is scaled by this
  // factor (1.0 = healthy). Applies to batches dispatched while set.
  void SetCostMultiplier(double multiplier) { cost_multiplier_ = multiplier; }
  void SetFaultPolicy(FaultPolicy policy) { fault_policy_ = policy; }
  // Marks every in-flight cold tune failed: when its finish event fires
  // the plan is discarded and the key retries with backoff (or degrades
  // past the budget). Returns the number of searches failed.
  size_t FailInFlightTuning();
  // Evacuates every request that has not started executing — the
  // admission queue, ready and parked batches, and batches riding tuning
  // lanes (their searches are cancelled) — into *out for re-placement
  // elsewhere. Requests already on the executor are cancelled too: their
  // batch completes as a no-op and the requests ride out with the rest.
  // Returns the number extracted. Deterministic order: executor batch,
  // ready lane, tune-wait lane, tuning slots, then queue lanes.
  size_t ExtractPending(std::vector<ServeRequest>* out);

  // --- Fleet-scheduling surface (src/sched) --------------------------
  // Evacuates only the admission queue — requests never batched, tuned,
  // or dispatched — into *out (lane order, FIFO within a lane) for
  // preemptive re-placement through the router. Cheaper and safer than
  // ExtractPending: in-flight tuning and ready batches stay put.
  size_t ExtractQueued(std::vector<ServeRequest>* out);
  // Expected completion of the in-flight tuning for `key` (the tuning
  // lane's ETA); negative when the key is not tuning here. The backfill
  // window every fit-check is measured against.
  SimTime TuningEtaFor(uint64_t key) const;

 private:
  struct Batch {
    std::vector<ServeRequest> requests;
    // The plan key the batch was formed around (from RequestQueue).
    uint64_t key = 0;
    // Routed through the cold-plan path: its requests waited on tuning.
    bool tuned = false;
    // Execution context, set by ExecuteBatch for the finish event.
    SimTime exec_start = 0.0;
    bool exec_hit = false;
    // Fault-recovery state (src/fault). A cancelled batch's requests were
    // evacuated (replica crash); its pending finish event completes as a
    // no-op and releases the slot. tune_failed marks an in-flight search
    // an injected fault aborted; tune_retries counts the re-attempts.
    // not_before_us keeps a retrying batch off the tuning lanes until its
    // backoff expires. degraded routes execution to the single-group
    // safety plan. charged_searches remembers the simulated search charge
    // so a retry (tuner cache now warm) re-pays the original cost.
    bool cancelled = false;
    bool degraded = false;
    bool tune_failed = false;
    int tune_retries = 0;
    SimTime not_before_us = 0.0;
    size_t charged_searches = 0;
    // Fleet-scheduling metadata (src/sched), set at pop time: the
    // tenant and oldest arrival behind the batch's priority key, the
    // in-flight tune's expected completion (the backfill window), and
    // whether the batch was slotted into another batch's tuning window
    // (the head-delay audit flags it if it overruns).
    uint32_t tenant_id = 0;
    SimTime oldest_arrival_us = 0.0;
    SimTime tune_eta_us = 0.0;
    bool backfilled = false;
  };
  // Lanes hold slots into the batch pool: batches (and their request
  // vectors) are recycled instead of allocated per dispatch.
  using Lane = std::deque<uint32_t>;

  uint32_t AcquireSlot();
  void ReleaseSlot(uint32_t slot);
  Batch& slot(uint32_t s) { return batch_pool_[s]; }

  // Pops the queue's next batch into `batch_slot`, recording the
  // priority metadata (tenant, oldest arrival) every pop site needs.
  uint64_t PopQueueBatch(uint32_t batch_slot);
  // Lane-targeted variant: pops the batch formed around `tenant_id`'s
  // lane head (the backfill scan commits to a specific previewed lane,
  // which may not be the ranked pick).
  uint64_t PopQueueLaneBatch(uint32_t batch_slot, uint32_t tenant_id);
  // Predicted executor service time for a warm batch, from the stored
  // plan's estimate (no store stats, no LRU touch); +inf when the plan
  // is missing or the batch is degraded — i.e. never backfillable.
  double PredictedServiceUs(const Batch& batch) const;
  // The scheduler-ordered executor stage: picks the highest-priority
  // unit among ready batches, the queue's next batch, and
  // tuning-blocked batches; backfills or reserves when the winner is
  // still tuning. Replaces the FIFO executor loop when sched_ is set.
  void DispatchExecutorSched(SimTime now, int tuner_lanes, std::set<uint64_t>* vetoed);
  void BeginReservation(uint64_t key, SimTime now);
  void EndReservation(SimTime now);

  bool IsWarm(uint64_t key) const;
  // The cold-tuning lane-pool size for this dispatch round: the static
  // config, or — adaptive mode — the observed cold-key pressure (distinct
  // cold keys in flight, parked, or at the rotation head), clamped to
  // [1, max_tuner_lanes].
  int TunerLaneTarget() const;
  void MergeOrPark(Lane* lane, uint32_t batch_slot);
  double TuneCostUs(size_t searches) const;
  void FinishTuningAt(uint32_t batch_slot, double cost, size_t searches, SimTime now);
  void StartTuning(uint32_t batch_slot, SimTime now);
  void StartTuningGroup(std::vector<uint32_t> group, SimTime now);
  void ExecuteBatch(uint32_t batch_slot, SimTime now);
  // Typed-event handlers (EventType::kTuningFinished / kBatchFinished /
  // kRetryKick — the latter just re-runs Dispatch when a retrying
  // batch's backoff expires).
  void OnTuningFinished(const EventRecord& record, SimTime now);
  void OnBatchFinished(const EventRecord& record, SimTime now);
  // OnTuningFinished tail for a tune_failed slot: discard the plan,
  // requeue the batch with deterministic backoff, or degrade it past the
  // retry budget.
  void AbortTuning(uint32_t batch_slot, uint64_t key, SimTime now);

  OverlapEngine* engine_;
  ServeConfig config_;
  EventLoop* events_;
  Hooks hooks_;
  int replica_id_;
  uint32_t tuning_handler_ = 0;
  uint32_t finish_handler_ = 0;
  uint32_t retry_handler_ = 0;

  RequestQueue queue_;
  Lane ready_;      // tuned batches awaiting the executor
  Lane tune_wait_;  // cold batches awaiting a tuning lane
  std::vector<Batch> batch_pool_;
  std::vector<uint32_t> free_slots_;
  // Keys whose plan is in the store but whose simulated tuning has not
  // completed yet: they must not be treated as warm, or later same-key
  // batches would execute before the tuning that produced their plan.
  std::set<uint64_t> tuning_keys_;
  // Requests riding batches currently on a tuning lane (the batches live
  // in their finish events' slots, not in a lane) — still pending work.
  size_t tuning_requests_ = 0;
  size_t pending_requests_ = 0;
  bool executor_free_ = true;
  int tuners_busy_ = 0;
  SimTime busy_until_ = 0.0;
  // Slots riding tuning lanes right now (their finish events are in
  // flight) — the set FailInFlightTuning and ExtractPending walk.
  std::vector<uint32_t> tuning_slots_;
  // Slot on the executor (-1 = free), so a crash can cancel it.
  int64_t executing_slot_ = -1;
  bool stalled_ = false;
  double cost_multiplier_ = 1.0;
  FaultPolicy fault_policy_;
  // Fleet scheduler (src/sched): non-null only when ServeConfig::sched
  // is set AND enabled, so every sched branch is one pointer test and a
  // null scheduler is bit-identical to the pre-sched build.
  FleetScheduler* sched_ = nullptr;
  // The dispatch round's sim time, visible to the queue's lane picker
  // (the queue itself is clockless).
  SimTime sched_now_ = 0.0;
  // Executor-reservation state: while the highest-priority batch is
  // blocked on tuning and nothing fits its window, the executor idles
  // "reserved"; the span and idle total are settled when it next runs.
  bool reserving_ = false;
  SimTime reserve_start_us_ = 0.0;
  uint64_t reserve_key_ = 0;
  // Scratch for OnBatchFinished's hook fan-out; reused across events.
  std::vector<RequestRecord> finished_scratch_;
  // Scratch for the backfill scan's per-lane previews; reused across
  // dispatches.
  std::vector<RequestQueue::BatchPreview> lane_previews_;
  ServeReport report_;
};

}  // namespace flo

#endif  // SRC_SERVE_SERVE_SESSION_H_
