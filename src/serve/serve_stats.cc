#include "src/serve/serve_stats.h"

#include <algorithm>
#include <utility>

#include "src/obs/metrics.h"
#include "src/serve/tenant_registry.h"
#include "src/util/check.h"
#include "src/util/table.h"

namespace flo {

namespace {

// The single percentile path: latencies stream through an exact-sample
// obs Histogram whose Percentiles() delegates to util/stats' one
// interpolation — histogram-p50 of an odd sample count is the exact
// median by construction.
PercentileSummary LatencySummary(const std::vector<double>& latencies) {
  Histogram histogram;
  histogram.EnableExactSamples();
  for (const double latency : latencies) {
    histogram.Observe(latency);
  }
  return histogram.Percentiles();
}

}  // namespace

void ServeStats::Record(RequestRecord record) {
  FLO_CHECK(!record.tenant.empty());
  FLO_CHECK_GE(record.start_us, record.arrival_us);
  FLO_CHECK_GE(record.finish_us, record.start_us);
  if (record.tenant_id == 0) {
    record.tenant_id = InternTenant(record.tenant);  // hand-built record
  }
  if (record.retries > 0) {
    ++retried_requests_;
    total_retries_ += static_cast<size_t>(record.retries);
  }
  if (record.degraded) {
    ++degraded_requests_;
  }
  by_tenant_[record.tenant_id].push_back(records_.size());
  records_.push_back(std::move(record));
}

std::vector<std::string> ServeStats::Tenants() const {
  std::vector<std::string> tenants;
  tenants.reserve(by_tenant_.size());
  for (const auto& [tenant_id, indices] : by_tenant_) {
    tenants.push_back(TenantNameOf(tenant_id));
  }
  // by_tenant_ is unordered; name order keeps reports deterministic.
  std::sort(tenants.begin(), tenants.end());
  return tenants;
}

TenantSummary ServeStats::Summarize(const std::string& tenant) const {
  TenantSummary summary;
  summary.tenant = tenant;
  auto it = by_tenant_.find(InternTenant(tenant));
  FLO_CHECK(it != by_tenant_.end()) << "no records for tenant " << tenant;
  std::vector<double> latencies;
  latencies.reserve(it->second.size());
  double queue_sum = 0.0;
  double exec_sum = 0.0;
  double batch_sum = 0.0;
  size_t hits = 0;
  for (const size_t index : it->second) {
    const RequestRecord& record = records_[index];
    latencies.push_back(record.LatencyUs());
    queue_sum += record.QueueUs();
    exec_sum += record.ExecUs();
    batch_sum += record.batch_size;
    hits += record.plan_cache_hit ? 1 : 0;
  }
  summary.requests = latencies.size();
  const double n = static_cast<double>(latencies.size());
  summary.mean_queue_us = queue_sum / n;
  summary.mean_exec_us = exec_sum / n;
  summary.mean_batch_size = batch_sum / n;
  summary.cache_hit_rate = static_cast<double>(hits) / n;
  summary.latency = LatencySummary(latencies);
  return summary;
}

std::vector<TenantSummary> ServeStats::SummarizeAll() const {
  std::vector<TenantSummary> summaries;
  for (const std::string& tenant : Tenants()) {
    summaries.push_back(Summarize(tenant));
  }
  return summaries;
}

PercentileSummary ServeStats::LatencyPercentiles() const {
  if (records_.empty()) {
    return PercentileSummary{};
  }
  std::vector<double> latencies;
  latencies.reserve(records_.size());
  for (const RequestRecord& record : records_) {
    latencies.push_back(record.LatencyUs());
  }
  return LatencySummary(latencies);
}

double ServeStats::CacheHitRate() const {
  if (records_.empty()) {
    return 0.0;
  }
  size_t hits = 0;
  for (const RequestRecord& record : records_) {
    hits += record.plan_cache_hit ? 1 : 0;
  }
  return static_cast<double>(hits) / static_cast<double>(records_.size());
}

CsvWriter ServeStats::ToCsv() const {
  CsvWriter csv({"tenant", "requests", "latency_p50_us", "latency_p90_us", "latency_p95_us",
                 "latency_p99_us", "mean_queue_us", "mean_exec_us", "cache_hit_rate",
                 "mean_batch_size"});
  for (const TenantSummary& s : SummarizeAll()) {
    csv.AddRow({s.tenant, std::to_string(s.requests), FormatDouble(s.latency.p50, 3),
                FormatDouble(s.latency.p90, 3), FormatDouble(s.latency.p95, 3),
                FormatDouble(s.latency.p99, 3), FormatDouble(s.mean_queue_us, 3),
                FormatDouble(s.mean_exec_us, 3), FormatDouble(s.cache_hit_rate, 4),
                FormatDouble(s.mean_batch_size, 2)});
  }
  return csv;
}

}  // namespace flo
