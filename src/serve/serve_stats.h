// SLO metrics for the serving loop: per-tenant latency percentiles,
// queueing delay vs execution time, and plan-cache behaviour, exportable
// as CSV for external plotting.
#ifndef SRC_SERVE_SERVE_STATS_H_
#define SRC_SERVE_SERVE_STATS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/util/csv.h"
#include "src/util/stats.h"

namespace flo {

// One completed request, as observed on the serving clock.
struct RequestRecord {
  int64_t id = 0;
  std::string tenant;
  SimTime arrival_us = 0.0;
  SimTime start_us = 0.0;   // when its batch began executing
  SimTime finish_us = 0.0;  // when its batch completed
  // Whether the plan was warm when the batch was formed (a request that
  // waited on the cold-plan tuning lane counts as a miss even though the
  // eventual Execute hits the freshly tuned entry).
  bool plan_cache_hit = false;
  int batch_size = 1;
  // Interned tenant id (TenantRegistry); 0 = unresolved, interned lazily
  // by ServeStats::Record. Appended last so positional initializers of
  // the fields above keep working.
  uint32_t tenant_id = 0;
  // Fault-recovery provenance (src/fault): how many times the request was
  // requeued off a failed replica before completing, and whether it was
  // served on the single-group safety plan after tuner retries exhausted.
  // Appended last, like tenant_id.
  int retries = 0;
  bool degraded = false;

  double QueueUs() const { return start_us - arrival_us; }
  double ExecUs() const { return finish_us - start_us; }
  double LatencyUs() const { return finish_us - arrival_us; }
};

struct TenantSummary {
  std::string tenant;
  size_t requests = 0;
  double mean_queue_us = 0.0;
  double mean_exec_us = 0.0;
  PercentileSummary latency;  // of end-to-end LatencyUs
  double cache_hit_rate = 0.0;
  double mean_batch_size = 0.0;
};

class ServeStats {
 public:
  void Record(RequestRecord record);

  size_t count() const { return records_.size(); }
  const std::vector<RequestRecord>& records() const { return records_; }
  std::vector<std::string> Tenants() const;

  // Fault-recovery aggregates, maintained at Record() time: requests that
  // completed after >= 1 requeue, their summed retry count, and requests
  // served degraded. All zero on fault-free runs.
  size_t retried_requests() const { return retried_requests_; }
  size_t total_retries() const { return total_retries_; }
  size_t degraded_requests() const { return degraded_requests_; }

  // Requires at least one record for the tenant.
  TenantSummary Summarize(const std::string& tenant) const;
  std::vector<TenantSummary> SummarizeAll() const;

  // Fraction of requests whose plan was warm; 0 when empty.
  double CacheHitRate() const;

  // End-to-end latency percentiles over every record (all tenants);
  // all-zero when empty. Benches and demos aggregate with this so the
  // latency definition lives in one place.
  PercentileSummary LatencyPercentiles() const;

  // One row per tenant: requests, p50/p90/p95/p99 latency, mean queue and
  // exec time, hit rate, mean batch size.
  CsvWriter ToCsv() const;

 private:
  std::vector<RequestRecord> records_;
  size_t retried_requests_ = 0;
  size_t total_retries_ = 0;
  size_t degraded_requests_ = 0;
  // Indices into records_ grouped at Record() time, so per-tenant
  // summaries are one scan instead of a full-vector pass per tenant.
  // Keyed by interned tenant id — an integer hash per record instead of a
  // string hash/compare; Tenants() restores name order at query time.
  std::unordered_map<uint32_t, std::vector<size_t>> by_tenant_;
};

}  // namespace flo

#endif  // SRC_SERVE_SERVE_STATS_H_
