#include "src/serve/tenant_registry.h"

#include <deque>
#include <mutex>
#include <unordered_map>

#include "src/util/check.h"

namespace flo {
namespace {

struct Registry {
  std::mutex mutex;
  // names[0] is the reserved "unresolved" slot so valid ids start at 1.
  // A deque so returned references stay valid as the registry grows.
  std::deque<std::string> names{""};
  std::unordered_map<std::string, uint32_t> ids;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();  // leaked: process lifetime
  return *registry;
}

}  // namespace

uint32_t InternTenant(const std::string& name) {
  FLO_CHECK(!name.empty());
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const auto it = registry.ids.find(name);
  if (it != registry.ids.end()) {
    return it->second;
  }
  const uint32_t id = static_cast<uint32_t>(registry.names.size());
  registry.names.push_back(name);
  registry.ids.emplace(name, id);
  return id;
}

const std::string& TenantNameOf(uint32_t id) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  FLO_CHECK_GT(id, 0u);
  FLO_CHECK_LT(id, registry.names.size());
  return registry.names[id];
}

}  // namespace flo
