// Process-wide tenant-name interning for the serving hot path.
//
// Admission used to key per-tenant structures by std::string, paying a
// string hash/compare (and often a copy) per request. Interning maps each
// distinct tenant name to a small dense id once, at request-creation time;
// the admission path then works in integer ids. Id 0 is reserved for
// "unresolved": requests built by hand (tests, ad-hoc demos) carry 0 and
// are lazily interned on first admission, so the fast path never needs a
// string lookup and the slow path never needs caller cooperation.
#ifndef SRC_SERVE_TENANT_REGISTRY_H_
#define SRC_SERVE_TENANT_REGISTRY_H_

#include <cstdint>
#include <string>

namespace flo {

// Returns the stable id (>= 1) for a tenant name, interning it on first
// use. Thread-safe; ids are stable for the process lifetime. Note the ids
// depend on interning order and must never be used for ordering decisions
// — deterministic code orders tenants by name (see RequestQueue).
uint32_t InternTenant(const std::string& name);

// Name for an interned id. Requires a valid id (from InternTenant).
const std::string& TenantNameOf(uint32_t id);

}  // namespace flo

#endif  // SRC_SERVE_TENANT_REGISTRY_H_
