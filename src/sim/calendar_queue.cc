#include "src/sim/calendar_queue.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace flo {
namespace {

// Floor on the derived bucket width. At microsecond timescales this keeps
// time / width comfortably inside uint64 while still allowing very dense
// event populations.
constexpr double kMinWidth = 1e-9;

}  // namespace

CalendarQueue::CalendarQueue() : buckets_(kMinBuckets), mask_(kMinBuckets - 1) {}

CalendarEntry CalendarQueue::PopOverflow() {
  // Nothing due within a year of the scan origin: the width is mis-tuned
  // for the live population (too narrow for its gaps). Take the direct
  // minimum, then retune the day width to the gap that overflowed the year
  // so subsequent pops land within a probe or two again. Without this,
  // sparse steady states (a handful of in-flight events) pay a full year
  // scan plus a direct scan on every single pop.
  const SimTime origin = last_time_;
  const CalendarEntry entry = PopDirect();
  const double gap = entry.time - origin;
  if (gap > width_) {
    width_ = gap;
    inv_width_ = 1.0 / width_;
    Redistribute(buckets_.size());
  }
  return entry;
}

CalendarEntry CalendarQueue::PopDirect() {
  size_t best_bucket = buckets_.size();
  size_t best_index = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    for (size_t i = 0; i < buckets_[b].size(); ++i) {
      const CalendarEntry& e = buckets_[b][i];
      if (best_bucket == buckets_.size()) {
        best_bucket = b;
        best_index = i;
        continue;
      }
      const CalendarEntry& best = buckets_[best_bucket][best_index];
      if (e.time < best.time || (e.time == best.time && e.order < best.order)) {
        best_bucket = b;
        best_index = i;
      }
    }
  }
  FLO_CHECK_LT(best_bucket, buckets_.size());
  std::vector<CalendarEntry>& bucket = buckets_[best_bucket];
  CalendarEntry entry = bucket[best_index];
  bucket[best_index] = bucket.back();
  bucket.pop_back();
  last_time_ = entry.time;
  scan_vday_ = entry.vday;
  --size_;
  return entry;
}

void CalendarQueue::Rebuild(size_t bucket_count) {
  if (size_ > 0) {
    // One bucket per live event across the live time span: the classic
    // calendar-queue sizing rule. Deterministic — derived from content only.
    bool seen = false;
    SimTime lo = 0.0;
    SimTime hi = 0.0;
    for (const std::vector<CalendarEntry>& bucket : buckets_) {
      for (const CalendarEntry& e : bucket) {
        lo = seen ? std::min(lo, e.time) : e.time;
        hi = seen ? std::max(hi, e.time) : e.time;
        seen = true;
      }
    }
    width_ = std::max((hi - lo) / static_cast<double>(size_), kMinWidth);
    inv_width_ = 1.0 / width_;
  }
  Redistribute(bucket_count);
}

void CalendarQueue::Redistribute(size_t bucket_count) {
  scratch_.clear();
  scratch_.reserve(size_);
  for (std::vector<CalendarEntry>& bucket : buckets_) {
    scratch_.insert(scratch_.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  buckets_.resize(bucket_count);
  mask_ = bucket_count - 1;
  for (CalendarEntry& e : scratch_) {
    e.vday = VirtualBucket(e.time);
    buckets_[e.vday & mask_].push_back(e);
  }
  scan_vday_ = VirtualBucket(last_time_);
}

}  // namespace flo
