// Calendar queue: amortized O(1) priority queue for discrete-event cores.
//
// Brown's calendar queue hashes each event into a "day" bucket by its
// timestamp; popping scans the current "year" of buckets starting at the day
// of the last popped event. With the bucket count and width tracking the live
// event population, both Push and PopMin are amortized O(1) — versus the
// O(log n) sift of a binary heap — and entries live in flat vectors, so there
// is no per-event allocation in steady state.
//
// Ordering is exact, not approximate: the scan qualifies entries by their
// integer virtual-bucket index (floor(time / width)), so two events with equal
// timestamps always land in the same virtual bucket and are tie-broken by the
// caller-supplied 64-bit order. This is what keeps the serving simulations
// bit-identical to the legacy binary heap.
//
// The queue itself is permissive about time order: a push earlier than the
// scan origin simply rewinds the origin (a few extra empty days on the next
// pop, never a wrong answer). The discrete-event "no scheduling in the past"
// rule — pushes >= the last *dispatched* time — is enforced by EventLoop,
// which knows when a dispatch has actually happened.
//
// Push and PopMin are defined inline: they run once per simulated event in
// million-event serving runs, and the cross-TU call plus the missed
// VirtualBucket inlining are measurable at that rate.
#ifndef SRC_SIM_CALENDAR_QUEUE_H_
#define SRC_SIM_CALENDAR_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/event_record.h"
#include "src/util/check.h"

namespace flo {

struct CalendarEntry {
  SimTime time = 0.0;
  uint64_t vday = 0;  // VirtualBucket(time) under the current width; cached
                      // at push, refreshed on redistribute, so the pop scan
                      // qualifies with an integer compare instead of a
                      // floating multiply per entry
  uint64_t order = 0;
  EventRecord record;
};

class CalendarQueue {
 public:
  CalendarQueue();

  void Push(SimTime time, uint64_t order, const EventRecord& record) {
    const uint64_t vday = VirtualBucket(time);
    if (size_ == 0 || time < last_time_) {
      // Rewind the scan origin: starting the year scan earlier than the true
      // minimum is always correct, just a few extra empty days. No-past
      // enforcement relative to *dispatched* time is EventLoop's job —
      // before the first dispatch, pushes may legally arrive out of order.
      last_time_ = time;
      scan_vday_ = vday;
    }
    buckets_[vday & mask_].push_back(CalendarEntry{time, vday, order, record});
    ++size_;
    if (size_ > 2 * buckets_.size()) {
      Rebuild(2 * buckets_.size());
    }
  }

  // Removes and returns the entry with the smallest (time, order).
  // Requires !empty().
  CalendarEntry PopMin() {
    FLO_CHECK_GT(size_, 0u);
    // Scan one "year": starting at the virtual bucket of the last popped
    // event, visit each day once. Qualification is by exact integer virtual
    // bucket, so equal timestamps always qualify together and the in-bucket
    // (time, order) comparison resolves them exactly.
    uint64_t scan = scan_vday_;
    for (size_t step = 0; step <= mask_; ++step, ++scan) {
      std::vector<CalendarEntry>& bucket = buckets_[scan & mask_];
      if (bucket.empty()) {
        continue;
      }
      size_t best = bucket.size();
      for (size_t i = 0; i < bucket.size(); ++i) {
        if (bucket[i].vday != scan) {
          continue;  // a later year in the same day; a later cycle picks it up
        }
        if (best == bucket.size() || bucket[i].time < bucket[best].time ||
            (bucket[i].time == bucket[best].time && bucket[i].order < bucket[best].order)) {
          best = i;
        }
      }
      if (best != bucket.size()) {
        CalendarEntry entry = bucket[best];
        bucket[best] = bucket.back();
        bucket.pop_back();
        last_time_ = entry.time;
        scan_vday_ = entry.vday;
        --size_;
        if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 2) {
          Rebuild(buckets_.size() / 2);
        }
        return entry;
      }
    }
    return PopOverflow();
  }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  size_t bucket_count() const { return buckets_.size(); }

 private:
  // Smallest bucket array; also the size below which resizing never triggers.
  static constexpr size_t kMinBuckets = 8;

  // Virtual (un-wrapped) bucket index of a timestamp. Integer, so the
  // year-scan qualification below is exact for equal timestamps.
  uint64_t VirtualBucket(SimTime time) const {
    return static_cast<uint64_t>(time * inv_width_);
  }

  // Slow path when nothing is due within a year of the scan origin: direct
  // minimum search plus a width retune. Out of line — it must stay off the
  // steady-state pop path.
  CalendarEntry PopOverflow();

  // Resizes to `bucket_count` buckets and re-derives the bucket width from
  // the live population. Deterministic: depends only on queue content.
  void Rebuild(size_t bucket_count);

  // Re-hashes every entry into `bucket_count` buckets under the current
  // width. Used by Rebuild and by the PopOverflow width retune.
  void Redistribute(size_t bucket_count);

  // Full-queue minimum search; fallback when the next event is more than a
  // year ahead of the scan position.
  CalendarEntry PopDirect();

  std::vector<std::vector<CalendarEntry>> buckets_;
  size_t mask_ = 0;          // buckets_.size() - 1 (power of two)
  double width_ = 1.0;       // seconds of simulated time per bucket
  double inv_width_ = 1.0;   // 1.0 / width_
  size_t size_ = 0;
  SimTime last_time_ = 0.0;   // time of the last popped entry; scan origin
  uint64_t scan_vday_ = 0;    // VirtualBucket(last_time_), kept in sync so
                              // the pop scan starts without a float multiply
  std::vector<CalendarEntry> scratch_;  // Redistribute staging, reused
};

}  // namespace flo

#endif  // SRC_SIM_CALENDAR_QUEUE_H_
