#include "src/sim/device.h"

#include <algorithm>

#include "src/util/check.h"

namespace flo {

Device::Device(int id, int sm_total) : id_(id), sm_total_(sm_total) {
  FLO_CHECK_GE(id, 0);
  FLO_CHECK_GT(sm_total, 0);
}

void Device::AcquireSms(int count) {
  FLO_CHECK_GE(count, 0);
  sm_busy_ += count;
}

void Device::ReleaseSms(int count) {
  FLO_CHECK_GE(count, 0);
  FLO_CHECK_GE(sm_busy_, count) << "releasing more SMs than acquired on device " << id_;
  sm_busy_ -= count;
}

int Device::ComputeSms() const { return std::max(1, sm_total_ - sm_busy_); }

}  // namespace flo
