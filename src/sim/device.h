// Simulated GPU device: an SM pool shared by concurrently resident kernels.
//
// FlashOverlap's communication kernels occupy a fixed number of SMs (NCCL
// channels) with higher priority; the GEMM runs its waves on whatever is
// left (paper Sec. 4.2.1 (3), Alg. 1 line 3). The device tracks that
// contention.
#ifndef SRC_SIM_DEVICE_H_
#define SRC_SIM_DEVICE_H_

#include <string>

namespace flo {

class Device {
 public:
  Device(int id, int sm_total);

  int id() const { return id_; }
  int sm_total() const { return sm_total_; }
  int sm_busy() const { return sm_busy_; }
  int sm_available() const { return sm_total_ - sm_busy_; }

  // Reserves `count` SMs; over-subscription is allowed (NCCL channels are
  // scheduled with priority and simply crowd out GEMM blocks) but available
  // SM count is floored at a minimum of 1 for forward progress.
  void AcquireSms(int count);
  void ReleaseSms(int count);

  // SMs a compute kernel can use right now, never below 1.
  int ComputeSms() const;

 private:
  int id_;
  int sm_total_;
  int sm_busy_ = 0;
};

}  // namespace flo

#endif  // SRC_SIM_DEVICE_H_
