#include "src/sim/event_loop.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace flo {

namespace {
// Reserved handler id used by PushCall to dispatch pooled closures.
constexpr uint32_t kCallHandler = 0;
}  // namespace

EventLoop::EventLoop(bool legacy_heap) : legacy_(legacy_heap) {
  // Handler 0: run a pooled closure and recycle its slot.
  RegisterHandler([this](const EventRecord& record, SimTime) {
    std::function<void()> call = std::move(calls_[record.slot]);
    calls_[record.slot] = nullptr;
    free_calls_.push_back(record.slot);
    call();
  });
}

void EventLoop::PushLegacy(SimTime time, uint64_t order, const EventRecord& record) {
  // Faithful reproduction of the old cost model: one std::function per
  // event, captures too big for the small-buffer optimization.
  heap_.push_back(LegacyEntry{time, order, [this, record](SimTime now) {
                                if (tap_ != nullptr) {
                                  tap_(tap_ctx_, record, now);
                                }
                                const HandlerSlot& slot = handlers_[record.handler];
                                slot.invoke(slot.ctx, record, now);
                              }});
  std::push_heap(heap_.begin(), heap_.end(), LegacyLater{});
}

bool EventLoop::RunOneLegacy(SimTime* now) {
  if (heap_.empty()) {
    return false;
  }
  std::pop_heap(heap_.begin(), heap_.end(), LegacyLater{});
  LegacyEntry entry = std::move(heap_.back());
  heap_.pop_back();
  *now = entry.time;
  floor_ = entry.time;
  floor_armed_ = !heap_.empty();
  ++dispatched_;
  entry.thunk(entry.time);
  return true;
}

void EventLoop::PushCall(SimTime time, std::function<void()> call) {
  FLO_CHECK(call != nullptr);
  uint32_t slot;
  if (!free_calls_.empty()) {
    slot = free_calls_.back();
    free_calls_.pop_back();
    calls_[slot] = std::move(call);
  } else {
    slot = static_cast<uint32_t>(calls_.size());
    calls_.push_back(std::move(call));
  }
  EventRecord record;
  record.handler = kCallHandler;
  record.slot = slot;
  Push(time, record);
}

}  // namespace flo
