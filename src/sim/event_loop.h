// Serving-scale event loop: typed records over a calendar queue, with the
// legacy std::function binary heap retained behind a flag as the
// differential baseline.
//
// Ordering contract (identical in both backends): events fire in (time,
// band, sequence) order, where band 0 holds arrivals and band 1 everything
// else. Arrivals winning equal-time ties reproduces the legacy engine
// exactly, which materialized every arrival closure up front (lowest
// sequence numbers) before any internal event was scheduled. Within a band,
// push order breaks ties — the FIFO stability determinism rests on.
#ifndef SRC_SIM_EVENT_LOOP_H_
#define SRC_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/calendar_queue.h"
#include "src/sim/event_queue.h"
#include "src/sim/event_record.h"

namespace flo {

class EventLoop {
 public:
  using Handler = std::function<void(const EventRecord&, SimTime)>;

  explicit EventLoop(bool legacy_heap = false);

  // Registers a dispatch target and returns its id for EventRecord::handler.
  // Handlers are never unregistered: sessions register at construction and
  // any events referencing a destroyed session must have drained first
  // (runs always drain the queue to empty). The callable is boxed once here
  // and dispatched through a single indirect call per event — measurably
  // cheaper than std::function's double indirection at millions of events.
  template <typename F>
  uint32_t RegisterHandler(F handler) {
    auto owner = std::make_shared<F>(std::move(handler));
    handlers_.push_back(HandlerSlot{
        [](void* ctx, const EventRecord& record, SimTime now) {
          (*static_cast<F*>(ctx))(record, now);
        },
        owner.get(), std::move(owner)});
    return static_cast<uint32_t>(handlers_.size() - 1);
  }

  // Schedules a typed record. Once dispatching has begun, `time` must be
  // >= the last dispatched time (checked); before the first dispatch and
  // after a full drain, pushes may arrive in any time order. Inline: this
  // runs once per simulated event in million-event serving runs.
  void Push(SimTime time, const EventRecord& record) {
    FLO_CHECK_LT(record.handler, handlers_.size());
    // No scheduling in the past — relative to *dispatched* time. Before the
    // first dispatch (and after a full drain) pushes may legally arrive in
    // any time order; the floor arms once RunOne establishes "now".
    if (floor_armed_) {
      FLO_CHECK_GE(time, floor_) << "event scheduled in the past";
    }
    const uint64_t order = NextOrder(record.type);
    if (legacy_) {
      PushLegacy(time, order, record);
    } else {
      calendar_.Push(time, order, record);
    }
  }

  // Convenience for cold paths (demos, one-off checkpoints): schedules a
  // closure through a pooled slot. Hot paths should use typed records.
  void PushCall(SimTime time, std::function<void()> call);

  // Observation tap: called for every dispatched event, just before its
  // handler, with the record and the event time. The tap observes only — it
  // is not an event, does not advance time, and does not count toward
  // dispatched(), so attaching one cannot perturb the simulation. Used by
  // the observability plane (flight recorder, metrics checkpoints). Pass
  // nullptr to detach. Raw fn-pointer + ctx to keep the disabled cost at
  // one predictable branch per event.
  using TapFn = void (*)(void* ctx, const EventRecord& record, SimTime now);
  void SetTap(TapFn tap, void* ctx) {
    tap_ = tap;
    tap_ctx_ = ctx;
  }

  // Dispatches the earliest event. Returns false when the queue is empty,
  // otherwise stores the event time in *now.
  bool RunOne(SimTime* now) {
    if (legacy_) {
      return RunOneLegacy(now);
    }
    if (calendar_.empty()) {
      return false;
    }
    const CalendarEntry entry = calendar_.PopMin();
    *now = entry.time;
    floor_ = entry.time;
    floor_armed_ = !calendar_.empty();
    ++dispatched_;
    if (tap_ != nullptr) {
      tap_(tap_ctx_, entry.record, entry.time);
    }
    const HandlerSlot& slot = handlers_[entry.record.handler];
    slot.invoke(slot.ctx, entry.record, entry.time);
    return true;
  }

  // Drains the queue; returns the time of the last dispatched event (0.0 if
  // the queue was already empty). The calendar drain is specialized rather
  // than looping over RunOne: it keeps `now` in a register and hoists the
  // backend branch out of the million-iteration loop.
  SimTime RunToCompletion() {
    SimTime last = 0.0;
    if (legacy_) {
      SimTime now = 0.0;
      while (RunOneLegacy(&now)) {
        last = now;
      }
      return last;
    }
    while (!calendar_.empty()) {
      const CalendarEntry entry = calendar_.PopMin();
      floor_ = entry.time;
      floor_armed_ = !calendar_.empty();
      ++dispatched_;
      if (tap_ != nullptr) {
        tap_(tap_ctx_, entry.record, entry.time);
      }
      const HandlerSlot& slot = handlers_[entry.record.handler];
      slot.invoke(slot.ctx, entry.record, entry.time);
      last = entry.time;
    }
    return last;
  }

  bool empty() const { return legacy_ ? heap_.empty() : calendar_.empty(); }
  size_t size() const { return legacy_ ? heap_.size() : calendar_.size(); }

  // Total events dispatched over the loop's lifetime.
  uint64_t dispatched() const { return dispatched_; }
  bool legacy_heap() const { return legacy_; }

 private:
  struct LegacyEntry {
    SimTime time;
    uint64_t order;
    // Kept deliberately closure-shaped (captures record + loop pointer, so
    // it heap-allocates like the old engine): this is the cost model the
    // calendar backend is benchmarked against.
    std::function<void(SimTime)> thunk;
  };
  struct LegacyLater {
    bool operator()(const LegacyEntry& a, const LegacyEntry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.order > b.order;
    }
  };

  uint64_t NextOrder(EventType type) {
    const uint64_t band = type == EventType::kArrival ? 0ull : 1ull;
    return (band << 63) | next_seq_++;
  }

  // Out-of-line legacy-backend paths: deliberately closure-heavy (the old
  // engine's cost model), kept off the inline fast path.
  void PushLegacy(SimTime time, uint64_t order, const EventRecord& record);
  bool RunOneLegacy(SimTime* now);

  // One registered dispatch target: a raw invoker over a boxed callable.
  struct HandlerSlot {
    void (*invoke)(void*, const EventRecord&, SimTime);
    void* ctx;
    std::shared_ptr<void> owner;  // keeps the boxed callable alive
  };

  const bool legacy_;
  CalendarQueue calendar_;
  std::vector<LegacyEntry> heap_;
  std::vector<HandlerSlot> handlers_;
  std::vector<std::function<void()>> calls_;  // PushCall slot pool
  std::vector<uint32_t> free_calls_;
  uint64_t next_seq_ = 0;
  uint64_t dispatched_ = 0;
  // No-past floor: the last dispatched time, armed only while undispatched
  // events remain. Before the first dispatch — and after a full drain, so
  // one loop can serve back-to-back runs — pushes are time-order free.
  SimTime floor_ = 0.0;
  bool floor_armed_ = false;
  TapFn tap_ = nullptr;
  void* tap_ctx_ = nullptr;
};

}  // namespace flo

#endif  // SRC_SIM_EVENT_LOOP_H_
