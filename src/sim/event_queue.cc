#include "src/sim/event_queue.h"

#include <utility>

#include "src/util/check.h"

namespace flo {

void EventQueue::Push(SimTime time, std::function<void()> callback) {
  FLO_CHECK(callback != nullptr);
  heap_.push(Entry{time, next_sequence_++, std::move(callback)});
}

SimTime EventQueue::NextTime() const {
  FLO_CHECK(!heap_.empty());
  return heap_.top().time;
}

std::function<void()> EventQueue::Pop(SimTime* time) {
  FLO_CHECK(!heap_.empty());
  // priority_queue::top() is const; the callback is moved out via const_cast
  // which is safe because the entry is popped immediately after.
  auto& top = const_cast<Entry&>(heap_.top());
  *time = top.time;
  std::function<void()> callback = std::move(top.callback);
  heap_.pop();
  return callback;
}

}  // namespace flo
