#include "src/sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace flo {

void EventQueue::Push(SimTime time, std::function<void()> callback) {
  FLO_CHECK(callback != nullptr);
  heap_.push_back(Entry{time, next_sequence_++, std::move(callback)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

SimTime EventQueue::NextTime() const {
  FLO_CHECK(!heap_.empty());
  return heap_.front().time;
}

std::function<void()> EventQueue::Pop(SimTime* time) {
  FLO_CHECK(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  *time = entry.time;
  return std::move(entry.callback);
}

}  // namespace flo
