// Time-ordered event queue: the heart of the discrete-event simulator.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace flo {

// Simulated time in microseconds. Microseconds are the natural unit here:
// kernel launch overheads are ~5 us and end-to-end runs are ~1e6 us, so
// doubles keep full precision across the whole range.
using SimTime = double;

// FIFO-stable priority queue of (time, callback). Events scheduled for the
// same time fire in insertion order, which makes simulations deterministic.
class EventQueue {
 public:
  void Push(SimTime time, std::function<void()> callback);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Time of the earliest pending event. Requires !empty().
  SimTime NextTime() const;

  // Pops and returns the earliest event's callback. Requires !empty().
  std::function<void()> Pop(SimTime* time);

 private:
  struct Entry {
    SimTime time;
    uint64_t sequence;
    std::function<void()> callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.sequence > b.sequence;
    }
  };

  // A plain vector managed with std::push_heap/std::pop_heap rather than
  // std::priority_queue: pop_heap moves the top to back(), which lets Pop
  // move the callback out without the const_cast that priority_queue::top()
  // (const reference only) used to force.
  std::vector<Entry> heap_;
  uint64_t next_sequence_ = 0;
};

}  // namespace flo

#endif  // SRC_SIM_EVENT_QUEUE_H_
