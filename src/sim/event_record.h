// Typed, allocation-free event records for the serving-scale event loop.
//
// The original simulator core dispatched every event through a heap-allocated
// std::function closure. At millions of events that allocation (plus the
// capture copies) dominates the hot path, so the serving loop now schedules
// small POD records and dispatches them through pre-registered handlers.
#ifndef SRC_SIM_EVENT_RECORD_H_
#define SRC_SIM_EVENT_RECORD_H_

#include <cstdint>

namespace flo {

// Tag for the tagged-record dispatch. kArrival is special: arrivals sort
// ahead of every other event type at equal timestamps (see EventLoop).
enum class EventType : uint8_t {
  kGeneric = 0,
  kArrival,
  kBatchFinished,
  kTuningFinished,
  kAutoscaleCheck,
  // Fault plane (src/fault + src/cluster): a scheduled injection firing,
  // a requeued request re-entering the router, a failed replica's health
  // restoring, the hang-detection deadline, and a backoff-retry wake-up
  // for an aborted cold tune.
  kFaultInject,
  kRequeue,
  kHealthRestore,
  kHangDetect,
  kRetryKick,
  // Fleet scheduler (src/sched): the periodic preemptive-requeue scan
  // pulling not-yet-dispatched work off draining/straggling/overloaded
  // replicas back through the router.
  kSchedCheck,
};

// One scheduled event. The payload is deliberately tiny: a canonical key
// (plan key, request id, ...), the registered handler to dispatch to, a
// pool slot for handlers that park state in an object pool, and the replica
// the event belongs to. Copied by value everywhere; never heap-allocated.
struct EventRecord {
  uint64_t key = 0;
  uint32_t handler = 0;
  uint32_t slot = 0;
  int32_t replica = -1;
  EventType type = EventType::kGeneric;
};

}  // namespace flo

#endif  // SRC_SIM_EVENT_RECORD_H_
