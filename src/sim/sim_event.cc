#include "src/sim/sim_event.h"

#include <utility>

#include "src/util/check.h"

namespace flo {

void SimEvent::Fire(Simulator& sim) {
  FLO_CHECK(!fired_) << "SimEvent fired twice";
  fired_ = true;
  fire_time_ = sim.Now();
  std::vector<std::function<void()>> waiters = std::move(waiters_);
  waiters_.clear();
  for (auto& fn : waiters) {
    fn();
  }
}

void SimEvent::OnFired(std::function<void()> fn) {
  FLO_CHECK(fn != nullptr);
  if (fired_) {
    fn();
    return;
  }
  waiters_.push_back(std::move(fn));
}

void SimEvent::RecordOn(Stream& stream) {
  stream.Enqueue("event_record", [this](Simulator& sim, Stream::DoneFn done) {
    Fire(sim);
    done();
  });
}

void SimEvent::WaitOn(Stream& stream) {
  stream.Enqueue("event_wait", [this](Simulator&, Stream::DoneFn done) {
    OnFired([done = std::move(done)]() { done(); });
  });
}

}  // namespace flo
