// cudaEvent-like synchronization primitive for cross-stream dependencies.
#ifndef SRC_SIM_SIM_EVENT_H_
#define SRC_SIM_SIM_EVENT_H_

#include <functional>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/stream.h"

namespace flo {

// One-shot event. Record it on a producing stream; Wait on consuming
// streams. A stream waiting on an unfired event stalls until Fire().
class SimEvent {
 public:
  SimEvent() = default;
  SimEvent(const SimEvent&) = delete;
  SimEvent& operator=(const SimEvent&) = delete;

  bool fired() const { return fired_; }
  SimTime fire_time() const { return fire_time_; }

  // Marks the event fired at the simulator's current time and releases all
  // waiters. Firing twice is a programming error.
  void Fire(Simulator& sim);

  // Invokes `fn` immediately if already fired, otherwise when fired.
  void OnFired(std::function<void()> fn);

  // Enqueues a record task: the event fires once all prior work on `stream`
  // has completed.
  void RecordOn(Stream& stream);

  // Enqueues a wait task: subsequent work on `stream` holds until fired.
  void WaitOn(Stream& stream);

 private:
  bool fired_ = false;
  SimTime fire_time_ = 0.0;
  std::vector<std::function<void()>> waiters_;
};

}  // namespace flo

#endif  // SRC_SIM_SIM_EVENT_H_
