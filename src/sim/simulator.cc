#include "src/sim/simulator.h"

#include <utility>

#include "src/util/check.h"

namespace flo {

void Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  FLO_CHECK_GE(delay, 0.0) << "events cannot be scheduled in the past";
  queue_.Push(now_ + delay, std::move(fn));
}

void Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  FLO_CHECK_GE(t, now_) << "events cannot be scheduled in the past";
  queue_.Push(t, std::move(fn));
}

SimTime Simulator::Run() {
  while (Step()) {
  }
  return now_;
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  SimTime t = 0.0;
  std::function<void()> fn = queue_.Pop(&t);
  FLO_CHECK_GE(t, now_);
  now_ = t;
  fn();
  return true;
}

}  // namespace flo
