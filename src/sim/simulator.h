// Single-threaded discrete-event simulator with a monotonically advancing
// clock. Devices, streams and kernels are layered on top (see stream.h).
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <functional>

#include "src/sim/event_queue.h"

namespace flo {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run `delay` microseconds from now. Negative delays are
  // a programming error.
  void Schedule(SimTime delay, std::function<void()> fn);

  // Schedules `fn` at absolute time `t >= Now()`.
  void ScheduleAt(SimTime t, std::function<void()> fn);

  // Runs events until the queue drains. Returns the final clock value.
  SimTime Run();

  // Executes the single earliest event; returns false if none are pending.
  bool Step();

  size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
};

}  // namespace flo

#endif  // SRC_SIM_SIMULATOR_H_
