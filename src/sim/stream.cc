#include "src/sim/stream.h"

#include <utility>

#include "src/util/check.h"

namespace flo {

Stream::Stream(Simulator* sim, Device* device, std::string name)
    : sim_(sim), device_(device), name_(std::move(name)) {
  FLO_CHECK(sim != nullptr);
  FLO_CHECK(device != nullptr);
}

void Stream::Enqueue(std::string name, StartFn start) {
  FLO_CHECK(start != nullptr);
  pending_.push_back(Pending{std::move(name), std::move(start)});
  MaybeStartNext();
}

void Stream::EnqueueTimed(std::string name, SimTime duration) {
  EnqueueTimed(std::move(name), duration, nullptr);
}

void Stream::EnqueueTimed(std::string name, SimTime duration, std::function<void()> on_complete) {
  FLO_CHECK_GE(duration, 0.0);
  Enqueue(std::move(name),
          [duration, on_complete = std::move(on_complete)](Simulator& sim, DoneFn done) {
            sim.Schedule(duration, [done = std::move(done), on_complete]() {
              if (on_complete) {
                on_complete();
              }
              done();
            });
          });
}

void Stream::EnqueueDeferred(std::string name, std::function<SimTime()> duration_fn,
                             std::function<void()> on_start, std::function<void()> on_complete) {
  FLO_CHECK(duration_fn != nullptr);
  Enqueue(std::move(name), [duration_fn = std::move(duration_fn), on_start = std::move(on_start),
                            on_complete = std::move(on_complete)](Simulator& sim, DoneFn done) {
    if (on_start) {
      on_start();
    }
    const SimTime duration = duration_fn();
    FLO_CHECK_GE(duration, 0.0);
    sim.Schedule(duration, [done = std::move(done), on_complete]() {
      if (on_complete) {
        on_complete();
      }
      done();
    });
  });
}

void Stream::MaybeStartNext() {
  if (running_ || pending_.empty()) {
    return;
  }
  running_ = true;
  Pending task = std::move(pending_.front());
  pending_.pop_front();
  const SimTime start_time = sim_->Now();
  // The task body runs as a fresh event so that enqueueing from within a
  // completion callback cannot recurse arbitrarily deep.
  sim_->Schedule(0.0, [this, task = std::move(task), start_time]() mutable {
    DoneFn done = [this, name = task.name, start_time]() { FinishCurrent(name, start_time); };
    task.start(*sim_, std::move(done));
  });
}

void Stream::FinishCurrent(const std::string& name, SimTime start_time) {
  FLO_CHECK(running_) << "task '" << name << "' completed twice on stream " << name_;
  running_ = false;
  last_completion_ = sim_->Now();
  timeline_.Add(name, start_time, last_completion_);
  MaybeStartNext();
}

}  // namespace flo
