// CUDA-stream-like FIFO work queue on a simulated device.
//
// Tasks start in enqueue order; a task occupies the stream head until its
// completion callback fires (possibly asynchronously, e.g. a signal kernel
// waiting on the counting table). This mirrors the two-stream orchestration
// in the paper's implementation (Sec. 5): GEMM on stream 0, signal + comm
// kernels on stream 1.
#ifndef SRC_SIM_STREAM_H_
#define SRC_SIM_STREAM_H_

#include <deque>
#include <functional>
#include <string>

#include "src/sim/device.h"
#include "src/sim/simulator.h"
#include "src/sim/timeline.h"

namespace flo {

class Stream {
 public:
  // Called exactly once when the task finishes; finishing unblocks the next
  // task in the stream.
  using DoneFn = std::function<void()>;
  // Invoked when the task reaches the stream head. Implementations must
  // eventually invoke `done` (at the then-current simulated time).
  using StartFn = std::function<void(Simulator&, DoneFn)>;

  Stream(Simulator* sim, Device* device, std::string name);
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  // Fully general asynchronous task.
  void Enqueue(std::string name, StartFn start);

  // Task with a fixed duration known at enqueue time (launch overhead is the
  // caller's business; fold it into `duration` if desired).
  void EnqueueTimed(std::string name, SimTime duration);

  // Timed task with a completion hook (runs at completion time).
  void EnqueueTimed(std::string name, SimTime duration, std::function<void()> on_complete);

  // Timed task whose duration is computed when it starts (so it can observe
  // current device occupancy).
  void EnqueueDeferred(std::string name, std::function<SimTime()> duration_fn,
                       std::function<void()> on_start, std::function<void()> on_complete);

  Device* device() const { return device_; }
  const std::string& name() const { return name_; }
  bool idle() const { return !running_ && pending_.empty(); }

  // Time the most recent task completed (0 if none yet).
  SimTime last_completion_time() const { return last_completion_; }

  // Recorded spans of every completed task, in completion order.
  const Timeline& timeline() const { return timeline_; }

 private:
  struct Pending {
    std::string name;
    StartFn start;
  };

  void MaybeStartNext();
  void FinishCurrent(const std::string& name, SimTime start_time);

  Simulator* sim_;
  Device* device_;
  std::string name_;
  std::deque<Pending> pending_;
  bool running_ = false;
  SimTime last_completion_ = 0.0;
  Timeline timeline_;
};

}  // namespace flo

#endif  // SRC_SIM_STREAM_H_
