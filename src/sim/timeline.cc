#include "src/sim/timeline.h"

#include <algorithm>

#include "src/util/check.h"

namespace flo {

void Timeline::Add(std::string name, SimTime start, SimTime end) {
  FLO_CHECK_LE(start, end);
  spans_.push_back(TaskSpan{std::move(name), start, end});
}

SimTime Timeline::BusyTime() const {
  SimTime busy = 0.0;
  for (const auto& span : spans_) {
    busy += span.end - span.start;
  }
  return busy;
}

SimTime Timeline::EndTime() const {
  SimTime end = 0.0;
  for (const auto& span : spans_) {
    end = std::max(end, span.end);
  }
  return end;
}

const TaskSpan* Timeline::FindFirst(const std::string& substr) const {
  for (const auto& span : spans_) {
    if (span.name.find(substr) != std::string::npos) {
      return &span;
    }
  }
  return nullptr;
}

}  // namespace flo
