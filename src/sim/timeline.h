// Record of executed task spans, used by tests and the wave-pattern bench
// (Fig. 3) to inspect what ran when.
#ifndef SRC_SIM_TIMELINE_H_
#define SRC_SIM_TIMELINE_H_

#include <string>
#include <vector>

#include "src/sim/event_queue.h"

namespace flo {

struct TaskSpan {
  std::string name;
  SimTime start = 0.0;
  SimTime end = 0.0;
};

class Timeline {
 public:
  void Add(std::string name, SimTime start, SimTime end);

  const std::vector<TaskSpan>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }

  // Total busy time (sum of span durations; spans on one stream never
  // overlap so this is also the union length).
  SimTime BusyTime() const;

  // Last end time across spans (0 when empty).
  SimTime EndTime() const;

  // First span whose name contains `substr`; returns nullptr if none.
  const TaskSpan* FindFirst(const std::string& substr) const;

 private:
  std::vector<TaskSpan> spans_;
};

}  // namespace flo

#endif  // SRC_SIM_TIMELINE_H_
