#include "src/sim/trace_export.h"

#include <fstream>

#include "src/util/check.h"
#include "src/util/table.h"

namespace flo {

std::string EscapeJsonString(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

TraceArg TraceArg::Num(std::string key, double value) {
  return TraceArg{std::move(key), FormatDoubleExact(value)};
}

TraceArg TraceArg::Int(std::string key, int64_t value) {
  return TraceArg{std::move(key), std::to_string(value)};
}

TraceArg TraceArg::Str(std::string key, const std::string& value) {
  return TraceArg{std::move(key), "\"" + EscapeJsonString(value) + "\""};
}

TraceArg TraceArg::Bool(std::string key, bool value) {
  return TraceArg{std::move(key), value ? "true" : "false"};
}

ChromeTraceBuilder::ChromeTraceBuilder() = default;

std::ostringstream& ChromeTraceBuilder::Begin(const char* ph, int64_t pid,
                                              const std::string& name, double ts_us) {
  if (events_ > 0) {
    out_ << ",";
  }
  ++events_;
  out_ << "{\"name\":\"" << EscapeJsonString(name) << "\",\"ph\":\"" << ph
       << "\",\"pid\":" << pid << ",\"ts\":" << FormatDoubleExact(ts_us);
  return out_;
}

void ChromeTraceBuilder::AppendArgs(const std::vector<TraceArg>& args) {
  if (args.empty()) {
    return;
  }
  out_ << ",\"args\":{";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) {
      out_ << ",";
    }
    out_ << "\"" << EscapeJsonString(args[i].key) << "\":" << args[i].value;
  }
  out_ << "}";
}

void ChromeTraceBuilder::ProcessName(int64_t pid, const std::string& name) {
  Begin("M", pid, "process_name", 0.0);
  out_ << ",\"args\":{\"name\":\"" << EscapeJsonString(name) << "\"}}";
}

void ChromeTraceBuilder::ThreadName(int64_t pid, int64_t tid, const std::string& name) {
  Begin("M", pid, "thread_name", 0.0);
  out_ << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << EscapeJsonString(name) << "\"}}";
}

void ChromeTraceBuilder::Complete(int64_t pid, int64_t tid, const std::string& name,
                                  double ts_us, double dur_us,
                                  const std::vector<TraceArg>& args) {
  Begin("X", pid, name, ts_us);
  out_ << ",\"dur\":" << FormatDoubleExact(dur_us) << ",\"tid\":" << tid;
  AppendArgs(args);
  out_ << "}";
}

void ChromeTraceBuilder::AsyncBegin(int64_t pid, const std::string& category, uint64_t id,
                                    const std::string& name, double ts_us,
                                    const std::vector<TraceArg>& args) {
  Begin("b", pid, name, ts_us);
  out_ << ",\"cat\":\"" << EscapeJsonString(category) << "\",\"id\":\"" << id << "\"";
  AppendArgs(args);
  out_ << "}";
}

void ChromeTraceBuilder::AsyncEnd(int64_t pid, const std::string& category, uint64_t id,
                                  const std::string& name, double ts_us) {
  Begin("e", pid, name, ts_us);
  out_ << ",\"cat\":\"" << EscapeJsonString(category) << "\",\"id\":\"" << id << "\"}";
}

void ChromeTraceBuilder::Instant(int64_t pid, int64_t tid, const std::string& name,
                                 double ts_us, const std::vector<TraceArg>& args) {
  Begin("i", pid, name, ts_us);
  out_ << ",\"tid\":" << tid << ",\"s\":\"p\"";
  AppendArgs(args);
  out_ << "}";
}

std::string ChromeTraceBuilder::Json() const {
  return "{\"traceEvents\":[" + out_.str() + "]}";
}

bool ChromeTraceBuilder::WriteFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << Json();
  return static_cast<bool>(file);
}

std::string ChromeTraceJson(const std::vector<TraceTrack>& tracks) {
  ChromeTraceBuilder builder;
  for (size_t track = 0; track < tracks.size(); ++track) {
    FLO_CHECK(tracks[track].timeline != nullptr);
    builder.ThreadName(0, static_cast<int64_t>(track), tracks[track].name);
    for (const TaskSpan& span : tracks[track].timeline->spans()) {
      builder.Complete(0, static_cast<int64_t>(track), span.name, span.start,
                       span.end - span.start);
    }
  }
  return builder.Json();
}

bool WriteChromeTrace(const std::vector<TraceTrack>& tracks, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << ChromeTraceJson(tracks);
  return static_cast<bool>(file);
}

}  // namespace flo
