#include "src/sim/trace_export.h"

#include <fstream>
#include <sstream>

#include "src/util/check.h"

namespace flo {
namespace {

std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string ChromeTraceJson(const std::vector<TraceTrack>& tracks) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (size_t track = 0; track < tracks.size(); ++track) {
    FLO_CHECK(tracks[track].timeline != nullptr);
    // Thread-name metadata so the viewer labels each track.
    if (!first) {
      out << ",";
    }
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << track
        << ",\"args\":{\"name\":\"" << EscapeJson(tracks[track].name) << "\"}}";
    for (const TaskSpan& span : tracks[track].timeline->spans()) {
      out << ",{\"name\":\"" << EscapeJson(span.name) << "\",\"ph\":\"X\",\"pid\":0,\"tid\":"
          << track << ",\"ts\":" << span.start << ",\"dur\":" << (span.end - span.start) << "}";
    }
  }
  out << "]}";
  return out.str();
}

bool WriteChromeTrace(const std::vector<TraceTrack>& tracks, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << ChromeTraceJson(tracks);
  return static_cast<bool>(file);
}

}  // namespace flo
