// Chrome-trace (about://tracing, Perfetto) export of simulated timelines.
//
// Every span becomes a complete ("X") event; tracks are (pid=0,
// tid=track index). Load the emitted JSON in Perfetto to see the GEMM
// waves, signal kernels and collectives interleave exactly as in the
// paper's Fig. 5 timeline.
#ifndef SRC_SIM_TRACE_EXPORT_H_
#define SRC_SIM_TRACE_EXPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "src/sim/timeline.h"

namespace flo {

struct TraceTrack {
  std::string name;
  const Timeline* timeline = nullptr;
};

// Serializes tracks into Chrome trace-event JSON (the "traceEvents" array
// format). Timestamps are microseconds, matching SimTime.
std::string ChromeTraceJson(const std::vector<TraceTrack>& tracks);

// Writes the JSON to a file; returns false on I/O failure.
bool WriteChromeTrace(const std::vector<TraceTrack>& tracks, const std::string& path);

}  // namespace flo

#endif  // SRC_SIM_TRACE_EXPORT_H_
