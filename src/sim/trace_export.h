// Chrome-trace (about://tracing, Perfetto) export of simulated timelines.
//
// Two layers:
//  - ChromeTraceBuilder: an incremental emitter of the Chrome trace-event
//    JSON array format (complete "X" spans, nestable async "b"/"e" pairs,
//    instant "i" events, process/thread metadata). The observability plane
//    (src/obs) uses it to export request-lifecycle spans for a whole
//    serving fleet; timestamps are microseconds, matching SimTime, and are
//    formatted with FormatDoubleExact so identical simulations produce
//    byte-identical files.
//  - ChromeTraceJson/WriteChromeTrace: the original per-Timeline export
//    (every TaskSpan becomes a complete event; tracks are (pid=0, tid=track
//    index)), now built on the builder. Load the emitted JSON in Perfetto
//    to see the GEMM waves, signal kernels and collectives interleave
//    exactly as in the paper's Fig. 5 timeline.
#ifndef SRC_SIM_TRACE_EXPORT_H_
#define SRC_SIM_TRACE_EXPORT_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/timeline.h"

namespace flo {

// One "args" entry for a trace event. `value` is raw JSON (a bare number,
// "true", or an already-quoted string) so numeric args stay numeric in the
// viewer.
struct TraceArg {
  std::string key;
  std::string value;

  // Convenience constructors for the common value shapes.
  static TraceArg Num(std::string key, double value);
  static TraceArg Int(std::string key, int64_t value);
  static TraceArg Str(std::string key, const std::string& value);
  static TraceArg Bool(std::string key, bool value);
};

class ChromeTraceBuilder {
 public:
  ChromeTraceBuilder();

  // Metadata: names shown by the viewer for a process / thread track.
  void ProcessName(int64_t pid, const std::string& name);
  void ThreadName(int64_t pid, int64_t tid, const std::string& name);

  // Complete event ("X"): a span with an explicit duration.
  void Complete(int64_t pid, int64_t tid, const std::string& name, double ts_us,
                double dur_us, const std::vector<TraceArg>& args = {});

  // Nestable async pair ("b"/"e"): spans that may overlap others on the
  // same process; the viewer groups them by (category, id) and nests
  // same-id pairs.
  void AsyncBegin(int64_t pid, const std::string& category, uint64_t id,
                  const std::string& name, double ts_us,
                  const std::vector<TraceArg>& args = {});
  void AsyncEnd(int64_t pid, const std::string& category, uint64_t id,
                const std::string& name, double ts_us);

  // Instant event ("i", process scope).
  void Instant(int64_t pid, int64_t tid, const std::string& name, double ts_us,
               const std::vector<TraceArg>& args = {});

  // Serializes to {"traceEvents":[...]}. The builder may keep being
  // appended to afterwards.
  std::string Json() const;
  // Writes Json() to a file; returns false on I/O failure.
  bool WriteFile(const std::string& path) const;

  size_t event_count() const { return events_; }

 private:
  // Opens one event object with the shared fields and returns the stream.
  std::ostringstream& Begin(const char* ph, int64_t pid, const std::string& name,
                            double ts_us);
  void AppendArgs(const std::vector<TraceArg>& args);

  std::ostringstream out_;
  size_t events_ = 0;
};

// Escapes a string for embedding inside a JSON string literal.
std::string EscapeJsonString(const std::string& text);

struct TraceTrack {
  std::string name;
  const Timeline* timeline = nullptr;
};

// Serializes tracks into Chrome trace-event JSON (the "traceEvents" array
// format). Timestamps are microseconds, matching SimTime.
std::string ChromeTraceJson(const std::vector<TraceTrack>& tracks);

// Writes the JSON to a file; returns false on I/O failure.
bool WriteChromeTrace(const std::vector<TraceTrack>& tracks, const std::string& path);

}  // namespace flo

#endif  // SRC_SIM_TRACE_EXPORT_H_
