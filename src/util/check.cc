#include "src/util/check.h"

#include <cstdio>
#include <cstdlib>

namespace flo {

void CheckFailed(const char* file, int line, const char* expr, const std::string& message) {
  std::fprintf(stderr, "FLO_CHECK failed at %s:%d: %s %s\n", file, line, expr, message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace flo
