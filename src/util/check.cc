#include "src/util/check.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace flo {
namespace {

struct DumpEntry {
  int handle = 0;
  CheckDumpFn fn = nullptr;
  void* ctx = nullptr;
};

std::mutex& DumpMutex() {
  static std::mutex mu;
  return mu;
}

std::vector<DumpEntry>& Dumps() {
  static std::vector<DumpEntry> dumps;
  return dumps;
}

int g_next_handle = 1;

// A dump that itself trips a check must not recurse into the dump list.
thread_local bool g_dumping = false;

}  // namespace

int AddCheckFailureDump(CheckDumpFn fn, void* ctx) {
  std::lock_guard<std::mutex> lock(DumpMutex());
  const int handle = g_next_handle++;
  Dumps().push_back(DumpEntry{handle, fn, ctx});
  return handle;
}

void RemoveCheckFailureDump(int handle) {
  std::lock_guard<std::mutex> lock(DumpMutex());
  std::vector<DumpEntry>& dumps = Dumps();
  for (size_t i = 0; i < dumps.size(); ++i) {
    if (dumps[i].handle == handle) {
      dumps.erase(dumps.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

void CheckFailed(const char* file, int line, const char* expr, const std::string& message) {
  std::fprintf(stderr, "FLO_CHECK failed at %s:%d: %s %s\n", file, line, expr, message.c_str());
  std::fflush(stderr);
  if (!g_dumping) {
    g_dumping = true;
    // Copy under the lock, run without it: a dump may log (which takes
    // other locks) and must not deadlock against a concurrent register.
    std::vector<DumpEntry> dumps;
    {
      std::lock_guard<std::mutex> lock(DumpMutex());
      dumps = Dumps();
    }
    for (const DumpEntry& dump : dumps) {
      dump.fn(dump.ctx);
    }
    std::fflush(stderr);
  }
  std::abort();
}

}  // namespace flo
