// Assertion macros for invariant checking.
//
// FLO_CHECK aborts on violation in all build types; these guard programmer
// errors and internal invariants, never recoverable runtime conditions.
//
// Post-mortem dumps: components holding useful crash context (e.g. the
// observability flight recorder's last-N event ring) can register a dump
// callback; CheckFailed runs every registered dump after printing the
// failure and before aborting, so the context lands next to the message.
#ifndef SRC_UTIL_CHECK_H_
#define SRC_UTIL_CHECK_H_

#include <sstream>
#include <string>

namespace flo {

// Aborts the process with a formatted message. Never returns.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

// Registers a dump callback run by CheckFailed (after the failure message,
// before abort). Returns a handle for RemoveCheckFailureDump. Dumps run in
// registration order; a dump that itself fails a check does not recurse.
using CheckDumpFn = void (*)(void* ctx);
int AddCheckFailureDump(CheckDumpFn fn, void* ctx);
void RemoveCheckFailureDump(int handle);

namespace check_internal {

// Stream-collector so call sites can write FLO_CHECK(x) << "context".
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessage() { CheckFailed(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace check_internal
}  // namespace flo

#define FLO_CHECK(cond)                                                 \
  if (cond) {                                                           \
  } else /* NOLINT */                                                   \
    ::flo::check_internal::CheckMessage(__FILE__, __LINE__, #cond)

#define FLO_CHECK_OP(a, op, b) FLO_CHECK((a)op(b)) << " (" << (a) << " vs " << (b) << ") "
#define FLO_CHECK_EQ(a, b) FLO_CHECK_OP(a, ==, b)
#define FLO_CHECK_NE(a, b) FLO_CHECK_OP(a, !=, b)
#define FLO_CHECK_LT(a, b) FLO_CHECK_OP(a, <, b)
#define FLO_CHECK_LE(a, b) FLO_CHECK_OP(a, <=, b)
#define FLO_CHECK_GT(a, b) FLO_CHECK_OP(a, >, b)
#define FLO_CHECK_GE(a, b) FLO_CHECK_OP(a, >=, b)

#endif  // SRC_UTIL_CHECK_H_
