#include "src/util/csv.h"

#include <fstream>
#include <sstream>

#include "src/util/check.h"

namespace flo {
namespace {

std::string EscapeField(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += "\"";
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {
  FLO_CHECK(!header_.empty());
}

void CsvWriter::AddRow(std::vector<std::string> cells) {
  FLO_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::Render() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        out << ",";
      }
      out << EscapeField(row[c]);
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return out.str();
}

bool CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << Render();
  return static_cast<bool>(file);
}

}  // namespace flo
