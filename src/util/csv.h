// Minimal CSV writer used by bench binaries to dump figure series for
// external plotting.
#ifndef SRC_UTIL_CSV_H_
#define SRC_UTIL_CSV_H_

#include <string>
#include <vector>

namespace flo {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Serializes header + rows; fields containing commas/quotes are quoted.
  std::string Render() const;

  // Writes Render() to the given path; returns false on I/O failure.
  bool WriteFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace flo

#endif  // SRC_UTIL_CSV_H_
