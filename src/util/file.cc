#include "src/util/file.h"

#include <fstream>
#include <sstream>

namespace flo {

std::optional<std::string> ReadFileToString(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) {
    return std::nullopt;
  }
  return buffer.str();
}

}  // namespace flo
