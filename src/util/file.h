// Small file helpers shared by the on-disk text formats (plan stores,
// serving traces, fleet snapshots).
#ifndef SRC_UTIL_FILE_H_
#define SRC_UTIL_FILE_H_

#include <optional>
#include <string>

namespace flo {

// Whole-file read; std::nullopt when the file cannot be opened or read.
std::optional<std::string> ReadFileToString(const std::string& path);

}  // namespace flo

#endif  // SRC_UTIL_FILE_H_
