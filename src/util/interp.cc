#include "src/util/interp.h"

#include <algorithm>

#include "src/util/check.h"

namespace flo {

Curve::Curve(std::vector<std::pair<double, double>> points) : points_(std::move(points)) {
  FLO_CHECK(!points_.empty()) << "a curve needs at least one sample";
  for (size_t i = 1; i < points_.size(); ++i) {
    FLO_CHECK_LT(points_[i - 1].first, points_[i].first) << "curve x must be strictly increasing";
  }
}

double Curve::Eval(double x) const {
  FLO_CHECK(!points_.empty());
  if (x <= points_.front().first) {
    return points_.front().second;
  }
  if (x >= points_.back().first) {
    return points_.back().second;
  }
  // First sample with x_i >= x; the predecessor exists because of the
  // boundary checks above.
  auto it = std::lower_bound(points_.begin(), points_.end(), x,
                             [](const std::pair<double, double>& p, double v) {
                               return p.first < v;
                             });
  auto prev = it - 1;
  const double t = (x - prev->first) / (it->first - prev->first);
  return prev->second + t * (it->second - prev->second);
}

double Curve::Eval(double x, size_t* hint) const {
  FLO_CHECK(!points_.empty());
  if (x <= points_.front().first) {
    return points_.front().second;
  }
  if (x >= points_.back().first) {
    return points_.back().second;
  }
  // Invariant for interior x: points_[i-1].x < x <= points_[i].x. Start
  // from the cached segment; a monotone caller lands on it within a few
  // steps, anything else (stale hint in either direction) falls back to
  // the binary search.
  size_t i = (hint != nullptr) ? *hint : 0;
  if (i < 1 || i >= points_.size()) {
    i = 1;
  }
  bool resolved = false;
  if (points_[i].first < x) {
    for (int step = 0; step < 4; ++step) {
      ++i;  // bounded: x < points_.back().x guarantees a stopper
      if (points_[i].first >= x) {
        resolved = true;
        break;
      }
    }
  } else {
    resolved = points_[i - 1].first < x;
  }
  if (!resolved) {
    auto it = std::lower_bound(points_.begin(), points_.end(), x,
                               [](const std::pair<double, double>& p, double v) {
                                 return p.first < v;
                               });
    i = static_cast<size_t>(it - points_.begin());
  }
  if (hint != nullptr) {
    *hint = i;
  }
  const std::pair<double, double>& prev = points_[i - 1];
  const std::pair<double, double>& next = points_[i];
  const double t = (x - prev.first) / (next.first - prev.first);
  return prev.second + t * (next.second - prev.second);
}

double Curve::min_x() const {
  FLO_CHECK(!points_.empty());
  return points_.front().first;
}

double Curve::max_x() const {
  FLO_CHECK(!points_.empty());
  return points_.back().first;
}

}  // namespace flo
