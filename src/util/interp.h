// Piecewise-linear interpolation over sampled (x, y) curves.
//
// The tuner samples (data size, bandwidth) points offline (paper Sec. 4.2.1)
// and interpolates them at search time (Alg. 1, line 14). This is the shared
// curve type used for that purpose.
#ifndef SRC_UTIL_INTERP_H_
#define SRC_UTIL_INTERP_H_

#include <cstddef>
#include <vector>

namespace flo {

// A sampled curve y = f(x) with x strictly increasing. Queries outside the
// sampled range clamp to the boundary values (flat extrapolation), matching
// how a profiled bandwidth table is used in practice.
class Curve {
 public:
  Curve() = default;

  // `points` must be non-empty with strictly increasing x.
  explicit Curve(std::vector<std::pair<double, double>> points);

  // Linear interpolation at x; clamps outside the sampled range.
  double Eval(double x) const;

  // Monotone-query fast path: `*hint` caches the segment index of the last
  // hit so a caller walking x in increasing order (the tuner's latency
  // table precompute, the legacy evaluator's group sweep) resolves most
  // queries with one or two comparisons instead of a binary search. The
  // caller owns the cursor (initialize to 0); results are bit-identical to
  // Eval for any cursor value — a stale hint only costs the fallback
  // binary search.
  double Eval(double x, size_t* hint) const;

  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }
  const std::vector<std::pair<double, double>>& points() const { return points_; }

  double min_x() const;
  double max_x() const;

 private:
  std::vector<std::pair<double, double>> points_;
};

}  // namespace flo

#endif  // SRC_UTIL_INTERP_H_
