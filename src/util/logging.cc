#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace flo {
namespace {

// Sentinel "unset": the first read applies FLO_LOG_LEVEL, after which the
// value is always a valid LogLevel. Relaxed is enough — the level is a
// filter, not a synchronization point.
constexpr int kLevelUnset = -1;
std::atomic<int> g_level{kLevelUnset};

std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

LogSinkFn g_sink = nullptr;
void* g_sink_ctx = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

LogLevel LevelFromEnv() {
  LogLevel level = LogLevel::kInfo;
  const char* env = std::getenv("FLO_LOG_LEVEL");
  if (env != nullptr && !ParseLogLevel(env, &level)) {
    std::fprintf(stderr, "[WARN logging] unrecognized FLO_LOG_LEVEL '%s'; using info\n", env);
  }
  return level;
}

}  // namespace

bool ParseLogLevel(const std::string& text, LogLevel* level) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower += static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  }
  if (lower == "debug" || lower == "0") {
    *level = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *level = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn" || lower == "2") {
    *level = LogLevel::kWarning;
  } else if (lower == "error" || lower == "3") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level == kLevelUnset) {
    // First use: apply the environment. Racing first readers both compute
    // the same value, so the exchange is idempotent.
    level = static_cast<int>(LevelFromEnv());
    int expected = kLevelUnset;
    g_level.compare_exchange_strong(expected, level, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(level);
}

void SetLogSink(LogSinkFn sink, void* ctx) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  g_sink = sink;
  g_sink_ctx = ctx;
}

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (g_sink != nullptr) {
    g_sink(level, file, line, message, g_sink_ctx);
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), file, line, message.c_str());
}

}  // namespace flo
