#include "src/util/logging.h"

#include <cstdio>

namespace flo {
namespace {

LogLevel g_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), file, line, message.c_str());
}

}  // namespace flo
