// Minimal leveled logger used by the library and tools.
//
// Logging is off by default at DEBUG level; tools flip the level from the
// command line. Not thread-safe by design: the simulator is single-threaded
// and tools log from the main thread only.
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace flo {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted line to stderr.
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

namespace log_internal {

class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() {
    if (level_ >= GetLogLevel()) {
      LogMessage(level_, file_, line_, stream_.str());
    }
  }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace flo

#define FLO_LOG(level) ::flo::log_internal::LogStream(::flo::LogLevel::level, __FILE__, __LINE__)

#endif  // SRC_UTIL_LOGGING_H_
