// Minimal leveled logger used by the library and tools.
//
// The minimum level defaults to kInfo and can be overridden without a
// recompile through the FLO_LOG_LEVEL environment variable (debug / info /
// warning / error, or 0-3), read once at first use; tools can still flip
// it from the command line via SetLogLevel. The level check is a relaxed
// atomic load, so hot-path FLO_LOG(kDebug) statements (e.g. in the tuner's
// search) cost one branch when filtered. Emission is serialized behind a
// mutex — worker pools (parallel pretuning lanes) can log without
// interleaving bytes on stderr — and can be redirected to a custom sink.
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace flo {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Global minimum level; messages below it are dropped. The first
// GetLogLevel (or filtered FLO_LOG) applies FLO_LOG_LEVEL from the
// environment; SetLogLevel overrides it for the rest of the process.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses a level name ("debug", "INFO", "2", ...); returns false and
// leaves *level untouched on unrecognized input.
bool ParseLogLevel(const std::string& text, LogLevel* level);

// Redirects emission. The sink runs under the logging mutex (one message
// at a time); pass nullptr to restore the stderr default.
using LogSinkFn = void (*)(LogLevel level, const char* file, int line,
                           const std::string& message, void* ctx);
void SetLogSink(LogSinkFn sink, void* ctx);

// Emits one formatted line through the current sink. Thread-safe.
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

namespace log_internal {

class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() {
    if (level_ >= GetLogLevel()) {
      LogMessage(level_, file_, line_, stream_.str());
    }
  }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace flo

#define FLO_LOG(level) ::flo::log_internal::LogStream(::flo::LogLevel::level, __FILE__, __LINE__)

#endif  // SRC_UTIL_LOGGING_H_
