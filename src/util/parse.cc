#include "src/util/parse.h"

namespace flo {

std::optional<int> TryParseInt(const std::string& text) {
  try {
    size_t consumed = 0;
    const int value = std::stoi(text, &consumed);
    if (consumed != text.size()) {
      return std::nullopt;
    }
    return value;
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<int64_t> TryParseInt64(const std::string& text) {
  try {
    size_t consumed = 0;
    const long long value = std::stoll(text, &consumed);
    if (consumed != text.size()) {
      return std::nullopt;
    }
    return static_cast<int64_t>(value);
  } catch (...) {
    return std::nullopt;  // includes out-of-range
  }
}

std::optional<uint64_t> TryParseHexU64(const std::string& text) {
  if (text.empty() || text.size() > 16) {
    return std::nullopt;
  }
  uint64_t value = 0;
  for (const char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  return value;
}

std::optional<double> TryParseDouble(const std::string& text) {
  try {
    size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed != text.size()) {
      return std::nullopt;
    }
    return value;
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace flo
