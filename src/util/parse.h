// Strict numeric parsing for on-disk text formats (plan store, serving
// traces): the whole field must be consumed or the parse fails —
// std::stoi/stod stop at the first invalid character and would silently
// accept trailing garbage like "12abc".
#ifndef SRC_UTIL_PARSE_H_
#define SRC_UTIL_PARSE_H_

#include <cstdint>
#include <optional>
#include <string>

namespace flo {

std::optional<int> TryParseInt(const std::string& text);
std::optional<int64_t> TryParseInt64(const std::string& text);
std::optional<double> TryParseDouble(const std::string& text);

// Bare hex digits only (1..16 of them): no sign, no "0x", no whitespace —
// stricter than strtoull, which would wrap "-1" to 0xFFFFFFFFFFFFFFFF.
std::optional<uint64_t> TryParseHexU64(const std::string& text);

}  // namespace flo

#endif  // SRC_UTIL_PARSE_H_
