// Deterministic pseudo-random utilities.
//
// All stochastic behaviour in the simulator (launch-overhead jitter,
// bandwidth-efficiency jitter) must be reproducible: seeds are derived from
// stable hashes of the case configuration so every binary prints identical
// numbers on re-run.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>
#include <type_traits>

namespace flo {

// SplitMix64: tiny, well-distributed, and fully deterministic across
// platforms (unlike std::mt19937 seeded via seed_seq).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t NextU64() {
    state_ += 0x9E3779B97f4A7C15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [0, n).
  uint64_t NextBelow(uint64_t n) { return n == 0 ? 0 : NextU64() % n; }

 private:
  uint64_t state_;
};

// FNV-1a hash for deriving stable seeds from configuration tuples.
class StableHash {
 public:
  StableHash() = default;

  template <typename T>
    requires std::is_integral_v<T>
  StableHash& Mix(T value) {
    const uint64_t v = static_cast<uint64_t>(static_cast<int64_t>(value));
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xFFu;
      hash_ *= 0x100000001B3ull;
    }
    return *this;
  }

  StableHash& Mix(const char* text) {
    for (const char* p = text; *p != '\0'; ++p) {
      hash_ ^= static_cast<uint8_t>(*p);
      hash_ *= 0x100000001B3ull;
    }
    return *this;
  }

  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 0xCBF29CE484222325ull;
};

}  // namespace flo

#endif  // SRC_UTIL_RNG_H_
