#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace flo {

double PercentileOfSorted(const std::vector<double>& values, double p) {
  FLO_CHECK_GE(p, 0.0);
  FLO_CHECK_LE(p, 100.0);
  if (values.size() == 1) {
    return values[0];
  }
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

Summary Summarize(const std::vector<double>& values) {
  FLO_CHECK(!values.empty());
  Summary s;
  s.count = values.size();
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) {
    sq += (v - s.mean) * (v - s.mean);
  }
  s.stddev = values.size() > 1 ? std::sqrt(sq / static_cast<double>(values.size() - 1)) : 0.0;
  // One sorted copy serves min, max, and median.
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = PercentileOfSorted(sorted, 50.0);
  return s;
}

double GeoMean(const std::vector<double>& values) {
  FLO_CHECK(!values.empty());
  double log_sum = 0.0;
  for (double v : values) {
    FLO_CHECK_GT(v, 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double Percentile(std::vector<double> values, double p) {
  FLO_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  return PercentileOfSorted(values, p);
}

PercentileSummary SummarizePercentiles(std::vector<double> values) {
  FLO_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  PercentileSummary s;
  s.p50 = PercentileOfSorted(values, 50.0);
  s.p90 = PercentileOfSorted(values, 90.0);
  s.p95 = PercentileOfSorted(values, 95.0);
  s.p99 = PercentileOfSorted(values, 99.0);
  return s;
}

std::vector<double> EmpiricalCdf(const std::vector<double>& samples,
                                 const std::vector<double>& thresholds) {
  FLO_CHECK(!samples.empty());
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> cdf;
  cdf.reserve(thresholds.size());
  for (double t : thresholds) {
    auto it = std::upper_bound(sorted.begin(), sorted.end(), t);
    cdf.push_back(static_cast<double>(it - sorted.begin()) / static_cast<double>(sorted.size()));
  }
  return cdf;
}

}  // namespace flo
