// Summary statistics and empirical CDFs for benchmark reporting.
#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace flo {

struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double stddev = 0.0;
};

// Computes the summary of a non-empty sample set.
Summary Summarize(const std::vector<double>& values);

// Geometric mean of strictly positive values.
double GeoMean(const std::vector<double>& values);

// p in [0, 100]; linear interpolation between order statistics.
double Percentile(std::vector<double> values, double p);

// Same interpolation over an already-sorted non-empty sample set — the
// single percentile definition every consumer (benches, serving stats,
// obs histograms) shares. On an odd-sized sample, p=50 is the exact
// middle element.
double PercentileOfSorted(const std::vector<double>& values, double p);

// The serving-tail percentiles (SLO reporting), computed with one sort.
struct PercentileSummary {
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// Requires a non-empty sample set; same interpolation as Percentile.
PercentileSummary SummarizePercentiles(std::vector<double> values);

// Empirical CDF evaluated at the given thresholds: fraction of samples <= t.
std::vector<double> EmpiricalCdf(const std::vector<double>& samples,
                                 const std::vector<double>& thresholds);

}  // namespace flo

#endif  // SRC_UTIL_STATS_H_
