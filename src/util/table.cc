#include "src/util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/util/check.h"

namespace flo {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  FLO_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  FLO_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << "\n";
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string FormatDouble(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string FormatDoubleExact(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string FormatBytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  const int decimals = unit == 0 ? 0 : (bytes < 10 ? 2 : 1);
  return FormatDouble(bytes, decimals) + " " + units[unit];
}

}  // namespace flo
