// ASCII table rendering so every bench binary prints the same rows/series
// the paper's tables and figures report.
#ifndef SRC_UTIL_TABLE_H_
#define SRC_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace flo {

// Column-aligned ASCII table. Usage:
//   Table t({"M", "N", "K", "speedup"});
//   t.AddRow({"4096", "8192", "7168", "1.42"});
//   std::cout << t.Render();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Renders with a header underline; every cell padded to column width.
  std::string Render() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given number of decimals (locale-independent).
std::string FormatDouble(double value, int decimals);

// %.17g: round-trips a double exactly through strtod. The convention for
// every on-disk text format (plan store, serving traces).
std::string FormatDoubleExact(double value);

// Formats a byte count with binary units ("1.5 MiB").
std::string FormatBytes(double bytes);

}  // namespace flo

#endif  // SRC_UTIL_TABLE_H_
