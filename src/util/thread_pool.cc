#include "src/util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace flo {

ThreadPool::ThreadPool(int threads) {
  const int count = std::max(1, threads);
  workers_.reserve(count);
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_exception_ != nullptr) {
    std::exception_ptr exception = std::exchange(first_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(exception);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with a drained queue
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    std::exception_ptr thrown;
    try {
      task();
    } catch (...) {
      // Letting it escape the thread entry would std::terminate; capture
      // the first failure for WaitIdle to rethrow instead.
      thrown = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (thrown != nullptr && first_exception_ == nullptr) {
        first_exception_ = thrown;
      }
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

}  // namespace flo
