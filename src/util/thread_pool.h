// A small fixed-size worker pool for cold-path parallelism.
//
// The tuner's predictive searches are embarrassingly parallel across
// distinct (shape, primitive) keys: batch cold sweeps and the serving
// loop's cold-tuning lane submit one search per key and wait for the set.
// This pool is deliberately minimal — fixed thread count, FIFO queue,
// blocking WaitIdle — because tuning parallelism is coarse (milliseconds
// per task) and determinism matters more than scheduling cleverness.
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flo {

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);
  // Drains the queue, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task. Tasks must not submit further tasks to the same pool
  // from within WaitIdle-observed work (no nested fan-out).
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing. If any task
  // threw, rethrows the first captured exception here (matching what the
  // caller would have seen running the tasks sequentially).
  void WaitIdle();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_exception_;
};

}  // namespace flo

#endif  // SRC_UTIL_THREAD_POOL_H_
