// Autoscaler decision-table tests plus cluster-level regressions for the
// observation path feeding it.
//
// The unit tests pin Evaluate as a decision table: reactive pressure,
// drain hysteresis, the zero-accepting freeze, and the predictive tier
// (pre-spawn threshold, headroom scaling, reactive precedence, pre-drain
// guard, calm-streak interactions). The cluster tests pin the three
// observation-path invariants end to end:
//  - a full-fleet outage must neither advance nor reset the calm streak
//    (no drain the moment health restores);
//  - an interval that completes nothing while work is pending carries the
//    previous window's p99 forward (a stalled fleet is not a calm fleet);
//  - pending_requests and accepting_replicas cover the SAME replica set,
//    so a hung replica's parked backlog cannot masquerade as pressure on
//    the healthy survivors.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cluster/autoscaler.h"
#include "src/cluster/serving_cluster.h"
#include "src/core/overlap_engine.h"
#include "src/fault/fault_schedule.h"
#include "src/sched/fleet_scheduler.h"
#include "src/serve/request_source.h"
#include "src/serve/serve_loop.h"
#include "src/serve/tenant_registry.h"

namespace flo {
namespace {

// --- Evaluate decision table: reactive tier ---------------------------------

TEST(AutoscalerDecisionTest, ZeroAcceptingObservationFreezesTheCalmStreak) {
  AutoscaleConfig config;
  config.enabled = true;
  config.min_replicas = 1;
  config.max_replicas = 4;
  config.drain_after_calm_checks = 3;
  Autoscaler scaler(config);
  // One calm check banks progress...
  EXPECT_EQ(scaler.Evaluate({3, 0, 0.0}), Autoscaler::Decision::kHold);
  // ...then every replica crashes. The outage observation holds without
  // touching the counter: it is not calm (pending work may be parked on
  // the dead fleet), and it is not busy either — pressure is unknowable
  // while nothing accepts. Even a deep backlog cannot spawn here.
  EXPECT_EQ(scaler.Evaluate({0, 50, 0.0}), Autoscaler::Decision::kHold);
  EXPECT_EQ(scaler.Evaluate({0, 0, 0.0}), Autoscaler::Decision::kHold);
  // Health restores: the streak resumes at 2, not 3 (the outage checks
  // did not count as calm), so the drain lands one check later.
  EXPECT_EQ(scaler.Evaluate({3, 0, 0.0}), Autoscaler::Decision::kHold);
  EXPECT_EQ(scaler.Evaluate({3, 0, 0.0}), Autoscaler::Decision::kDrain);
}

// --- Evaluate decision table: predictive tier -------------------------------

AutoscaleConfig PredictiveConfig() {
  AutoscaleConfig config;
  config.enabled = true;
  config.predictive = true;
  config.min_replicas = 1;
  config.max_replicas = 4;
  config.spawn_queue_per_replica = 4.0;
  config.drain_after_calm_checks = 3;
  config.prespawn_headroom = 1.0;
  return config;
}

TEST(AutoscalerDecisionTest, PrespawnFiresWhenPredictedDemandExceedsCapacity) {
  Autoscaler scaler(PredictiveConfig());
  // Queues are empty and the SLO is quiet, but the extrapolated demand
  // (estimate + trend = 130) exceeds what 2 replicas absorb (2 x 50).
  EXPECT_EQ(scaler.Evaluate({2, 0, 0.0, 120.0, 10.0, 50.0}),
            Autoscaler::Decision::kPrespawn);
  // Below the fleet's capacity the estimate is just headroom: hold.
  EXPECT_EQ(scaler.Evaluate({2, 0, 0.0, 80.0, 10.0, 50.0}),
            Autoscaler::Decision::kHold);
  // A collapsing estimate clamps at zero demand, never "negative demand".
  EXPECT_EQ(scaler.Evaluate({2, 0, 0.0, 10.0, -50.0, 50.0}),
            Autoscaler::Decision::kHold);
  // At the replica ceiling the pressure is acknowledged but nothing spawns.
  EXPECT_EQ(scaler.Evaluate({4, 0, 0.0, 500.0, 0.0, 50.0}),
            Autoscaler::Decision::kHold);
  // No capacity estimate yet (no completed work): the tier stays silent.
  EXPECT_EQ(scaler.Evaluate({2, 0, 0.0, 500.0, 0.0, 0.0}),
            Autoscaler::Decision::kHold);
}

TEST(AutoscalerDecisionTest, HeadroomScalesThePrespawnThreshold) {
  AutoscaleConfig config = PredictiveConfig();
  config.prespawn_headroom = 2.0;
  Autoscaler scaler(config);
  // Threshold is replicas x capacity x headroom = 2 x 50 x 2 = 200.
  EXPECT_EQ(scaler.Evaluate({2, 0, 0.0, 150.0, 0.0, 50.0}),
            Autoscaler::Decision::kHold);
  EXPECT_EQ(scaler.Evaluate({2, 0, 0.0, 250.0, 0.0, 50.0}),
            Autoscaler::Decision::kPrespawn);
}

TEST(AutoscalerDecisionTest, ReactivePressureOutranksThePredictiveTier) {
  Autoscaler scaler(PredictiveConfig());
  // Queue pressure and predicted demand both fire: the decision is the
  // reactive kSpawn — the predictive tier composes, never overrides.
  EXPECT_EQ(scaler.Evaluate({1, 50, 0.0, 500.0, 0.0, 10.0}),
            Autoscaler::Decision::kSpawn);
}

TEST(AutoscalerDecisionTest, PredictiveOffIgnoresTheRateFields) {
  AutoscaleConfig config;
  config.enabled = true;
  config.max_replicas = 4;
  config.spawn_queue_per_replica = 4.0;
  config.drain_after_calm_checks = 3;
  Autoscaler reactive(config);
  AutoscaleConfig off = config;
  off.predictive = false;  // the default, spelled out
  Autoscaler with_fields(off);
  // Step for step, a reactive scaler fed zeroed rate fields and a
  // predictive-off scaler fed screaming rate fields decide identically.
  const std::vector<Autoscaler::Observation> sequence = {
      {2, 30, 0.0, 0.0, 0.0, 0.0},  {2, 0, 0.0, 0.0, 0.0, 0.0},
      {2, 0, 0.0, 0.0, 0.0, 0.0},   {2, 0, 0.0, 0.0, 0.0, 0.0},
      {1, 0, 0.0, 0.0, 0.0, 0.0}};
  for (const Autoscaler::Observation& observation : sequence) {
    Autoscaler::Observation loud = observation;
    loud.rate_estimate = 9999.0;
    loud.rate_trend = 9999.0;
    loud.capacity_per_replica = 1.0;
    EXPECT_EQ(with_fields.Evaluate(loud), reactive.Evaluate(observation));
  }
}

TEST(AutoscalerDecisionTest, PreDrainGuardHoldsWhileDemandNeedsTheFleet) {
  AutoscaleConfig config = PredictiveConfig();
  config.drain_after_calm_checks = 2;
  Autoscaler scaler(config);
  // Demand 120 fits 3 replicas (150) but not 2 (100): queues are calm,
  // yet giving a replica back would put the fleet behind the estimate —
  // the guard keeps the calm streak at zero.
  EXPECT_EQ(scaler.Evaluate({3, 0, 0.0, 120.0, 0.0, 50.0}),
            Autoscaler::Decision::kHold);
  EXPECT_EQ(scaler.Evaluate({3, 0, 0.0, 120.0, 0.0, 50.0}),
            Autoscaler::Decision::kHold);
  // Demand decays to 90 <= 2 x 50: calm can accumulate and the drain
  // fires after the full hysteresis window, not instantly.
  EXPECT_EQ(scaler.Evaluate({3, 0, 0.0, 90.0, 0.0, 50.0}),
            Autoscaler::Decision::kHold);
  EXPECT_EQ(scaler.Evaluate({3, 0, 0.0, 90.0, 0.0, 50.0}),
            Autoscaler::Decision::kDrain);
}

TEST(AutoscalerDecisionTest, PrespawnResetsTheCalmStreak) {
  AutoscaleConfig config = PredictiveConfig();
  config.drain_after_calm_checks = 2;
  Autoscaler scaler(config);
  // One calm check banks progress (demand 40 fits the shrunk fleet).
  EXPECT_EQ(scaler.Evaluate({2, 0, 0.0, 40.0, 0.0, 50.0}),
            Autoscaler::Decision::kHold);
  // A pre-spawn is demand forming, not calm: the streak resets.
  EXPECT_EQ(scaler.Evaluate({2, 0, 0.0, 150.0, 0.0, 50.0}),
            Autoscaler::Decision::kPrespawn);
  // Post-spawn calm starts over: hold at 1, drain only at the threshold.
  EXPECT_EQ(scaler.Evaluate({3, 0, 0.0, 40.0, 0.0, 50.0}),
            Autoscaler::Decision::kHold);
  EXPECT_EQ(scaler.Evaluate({3, 0, 0.0, 40.0, 0.0, 50.0}),
            Autoscaler::Decision::kDrain);
}

// --- The rate estimate feeding the predictive tier --------------------------

TEST(AutoscalerDecisionTest, RateEstimateIsPhaseStableAtASteadyRate) {
  // One arrival every 10us for 20 half-lives: the decayed mass converges,
  // and the phase-compensated inversion recovers ~0.1 arrivals/us no
  // matter where inside a half-life the sample lands. (The naive
  // mass / half_life inversion swings by up to 2x with the sample phase.)
  SchedConfig sched;
  sched.share_half_life_us = 100.0;
  const uint32_t tenant = InternTenant("llm");
  const double interval_us = 50.0;  // => ~5 arrivals per interval
  for (const double sample_at : {2003.0, 2057.0, 2099.0}) {
    FleetScheduler scheduler(sched);
    for (double t = 0.0; t < sample_at; t += 10.0) {
      scheduler.ChargeArrival(tenant, t);
    }
    const RateEstimate estimate = scheduler.SampleRate(sample_at, interval_us);
    EXPECT_NEAR(estimate.arrivals_per_interval, 5.0, 0.5) << "at " << sample_at;
  }
  // A ramping rate shows up as a positive trend between samples.
  FleetScheduler ramping(sched);
  for (double t = 0.0; t < 1000.0; t += 20.0) {
    ramping.ChargeArrival(tenant, t);
  }
  const RateEstimate slow = ramping.SampleRate(1000.0, interval_us);
  for (double t = 1000.0; t < 2000.0; t += 5.0) {
    ramping.ChargeArrival(tenant, t);
  }
  const RateEstimate fast = ramping.SampleRate(2000.0, interval_us);
  EXPECT_GT(fast.arrivals_per_interval, slow.arrivals_per_interval);
  EXPECT_GT(fast.trend, 0.0);
}

// --- Cluster-level regressions for the observation path ---------------------

ScenarioSpec SmallSpec(int64_t m) {
  return ScenarioSpec::Overlap(GemmShape{m, 2048, 1024}, CommPrimitive::kAllReduce);
}

ServeRequest At(int64_t id, double arrival_us, const ScenarioSpec& spec) {
  ServeRequest request;
  request.id = id;
  request.tenant = "llm";
  request.arrival_us = arrival_us;
  request.spec = spec;
  return request;
}

FleetReport RunFleet(const ClusterConfig& config, const std::vector<ServeRequest>& trace,
                     const FaultSchedule* schedule = nullptr) {
  ServingCluster fleet(Make4090Cluster(4), config, {}, EngineOptions{.jitter = false});
  if (schedule != nullptr) {
    fleet.SetFaultSchedule(*schedule);
  }
  return fleet.Run(trace);
}

// A crash window that spans several autoscale checkpoints must not turn
// into a drain the moment health restores: outage checks read "calm"
// only if the observation path mistakes zero accepting replicas for an
// idle fleet.
TEST(AutoscalerClusterTest, FullOutageAcrossCheckpointsCausesNoSpuriousDrain) {
  ClusterConfig config;
  config.replicas = 2;
  config.autoscale.enabled = true;
  config.autoscale.min_replicas = 1;
  config.autoscale.max_replicas = 2;
  config.autoscale.check_interval_us = 20000.0;
  config.autoscale.drain_after_calm_checks = 4;
  config.serve.tune_base_us = 0.0;
  config.serve.tune_per_search_us = 0.0;
  // A light warm-up that finishes well before the crash (one calm check
  // banks at the first checkpoint), then silence through the outage, then
  // one tail request after the restore so checkpoints keep evaluating.
  std::vector<ServeRequest> trace;
  for (int i = 0; i < 4; ++i) {
    trace.push_back(At(i, 100.0 * i, SmallSpec(1024)));
  }
  trace.push_back(At(4, 110000.0, SmallSpec(1024)));
  // Both replicas crash at 25ms; the 60ms restart spans checkpoints at
  // 40/60/80ms, restoring before the one at 100ms.
  FaultSchedule outage;
  outage.Add({25000.0, FaultKind::kCrash, 0, 60000.0, 0.0});
  outage.Add({25000.0, FaultKind::kCrash, 1, 60000.0, 0.0});
  const FleetReport report = RunFleet(config, trace, &outage);
  EXPECT_EQ(report.stats.count(), 5u);
  EXPECT_EQ(report.fault.replica_restarts, 2u);
  // The outage checkpoints neither advanced the calm streak (no drain at
  // the first post-restore checkpoint) nor spawned into a dead fleet.
  EXPECT_EQ(report.drains, 0u);
  EXPECT_EQ(report.spawns, 0u);
  EXPECT_EQ(report.peak_replicas, 2);
}

// An interval that completes nothing while requests are pending must not
// read as calm: the cluster carries the previous window's p99 forward,
// so a fleet stalled behind a long cold tune cannot drain mid-stall.
TEST(AutoscalerClusterTest, StalledIntervalCarriesP99ForwardInsteadOfCalm) {
  ClusterConfig config;
  config.replicas = 2;
  config.autoscale.enabled = true;
  config.autoscale.min_replicas = 1;
  config.autoscale.max_replicas = 2;
  config.autoscale.check_interval_us = 4000.0;
  config.autoscale.spawn_queue_per_replica = 8.0;
  config.autoscale.slo_p99_us = 500.0;
  config.autoscale.drain_queue_per_replica = 5.0;
  config.autoscale.drain_after_calm_checks = 2;
  // Inline tuning with a fixed 30ms cost: a cold key parks its requests
  // behind a long executor stall with no completions for many checkpoints.
  config.serve.overlap_tuning = false;
  config.serve.tune_base_us = 30000.0;
  config.serve.tune_per_search_us = 0.0;
  std::vector<ServeRequest> trace;
  // Phase A: a burst whose queue wait blows the 500us SLO once key A's
  // tune finishes — the completion window records a p99 around 30ms.
  for (int i = 0; i < 12; ++i) {
    trace.push_back(At(i, 10.0 * i, SmallSpec(1024)));
  }
  // Phase B: two requests of a second cold key arrive as phase A drains;
  // their 30ms inline tune spans several checkpoints that complete
  // nothing while the pair stays pending.
  trace.push_back(At(12, 31000.0, SmallSpec(1536)));
  trace.push_back(At(13, 31001.0, SmallSpec(1536)));
  const FleetReport report = RunFleet(config, trace);
  EXPECT_EQ(report.stats.count(), 14u);
  // Without the carry, the stalled checkpoints read p99 = 0 (calm) and
  // the two-check hysteresis drains a replica mid-stall. With it, the
  // carried ~30ms p99 keeps the SLO signal hot until work actually moves.
  EXPECT_EQ(report.drains, 0u);
  // At the two-replica ceiling the pressure never materializes a spawn.
  EXPECT_EQ(report.spawns, 0u);
  EXPECT_EQ(report.peak_replicas, 2);
}

// pending_requests and accepting_replicas must cover the same replica
// set: a hung replica's parked backlog is not pressure on the healthy
// survivor, because the survivor cannot serve work it was never given
// (the fault plane requeues it only when hang detection fires).
TEST(AutoscalerClusterTest, HungReplicaBacklogStaysOutOfThePressureSignal) {
  ClusterConfig config;
  config.replicas = 2;
  config.ship_plans = false;  // keep the key warm on replica 0 only
  config.autoscale.enabled = true;
  config.autoscale.min_replicas = 1;
  config.autoscale.max_replicas = 3;
  config.autoscale.check_interval_us = 20000.0;
  config.autoscale.spawn_queue_per_replica = 4.0;
  config.autoscale.drain_after_calm_checks = 100;  // isolate the spawn signal
  config.serve.tune_base_us = 0.0;
  config.serve.tune_per_search_us = 0.0;
  // Detection far beyond the hang window: the backlog never requeues, so
  // it stays parked on the non-accepting replica for the whole fault.
  config.faults.hang_detect_us = 400000.0;
  // Plan-affinity routes the whole same-key burst to replica 0, which
  // hangs mid-burst holding a backlog deeper than the spawn threshold.
  std::vector<ServeRequest> trace;
  for (int i = 0; i < 24; ++i) {
    trace.push_back(At(i, 1000.0 + i, SmallSpec(1024)));
  }
  FaultSchedule hang;
  hang.Add({1050.0, FaultKind::kHang, 0, 150000.0, 0.0});
  const FleetReport report = RunFleet(config, trace, &hang);
  EXPECT_EQ(report.stats.count(), 24u);
  EXPECT_EQ(report.fault.injected_hangs, 1u);
  EXPECT_EQ(report.fault.requests_requeued, 0u);  // the backlog never moved
  // The healthy survivor's own queue is empty: mixing the hung backlog
  // into the numerator would read 20+ pending per accepting replica and
  // spawn a third replica every checkpoint of the hang.
  EXPECT_EQ(report.spawns, 0u);
  EXPECT_EQ(report.prespawns, 0u);
  EXPECT_EQ(report.peak_replicas, 2);
}

}  // namespace
}  // namespace flo
