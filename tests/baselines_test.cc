#include <gtest/gtest.h>

#include "src/baselines/baselines.h"

namespace flo {
namespace {

TEST(BaselinesTest, SupportMatrixMatchesPaperTestbeds) {
  // On the 4090 server (no P2P) only the vanilla decomposition runs
  // (Sec. 6.1.3: FLUX requires P2P; Async-TP requires NVLink).
  Baselines pcie(Make4090Cluster(4));
  EXPECT_FALSE(pcie.Flux(GemmShape{4096, 8192, 8192}, CommPrimitive::kAllReduce).supported);
  EXPECT_FALSE(pcie.AsyncTp(GemmShape{4096, 8192, 8192}, CommPrimitive::kAllReduce).supported);
  EXPECT_FALSE(
      pcie.CublasMp(GemmShape{4096, 8192, 8192}, CommPrimitive::kReduceScatter).supported);
  EXPECT_TRUE(pcie.VanillaDecomposition(GemmShape{4096, 8192, 8192},
                                        CommPrimitive::kAllReduce)
                  .supported);

  Baselines nvlink(MakeA800Cluster(4));
  EXPECT_TRUE(
      nvlink.Flux(GemmShape{4096, 8192, 8192}, CommPrimitive::kReduceScatter).supported);
  EXPECT_TRUE(
      nvlink.AsyncTp(GemmShape{4096, 8192, 8192}, CommPrimitive::kAllReduce).supported);
  EXPECT_TRUE(
      nvlink.CublasMp(GemmShape{4096, 8192, 8192}, CommPrimitive::kReduceScatter).supported);
  // cuBLASMp is RS-only.
  EXPECT_FALSE(
      nvlink.CublasMp(GemmShape{4096, 8192, 8192}, CommPrimitive::kAllReduce).supported);
  // No baseline fuses All-to-All on these testbeds.
  EXPECT_FALSE(nvlink.Flux(GemmShape{4096, 8192, 8192}, CommPrimitive::kAllToAll).supported);
}

TEST(BaselinesTest, DecompositionBeatsNonOverlapOnBalancedShapes) {
  Baselines baselines(Make4090Cluster(4));
  const GemmShape shape{8192, 8192, 8192};
  const double non_overlap = baselines.NonOverlap(shape, CommPrimitive::kAllReduce);
  const auto decomp = baselines.VanillaDecomposition(shape, CommPrimitive::kAllReduce);
  EXPECT_LT(decomp.latency_us, non_overlap);
}

TEST(BaselinesTest, TooManyChunksHurtsDecomposition) {
  // Fragmentation: 16 chunks of a small GEMM pay wave quantization and
  // call overhead (the decomposition weakness of Sec. 1).
  Baselines baselines(Make4090Cluster(4));
  const GemmShape shape{2048, 8192, 8192};
  const auto few = baselines.VanillaDecomposition(shape, CommPrimitive::kAllReduce, 2);
  const auto many = baselines.VanillaDecomposition(shape, CommPrimitive::kAllReduce, 16);
  EXPECT_LT(few.latency_us, many.latency_us);
}

TEST(BaselinesTest, SweepPicksAtLeastAsGoodAsAnyFixedChunking) {
  Baselines baselines(Make4090Cluster(4));
  const GemmShape shape{4096, 8192, 8192};
  const auto best = baselines.VanillaDecomposition(shape, CommPrimitive::kAllReduce);
  for (int chunks : {2, 4, 8, 16}) {
    const auto fixed = baselines.VanillaDecomposition(shape, CommPrimitive::kAllReduce, chunks);
    EXPECT_LE(best.latency_us, fixed.latency_us * 1.0001) << chunks;
  }
}

TEST(BaselinesTest, FluxWinsAtSmallKLosesAtLargeK) {
  // Paper Fig. 11: fusion's memory-access saving dominates when K = 2048;
  // at larger K the saving washes out. We check the *trend*: FLUX's margin
  // over non-overlap shrinks as K grows.
  Baselines baselines(MakeA800Cluster(2));
  const auto margin = [&](int64_t k) {
    const GemmShape shape{16384, 8192, k};
    const double non_overlap = baselines.NonOverlap(shape, CommPrimitive::kReduceScatter);
    const auto flux = baselines.Flux(shape, CommPrimitive::kReduceScatter);
    return non_overlap / flux.latency_us;
  };
  EXPECT_GT(margin(2048), margin(8192));
}

TEST(BaselinesTest, AsyncTpBetweenDecompositionAndFusion) {
  Baselines baselines(MakeA800Cluster(4));
  const GemmShape shape{8192, 8192, 4096};
  const auto decomp = baselines.VanillaDecomposition(shape, CommPrimitive::kReduceScatter);
  const auto async_tp = baselines.AsyncTp(shape, CommPrimitive::kReduceScatter);
  // Copy-engine transfers avoid SM contention: Async-TP should not lose to
  // the vanilla pipeline.
  EXPECT_LE(async_tp.latency_us, decomp.latency_us * 1.05);
}

TEST(BaselinesTest, AllReturnsFourEntries) {
  Baselines baselines(MakeA800Cluster(4));
  const auto all = baselines.All(GemmShape{4096, 8192, 4096}, CommPrimitive::kReduceScatter);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "FLUX");
  EXPECT_EQ(all[1].name, "cuBLASMp");
  EXPECT_EQ(all[2].name, "Async-TP");
  EXPECT_EQ(all[3].name, "VanillaDecomposition");
}

TEST(BaselinesTest, CublasMpSlowerThanFlux) {
  Baselines baselines(MakeA800Cluster(4));
  const GemmShape shape{16384, 8192, 4096};
  const auto flux = baselines.Flux(shape, CommPrimitive::kReduceScatter);
  const auto cublasmp = baselines.CublasMp(shape, CommPrimitive::kReduceScatter);
  EXPECT_LT(flux.latency_us, cublasmp.latency_us);
}

}  // namespace
}  // namespace flo
